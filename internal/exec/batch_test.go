package exec

import (
	"testing"

	"mood/internal/algebra"
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/vehicledb"
)

// Batch-boundary edge tests: empty extents, extents landing exactly on and
// either side of BatchCapacity, early Close mid-batch, and the batch<->row
// adapter in both directions. These pin the NextBatch contract (n==0 with
// nil error only at end of stream, partial batches only at the end) at the
// sizes where off-by-one bugs live.

// batchFixture builds a database whose Company extent has exactly n rows
// (the other extents stay minimal) and returns the fixture.
func batchFixture(t testing.TB, n int) *fixture {
	t.Helper()
	return setup(t, vehicledb.Config{
		Vehicles: 16, DriveTrains: 16, Engines: 16,
		Companies: n, Employees: 0, Seed: 5,
	})
}

// drainBatches drives op through NextBatch until end of stream, returning
// every batch size in order (the terminating 0 excluded).
func drainBatches(t *testing.T, op BatchOperator) []int {
	t.Helper()
	var sizes []int
	b := &RowBatch{}
	for {
		n, err := op.NextBatch(b)
		if err != nil {
			t.Fatalf("NextBatch: %v", err)
		}
		if n == 0 {
			// End of stream must be sticky.
			if n2, err := op.NextBatch(b); err != nil || n2 != 0 {
				t.Fatalf("NextBatch after exhaustion = (%d, %v), want (0, nil)", n2, err)
			}
			return sizes
		}
		sizes = append(sizes, n)
	}
}

func compileBatch(t *testing.T, ex *Executor, p optimizer.Plan) BatchOperator {
	t.Helper()
	op, err := ex.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	bo, ok := op.(BatchOperator)
	if !ok {
		t.Fatalf("compiled root %T does not implement BatchOperator", op)
	}
	if err := bo.Open(); err != nil {
		t.Fatal(err)
	}
	return bo
}

// TestBatchEmptyExtent: a scan of an empty extent ends immediately — one
// NextBatch call returning (0, nil) — through the bare scan and through the
// fused scan-selection alike.
func TestBatchEmptyExtent(t *testing.T) {
	f := batchFixture(t, 16)
	bind := &optimizer.BindPlan{Class: "Employee", Var: "e"}
	plans := []optimizer.Plan{
		bind,
		&optimizer.SelectPlan{Input: bind, Pred: &expr.Cmp{
			Op: expr.OpEq,
			L:  expr.Path("e", "name"),
			R:  &expr.Const{Val: object.NewString("x")},
		}},
	}
	for _, p := range plans {
		op := compileBatch(t, f.ex, p)
		if sizes := drainBatches(t, op); len(sizes) != 0 {
			t.Errorf("%s: empty extent produced batches %v", optimizer.Describe(p), sizes)
		}
		if err := op.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchCapacityBoundaries: extents of BatchCapacity-1, BatchCapacity,
// and BatchCapacity+1 rows produce full batches with the remainder — and
// only the remainder — in the final batch.
func TestBatchCapacityBoundaries(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{BatchCapacity - 1, []int{BatchCapacity - 1}},
		{BatchCapacity, []int{BatchCapacity}},
		{BatchCapacity + 1, []int{BatchCapacity, 1}},
		{2*BatchCapacity + 7, []int{BatchCapacity, BatchCapacity, 7}},
	}
	for _, tc := range cases {
		f := batchFixture(t, tc.n)
		op := compileBatch(t, f.ex, &optimizer.BindPlan{Class: "Company", Var: "c"})
		sizes := drainBatches(t, op)
		if len(sizes) != len(tc.want) {
			t.Fatalf("n=%d: batches %v, want %v", tc.n, sizes, tc.want)
		}
		for i := range sizes {
			if sizes[i] != tc.want[i] {
				t.Fatalf("n=%d: batches %v, want %v", tc.n, sizes, tc.want)
			}
		}
		if err := op.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchFilteredNeverZeroMidStream: a fused scan-selection keeps pulling
// past filtered-out runs — every batch but the last is full, none is empty,
// and the surviving rows are exactly the predicate's.
func TestBatchFilteredNeverZeroMidStream(t *testing.T) {
	const n = 3*BatchCapacity + 100
	f := batchFixture(t, n)
	// location cycles through five cities, so ='Tokyo' keeps every fifth
	// row and survivors straddle many input batches.
	op := compileBatch(t, f.ex, &optimizer.SelectPlan{
		Input: &optimizer.BindPlan{Class: "Company", Var: "c"},
		Pred: &expr.Cmp{
			Op: expr.OpEq,
			L:  expr.Path("c", "location"),
			R:  &expr.Const{Val: object.NewString("Tokyo")},
		},
	})
	sizes := drainBatches(t, op)
	total := 0
	for i, s := range sizes {
		total += s
		if s == 0 {
			t.Fatalf("batch %d is empty mid-stream: %v", i, sizes)
		}
		if i < len(sizes)-1 && s != BatchCapacity {
			t.Fatalf("batch %d is short (%d) before end of stream: %v", i, s, sizes)
		}
	}
	want := 0
	for i := 0; i < n; i++ {
		if i%5 == 2 { // generator cycle: Ankara, Munich, Tokyo, Detroit, Istanbul
			want++
		}
	}
	if total != want {
		t.Fatalf("filtered rows = %d, want %d", total, want)
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchEarlyCloseReadCounts: abandoning a scan after one batch reads
// exactly the pages that 1024 row-at-a-time Next calls read — batching must
// not drag extra extent pages in before Close.
func TestBatchEarlyCloseReadCounts(t *testing.T) {
	const n = 3 * BatchCapacity
	readsAfter := func(drive func(op BatchOperator)) int64 {
		f := batchFixture(t, n)
		op := compileBatch(t, f.ex, &optimizer.BindPlan{Class: "Company", Var: "c"})
		d := f.pool.Disk()
		d.ResetStats()
		drive(op)
		if err := op.Close(); err != nil {
			t.Fatal(err)
		}
		return d.Stats().Reads()
	}
	batchReads := readsAfter(func(op BatchOperator) {
		b := &RowBatch{}
		got, err := op.NextBatch(b)
		if err != nil || got != BatchCapacity {
			t.Fatalf("NextBatch = (%d, %v), want (%d, nil)", got, err, BatchCapacity)
		}
	})
	rowReads := readsAfter(func(op BatchOperator) {
		for i := 0; i < BatchCapacity; i++ {
			if _, ok, err := op.Next(); err != nil || !ok {
				t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
			}
		}
	})
	if batchReads != rowReads {
		t.Fatalf("early close after one batch read %d pages, row-at-a-time read %d", batchReads, rowReads)
	}
}

// rowOnly hides an operator's native NextBatch, forcing the row->batch
// adapter path in nextBatch.
type rowOnly struct {
	inner optimizer.Operator
}

func (r *rowOnly) Open() error                      { return r.inner.Open() }
func (r *rowOnly) Next() (algebra.Row, bool, error) { return r.inner.Next() }
func (r *rowOnly) Close() error                     { return r.inner.Close() }

// TestBatchRowAdapterRoundTrip: driving a batch-native operator through the
// row->batch adapter, and a batch stream through the batch->row adapter,
// reproduces the native row stream exactly; and Next/NextBatch mix on one
// operator without losing position.
func TestBatchRowAdapterRoundTrip(t *testing.T) {
	const n = BatchCapacity + 200
	oids := func(rows []algebra.Row) []int64 {
		out := make([]int64, len(rows))
		for i, r := range rows {
			out[i] = int64(r.Vars["c"].OID)
		}
		return out
	}
	f := batchFixture(t, n)
	plan := &optimizer.BindPlan{Class: "Company", Var: "c"}

	native, err := f.ex.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(native.Rows) != n {
		t.Fatalf("native rows = %d, want %d", len(native.Rows), n)
	}
	wantOIDs := oids(native.Rows)

	// Row->batch: the adapter loop over a row-only wrapper.
	inner, err := f.ex.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := &rowOnly{inner: inner}
	if err := wrapped.Open(); err != nil {
		t.Fatal(err)
	}
	var viaAdapter []algebra.Row
	b := &RowBatch{}
	for {
		got, err := nextBatch(wrapped, b)
		if err != nil {
			t.Fatal(err)
		}
		if got == 0 {
			break
		}
		viaAdapter = append(viaAdapter, b.Rows[:got]...)
	}
	if err := wrapped.Close(); err != nil {
		t.Fatal(err)
	}
	gotOIDs := oids(viaAdapter)
	if len(gotOIDs) != len(wantOIDs) {
		t.Fatalf("adapter rows = %d, want %d", len(gotOIDs), len(wantOIDs))
	}
	for i := range gotOIDs {
		if gotOIDs[i] != wantOIDs[i] {
			t.Fatalf("adapter row %d: OID %d, want %d", i, gotOIDs[i], wantOIDs[i])
		}
	}

	// Batch->row: batchRows iteration over a batch-native refill.
	src := compileBatch(t, f.ex, plan)
	br := &batchRows{}
	var viaRows []int64
	for {
		row, ok, err := br.next(src.NextBatch)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		viaRows = append(viaRows, int64(row.Vars["c"].OID))
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if len(viaRows) != len(wantOIDs) {
		t.Fatalf("batchRows rows = %d, want %d", len(viaRows), len(wantOIDs))
	}
	for i := range viaRows {
		if viaRows[i] != wantOIDs[i] {
			t.Fatalf("batchRows row %d: OID %d, want %d", i, viaRows[i], wantOIDs[i])
		}
	}

	// Mixed driving: rows consumed through Next advance the same stream
	// position NextBatch continues from.
	mixed := compileBatch(t, f.ex, plan)
	var mixedOIDs []int64
	for i := 0; i < 3; i++ {
		row, ok, err := mixed.Next()
		if err != nil || !ok {
			t.Fatalf("mixed Next %d: ok=%v err=%v", i, ok, err)
		}
		mixedOIDs = append(mixedOIDs, int64(row.Vars["c"].OID))
	}
	for {
		got, err := mixed.NextBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if got == 0 {
			break
		}
		for _, r := range b.Rows[:got] {
			mixedOIDs = append(mixedOIDs, int64(r.Vars["c"].OID))
		}
	}
	if err := mixed.Close(); err != nil {
		t.Fatal(err)
	}
	if len(mixedOIDs) != len(wantOIDs) {
		t.Fatalf("mixed rows = %d, want %d", len(mixedOIDs), len(wantOIDs))
	}
	for i := range mixedOIDs {
		if mixedOIDs[i] != wantOIDs[i] {
			t.Fatalf("mixed row %d: OID %d, want %d", i, mixedOIDs[i], wantOIDs[i])
		}
	}
}

// TestParallelPartialBatchMerge is the regression test for the exchange
// merge: worker tasks produce runs whose sizes do not divide BatchCapacity,
// and the merge must keep filling a batch across task boundaries — a short
// batch is legal only at end of stream — while preserving the serial row
// order exactly.
func TestParallelPartialBatchMerge(t *testing.T) {
	const n = 2*BatchCapacity + 452
	f := batchFixture(t, n)
	serial, err := f.ex.Execute(&optimizer.BindPlan{Class: "Company", Var: "c"})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 3, 5} {
		op := compileBatch(t, f.ex, &optimizer.ExchangePlan{
			Input:   &optimizer.BindPlan{Class: "Company", Var: "c"},
			Workers: workers,
		})
		var got []int64
		var sizes []int
		b := &RowBatch{}
		for {
			k, err := op.NextBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			if k == 0 {
				break
			}
			sizes = append(sizes, k)
			for _, r := range b.Rows[:k] {
				got = append(got, int64(r.Vars["c"].OID))
			}
		}
		if err := op.Close(); err != nil {
			t.Fatal(err)
		}
		for i, s := range sizes {
			if i < len(sizes)-1 && s != BatchCapacity {
				t.Fatalf("workers=%d: batch %d short (%d) before end of stream: %v", workers, i, s, sizes)
			}
		}
		if len(got) != len(serial.Rows) {
			t.Fatalf("workers=%d: %d rows, serial %d", workers, len(got), len(serial.Rows))
		}
		for i, r := range serial.Rows {
			if got[i] != int64(r.Vars["c"].OID) {
				t.Fatalf("workers=%d: row %d OID %d, serial %d", workers, i, got[i], int64(r.Vars["c"].OID))
			}
		}
	}
}
