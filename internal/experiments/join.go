package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/exec"
	"mood/internal/joinindex"
	"mood/internal/kernel"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/storage"
)

// The join-access-path sweep: the same deep-path and many-to-many join
// queries are executed cold through each physical strategy — forward
// traversal, binary join index, hash partition, fusion — with the DiskSim
// latency replay turned on, best-of-N wall clock. Rows and the row
// fingerprint must be identical across all four strategies, simulated reads
// identical across repetitions; the acceptance number is the 3-hop path
// query's rows/wall-sec through the join index or the fusion join relative
// to forward traversal, which must clear 5x.

const (
	// joinBenchReps is the best-of-N repetition count per (bench, mode).
	joinBenchReps = 3
	// join3SpeedupFloor is the acceptance floor on the 3-hop path query.
	join3SpeedupFloor = 5.0
	// joinHotDivisor: only every hot-th object of a referenced extent is
	// actually referenced, and the referenced objects are the extent's first
	// records — contiguous pages. Forward traversal drains whole right
	// extents regardless; the fused navigation touches the hot pages only.
	joinHotDivisor = 64
	// Extent cardinalities. The chain is JoinA -> JoinB -> JoinC -> JoinD
	// (one reference per hop); the many-to-many side is JoinFan -{set}->
	// JoinD over a small shared pool.
	joinChainSrc  = 1500
	joinChainExt  = 12000
	joinFanSrc    = 1200
	joinFanRefs   = 6
	joinFanPool   = 600
	joinBenchPad  = "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"
	joinBenchBase = 1000
)

// JoinModeEntry is one measured (benchmark, access path) configuration.
// Rows, Fingerprint, Reads and SimulatedMs are deterministic; WallMs and the
// derived columns are wall-clock measurements.
type JoinModeEntry struct {
	Name             string  `json:"name"`
	Access           string  `json:"access"`
	Rows             int     `json:"rows"`
	Fingerprint      string  `json:"fingerprint"`
	Reads            int64   `json:"reads"`
	SimulatedMs      float64 `json:"simulated_ms"`
	WallMs           float64 `json:"wall_ms"`
	RowsPerWallSec   float64 `json:"rows_per_wall_sec"`
	SpeedupVsForward float64 `json:"speedup_vs_forward"`
}

// BenchJoin is the JSON artifact written by moodbench -join-json.
type BenchJoin struct {
	ChainSources      int             `json:"chain_sources"`
	ChainExtent       int             `json:"chain_extent"`
	HotDivisor        int             `json:"hot_divisor"`
	FanSources        int             `json:"fan_sources"`
	FanRefs           int             `json:"fan_refs"`
	FanPool           int             `json:"fan_pool"`
	Reps              int             `json:"reps"`
	LatencyUsPerSimMs float64         `json:"latency_us_per_sim_ms"`
	Entries           []JoinModeEntry `json:"entries"`
	// Path3SpeedupBest is the acceptance number: the better of the
	// join-index and fusion rows/wall-sec on the 3-hop path query relative
	// to forward traversal. MeasureJoin fails below join3SpeedupFloor.
	Path3SpeedupBest float64 `json:"path3_speedup_best"`
}

// joinAccessModes maps the measured access paths to the join method forced
// into every JoinPlan of the benchmark's plan.
var joinAccessModes = []struct {
	access string
	method cost.JoinMethod
}{
	{"forward", cost.ForwardTraversal},
	{"joinindex", cost.BinaryJoinIndex},
	{"hash", cost.HashPartition},
	{"fusion", cost.FusionJoin},
}

func defineJoinBenchSchema(cat *catalog.Catalog) error {
	classes := []struct {
		name string
		typ  *object.Type
	}{
		{"JoinD", object.TupleOf(
			object.Field{Name: "tag", Type: object.TInteger},
			object.Field{Name: "pad", Type: object.StringN(32)},
		)},
		{"JoinC", object.TupleOf(
			object.Field{Name: "d", Type: object.RefTo("JoinD")},
			object.Field{Name: "pad", Type: object.StringN(32)},
		)},
		{"JoinB", object.TupleOf(
			object.Field{Name: "c", Type: object.RefTo("JoinC")},
			object.Field{Name: "pad", Type: object.StringN(32)},
		)},
		{"JoinA", object.TupleOf(
			object.Field{Name: "k", Type: object.TInteger},
			object.Field{Name: "b", Type: object.RefTo("JoinB")},
		)},
		{"JoinFan", object.TupleOf(
			object.Field{Name: "k", Type: object.TInteger},
			object.Field{Name: "members", Type: object.SetOf(object.RefTo("JoinD"))},
		)},
	}
	for _, c := range classes {
		if _, err := cat.DefineClass(c.name, c.typ, nil, nil); err != nil {
			return err
		}
	}
	return nil
}

// buildJoinBenchDB loads the sweep's extents. Reference targets are the
// first len/joinHotDivisor records of each extent — the cold pages of the
// unreferenced tail exist to be scanned by extent-draining strategies and
// skipped by navigating ones.
func buildJoinBenchDB() (*kernel.DB, error) {
	opts := kernel.DefaultOptions()
	opts.BufferFrames = 2048
	// The object cache would absorb repeat dereferences and make the
	// best-of-N read totals depend on the repetition order; the sweep
	// measures the disk access paths, so it runs cache-off.
	opts.ObjectCacheBytes = 0
	db, err := kernel.Open(opts)
	if err != nil {
		return nil, err
	}
	if err := defineJoinBenchSchema(db.Cat); err != nil {
		db.Close()
		return nil, err
	}
	create := func(class string, v object.Value) (storage.OID, error) {
		return db.Cat.CreateObject(class, v)
	}
	hot := joinChainExt / joinHotDivisor
	ds := make([]storage.OID, joinChainExt)
	for i := range ds {
		oid, err := create("JoinD", object.NewTuple(
			[]string{"tag", "pad"},
			[]object.Value{object.NewInt(int32(joinBenchBase + i)), object.NewString(joinBenchPad)},
		))
		if err != nil {
			db.Close()
			return nil, err
		}
		ds[i] = oid
	}
	cs := make([]storage.OID, joinChainExt)
	for i := range cs {
		oid, err := create("JoinC", object.NewTuple(
			[]string{"d", "pad"},
			[]object.Value{object.NewRef(ds[i%hot]), object.NewString(joinBenchPad)},
		))
		if err != nil {
			db.Close()
			return nil, err
		}
		cs[i] = oid
	}
	bs := make([]storage.OID, joinChainExt)
	for i := range bs {
		oid, err := create("JoinB", object.NewTuple(
			[]string{"c", "pad"},
			[]object.Value{object.NewRef(cs[i%hot]), object.NewString(joinBenchPad)},
		))
		if err != nil {
			db.Close()
			return nil, err
		}
		bs[i] = oid
	}
	for i := 0; i < joinChainSrc; i++ {
		if _, err := create("JoinA", object.NewTuple(
			[]string{"k", "b"},
			[]object.Value{object.NewInt(int32(joinBenchBase + i)), object.NewRef(bs[i%hot])},
		)); err != nil {
			db.Close()
			return nil, err
		}
	}
	for i := 0; i < joinFanSrc; i++ {
		members := make([]object.Value, joinFanRefs)
		for j := range members {
			members[j] = object.NewRef(ds[(i*joinFanRefs+j)%joinFanPool])
		}
		if _, err := create("JoinFan", object.NewTuple(
			[]string{"k", "members"},
			[]object.Value{object.NewInt(int32(joinBenchBase + i)), object.NewSet(members...)},
		)); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// joinBenchPlan builds one benchmark's plan with every join forced to the
// given method. Index names are attached unconditionally; only the
// BINARY_JOIN_INDEX compile path resolves them.
func joinBenchPlan(name string, m cost.JoinMethod) optimizer.Plan {
	join := func(left optimizer.Plan, leftVar, attr, rightClass, rightVar, index string) optimizer.Plan {
		return &optimizer.JoinPlan{
			Left:      left,
			Right:     &optimizer.BindPlan{Class: rightClass, Var: rightVar},
			Method:    m,
			LeftVar:   leftVar,
			Attribute: attr,
			RightVar:  rightVar,
			Index:     index,
		}
	}
	switch name {
	case "path3-deep":
		p := join(&optimizer.BindPlan{Class: "JoinA", Var: "a"}, "a", "b", "JoinB", "b", "bji_ab")
		p = join(p, "b", "c", "JoinC", "c", "bji_bc")
		return join(p, "c", "d", "JoinD", "d", "bji_cd")
	case "fan-m2m":
		return join(&optimizer.BindPlan{Class: "JoinFan", Var: "f"}, "f", "members", "JoinD", "d", "bji_fd")
	}
	panic("unknown join benchmark " + name)
}

// joinRowHash folds one result row into an order-independent fingerprint:
// the hash of every variable's OID binding, summed across rows.
func joinRowHash(row algebra.Row) uint64 {
	vars := make([]string, 0, len(row.Vars))
	for v := range row.Vars {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	h := fnv.New64a()
	for _, v := range vars {
		fmt.Fprintf(h, "%s=%d;", v, uint64(row.Vars[v].OID))
	}
	return h.Sum64()
}

// measureJoinMode runs one benchmark through one access path: cold pool,
// counters reset, latency replay on, the whole Open+drain measured (the
// strategies differ precisely in what their build phases read, so setup is
// inside the measured region). Returns rows, fingerprint, reads, simulated
// ms, wall time.
func measureJoinMode(db *kernel.DB, ex *exec.Executor, bench string, m cost.JoinMethod, latency time.Duration) (int, uint64, int64, float64, time.Duration, error) {
	op, err := ex.Compile(joinBenchPlan(bench, m))
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if err := db.Pool.EvictAll(); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	db.Disk.ResetStats()
	db.Disk.SetLatency(latency)
	defer db.Disk.SetLatency(0)

	rows, fp := 0, uint64(0)
	start := time.Now()
	if err := op.Open(); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	for {
		row, ok, err := op.Next()
		if err != nil {
			op.Close()
			return 0, 0, 0, 0, 0, err
		}
		if !ok {
			break
		}
		rows++
		fp += joinRowHash(row)
	}
	wall := time.Since(start)
	if err := op.Close(); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	s := db.Disk.Stats()
	return rows, fp, s.Reads(), s.TimeMs, wall, nil
}

// MeasureJoin runs the join-access-path sweep. Pass latency <= 0 for
// DefaultParallelLatency. It fails — rather than producing an artifact —
// if rows or fingerprints diverge across access paths, if reads differ
// across repetitions, or if the 3-hop acceptance speedup is below 5x.
func MeasureJoin(latency time.Duration) (*BenchJoin, error) {
	if latency <= 0 {
		latency = DefaultParallelLatency
	}
	db, err := buildJoinBenchDB()
	if err != nil {
		return nil, err
	}
	defer db.Close()

	// The maintained indices back the BINARY_JOIN_INDEX mode: one per hop
	// of the chain, one on the set-valued fan attribute.
	ex := exec.New(algebra.New(db.Cat))
	ex.BJIs = map[string]*joinindex.BinaryJoinIndex{}
	for _, b := range []struct{ name, class, attr string }{
		{"bji_ab", "JoinA", "b"},
		{"bji_bc", "JoinB", "c"},
		{"bji_cd", "JoinC", "d"},
		{"bji_fd", "JoinFan", "members"},
	} {
		ix, err := joinindex.BuildBJI(db.Cat, b.class, b.attr)
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", b.name, err)
		}
		ex.BJIs[b.name] = ix
	}

	out := &BenchJoin{
		ChainSources:      joinChainSrc,
		ChainExtent:       joinChainExt,
		HotDivisor:        joinHotDivisor,
		FanSources:        joinFanSrc,
		FanRefs:           joinFanRefs,
		FanPool:           joinFanPool,
		Reps:              joinBenchReps,
		LatencyUsPerSimMs: float64(latency) / float64(time.Microsecond),
	}

	for _, bench := range []string{"path3-deep", "fan-m2m"} {
		var forwardRate float64
		var baseRows int
		var baseFP uint64
		for mi, mode := range joinAccessModes {
			var rows int
			var fp uint64
			var reads int64
			var simMs float64
			var best time.Duration
			for rep := 0; rep < joinBenchReps; rep++ {
				r, f, rd, sim, wall, err := measureJoinMode(db, ex, bench, mode.method, latency)
				if err != nil {
					return nil, fmt.Errorf("%s %s: %w", bench, mode.access, err)
				}
				if rep == 0 {
					rows, fp, reads, simMs, best = r, f, rd, sim, wall
					continue
				}
				if r != rows || f != fp {
					return nil, fmt.Errorf("%s %s: repetition changed the result (%d/%016x vs %d/%016x)",
						bench, mode.access, r, f, rows, fp)
				}
				if rd != reads {
					return nil, fmt.Errorf("%s %s: reads are not deterministic (%d vs %d)",
						bench, mode.access, rd, reads)
				}
				if wall < best {
					best = wall
				}
			}
			if mi == 0 {
				baseRows, baseFP = rows, fp
			} else if rows != baseRows || fp != baseFP {
				return nil, fmt.Errorf("%s: %s returned %d rows (fp %016x), forward returned %d (fp %016x)",
					bench, mode.access, rows, fp, baseRows, baseFP)
			}
			e := JoinModeEntry{
				Name:        bench,
				Access:      mode.access,
				Rows:        rows,
				Fingerprint: fmt.Sprintf("%016x", fp),
				Reads:       reads,
				SimulatedMs: round3(simMs),
				WallMs:      round3(float64(best) / float64(time.Millisecond)),
			}
			if best > 0 {
				e.RowsPerWallSec = round3(float64(rows) / best.Seconds())
			}
			if mi == 0 {
				forwardRate = e.RowsPerWallSec
			} else if forwardRate > 0 {
				e.SpeedupVsForward = round3(e.RowsPerWallSec / forwardRate)
			}
			if bench == "path3-deep" && (mode.access == "joinindex" || mode.access == "fusion") &&
				e.SpeedupVsForward > out.Path3SpeedupBest {
				out.Path3SpeedupBest = e.SpeedupVsForward
			}
			out.Entries = append(out.Entries, e)
		}
	}
	if out.Path3SpeedupBest < join3SpeedupFloor {
		return nil, fmt.Errorf("3-hop path query: best join-index/fusion speedup %.2fx is below the %.0fx floor",
			out.Path3SpeedupBest, join3SpeedupFloor)
	}
	return out, nil
}

// JoinAccessSweep prints the MeasureJoin sweep as a table. The env parameter
// is unused (the sweep builds its own extents) but kept for the artifact
// signature.
func JoinAccessSweep(w io.Writer, _ *Env) error {
	section(w, "Join access paths. Forward vs join-index vs hash vs fusion, cold, latency replay")
	res, err := MeasureJoin(0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "chain: %d sources over %d-record extents (hot 1/%d); fan: %d sources x %d refs into %d; latency replay %.0f us/sim-ms; best of %d\n\n",
		res.ChainSources, res.ChainExtent, res.HotDivisor, res.FanSources, res.FanRefs, res.FanPool,
		res.LatencyUsPerSimMs, res.Reps)
	fmt.Fprintf(w, "%-12s %-10s %7s %7s %10s %10s %14s %10s\n",
		"benchmark", "access", "rows", "reads", "sim ms", "wall ms", "rows/wall-s", "speedup")
	for _, e := range res.Entries {
		fmt.Fprintf(w, "%-12s %-10s %7d %7d %10.2f %10.2f %14.0f %9.2fx\n",
			e.Name, e.Access, e.Rows, e.Reads, e.SimulatedMs, e.WallMs, e.RowsPerWallSec, e.SpeedupVsForward)
	}
	fmt.Fprintf(w, "\n3-hop acceptance: best join-index/fusion speedup %.2fx (floor %.0fx)\n",
		res.Path3SpeedupBest, join3SpeedupFloor)
	return nil
}
