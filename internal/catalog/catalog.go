// Package catalog implements the MOOD catalog: "the definition of classes,
// types, and member functions in a structure similar to a compiler symbol
// table" (Section 2, Figure 2.2). Compile-time information is carried to run
// time through MoodsType, MoodsAttribute and MoodsFunction entries, which is
// what makes late binding possible. The catalog also owns class extents
// (every class has a default extent holding the instances created), the
// multiple-inheritance DAG, and the index directory used by the optimizer.
//
// Classes vs types (Section 2): a class has a default extent, is organized
// into the class hierarchy, and its instances are objects with identity;
// values which are instances of types have copy semantics.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mood/internal/objcache"
	"mood/internal/object"
	"mood/internal/storage"
)

// Errors returned by catalog operations.
var (
	ErrNoSuchClass     = errors.New("catalog: no such class")
	ErrNoSuchType      = errors.New("catalog: no such type")
	ErrNoSuchAttribute = errors.New("catalog: no such attribute")
	ErrDuplicateName   = errors.New("catalog: name already defined")
	ErrCycle           = errors.New("catalog: inheritance cycle")
)

// MethodSig is a MoodsFunction entry: MOOD "handles the methods only by
// keeping information on their name, return type, and names and types of
// their parameters" (Section 3.1); bodies live in the Function Manager.
type MethodSig struct {
	Class      string
	Name       string
	ParamNames []string
	ParamTypes []*object.Type
	ReturnType *object.Type
}

// Signature renders the lookup key used to locate the function: class name
// plus parameter list, as described in Section 2.
func (m *MethodSig) Signature() string {
	params := make([]string, len(m.ParamTypes))
	for i, p := range m.ParamTypes {
		params[i] = p.String()
	}
	return fmt.Sprintf("%s::%s(%s)", m.Class, m.Name, strings.Join(params, ","))
}

func (m *MethodSig) String() string {
	return m.Signature() + " " + m.ReturnType.String()
}

// Class is a MoodsType entry for a class (or a pure type when IsClass is
// false). Own attributes live in Tuple; inherited ones are resolved through
// Supers.
type Class struct {
	ID      int
	Name    string
	IsClass bool // classes have extents and identity; types have copy semantics
	Tuple   *object.Type
	Supers  []string
	Methods []*MethodSig

	extent *storage.Extent
}

// Extent returns the class's default extent (nil for pure types).
func (c *Class) Extent() *storage.Extent { return c.extent }

// Catalog is the schema and object manager.
type Catalog struct {
	mu    sync.RWMutex
	store storage.Store

	classes map[string]*Class
	byID    map[int]*Class
	nextID  int

	indexes map[string]*Index // by index name

	sysFile *storage.Extent        // persisted catalog records
	sysOIDs map[string]storage.OID // class name -> catalog record OID
	idxFile *storage.Extent        // persisted index records
	idxOIDs map[string]storage.OID // index name -> record OID

	// ocache, when set, is the decoded-object cache consulted by
	// GetObject/GetObjects. Installed once at open time, read-only after.
	ocache *objcache.Cache

	// accObs, when set, receives the request-ordered OID batch of every
	// GetObjects call — the clustering tracer's reference-traversal feed.
	// Installed once at open time, read-only after.
	accObs AccessObserver

	// mutObs, when set, receives every object mutation the catalog applies
	// — the kernel's join-index maintenance feed. Installed once at open
	// time, read-only after.
	mutObs MutationObserver
}

// AccessObserver receives the request-ordered OID batches readers
// dereference together. Implementations must be safe for concurrent calls
// and must not call back into the catalog.
type AccessObserver func(oids []storage.OID)

// MutationObserver receives every object mutation after the catalog has
// applied it to the store: op is 'c' (create), 'u' (update) or 'd'
// (delete); old is the zero Value on create and new the zero Value on
// delete. Implementations must be safe for concurrent calls and must not
// call back into the catalog's object paths. A returned error fails the
// mutating call after the fact — the store change stands, matching the
// partial-failure semantics of attribute-index maintenance.
type MutationObserver func(op byte, class string, oid storage.OID, old, new object.Value) error

// New creates a catalog over the store, bootstrapping its system extents
// (SYS.MoodsType, SYS.MoodsIndex). The store may be a single ObjectStore or
// a ShardedStore — the catalog only speaks the Store interface.
func New(store storage.Store) (*Catalog, error) {
	c := &Catalog{
		store:   store,
		classes: make(map[string]*Class),
		byID:    make(map[int]*Class),
		nextID:  1,
		indexes: make(map[string]*Index),
		sysOIDs: make(map[string]storage.OID),
		idxOIDs: make(map[string]storage.OID),
	}
	var err error
	if c.sysFile, err = store.CreateExtent("SYS.MoodsType"); err != nil {
		return nil, err
	}
	if c.idxFile, err = store.CreateExtent("SYS.MoodsIndex"); err != nil {
		return nil, err
	}
	return c, nil
}

// Store returns the underlying object store.
func (c *Catalog) Store() storage.Store { return c.store }

// DefineClass creates a class with the given tuple type, superclasses and
// methods, and allocates its default extent.
func (c *Catalog) DefineClass(name string, tuple *object.Type, supers []string, methods []*MethodSig) (*Class, error) {
	return c.define(name, tuple, supers, methods, true)
}

// DefineType creates a named pure type (copy semantics, no extent).
func (c *Catalog) DefineType(name string, tuple *object.Type) (*Class, error) {
	return c.define(name, tuple, nil, nil, false)
}

func (c *Catalog) define(name string, tuple *object.Type, supers []string, methods []*MethodSig, isClass bool) (*Class, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.classes[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateName, name)
	}
	if tuple == nil {
		tuple = object.TupleOf()
	}
	if tuple.Kind != object.KindTuple {
		return nil, fmt.Errorf("catalog: class %s must have a tuple type, got %s", name, tuple)
	}
	for _, s := range supers {
		sup, ok := c.classes[s]
		if !ok {
			return nil, fmt.Errorf("%w: superclass %s of %s", ErrNoSuchClass, s, name)
		}
		if !sup.IsClass {
			return nil, fmt.Errorf("catalog: %s cannot inherit from type %s", name, s)
		}
	}
	cl := &Class{
		ID:      c.nextID,
		Name:    name,
		IsClass: isClass,
		Tuple:   tuple,
		Supers:  append([]string(nil), supers...),
	}
	for _, m := range methods {
		mm := *m
		mm.Class = name
		cl.Methods = append(cl.Methods, &mm)
	}
	c.nextID++
	if isClass {
		ext, err := c.store.CreateExtent("extent." + name)
		if err != nil {
			return nil, err
		}
		cl.extent = ext
	}
	c.classes[name] = cl
	c.byID[cl.ID] = cl
	if err := c.persistClass(cl); err != nil {
		return nil, err
	}
	return cl, nil
}

// DropClass removes a class that has no subclasses, dropping its extent and
// any indexes on it.
func (c *Catalog) DropClass(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchClass, name)
	}
	for _, other := range c.classes {
		for _, s := range other.Supers {
			if s == name {
				return fmt.Errorf("catalog: class %s has subclass %s", name, other.Name)
			}
		}
	}
	for iname, ix := range c.indexes {
		if ix.Class == name {
			delete(c.indexes, iname)
			if oid, ok := c.idxOIDs[iname]; ok {
				c.store.Delete(oid)
				delete(c.idxOIDs, iname)
			}
		}
	}
	if cl.extent != nil {
		if err := c.store.DropExtent(cl.extent.Name); err != nil {
			return err
		}
	}
	if oid, ok := c.sysOIDs[name]; ok {
		if err := c.store.Delete(oid); err != nil {
			return err
		}
		delete(c.sysOIDs, name)
	}
	delete(c.classes, name)
	delete(c.byID, cl.ID)
	return nil
}

// Class returns the class or named type.
func (c *Catalog) Class(name string) (*Class, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.classes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchClass, name)
	}
	return cl, nil
}

// Classes returns every class and named type sorted by ID.
func (c *Catalog) Classes() []*Class {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Class, 0, len(c.classes))
	for _, cl := range c.classes {
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TypeID returns the identifier of the named class or type — the paper's
// typeId(char *typeName).
func (c *Catalog) TypeID(name string) (int, error) {
	cl, err := c.Class(name)
	if err != nil {
		return 0, err
	}
	return cl.ID, nil
}

// TypeName returns the name of the class or type with the given identifier
// — the paper's typeName(int typeId).
func (c *Catalog) TypeName(id int) (string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.byID[id]
	if !ok {
		return "", fmt.Errorf("%w: id %d", ErrNoSuchType, id)
	}
	return cl.Name, nil
}

// Supers returns the direct superclasses.
func (c *Catalog) Supers(name string) ([]string, error) {
	cl, err := c.Class(name)
	if err != nil {
		return nil, err
	}
	return cl.Supers, nil
}

// Subclasses returns the direct subclasses of the class, sorted.
func (c *Catalog) Subclasses(name string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, cl := range c.classes {
		for _, s := range cl.Supers {
			if s == name {
				out = append(out, cl.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// IsA reports whether sub is the same class as super or inherits from it
// (transitively, through any path of the DAG).
func (c *Catalog) IsA(sub, super string) bool {
	if sub == super {
		return true
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.isALocked(sub, super, map[string]bool{})
}

func (c *Catalog) isALocked(sub, super string, seen map[string]bool) bool {
	if seen[sub] {
		return false
	}
	seen[sub] = true
	cl, ok := c.classes[sub]
	if !ok {
		return false
	}
	for _, s := range cl.Supers {
		if s == super || c.isALocked(s, super, seen) {
			return true
		}
	}
	return false
}

// Closure returns the class and all its transitive subclasses — the set of
// classes whose extents contribute to "FROM EVERY C" (an IS-A range).
func (c *Catalog) Closure(name string) ([]string, error) {
	if _, err := c.Class(name); err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := []string{name}
	seen := map[string]bool{name: true}
	for i := 0; i < len(out); i++ {
		for _, cl := range c.classes {
			for _, s := range cl.Supers {
				if s == out[i] && !seen[cl.Name] {
					seen[cl.Name] = true
					out = append(out, cl.Name)
				}
			}
		}
	}
	sort.Strings(out[1:])
	return out, nil
}

// AllAttributes returns the class's attributes including inherited ones, in
// superclass-first declaration order. With multiple inheritance the first
// definition of a name (leftmost superclass path) wins.
func (c *Catalog) AllAttributes(name string) ([]object.Field, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []object.Field
	seenAttr := map[string]bool{}
	seenClass := map[string]bool{}
	var visit func(string) error
	visit = func(n string) error {
		if seenClass[n] {
			return nil
		}
		seenClass[n] = true
		cl, ok := c.classes[n]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchClass, n)
		}
		for _, s := range cl.Supers {
			if err := visit(s); err != nil {
				return err
			}
		}
		for _, f := range cl.Tuple.Fields {
			if !seenAttr[f.Name] {
				seenAttr[f.Name] = true
				out = append(out, f)
			}
		}
		return nil
	}
	if err := visit(name); err != nil {
		return nil, err
	}
	return out, nil
}

// AttributeType resolves an attribute (own or inherited) to its type — the
// MoodsAttribute lookup.
func (c *Catalog) AttributeType(class, attr string) (*object.Type, error) {
	attrs, err := c.AllAttributes(class)
	if err != nil {
		return nil, err
	}
	for _, f := range attrs {
		if f.Name == attr {
			return f.Type, nil
		}
	}
	return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, class, attr)
}

// Method resolves a method by name on the class or, failing that, its
// superclasses (late binding walks the hierarchy).
func (c *Catalog) Method(class, name string) (*MethodSig, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var find func(string, map[string]bool) *MethodSig
	find = func(n string, seen map[string]bool) *MethodSig {
		if seen[n] {
			return nil
		}
		seen[n] = true
		cl, ok := c.classes[n]
		if !ok {
			return nil
		}
		for _, m := range cl.Methods {
			if m.Name == name {
				return m
			}
		}
		for _, s := range cl.Supers {
			if m := find(s, seen); m != nil {
				return m
			}
		}
		return nil
	}
	if m := find(class, map[string]bool{}); m != nil {
		return m, nil
	}
	return nil, fmt.Errorf("catalog: no method %s on %s", name, class)
}

// AllMethods returns every method visible on the class, inherited included;
// overridden methods (same name) appear once, the most-derived definition
// winning.
func (c *Catalog) AllMethods(class string) []*MethodSig {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*MethodSig
	seenName := map[string]bool{}
	seenClass := map[string]bool{}
	var visit func(string)
	visit = func(n string) {
		if seenClass[n] {
			return
		}
		seenClass[n] = true
		cl, ok := c.classes[n]
		if !ok {
			return
		}
		for _, m := range cl.Methods {
			if !seenName[m.Name] {
				seenName[m.Name] = true
				out = append(out, m)
			}
		}
		for _, s := range cl.Supers {
			visit(s)
		}
	}
	visit(class)
	return out
}

// IsAPath resolves the class reached by following a path expression that
// starts at a class — the algebra's isA(path) operator. Path components are
// reference (or set/list-of-reference) attributes except possibly the last.
// It returns the class name of the last attribute of the path.
func (c *Catalog) IsAPath(class string, attrs []string) (string, error) {
	cur := class
	for i, a := range attrs {
		ty, err := c.AttributeType(cur, a)
		if err != nil {
			return "", err
		}
		switch ty.Kind {
		case object.KindReference:
			cur = ty.Target
		case object.KindSet, object.KindList:
			if ty.Elem != nil && ty.Elem.Kind == object.KindReference {
				cur = ty.Elem.Target
				continue
			}
			if i != len(attrs)-1 {
				return "", fmt.Errorf("catalog: attribute %s.%s is not a reference path component", cur, a)
			}
			return ty.String(), nil
		default:
			if i != len(attrs)-1 {
				return "", fmt.Errorf("catalog: attribute %s.%s is atomic mid-path", cur, a)
			}
			return ty.String(), nil
		}
	}
	return cur, nil
}
