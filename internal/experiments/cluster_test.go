package experiments

import (
	"encoding/json"
	"testing"
	"time"
)

// TestMeasureClusterContract runs the full clustering protocol and checks
// the deterministic half of the artifact: identical rows across layouts
// (MeasureCluster enforces the fingerprint itself), a read reduction well
// past the 2x acceptance floor, and a reorganizer that both moved records
// and compacted the vacated source pages out of the scan chains.
func TestMeasureClusterContract(t *testing.T) {
	res, err := MeasureCluster(40 * time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scattered.Rows != res.Clustered.Rows || res.Scattered.Rows != clusterHotItems {
		t.Errorf("rows: scattered=%d clustered=%d want %d",
			res.Scattered.Rows, res.Clustered.Rows, clusterHotItems)
	}
	if res.ReadReduction < 2 {
		t.Errorf("read reduction %.2fx below the 2x floor (%d -> %d reads)",
			res.ReadReduction, res.Scattered.Reads, res.Clustered.Reads)
	}
	if res.Moved == 0 {
		t.Error("reorganizer moved no records")
	}
	if res.PagesCompacted == 0 {
		t.Error("compaction parked/freed no vacated source pages")
	}
	// The scattered layout must actually be scattered: the hot traversal
	// should touch more distinct pages than the hot set could ever pack
	// into, otherwise the protocol is measuring a pre-clustered database.
	if res.Scattered.Reads < 4*res.Clustered.Reads {
		t.Errorf("scattered layout too dense for the protocol: %d vs %d reads",
			res.Scattered.Reads, res.Clustered.Reads)
	}

	// The artifact must round-trip as JSON (moodbench -cluster-json).
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchCluster
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ReadReduction != res.ReadReduction || back.Scattered.Reads != res.Scattered.Reads {
		t.Error("artifact did not survive a JSON round-trip")
	}
}

// TestMeasureClusterDeterministicReads pins the protocol's simulated read
// counts across runs: seeded data over a simulated disk must measure the
// same scattered and clustered reads every time, which is what makes the
// checked-in BENCH_cluster.json diffable.
func TestMeasureClusterDeterministicReads(t *testing.T) {
	a, err := MeasureCluster(time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureCluster(time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if a.Scattered.Reads != b.Scattered.Reads || a.Clustered.Reads != b.Clustered.Reads ||
		a.Moved != b.Moved || a.PagesCompacted != b.PagesCompacted {
		t.Errorf("protocol not deterministic: run1 scattered=%d clustered=%d moved=%d compacted=%d, run2 scattered=%d clustered=%d moved=%d compacted=%d",
			a.Scattered.Reads, a.Clustered.Reads, a.Moved, a.PagesCompacted,
			b.Scattered.Reads, b.Clustered.Reads, b.Moved, b.PagesCompacted)
	}
}
