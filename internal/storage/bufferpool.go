package storage

import (
	"fmt"
	"sort"
	"sync"
)

// BufferPool caches disk pages in a fixed number of frames, replacing
// unpinned frames with the clock (second-chance) algorithm. ESM provides the
// equivalent buffer management for MOOD; the cost formulas of Section 6 are
// "worst case ... where there are no page hits in the buffer", so benches can
// size the pool down to 1 frame to reproduce that regime, or up to measure
// hit-rate effects.
//
// The pool is sharded for concurrency: pages map to shards by a hash of
// their PageID, and each shard has its own mutex, frame array, hash table,
// clock hand, and hit/miss/flush counters, so parallel morsel workers
// fetching disjoint page ranges do not serialize on one lock. Small pools
// (the cost-model regimes) collapse to a single shard, which preserves the
// seed's exact clock behavior. Disk reads happen outside the shard lock; a
// per-frame loading latch makes two concurrent fetches of the same absent
// page read it once.
type BufferPool struct {
	disk      *DiskSim
	shards    []poolShard
	shardMask uint32
	nframes   int
}

type poolShard struct {
	mu      sync.Mutex
	frames  []frame
	table   map[PageID]int // page -> frame index
	hand    int
	hits    int64
	misses  int64
	flushes int64
	// flushLSN, when set, is consulted before evicting a dirty page so the
	// WAL can enforce write-ahead: all log records up to the page LSN must
	// be durable before the page goes to disk. The hook is kept per shard so
	// a write-out never reaches outside its shard's lock to find it.
	flushLSN func(lsn uint32) error
}

type frame struct {
	id     PageID
	buf    []byte
	pin    int
	dirty  bool
	refbit bool
	valid  bool
	// loading is non-nil while the frame's content is being read from disk
	// outside the shard lock. Concurrent fetchers of the same page wait on
	// it instead of returning a half-filled buffer.
	loading chan struct{}
}

// poolShards picks the shard count for an n-frame pool: a power of two,
// capped so every shard keeps at least 8 frames (small pools degenerate to
// one shard and behave exactly like the unsharded seed pool) and capped at
// 16 overall.
func poolShards(n int) int {
	s := 1
	for s < 16 && s*2*8 <= n {
		s *= 2
	}
	return s
}

// NewBufferPool creates a pool of n frames over the disk.
func NewBufferPool(disk *DiskSim, n int) *BufferPool {
	if n < 1 {
		n = 1
	}
	ns := poolShards(n)
	bp := &BufferPool{
		disk:      disk,
		shards:    make([]poolShard, ns),
		shardMask: uint32(ns - 1),
		nframes:   n,
	}
	for i := range bp.shards {
		sh := &bp.shards[i]
		per := n / ns
		if i < n%ns {
			per++
		}
		sh.frames = make([]frame, per)
		sh.table = make(map[PageID]int, per)
		for j := range sh.frames {
			sh.frames[j].buf = make([]byte, disk.PageSize())
		}
	}
	return bp
}

// shard maps a page to its shard by a multiplicative hash of the PageID, so
// consecutive page IDs spread across shards.
func (bp *BufferPool) shard(id PageID) *poolShard {
	h := uint32(id) * 2654435761
	return &bp.shards[(h>>16)&bp.shardMask]
}

// SetFlushHook installs the WAL write-ahead callback invoked with a page's
// LSN before the page is written out. Safe to call while other goroutines
// use the pool; each shard picks up the new hook under its own lock.
func (bp *BufferPool) SetFlushHook(fn func(lsn uint32) error) {
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		sh.flushLSN = fn
		sh.mu.Unlock()
	}
}

// Disk returns the underlying simulated disk.
func (bp *BufferPool) Disk() *DiskSim { return bp.disk }

// Size returns the number of frames.
func (bp *BufferPool) Size() int { return bp.nframes }

// ShardCount returns the number of lock shards the pool was split into.
func (bp *BufferPool) ShardCount() int { return len(bp.shards) }

// HitRate returns the fraction of Fetch calls served from the pool. Safe to
// call mid-run; the figure is a consistent per-shard sum.
func (bp *BufferPool) HitRate() float64 {
	hits, misses, _ := bp.Stats()
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Stats returns (hits, misses, flushes) summed across shards. Safe to call
// while other goroutines use the pool.
func (bp *BufferPool) Stats() (hits, misses, flushes int64) {
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		flushes += sh.flushes
		sh.mu.Unlock()
	}
	return hits, misses, flushes
}

// PinnedPages returns the number of frames currently pinned — zero when every
// cursor and caller has released its pages (leak checks in tests).
func (bp *BufferPool) PinnedPages() int {
	n := 0
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for j := range sh.frames {
			if sh.frames[j].valid && sh.frames[j].pin > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Resident reports whether the page currently occupies a frame (loading
// counts as resident — the read is already in flight). The prefetcher uses
// it to skip pages readahead cannot help.
func (bp *BufferPool) Resident(id PageID) bool {
	sh := bp.shard(id)
	sh.mu.Lock()
	_, ok := sh.table[id]
	sh.mu.Unlock()
	return ok
}

// NewPage allocates a fresh disk page, pins it, and returns it formatted as
// raw zeroes (callers format it). The page is marked dirty.
func (bp *BufferPool) NewPage() (*Page, error) {
	id := bp.disk.AllocPage()
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, err := sh.victimLocked(bp.disk)
	if err != nil {
		return nil, err
	}
	f := &sh.frames[idx]
	for i := range f.buf {
		f.buf[i] = 0
	}
	f.id, f.pin, f.dirty, f.refbit, f.valid = id, 1, true, true, true
	sh.table[id] = idx
	return NewPage(id, f.buf), nil
}

// Fetch pins the page and returns it, reading it from disk on a miss. The
// disk read happens outside the shard lock; a concurrent Fetch of the same
// page waits on the frame's loading latch rather than observing a partially
// filled buffer.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	sh := bp.shard(id)
	for {
		sh.mu.Lock()
		if idx, ok := sh.table[id]; ok {
			f := &sh.frames[idx]
			if ch := f.loading; ch != nil {
				// Someone else is reading this page in right now; wait for
				// them and retry (the load may also fail and vacate the
				// frame, in which case we become the loader).
				sh.mu.Unlock()
				<-ch
				continue
			}
			f.pin++
			f.refbit = true
			sh.hits++
			sh.mu.Unlock()
			return NewPage(id, f.buf), nil
		}
		sh.misses++
		idx, err := sh.victimLocked(bp.disk)
		if err != nil {
			sh.mu.Unlock()
			return nil, err
		}
		f := &sh.frames[idx]
		ch := make(chan struct{})
		f.id, f.pin, f.dirty, f.refbit, f.valid, f.loading = id, 1, false, true, true, ch
		sh.table[id] = idx
		buf := f.buf
		sh.mu.Unlock()

		// Read outside the lock so hits on other pages of this shard (and
		// concurrent loads) proceed; the frame is pinned so it cannot be
		// stolen meanwhile, and the latch keeps same-page fetchers out.
		rerr := bp.readVerified(id, buf)
		sh.mu.Lock()
		f.loading = nil
		if rerr != nil {
			f.pin--
			f.valid = false
			delete(sh.table, id)
		}
		sh.mu.Unlock()
		close(ch)
		if rerr != nil {
			return nil, rerr
		}
		return NewPage(id, buf), nil
	}
}

// readVerified reads the page and checks it against the checksum of its
// last complete write, so a torn page surfaces at the first live fetch
// instead of only during crash-recovery replay. With doublewrite retention
// on, a mismatch is repaired from the last good image and re-read; without
// it the checksum error propagates to the caller.
func (bp *BufferPool) readVerified(id PageID, buf []byte) error {
	if err := bp.disk.ReadPage(id, buf); err != nil {
		return err
	}
	verr := bp.disk.VerifyPage(id)
	if verr == nil {
		return nil
	}
	if !bp.disk.DoublewriteEnabled() {
		return verr
	}
	if err := bp.disk.RepairPage(id); err != nil {
		return verr
	}
	if err := bp.disk.ReadPage(id, buf); err != nil {
		return err
	}
	return bp.disk.VerifyPage(id)
}

// MarkDirty records that the pinned page has been modified.
func (bp *BufferPool) MarkDirty(id PageID) {
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if idx, ok := sh.table[id]; ok {
		sh.frames[idx].dirty = true
	}
}

// Unpin releases one pin on the page; dirty additionally marks it modified.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, ok := sh.table[id]
	if !ok {
		return fmt.Errorf("storage: unpin of page %d not in pool", id)
	}
	f := &sh.frames[idx]
	if f.pin <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	f.pin--
	if dirty {
		f.dirty = true
	}
	return nil
}

// FlushPage forces the page to disk if it is dirty.
func (bp *BufferPool) FlushPage(id PageID) error {
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, ok := sh.table[id]
	if !ok {
		return nil
	}
	return sh.writeOutLocked(idx, bp.disk)
}

// residentPages returns the IDs of all valid frames, sorted ascending, so
// multi-shard maintenance passes touch pages in a deterministic order.
func (bp *BufferPool) residentPages() []PageID {
	var ids []PageID
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for j := range sh.frames {
			if sh.frames[j].valid {
				ids = append(ids, sh.frames[j].id)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FlushAll forces every dirty page to disk, in ascending PageID order so the
// simulated write sequence is deterministic regardless of sharding.
func (bp *BufferPool) FlushAll() error {
	for _, id := range bp.residentPages() {
		if err := bp.FlushPage(id); err != nil {
			return err
		}
	}
	return nil
}

// EvictAll flushes and invalidates every unpinned frame, leaving the pool
// cold (measurement harnesses use it to defeat cache warm-up). Pages are
// processed in ascending PageID order for deterministic write accounting.
func (bp *BufferPool) EvictAll() error {
	for _, id := range bp.residentPages() {
		sh := bp.shard(id)
		sh.mu.Lock()
		idx, ok := sh.table[id]
		if !ok {
			sh.mu.Unlock()
			continue
		}
		f := &sh.frames[idx]
		if f.pin > 0 || f.loading != nil {
			sh.mu.Unlock()
			continue
		}
		if err := sh.writeOutLocked(idx, bp.disk); err != nil {
			sh.mu.Unlock()
			return err
		}
		delete(sh.table, id)
		f.valid = false
		sh.mu.Unlock()
	}
	return nil
}

// Drop removes the page from the pool without writing it (used when a page
// is freed).
func (bp *BufferPool) Drop(id PageID) {
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if idx, ok := sh.table[id]; ok {
		sh.frames[idx] = frame{buf: sh.frames[idx].buf}
		delete(sh.table, id)
	}
}

// writeOutLocked flushes frame i if valid and dirty. Caller holds sh.mu.
func (sh *poolShard) writeOutLocked(i int, disk *DiskSim) error {
	f := &sh.frames[i]
	if !f.valid || !f.dirty {
		return nil
	}
	if sh.flushLSN != nil {
		lsn := NewPage(f.id, f.buf).LSN()
		if err := sh.flushLSN(lsn); err != nil {
			return err
		}
	}
	if err := disk.WritePage(f.id, f.buf); err != nil {
		return err
	}
	f.dirty = false
	sh.flushes++
	return nil
}

// victimLocked finds a free or evictable frame using the clock algorithm,
// flushing the victim if dirty. Caller holds sh.mu. A shard whose frames are
// all pinned reports ErrBufferBusy even if other shards have room — the
// price of independent shard locks, mitigated by keeping ≥8 frames per
// shard.
func (sh *poolShard) victimLocked(disk *DiskSim) (int, error) {
	n := len(sh.frames)
	for scanned := 0; scanned < 2*n; scanned++ {
		i := sh.hand
		sh.hand = (sh.hand + 1) % n
		f := &sh.frames[i]
		if !f.valid {
			return i, nil
		}
		if f.pin > 0 {
			continue
		}
		if f.refbit {
			f.refbit = false
			continue
		}
		if err := sh.writeOutLocked(i, disk); err != nil {
			return 0, err
		}
		delete(sh.table, f.id)
		f.valid = false
		return i, nil
	}
	return 0, ErrBufferBusy
}
