package sql

import (
	"strconv"
	"strings"
	"sync/atomic"

	"mood/internal/object"
)

// Statement-shape normalization for the plan cache. Two statements share a
// shape when they differ only in number/string literal values: the shape
// text replaces every such literal with '?', and ParseShaped additionally
// tags the corresponding expr.Const nodes with 1-based parameter indices in
// token order, so an optimized plan can be re-bound to fresh constants
// without re-parsing or re-planning. TRUE/FALSE/NULL stay literal — they
// shape control flow (constant folding, DNF pruning), not parameter values.

// ParseCount counts Parse/ParseScript/ParseShaped invocations. The plan
// cache's zero-parse guarantee is pinned against it in tests.
var ParseCount atomic.Int64

// tagParam numbers a literal when shape tagging is on (0 otherwise).
func (p *parser) tagParam() int {
	if !p.tagParams {
		return 0
	}
	p.nparams++
	return p.nparams
}

// numberValue converts a number literal exactly as the parser does.
func numberValue(text string) (object.Value, error) {
	if strings.ContainsAny(text, ".eE") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return object.Null, err
		}
		return object.NewFloat(f), nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return object.Null, err
	}
	if n >= -1<<31 && n < 1<<31 {
		return object.NewInt(int32(n)), nil
	}
	return object.NewLong(n), nil
}

// Shape lexes the input and returns its normalized shape text plus the
// literal values in parameter order. Statements with the same shape parse
// to identical trees up to the tagged constants.
func Shape(input string) (shape string, params []object.Value, err error) {
	toks, err := Lex(input)
	if err != nil {
		return "", nil, err
	}
	var sb strings.Builder
	for _, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		switch t.Kind {
		case TokNumber:
			v, err := numberValue(t.Text)
			if err != nil {
				return "", nil, err
			}
			params = append(params, v)
			sb.WriteByte('?')
		case TokString:
			params = append(params, object.NewString(t.Text))
			sb.WriteByte('?')
		default:
			sb.WriteString(t.Text)
		}
	}
	return sb.String(), params, nil
}

// ParseShaped parses one statement with its number/string literals tagged
// as parameters (expr.Const.Param = 1..nparams, in token order — the same
// order Shape reports values in). It returns the statement, its shape text
// and the literal values of this parse.
func ParseShaped(input string) (Statement, string, []object.Value, error) {
	shape, params, err := Shape(input)
	if err != nil {
		return nil, "", nil, err
	}
	ParseCount.Add(1)
	toks, err := Lex(input)
	if err != nil {
		return nil, "", nil, err
	}
	p := &parser{toks: toks, tagParams: true}
	stmt, err := p.statement()
	if err != nil {
		return nil, "", nil, err
	}
	p.accept(TokPunct, ";")
	if !p.at(TokEOF, "") {
		return nil, "", nil, p.errf("unexpected %s after statement", p.peek())
	}
	if p.nparams != len(params) {
		// A literal token the grammar consumed outside an expression (e.g.
		// a type arity) — the shape's '?' positions would not line up with
		// the tagged constants, so this statement cannot be parameterized.
		return nil, "", nil, errShapeMismatch
	}
	return stmt, shape, params, nil
}

// errShapeMismatch marks statements whose literals are not all expression
// constants; callers fall back to the plain parse path.
var errShapeMismatch = &shapeError{}

type shapeError struct{}

func (*shapeError) Error() string {
	return "sql: statement literals are not parameterizable"
}

// IsShapeMismatch reports whether err is the non-parameterizable marker.
func IsShapeMismatch(err error) bool {
	_, ok := err.(*shapeError)
	return ok
}
