package storage

import (
	"bytes"
	"fmt"
	"testing"
)

// TestShardedStoreRouting inserts through a sharded store and checks the
// routing invariants: OIDs carry the minting shard's tag, every read routes
// back to the owning shard, and round-robin placement keeps the parts
// balanced to within one record.
func TestShardedStoreRouting(t *testing.T) {
	for _, nshards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", nshards), func(t *testing.T) {
			s, _, _ := newTestShardedStore(t, nshards, 64)
			e, err := s.CreateExtent("extent.T")
			if err != nil {
				t.Fatal(err)
			}
			const n = 41
			oids := make([]OID, n)
			for i := 0; i < n; i++ {
				oid, err := s.InsertExtent(e, []byte(fmt.Sprintf("rec-%03d", i)))
				if err != nil {
					t.Fatal(err)
				}
				if sh := oid.Shard(); sh < 0 || sh >= nshards {
					t.Fatalf("record %d minted on shard %d, want [0,%d)", i, sh, nshards)
				}
				oids[i] = oid
			}
			// Round-robin placement: part cardinalities within one record.
			counts := make([]int, nshards)
			for _, oid := range oids {
				counts[oid.Shard()]++
			}
			min, max := n, 0
			for _, c := range counts {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if max-min > 1 {
				t.Fatalf("part cardinalities %v differ by more than one", counts)
			}
			if e.NumRecords() != n {
				t.Fatalf("NumRecords = %d, want %d", e.NumRecords(), n)
			}
			if got := len(e.PartPages()); got != nshards {
				t.Fatalf("PartPages has %d entries, want %d", got, nshards)
			}
			// Point reads route home.
			for i, oid := range oids {
				got, err := s.Get(oid)
				if err != nil {
					t.Fatalf("Get(%s): %v", oid, err)
				}
				if want := fmt.Sprintf("rec-%03d", i); string(got) != want {
					t.Fatalf("Get(%s) = %q, want %q", oid, got, want)
				}
			}
			// Update and delete through the interface.
			if err := s.Update(oids[7], []byte("updated")); err != nil {
				t.Fatal(err)
			}
			if got, _ := s.Get(oids[7]); string(got) != "updated" {
				t.Fatalf("after update: %q", got)
			}
			if err := s.Delete(oids[7]); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(oids[7]); err == nil {
				t.Fatal("Get after Delete succeeded")
			}
		})
	}
}

// TestShardedFetchBatchOrder checks that FetchBatch returns one slot per
// input OID in input order even when the batch interleaves shards.
func TestShardedFetchBatchOrder(t *testing.T) {
	s, _, _ := newTestShardedStore(t, 4, 64)
	e, err := s.CreateExtent("extent.T")
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	oids := make([]OID, n)
	for i := range oids {
		if oids[i], err = s.InsertExtent(e, []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Reverse order interleaves the shards maximally.
	req := make([]OID, n)
	for i := range req {
		req[i] = oids[n-1-i]
	}
	got, err := s.FetchBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("FetchBatch returned %d results, want %d", len(got), n)
	}
	for i, data := range got {
		if want := fmt.Sprintf("v%02d", n-1-i); !bytes.Equal(data, []byte(want)) {
			t.Fatalf("slot %d = %q, want %q", i, data, want)
		}
	}
}

// TestShardedScanSeesAll checks that ScanExtent visits every record exactly
// once across parts and honours early stop.
func TestShardedScanSeesAll(t *testing.T) {
	s, _, _ := newTestShardedStore(t, 3, 64)
	e, err := s.CreateExtent("extent.T")
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	want := map[string]bool{}
	for i := 0; i < n; i++ {
		v := fmt.Sprintf("row-%02d", i)
		if _, err := s.InsertExtent(e, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[v] = true
	}
	seen := map[string]bool{}
	if err := s.ScanExtent(e, func(oid OID, data []byte) bool {
		if seen[string(data)] {
			t.Fatalf("record %q delivered twice", data)
		}
		seen[string(data)] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("scan saw %d records, want %d", len(seen), n)
	}
	// Early stop: exactly k deliveries.
	calls := 0
	if err := s.ScanExtent(e, func(OID, []byte) bool {
		calls++
		return calls < 10
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("early-stopped scan delivered %d records, want 10", calls)
	}
}

// TestShardedReadCounters checks that ReadCount is the exact sum of the
// per-shard counters and that reads land on the owning shard's disk.
func TestShardedReadCounters(t *testing.T) {
	s, _, disks := newTestShardedStore(t, 2, 8)
	e, err := s.CreateExtent("extent.T")
	if err != nil {
		t.Fatal(err)
	}
	var oids []OID
	for i := 0; i < 40; i++ {
		oid, err := s.InsertExtent(e, bytes.Repeat([]byte{byte(i)}, 200))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	for _, oid := range oids {
		if _, err := s.Get(oid); err != nil {
			t.Fatal(err)
		}
	}
	per := s.ShardReads()
	if len(per) != 2 {
		t.Fatalf("ShardReads has %d entries, want 2", len(per))
	}
	var sum int64
	for i, n := range per {
		if n != disks[i].Stats().Reads() {
			t.Fatalf("shard %d: ShardReads=%d, disk reports %d", i, n, disks[i].Stats().Reads())
		}
		sum += n
	}
	if got := s.ReadCount(); got != sum {
		t.Fatalf("ReadCount = %d, per-shard sum = %d", got, sum)
	}
}

// TestShardedExtentReopen checks that an extent reopened through fresh file
// managers (a reboot) still resolves every part and every record.
func TestShardedExtentReopen(t *testing.T) {
	s, pools, _ := newTestShardedStore(t, 2, 64)
	e, err := s.CreateExtent("extent.T")
	if err != nil {
		t.Fatal(err)
	}
	var oids []OID
	for i := 0; i < 10; i++ {
		oid, err := s.InsertExtent(e, []byte(fmt.Sprintf("keep-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	// Reboot: new file managers over the same pools/disks, same shard tags.
	stores := make([]*ObjectStore, 2)
	for i := range stores {
		fm, err := OpenFileManager(pools[i], s.Shard(i).Files().DirPage())
		if err != nil {
			t.Fatalf("shard %d: OpenFileManager: %v", i, err)
		}
		stores[i] = NewShardObjectStore(pools[i], fm, i)
	}
	s2 := NewShardedStore(stores)
	e2, err := s2.OpenExtent("extent.T")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Parts() != 2 || e2.NumRecords() != 10 {
		t.Fatalf("reopened extent: parts=%d records=%d", e2.Parts(), e2.NumRecords())
	}
	for i, oid := range oids {
		got, err := s2.Get(oid)
		if err != nil {
			t.Fatalf("reopened Get(%s): %v", oid, err)
		}
		if want := fmt.Sprintf("keep-%d", i); string(got) != want {
			t.Fatalf("reopened Get(%s) = %q, want %q", oid, got, want)
		}
	}
}
