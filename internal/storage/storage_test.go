package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// The test-store factory family: every storage test builds its
// disk/pool/store stack through these helpers so the construction recipe
// lives in one place.

// newTestPool builds a simulated disk and a buffer pool over it.
func newTestPool(t testing.TB, frames int) (*BufferPool, *DiskSim) {
	t.Helper()
	disk := NewDiskSim(DefaultDiskParams())
	return NewBufferPool(disk, frames), disk
}

// newTestStore builds a complete single-store stack.
func newTestStore(t testing.TB, frames int) (*ObjectStore, *BufferPool, *DiskSim) {
	t.Helper()
	bp, disk := newTestPool(t, frames)
	fm, err := NewFileManager(bp)
	if err != nil {
		t.Fatalf("NewFileManager: %v", err)
	}
	return NewObjectStore(bp, fm), bp, disk
}

// newTestShardedStore builds nshards independent stacks (each with its own
// disk and pool, frames apiece) behind a ShardedStore.
func newTestShardedStore(t testing.TB, nshards, frames int) (*ShardedStore, []*BufferPool, []*DiskSim) {
	t.Helper()
	stores := make([]*ObjectStore, nshards)
	pools := make([]*BufferPool, nshards)
	disks := make([]*DiskSim, nshards)
	for i := range stores {
		pools[i], disks[i] = newTestPool(t, frames)
		fm, err := NewFileManager(pools[i])
		if err != nil {
			t.Fatalf("shard %d: NewFileManager: %v", i, err)
		}
		stores[i] = NewShardObjectStore(pools[i], fm, i)
	}
	return NewShardedStore(stores), pools, disks
}

func TestDiskParamsCosts(t *testing.T) {
	p := DefaultDiskParams()
	if got, want := p.RandomAccessTime(), p.S+p.R+p.BTT; got != want {
		t.Errorf("RandomAccessTime = %v, want %v", got, want)
	}
	if got, want := p.SequentialAccessTime(10), p.S+p.R+10*p.EBT; got != want {
		t.Errorf("SequentialAccessTime(10) = %v, want %v", got, want)
	}
	if got := p.SequentialAccessTime(0); got != 0 {
		t.Errorf("SequentialAccessTime(0) = %v, want 0", got)
	}
}

func TestDiskSimAllocReadWrite(t *testing.T) {
	d := NewDiskSim(DefaultDiskParams())
	a := d.AllocPage()
	b := d.AllocPage()
	if a == b {
		t.Fatalf("AllocPage returned duplicate id %d", a)
	}
	buf := make([]byte, d.PageSize())
	buf[0] = 0xAB
	if err := d.WritePage(a, buf); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	got := make([]byte, d.PageSize())
	if err := d.ReadPage(a, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if got[0] != 0xAB {
		t.Errorf("read back %x, want ab", got[0])
	}
	if err := d.ReadPage(999, got); err == nil {
		t.Error("ReadPage of unallocated page succeeded")
	}
	if err := d.FreePage(b); err != nil {
		t.Fatalf("FreePage: %v", err)
	}
	if err := d.FreePage(b); err == nil {
		t.Error("double FreePage succeeded")
	}
	// Freed pages are recycled.
	c := d.AllocPage()
	if c != b {
		t.Errorf("AllocPage after free = %d, want recycled %d", c, b)
	}
}

func TestDiskSimSequentialAccounting(t *testing.T) {
	d := NewDiskSim(DefaultDiskParams())
	ids := make([]PageID, 5)
	for i := range ids {
		ids[i] = d.AllocPage()
	}
	buf := make([]byte, d.PageSize())
	d.ResetStats()
	for _, id := range ids {
		if err := d.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.RandomReads != 1 || st.SequentialReads != 4 {
		t.Errorf("stats = %+v, want 1 random + 4 sequential reads", st)
	}
	// Time is accumulated in integer microseconds and only rendered as
	// milliseconds, so the expected figure is exact — no float drift.
	wantUs := microseconds(d.Params().RandomAccessTime()) + 4*microseconds(d.Params().EBT)
	if st.TimeUs != wantUs {
		t.Errorf("TimeUs = %d, want %d", st.TimeUs, wantUs)
	}
	if want := float64(wantUs) / 1000; st.TimeMs != want {
		t.Errorf("TimeMs = %v, want %v", st.TimeMs, want)
	}
	// Reverse order is all random.
	d.ResetStats()
	for i := len(ids) - 1; i >= 0; i-- {
		if err := d.ReadPage(ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	st = d.Stats()
	if st.RandomReads != 5 || st.SequentialReads != 0 {
		t.Errorf("reverse stats = %+v, want 5 random reads", st)
	}
}

func TestSlottedPageInsertGetDelete(t *testing.T) {
	buf := make([]byte, 4096)
	p := NewPage(1, buf)
	p.InitHeap(PageKindHeap)
	s1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(s1); string(got) != "hello" {
		t.Errorf("Get(s1) = %q", got)
	}
	if got, _ := p.Get(s2); string(got) != "world!" {
		t.Errorf("Get(s2) = %q", got)
	}
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s1); err != ErrRecordGone {
		t.Errorf("Get after delete = %v, want ErrRecordGone", err)
	}
	// Slot reuse.
	s3, err := p.Insert([]byte("again"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Errorf("tombstone slot not reused: got %d want %d", s3, s1)
	}
	if p.LiveRecords() != 2 {
		t.Errorf("LiveRecords = %d, want 2", p.LiveRecords())
	}
}

func TestSlottedPageUpdateGrowShrink(t *testing.T) {
	buf := make([]byte, 256)
	p := NewPage(1, buf)
	p.InitHeap(PageKindHeap)
	s, err := p.Insert(bytes.Repeat([]byte{1}, 50))
	if err != nil {
		t.Fatal(err)
	}
	// Shrink in place.
	if err := p.Update(s, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(s); !bytes.Equal(got, []byte{9, 9}) {
		t.Errorf("after shrink: %v", got)
	}
	// Grow, forcing relocation + compaction.
	big := bytes.Repeat([]byte{7}, 180)
	if err := p.Update(s, big); err != nil {
		t.Fatalf("grow update: %v", err)
	}
	if got, _ := p.Get(s); !bytes.Equal(got, big) {
		t.Error("after grow: content mismatch")
	}
	// Too big for the page entirely.
	if err := p.Update(s, bytes.Repeat([]byte{7}, 300)); err != ErrPageFull {
		t.Errorf("oversize update = %v, want ErrPageFull", err)
	}
}

func TestSlottedPageFillAndCompact(t *testing.T) {
	buf := make([]byte, 512)
	p := NewPage(1, buf)
	p.InitHeap(PageKindHeap)
	var slots []SlotID
	rec := bytes.Repeat([]byte{3}, 20)
	for {
		s, err := p.Insert(rec)
		if err == ErrPageFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if len(slots) < 10 {
		t.Fatalf("only %d records fit in 512B page", len(slots))
	}
	// Delete every other record, then inserts must succeed via compaction.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	refilled := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			break
		}
		refilled++
	}
	if refilled < len(slots)/2 {
		t.Errorf("refilled only %d records after deleting %d", refilled, (len(slots)+1)/2)
	}
	// Survivors intact.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Get(slots[i])
		if err != nil || !bytes.Equal(got, rec) {
			t.Errorf("survivor slot %d damaged: %v %v", slots[i], got, err)
		}
	}
}

func TestBufferPoolHitMissEvict(t *testing.T) {
	disk := NewDiskSim(DefaultDiskParams())
	bp := NewBufferPool(disk, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		pg, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pg.InitHeap(PageKindHeap)
		pg.Bytes()[100] = byte(i + 1)
		ids = append(ids, pg.ID)
		if err := bp.Unpin(pg.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	// Pool holds 2 frames; reading all three forces eviction and re-read.
	for i, id := range ids {
		pg, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Bytes()[100] != byte(i+1) {
			t.Errorf("page %d content %d, want %d", id, pg.Bytes()[100], i+1)
		}
		if err := bp.Unpin(id, false); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, flushes := bp.Stats()
	if misses == 0 || flushes == 0 {
		t.Errorf("expected evictions: hits=%d misses=%d flushes=%d", hits, misses, flushes)
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	disk := NewDiskSim(DefaultDiskParams())
	bp := NewBufferPool(disk, 2)
	p1, _ := bp.NewPage()
	p2, _ := bp.NewPage()
	if _, err := bp.NewPage(); err != ErrBufferBusy {
		t.Errorf("NewPage with all pinned = %v, want ErrBufferBusy", err)
	}
	bp.Unpin(p1.ID, true)
	bp.Unpin(p2.ID, true)
	if _, err := bp.NewPage(); err != nil {
		t.Errorf("NewPage after unpin: %v", err)
	}
}

func TestFileManagerCreateOpenDrop(t *testing.T) {
	st, bp, _ := newTestStore(t, 16)
	fm := st.Files()
	f, err := fm.CreateFile("extent.Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fm.CreateFile("extent.Vehicle"); err == nil {
		t.Error("duplicate CreateFile succeeded")
	}
	got, err := fm.OpenFile("extent.Vehicle")
	if err != nil || got.ID != f.ID {
		t.Fatalf("OpenFile: %v %v", got, err)
	}
	if _, err := fm.OpenFile("missing"); err == nil {
		t.Error("OpenFile of missing file succeeded")
	}
	// Insert data so the file has pages, then drop and verify pages freed.
	for i := 0; i < 100; i++ {
		if _, err := st.Insert(f, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	before := bp.Disk().NumPages()
	if err := fm.DropFile("extent.Vehicle"); err != nil {
		t.Fatal(err)
	}
	after := bp.Disk().NumPages()
	if after >= before {
		t.Errorf("DropFile freed no pages: before=%d after=%d", before, after)
	}
	if _, err := fm.OpenFile("extent.Vehicle"); err == nil {
		t.Error("OpenFile after drop succeeded")
	}
}

func TestFileManagerReopen(t *testing.T) {
	st, bp, _ := newTestStore(t, 16)
	fm := st.Files()
	f, err := fm.CreateFile("persist")
	if err != nil {
		t.Fatal(err)
	}
	oid, err := st.Insert(f, []byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Re-open over the same disk, as after a clean shutdown.
	bp2 := NewBufferPool(bp.Disk(), 16)
	fm2, err := OpenFileManager(bp2, fm.DirPage())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fm2.OpenFile("persist")
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumRecords() != 1 || f2.NumPages() != 1 {
		t.Errorf("reopened file: %d records %d pages, want 1/1", f2.NumRecords(), f2.NumPages())
	}
	st2 := NewObjectStore(bp2, fm2)
	data, err := st2.Get(oid)
	if err != nil || string(data) != "durable" {
		t.Errorf("Get after reopen: %q %v", data, err)
	}
}

func TestObjectStoreCRUD(t *testing.T) {
	st, _, _ := newTestStore(t, 16)
	f, _ := st.Files().CreateFile("crud")
	oid, err := st.Insert(f, []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := st.Get(oid); string(d) != "v1" {
		t.Errorf("Get = %q", d)
	}
	if err := st.Update(oid, []byte("version-two")); err != nil {
		t.Fatal(err)
	}
	if d, _ := st.Get(oid); string(d) != "version-two" {
		t.Errorf("Get after update = %q", d)
	}
	if err := st.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(oid); err != ErrRecordGone {
		t.Errorf("Get after delete = %v", err)
	}
	if f.NumRecords() != 0 {
		t.Errorf("NumRecords = %d after delete", f.NumRecords())
	}
}

func TestObjectStoreLargeRecords(t *testing.T) {
	st, _, disk := newTestStore(t, 16)
	f, _ := st.Files().CreateFile("blobs")
	// Spans multiple overflow pages.
	big := make([]byte, 3*disk.PageSize()+123)
	for i := range big {
		big[i] = byte(i * 7)
	}
	oid, err := st.Insert(f, big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large record roundtrip mismatch")
	}
	// Update large -> small frees the overflow chain.
	pagesBefore := disk.NumPages()
	if err := st.Update(oid, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if disk.NumPages() >= pagesBefore {
		t.Errorf("overflow pages not freed: %d -> %d", pagesBefore, disk.NumPages())
	}
	if got, _ := st.Get(oid); string(got) != "tiny" {
		t.Errorf("after shrink: %q", got)
	}
	// Update small -> large allocates a new chain.
	if err := st.Update(oid, big); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Get(oid); !bytes.Equal(got, big) {
		t.Error("after regrow: mismatch")
	}
	// Delete frees the chain.
	pagesBefore = disk.NumPages()
	if err := st.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if disk.NumPages() >= pagesBefore {
		t.Error("delete did not free overflow pages")
	}
}

func TestObjectStoreScan(t *testing.T) {
	st, _, _ := newTestStore(t, 8)
	f, _ := st.Files().CreateFile("scan")
	want := map[OID]string{}
	for i := 0; i < 500; i++ {
		data := fmt.Sprintf("record-%04d", i)
		oid, err := st.Insert(f, []byte(data))
		if err != nil {
			t.Fatal(err)
		}
		want[oid] = data
	}
	got := map[OID]string{}
	if err := st.Scan(f, func(oid OID, data []byte) bool {
		got[oid] = string(data)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan saw %d records, want %d", len(got), len(want))
	}
	for oid, w := range want {
		if got[oid] != w {
			t.Errorf("oid %v: got %q want %q", oid, got[oid], w)
		}
	}
	// Early stop.
	n := 0
	st.Scan(f, func(OID, []byte) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("early stop scanned %d, want 10", n)
	}
}

func TestOIDPacking(t *testing.T) {
	cases := []struct {
		file FileID
		page PageID
		slot SlotID
	}{
		{0, 0, 0}, {1, 1, 1}, {4095, 4294967295, 65535}, {42, 123456, 789},
	}
	for _, c := range cases {
		oid := MakeOID(c.file, c.page, c.slot)
		if oid.File() != c.file || oid.Page() != c.page || oid.Slot() != c.slot {
			t.Errorf("roundtrip %v: got (%d,%d,%d)", c, oid.File(), oid.Page(), oid.Slot())
		}
	}
	if !NilOID.IsNil() {
		t.Error("NilOID.IsNil() = false")
	}
	if MakeOID(1, 1, 0).IsNil() {
		t.Error("non-nil OID reported nil")
	}
}

func TestOIDPackingProperty(t *testing.T) {
	// The file field is 12 bits (the top 4 bits of the old 16-bit field now
	// carry the shard id); page and slot are unchanged.
	f := func(file uint16, page uint32, slot uint16, shard uint8) bool {
		fid := FileID(file) & maxFileID
		sh := int(shard) % MaxShards
		oid := MakeOID(fid, PageID(page), SlotID(slot)) | ShardTag(sh)
		return oid.File() == fid && oid.Page() == PageID(page) &&
			oid.Slot() == SlotID(slot) && oid.Shard() == sh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObjectStoreRandomizedWorkload(t *testing.T) {
	st, _, _ := newTestStore(t, 32)
	f, _ := st.Files().CreateFile("fuzz")
	rng := rand.New(rand.NewSource(1))
	live := map[OID][]byte{}
	var oids []OID
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(oids) == 0: // insert
			n := rng.Intn(300)
			data := make([]byte, n)
			rng.Read(data)
			oid, err := st.Insert(f, data)
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			live[oid] = data
			oids = append(oids, oid)
		case op < 7: // update
			oid := oids[rng.Intn(len(oids))]
			if _, ok := live[oid]; !ok {
				continue
			}
			n := rng.Intn(6000) // sometimes forces overflow
			data := make([]byte, n)
			rng.Read(data)
			if err := st.Update(oid, data); err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
			live[oid] = data
		case op < 8: // delete
			oid := oids[rng.Intn(len(oids))]
			if _, ok := live[oid]; !ok {
				continue
			}
			if err := st.Delete(oid); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(live, oid)
		default: // read
			oid := oids[rng.Intn(len(oids))]
			want, ok := live[oid]
			got, err := st.Get(oid)
			if ok {
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("step %d get: mismatch err=%v", step, err)
				}
			} else if err == nil {
				t.Fatalf("step %d get of deleted oid succeeded", step)
			}
		}
	}
	// Final full verification via scan.
	seen := 0
	if err := st.Scan(f, func(oid OID, data []byte) bool {
		want, ok := live[oid]
		if !ok {
			t.Errorf("scan found deleted oid %v", oid)
		} else if !bytes.Equal(data, want) {
			t.Errorf("scan content mismatch at %v", oid)
		}
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != len(live) {
		t.Errorf("scan saw %d live records, want %d", seen, len(live))
	}
}
