package optimizer

import (
	"fmt"
	"strings"

	"mood/internal/cost"
)

// DefaultParallelMinPages is the cost-model gate for intra-query
// parallelism: an operator is only exchanged across workers when its
// estimated page footprint reaches this many pages. Below it, the fixed
// cost of spinning up workers outweighs the latency the fan-out can hide.
const DefaultParallelMinPages = 16.0

// ExchangePlan fans its input out across worker goroutines and merges the
// worker streams back into one ordered row stream (the Volcano exchange
// operator, morsel-driven). The executor recognizes the exchangeable input
// shapes — extent scans with an optional fused selection, index selections,
// and hash-partition joins (probe side parallel, build side shared) — and
// falls back to serial execution of the input for anything else, so an
// ExchangePlan never changes results, only scheduling.
type ExchangePlan struct {
	Input   Plan
	Workers int
	card    float64
}

// Card returns the estimated output cardinality.
func (p *ExchangePlan) Card() float64 { return p.card }

func (p *ExchangePlan) render(sb *strings.Builder, indent string) {
	fmt.Fprintf(sb, "%sEXCHANGE(workers=%d,\n", indent, p.Workers)
	p.Input.render(sb, indent+"  ")
	sb.WriteString(")")
}

// Parallelize rewrites a plan for degree-of-parallelism workers: every
// exchangeable subtree whose estimated page footprint is at least minPages
// (<= 0 means no threshold) is wrapped in an ExchangePlan. The input plan is
// not mutated; untouched subtrees are shared between the old and new trees.
// Workers <= 1 returns the plan unchanged — serial plans stay byte-identical.
func Parallelize(p Plan, workers int, minPages float64, st *cost.Stats) Plan {
	if workers <= 1 || p == nil {
		return p
	}
	return parallelize(p, workers, minPages, st)
}

func parallelize(p Plan, workers int, minPages float64, st *cost.Stats) Plan {
	wrap := func(in Plan) Plan {
		if minPages > 0 && estPages(in, st) < minPages {
			return in
		}
		return &ExchangePlan{Input: in, Workers: workers, card: in.Card()}
	}
	switch n := p.(type) {
	case *BindPlan:
		return wrap(n)
	case *IndSelPlan:
		return wrap(n)
	case *SelectPlan:
		if _, overScan := n.Input.(*BindPlan); overScan {
			// Fuse the filter into the parallel scan: workers evaluate the
			// predicate on the rows of their own morsels.
			return wrap(n)
		}
		if in := parallelize(n.Input, workers, minPages, st); in != n.Input {
			return &SelectPlan{Input: in, Pred: n.Pred, card: n.card}
		}
	case *IntersectPlan:
		// Intersection consumes its IndSel inputs as OID sets without
		// fetching objects; exchanging them would force the fetches the
		// lazy path exists to avoid. Leave the whole subtree serial.
	case *JoinPlan:
		left := parallelize(n.Left, workers, minPages, st)
		right := n.Right
		if n.Method != cost.FusionJoin {
			// A fusion join absorbs its bind-shaped right child into the
			// operator; an exchange there would break the shape (and the
			// right extent is never scanned anyway).
			right = parallelize(n.Right, workers, minPages, st)
		}
		out := n
		if left != n.Left || right != n.Right {
			out = &JoinPlan{Left: left, Right: right, Method: n.Method,
				LeftVar: n.LeftVar, Attribute: n.Attribute, RightVar: n.RightVar,
				Index: n.Index, card: n.card}
		}
		if n.Method == cost.HashPartition {
			return wrap(out)
		}
		return out
	case *CrossPlan:
		left := parallelize(n.Left, workers, minPages, st)
		right := parallelize(n.Right, workers, minPages, st)
		if left != n.Left || right != n.Right {
			return &CrossPlan{Left: left, Right: right, card: n.card}
		}
	case *UnionPlan:
		changed := false
		inputs := make([]Plan, len(n.Inputs))
		for i, in := range n.Inputs {
			inputs[i] = parallelize(in, workers, minPages, st)
			changed = changed || inputs[i] != in
		}
		if changed {
			return &UnionPlan{Inputs: inputs, Vars: n.Vars, card: n.card}
		}
	case *ProjectPlan:
		if in := parallelize(n.Input, workers, minPages, st); in != n.Input {
			return &ProjectPlan{Input: in, Items: n.Items, card: n.card}
		}
	case *GroupPlan:
		if in := parallelize(n.Input, workers, minPages, st); in != n.Input {
			return &GroupPlan{Input: in, By: n.By, Having: n.Having, Projs: n.Projs, card: n.card}
		}
	case *SortPlan:
		if in := parallelize(n.Input, workers, minPages, st); in != n.Input {
			return &SortPlan{Input: in, Keys: n.Keys, card: n.card}
		}
	case *DupElimPlan:
		if in := parallelize(n.Input, workers, minPages, st); in != n.Input {
			return &DupElimPlan{Input: in, card: n.card}
		}
	}
	return p
}

// estPages estimates the page footprint an exchange over p would spread
// across workers: extent pages for scans, one random page fetch per
// qualifying OID for index selections, one probe fetch per left row for
// hash joins — the quantities the Section 5/6 formulas price.
func estPages(p Plan, st *cost.Stats) float64 {
	switch n := p.(type) {
	case *BindPlan:
		return classPages(st, n.Class)
	case *SelectPlan:
		return estPages(n.Input, st)
	case *IndSelPlan:
		return n.card
	case *JoinPlan:
		return n.Left.Card()
	case *ExchangePlan:
		return estPages(n.Input, st)
	}
	return 0
}

func classPages(st *cost.Stats, class string) float64 {
	if st == nil {
		return 0
	}
	if cs, err := st.Class(class); err == nil {
		return float64(cs.NbPages)
	}
	return 0
}
