package crashtest

import (
	"fmt"
	"testing"
)

// shardCounts are the topologies the sharded torture cycles through; 1
// degenerates to the single-store layout, so the same invariants run there
// too.
var shardCounts = []int{1, 2, 4}

// TestShardedTorture kills one shard's stack mid-commit (cycling every crash
// scenario and shard count) and verifies cross-shard recovery: every shard
// recovers independently, committed transactions survive everywhere, losers
// vanish everywhere, torn pages are repaired from the doublewrite area, and
// a fault on the victim shard never costs another shard a transaction.
//
// Replay one failing iteration with:
//
//	CRASHTEST_SEED=<seed> go test ./internal/crashtest -run TestShardedTorture -v
func TestShardedTorture(t *testing.T) {
	if seed, ok := envInt64("CRASHTEST_SEED", 0); ok {
		for _, n := range shardCounts {
			for _, point := range Points {
				res, err := RunSharded(Config{Seed: seed, Point: point}, n)
				if err != nil {
					t.Errorf("%v", err)
				}
				t.Logf("seed %d %s shards=%d: victim=%d fired=%v crashed=%q committed=%d torn=%d recovery=%+v",
					seed, point, n, res.Victim, res.Fired, res.CrashedAt, res.Committed, res.TornFixed, res.Recovery)
			}
		}
		return
	}

	iters, _ := envInt64("CRASHTEST_ITERS", defaultIterations)
	combos := len(Points) * len(shardCounts)
	if iters < int64(combos) {
		iters = int64(combos)
	}
	const baseSeed = 7000
	fired := map[Point]int{}
	victimStopped := 0
	survivedElsewhere := 0 // victim died, other shards still committed
	committedTotal, redone, undone, tornFixed := 0, 0, 0, 0
	for i := int64(0); i < iters; i++ {
		point := Points[i%int64(len(Points))]
		n := shardCounts[(int(i)/len(Points))%len(shardCounts)]
		seed := baseSeed + i
		res, err := RunSharded(Config{Seed: seed, Point: point}, n)
		if err != nil {
			t.Fatalf("%v\nreplay: CRASHTEST_SEED=%d go test ./internal/crashtest -run TestShardedTorture -v", err, seed)
		}
		if res.Fired {
			fired[point]++
		}
		if res.VictimStopped {
			victimStopped++
			if res.Shards > 1 && res.Committed > 0 {
				survivedElsewhere++
			}
		}
		committedTotal += res.Committed
		redone += res.Recovery.Redone
		undone += res.Recovery.Undone
		tornFixed += res.TornFixed
	}
	for _, point := range Points {
		if point == PointPostCommit {
			continue // arms no fault by design
		}
		if fired[point] == 0 {
			t.Errorf("scenario %s never fired its fault in %d iterations", point, iters)
		}
	}
	if victimStopped == 0 {
		t.Error("no iteration ever killed its victim shard mid-flight")
	}
	if survivedElsewhere == 0 {
		t.Error("no multi-shard iteration committed on surviving shards after the victim died")
	}
	if committedTotal == 0 || redone == 0 || undone == 0 {
		t.Errorf("weak coverage: committed=%d redone=%d undone=%d", committedTotal, redone, undone)
	}
	if tornFixed == 0 {
		t.Errorf("no torn page was ever repaired in %d iterations", iters)
	}
	t.Logf("%d iterations: committed=%d redone=%d undone=%d tornFixed=%d victimStopped=%d survivedElsewhere=%d",
		iters, committedTotal, redone, undone, tornFixed, victimStopped, survivedElsewhere)
}

// TestRunShardedIsDeterministic re-runs the same seed at every shard count
// and demands identical results — what makes CRASHTEST_SEED replays exact.
func TestRunShardedIsDeterministic(t *testing.T) {
	for _, n := range shardCounts {
		for _, point := range Points {
			a, errA := RunSharded(Config{Seed: 4242, Point: point}, n)
			b, errB := RunSharded(Config{Seed: 4242, Point: point}, n)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s shards=%d: error mismatch: %v vs %v", point, n, errA, errB)
			}
			if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
				t.Errorf("%s shards=%d: same seed, different results:\n%+v\n%+v", point, n, a, b)
			}
		}
	}
}
