// Package vehicledb builds the paper's running example database: the
// Vehicle / VehicleDriveTrain / VehicleEngine / Company / Employee schema of
// Section 3.1, populated synthetically with the reference structure of
// Tables 13–15 (fan(A,C,D)=1 chains, every drivetrain shared by two
// vehicles, companies referenced by a tenth of their extent, cylinders
// drawn from 16 distinct even values in [2,32]). Tests, examples, and the
// moodbench experiment harness all build their workloads through it.
package vehicledb

import (
	"fmt"
	"math/rand"

	"mood/internal/catalog"
	"mood/internal/object"
	"mood/internal/storage"
)

// Config scales the generated database. The paper's Table 13 uses
// 20000/10000/10000/200000; tests default to a laptop-friendly scale with
// the same ratios.
type Config struct {
	Vehicles    int
	DriveTrains int
	Engines     int
	Companies   int
	Employees   int
	Seed        int64
	// Subclasses controls whether a share of vehicles is created as
	// Automobile / JapaneseAuto instances (for IS-A queries).
	Subclasses bool
}

// DefaultConfig returns a 1/10-scale version of Table 13's cardinalities.
func DefaultConfig() Config {
	return Config{
		Vehicles:    2000,
		DriveTrains: 1000,
		Engines:     1000,
		Companies:   20000,
		Employees:   100,
		Seed:        1,
	}
}

// PaperConfig returns the full Table 13 cardinalities (20000 vehicles,
// 200000 companies) — sized for benches, not unit tests.
func PaperConfig() Config {
	return Config{
		Vehicles:    20000,
		DriveTrains: 10000,
		Engines:     10000,
		Companies:   200000,
		Employees:   1000,
		Seed:        1,
	}
}

// DB holds the created object identifiers for direct inspection.
type DB struct {
	Cat         *catalog.Catalog
	Vehicles    []storage.OID
	DriveTrains []storage.OID
	Engines     []storage.OID
	Companies   []storage.OID
	Employees   []storage.OID
}

// NewEnvironment creates a fresh simulated disk, buffer pool, store and
// catalog, returning the catalog and buffer pool.
func NewEnvironment(bufferFrames int) (*catalog.Catalog, *storage.BufferPool, error) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, bufferFrames)
	fm, err := storage.NewFileManager(bp)
	if err != nil {
		return nil, nil, err
	}
	cat, err := catalog.New(storage.NewObjectStore(bp, fm))
	if err != nil {
		return nil, nil, err
	}
	return cat, bp, nil
}

// DefineSchema creates the Section 3.1 classes (with the paper's methods
// declared on Vehicle) in the catalog.
func DefineSchema(cat *catalog.Catalog) error {
	type def struct {
		name    string
		tuple   *object.Type
		supers  []string
		methods []*catalog.MethodSig
	}
	defs := []def{
		{"VehicleEngine", object.TupleOf(
			object.Field{Name: "size", Type: object.TInteger},
			object.Field{Name: "cylinders", Type: object.TInteger},
		), nil, nil},
		{"VehicleDriveTrain", object.TupleOf(
			object.Field{Name: "engine", Type: object.RefTo("VehicleEngine")},
			object.Field{Name: "transmission", Type: object.StringN(32)},
		), nil, nil},
		{"Employee", object.TupleOf(
			object.Field{Name: "ssno", Type: object.TInteger},
			object.Field{Name: "name", Type: object.StringN(32)},
			object.Field{Name: "age", Type: object.TInteger},
		), nil, nil},
		{"Company", object.TupleOf(
			object.Field{Name: "name", Type: object.StringN(32)},
			object.Field{Name: "location", Type: object.StringN(32)},
			object.Field{Name: "president", Type: object.RefTo("Employee")},
		), nil, nil},
		{"Vehicle", object.TupleOf(
			object.Field{Name: "id", Type: object.TInteger},
			object.Field{Name: "weight", Type: object.TInteger},
			object.Field{Name: "drivetrain", Type: object.RefTo("VehicleDriveTrain")},
			object.Field{Name: "manufacturer", Type: object.RefTo("Company")},
		), nil, []*catalog.MethodSig{
			{Name: "lbweight", ReturnType: object.TInteger},
			{Name: "weight", ReturnType: object.TInteger},
		}},
		{"Automobile", object.TupleOf(), []string{"Vehicle"}, nil},
		{"JapaneseAuto", object.TupleOf(), []string{"Automobile"}, nil},
	}
	for _, d := range defs {
		if _, err := cat.DefineClass(d.name, d.tuple, d.supers, d.methods); err != nil {
			return err
		}
	}
	return nil
}

// Transmissions mirror the paper's example predicate values.
var Transmissions = []string{"AUTOMATIC", "MANUAL", "CVT", "DCT"}

// Populate fills the schema with cfg-scaled data reproducing the reference
// statistics of Tables 13–15:
//
//   - cylinders: 16 distinct even values 2..32 (dist=16, min=2, max=32);
//   - each drivetrain references exactly one engine (fan=1, totref=|E|);
//   - vehicles share drivetrains pairwise when |V| = 2|DT| (fan=1,
//     totref=|DT|, totlinks=|V|);
//   - manufacturers are drawn from the first |V| companies so that
//     hitprb = |V|/|Companies| (0.1 at the paper's scale).
func Populate(cat *catalog.Catalog, cfg Config) (*DB, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := &DB{Cat: cat}

	for i := 0; i < cfg.Engines; i++ {
		oid, err := cat.CreateObject("VehicleEngine", object.NewTuple(
			[]string{"size", "cylinders"},
			[]object.Value{
				object.NewInt(int32(1000 + rng.Intn(4000))),
				object.NewInt(int32(2 + 2*(i%16))), // 2,4,...,32
			},
		))
		if err != nil {
			return nil, err
		}
		db.Engines = append(db.Engines, oid)
	}

	for i := 0; i < cfg.DriveTrains; i++ {
		engine := storage.NilOID
		if cfg.Engines > 0 {
			engine = db.Engines[i%cfg.Engines]
		}
		oid, err := cat.CreateObject("VehicleDriveTrain", object.NewTuple(
			[]string{"engine", "transmission"},
			[]object.Value{
				object.NewRef(engine),
				object.NewString(Transmissions[i%len(Transmissions)]),
			},
		))
		if err != nil {
			return nil, err
		}
		db.DriveTrains = append(db.DriveTrains, oid)
	}

	for i := 0; i < cfg.Employees; i++ {
		oid, err := cat.CreateObject("Employee", object.NewTuple(
			[]string{"ssno", "name", "age"},
			[]object.Value{
				object.NewInt(int32(10000 + i)),
				object.NewString(fmt.Sprintf("employee-%d", i)),
				object.NewInt(int32(25 + rng.Intn(40))),
			},
		))
		if err != nil {
			return nil, err
		}
		db.Employees = append(db.Employees, oid)
	}

	locations := []string{"Ankara", "Munich", "Tokyo", "Detroit", "Istanbul"}
	for i := 0; i < cfg.Companies; i++ {
		president := storage.NilOID
		if cfg.Employees > 0 {
			president = db.Employees[i%cfg.Employees]
		}
		name := fmt.Sprintf("company-%06d", i)
		if i == 0 {
			name = "BMW" // the paper's query constant
		}
		oid, err := cat.CreateObject("Company", object.NewTuple(
			[]string{"name", "location", "president"},
			[]object.Value{
				object.NewString(name),
				object.NewString(locations[i%len(locations)]),
				object.NewRef(president),
			},
		))
		if err != nil {
			return nil, err
		}
		db.Companies = append(db.Companies, oid)
	}

	for i := 0; i < cfg.Vehicles; i++ {
		class := "Vehicle"
		if cfg.Subclasses {
			// Class assignment strides by blocks of four so it stays
			// uncorrelated with the drivetrain/transmission cycle (i mod 4).
			switch (i / 4) % 4 {
			case 1, 2:
				class = "Automobile"
			case 3:
				class = "JapaneseAuto"
			}
		}
		dt := storage.NilOID
		if cfg.DriveTrains > 0 {
			dt = db.DriveTrains[i%cfg.DriveTrains] // pairwise sharing
		}
		mf := storage.NilOID
		if cfg.Companies > 0 {
			// Reference only the first |V| companies: totref = min(|V|,
			// |Companies|) and hitprb = totref/|Companies|.
			span := cfg.Vehicles
			if span > cfg.Companies {
				span = cfg.Companies
			}
			mf = db.Companies[i%span]
		}
		oid, err := cat.CreateObject(class, object.NewTuple(
			[]string{"id", "weight", "drivetrain", "manufacturer"},
			[]object.Value{
				object.NewInt(int32(i)),
				object.NewInt(int32(800 + rng.Intn(2200))),
				object.NewRef(dt),
				object.NewRef(mf),
			},
		))
		if err != nil {
			return nil, err
		}
		db.Vehicles = append(db.Vehicles, oid)
	}
	return db, nil
}

// Build creates an environment, defines the schema, and populates it.
func Build(cfg Config, bufferFrames int) (*DB, *storage.BufferPool, error) {
	cat, bp, err := NewEnvironment(bufferFrames)
	if err != nil {
		return nil, nil, err
	}
	if err := DefineSchema(cat); err != nil {
		return nil, nil, err
	}
	db, err := Populate(cat, cfg)
	if err != nil {
		return nil, nil, err
	}
	return db, bp, nil
}
