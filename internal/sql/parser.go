package sql

import (
	"fmt"
	"strconv"
	"strings"

	"mood/internal/expr"
	"mood/internal/object"
)

// Parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
	// tagParams numbers every number/string literal as a shape parameter
	// (see ParseShaped); nparams counts them in token order.
	tagParams bool
	nparams   int
}

// Parse parses one MOODSQL statement (a trailing semicolon is permitted).
func Parse(input string) (Statement, error) {
	ParseCount.Add(1)
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(TokPunct, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(input string) ([]Statement, error) {
	ParseCount.Add(1)
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for !p.at(TokEOF, "") {
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		if !p.accept(TokPunct, ";") && !p.at(TokEOF, "") {
			return nil, p.errf("expected ';' between statements, got %s", p.peek())
		}
		for p.accept(TokPunct, ";") {
		}
	}
	return out, nil
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k TokenKind, text string) bool {
	t := p.peek()
	return t.Kind == k && (text == "" || t.Text == text)
}
func (p *parser) accept(k TokenKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) expect(k TokenKind, text string) (Token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", k)
	}
	return Token{}, p.errf("expected %s, got %s", want, p.peek())
}
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

func (p *parser) ident() (string, error) {
	if p.at(TokIdent, "") {
		return p.next().Text, nil
	}
	return "", p.errf("expected identifier, got %s", p.peek())
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(TokKeyword, "SELECT"):
		return p.selectStmt()
	case p.at(TokKeyword, "EXPLAIN"):
		return p.explainStmt()
	case p.at(TokKeyword, "CREATE"):
		return p.createStmt()
	case p.at(TokKeyword, "DROP"):
		return p.dropStmt()
	case p.at(TokKeyword, "NEW"):
		return p.newStmt()
	case p.at(TokKeyword, "UPDATE"):
		return p.updateStmt()
	case p.at(TokKeyword, "DELETE"):
		return p.deleteStmt()
	}
	return nil, p.errf("expected a statement, got %s", p.peek())
}

// --- DDL -----------------------------------------------------------------

func (p *parser) createStmt() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.accept(TokKeyword, "CLASS"):
		return p.createClass(false)
	case p.accept(TokKeyword, "TYPE"):
		return p.createClass(true)
	case p.accept(TokKeyword, "UNIQUE"):
		if _, err := p.expect(TokKeyword, "INDEX"); err != nil {
			return nil, err
		}
		return p.createIndex(true)
	case p.accept(TokKeyword, "INDEX"):
		return p.createIndex(false)
	case p.accept(TokKeyword, "JOIN"):
		if _, err := p.expect(TokKeyword, "INDEX"); err != nil {
			return nil, err
		}
		return p.createJoinIndex()
	}
	return nil, p.errf("expected CLASS, TYPE, INDEX or JOIN INDEX after CREATE")
}

func (p *parser) createClass(isType bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	out := &CreateClass{Name: name, IsType: isType}
	if p.accept(TokKeyword, "INHERITS") {
		if _, err := p.expect(TokKeyword, "FROM"); err != nil {
			return nil, err
		}
		for {
			s, err := p.ident()
			if err != nil {
				return nil, err
			}
			out.Supers = append(out.Supers, s)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "TUPLE") {
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		for !p.at(TokPunct, ")") {
			fname, err := p.ident()
			if err != nil {
				return nil, err
			}
			ftype, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			out.Fields = append(out.Fields, FieldDef{Name: fname, Type: ftype})
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if p.accept(TokKeyword, "METHODS") {
		p.accept(TokPunct, ":")
		for p.at(TokIdent, "") {
			m, err := p.methodDef()
			if err != nil {
				return nil, err
			}
			out.Methods = append(out.Methods, m)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}
	return out, nil
}

// methodDef parses "name ( [pname ptype, ...] ) rettype".
func (p *parser) methodDef() (MethodDef, error) {
	var m MethodDef
	name, err := p.ident()
	if err != nil {
		return m, err
	}
	m.Name = name
	if _, err := p.expect(TokPunct, "("); err != nil {
		return m, err
	}
	for !p.at(TokPunct, ")") {
		pname, err := p.ident()
		if err != nil {
			return m, err
		}
		ptype, err := p.typeExpr()
		if err != nil {
			return m, err
		}
		m.ParamNames = append(m.ParamNames, pname)
		m.ParamTypes = append(m.ParamTypes, ptype)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return m, err
	}
	ret, err := p.typeExpr()
	if err != nil {
		return m, err
	}
	m.Return = ret
	return m, nil
}

// typeExpr parses a MOOD type: basic names, String(n), REFERENCE (C),
// SET (t), LIST (t), TUPLE (...).
func (p *parser) typeExpr() (*object.Type, error) {
	switch {
	case p.accept(TokKeyword, "REFERENCE"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cls, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return object.RefTo(cls), nil
	case p.at(TokKeyword, "SET"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		elem, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return object.SetOf(elem), nil
	case p.accept(TokKeyword, "LIST"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		elem, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return object.ListOf(elem), nil
	case p.accept(TokKeyword, "TUPLE"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		var fields []object.Field
		for !p.at(TokPunct, ")") {
			fname, err := p.ident()
			if err != nil {
				return nil, err
			}
			ftype, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			fields = append(fields, object.Field{Name: fname, Type: ftype})
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return object.TupleOf(fields...), nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(name) {
	case "integer", "int":
		return object.TInteger, nil
	case "longinteger", "long":
		return object.TLongInteger, nil
	case "float", "double":
		return object.TFloat, nil
	case "char":
		return object.TChar, nil
	case "boolean", "bool":
		return object.TBoolean, nil
	case "string":
		if p.accept(TokPunct, "(") {
			num, err := p.expect(TokNumber, "")
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(num.Text)
			if err != nil {
				return nil, p.errf("bad string length %q", num.Text)
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return object.StringN(n), nil
		}
		return object.TString, nil
	}
	return nil, p.errf("unknown type %q", name)
}

func (p *parser) createIndex(unique bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "ON"); err != nil {
		return nil, err
	}
	class, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	out := &CreateIndex{Name: name, Class: class, Attr: attr, Unique: unique}
	if p.accept(TokKeyword, "USING") {
		switch {
		case p.accept(TokKeyword, "BTREE"):
		case p.accept(TokKeyword, "HASH"):
			out.Hash = true
		default:
			return nil, p.errf("expected BTREE or HASH after USING")
		}
	}
	return out, nil
}

// createJoinIndex parses the tail of CREATE JOIN INDEX name ON class(attr).
func (p *parser) createJoinIndex() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "ON"); err != nil {
		return nil, err
	}
	class, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	return &CreateJoinIndex{Name: name, Class: class, Attr: attr}, nil
}

func (p *parser) dropStmt() (Statement, error) {
	p.next() // DROP
	switch {
	case p.accept(TokKeyword, "CLASS"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropClass{Name: name}, nil
	case p.accept(TokKeyword, "INDEX"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: name}, nil
	}
	return nil, p.errf("expected CLASS or INDEX after DROP")
}

// --- DML -----------------------------------------------------------------

// newStmt parses: new Class < v1, v2, ... >
func (p *parser) newStmt() (Statement, error) {
	p.next() // NEW
	class, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "<"); err != nil {
		return nil, err
	}
	out := &NewObject{Class: class}
	for !p.at(TokPunct, ">") {
		// Values parse at additive level so the closing '>' is not taken
		// for a comparison operator.
		e, err := p.additive()
		if err != nil {
			return nil, err
		}
		out.Values = append(out.Values, e)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, ">"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	from, err := p.fromItem()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	out := &Update{From: from}
	for {
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "="); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		out.Sets = append(out.Sets, SetClause{Attr: attr, Value: val})
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	return out, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.fromItem()
	if err != nil {
		return nil, err
	}
	out := &Delete{From: from}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	return out, nil
}

// --- SELECT --------------------------------------------------------------

// explainStmt parses EXPLAIN [ANALYZE] <select>.
func (p *parser) explainStmt() (Statement, error) {
	p.next() // EXPLAIN
	analyze := p.accept(TokKeyword, "ANALYZE")
	if !p.at(TokKeyword, "SELECT") {
		return nil, p.errf("expected SELECT after EXPLAIN, got %s", p.peek())
	}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	return &Explain{Analyze: analyze, Query: stmt.(*Select)}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.next() // SELECT
	out := &Select{}
	out.Distinct = p.accept(TokKeyword, "DISTINCT")
	for {
		item, err := p.projItem()
		if err != nil {
			return nil, err
		}
		out.Projs = append(out.Projs, item)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.fromItem()
		if err != nil {
			return nil, err
		}
		out.From = append(out.From, fi)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	// The paper's grammar lists GROUP BY before WHERE; accept both orders.
	for {
		switch {
		case p.accept(TokKeyword, "WHERE"):
			if out.Where != nil {
				return nil, p.errf("duplicate WHERE")
			}
			w, err := p.expression()
			if err != nil {
				return nil, err
			}
			out.Where = w
		case p.accept(TokKeyword, "GROUP"):
			if _, err := p.expect(TokKeyword, "BY"); err != nil {
				return nil, err
			}
			for {
				ref, err := p.pathRef()
				if err != nil {
					return nil, err
				}
				out.GroupBy = append(out.GroupBy, ref)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if p.accept(TokKeyword, "HAVING") {
				h, err := p.expression()
				if err != nil {
					return nil, err
				}
				out.Having = h
			}
		case p.accept(TokKeyword, "ORDER"):
			if _, err := p.expect(TokKeyword, "BY"); err != nil {
				return nil, err
			}
			for {
				ref, err := p.pathRef()
				if err != nil {
					return nil, err
				}
				item := OrderItem{Ref: ref}
				if p.accept(TokKeyword, "DESC") {
					item.Desc = true
				} else {
					p.accept(TokKeyword, "ASC")
				}
				out.OrderBy = append(out.OrderBy, item)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
		default:
			return out, nil
		}
	}
}

func (p *parser) projItem() (ProjItem, error) {
	var item ProjItem
	for _, agg := range []struct {
		kw   string
		kind AggKind
	}{
		{"COUNT", AggCount}, {"SUM", AggSum}, {"AVG", AggAvg},
		{"MIN", AggMin}, {"MAX", AggMax},
	} {
		if p.at(TokKeyword, agg.kw) && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == "(" {
			p.next()
			p.next() // (
			item.Agg = agg.kind
			if agg.kind == AggCount && p.accept(TokPunct, "*") {
				item.Star = true
			} else {
				e, err := p.expression()
				if err != nil {
					return item, err
				}
				item.Expr = e
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return item, err
			}
			if p.accept(TokKeyword, "AS") {
				as, err := p.ident()
				if err != nil {
					return item, err
				}
				item.As = as
			}
			return item, nil
		}
	}
	e, err := p.expression()
	if err != nil {
		return item, err
	}
	item.Expr = e
	if p.accept(TokKeyword, "AS") {
		as, err := p.ident()
		if err != nil {
			return item, err
		}
		item.As = as
	}
	return item, nil
}

func (p *parser) fromItem() (FromItem, error) {
	var fi FromItem
	fi.Every = p.accept(TokKeyword, "EVERY")
	class, err := p.ident()
	if err != nil {
		return fi, err
	}
	fi.Class = class
	for p.accept(TokPunct, "-") {
		m, err := p.ident()
		if err != nil {
			return fi, err
		}
		fi.Minus = append(fi.Minus, m)
	}
	v, err := p.ident()
	if err != nil {
		return fi, fmt.Errorf("sql: FROM item %s needs a range variable: %w", class, err)
	}
	fi.Var = v
	return fi, nil
}

func (p *parser) pathRef() (PathRef, error) {
	name, err := p.ident()
	if err != nil {
		return PathRef{}, err
	}
	ref := PathRef{Var: name}
	for p.accept(TokPunct, ".") {
		attr, err := p.ident()
		if err != nil {
			return ref, err
		}
		ref.Path = append(ref.Path, attr)
	}
	return ref, nil
}

// --- expressions ----------------------------------------------------------

// expression parses OR-level precedence.
func (p *parser) expression() (expr.Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &expr.Logic{Op: expr.OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) andExpr() (expr.Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &expr.Logic{Op: expr.OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) notExpr() (expr.Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: e}, nil
	}
	return p.comparison()
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.OpEq, "<>": expr.OpNe, ">=": expr.OpGe,
	"<=": expr.OpLe, ">": expr.OpGt, "<": expr.OpLt,
}

func (p *parser) comparison() (expr.Expr, error) {
	left, err := p.additive()
	if err != nil {
		return nil, err
	}
	if p.accept(TokKeyword, "BETWEEN") {
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &expr.Between{E: left, Lo: lo, Hi: hi}, nil
	}
	if t := p.peek(); t.Kind == TokPunct {
		if op, ok := cmpOps[t.Text]; ok {
			p.next()
			right, err := p.additive()
			if err != nil {
				return nil, err
			}
			return &expr.Cmp{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) additive() (expr.Expr, error) {
	left, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.ArithOp
		switch {
		case p.at(TokPunct, "+"):
			op = expr.OpAdd
		case p.at(TokPunct, "-"):
			op = expr.OpSub
		default:
			return left, nil
		}
		p.next()
		right, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		left = &expr.Arith{Op: op, L: left, R: right}
	}
}

func (p *parser) multiplicative() (expr.Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.ArithOp
		switch {
		case p.at(TokPunct, "*"):
			op = expr.OpMul
		case p.at(TokPunct, "/"):
			op = expr.OpDiv
		case p.at(TokPunct, "%"):
			op = expr.OpMod
		default:
			return left, nil
		}
		p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &expr.Arith{Op: op, L: left, R: right}
	}
}

func (p *parser) unary() (expr.Expr, error) {
	if p.accept(TokPunct, "-") {
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &expr.Neg{E: e}, nil
	}
	return p.postfix()
}

// postfix parses primary expressions followed by .attr and .method(args)
// chains — the path expressions at the heart of MOODSQL.
func (p *parser) postfix() (expr.Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.accept(TokPunct, ".") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.accept(TokPunct, "(") {
			call := &expr.Call{Base: e, Method: name}
			for !p.at(TokPunct, ")") {
				arg, err := p.expression()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			e = call
		} else {
			e = &expr.Field{Base: e, Name: name}
		}
	}
	return e, nil
}

func (p *parser) primary() (expr.Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		v, err := numberValue(t.Text)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &expr.Const{Val: v, Param: p.tagParam()}, nil
	case t.Kind == TokString:
		p.next()
		return &expr.Const{Val: object.NewString(t.Text), Param: p.tagParam()}, nil
	case t.Kind == TokKeyword && t.Text == "TRUE":
		p.next()
		return &expr.Const{Val: object.NewBool(true)}, nil
	case t.Kind == TokKeyword && t.Text == "FALSE":
		p.next()
		return &expr.Const{Val: object.NewBool(false)}, nil
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.next()
		return &expr.Const{Val: object.Null}, nil
	case t.Kind == TokIdent:
		p.next()
		return &expr.Var{Name: t.Text}, nil
	case p.accept(TokPunct, "("):
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected an expression, got %s", t)
}
