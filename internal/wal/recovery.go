package wal

import (
	"sort"

	"mood/internal/storage"
)

// RecoveryStats reports what a recovery pass did.
type RecoveryStats struct {
	Analyzed int // durable records scanned
	Redone   int // updates re-applied
	Undone   int // updates rolled back
	Losers   int // loser transactions
}

// Recover brings the disk behind bp to a transaction-consistent state from
// the durable prefix of the log, in the classic three passes:
//
//  1. Analysis: find the last checkpoint, rebuild the active-transaction
//     table, and classify winners (committed) vs losers.
//  2. Redo: re-apply every durable update (and CLR) whose LSN is newer than
//     the target page's LSN — repeating history.
//  3. Undo: roll back loser transactions newest-first, writing CLRs.
//
// A fresh Log suitable for continued operation is the receiver itself: the
// in-memory record list already holds the durable prefix, and recovery
// appends its CLR/abort records to it.
func (l *Log) Recover(bp *storage.BufferPool) (RecoveryStats, error) {
	var st RecoveryStats
	records := l.DurableRecords()
	st.Analyzed = len(records)

	// --- Analysis ---
	committed := map[TxID]bool{}
	finished := map[TxID]bool{}
	lastLSN := map[TxID]LSN{}
	for _, rec := range records {
		switch rec.Kind {
		case RecCommit:
			committed[rec.Tx] = true
			finished[rec.Tx] = true
		case RecAbort:
			finished[rec.Tx] = true
		case RecBegin, RecUpdate, RecCLR:
			lastLSN[rec.Tx] = rec.LSN
		}
	}
	var losers []TxID
	for tx := range lastLSN {
		if !finished[tx] {
			losers = append(losers, tx)
		}
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i] < losers[j] })
	st.Losers = len(losers)

	// Truncate the volatile suffix: after a crash only the durable prefix
	// exists. Rebuild in-memory state from it.
	l.mu.Lock()
	l.records = append([]Record(nil), records...)
	if len(records) > 0 {
		l.base = records[0].LSN - 1
	} else {
		l.base = l.flushed
	}
	l.nextLSN = l.flushed + 1
	l.active = make(map[TxID]LSN)
	for _, tx := range losers {
		l.active[tx] = lastLSN[tx]
	}
	var maxTx TxID
	for tx := range lastLSN {
		if tx > maxTx {
			maxTx = tx
		}
	}
	for tx := range committed {
		if tx > maxTx {
			maxTx = tx
		}
	}
	if l.nextTx <= maxTx {
		l.nextTx = maxTx + 1
	}
	l.mu.Unlock()

	// --- Redo: repeat history ---
	for _, rec := range records {
		if rec.Kind != RecUpdate && rec.Kind != RecCLR {
			continue
		}
		pg, err := bp.Fetch(rec.Page)
		if err != nil {
			return st, err
		}
		if LSN(pg.LSN()) < rec.LSN {
			copy(pg.Bytes()[rec.Offset:], rec.After)
			pg.SetLSN(uint32(rec.LSN))
			st.Redone++
			if err := bp.Unpin(rec.Page, true); err != nil {
				return st, err
			}
		} else if err := bp.Unpin(rec.Page, false); err != nil {
			return st, err
		}
	}

	// --- Undo losers ---
	apply := func(page storage.PageID, offset int, image []byte, lsn LSN) error {
		pg, err := bp.Fetch(page)
		if err != nil {
			return err
		}
		copy(pg.Bytes()[offset:], image)
		pg.SetLSN(uint32(lsn))
		st.Undone++
		return bp.Unpin(page, true)
	}
	for i := len(losers) - 1; i >= 0; i-- {
		if err := l.Abort(losers[i], apply); err != nil {
			return st, err
		}
	}
	l.FlushAll()
	return st, nil
}
