package catalog

import (
	"encoding/binary"
	"fmt"

	"mood/internal/objcache"
	"mood/internal/object"
	"mood/internal/storage"
)

// Stored object format: uvarint class id ++ encoded value. Carrying the
// class id with every object is what lets the kernel "identify type and
// value of an object in the system at run-time using the MOOD Catalog"
// (Section 9.4).

func encodeObject(classID int, v object.Value) []byte {
	buf := binary.AppendUvarint(nil, uint64(classID))
	return object.Encode(buf, v)
}

func decodeObject(data []byte) (int, object.Value, error) {
	id, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, object.Null, fmt.Errorf("catalog: corrupt object header")
	}
	v, err := object.Unmarshal(data[n:])
	return int(id), v, err
}

// CreateObject inserts a new instance of the class into its extent,
// type-checking it against the class's full (inherited) attribute set, and
// maintains every index on the class. It returns the object identifier.
func (c *Catalog) CreateObject(class string, v object.Value) (storage.OID, error) {
	cl, err := c.Class(class)
	if err != nil {
		return storage.NilOID, err
	}
	if !cl.IsClass {
		return storage.NilOID, fmt.Errorf("catalog: %s is a type; only classes have extents", class)
	}
	full, err := c.fullTuple(class)
	if err != nil {
		return storage.NilOID, err
	}
	if err := full.Check(v); err != nil {
		return storage.NilOID, err
	}
	oid, err := c.store.InsertExtent(cl.extent, encodeObject(cl.ID, v))
	if err != nil {
		return storage.NilOID, err
	}
	if err := c.indexInsert(class, v, oid); err != nil {
		return storage.NilOID, err
	}
	if c.mutObs != nil {
		if err := c.mutObs('c', class, oid, object.Value{}, v); err != nil {
			return storage.NilOID, err
		}
	}
	return oid, nil
}

// fullTuple builds the tuple type of the class including inherited fields.
func (c *Catalog) fullTuple(class string) (*object.Type, error) {
	attrs, err := c.AllAttributes(class)
	if err != nil {
		return nil, err
	}
	return &object.Type{Kind: object.KindTuple, Fields: attrs, Name: class}, nil
}

// SetObjectCache attaches a decoded-object cache consulted by GetObject and
// GetObjects. Install once at open time, before the catalog is shared
// across goroutines. The store's invalidation hook (kernel.Open wires it)
// keeps the cache coherent with Update/Delete.
func (c *Catalog) SetObjectCache(oc *objcache.Cache) { c.ocache = oc }

// ObjectCache returns the attached decoded-object cache, nil when disabled.
func (c *Catalog) ObjectCache() *objcache.Cache { return c.ocache }

// SetAccessObserver attaches the reference-traversal observation hook fired
// by GetObjects with its request-ordered input batch. Install once at open
// time, before the catalog is shared; nil detaches.
func (c *Catalog) SetAccessObserver(obs AccessObserver) { c.accObs = obs }

// SetMutationObserver attaches the object-mutation hook fired by
// CreateObject, UpdateObject and DeleteObject after the store change is
// applied. Install once at open time, before the catalog is shared; nil
// detaches.
func (c *Catalog) SetMutationObserver(obs MutationObserver) { c.mutObs = obs }

// GetObject dereferences an OID — the algebra's Deref(oid) — returning the
// stored value and the name of its class (TypeId/typeName composition).
// With an object cache attached a hit skips the page fetch and the decode;
// the returned value then shares the cache's backing slices and must be
// treated as immutable (Clone before mutating).
func (c *Catalog) GetObject(oid storage.OID) (object.Value, string, error) {
	if c.ocache != nil {
		if v, name, ok := c.ocache.Get(oid); ok {
			return v, name, nil
		}
	}
	var token uint64
	if c.ocache != nil {
		// The epoch token must predate the store read: an Update that slips
		// between the read and the Put bumps it and the Put is dropped.
		token = c.ocache.BeginFetch(oid)
	}
	data, err := c.store.Get(oid)
	if err != nil {
		return object.Null, "", err
	}
	id, v, err := decodeObject(data)
	if err != nil {
		return object.Null, "", err
	}
	name, err := c.TypeName(id)
	if err != nil {
		return object.Null, "", err
	}
	if c.ocache != nil {
		c.ocache.Put(token, oid, v, name, len(data))
	}
	return v, name, nil
}

// GetObjects dereferences a batch of OIDs: cache hits are filled directly,
// the misses go through the store's page-ordered FetchBatch (each distinct
// page fetched once, readahead overlapping the loads), and every decoded
// miss is installed in the cache. Results are parallel to the input; the
// same immutability contract as GetObject applies.
func (c *Catalog) GetObjects(oids []storage.OID) ([]object.Value, []string, error) {
	if c.accObs != nil {
		// Observe the REQUEST order, before cache filtering: co-access
		// affinity is about which objects a traversal touches together, and
		// cache hits are exactly the objects hot enough to cluster around.
		c.accObs(oids)
	}
	vals := make([]object.Value, len(oids))
	names := make([]string, len(oids))
	var missIdx []int
	for i, oid := range oids {
		if c.ocache != nil {
			if v, name, ok := c.ocache.Get(oid); ok {
				vals[i], names[i] = v, name
				continue
			}
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return vals, names, nil
	}
	missOIDs := make([]storage.OID, len(missIdx))
	tokens := make([]uint64, len(missIdx))
	for j, i := range missIdx {
		missOIDs[j] = oids[i]
		if c.ocache != nil {
			tokens[j] = c.ocache.BeginFetch(oids[i])
		}
	}
	datas, err := c.store.FetchBatch(missOIDs)
	if err != nil {
		return nil, nil, err
	}
	for j, i := range missIdx {
		id, v, err := decodeObject(datas[j])
		if err != nil {
			return nil, nil, err
		}
		name, err := c.TypeName(id)
		if err != nil {
			return nil, nil, err
		}
		vals[i], names[i] = v, name
		if c.ocache != nil {
			c.ocache.Put(tokens[j], oids[i], v, name, len(datas[j]))
		}
	}
	return vals, names, nil
}

// Resolver returns an object.Resolver over this catalog for deep equality.
func (c *Catalog) Resolver() object.Resolver {
	return func(oid storage.OID) (object.Value, error) {
		v, _, err := c.GetObject(oid)
		return v, err
	}
}

// UpdateObject replaces the object's value in place (stable OID), keeping
// indexes in sync.
func (c *Catalog) UpdateObject(oid storage.OID, v object.Value) error {
	old, class, err := c.GetObject(oid)
	if err != nil {
		return err
	}
	full, err := c.fullTuple(class)
	if err != nil {
		return err
	}
	if err := full.Check(v); err != nil {
		return err
	}
	cl, err := c.Class(class)
	if err != nil {
		return err
	}
	if err := c.indexDelete(class, old, oid); err != nil {
		return err
	}
	if err := c.store.Update(oid, encodeObject(cl.ID, v)); err != nil {
		return err
	}
	if err := c.indexInsert(class, v, oid); err != nil {
		return err
	}
	if c.mutObs != nil {
		return c.mutObs('u', class, oid, old, v)
	}
	return nil
}

// DeleteObject removes the object from its extent and indexes.
func (c *Catalog) DeleteObject(oid storage.OID) error {
	old, class, err := c.GetObject(oid)
	if err != nil {
		return err
	}
	if err := c.indexDelete(class, old, oid); err != nil {
		return err
	}
	if err := c.store.Delete(oid); err != nil {
		return err
	}
	if c.mutObs != nil {
		return c.mutObs('d', class, oid, old, object.Value{})
	}
	return nil
}

// ScanExtent iterates the direct extent of one class (no subclasses),
// calling fn with each object's OID and value.
func (c *Catalog) ScanExtent(class string, fn func(storage.OID, object.Value) bool) error {
	cl, err := c.Class(class)
	if err != nil {
		return err
	}
	if cl.extent == nil {
		return fmt.Errorf("catalog: %s has no extent", class)
	}
	var derr error
	err = c.store.ScanExtent(cl.extent, func(oid storage.OID, data []byte) bool {
		_, v, err := decodeObject(data)
		if err != nil {
			derr = err
			return false
		}
		return fn(oid, v)
	})
	if derr != nil {
		return derr
	}
	return err
}

// ScanClosure iterates the extents of the class and all its subclasses —
// the IS-A semantics of "FROM EVERY C" — excluding any classes in minus
// (the paper's "Automobile - JapaneseAuto" FROM-clause operator). Excluding
// a class excludes its whole subtree.
func (c *Catalog) ScanClosure(class string, minus []string, fn func(storage.OID, object.Value) bool) error {
	closure, err := c.Closure(class)
	if err != nil {
		return err
	}
	excluded := map[string]bool{}
	for _, m := range minus {
		sub, err := c.Closure(m)
		if err != nil {
			return err
		}
		for _, s := range sub {
			excluded[s] = true
		}
	}
	stop := false
	for _, name := range closure {
		if excluded[name] || stop {
			continue
		}
		if err := c.ScanExtent(name, func(oid storage.OID, v object.Value) bool {
			if !fn(oid, v) {
				stop = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
	}
	return nil
}

// ExtentCount returns |C| for the class's direct extent.
func (c *Catalog) ExtentCount(class string) (int, error) {
	cl, err := c.Class(class)
	if err != nil {
		return 0, err
	}
	if cl.extent == nil {
		return 0, nil
	}
	return cl.extent.NumRecords(), nil
}

// ExtentPages returns nbpages(C) for the class's direct extent.
func (c *Catalog) ExtentPages(class string) (int, error) {
	cl, err := c.Class(class)
	if err != nil {
		return 0, err
	}
	if cl.extent == nil {
		return 0, nil
	}
	return cl.extent.NumPages(), nil
}

// ExtentShardPages returns the class's per-shard data-page counts, indexed
// by shard id (a one-element slice on a single store). The statistics
// collector feeds these to the cost model so partitioned scans and
// reference fetches are priced per shard.
func (c *Catalog) ExtentShardPages(class string) ([]int, error) {
	cl, err := c.Class(class)
	if err != nil {
		return nil, err
	}
	if cl.extent == nil {
		return nil, nil
	}
	return cl.extent.PartPages(), nil
}
