package experiments

import (
	"fmt"

	"mood/internal/algebra"
	"mood/internal/cost"
	"mood/internal/object"
	"mood/internal/storage"
)

// BenchEntry is one measured operation in a moodbench baseline. All numbers
// come from the deterministic DiskSim — seeded data, counted block
// accesses, simulated milliseconds — never from wall-clock time, so a
// baseline is byte-stable across machines and reruns.
type BenchEntry struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Reads       int64   `json:"reads"`
	Writes      int64   `json:"writes"`
	SimulatedMs float64 `json:"simulated_ms"`
}

// BenchBaseline is the artifact written by `moodbench -bench-json`.
type BenchBaseline struct {
	Scale     float64      `json:"scale"`
	Vehicles  int          `json:"vehicles"`
	Companies int          `json:"companies"`
	Entries   []BenchEntry `json:"entries"`
}

// MeasureBaseline runs a fixed set of representative storage and query
// operations cold (tiny buffer pool, ESM layout accounting) and records
// their simulated I/O. The set covers the regimes the paper's cost model
// distinguishes: bulk write-out, full extent scans of a small and a large
// class, and the three scan-free join strategies of Section 6.
func MeasureBaseline(env *Env) (*BenchBaseline, error) {
	base := &BenchBaseline{
		Scale:     float64(env.Scale),
		Vehicles:  env.Cfg.Vehicles,
		Companies: env.Cfg.Companies,
	}
	disk := env.Pool.Disk()

	// 1. Bulk write-out of the freshly generated database.
	disk.ResetStats()
	if err := env.Pool.FlushAll(); err != nil {
		return nil, err
	}
	s := disk.Stats()
	base.Entries = append(base.Entries, BenchEntry{
		Name: "flush-database", Reads: s.Reads(), Writes: s.Writes(), SimulatedMs: s.TimeMs,
	})

	// 2. Cold full-extent scans (the sequential-access regime of Table 8).
	for _, class := range []string{"Vehicle", "Company"} {
		cat, d, err := coldCatalog(env, 1)
		if err != nil {
			return nil, err
		}
		d.ResetStats()
		rows := 0
		if err := cat.ScanExtent(class, func(storage.OID, object.Value) bool {
			rows++
			return true
		}); err != nil {
			return nil, err
		}
		s := d.Stats()
		base.Entries = append(base.Entries, BenchEntry{
			Name: "scan-" + class, Rows: rows,
			Reads: s.Reads(), Writes: s.Writes(), SimulatedMs: s.TimeMs,
		})
		d.SetESMLayout(false)
	}

	// 3. The Section 6 join strategies at k_c = |V|/10.
	kc := len(env.DB.Vehicles) / 10
	if kc < 1 {
		kc = 1
	}
	for _, m := range []cost.JoinMethod{cost.ForwardTraversal, cost.BackwardTraversal, cost.HashPartition} {
		cat, d, err := coldCatalog(env, 1)
		if err != nil {
			return nil, err
		}
		a := algebra.New(cat)
		left := a.BindSet("v", "Vehicle", env.DB.Vehicles[:kc])
		if err := a.Materialize(left); err != nil {
			return nil, err
		}
		right, err := a.BindDirect("VehicleDriveTrain", "d")
		if err != nil {
			return nil, err
		}
		d.ResetStats()
		out, err := a.Join(left, right, algebra.JoinSpec{
			Method: m, LeftVar: "v", Attribute: "drivetrain", RightVar: "d",
		})
		if err != nil {
			return nil, err
		}
		s := d.Stats()
		base.Entries = append(base.Entries, BenchEntry{
			Name: fmt.Sprintf("join-%v", m), Rows: out.Len(),
			Reads: s.Reads(), Writes: s.Writes(), SimulatedMs: s.TimeMs,
		})
		d.SetESMLayout(false)
	}
	return base, nil
}
