package fault

import (
	"testing"
)

func TestFailAtFiresOnNthOccurrence(t *testing.T) {
	in := New(1)
	in.FailAt(OpPageWrite, 3, Transient)
	for i := 1; i <= 5; i++ {
		d := in.Check(OpPageWrite)
		if i == 3 && d.Kind != Transient {
			t.Fatalf("occurrence %d: kind = %v, want Transient", i, d.Kind)
		}
		if i != 3 && d.Kind != None {
			t.Fatalf("occurrence %d: kind = %v, want None", i, d.Kind)
		}
	}
	if in.Count(OpPageWrite) != 5 {
		t.Errorf("count = %d, want 5", in.Count(OpPageWrite))
	}
	if in.Crashed() {
		t.Error("transient fault latched the crashed state")
	}
	trips := in.Trips()
	if len(trips) != 1 || trips[0].N != 3 || trips[0].Kind != Transient {
		t.Errorf("trips = %v", trips)
	}
}

func TestOpsAreCountedIndependently(t *testing.T) {
	in := New(1)
	in.FailAt(OpLogFlush, 2, Transient)
	// Page writes do not advance the log-flush counter.
	for i := 0; i < 10; i++ {
		if d := in.Check(OpPageWrite); d.Kind != None {
			t.Fatalf("page write %d fired: %v", i, d.Kind)
		}
	}
	if d := in.Check(OpLogFlush); d.Kind != None {
		t.Fatalf("first log flush fired: %v", d.Kind)
	}
	if d := in.Check(OpLogFlush); d.Kind != Transient {
		t.Fatalf("second log flush: %v, want Transient", d.Kind)
	}
}

func TestCrashLatchesEverything(t *testing.T) {
	in := New(1)
	in.FailAt(OpPageWrite, 1, Crash)
	if d := in.Check(OpPageWrite); d.Kind != Crash {
		t.Fatalf("armed crash did not fire: %v", d.Kind)
	}
	if !in.Crashed() {
		t.Fatal("crashed state not latched")
	}
	// Every op now fails, including ones with no armed rule.
	for _, op := range []Op{OpPageRead, OpPageWrite, OpLogAppend, OpLogFlush} {
		if d := in.Check(op); d.Kind != Crash {
			t.Errorf("post-crash %s: %v, want Crash", op, d.Kind)
		}
	}
}

func TestTornWriteIsPartialAndDeterministic(t *testing.T) {
	frac := func(seed int64) float64 {
		in := New(seed)
		in.FailAt(OpPageWrite, 1, Torn)
		d := in.Check(OpPageWrite)
		if d.Kind != Torn {
			t.Fatalf("torn did not fire: %v", d.Kind)
		}
		if d.TornFrac <= 0 || d.TornFrac >= 1 {
			t.Fatalf("TornFrac = %v, want in (0,1)", d.TornFrac)
		}
		if !in.Crashed() {
			t.Fatal("torn write did not latch the crash")
		}
		return d.TornFrac
	}
	if frac(7) != frac(7) {
		t.Error("same seed produced different torn fractions")
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if d := in.Check(OpPageWrite); d.Kind != None {
		t.Errorf("nil injector fired: %v", d.Kind)
	}
	if in.Crashed() {
		t.Error("nil injector crashed")
	}
}
