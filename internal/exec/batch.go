package exec

import (
	"mood/internal/algebra"
	"mood/internal/optimizer"
)

// Batch-at-a-time execution: the vectorized refinement of the Volcano
// contract in optimizer.Operator. Operators that implement BatchOperator
// produce up to BatchCapacity rows per call into a caller-owned RowBatch,
// amortizing the per-row interface dispatch and (for the fused/compiled
// operators in stream.go) the predicate tree walk across the batch.
// Operators that don't are driven through the nextBatch adapter, so row-only
// and batch-native operators compose freely in one pipeline and the
// migration stays incremental. Both shapes of every operator produce the
// exact same row stream; the differential tests hold row mode, batch mode,
// and the materializing executor equal.

// BatchCapacity is the row-vector size: large enough to amortize dispatch,
// small enough that a batch of row headers stays cache- and stack-friendly.
const BatchCapacity = 1024

// RowBatch is a reusable row vector. Rows[0:n] are valid after a NextBatch
// call that returned n; the producer overwrites them on the next call, so
// consumers that retain rows must copy the slice headers out first (the row
// Vars maps themselves are shared by reference, as in row-at-a-time mode).
type RowBatch struct {
	Rows [BatchCapacity]algebra.Row
}

// BatchOperator is an Operator that can also produce rows in batches.
//
//   - NextBatch fills b from the front and returns the count; n == 0 with a
//     nil error means the stream is exhausted (NextBatch never returns 0
//     mid-stream — a filtering operator keeps pulling until it has at least
//     one surviving row or its input ends).
//   - On error the batch's contents are undefined and n is 0, matching the
//     row contract's "discard on error".
//   - Next and NextBatch may be mixed on one operator: both draw from the
//     same underlying stream position.
type BatchOperator interface {
	optimizer.Operator
	NextBatch(b *RowBatch) (int, error)
}

// nextBatch pulls up to BatchCapacity rows from op: natively when op
// implements BatchOperator, otherwise through the batch↔row adapter loop.
func nextBatch(op optimizer.Operator, b *RowBatch) (int, error) {
	if bo, ok := op.(BatchOperator); ok {
		return bo.NextBatch(b)
	}
	n := 0
	for n < BatchCapacity {
		row, ok, err := op.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		b.Rows[n] = row
		n++
	}
	return n, nil
}

// batchRows is the other direction of the adapter: row-at-a-time iteration
// over a batch-producing refill function, for consumers that need single
// rows from a batch-native source.
type batchRows struct {
	buf *RowBatch
	n   int
	i   int
}

func (br *batchRows) next(refill func(*RowBatch) (int, error)) (algebra.Row, bool, error) {
	for br.i >= br.n {
		if br.buf == nil {
			br.buf = &RowBatch{}
		}
		n, err := refill(br.buf)
		if err != nil {
			return algebra.Row{}, false, err
		}
		if n == 0 {
			return algebra.Row{}, false, nil
		}
		br.n, br.i = n, 0
	}
	row := br.buf.Rows[br.i]
	br.i++
	return row, true, nil
}
