package expr

import (
	"reflect"
	"testing"

	"mood/internal/object"
	"mood/internal/storage"
)

// FuzzCompile decodes the fuzz input into a random expression tree and a
// random self value, then holds all three evaluation paths equal on it:
// the tree interpreter, the Compile/CompileBool closures, and (when the
// tree lowers) the self-mode PredFn. Divergence in value, bool coercion,
// or error string is a finding. The generator deliberately produces trees
// over an unbound second variable, projections through nulls, missing
// attributes, nil and dangling references, and operands of mismatched
// types — the semantics the compiled closures must reproduce exactly.
//
// Run bounded via `make fuzz-expr`; the checked-in corpus under
// testdata/fuzz/FuzzCompile seeds the interesting shapes.
func FuzzCompile(f *testing.F) {
	f.Add([]byte{})
	// A field comparison: Cmp(=, Field(Var v, name), Const string).
	f.Add([]byte{4, 0, 3, 1, 0, 0, 4, 10})
	// Logic over arithmetic with a type mismatch on one side.
	f.Add([]byte{6, 0, 5, 2, 3, 1, 1, 0, 1, 5, 4, 1, 3, 1, 2, 0, 3})
	// Between over a projection chain through a reference.
	f.Add([]byte{9, 3, 3, 1, 2, 0, 1, 0, 2, 30})
	// Unbound variable and a negation of a string.
	f.Add([]byte{8, 3, 2, 0, 7, 5, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		src := &fuzzSrc{data: data}
		e := src.expr(0)
		self := src.value(0)
		oid := storage.OID(src.byte())
		resolve := testResolver()
		env := func() *Env {
			return &Env{
				Vars:    map[string]object.Value{"v": self},
				OIDs:    map[string]storage.OID{"v": oid},
				Resolve: resolve,
			}
		}

		wantV, wantErr := e.Eval(env())
		fn, _ := Compile(e)
		gotV, gotErr := fn(env())
		if !sameErr(wantErr, gotErr) {
			t.Fatalf("expr %s: interpreter err %v, compiled err %v", e, wantErr, gotErr)
		}
		if wantErr == nil && !reflect.DeepEqual(wantV, gotV) {
			t.Fatalf("expr %s: interpreter %v, compiled %v", e, wantV, gotV)
		}

		wantB, wantBErr := EvalBool(e, env())
		bf, _ := CompileBool(e)
		gotB, gotBErr := bf(env())
		if !sameErr(wantBErr, gotBErr) || wantB != gotB {
			t.Fatalf("expr %s: interpreter bool (%v,%v), compiled (%v,%v)", e, wantB, wantBErr, gotB, gotBErr)
		}

		if pf, ok := CompilePredicate(e, "v"); ok {
			selfB, selfErr := pf(&self, oid, resolve)
			if !sameErr(wantBErr, selfErr) || wantB != selfB {
				t.Fatalf("expr %s: interpreter bool (%v,%v), self mode (%v,%v)", e, wantB, wantBErr, selfB, selfErr)
			}
		}
	})
}

// fuzzSrc turns the fuzz input into a deterministic stream of choices; an
// exhausted stream reads as zero, which always selects a terminal, so any
// byte slice decodes to a finite tree.
type fuzzSrc struct {
	data []byte
	i    int
}

func (s *fuzzSrc) byte() byte {
	if s.i >= len(s.data) {
		return 0
	}
	b := s.data[s.i]
	s.i++
	return b
}

const fuzzMaxDepth = 4

var fuzzAttrs = [...]string{"name", "weight", "ratio", "ref", "badref", "nilref", "nullattr", "nosuch"}

func (s *fuzzSrc) expr(depth int) Expr {
	choice := int(s.byte())
	if depth >= fuzzMaxDepth {
		choice %= 3 // terminals only
	} else {
		choice %= 10
	}
	switch choice {
	case 0:
		return &Const{Val: s.scalar()}
	case 1:
		return &Var{Name: "v"}
	case 2:
		// A second variable: unbound in the environment (ErrUnbound in all
		// paths) and a self-mode rejection.
		return &Var{Name: "w"}
	case 3:
		return &Field{Base: s.expr(depth + 1), Name: fuzzAttrs[int(s.byte())%len(fuzzAttrs)]}
	case 4:
		ops := [...]CmpOp{OpEq, OpNe, OpGe, OpLe, OpGt, OpLt}
		return &Cmp{Op: ops[int(s.byte())%len(ops)], L: s.expr(depth + 1), R: s.expr(depth + 1)}
	case 5:
		ops := [...]ArithOp{OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return &Arith{Op: ops[int(s.byte())%len(ops)], L: s.expr(depth + 1), R: s.expr(depth + 1)}
	case 6:
		op := OpAnd
		if s.byte()%2 == 1 {
			op = OpOr
		}
		return &Logic{Op: op, L: s.expr(depth + 1), R: s.expr(depth + 1)}
	case 7:
		return &Not{E: s.expr(depth + 1)}
	case 8:
		return &Neg{E: s.expr(depth + 1)}
	default:
		return &Between{E: s.expr(depth + 1), Lo: s.expr(depth + 1), Hi: s.expr(depth + 1)}
	}
}

// scalar decodes one non-composite value, covering every kind the
// comparison and arithmetic cores branch on, plus references that resolve,
// dangle, are nil, or point at a non-tuple.
func (s *fuzzSrc) scalar() object.Value {
	switch s.byte() % 9 {
	case 0:
		return object.Null
	case 1:
		return object.NewInt(int32(s.byte()) - 128)
	case 2:
		return object.NewLong(int64(s.byte()) - 128)
	case 3:
		return object.NewFloat(float64(int(s.byte())-128) / 4)
	case 4:
		strs := [...]string{"", "BMW", "Tokyo", "a", "zz"}
		return object.NewString(strs[int(s.byte())%len(strs)])
	case 5:
		return object.NewBool(s.byte()%2 == 0)
	case 6:
		return object.NewRef(storage.NilOID)
	case 7:
		oids := [...]storage.OID{1, 2, 99}
		return object.NewRef(oids[int(s.byte())%len(oids)])
	default:
		return object.NewChar(rune(s.byte()))
	}
}

// value decodes the self binding: usually a tuple (so projections land),
// sometimes a bare scalar (so Field hits the type-error path).
func (s *fuzzSrc) value(depth int) object.Value {
	if depth < 2 && s.byte()%4 != 0 {
		names := []string{"name", "weight", "ratio", "ref", "badref", "nilref", "nullattr"}
		fields := make([]object.Value, len(names))
		for i := range fields {
			if s.byte()%5 == 0 && depth < 1 {
				fields[i] = s.value(depth + 1)
			} else {
				fields[i] = s.scalar()
			}
		}
		return object.NewTuple(names, fields)
	}
	return s.scalar()
}
