package optimizer

import (
	"math/rand"
	"testing"

	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/testutil"
)

// randBoolExpr builds a random Boolean expression over integer variables
// x0..x3 compared with constants.
func randBoolExpr(rng *rand.Rand, depth int) expr.Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		// Leaf: comparison of a variable against a constant, or a Boolean
		// constant.
		switch rng.Intn(6) {
		case 0:
			return &expr.Const{Val: object.NewBool(rng.Intn(2) == 0)}
		default:
			ops := []expr.CmpOp{expr.OpEq, expr.OpNe, expr.OpGt, expr.OpLt, expr.OpGe, expr.OpLe}
			return &expr.Cmp{
				Op: ops[rng.Intn(len(ops))],
				L:  &expr.Var{Name: varName(rng.Intn(4))},
				R:  &expr.Const{Val: object.NewInt(int32(rng.Intn(5)))},
			}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &expr.Not{E: randBoolExpr(rng, depth-1)}
	case 1:
		return &expr.Logic{Op: expr.OpAnd, L: randBoolExpr(rng, depth-1), R: randBoolExpr(rng, depth-1)}
	default:
		return &expr.Logic{Op: expr.OpOr, L: randBoolExpr(rng, depth-1), R: randBoolExpr(rng, depth-1)}
	}
}

func varName(i int) string { return string(rune('w' + i)) } // w, x, y, z

func randEnv(rng *rand.Rand) *expr.Env {
	env := &expr.Env{Vars: map[string]object.Value{}}
	for i := 0; i < 4; i++ {
		env.Vars[varName(i)] = object.NewInt(int32(rng.Intn(5)))
	}
	return env
}

// evalDNF evaluates the OR of the AND-terms.
func evalDNF(terms []AndTerm, env *expr.Env) (bool, error) {
	for _, t := range terms {
		ok, err := expr.EvalBool(t.Expr(), env)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// TestSimplifyPreservesSemantics checks that Simplify never changes the
// truth value of a predicate, over random expressions and assignments.
func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(testutil.Seed(t, 77)))
	for trial := 0; trial < 3000; trial++ {
		e := randBoolExpr(rng, 4)
		s := Simplify(e)
		for probe := 0; probe < 4; probe++ {
			env := randEnv(rng)
			want, err := expr.EvalBool(e, env)
			if err != nil {
				t.Fatalf("trial %d: eval original: %v (%s)", trial, err, e)
			}
			got, err := expr.EvalBool(s, env)
			if err != nil {
				t.Fatalf("trial %d: eval simplified: %v (%s -> %s)", trial, err, e, s)
			}
			if got != want {
				t.Fatalf("trial %d: Simplify changed semantics\noriginal:   %s = %v\nsimplified: %s = %v\nenv: %v",
					trial, e, want, s, got, env.Vars)
			}
		}
	}
}

// TestToDNFPreservesSemantics checks that the DNF's OR-of-AND-terms agrees
// with the original predicate — the correctness condition behind Section
// 7's "the UNION operation is performed after evaluating the predicates
// for the AND-terms".
func TestToDNFPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(testutil.Seed(t, 101)))
	for trial := 0; trial < 3000; trial++ {
		e := randBoolExpr(rng, 4)
		terms := ToDNF(e)
		// Structural invariant: no OR or NOT-of-AND survives inside a term.
		for _, term := range terms {
			for _, p := range term {
				assertNoOr(t, p)
			}
		}
		for probe := 0; probe < 4; probe++ {
			env := randEnv(rng)
			want, err := expr.EvalBool(e, env)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			got, err := evalDNF(terms, env)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if got != want {
				t.Fatalf("trial %d: DNF changed semantics\noriginal: %s = %v\nDNF(%d terms) = %v\nenv: %v",
					trial, e, want, len(terms), got, env.Vars)
			}
		}
	}
}

func assertNoOr(t *testing.T, e expr.Expr) {
	t.Helper()
	switch n := e.(type) {
	case *expr.Logic:
		if n.Op == expr.OpOr {
			t.Fatalf("OR survived inside an AND-term: %s", e)
		}
		assertNoOr(t, n.L)
		assertNoOr(t, n.R)
	case *expr.Not:
		// NOT may only guard leaves after simplification.
		if _, isLogic := n.E.(*expr.Logic); isLogic {
			t.Fatalf("NOT over a connective survived: %s", e)
		}
	}
}
