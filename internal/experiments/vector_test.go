package experiments

import (
	"encoding/json"
	"testing"
)

// TestMeasureVectorContract checks the vectorized-execution sweep's
// deterministic half on every machine and its wall-clock half outside
// -race: every mode of a predicate must produce the row count, result
// fingerprint and per-pass read total of the row mode (MeasureVector
// enforces the fingerprint itself and errors on divergence), both
// predicates must fully lower to compiled closures, the warm object cache
// must hold decodes at zero, and (without race instrumentation) the
// vectorized scans must clear throughput floors over row-at-a-time: 3x on
// the moderately selective location scan and 4x on the needle name scan —
// the committed artifact shows ~4.5x and ~8-9x respectively; the floors
// leave slack for loaded machines.
func TestMeasureVectorContract(t *testing.T) {
	// The artifact scale: large enough that the Company extent spans a few
	// hundred pages, so the cold first measured pass pins a nonzero,
	// mode-comparable read total.
	env, err := BuildEnv(0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureVector(env)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(VectorModes); len(res.Entries) != want {
		t.Fatalf("expected %d entries, got %d", want, len(res.Entries))
	}

	byName := map[string][]VectorEntry{}
	for _, e := range res.Entries {
		byName[e.Name] = append(byName[e.Name], e)
	}
	for name, entries := range byName {
		if len(entries) != len(VectorModes) {
			t.Fatalf("%s: expected %d modes, got %d", name, len(VectorModes), len(entries))
		}
		row := entries[0]
		if row.Mode != "row" || row.Compiled {
			t.Fatalf("%s: first entry must be the uncompiled row mode: %+v", name, row)
		}
		if row.Rows == 0 || row.Reads == 0 {
			t.Fatalf("%s: row mode produced rows=%d reads=%d; the sweep measured nothing", name, row.Rows, row.Reads)
		}
		for _, e := range entries[1:] {
			if e.Rows != row.Rows {
				t.Errorf("%s mode=%s: %d rows, want %d (row mode)", name, e.Mode, e.Rows, row.Rows)
			}
			if e.Reads != row.Reads {
				t.Errorf("%s mode=%s: %d reads, want %d (row mode) — vectorization changed the read pattern",
					name, e.Mode, e.Reads, row.Reads)
			}
			if !e.Compiled {
				t.Errorf("%s mode=%s: predicate did not lower to a compiled closure", name, e.Mode)
			}
		}
		for _, e := range entries {
			if e.DecodesPerRow != 0 {
				t.Errorf("%s mode=%s: %.2f decodes per row, want 0 (warm object cache)", name, e.Mode, e.DecodesPerRow)
			}
		}
	}

	if !raceEnabled {
		loc := byName["scan-select-location"]
		if len(loc) == 0 {
			t.Fatal("missing scan-select-location entries")
		}
		vec := loc[1]
		if vec.Mode != "vector" {
			t.Fatalf("expected vector mode second, got %s", vec.Mode)
		}
		if vec.Speedup < 3 {
			t.Errorf("scan-select-location vector speedup %.2fx, want >= 3x (wall %vms vs row %vms)",
				vec.Speedup, vec.WallMs, loc[0].WallMs)
		}
		if vec.AllocsPerRow >= loc[0].AllocsPerRow {
			t.Errorf("scan-select-location vector allocates %.1f/row, want below row mode's %.1f/row",
				vec.AllocsPerRow, loc[0].AllocsPerRow)
		}
		name := byName["scan-select-name"]
		if len(name) == 0 {
			t.Fatal("missing scan-select-name entries")
		}
		if nv := name[1]; nv.Speedup < 4 {
			t.Errorf("scan-select-name vector speedup %.2fx, want >= 4x (wall %vms vs row %vms)",
				nv.Speedup, nv.WallMs, name[0].WallMs)
		}
	}

	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("artifact not JSON-serializable: %v", err)
	}
}

// benchScanSelect measures the warm selective Company scan, reporting
// allocations and decode counts per scanned object. `make bench-vector`
// prints both executors; the vector run must hold decodes at zero and
// allocations well below the row run — these are the pins behind the
// BENCH_vector.json throughput claim.
func benchScanSelect(b *testing.B, mode string) {
	env, err := BuildEnv(0.1)
	if err != nil {
		b.Fatal(err)
	}
	p := vectorPreds()[0] // location = 'Tokyo'
	e, _, err := measureVectorEntry(env, p, mode)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _, err = measureVectorEntry(env, p, mode)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(e.AllocsPerRow, "allocs/row")
	b.ReportMetric(e.DecodesPerRow, "decodes/row")
	b.ReportMetric(e.RowsPerWallSec, "rows/wall-s")
}

func BenchmarkScanSelectRow(b *testing.B)    { benchScanSelect(b, "row") }
func BenchmarkScanSelectVector(b *testing.B) { benchScanSelect(b, "vector") }
