// Package crashtest is the deterministic crash-recovery torture harness for
// the storage/WAL substrate. Each iteration is a pure function of a seed: it
// builds a fresh disk + buffer pool + log, arms one fault-injection scenario
// (internal/fault), drives a randomized multi-transaction workload of
// WAL-protected page writes, "crashes" at the injected point, reboots (new
// buffer pool over the surviving disk, durable log prefix only), repairs
// torn pages from the doublewrite area, runs ARIES recovery, and then
// asserts the atomicity/durability invariants:
//
//   - every write of a committed transaction is present afterwards;
//   - no write of a loser (active or aborted at crash time) survives;
//   - every page passes checksum verification once recovery has flushed;
//   - the reborn log carries no active transactions.
//
// Any violation is reported with the seed, so a failing scenario replays
// exactly (see Run and the CRASHTEST_SEED env var in torture_test.go).
package crashtest

import (
	"errors"
	"fmt"
	"math/rand"

	"mood/internal/fault"
	"mood/internal/storage"
	"mood/internal/wal"
)

// Point names the crash scenario an iteration exercises.
type Point string

// The scenarios the torture test cycles through.
const (
	// PointLogFlushCrash kills the system at the Nth log force — before the
	// WAL flush that would make recent updates (or a commit) durable.
	PointLogFlushCrash Point = "crash-before-log-flush"
	// PointPostCommit runs the whole workload, then loses power with
	// committed transactions' dirty pages still unflushed: the classic
	// "commit record durable, page images not" redo scenario.
	PointPostCommit Point = "crash-after-commit-before-page-flush"
	// PointPageWriteCrash kills the system at the Nth physical page write.
	PointPageWriteCrash Point = "crash-on-page-write"
	// PointTornWrite tears the Nth physical page write: a prefix of the new
	// image lands, the checksum does not match, and recovery must repair
	// the page before rolling it forward.
	PointTornWrite Point = "torn-page-write"
	// PointTransientWrite fails the Nth physical page write with a
	// transient error the workload retries past; the run then power-fails
	// at the end like PointPostCommit.
	PointTransientWrite Point = "transient-write-error"
	// PointLogAppendCrash kills the system at the Nth update-record append,
	// before the update reaches even the volatile log.
	PointLogAppendCrash Point = "crash-on-log-append"
)

// Points lists every scenario, in the order the torture test cycles them.
var Points = []Point{
	PointLogFlushCrash,
	PointPostCommit,
	PointPageWriteCrash,
	PointTornWrite,
	PointTransientWrite,
	PointLogAppendCrash,
}

// Config sizes one torture iteration. The zero value of any field selects a
// CI-friendly default.
type Config struct {
	Seed           int64
	Point          Point
	Pages          int // data pages in play
	Txns           int // transactions the workload attempts
	MaxWritesPerTx int
	Frames         int // buffer-pool frames (small, to force evictions)
}

func (c Config) withDefaults() Config {
	if c.Point == "" {
		c.Point = PointPostCommit
	}
	if c.Pages <= 0 {
		c.Pages = 4
	}
	if c.Txns <= 0 {
		c.Txns = 6
	}
	if c.MaxWritesPerTx <= 0 {
		c.MaxWritesPerTx = 5
	}
	if c.Frames <= 0 {
		c.Frames = 3
	}
	return c
}

// Result reports what one iteration did, for coverage accounting.
type Result struct {
	Seed      int64
	Point     Point
	Fired     bool   // the armed fault actually tripped
	CrashedAt string // description of where the workload died ("" if it ran out)
	Started   int    // transactions begun
	Committed int    // transactions whose Commit returned success
	Retries   int    // transient errors retried past
	TornFixed int    // pages repaired from the doublewrite area
	Recovery  wal.RecoveryStats
}

// maxRetries bounds how often a transiently failing operation is retried.
const maxRetries = 3

// Run executes one deterministic crash/recovery iteration and verifies the
// recovery invariants, returning a descriptive error on the first violation.
// Every error includes cfg.Seed.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Seed: cfg.Seed, Point: cfg.Point}
	fail := func(format string, args ...interface{}) (Result, error) {
		return res, fmt.Errorf("crashtest seed %d point %s: %s",
			cfg.Seed, cfg.Point, fmt.Sprintf(format, args...))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	disk.SetDoublewrite(true)
	bp := storage.NewBufferPool(disk, cfg.Frames)
	log := wal.NewLog()
	bp.SetFlushHook(log.FlushHook())

	// Lay down the working set and force it clean so iteration state starts
	// from all-zero pages on disk.
	pages := make([]storage.PageID, cfg.Pages)
	for i := range pages {
		pg, err := bp.NewPage()
		if err != nil {
			return fail("setup: %v", err)
		}
		pages[i] = pg.ID
		if err := bp.Unpin(pg.ID, true); err != nil {
			return fail("setup unpin: %v", err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		return fail("setup flush: %v", err)
	}

	// Arm the scenario. Occurrence counts are drawn from the seed so the
	// crash lands at a different place in every iteration.
	fi := fault.New(cfg.Seed)
	switch cfg.Point {
	case PointLogFlushCrash:
		fi.FailAt(fault.OpLogFlush, int64(1+rng.Intn(4)), fault.Crash)
	case PointPageWriteCrash:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(6)), fault.Crash)
	case PointTornWrite:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(6)), fault.Torn)
	case PointTransientWrite:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(3)), fault.Transient)
	case PointLogAppendCrash:
		fi.FailAt(fault.OpLogAppend, int64(1+rng.Intn(2*cfg.Txns)), fault.Crash)
	case PointPostCommit:
		// No fault: the iteration power-fails after the workload, with
		// dirty pages deliberately left unflushed.
	default:
		return fail("unknown crash point")
	}
	disk.SetFaultInjector(fi)
	log.SetFaultInjector(fi)

	// Each transaction writes inside its own disjoint offset region of any
	// page, so winner/loser invariants are byte-exact without a lock
	// manager (overlapping winner/loser writes would make the final byte
	// value depend on undo order).
	pageSize := disk.PageSize()
	regionBase := 32 // keep clear of the 16-byte page header + slack
	regionLen := (pageSize - regionBase) / cfg.Txns
	if regionLen < 2 {
		return fail("too many transactions (%d) for the page size", cfg.Txns)
	}

	committed := map[storage.PageID]map[int]byte{} // must survive recovery
	losers := map[storage.PageID]map[int]byte{}    // must leave no trace
	record := func(m map[storage.PageID]map[int]byte, w map[storage.PageID]map[int]byte) {
		for p, offs := range w {
			if m[p] == nil {
				m[p] = map[int]byte{}
			}
			for off, v := range offs {
				m[p][off] = v
			}
		}
	}

	// retry runs op, retrying past transient faults (the injected fault is
	// one-shot, so a single retry suffices; the bound is defensive).
	died := ""
	retry := func(what string, op func() error) error {
		for attempt := 0; ; attempt++ {
			err := op()
			if err == nil {
				return nil
			}
			if errors.Is(err, fault.ErrTransient) && attempt < maxRetries {
				res.Retries++
				continue
			}
			if died == "" {
				died = fmt.Sprintf("%s: %v", what, err)
			}
			return err
		}
	}

	for t := 0; t < cfg.Txns && died == ""; t++ {
		tx := log.Begin()
		res.Started++
		writes := map[storage.PageID]map[int]byte{}
		nWrites := 1 + rng.Intn(cfg.MaxWritesPerTx)
		for w := 0; w < nWrites; w++ {
			p := pages[rng.Intn(len(pages))]
			off := regionBase + t*regionLen + rng.Intn(regionLen)
			val := byte(1 + rng.Intn(255))
			if err := retry("logged write", func() error {
				return loggedWrite(log, bp, tx, p, off, val)
			}); err != nil {
				break
			}
			if writes[p] == nil {
				writes[p] = map[int]byte{}
			}
			writes[p][off] = val
		}
		if died != "" {
			record(losers, writes)
			break
		}
		switch rng.Intn(5) {
		case 0: // deliberate rollback before the crash
			record(losers, writes)
			if err := retry("abort", func() error {
				return log.Abort(tx, undoApplier(bp))
			}); err != nil {
				break
			}
		case 1: // leave active: a loser for recovery to undo
			record(losers, writes)
		default:
			if err := retry("commit", func() error { return log.Commit(tx) }); err != nil {
				// The commit force never happened; the transaction is a loser.
				record(losers, writes)
				break
			}
			res.Committed++
			record(committed, writes)
		}
		// Random flush pressure so page-write faults can fire and so the
		// disk holds an arbitrary mix of clean/dirty page versions.
		if died == "" && rng.Intn(2) == 0 {
			_ = retry("flush pressure", func() error {
				return bp.FlushPage(pages[rng.Intn(len(pages))])
			})
		}
	}
	res.Fired = len(fi.Trips()) > 0
	res.CrashedAt = died

	// A scenario armed with a hard fault that the workload never reached
	// still power-fails at the end (like PointPostCommit), so recovery is
	// exercised on every iteration regardless.

	// ---- Reboot ----
	// The machine is dead: buffered pages are gone (bp is dropped), the
	// volatile log suffix is gone (Recover truncates to the durable
	// prefix), and the injector no longer fires.
	disk.SetFaultInjector(nil)
	log.SetFaultInjector(nil)

	// Detect and repair torn pages from the doublewrite area before redo.
	// (A torn write whose lost tail happened to carry no modified bytes
	// leaves the page checksum-consistent; only genuine corruption shows
	// up here.)
	for _, id := range disk.CorruptPages() {
		if err := disk.RepairPage(id); err != nil {
			return fail("repair page %d: %v", id, err)
		}
		res.TornFixed++
	}

	bp2 := storage.NewBufferPool(disk, cfg.Frames+8)
	bp2.SetFlushHook(log.FlushHook())
	st, err := log.Recover(bp2)
	if err != nil {
		return fail("recovery: %v", err)
	}
	res.Recovery = st

	// ---- Invariants ----
	for _, p := range pages {
		pg, err := bp2.Fetch(p)
		if err != nil {
			return fail("fetch page %d after recovery: %v", p, err)
		}
		buf := pg.Bytes()
		for off, want := range committed[p] {
			if buf[off] != want {
				bp2.Unpin(p, false)
				return fail("durability violated: committed write page %d off %d = %d, want %d",
					p, off, buf[off], want)
			}
		}
		for off := range losers[p] {
			if _, winner := committed[p][off]; winner {
				continue // same tx wrote it again after... cannot happen (disjoint regions), defensive
			}
			if buf[off] != 0 {
				bp2.Unpin(p, false)
				return fail("atomicity violated: loser write survived at page %d off %d = %d",
					p, off, buf[off])
			}
		}
		if err := bp2.Unpin(p, false); err != nil {
			return fail("unpin: %v", err)
		}
	}
	if active := log.ActiveTransactions(); len(active) != 0 {
		return fail("transactions still active after recovery: %v", active)
	}
	// Push the recovered state to disk; every page must then verify.
	if err := bp2.FlushAll(); err != nil {
		return fail("post-recovery flush: %v", err)
	}
	if bad := disk.CorruptPages(); len(bad) != 0 {
		return fail("checksum mismatches after recovery: pages %v", bad)
	}
	return res, nil
}

// loggedWrite performs one WAL-protected single-byte page update, exactly as
// a physically-logging storage layer would: before-image, log record, apply,
// stamp the page LSN.
func loggedWrite(l *wal.Log, bp *storage.BufferPool, tx wal.TxID, page storage.PageID, off int, val byte) error {
	pg, err := bp.Fetch(page)
	if err != nil {
		return err
	}
	before := []byte{pg.Bytes()[off]}
	lsn, err := l.Update(tx, page, off, before, []byte{val})
	if err != nil {
		bp.Unpin(page, false)
		return err
	}
	pg.Bytes()[off] = val
	pg.SetLSN(uint32(lsn))
	return bp.Unpin(page, true)
}

// undoApplier applies before-images during a live (pre-crash) abort.
func undoApplier(bp *storage.BufferPool) func(storage.PageID, int, []byte, wal.LSN) error {
	return func(page storage.PageID, off int, image []byte, lsn wal.LSN) error {
		pg, err := bp.Fetch(page)
		if err != nil {
			return err
		}
		copy(pg.Bytes()[off:], image)
		pg.SetLSN(uint32(lsn))
		return bp.Unpin(page, true)
	}
}
