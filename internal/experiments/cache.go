package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"mood/internal/catalog"
	"mood/internal/objcache"
	"mood/internal/object"
	"mood/internal/storage"
)

// CacheBudgets is the object-cache sweep measured by MeasureCache: off, a
// budget small enough to thrash on the working set, and one that holds it.
var CacheBudgets = []int64{0, 64 << 10, 1 << 20}

// cacheSample is how many vehicles each pass dereferences. Large enough
// that the traversed pages overflow the deliberately small page pool (so
// the uncached configuration pays repeated reads, as a real hot path over
// a big database would), small enough that the 1 MiB budget holds every
// decoded object the traversal touches.
const cacheSample = 400

// cachePasses is the number of measured warm passes per configuration.
const cachePasses = 4

// cacheFrames sizes the page pool under the cache sweep. It must be below
// the pages the sample's dereferences touch — including the three small
// extents of the path traversal at the default 0.1 scale — otherwise the
// buffer pool alone absorbs the repeats and the sweep measures nothing.
const cacheFrames = 16

// CacheEntry is one measured configuration of the object-cache sweep.
// Rows, Reads, SimulatedMs, HitRate and UnmarshalsPerRow are deterministic;
// the wall-clock and allocation columns are machine-local measurements.
type CacheEntry struct {
	Name             string  `json:"name"`
	CacheBytes       int64   `json:"cache_bytes"`
	Rows             int     `json:"rows"`
	Reads            int64   `json:"reads"`
	SimulatedMs      float64 `json:"simulated_ms"`
	WallMs           float64 `json:"wall_ms"`
	RowsPerWallSec   float64 `json:"rows_per_wall_sec"`
	Speedup          float64 `json:"speedup_vs_cache_off"`
	HitRate          float64 `json:"hit_rate"`
	AllocsPerRow     float64 `json:"allocs_per_row"`
	UnmarshalsPerRow float64 `json:"unmarshals_per_row"`
}

// BenchCache is the JSON artifact written by moodbench -cache-json.
type BenchCache struct {
	Scale             float64      `json:"scale"`
	Vehicles          int          `json:"vehicles"`
	Companies         int          `json:"companies"`
	Sample            int          `json:"sample"`
	Passes            int          `json:"passes"`
	LatencyUsPerSimMs float64      `json:"latency_us_per_sim_ms"`
	Entries           []CacheEntry `json:"entries"`
}

// cachePass runs one full pass of a workload over the sampled vehicles and
// returns the rows it produced plus an order-sensitive fingerprint of their
// values. MeasureCache compares the fingerprint across cache budgets — the
// cache must change timings, never results.
type cachePass func(cat *catalog.Catalog, sample []storage.OID) (int, uint64, error)

// refField extracts the reference OIDs of one attribute from a batch of
// decoded tuples, keeping positions aligned with the input.
func refField(vals []object.Value, attr string) ([]storage.OID, error) {
	refs := make([]storage.OID, len(vals))
	for i, v := range vals {
		f, ok := v.Field(attr)
		if !ok || f.Kind != object.KindReference {
			return nil, fmt.Errorf("cache sweep: row %d has no %s reference", i, attr)
		}
		refs[i] = f.Ref
	}
	return refs, nil
}

func fpMix(fp, v uint64) uint64 { return fp*1099511628211 + v }

// pathTraversalPass resolves v.drivetrain.engine.cylinders for every
// sampled vehicle through the batched dereference path — the repeated
// path-traversal workload of the paper's Section 6 forward traversal.
func pathTraversalPass(cat *catalog.Catalog, sample []storage.OID) (int, uint64, error) {
	vehicles, _, err := cat.GetObjects(sample)
	if err != nil {
		return 0, 0, err
	}
	dtRefs, err := refField(vehicles, "drivetrain")
	if err != nil {
		return 0, 0, err
	}
	drivetrains, _, err := cat.GetObjects(dtRefs)
	if err != nil {
		return 0, 0, err
	}
	engRefs, err := refField(drivetrains, "engine")
	if err != nil {
		return 0, 0, err
	}
	engines, _, err := cat.GetObjects(engRefs)
	if err != nil {
		return 0, 0, err
	}
	var fp uint64 = 14695981039346656037
	for _, e := range engines {
		cyl, ok := e.Field("cylinders")
		if !ok {
			return 0, 0, fmt.Errorf("cache sweep: engine without cylinders")
		}
		fp = fpMix(fp, uint64(cyl.Int))
	}
	return len(engines), fp, nil
}

// hashJoinProbePass resolves v.manufacturer.name for every sampled vehicle:
// the probe side of the pointer-based hash join, whose random fetches into
// the Company extent are exactly what the batched path collapses.
func hashJoinProbePass(cat *catalog.Catalog, sample []storage.OID) (int, uint64, error) {
	vehicles, _, err := cat.GetObjects(sample)
	if err != nil {
		return 0, 0, err
	}
	refs, err := refField(vehicles, "manufacturer")
	if err != nil {
		return 0, 0, err
	}
	companies, _, err := cat.GetObjects(refs)
	if err != nil {
		return 0, 0, err
	}
	var fp uint64 = 14695981039346656037
	for _, c := range companies {
		name, ok := c.Field("name")
		if !ok {
			return 0, 0, fmt.Errorf("cache sweep: company without name")
		}
		for i := 0; i < len(name.Str); i++ {
			fp = fpMix(fp, uint64(name.Str[i]))
		}
	}
	return len(companies), fp, nil
}

// MeasureCache measures both workloads at every cache budget. Per
// configuration: a cold catalog over a deliberately small page pool, one
// unmeasured warm-up pass (cold reads; fills the page pool and the object
// cache), then cachePasses measured passes with simulated page costs
// replayed as wall latency. Pass latency <= 0 for DefaultParallelLatency.
//
// The function itself enforces the result contract: every pass of every
// configuration must produce the same row count and fingerprint as the
// cache-off run of the same workload, so a cache bug surfaces as a
// measurement error rather than a silently wrong artifact.
func MeasureCache(env *Env, latency time.Duration) (*BenchCache, error) {
	if latency <= 0 {
		latency = DefaultParallelLatency
	}
	out := &BenchCache{
		Scale:             float64(env.Scale),
		Vehicles:          env.Cfg.Vehicles,
		Companies:         env.Cfg.Companies,
		Sample:            cacheSample,
		Passes:            cachePasses,
		LatencyUsPerSimMs: float64(latency) / float64(time.Microsecond),
	}

	// The Section 6 formulas model randomly selected source objects; a
	// deterministic shuffle removes the generator's sequential layout.
	sample := append([]storage.OID(nil), env.DB.Vehicles...)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(sample), func(i, j int) { sample[i], sample[j] = sample[j], sample[i] })
	if len(sample) > cacheSample {
		sample = sample[:cacheSample]
	}

	workloads := []struct {
		name string
		pass cachePass
	}{
		{"path-traversal", pathTraversalPass},
		{"hash-join-probe", hashJoinProbePass},
	}
	for _, wl := range workloads {
		var base float64  // rows/sec at cache off
		var baseFP uint64 // fingerprint at cache off
		var baseRows int
		for i, budget := range CacheBudgets {
			e, fp, err := measureCacheEntry(env, wl.name, budget, latency, sample, wl.pass)
			if err != nil {
				return nil, fmt.Errorf("%s cache=%d: %w", wl.name, budget, err)
			}
			if i == 0 {
				base, baseFP, baseRows = e.RowsPerWallSec, fp, e.Rows
			} else if fp != baseFP || e.Rows != baseRows {
				return nil, fmt.Errorf("%s cache=%d: results diverge from cache-off run (rows %d vs %d)",
					wl.name, budget, e.Rows, baseRows)
			}
			if base > 0 {
				e.Speedup = round3(e.RowsPerWallSec / base)
			}
			out.Entries = append(out.Entries, e)
		}
	}
	return out, nil
}

// measureCacheEntry runs one workload at one cache budget over a cold
// isolated catalog and returns the entry plus the workload fingerprint.
func measureCacheEntry(env *Env, name string, budget int64, latency time.Duration, sample []storage.OID, pass cachePass) (CacheEntry, uint64, error) {
	var e CacheEntry
	cat, d, err := coldCatalog(env, cacheFrames)
	if err != nil {
		return e, 0, err
	}
	defer d.SetESMLayout(false)
	defer d.SetLatency(0)

	var oc *objcache.Cache
	if budget > 0 {
		oc = objcache.New(budget)
		cat.SetObjectCache(oc)
		cat.Store().SetInvalidator(oc)
	}

	// Warm-up: first touches for every page and every cache slot.
	warmRows, fp, err := pass(cat, sample)
	if err != nil {
		return e, 0, err
	}

	d.ResetStats()
	var hits0, miss0 int64
	if oc != nil {
		hits0, miss0 = oc.Hits(), oc.Misses()
	}
	um0 := object.Unmarshals()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs

	d.SetLatency(latency)
	rows := 0
	start := time.Now()
	for p := 0; p < cachePasses; p++ {
		r, f, err := pass(cat, sample)
		if err != nil {
			return e, 0, err
		}
		if r != warmRows || f != fp {
			return e, 0, fmt.Errorf("pass %d diverged from warm-up (%d rows)", p, r)
		}
		rows += r
	}
	wall := time.Since(start)
	d.SetLatency(0)

	runtime.ReadMemStats(&ms)
	um := object.Unmarshals() - um0
	s := d.Stats()
	e = CacheEntry{
		Name:        name,
		CacheBytes:  budget,
		Rows:        rows,
		Reads:       s.Reads(),
		SimulatedMs: s.TimeMs,
		WallMs:      round3(float64(wall) / float64(time.Millisecond)),
	}
	if wall > 0 {
		e.RowsPerWallSec = round3(float64(rows) / wall.Seconds())
	}
	if oc != nil {
		h, m := oc.Hits()-hits0, oc.Misses()-miss0
		if h+m > 0 {
			e.HitRate = round3(float64(h) / float64(h+m))
		}
	}
	if rows > 0 {
		e.AllocsPerRow = round3(float64(ms.Mallocs-mallocs0) / float64(rows))
		e.UnmarshalsPerRow = round3(float64(um) / float64(rows))
	}
	return e, fp, nil
}

// CacheSweep prints the MeasureCache sweep as a table.
func CacheSweep(w io.Writer, env *Env) error {
	section(w, "Object-cache sweep. Batched dereference at cache=0/64KiB/1MiB")
	res, err := MeasureCache(env, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "latency replay: %.0f us wall per simulated ms; %d vehicles sampled, %d warm passes\n\n",
		res.LatencyUsPerSimMs, res.Sample, res.Passes)
	fmt.Fprintf(w, "%-16s %10s %6s %7s %10s %9s %13s %8s %8s %7s %7s\n",
		"benchmark", "cache", "rows", "reads", "sim ms", "wall ms", "rows/wall-s", "speedup", "hitrate", "alloc/r", "dec/r")
	for _, e := range res.Entries {
		fmt.Fprintf(w, "%-16s %10d %6d %7d %10.2f %9.2f %13.0f %7.2fx %8.3f %7.1f %7.2f\n",
			e.Name, e.CacheBytes, e.Rows, e.Reads, e.SimulatedMs, e.WallMs,
			e.RowsPerWallSec, e.Speedup, e.HitRate, e.AllocsPerRow, e.UnmarshalsPerRow)
	}
	return nil
}
