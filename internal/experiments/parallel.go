package experiments

import (
	"fmt"
	"io"
	"time"

	"mood/internal/algebra"
	"mood/internal/cost"
	"mood/internal/exec"
	"mood/internal/optimizer"
)

// ParallelWorkerCounts is the degree-of-parallelism sweep measured by
// MeasureParallel.
var ParallelWorkerCounts = []int{1, 2, 4, 8}

// DefaultParallelLatency is the wall-clock sleep charged per simulated
// millisecond of disk time during the measured phase. The simulator's page
// costs are pure accounting; replaying a slice of them as real latency is
// what gives worker goroutines overlapping waits to hide — which is the
// whole effect morsel parallelism exploits, and the only way to observe a
// wall-clock speedup on a single-core host. 100us per simulated ms keeps
// the measured phases I/O-dominated (as they would be against a real
// disk), so the speedup reflects overlapped waits rather than the host's
// core count.
const DefaultParallelLatency = 100 * time.Microsecond

// ParallelEntry is one measured configuration of the parallel sweep.
// Rows, Reads and SimulatedMs are deterministic — they must be identical
// across worker counts for the same benchmark name (the scheduler may not
// change what is read, only when). WallMs and the derived throughput and
// speedup are wall-clock measurements and vary run to run.
type ParallelEntry struct {
	Name           string  `json:"name"`
	Workers        int     `json:"workers"`
	Rows           int     `json:"rows"`
	Reads          int64   `json:"reads"`
	SimulatedMs    float64 `json:"simulated_ms"`
	WallMs         float64 `json:"wall_ms"`
	RowsPerWallSec float64 `json:"rows_per_wall_sec"`
	Speedup        float64 `json:"speedup_vs_workers_1"`
}

// BenchParallel is the JSON artifact written by moodbench -parallel-json.
type BenchParallel struct {
	Scale             float64         `json:"scale"`
	Vehicles          int             `json:"vehicles"`
	Companies         int             `json:"companies"`
	LatencyUsPerSimMs float64         `json:"latency_us_per_sim_ms"`
	Entries           []ParallelEntry `json:"entries"`
}

// MeasureParallel runs the two parallel query phases — a full Company
// extent scan and a pointer-based hash-join probe — at each worker count,
// measuring wall-clock throughput with simulated page costs replayed as
// real latency. Pass latency <= 0 for DefaultParallelLatency.
//
// Every configuration executes through the same ExchangePlan machinery
// (workers=1 runs the exchange with a single worker goroutine, not the
// serial operator), so the page-access pattern is identical by construction
// and the read totals can be compared across worker counts.
func MeasureParallel(env *Env, latency time.Duration) (*BenchParallel, error) {
	if latency <= 0 {
		latency = DefaultParallelLatency
	}
	out := &BenchParallel{
		Scale:             float64(env.Scale),
		Vehicles:          env.Cfg.Vehicles,
		Companies:         env.Cfg.Companies,
		LatencyUsPerSimMs: float64(latency) / float64(time.Microsecond),
	}

	benches := []struct {
		name string
		plan func() optimizer.Plan
	}{
		// Full extent scan: page-range morsels over the Company extent.
		{"parallel-scan-Company", func() optimizer.Plan {
			return &optimizer.BindPlan{Class: "Company", Var: "c"}
		}},
		// Hash-partition join probe: the build (both extent drains and the
		// ref partitioning) runs serially inside Open and is excluded from
		// the measured phase; the probe's random object fetches are what
		// fan out across workers. Vehicle->manufacturer lands the probe on
		// the Company extent — the database's largest — so the measured
		// phase is dominated by the fetches being parallelized.
		{"parallel-hash-join-probe", func() optimizer.Plan {
			return &optimizer.JoinPlan{
				Left:      &optimizer.BindPlan{Class: "Vehicle", Var: "v"},
				Right:     &optimizer.BindPlan{Class: "Company", Var: "c"},
				Method:    cost.HashPartition,
				LeftVar:   "v",
				Attribute: "manufacturer",
				RightVar:  "c",
			}
		}},
	}

	for _, b := range benches {
		var base float64 // rows/sec at workers=1
		for _, w := range ParallelWorkerCounts {
			e, err := measureParallelEntry(env, b.name, w, latency, b.plan())
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", b.name, w, err)
			}
			if w == 1 {
				base = e.RowsPerWallSec
			}
			if base > 0 {
				e.Speedup = round3(e.RowsPerWallSec / base)
			}
			out.Entries = append(out.Entries, e)
		}
	}
	return out, nil
}

// measureParallelEntry executes one exchange-wrapped plan at one worker
// count over a cold isolated catalog. Open performs the serial setup
// (morsel discovery, join builds); the pool is then evicted, the counters
// reset and latency enabled, so the measured Next loop covers exactly the
// parallel phase and its page reads are first touches.
func measureParallelEntry(env *Env, name string, workers int, latency time.Duration, plan optimizer.Plan) (ParallelEntry, error) {
	// 1024 frames holds every page the measured phase touches at the
	// artifact scale, so each page is read exactly once regardless of how
	// the scheduler interleaves workers — the read totals the sweep
	// compares across worker counts are then deterministic.
	var e ParallelEntry
	cat, d, err := coldCatalog(env, 1024)
	if err != nil {
		return e, err
	}
	defer d.SetESMLayout(false)
	defer d.SetLatency(0)

	ex := exec.New(algebra.New(cat))
	op, err := ex.Compile(&optimizer.ExchangePlan{Input: plan, Workers: workers})
	if err != nil {
		return e, err
	}
	if err := op.Open(); err != nil {
		return e, err
	}
	if err := cat.Store().Pool().EvictAll(); err != nil {
		op.Close()
		return e, err
	}
	d.ResetStats()
	d.SetLatency(latency)

	rows := 0
	start := time.Now()
	for {
		_, ok, err := op.Next()
		if err != nil {
			op.Close()
			return e, err
		}
		if !ok {
			break
		}
		rows++
	}
	wall := time.Since(start)
	d.SetLatency(0)
	if err := op.Close(); err != nil {
		return e, err
	}

	s := d.Stats()
	e = ParallelEntry{
		Name:        name,
		Workers:     workers,
		Rows:        rows,
		Reads:       s.Reads(),
		SimulatedMs: s.TimeMs,
		WallMs:      round3(float64(wall) / float64(time.Millisecond)),
	}
	if wall > 0 {
		e.RowsPerWallSec = round3(float64(rows) / wall.Seconds())
	}
	return e, nil
}

// ParallelScaling prints the MeasureParallel sweep as a table.
func ParallelScaling(w io.Writer, env *Env) error {
	section(w, "Parallel scaling. Morsel-driven exchange, workers=1/2/4/8")
	res, err := MeasureParallel(env, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "latency replay: %.0f us wall per simulated ms\n\n", res.LatencyUsPerSimMs)
	fmt.Fprintf(w, "%-26s %8s %8s %8s %12s %10s %14s %8s\n",
		"benchmark", "workers", "rows", "reads", "sim ms", "wall ms", "rows/wall-s", "speedup")
	for _, e := range res.Entries {
		fmt.Fprintf(w, "%-26s %8d %8d %8d %12.2f %10.2f %14.0f %7.2fx\n",
			e.Name, e.Workers, e.Rows, e.Reads, e.SimulatedMs, e.WallMs, e.RowsPerWallSec, e.Speedup)
	}
	return nil
}

// round3 keeps the JSON artifact readable (3 decimal places).
func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
