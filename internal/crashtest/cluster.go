package crashtest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"mood/internal/fault"
	"mood/internal/storage"
	"mood/internal/wal"
)

// Cluster mode: the same seeded crash scenarios, but the workload is the
// online reorganizer's record migration instead of raw page writes. Each
// "transaction" is one WAL-logged MigrateRecords batch — exactly what the
// kernel's reorganizer runs — and the crash can land anywhere inside it:
// after the destination copy but before the forward stub, between the stub
// and the directory update, mid page-append. The invariant is stronger than
// byte-level atomicity: whatever happens, after reboot + repair + recovery a
// COLD store (empty forwarding map) must resolve every original OID to its
// original payload, a full scan must surface each record exactly once, and
// compaction of the recovered extent must not disturb any of it.

// RunCluster executes one deterministic mid-migration crash/recovery
// iteration. Every error includes cfg.Seed for replay.
func RunCluster(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Seed: cfg.Seed, Point: cfg.Point}
	fail := func(format string, args ...interface{}) (Result, error) {
		return res, fmt.Errorf("crashtest(cluster) seed %d point %s: %s",
			cfg.Seed, cfg.Point, fmt.Sprintf(format, args...))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	disk.SetDoublewrite(true)
	bp := storage.NewBufferPool(disk, cfg.Frames+8)
	log := wal.NewLog()
	bp.SetFlushHook(log.FlushHook())

	fm, err := storage.NewFileManager(bp)
	if err != nil {
		return fail("setup: %v", err)
	}
	st := storage.NewObjectStore(bp, fm)
	ext, err := st.CreateExtent("torture")
	if err != nil {
		return fail("setup extent: %v", err)
	}

	// Seed records sized so several share a page and migrations regularly
	// append fresh pages. Payloads are a pure function of (seed, index).
	nRecords := 8 * cfg.Txns
	oids := make([]storage.OID, nRecords)
	want := make([][]byte, nRecords)
	for i := range oids {
		data := make([]byte, 60+rng.Intn(120))
		for j := range data {
			data[j] = byte(rng.Intn(256))
		}
		want[i] = data
		if oids[i], err = st.InsertExtent(ext, data); err != nil {
			return fail("seed insert %d: %v", i, err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		return fail("setup flush: %v", err)
	}
	log.FlushAll()

	// Arm the scenario exactly as Run does.
	fi := fault.New(cfg.Seed)
	switch cfg.Point {
	case PointLogFlushCrash:
		fi.FailAt(fault.OpLogFlush, int64(1+rng.Intn(4)), fault.Crash)
	case PointPageWriteCrash:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(6)), fault.Crash)
	case PointTornWrite:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(6)), fault.Torn)
	case PointTransientWrite:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(3)), fault.Transient)
	case PointLogAppendCrash:
		fi.FailAt(fault.OpLogAppend, int64(1+rng.Intn(8*cfg.Txns)), fault.Crash)
	case PointPostCommit:
		// Power-fail after the workload with dirty pages unflushed.
	default:
		return fail("unknown crash point")
	}
	disk.SetFaultInjector(fi)
	log.SetFaultInjector(fi)

	// The migration workload: each batch relocates a random slice of the
	// extent under one WAL transaction, then usually commits. A live abort
	// (deliberate, or after a transient fault) rolls the batch back
	// in-process; a hard crash leaves the transaction ACTIVE so recovery
	// must undo the half-applied migration. The last transaction is always
	// left active after a forced flush — the classic steal/no-force loser
	// whose on-disk stub and destination copy recovery must roll back.
	died := ""
	retry := func(what string, op func() error) error {
		for attempt := 0; ; attempt++ {
			err := op()
			if err == nil {
				return nil
			}
			if errors.Is(err, fault.ErrTransient) && attempt < maxRetries {
				res.Retries++
				continue
			}
			if died == "" {
				died = fmt.Sprintf("%s: %v", what, err)
			}
			return err
		}
	}
	// abortBatch rolls a live batch back and re-aligns the in-memory state
	// with the restored disk, exactly as the kernel's reorganizer does.
	abortBatch := func(tx wal.TxID, batch []storage.OID) bool {
		if err := retry("abort", func() error { return log.Abort(tx, undoApplier(bp)) }); err != nil {
			st.ForgetForward(batch...)
			return false
		}
		st.ForgetForward(batch...)
		if err := reloadPart(fm, ext); err != nil {
			if died == "" {
				died = fmt.Sprintf("reload after abort: %v", err)
			}
			return false
		}
		return true
	}
	for t := 0; t < cfg.Txns && died == ""; t++ {
		batch := make([]storage.OID, 0, 1+rng.Intn(12))
		for len(batch) < cap(batch) {
			batch = append(batch, oids[rng.Intn(nRecords)])
		}
		tx := log.Begin()
		res.Started++
		logger := func(pid storage.PageID, off int, before, after []byte) (uint32, error) {
			lsn, lerr := log.Update(tx, pid, off, before, after)
			return uint32(lsn), lerr
		}
		if _, err := st.MigrateRecords(ext, 0, batch, logger, rng.Intn(2) == 0); err != nil {
			if errors.Is(err, fault.ErrTransient) {
				// Roll the partial batch back and carry on, as the kernel
				// would after a transient storage error.
				res.Retries++
				abortBatch(tx, batch)
				continue
			}
			// Hard crash mid-batch: the machine is dead. No abort runs; the
			// transaction stays active for recovery to undo.
			died = fmt.Sprintf("migration: %v", err)
			break
		}
		if t == cfg.Txns-1 {
			// Leave the final migration active with its pages (and therefore
			// the log, via the WAL flush hook) forced to disk, then
			// power-fail: recovery must undo the flushed loser.
			_ = retry("loser flush", func() error { return bp.FlushAll() })
			break
		}
		if rng.Intn(6) == 0 {
			// Deliberate live rollback: the migration becomes a loser now.
			abortBatch(tx, batch)
			continue
		}
		if err := retry("commit", func() error { return log.Commit(tx) }); err != nil {
			break
		}
		res.Committed++
		if rng.Intn(2) == 0 {
			_ = retry("flush pressure", func() error {
				return bp.FlushPage(st.PartFirstPage(ext, 0))
			})
		}
	}
	res.Fired = len(fi.Trips()) > 0
	res.CrashedAt = died

	// ---- Reboot ----
	disk.SetFaultInjector(nil)
	log.SetFaultInjector(nil)
	for _, id := range disk.CorruptPages() {
		if err := disk.RepairPage(id); err != nil {
			return fail("repair page %d: %v", id, err)
		}
		res.TornFixed++
	}
	bp2 := storage.NewBufferPool(disk, cfg.Frames+8)
	bp2.SetFlushHook(log.FlushHook())
	rstats, err := log.Recover(bp2)
	if err != nil {
		return fail("recovery: %v", err)
	}
	res.Recovery = rstats

	// A cold store over the recovered disk: the forwarding map starts empty
	// and must be re-learned from the on-disk stubs alone.
	fm2, err := storage.OpenFileManager(bp2, fm.DirPage())
	if err != nil {
		return fail("reopen directory: %v", err)
	}
	st2 := storage.NewObjectStore(bp2, fm2)
	ext2, err := st2.OpenExtent("torture")
	if err != nil {
		return fail("reopen extent: %v", err)
	}

	verify := func(stage string) (Result, error) {
		for i, oid := range oids {
			got, err := st2.Get(oid)
			if err != nil {
				return fail("%s: record %d (%s) unreadable: %v", stage, i, oid, err)
			}
			if !bytes.Equal(got, want[i]) {
				return fail("%s: record %d (%s) corrupted (%d bytes, want %d)",
					stage, i, oid, len(got), len(want[i]))
			}
		}
		seen := map[storage.OID]int{}
		if err := st2.ScanExtent(ext2, func(oid storage.OID, _ []byte) bool {
			seen[oid]++
			return true
		}); err != nil {
			return fail("%s: scan: %v", stage, err)
		}
		if len(seen) != nRecords {
			return fail("%s: scan surfaced %d records, want %d", stage, len(seen), nRecords)
		}
		for oid, n := range seen {
			if n != 1 {
				return fail("%s: OID %s surfaced %d times", stage, oid, n)
			}
		}
		return res, nil
	}
	if r, err := verify("post-recovery"); err != nil {
		return r, err
	}
	if active := log.ActiveTransactions(); len(active) != 0 {
		return fail("transactions still active after recovery: %v", active)
	}

	// Compaction of the recovered extent (vacated source pages freed) must
	// preserve everything, and the final on-disk state must verify clean.
	if _, err := st2.CompactExtent(ext2); err != nil {
		return fail("compaction: %v", err)
	}
	if r, err := verify("post-compaction"); err != nil {
		return r, err
	}
	if err := bp2.FlushAll(); err != nil {
		return fail("post-recovery flush: %v", err)
	}
	if bad := disk.CorruptPages(); len(bad) != 0 {
		return fail("checksum mismatches after recovery: pages %v", bad)
	}
	return res, nil
}

// reloadPart re-reads the extent's part-0 directory record after an abort
// rolled the on-disk metadata back underneath the in-memory File.
func reloadPart(fm *storage.FileManager, e *storage.Extent) error {
	f, err := fm.FileByID(e.PartFileID(0))
	if err != nil {
		return err
	}
	return fm.ReloadFile(f)
}
