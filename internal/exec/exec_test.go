package exec

import (
	"strings"
	"testing"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/sql"
	"mood/internal/stats"
	"mood/internal/storage"
	"mood/internal/vehicledb"
)

type fixture struct {
	db   *vehicledb.DB
	pool *storage.BufferPool
	opt  *optimizer.Optimizer
	ex   *Executor
}

func setup(t testing.TB, cfg vehicledb.Config) *fixture {
	t.Helper()
	db, pool, err := vehicledb.Build(cfg, 2048)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stats.Collect(db.Cat, cost.DefaultDisk())
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		db:   db,
		pool: pool,
		opt:  optimizer.New(db.Cat, st),
		ex:   New(algebra.New(db.Cat)),
	}
}

func (f *fixture) run(t testing.TB, query string) *Result {
	t.Helper()
	st, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := f.opt.Optimize(st.(*sql.Select))
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	coll, err := f.ex.Execute(plan)
	if err != nil {
		t.Fatalf("execute: %v\nplan:\n%s", err, optimizer.Render(plan))
	}
	return Extract(coll)
}

func defaultFixture(t testing.TB) *fixture {
	return setup(t, vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5,
	})
}

func TestSimpleSelection(t *testing.T) {
	f := defaultFixture(t)
	res := f.run(t, `SELECT v FROM Vehicle v WHERE v.id = 42`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	id, _ := res.Rows[0][0].Field("id")
	if id.Int != 42 {
		t.Errorf("id = %d", id.Int)
	}
	// Brute-force comparison on a range predicate.
	res = f.run(t, `SELECT v FROM Vehicle v WHERE v.weight BETWEEN 1000 AND 1500`)
	want := 0
	f.db.Cat.ScanExtent("Vehicle", func(_ storage.OID, v object.Value) bool {
		w, _ := v.Field("weight")
		if w.Int >= 1000 && w.Int <= 1500 {
			want++
		}
		return true
	})
	if len(res.Rows) != want {
		t.Errorf("between rows = %d, want %d", len(res.Rows), want)
	}
}

func TestExample82EndToEnd(t *testing.T) {
	// The optimizer's Example 8.2 plan (two hash-partition joins) must
	// produce exactly the vehicles whose engine has 2 cylinders.
	f := defaultFixture(t)
	res := f.run(t, `SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`)
	want := map[int64]bool{}
	f.db.Cat.ScanExtent("Vehicle", func(_ storage.OID, v object.Value) bool {
		dt, _ := v.Field("drivetrain")
		dtv, _, _ := f.db.Cat.GetObject(dt.Ref)
		eng, _ := dtv.Field("engine")
		ev, _, _ := f.db.Cat.GetObject(eng.Ref)
		cyl, _ := ev.Field("cylinders")
		if cyl.Int == 2 {
			id, _ := v.Field("id")
			want[id.Int] = true
		}
		return true
	})
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		id, _ := row[0].Field("id")
		if !want[id.Int] {
			t.Errorf("unexpected vehicle id %d", id.Int)
		}
	}
}

func TestExample81EndToEnd(t *testing.T) {
	f := defaultFixture(t)
	// Exactly one company is named BMW; vehicles referencing it cycle with
	// period span=400, so vehicle 0 references company 0 = BMW.
	res := f.run(t, `SELECT v FROM Vehicle v
		WHERE v.manufacturer.name = 'BMW' AND v.drivetrain.engine.cylinders = 2`)
	want := 0
	f.db.Cat.ScanExtent("Vehicle", func(_ storage.OID, v object.Value) bool {
		mf, _ := v.Field("manufacturer")
		mv, _, _ := f.db.Cat.GetObject(mf.Ref)
		name, _ := mv.Field("name")
		if name.Str != "BMW" {
			return true
		}
		dt, _ := v.Field("drivetrain")
		dtv, _, _ := f.db.Cat.GetObject(dt.Ref)
		eng, _ := dtv.Field("engine")
		ev, _, _ := f.db.Cat.GetObject(eng.Ref)
		cyl, _ := ev.Field("cylinders")
		if cyl.Int == 2 {
			want++
		}
		return true
	})
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestSection31QueryEndToEnd(t *testing.T) {
	// The paper's Section 3.1 query with IS-A ranges, a minus term, a path
	// selection, an explicit join and an atomic selection.
	f := setup(t, vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5, Subclasses: true,
	})
	res := f.run(t, `
		SELECT c
		FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v
		WHERE c.drivetrain.transmission = 'AUTOMATIC'
		AND c.drivetrain.engine = v
		AND v.cylinders > 4`)

	// Brute force over the Automobile closure minus JapaneseAuto.
	want := 0
	f.db.Cat.ScanClosure("Automobile", []string{"JapaneseAuto"}, func(_ storage.OID, v object.Value) bool {
		dt, _ := v.Field("drivetrain")
		dtv, _, _ := f.db.Cat.GetObject(dt.Ref)
		tr, _ := dtv.Field("transmission")
		if tr.Str != "AUTOMATIC" {
			return true
		}
		eng, _ := dtv.Field("engine")
		ev, _, _ := f.db.Cat.GetObject(eng.Ref)
		cyl, _ := ev.Field("cylinders")
		if cyl.Int > 4 {
			want++
		}
		return true
	})
	if want == 0 {
		t.Fatal("fixture produced no qualifying automobiles")
	}
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestProjectionPaths(t *testing.T) {
	f := defaultFixture(t)
	res := f.run(t, `SELECT v.id, v.drivetrain.transmission AS trans FROM Vehicle v WHERE v.id < 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if len(res.Columns) != 2 || res.Columns[0] != "id" || res.Columns[1] != "trans" {
		t.Errorf("columns = %v", res.Columns)
	}
	for _, row := range res.Rows {
		if row[1].Kind != object.KindString {
			t.Errorf("trans = %s", row[1])
		}
	}
}

func TestDisjunctionUnion(t *testing.T) {
	f := defaultFixture(t)
	res := f.run(t, `SELECT v FROM Vehicle v WHERE v.id = 1 OR v.id = 2 OR v.id = 1`)
	// UNION of the AND-term sub-plans removes duplicate bindings.
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2 (union dedup)", len(res.Rows))
	}
}

func TestGroupByHavingOrderBy(t *testing.T) {
	f := defaultFixture(t)
	res := f.run(t, `
		SELECT e.cylinders, COUNT(*) AS n, AVG(e.size) AS avgsize, MIN(e.size) AS lo, MAX(e.size) AS hi
		FROM VehicleEngine e
		GROUP BY e.cylinders
		ORDER BY e.cylinders`)
	if len(res.Rows) != 16 {
		t.Fatalf("groups = %d, want 16", len(res.Rows))
	}
	prev := int64(-1)
	total := int64(0)
	for _, row := range res.Rows {
		cyl := row[0].Int
		if cyl <= prev {
			t.Error("ORDER BY violated")
		}
		prev = cyl
		total += row[1].Int
		lo, _ := row[3].AsFloat()
		hi, _ := row[4].AsFloat()
		avg, _ := row[2].AsFloat()
		if !(lo <= avg && avg <= hi) {
			t.Errorf("cyl %d: min/avg/max inconsistent: %v %v %v", cyl, lo, avg, hi)
		}
	}
	if total != 200 {
		t.Errorf("counts sum to %d, want 200", total)
	}
	// HAVING filters groups; cylinders values 2..16 have 13 engines, the
	// rest 12 (200 engines over 16 values).
	res = f.run(t, `
		SELECT e.cylinders, COUNT(*) AS n
		FROM VehicleEngine e GROUP BY e.cylinders HAVING n > 12`)
	if len(res.Rows) != 8 {
		t.Errorf("groups with n>12 = %d, want 8", len(res.Rows))
	}
}

func TestAggregateWithoutGroupBy(t *testing.T) {
	f := defaultFixture(t)
	res := f.run(t, `SELECT COUNT(*) AS n, SUM(e.size) AS total FROM VehicleEngine e`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Int != 200 {
		t.Errorf("count = %d", res.Rows[0][0].Int)
	}
	var want int64
	f.db.Cat.ScanExtent("VehicleEngine", func(_ storage.OID, v object.Value) bool {
		s, _ := v.Field("size")
		want += s.Int
		return true
	})
	if res.Rows[0][1].Int != want {
		t.Errorf("sum = %d, want %d", res.Rows[0][1].Int, want)
	}
}

func TestOrderByDescendingAndAlias(t *testing.T) {
	f := defaultFixture(t)
	res := f.run(t, `
		SELECT e.cylinders, COUNT(*) AS n
		FROM VehicleEngine e GROUP BY e.cylinders ORDER BY n DESC, e.cylinders`)
	if len(res.Rows) != 16 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	prevN, prevCyl := int64(1<<62), int64(-1)
	for _, row := range res.Rows {
		n, cyl := row[1].Int, row[0].Int
		if n > prevN {
			t.Fatal("ORDER BY alias DESC violated")
		}
		if n == prevN && cyl <= prevCyl {
			t.Fatal("secondary key violated")
		}
		prevN, prevCyl = n, cyl
	}
}

func TestDistinct(t *testing.T) {
	f := defaultFixture(t)
	res := f.run(t, `SELECT DISTINCT v.drivetrain.transmission FROM Vehicle v`)
	if len(res.Rows) != len(vehicledb.Transmissions) {
		t.Errorf("distinct transmissions = %d, want %d", len(res.Rows), len(vehicledb.Transmissions))
	}
}

func TestIndexedExecutionMatchesScan(t *testing.T) {
	f := defaultFixture(t)
	scan := f.run(t, `SELECT e FROM VehicleEngine e WHERE e.cylinders = 8`)
	if _, err := f.db.Cat.CreateIndex("cyl", "VehicleEngine", "cylinders", catalog.BTreeIndex, false); err != nil {
		t.Fatal(err)
	}
	// Refresh the optimizer so it sees the index.
	st, err := stats.Collect(f.db.Cat, cost.DefaultDisk())
	if err != nil {
		t.Fatal(err)
	}
	f.opt = optimizer.New(f.db.Cat, st)
	idx := f.run(t, `SELECT e FROM VehicleEngine e WHERE e.cylinders = 8`)
	if len(idx.Rows) != len(scan.Rows) {
		t.Errorf("indexed rows = %d, scan rows = %d", len(idx.Rows), len(scan.Rows))
	}
}

func TestCrossProduct(t *testing.T) {
	f := setup(t, vehicledb.Config{
		Vehicles: 5, DriveTrains: 5, Engines: 5, Companies: 5, Seed: 1,
	})
	res := f.run(t, `SELECT v.id, e.cylinders FROM Vehicle v, VehicleEngine e`)
	if len(res.Rows) != 25 {
		t.Errorf("cross rows = %d, want 25", len(res.Rows))
	}
}

func TestMethodPredicateEndToEnd(t *testing.T) {
	f := defaultFixture(t)
	// Wire the method dispatcher: lbweight as in the paper.
	f.ex.Alg.Invoke = func(self object.Value, _ storage.OID, method string, _ []object.Value) (object.Value, error) {
		w, _ := self.Field("weight")
		return object.NewInt(int32(float64(w.Int) * 2.2075)), nil
	}
	res := f.run(t, `SELECT v FROM Vehicle v WHERE v.lbweight() > 6000`)
	want := 0
	f.db.Cat.ScanExtent("Vehicle", func(_ storage.OID, v object.Value) bool {
		w, _ := v.Field("weight")
		if int32(float64(w.Int)*2.2075) > 6000 {
			want++
		}
		return true
	})
	if len(res.Rows) != want || want == 0 {
		t.Errorf("method predicate rows = %d, want %d", len(res.Rows), want)
	}
}

func TestEmptyResultAndFalseWhere(t *testing.T) {
	f := defaultFixture(t)
	res := f.run(t, `SELECT v FROM Vehicle v WHERE v.id = -1`)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	res = f.run(t, `SELECT v FROM Vehicle v WHERE 1 = 2`)
	if len(res.Rows) != 0 {
		t.Errorf("constant-false rows = %d", len(res.Rows))
	}
}

func TestResultString(t *testing.T) {
	f := defaultFixture(t)
	res := f.run(t, `SELECT v.id FROM Vehicle v WHERE v.id < 2 ORDER BY v.id`)
	out := res.String()
	if !strings.Contains(out, "id") || !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Errorf("String() = %q", out)
	}
}
