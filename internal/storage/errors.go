package storage

import "errors"

// Sentinel errors of the storage layer.
var (
	// ErrPageFull indicates a record does not fit into the target page.
	ErrPageFull = errors.New("storage: page full")
	// ErrRecordGone indicates the slot addressed is a tombstone (deleted).
	ErrRecordGone = errors.New("storage: record deleted")
	// ErrNoSuchFile indicates an unknown file id.
	ErrNoSuchFile = errors.New("storage: no such file")
	// ErrRecordTooLarge indicates a record exceeds what a page can hold and
	// the caller did not permit overflow chaining.
	ErrRecordTooLarge = errors.New("storage: record too large")
	// ErrBufferBusy indicates every buffer frame is pinned.
	ErrBufferBusy = errors.New("storage: all buffer frames pinned")
)
