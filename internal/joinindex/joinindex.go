// Package joinindex implements binary join indices and path indices — two
// of the access paths MOOD's Join operator and the optimizer's join
// strategies rely on (Sections 3.2, 6.3, 8.3). A binary join index
// materializes the pairs (oid_C, oid_D) induced by a reference attribute
// C.A; a path index materializes (oid_{C_1}, oid_{C_m}) for a whole path,
// collapsing the intermediate hops. Both directions are indexed, so forward
// and backward lookups cost one B+-tree probe (the paper's bjc = INDCOST(k)).
package joinindex

import (
	"fmt"
	"sync"

	"mood/internal/btree"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/object"
	"mood/internal/storage"
)

// BinaryJoinIndex materializes the object pairs induced by one reference
// attribute. It is maintained: the kernel routes every object mutation of
// the indexed class through Maintain, so the pair set tracks the extent.
// Lookups and maintenance may run concurrently; a RWMutex serializes
// writers against the probe paths.
type BinaryJoinIndex struct {
	Class     string // C
	Attribute string // A
	Target    string // D

	mu  sync.RWMutex
	fwd *btree.Tree // oid_C -> oid_D
	rev *btree.Tree // oid_D -> oid_C
	cat *catalog.Catalog
}

// BuildBJI scans the extent closure of class and materializes the pairs for
// its reference attribute (plain references and set/list-of-reference
// attributes both work).
func BuildBJI(cat *catalog.Catalog, class, attribute string) (*BinaryJoinIndex, error) {
	at, err := cat.AttributeType(class, attribute)
	if err != nil {
		return nil, err
	}
	target := ""
	switch at.Kind {
	case object.KindReference:
		target = at.Target
	case object.KindSet, object.KindList:
		if at.Elem != nil && at.Elem.Kind == object.KindReference {
			target = at.Elem.Target
		}
	}
	if target == "" {
		return nil, fmt.Errorf("joinindex: %s.%s is not a reference attribute", class, attribute)
	}
	bp := cat.Store().Pool()
	fwd, err := btree.New(bp, 8, false)
	if err != nil {
		return nil, err
	}
	rev, err := btree.New(bp, 8, false)
	if err != nil {
		return nil, err
	}
	ix := &BinaryJoinIndex{Class: class, Attribute: attribute, Target: target, fwd: fwd, rev: rev, cat: cat}
	var ierr error
	err = cat.ScanClosure(class, nil, func(oid storage.OID, v object.Value) bool {
		av, ok := v.Field(attribute)
		if !ok || av.IsNull() {
			return true
		}
		ierr = ix.Insert(oid, av)
		return ierr == nil
	})
	if err == nil {
		err = ierr
	}
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// NewBJI creates an empty maintained binary join index over the pool — the
// storage-level constructor the crash harness uses; BuildBJI is the
// catalog-driven kernel path.
func NewBJI(bp *storage.BufferPool, class, attribute, target string) (*BinaryJoinIndex, error) {
	fwd, err := btree.New(bp, 8, false)
	if err != nil {
		return nil, err
	}
	rev, err := btree.New(bp, 8, false)
	if err != nil {
		return nil, err
	}
	return &BinaryJoinIndex{Class: class, Attribute: attribute, Target: target, fwd: fwd, rev: rev}, nil
}

// OpenBJI re-attaches to a binary join index whose trees survive at the
// given roots (after a crash and WAL recovery). Statistics are recomputed by
// the tree walk; the catalog may be nil for storage-level harnesses that
// only exercise Insert/Remove/Forward/Backward.
func OpenBJI(bp *storage.BufferPool, class, attribute, target string, fwdRoot, revRoot storage.PageID) (*BinaryJoinIndex, error) {
	fwd, err := btree.Open(bp, fwdRoot, 8, false)
	if err != nil {
		return nil, err
	}
	rev, err := btree.Open(bp, revRoot, 8, false)
	if err != nil {
		return nil, err
	}
	return &BinaryJoinIndex{Class: class, Attribute: attribute, Target: target, fwd: fwd, rev: rev}, nil
}

// oidKey encodes an OID as an order-preserving 8-byte tree key. The encoding
// is injective over the full 64-bit OID — the shard tag in bits 60–63
// included — so entries from different shards of a sharded store can never
// collide, and a probe result routes back to its owning shard's store.
func oidKey(oid storage.OID) []byte { return btree.EncodeIntKey(int64(oid)) }

// SetLogger attaches a WAL page logger to both trees, so index maintenance
// is page-image logged and replayed/undone by recovery. nil detaches.
func (ix *BinaryJoinIndex) SetLogger(l storage.PageLogger) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.fwd.SetLogger(l)
	ix.rev.SetLogger(l)
}

// Roots returns the two tree roots for persistence and crash re-attach.
func (ix *BinaryJoinIndex) Roots() (fwd, rev storage.PageID) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.fwd.Root(), ix.rev.Root()
}

// Insert adds the pairs for one source object's attribute value.
func (ix *BinaryJoinIndex) Insert(src storage.OID, attr object.Value) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.insertLocked(src, attr)
}

func (ix *BinaryJoinIndex) insertLocked(src storage.OID, attr object.Value) error {
	add := func(dst storage.OID) error {
		if dst.IsNil() {
			return nil
		}
		if err := ix.fwd.Insert(oidKey(src), dst); err != nil {
			return err
		}
		return ix.rev.Insert(oidKey(dst), src)
	}
	switch attr.Kind {
	case object.KindReference:
		return add(attr.Ref)
	case object.KindSet, object.KindList:
		for _, e := range attr.Elems {
			if e.Kind == object.KindReference {
				if err := add(e.Ref); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Remove deletes the pairs for one source object's attribute value.
func (ix *BinaryJoinIndex) Remove(src storage.OID, attr object.Value) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.removeLocked(src, attr)
}

func (ix *BinaryJoinIndex) removeLocked(src storage.OID, attr object.Value) error {
	del := func(dst storage.OID) error {
		if dst.IsNil() {
			return nil
		}
		if err := ix.fwd.Delete(oidKey(src), dst); err != nil && err != btree.ErrNotFound {
			return err
		}
		if err := ix.rev.Delete(oidKey(dst), src); err != nil && err != btree.ErrNotFound {
			return err
		}
		return nil
	}
	switch attr.Kind {
	case object.KindReference:
		return del(attr.Ref)
	case object.KindSet, object.KindList:
		for _, e := range attr.Elems {
			if e.Kind == object.KindReference {
				if err := del(e.Ref); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Maintain applies one object mutation to the index under a single writer
// critical section: old and new are the source object's attribute values
// before and after the change. A create passes a null old, a delete a null
// new; an update whose attribute did not change is a cheap no-op for plain
// references.
func (ix *BinaryJoinIndex) Maintain(src storage.OID, old, new object.Value) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old.Kind == object.KindReference && new.Kind == object.KindReference && old.Ref == new.Ref {
		return nil
	}
	if !old.IsNull() {
		if err := ix.removeLocked(src, old); err != nil {
			return err
		}
	}
	if !new.IsNull() {
		return ix.insertLocked(src, new)
	}
	return nil
}

// Forward returns the target OIDs referenced by src.
func (ix *BinaryJoinIndex) Forward(src storage.OID) ([]storage.OID, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.fwd.Search(oidKey(src))
}

// Backward returns the source OIDs referencing dst.
func (ix *BinaryJoinIndex) Backward(dst storage.OID) ([]storage.OID, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.rev.Search(oidKey(dst))
}

// Len returns the number of materialized pairs.
func (ix *BinaryJoinIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.fwd.Len()
}

// CostStats returns the forward tree's Table 9 parameters for the bjc
// formula.
func (ix *BinaryJoinIndex) CostStats() cost.BTreeStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.fwd.Stats()
	return cost.BTreeStats{Order: st.Order, Levels: st.Levels, Leaves: st.Leaves, KeySize: st.KeySize}
}

// PathIndex materializes (start, end) pairs for a multi-hop reference path
// C_1.A_1...A_n (Kemper/Moerkotte-style access support relation, which the
// paper cites as [Kem 90]).
type PathIndex struct {
	Class string   // C_1
	Path  []string // A_1 ... A_n

	fwd *btree.Tree // oid_{C_1} -> oid_{C_{n+1}}
	rev *btree.Tree
}

// BuildPathIndex scans the extent closure of class and materializes the
// endpoints of every instantiation of the path.
func BuildPathIndex(cat *catalog.Catalog, class string, path []string) (*PathIndex, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("joinindex: empty path")
	}
	if _, err := cat.IsAPath(class, path); err != nil {
		return nil, err
	}
	bp := cat.Store().Pool()
	fwd, err := btree.New(bp, 8, false)
	if err != nil {
		return nil, err
	}
	rev, err := btree.New(bp, 8, false)
	if err != nil {
		return nil, err
	}
	ix := &PathIndex{Class: class, Path: path, fwd: fwd, rev: rev}

	// Walk each starting object's path, fanning out through collections.
	var ierr error
	err = cat.ScanClosure(class, nil, func(start storage.OID, v object.Value) bool {
		ends := []object.Value{v}
		for _, attr := range path {
			var next []object.Value
			for _, cur := range ends {
				if cur.Kind == object.KindReference {
					if cur.Ref.IsNil() {
						continue
					}
					resolved, _, err := cat.GetObject(cur.Ref)
					if err != nil {
						ierr = err
						return false
					}
					cur = resolved
				}
				av, ok := cur.Field(attr)
				if !ok || av.IsNull() {
					continue
				}
				switch av.Kind {
				case object.KindSet, object.KindList:
					next = append(next, av.Elems...)
				default:
					next = append(next, av)
				}
			}
			ends = next
		}
		for _, e := range ends {
			if e.Kind != object.KindReference || e.Ref.IsNil() {
				continue
			}
			if ierr = fwd.Insert(oidKey(start), e.Ref); ierr != nil {
				return false
			}
			if ierr = rev.Insert(oidKey(e.Ref), start); ierr != nil {
				return false
			}
		}
		return true
	})
	if err == nil {
		err = ierr
	}
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// Forward returns the path endpoints reachable from start.
func (ix *PathIndex) Forward(start storage.OID) ([]storage.OID, error) {
	return ix.fwd.Search(oidKey(start))
}

// Backward returns the starting objects whose path reaches end.
func (ix *PathIndex) Backward(end storage.OID) ([]storage.OID, error) {
	return ix.rev.Search(oidKey(end))
}

// Len returns the number of materialized endpoint pairs.
func (ix *PathIndex) Len() int { return ix.fwd.Len() }

// CostStats returns Table 9 parameters for the forward tree.
func (ix *PathIndex) CostStats() cost.BTreeStats {
	st := ix.fwd.Stats()
	return cost.BTreeStats{Order: st.Order, Levels: st.Levels, Leaves: st.Leaves, KeySize: st.KeySize}
}
