package kernel

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"mood/internal/object"
	"mood/internal/storage"
	"mood/internal/vehicledb"
)

// The sharded differential wall: the same vehicle database is built at shard
// counts 1, 2 and 4 (serial and parallel) and every query — a golden set plus
// 60 seeded random predicates — must return exactly the rows the single
// monolithic store returns. Row order differs across shard counts (parts
// scan round-robin), so unordered queries compare as sorted-row fingerprints;
// ORDER BY queries compare byte-identically.

func shardOptions(nshards, parallelism int) Options {
	opts := DefaultOptions()
	opts.BufferFrames = 512
	opts.ShardCount = nshards
	opts.Parallelism = parallelism
	if parallelism > 1 {
		opts.ParallelMinPages = -1
	}
	return opts
}

// buildShardVehicleDB opens a kernel at the given shard count and degree of
// parallelism and loads the deterministic vehicle database into it.
func buildShardVehicleDB(t testing.TB, nshards, parallelism int) *DB {
	t.Helper()
	db, err := Open(shardOptions(nshards, parallelism))
	if err != nil {
		t.Fatal(err)
	}
	if err := vehicledb.DefineSchema(db.Cat); err != nil {
		t.Fatal(err)
	}
	cfg := vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5, Subclasses: true,
	}
	if _, err := vehicledb.Populate(db.Cat, cfg); err != nil {
		t.Fatal(err)
	}
	if err := db.RefreshStats(); err != nil {
		t.Fatal(err)
	}
	return db
}

// fingerprint renders a result with rows sorted (the multiset of rows), or
// in delivered order for ORDER BY queries.
func fingerprint(res *Result, ordered bool) string {
	out := renderResult(res)
	if ordered {
		return out
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) <= 3 {
		return out
	}
	body := lines[2 : len(lines)-1] // between separator and "(n rows)"
	sort.Strings(body)
	return strings.Join(lines, "\n") + "\n"
}

type shardQuery struct {
	q       string
	ordered bool
}

// goldenShardQueries cover scans, path expressions (implicit joins),
// aggregates, BETWEEN, string predicates, ordering, and the IS-A closure.
// Projections are atomic — OIDs differ across shard counts by construction.
var goldenShardQueries = []shardQuery{
	{`SELECT v.id FROM Vehicle v WHERE v.weight < 1200`, false},
	{`SELECT v.id, v.weight FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`, false},
	{`SELECT v.manufacturer.name FROM Vehicle v WHERE v.weight < 900`, false},
	{`SELECT v.id FROM Vehicle v WHERE v.drivetrain.transmission = "MANUAL" AND v.weight > 1500`, false},
	{`SELECT COUNT(*) AS n FROM Vehicle v WHERE v.drivetrain.engine.size > 3000`, false},
	{`SELECT v.id FROM Vehicle v WHERE v.weight BETWEEN 1000 AND 1500`, false},
	{`SELECT v.id, v.weight FROM Vehicle v WHERE v.weight > 2700 ORDER BY v.weight, v.id`, true},
	{`SELECT e.name FROM Employee e WHERE e.age >= 30 ORDER BY e.name`, true},
	{`SELECT c.name FROM Company c WHERE c.location = "Tokyo" AND c.name = "BMW"`, false},
	{`SELECT v.id FROM JapaneseAuto v WHERE v.weight < 2000`, false},
}

// randomShardQueries generates 60 deterministic single-predicate queries over
// atomic and path attributes.
func randomShardQueries() []shardQuery {
	rng := rand.New(rand.NewSource(7))
	intOps := []string{"=", "<>", "<", "<=", ">", ">="}
	strOps := []string{"=", "<>"}
	type attr struct {
		lhs   string
		str   []string // string domain; nil means integer
		lo, w int      // integer constant range [lo, lo+w)
	}
	attrs := []attr{
		{lhs: "v.weight", lo: 800, w: 2200},
		{lhs: "v.id", lo: 0, w: 400},
		{lhs: "v.drivetrain.engine.cylinders", lo: 2, w: 31},
		{lhs: "v.drivetrain.engine.size", lo: 1000, w: 4000},
		{lhs: "v.drivetrain.transmission", str: vehicledb.Transmissions},
		{lhs: "v.manufacturer.location", str: []string{"Ankara", "Munich", "Tokyo", "Detroit", "Istanbul"}},
	}
	var out []shardQuery
	for i := 0; i < 60; i++ {
		a := attrs[rng.Intn(len(attrs))]
		var pred string
		if a.str != nil {
			pred = fmt.Sprintf(`%s %s %q`, a.lhs, strOps[rng.Intn(len(strOps))], a.str[rng.Intn(len(a.str))])
		} else {
			pred = fmt.Sprintf(`%s %s %d`, a.lhs, intOps[rng.Intn(len(intOps))], a.lo+rng.Intn(a.w))
		}
		out = append(out, shardQuery{q: `SELECT v.id FROM Vehicle v WHERE ` + pred})
	}
	return out
}

// TestShardedDifferentialWall is the correctness acceptance test of the
// sharded store: identical results at every shard count, serial and
// parallel.
func TestShardedDifferentialWall(t *testing.T) {
	queries := append(append([]shardQuery{}, goldenShardQueries...), randomShardQueries()...)

	base := buildShardVehicleDB(t, 0, 0)
	want := make([]string, len(queries))
	for i, sq := range queries {
		res, err := base.Execute(sq.q)
		if err != nil {
			t.Fatalf("baseline %q: %v", sq.q, err)
		}
		want[i] = fingerprint(res, sq.ordered)
	}
	nonEmpty := 0
	for _, fp := range want {
		if !strings.Contains(fp, "(0 rows)") {
			nonEmpty++
		}
	}
	if nonEmpty < len(queries)/2 {
		t.Fatalf("only %d/%d baseline queries returned rows; the wall is too weak", nonEmpty, len(queries))
	}

	for _, nshards := range []int{1, 2, 4} {
		for _, par := range []int{0, 4} {
			t.Run(fmt.Sprintf("shards=%d/par=%d", nshards, par), func(t *testing.T) {
				db := buildShardVehicleDB(t, nshards, par)
				if got := db.Store.Shards(); got != nshards {
					t.Fatalf("store reports %d shards, want %d", got, nshards)
				}
				for i, sq := range queries {
					res, err := db.Execute(sq.q)
					if err != nil {
						t.Fatalf("%q: %v", sq.q, err)
					}
					if got := fingerprint(res, sq.ordered); got != want[i] {
						t.Errorf("%q: results diverge from single store\n--- sharded(%d) ---\n%s--- single ---\n%s",
							sq.q, nshards, got, want[i])
					}
				}
				if nshards > 1 {
					// A cold full extent scan must read pages on every shard.
					for _, sh := range db.Shards {
						if err := sh.Pool.EvictAll(); err != nil {
							t.Fatal(err)
						}
					}
					before := db.Store.ShardReads()
					if _, err := db.Execute(`SELECT COUNT(*) AS n FROM Vehicle v`); err != nil {
						t.Fatal(err)
					}
					for sh, n := range db.Store.ShardReads() {
						if n-before[sh] == 0 {
							t.Errorf("shard %d served zero reads on a cold scan", sh)
						}
					}
				}
			})
		}
	}
}

// TestShardedCommitThroughput is the performance acceptance check: with a
// simulated fsync latency on every log force, four independent WALs must
// sustain at least twice the single-log commit rate. Every transaction has
// single-shard affinity (it creates an object and updates that same object),
// so each commit forces exactly one shard's log.
func TestShardedCommitThroughput(t *testing.T) {
	const (
		workers   = 8
		txsPer    = 25
		syncDelay = time.Millisecond
	)
	measure := func(nshards int) float64 {
		db, err := Open(shardOptions(nshards, 0))
		if err != nil {
			t.Fatal(err)
		}
		if err := vehicledb.DefineSchema(db.Cat); err != nil {
			t.Fatal(err)
		}
		for _, sh := range db.Shards {
			sh.Log.SetSyncDelay(syncDelay)
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < txsPer; i++ {
					tx := db.Begin()
					oid, err := tx.Create("Employee", employee(fmt.Sprintf("w%d-%d", w, i), int32(w*1000+i)))
					if err != nil {
						errs <- err
						return
					}
					v := employee(fmt.Sprintf("w%d-%d", w, i), int32(w*1000+i))
					v.SetField("age", object.NewInt(int32(40+i)))
					if err := tx.Update(oid, v); err != nil {
						errs <- err
						return
					}
					if err := tx.Commit(); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		return float64(workers*txsPer) / time.Since(start).Seconds()
	}

	single := measure(1)
	sharded := measure(4)
	t.Logf("commits/sec: single=%.0f sharded(4)=%.0f speedup=%.2fx", single, sharded, sharded/single)
	if sharded < 2*single {
		t.Errorf("4-shard commit rate %.0f/s is below 2x the single-store rate %.0f/s", sharded, single)
	}
}

// TestShardedObjectCacheCoherence checks the (shard,OID) cache contract:
// OIDs carry their shard tag, so records minted on different shards with
// identical file/page/slot coordinates never alias in the shared object
// cache, and updates/deletes invalidate exactly the touched record.
func TestShardedObjectCacheCoherence(t *testing.T) {
	opts := shardOptions(2, 0)
	opts.ObjectCacheBytes = 1 << 20
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := vehicledb.DefineSchema(db.Cat); err != nil {
		t.Fatal(err)
	}
	// Round-robin placement: consecutive creates land on alternating shards
	// with identical within-shard coordinates.
	setup := db.Begin()
	a, err := setup.Create("Employee", employee("on-shard-0", 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := setup.Create("Employee", employee("on-shard-1", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	if a.Shard() == b.Shard() {
		t.Fatalf("consecutive creates landed on the same shard (%s, %s)", a, b)
	}

	read := func(oid storage.OID) object.Value {
		t.Helper()
		tx := db.Begin()
		v, _, err := tx.Get(oid)
		if err != nil {
			t.Fatalf("Get(%s): %v", oid, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		return v
	}
	name := func(v object.Value) string {
		f, _ := v.Field("name")
		return f.Str
	}

	// Warm the cache with both records, then check they stay distinct.
	if got := name(read(a)); got != "on-shard-0" {
		t.Fatalf("read a = %q", got)
	}
	if got := name(read(b)); got != "on-shard-1" {
		t.Fatalf("read b = %q", got)
	}

	// Update a; b's cached copy must be untouched, a's must be invalidated.
	tx := db.Begin()
	if err := tx.Update(a, employee("renamed", 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := name(read(a)); got != "renamed" {
		t.Errorf("after update, cached read of a = %q, want %q", got, "renamed")
	}
	if got := name(read(b)); got != "on-shard-1" {
		t.Errorf("updating a changed b's cached value to %q", got)
	}

	// Delete b; a must survive, b must be gone even though it was cached.
	tx = db.Begin()
	if err := tx.Delete(b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	probe := db.Begin()
	if _, _, err := probe.Get(b); err == nil {
		t.Error("deleted object b still readable through the cache")
	}
	_ = probe.Abort()
	if got := name(read(a)); got != "renamed" {
		t.Errorf("deleting b disturbed a: %q", got)
	}
}

// TestShardedExplainAnalyzePages checks EXPLAIN ANALYZE's per-shard page
// accounting: the reported total equals the sum of the per-shard DiskSim
// deltas, and the rendered output carries the per-shard breakdown.
func TestShardedExplainAnalyzePages(t *testing.T) {
	db := buildShardVehicleDB(t, 2, 0)
	for _, sh := range db.Shards {
		if err := sh.Pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Store.ShardReads()
	res, err := db.Execute(`EXPLAIN ANALYZE SELECT v.id FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`)
	if err != nil {
		t.Fatal(err)
	}
	after := db.Store.ShardReads()

	an := db.LastAnalyze
	if an == nil {
		t.Fatal("EXPLAIN ANALYZE did not populate LastAnalyze")
	}
	if len(an.ShardPages) != 2 {
		t.Fatalf("Analysis.ShardPages has %d entries, want 2", len(an.ShardPages))
	}
	var sum int64
	for sh, n := range an.ShardPages {
		if want := after[sh] - before[sh]; n != want {
			t.Errorf("shard %d: analysis reports %d pages, DiskSim delta is %d", sh, n, want)
		}
		if n == 0 {
			t.Errorf("shard %d reports zero pages on a cold join scan", sh)
		}
		sum += n
	}
	if an.TotalPages != sum {
		t.Errorf("TotalPages %d != sum of per-shard deltas %d", an.TotalPages, sum)
	}
	out := res.Rows[0][0].Str
	if !strings.Contains(out, "shards=[") {
		t.Errorf("EXPLAIN ANALYZE output lacks the per-shard annotation:\n%s", out)
	}

	// Single-store output must be unchanged: no per-shard annotation.
	single := buildShardVehicleDB(t, 0, 0)
	res, err = single.Execute(`EXPLAIN ANALYZE SELECT v.id FROM Vehicle v WHERE v.weight < 1200`)
	if err != nil {
		t.Fatal(err)
	}
	if single.LastAnalyze == nil || single.LastAnalyze.ShardPages != nil {
		t.Error("single-store analysis unexpectedly carries ShardPages")
	}
	if strings.Contains(res.Rows[0][0].Str, "shards=[") {
		t.Error("single-store EXPLAIN ANALYZE output carries a per-shard annotation")
	}
}
