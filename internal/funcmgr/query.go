package funcmgr

import (
	"sync"

	"mood/internal/expr"
)

// QueryRegistry extends the Function Manager to query fragments: predicates
// and projection expressions compiled by expr.Compile are registered under
// their expression signature (the rendered expression text, the analogue of
// the paper's class-plus-parameter-list signature) and resolved at execution
// time. The lifecycle mirrors the member-function registry — compile once,
// late-bind by signature, count a "load" on first resolution — so EXPLAIN
// and the experiment harness can report compilation reuse the same way
// Manager.Stats reports it for methods.
//
// The registry is safe for concurrent resolution (parallel exchange workers
// compile/resolve through the same instance); the returned closures
// themselves are read-only over their captured expression nodes and shared
// freely across goroutines.
type QueryRegistry struct {
	mu  sync.Mutex
	fns map[string]*queryFn

	compilations int64 // distinct fragments lowered
	resolutions  int64 // signature lookups served
	fallbacks    int64 // fragments that did not fully lower
}

type queryFn struct {
	boolFn expr.BoolFn
	fn     expr.Fn
	pred   expr.PredFn // non-nil when the self-mode specialization lowered
	full   bool        // every node lowered (no interpreter subtrees)
	loaded bool        // "loaded" on first resolution, as for shared objects
}

// NewQueryRegistry creates an empty registry.
func NewQueryRegistry() *QueryRegistry {
	return &QueryRegistry{fns: make(map[string]*queryFn)}
}

// resolve returns the compiled entry for the signature, lowering and
// registering it on first use.
func (r *QueryRegistry) resolve(key, varName string, e expr.Expr) *queryFn {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.fns[key]
	if !ok {
		q = &queryFn{}
		q.boolFn, q.full = expr.CompileBool(e)
		q.fn, _ = expr.Compile(e)
		if varName != "" {
			q.pred, _ = expr.CompilePredicate(e, varName)
		}
		r.fns[key] = q
		r.compilations++
		if !q.full {
			r.fallbacks++
		}
	}
	r.resolutions++
	if !q.loaded {
		q.loaded = true
	}
	return q
}

// Predicate resolves the self-mode compiled form of a single-variable
// predicate over varName. ok is false when the predicate does not lower to
// self mode (multi-variable, method call, or unknown node); callers fall
// back to BoolFn or the interpreter.
func (r *QueryRegistry) Predicate(varName string, e expr.Expr) (expr.PredFn, bool) {
	q := r.resolve("pred:"+varName+"\x00"+expr.Signature(e), varName, e)
	return q.pred, q.pred != nil
}

// BoolFn resolves the environment-mode compiled predicate. The closure is
// always valid; full reports whether every node lowered (false means some
// subtree interprets).
func (r *QueryRegistry) BoolFn(e expr.Expr) (fn expr.BoolFn, full bool) {
	q := r.resolve("bool:\x00"+expr.Signature(e), "", e)
	return q.boolFn, q.full
}

// Fn resolves the environment-mode compiled expression (projections).
func (r *QueryRegistry) Fn(e expr.Expr) (fn expr.Fn, full bool) {
	q := r.resolve("expr:\x00"+expr.Signature(e), "", e)
	return q.fn, q.full
}

// QueryStats returns (compilations, resolutions, fallbacks): distinct
// fragments lowered, signature lookups served, and fragments that kept an
// interpreted subtree.
func (r *QueryRegistry) QueryStats() (compilations, resolutions, fallbacks int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.compilations, r.resolutions, r.fallbacks
}
