package algebra

import (
	"mood/internal/object"
	"mood/internal/storage"
)

// BindDirect names the direct extent of a class (no IS-A closure): the
// plain "FROM Class var" form, as opposed to "FROM EVERY Class var".
func (a *Algebra) BindDirect(class, aName string) (*Collection, error) {
	var items []Bound
	err := a.Cat.ScanExtent(class, func(oid storage.OID, v object.Value) bool {
		items = append(items, Bound{OID: oid, Val: v})
		return true
	})
	if err != nil {
		return nil, err
	}
	return singleVar(ExtentKind, aName, class, items), nil
}
