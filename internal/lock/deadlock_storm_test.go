package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDeadlockStormMakesProgress pits goroutines against each other with
// deliberately inconsistent lock orders, so waits-for cycles form
// continually. The detector must break every cycle (victims retry from
// scratch) and the storm must finish: no lost wakeup, no undetected
// deadlock, no timeout. Deadlock *counts* are scheduler-dependent, so the
// assertions are about progress and bookkeeping, not exact tallies.
func TestDeadlockStormMakesProgress(t *testing.T) {
	// The 5s timeout is a backstop only: any ErrTimeout is a detector bug
	// (a cycle it failed to see) and fails the test below.
	m := NewManager(5 * time.Second)
	resources := []Resource{"r0", "r1", "r2"}
	var completed, victims atomic.Int64
	var wg sync.WaitGroup
	const workers = 8
	const rounds = 25
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(tx TxID) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Half the workers walk the resources forward, half
				// backward: two-resource holds in opposite orders.
				first := resources[(int(tx)+i)%len(resources)]
				second := resources[(int(tx)+i+1)%len(resources)]
				if tx%2 == 0 {
					first, second = second, first
				}
			retry:
				for attempt := 0; ; attempt++ {
					if attempt > 200 {
						t.Errorf("tx %d round %d: no progress after %d deadlock retries", tx, i, attempt)
						return
					}
					if err := m.Acquire(tx, first, ModeX); err != nil {
						if errors.Is(err, ErrDeadlock) {
							victims.Add(1)
							m.ReleaseAll(tx)
							continue retry
						}
						t.Errorf("tx %d: %v", tx, err)
						return
					}
					if err := m.Acquire(tx, second, ModeX); err != nil {
						if errors.Is(err, ErrDeadlock) {
							victims.Add(1)
							m.ReleaseAll(tx)
							continue retry
						}
						t.Errorf("tx %d: %v", tx, err)
						return
					}
					completed.Add(1)
					m.ReleaseAll(tx)
					break
				}
			}
		}(TxID(1 + g))
	}
	wg.Wait()

	if got := completed.Load(); got != workers*rounds {
		t.Errorf("completed %d two-lock critical sections, want %d", got, workers*rounds)
	}
	_, _, deadlocks := m.Stats()
	if v := victims.Load(); v != deadlocks {
		t.Errorf("victims saw ErrDeadlock %d times but manager counted %d", v, deadlocks)
	}
	// All locks were released: the manager's tables must be empty.
	for _, res := range resources {
		for g := 0; g < workers; g++ {
			if mode := m.HeldMode(TxID(1+g), res); mode != ModeNone {
				t.Errorf("tx %d still holds %s on %s after the storm", 1+g, mode, res)
			}
		}
	}
}
