// Package objcache is the decoded-object cache that sits above the buffer
// pool in the fetch hierarchy: OID → decoded object.Value, so a hot
// reference traversal skips both the page fetch and the object.Unmarshal
// that the per-page buffer pool cannot avoid. The cost model prices every
// reference dereference as a random page access (Section 6.1's
// RNDCOST(k_c*fan)); a warm object cache removes the whole term for the hit
// fraction, which is where the ≥2x repeated-traversal speedup comes from.
//
// The cache is sharded (per-shard mutex) and byte-budgeted. Replacement is
// 2Q-lite: a first-touch entry lands in a probation FIFO and is promoted to
// a protected LRU only when re-referenced, so a single large scan cannot
// wash out the hot working set. Eviction drains probation before touching
// protected.
//
// Staleness is handled with per-shard epochs. A writer invalidates an OID
// under the shard lock and bumps the shard epoch; a reader captures the
// epoch with BeginFetch before reading the store and passes the token to
// Put, which rejects the insert if the epoch moved. The window where a
// reader holds pre-update bytes while the writer updates and invalidates
// can therefore never re-install a stale value.
package objcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mood/internal/object"
	"mood/internal/storage"
)

// entryOverhead approximates the per-entry bookkeeping bytes (map slot, list
// element, entry struct) charged against the budget on top of the encoded
// object size, so budgets stay honest for small objects.
const entryOverhead = 96

// numShards is the fixed shard count (power of two). Sixteen matches the
// buffer pool's maximum shard count, so writer/reader contention on the
// cache never exceeds contention on the pool underneath it.
const numShards = 16

type entry struct {
	oid       storage.OID
	val       object.Value
	class     string
	size      int64
	protected bool
}

type shard struct {
	mu        sync.RWMutex
	epoch     uint64
	budget    int64
	bytes     int64
	table     map[storage.OID]*list.Element
	probation *list.List // first-touch entries, FIFO eviction order
	protected *list.List // re-referenced entries, LRU order
	evictions int64
	rejected  int64
}

// Cache is a sharded, byte-budgeted OID → decoded-value cache.
type Cache struct {
	shards [numShards]shard
	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
	budget int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Puts      int64
	Evictions int64
	Rejected  int64 // puts dropped by the epoch check or the budget
	Bytes     int64
	Entries   int
	Budget    int64
}

// New creates a cache with the given total byte budget, split evenly across
// the shards. A non-positive budget yields a cache that stores nothing but
// still counts lookups, so callers need not special-case "cache off" paths
// they instrument.
func New(budgetBytes int64) *Cache {
	c := &Cache{budget: budgetBytes}
	per := budgetBytes / numShards
	for i := range c.shards {
		sh := &c.shards[i]
		sh.budget = per
		sh.table = make(map[storage.OID]*list.Element)
		sh.probation = list.New()
		sh.protected = list.New()
	}
	return c
}

// shardIndex spreads consecutive slots of one page across shards with a
// multiplicative hash over the whole OID.
func shardIndex(oid storage.OID) uint64 {
	h := uint64(oid) * 0x9e3779b97f4a7c15
	return (h >> 32) & (numShards - 1)
}

func (c *Cache) shard(oid storage.OID) *shard {
	return &c.shards[shardIndex(oid)]
}

// Get returns the cached decoded value and class name for oid. The returned
// value SHARES its backing slices with the cache: callers must treat it as
// immutable and Clone before mutating (the kernel's UPDATE path does).
func (c *Cache) Get(oid storage.OID) (object.Value, string, bool) {
	sh := c.shard(oid)
	sh.mu.Lock()
	el, ok := sh.table[oid]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return object.Null, "", false
	}
	e := el.Value.(*entry)
	if e.protected {
		sh.protected.MoveToFront(el)
	} else {
		// Second touch: promote out of probation into the protected LRU.
		sh.probation.Remove(el)
		e.protected = true
		sh.table[oid] = sh.protected.PushFront(e)
	}
	v, class := e.val, e.class
	sh.mu.Unlock()
	c.hits.Add(1)
	return v, class, true
}

// GetScan is the scan-resistant Get: a read-locked lookup that skips
// replacement promotion and returns a pointer to the cached value instead
// of a 120-byte copy. Extent scans touch every entry once per pass, so
// promoting on their behalf would only churn the probation/protected lists
// without improving future hit rates (2Q exists precisely to keep scans
// from washing out the hot set) — and skipping the promotion lets scan hits
// share the shard read lock instead of serializing on it. The returned
// pointer aliases the cache entry: entries are immutable after insert (an
// invalidation unlinks, never rewrites), so the pointer stays valid and
// read-only even if the entry is evicted after the lock is dropped. Callers
// must not write through it and must copy before mutating.
func (c *Cache) GetScan(oid storage.OID) (*object.Value, string, bool) {
	sh := c.shard(oid)
	sh.mu.RLock()
	el, ok := sh.table[oid]
	if !ok {
		sh.mu.RUnlock()
		c.misses.Add(1)
		return nil, "", false
	}
	e := el.Value.(*entry)
	sh.mu.RUnlock()
	c.hits.Add(1)
	return &e.val, e.class, true
}

// GetScanBatch is GetScan over a page's worth of OIDs at once: vals[i] is
// set to the cached value pointer for oids[i], or nil on a miss. Every
// touched shard is read-locked at most once for the whole batch — one lock
// pair per shard per page instead of one per object — and the hit/miss
// counters are bumped once in bulk, so a sequential scan's per-object cache
// cost collapses to a map lookup. No user code runs under the locks. The
// returned pointers carry GetScan's aliasing contract. Reports the number
// of hits. vals must be at least as long as oids.
func (c *Cache) GetScanBatch(oids []storage.OID, vals []*object.Value) int {
	var locked [numShards]bool
	hits := 0
	for i, oid := range oids {
		idx := shardIndex(oid)
		sh := &c.shards[idx]
		if !locked[idx] {
			sh.mu.RLock()
			locked[idx] = true
		}
		if el, ok := sh.table[oid]; ok {
			vals[i] = &el.Value.(*entry).val
			hits++
		} else {
			vals[i] = nil
		}
	}
	for i := range locked {
		if locked[i] {
			c.shards[i].mu.RUnlock()
		}
	}
	c.hits.Add(int64(hits))
	c.misses.Add(int64(len(oids) - hits))
	return hits
}

// BeginFetch captures the shard epoch for oid. Callers take the token
// BEFORE reading the store, then hand it to Put; any invalidation between
// the two bumps the epoch and the Put is dropped, so a slow reader can never
// install bytes that predate a concurrent update.
func (c *Cache) BeginFetch(oid storage.OID) uint64 {
	sh := c.shard(oid)
	sh.mu.Lock()
	ep := sh.epoch
	sh.mu.Unlock()
	return ep
}

// Put inserts the decoded value for oid, charged as size bytes (the encoded
// record length) plus fixed overhead. The insert is dropped when the shard
// epoch no longer matches token or when the entry alone exceeds the shard
// budget. Reports whether the value was cached.
func (c *Cache) Put(token uint64, oid storage.OID, v object.Value, class string, size int) bool {
	sh := c.shard(oid)
	charged := int64(size) + entryOverhead
	sh.mu.Lock()
	if sh.epoch != token || charged > sh.budget {
		sh.rejected++
		sh.mu.Unlock()
		return false
	}
	if _, ok := sh.table[oid]; ok {
		// A concurrent reader of the same OID won the race; its value is as
		// fresh as ours (same epoch), keep it.
		sh.mu.Unlock()
		return true
	}
	e := &entry{oid: oid, val: v, class: class, size: charged}
	sh.table[oid] = sh.probation.PushFront(e)
	sh.bytes += charged
	sh.evictLocked()
	sh.mu.Unlock()
	c.puts.Add(1)
	return true
}

// evictLocked drops entries until the shard is back under budget: probation
// back first (one-touch entries), then the protected LRU tail.
func (sh *shard) evictLocked() {
	for sh.bytes > sh.budget {
		el := sh.probation.Back()
		from := sh.probation
		if el == nil {
			el = sh.protected.Back()
			from = sh.protected
		}
		if el == nil {
			return
		}
		e := from.Remove(el).(*entry)
		delete(sh.table, e.oid)
		sh.bytes -= e.size
		sh.evictions++
	}
}

// Invalidate removes oid from the cache and bumps the shard epoch so any
// in-flight fetch of it (or of a shard sibling) cannot install a stale
// value. Called by the object store under its exclusive lock on every
// Update/Delete.
func (c *Cache) Invalidate(oid storage.OID) {
	sh := c.shard(oid)
	sh.mu.Lock()
	sh.epoch++
	if el, ok := sh.table[oid]; ok {
		e := el.Value.(*entry)
		if e.protected {
			sh.protected.Remove(el)
		} else {
			sh.probation.Remove(el)
		}
		delete(sh.table, oid)
		sh.bytes -= e.size
	}
	sh.mu.Unlock()
}

// Reset empties the cache and bumps every shard epoch — the big hammer for
// WAL recovery, where pages are rewritten wholesale underneath the cache.
func (c *Cache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.epoch++
		sh.table = make(map[storage.OID]*list.Element)
		sh.probation.Init()
		sh.protected.Init()
		sh.bytes = 0
		sh.mu.Unlock()
	}
}

// Hits returns the cumulative hit count.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the cumulative miss count.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// HitRate returns hits / (hits + misses), 0 when no lookups happened.
func (c *Cache) HitRate() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Snapshot returns the current counters and occupancy.
func (c *Cache) Snapshot() Stats {
	st := Stats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Puts:   c.puts.Load(),
		Budget: c.budget,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Evictions += sh.evictions
		st.Rejected += sh.rejected
		st.Bytes += sh.bytes
		st.Entries += len(sh.table)
		sh.mu.Unlock()
	}
	return st
}
