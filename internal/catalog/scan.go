package catalog

import (
	"fmt"

	"mood/internal/object"
	"mood/internal/storage"
)

// ExtentCursor is a pull-based scan over a class extent (optionally the
// whole IS-A closure, honoring the FROM clause's minus operator). Unlike
// ScanExtent/ScanClosure, which push every object through a callback, the
// cursor reads extent pages one at a time as the consumer asks for rows — a
// consumer that stops early stops paying for page reads, which is what makes
// the streaming executor's early termination observable on the simulated
// disk.
type ExtentCursor struct {
	cat     *Catalog
	classes []string // extents still to visit, in closure order
	ci      int
	file    *storage.File
	pid     storage.PageID
	buf     []scanned
	bi      int
	opened  bool
	done    bool
	closed  bool
}

type scanned struct {
	oid storage.OID
	val object.Value
}

// ErrCursorClosed is returned by Next on a cursor whose Close has run.
var ErrCursorClosed = fmt.Errorf("catalog: extent cursor is closed")

// extentClasses resolves the class list a scan of class covers: just the
// class itself, or its IS-A closure minus the excluded subtrees. Every
// extent is validated up front so iteration never reports a schema error
// halfway through a drained pipeline.
func (c *Catalog) extentClasses(class string, minus []string, closure bool) ([]string, error) {
	var classes []string
	if closure {
		all, err := c.Closure(class)
		if err != nil {
			return nil, err
		}
		excluded := map[string]bool{}
		for _, m := range minus {
			sub, err := c.Closure(m)
			if err != nil {
				return nil, err
			}
			for _, s := range sub {
				excluded[s] = true
			}
		}
		for _, name := range all {
			if !excluded[name] {
				classes = append(classes, name)
			}
		}
	} else {
		classes = []string{class}
	}
	for _, name := range classes {
		cl, err := c.Class(name)
		if err != nil {
			return nil, err
		}
		if cl.extent == nil {
			return nil, fmt.Errorf("catalog: %s has no extent", name)
		}
	}
	return classes, nil
}

// OpenExtentScan opens a cursor over the direct extent of class (closure
// false) or over its IS-A closure minus the excluded subtrees (closure
// true), mirroring ScanExtent and ScanClosure respectively.
func (c *Catalog) OpenExtentScan(class string, minus []string, closure bool) (*ExtentCursor, error) {
	classes, err := c.extentClasses(class, minus, closure)
	if err != nil {
		return nil, err
	}
	return &ExtentCursor{cat: c, classes: classes}, nil
}

// ScannedObject is one decoded object surfaced by a morsel read: the
// object's OID and its decoded value.
type ScannedObject struct {
	OID storage.OID
	Val object.Value
}

// ExtentMorsel is one unit of parallel scan work: a run of consecutive
// chain-order pages of one class extent. Morsels of a scan are numbered in
// the exact order a serial ExtentCursor would visit their pages, so a
// dispatcher that merges worker output by Seq reproduces the serial row
// order byte for byte.
type ExtentMorsel struct {
	Class string
	Seq   int
	Pages []storage.PageID
	file  *storage.File
}

// ExtentMorsels splits the extent scan of class (with the same minus/closure
// semantics as OpenExtentScan) into page-range morsels of at most pagesPer
// pages each. Page order comes from the store's chain-order page list, so
// concurrent workers can read disjoint pages directly instead of chasing
// NextPage links serially.
func (c *Catalog) ExtentMorsels(class string, minus []string, closure bool, pagesPer int) ([]ExtentMorsel, error) {
	if pagesPer < 1 {
		pagesPer = 1
	}
	classes, err := c.extentClasses(class, minus, closure)
	if err != nil {
		return nil, err
	}
	var morsels []ExtentMorsel
	for _, name := range classes {
		cl, err := c.Class(name)
		if err != nil {
			return nil, err
		}
		pages, err := c.store.PageList(cl.extent)
		if err != nil {
			return nil, err
		}
		for off := 0; off < len(pages); off += pagesPer {
			end := off + pagesPer
			if end > len(pages) {
				end = len(pages)
			}
			morsels = append(morsels, ExtentMorsel{
				Class: name,
				Seq:   len(morsels),
				Pages: pages[off:end],
				file:  cl.extent,
			})
		}
	}
	return morsels, nil
}

// ReadMorsel reads and decodes the objects of one morsel. It is safe to
// call from concurrent worker goroutines: page reads go through the store's
// shared lock and the sharded buffer pool.
func (c *Catalog) ReadMorsel(m *ExtentMorsel) ([]ScannedObject, error) {
	var out []ScannedObject
	// Readahead: request the whole morsel's page set up front, so loading
	// page i+1 overlaps decoding page i (no-op without a prefetcher).
	if len(m.Pages) > 1 {
		c.store.Prefetch(m.Pages[1:]...)
	}
	for _, pid := range m.Pages {
		recs, _, err := c.store.ScanPage(m.file, pid)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			_, v, err := decodeObject(r.Data)
			if err != nil {
				return nil, err
			}
			out = append(out, ScannedObject{OID: r.OID, Val: v})
		}
	}
	return out, nil
}

// Next returns the next object of the scan; ok is false when the scan is
// exhausted. Calling Next on a closed cursor is an error (exhaustion and
// abandonment are different states, and the morsel dispatcher relies on the
// distinction to catch use-after-close bugs).
func (it *ExtentCursor) Next() (storage.OID, object.Value, bool, error) {
	for {
		if it.closed {
			return storage.NilOID, object.Null, false, ErrCursorClosed
		}
		if it.done {
			return storage.NilOID, object.Null, false, nil
		}
		if it.bi < len(it.buf) {
			h := it.buf[it.bi]
			it.bi++
			return h.oid, h.val, true, nil
		}
		if err := it.fill(); err != nil {
			it.done = true
			return storage.NilOID, object.Null, false, err
		}
	}
}

// fill buffers the next non-empty page's objects, advancing through the
// class list; it sets done when every extent is exhausted.
func (it *ExtentCursor) fill() error {
	it.buf, it.bi = nil, 0
	for {
		if it.file == nil {
			// Advance to the next class's extent.
			if it.opened {
				it.ci++
			}
			if it.ci >= len(it.classes) {
				it.done = true
				return nil
			}
			cl, err := it.cat.Class(it.classes[it.ci])
			if err != nil {
				return err
			}
			it.file = cl.extent
			it.pid = it.cat.store.FirstScanPage(cl.extent)
			it.opened = true
		}
		if it.pid == 0 { // extent exhausted
			it.file = nil
			continue
		}
		recs, next, err := it.cat.store.ScanPage(it.file, it.pid)
		if err != nil {
			return err
		}
		it.pid = next
		if next != 0 {
			// Readahead: load the chain's next page while this one decodes
			// (no-op without a prefetcher).
			it.cat.store.Prefetch(next)
		}
		for _, r := range recs {
			_, v, err := decodeObject(r.Data)
			if err != nil {
				return err
			}
			it.buf = append(it.buf, scanned{oid: r.OID, val: v})
		}
		if len(it.buf) > 0 {
			return nil
		}
	}
}

// Close releases the cursor. Closing early is how a pipeline abandons the
// remaining pages without reading them. Close is idempotent.
func (it *ExtentCursor) Close() {
	it.done, it.closed = true, true
	it.buf, it.file = nil, nil
}
