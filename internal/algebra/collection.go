// Package algebra implements the MOOD algebra of Section 3.2: the general
// operators (ObjId, TypeId, Deref, isA, Bind), the collection operators
// (Select, IndSel, Project, Join, Partition, Sort, DupElim, Union,
// Intersection, Difference) and the conversion operators (asSet, asList,
// asExtent, Unnest, Nest, Flatten), with the return-type rules of the
// paper's Tables 1–7 tracked on every result.
//
// Objects are accessed through the four collection kinds the paper lists:
// extents (objects), sets and lists (object identifiers), and named
// objects. A Collection's rows carry variable bindings so that join results
// can keep every joined object addressable by its range variable, as the
// access plans of Examples 8.1 and 8.2 require.
package algebra

import (
	"errors"
	"fmt"

	"mood/internal/catalog"
	"mood/internal/object"
	"mood/internal/storage"
)

// Kind is the collection kind of Tables 1–7.
type Kind uint8

// The four collection kinds.
const (
	ExtentKind Kind = iota
	SetKind
	ListKind
	NamedObjKind
)

func (k Kind) String() string {
	switch k {
	case ExtentKind:
		return "Extent"
	case SetKind:
		return "Set"
	case ListKind:
		return "List"
	case NamedObjKind:
		return "NamedObj"
	}
	return "?"
}

// Bound is one object bound to a range variable: its identifier and, when
// materialized, its value. Set/List collections may carry OIDs only; Deref
// materializes values on demand.
type Bound struct {
	OID storage.OID
	Val object.Value
}

// Row is one element of a collection: a set of variable bindings. A simple
// collection (one class extent bound to one variable) has a single binding;
// join results accumulate one binding per joined collection.
type Row struct {
	Vars map[string]Bound
}

// Get returns the binding of a variable.
func (r Row) Get(name string) (Bound, bool) {
	b, ok := r.Vars[name]
	return b, ok
}

// merged combines two rows (disjoint variable sets).
func (r Row) merged(o Row) Row {
	out := Row{Vars: make(map[string]Bound, len(r.Vars)+len(o.Vars))}
	for k, v := range r.Vars {
		out.Vars[k] = v
	}
	for k, v := range o.Vars {
		out.Vars[k] = v
	}
	return out
}

// Collection is the runtime value flowing between algebra operators.
type Collection struct {
	Kind Kind
	// Name is the distinguished range variable (the paper's Bind name);
	// operators that need "the" object of a row use it.
	Name string
	// Class is the class of the distinguished variable, when known.
	Class string
	Rows  []Row
}

// Len returns the number of rows.
func (c *Collection) Len() int { return len(c.Rows) }

// Primary returns the bound object of the distinguished variable of row i.
func (c *Collection) Primary(i int) Bound {
	b := c.Rows[i].Vars[c.Name]
	return b
}

// OIDs returns the distinguished variable's OIDs in row order.
func (c *Collection) OIDs() []storage.OID {
	out := make([]storage.OID, len(c.Rows))
	for i := range c.Rows {
		out[i] = c.Primary(i).OID
	}
	return out
}

func (c *Collection) String() string {
	return fmt.Sprintf("%s(%s:%s)[%d rows]", c.Kind, c.Name, c.Class, len(c.Rows))
}

// singleVar builds a collection binding each object to one variable.
func singleVar(kind Kind, name, class string, items []Bound) *Collection {
	rows := make([]Row, len(items))
	for i, it := range items {
		rows[i] = Row{Vars: map[string]Bound{name: it}}
	}
	return &Collection{Kind: kind, Name: name, Class: class, Rows: rows}
}

// Errors of the algebra.
var (
	ErrNotApplicable = errors.New("algebra: operator not applicable to this collection kind")
	ErrNoIndex       = errors.New("algebra: no index available")
)

// Algebra evaluates the operators against one catalog.
type Algebra struct {
	Cat *catalog.Catalog
	// Invoke dispatches parameterless-method predicates; nil disables them.
	Invoke func(self object.Value, selfOID storage.OID, method string, args []object.Value) (object.Value, error)
}

// New creates an algebra over the catalog.
func New(cat *catalog.Catalog) *Algebra { return &Algebra{Cat: cat} }

// --- General operators (Section 3.2) -------------------------------------

// ObjId returns the object identifier of a bound object — ObjId(o).
func (a *Algebra) ObjId(b Bound) storage.OID { return b.OID }

// TypeId returns the type identifier of the object — TypeId(o). Every MOOD
// object carries its class id in its stored form.
func (a *Algebra) TypeId(oid storage.OID) (int, error) {
	_, class, err := a.Cat.GetObject(oid)
	if err != nil {
		return 0, err
	}
	return a.Cat.TypeID(class)
}

// Deref returns the object with the given identifier — Deref(oid).
func (a *Algebra) Deref(oid storage.OID) (object.Value, error) {
	v, _, err := a.Cat.GetObject(oid)
	return v, err
}

// IsA returns the class name of the last attribute of a path expression
// starting with a class name — isA(path).
func (a *Algebra) IsA(class string, path []string) (string, error) {
	return a.Cat.IsAPath(class, path)
}

// Bind gives the name aName to the extent of a class (with its IS-A
// closure, honoring the FROM clause's minus operator) — Bind(arg, aName).
func (a *Algebra) Bind(class, aName string, minus ...string) (*Collection, error) {
	var items []Bound
	err := a.Cat.ScanClosure(class, minus, func(oid storage.OID, v object.Value) bool {
		items = append(items, Bound{OID: oid, Val: v})
		return true
	})
	if err != nil {
		return nil, err
	}
	return singleVar(ExtentKind, aName, class, items), nil
}

// BindSet wraps a set of object identifiers as a named Set collection.
func (a *Algebra) BindSet(name, class string, oids []storage.OID) *Collection {
	items := make([]Bound, 0, len(oids))
	seen := map[storage.OID]bool{}
	for _, oid := range oids {
		if seen[oid] {
			continue
		}
		seen[oid] = true
		items = append(items, Bound{OID: oid})
	}
	return singleVar(SetKind, name, class, items)
}

// BindList wraps a list of object identifiers as a named List collection.
func (a *Algebra) BindList(name, class string, oids []storage.OID) *Collection {
	items := make([]Bound, len(oids))
	for i, oid := range oids {
		items[i] = Bound{OID: oid}
	}
	return singleVar(ListKind, name, class, items)
}

// BindNamed wraps one object as a Named Object collection ("another way to
// access an object is to give a unique name to an object").
func (a *Algebra) BindNamed(name, class string, oid storage.OID) (*Collection, error) {
	v, _, err := a.Cat.GetObject(oid)
	if err != nil {
		return nil, err
	}
	return singleVar(NamedObjKind, name, class, []Bound{{OID: oid, Val: v}}), nil
}

// materialize ensures the row's binding carries its value.
func (a *Algebra) materialize(b *Bound) error {
	if !b.Val.IsNull() || b.OID.IsNil() {
		return nil
	}
	v, _, err := a.Cat.GetObject(b.OID)
	if err != nil {
		return err
	}
	b.Val = v
	return nil
}

// Materialize loads values for every row of the collection (dereferencing
// the object identifiers of Set/List collections).
func (a *Algebra) Materialize(c *Collection) error {
	for i := range c.Rows {
		for name := range c.Rows[i].Vars {
			b := c.Rows[i].Vars[name]
			if err := a.materialize(&b); err != nil {
				return err
			}
			c.Rows[i].Vars[name] = b
		}
	}
	return nil
}
