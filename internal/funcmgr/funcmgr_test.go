package funcmgr

import (
	"errors"
	"testing"

	"mood/internal/catalog"
	"mood/internal/lock"
	"mood/internal/object"
	"mood/internal/storage"
)

func setup(t testing.TB) (*catalog.Catalog, *Manager) {
	t.Helper()
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 128)
	fm, err := storage.NewFileManager(bp)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.New(storage.NewObjectStore(bp, fm))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Vehicle class with its two methods.
	_, err = cat.DefineClass("Vehicle", object.TupleOf(
		object.Field{Name: "weight", Type: object.TInteger},
	), nil, []*catalog.MethodSig{
		{Name: "lbweight", ReturnType: object.TInteger},
		{Name: "weight", ReturnType: object.TInteger},
		{Name: "scaled", ParamNames: []string{"factor"}, ParamTypes: []*object.Type{object.TInteger}, ReturnType: object.TInteger},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineClass("Automobile", object.TupleOf(), []string{"Vehicle"}, nil); err != nil {
		t.Fatal(err)
	}
	return cat, New(cat, lock.NewManager(0))
}

func lbweightSig(cat *catalog.Catalog, t testing.TB) *catalog.MethodSig {
	t.Helper()
	sig, err := cat.Method("Vehicle", "lbweight")
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

// lbweight is the paper's example body: return weight*2.2075 as an int.
func lbweight(inv *Invocation) (object.Value, error) {
	w, _ := inv.Self.Field("weight")
	return object.NewInt(int32(float64(w.Int) * 2.2075)), nil
}

func TestRegisterInvoke(t *testing.T) {
	cat, m := setup(t)
	sig := lbweightSig(cat, t)
	if m.Registered(sig) {
		t.Error("function registered before Register")
	}
	if err := m.Register(sig, lbweight); err != nil {
		t.Fatal(err)
	}
	self := object.NewTuple([]string{"weight"}, []object.Value{object.NewInt(1000)})
	out, err := m.Invoke("Vehicle", "lbweight", &Invocation{Self: self})
	if err != nil {
		t.Fatal(err)
	}
	if out.Int != 2207 {
		t.Errorf("lbweight(1000) = %d, want 2207", out.Int)
	}
	comp, loads, invs := m.Stats()
	if comp != 1 || loads != 1 || invs != 1 {
		t.Errorf("stats = %d/%d/%d", comp, loads, invs)
	}
	// Second invocation: no new load (kept in memory).
	m.Invoke("Vehicle", "lbweight", &Invocation{Self: self})
	_, loads, _ = m.Stats()
	if loads != 1 {
		t.Errorf("loads = %d after second call, want 1", loads)
	}
	// Scope close unloads; next call reloads.
	m.CloseScope()
	m.Invoke("Vehicle", "lbweight", &Invocation{Self: self})
	_, loads, _ = m.Stats()
	if loads != 2 {
		t.Errorf("loads = %d after scope change, want 2", loads)
	}
}

func TestLateBindingThroughHierarchy(t *testing.T) {
	cat, m := setup(t)
	if err := m.Register(lbweightSig(cat, t), lbweight); err != nil {
		t.Fatal(err)
	}
	// Invoke on the subclass: resolution walks up to Vehicle::lbweight.
	self := object.NewTuple([]string{"weight"}, []object.Value{object.NewInt(2000)})
	out, err := m.Invoke("Automobile", "lbweight", &Invocation{Self: self})
	if err != nil {
		t.Fatal(err)
	}
	if out.Int != 4415 {
		t.Errorf("Automobile lbweight = %d", out.Int)
	}
}

func TestUpdateChangesBehaviourWithoutRestart(t *testing.T) {
	cat, m := setup(t)
	sig := lbweightSig(cat, t)
	m.Register(sig, lbweight)
	self := object.NewTuple([]string{"weight"}, []object.Value{object.NewInt(100)})
	before, _ := m.Invoke("Vehicle", "lbweight", &Invocation{Self: self})
	// Rewrite the function at run time: this is the paper's headline
	// capability — "adding a new function to the system has no effect on
	// the server program".
	if err := m.Update(sig, func(inv *Invocation) (object.Value, error) {
		w, _ := inv.Self.Field("weight")
		return object.NewInt(int32(w.Int * 2)), nil
	}); err != nil {
		t.Fatal(err)
	}
	after, _ := m.Invoke("Vehicle", "lbweight", &Invocation{Self: self})
	if before.Int == after.Int {
		t.Error("update did not change behaviour")
	}
	if after.Int != 200 {
		t.Errorf("after update = %d", after.Int)
	}
}

func TestDelete(t *testing.T) {
	cat, m := setup(t)
	sig := lbweightSig(cat, t)
	m.Register(sig, lbweight)
	if err := m.Delete(sig); err != nil {
		t.Fatal(err)
	}
	_, err := m.Invoke("Vehicle", "lbweight", &Invocation{Self: object.Null})
	if !errors.Is(err, ErrNoSuchFunction) {
		t.Errorf("invoke after delete = %v", err)
	}
	if err := m.Delete(sig); !errors.Is(err, ErrNoSuchFunction) {
		t.Errorf("double delete = %v", err)
	}
	if err := m.Update(sig, lbweight); !errors.Is(err, ErrNoSuchFunction) {
		t.Errorf("update of deleted = %v", err)
	}
}

func TestParametersAndArity(t *testing.T) {
	cat, m := setup(t)
	sig, err := cat.Method("Vehicle", "scaled")
	if err != nil {
		t.Fatal(err)
	}
	m.Register(sig, func(inv *Invocation) (object.Value, error) {
		w, _ := inv.Self.Field("weight")
		return object.NewInt(int32(w.Int * inv.Arg(0).Int)), nil
	})
	self := object.NewTuple([]string{"weight"}, []object.Value{object.NewInt(10)})
	out, err := m.Invoke("Vehicle", "scaled", &Invocation{Self: self, Args: []object.Value{object.NewInt(3)}})
	if err != nil || out.Int != 30 {
		t.Errorf("scaled = %v %v", out, err)
	}
	if _, err := m.Invoke("Vehicle", "scaled", &Invocation{Self: self}); !errors.Is(err, ErrBadArity) {
		t.Errorf("missing arg = %v", err)
	}
	// Ill-typed argument rejected.
	if _, err := m.Invoke("Vehicle", "scaled", &Invocation{Self: self, Args: []object.Value{object.NewString("x")}}); err == nil {
		t.Error("mistyped argument accepted")
	}
}

func TestExceptionHandling(t *testing.T) {
	cat, m := setup(t)
	sig := lbweightSig(cat, t)
	m.Register(sig, func(*Invocation) (object.Value, error) {
		var p *int
		_ = *p // segfault inside the "compiled" function
		return object.Null, nil
	})
	_, err := m.Invoke("Vehicle", "lbweight", &Invocation{Self: object.Null})
	if err == nil {
		t.Fatal("panic escaped the Exception handler")
	}
}

func TestReturnTypeChecked(t *testing.T) {
	cat, m := setup(t)
	sig := lbweightSig(cat, t)
	m.Register(sig, func(*Invocation) (object.Value, error) {
		return object.NewString("not an int"), nil
	})
	if _, err := m.Invoke("Vehicle", "lbweight", &Invocation{Self: object.Null}); err == nil {
		t.Error("ill-typed return accepted")
	}
}

func TestRegisterUndeclared(t *testing.T) {
	_, m := setup(t)
	bad := &catalog.MethodSig{Class: "Vehicle", Name: "undeclared", ReturnType: object.TInteger}
	if err := m.Register(bad, lbweight); err == nil {
		t.Error("undeclared method registered")
	}
}
