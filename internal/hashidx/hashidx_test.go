package hashidx

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"mood/internal/storage"
)

func newIndex(t testing.TB) *Index {
	t.Helper()
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 128)
	ix, err := New(bp)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func oidFor(i int) storage.OID {
	return storage.MakeOID(1, storage.PageID(i+1), storage.SlotID(i%1000))
}

func TestInsertSearch(t *testing.T) {
	ix := newIndex(t)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if err := ix.Insert(key, oidFor(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if ix.Len() != 1000 {
		t.Errorf("Len = %d", ix.Len())
	}
	for i := 0; i < 1000; i++ {
		got, err := ix.Search([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != oidFor(i) {
			t.Errorf("Search(key-%d) = %v", i, got)
		}
	}
	if got, _ := ix.Search([]byte("absent")); len(got) != 0 {
		t.Errorf("Search(absent) = %v", got)
	}
}

func TestDirectoryGrows(t *testing.T) {
	ix := newIndex(t)
	if ix.DirSize() != 1 {
		t.Fatalf("initial DirSize = %d", ix.DirSize())
	}
	for i := 0; i < 20000; i++ {
		if err := ix.Insert([]byte(fmt.Sprintf("grow-%d", i)), oidFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.GlobalDepth() < 2 {
		t.Errorf("GlobalDepth = %d after 20000 inserts", ix.GlobalDepth())
	}
	// All still findable after many splits.
	for i := 0; i < 20000; i += 113 {
		got, err := ix.Search([]byte(fmt.Sprintf("grow-%d", i)))
		if err != nil || len(got) != 1 {
			t.Fatalf("Search(grow-%d) = %v %v", i, got, err)
		}
	}
}

func TestDuplicateKeysOverflow(t *testing.T) {
	ix := newIndex(t)
	// Identical keys can never be separated by splitting: this exercises
	// the overflow-chain path.
	const dups = 1000
	for i := 0; i < dups; i++ {
		if err := ix.Insert([]byte("same"), oidFor(i)); err != nil {
			t.Fatalf("dup insert %d: %v", i, err)
		}
	}
	got, err := ix.Search([]byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != dups {
		t.Fatalf("Search(dup) = %d oids, want %d", len(got), dups)
	}
	seen := map[storage.OID]bool{}
	for _, o := range got {
		seen[o] = true
	}
	if len(seen) != dups {
		t.Error("duplicate OIDs returned")
	}
}

func TestDelete(t *testing.T) {
	ix := newIndex(t)
	for i := 0; i < 500; i++ {
		ix.Insert([]byte(fmt.Sprintf("d-%d", i)), oidFor(i))
	}
	for i := 0; i < 500; i += 2 {
		if err := ix.Delete([]byte(fmt.Sprintf("d-%d", i)), oidFor(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if ix.Len() != 250 {
		t.Errorf("Len after deletes = %d", ix.Len())
	}
	for i := 0; i < 500; i++ {
		got, _ := ix.Search([]byte(fmt.Sprintf("d-%d", i)))
		want := 1 - (1 - i%2)
		if len(got) != want {
			t.Errorf("key d-%d: %d results, want %d", i, len(got), want)
		}
	}
	if err := ix.Delete([]byte("d-2"), oidFor(2)); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
	// Delete one specific oid from duplicates.
	for i := 0; i < 5; i++ {
		ix.Insert([]byte("multi"), oidFor(100+i))
	}
	if err := ix.Delete([]byte("multi"), oidFor(102)); err != nil {
		t.Fatal(err)
	}
	got, _ := ix.Search([]byte("multi"))
	if len(got) != 4 {
		t.Errorf("after targeted delete: %d", len(got))
	}
	for _, o := range got {
		if o == oidFor(102) {
			t.Error("targeted oid survived")
		}
	}
}

func TestRandomizedAgainstReference(t *testing.T) {
	ix := newIndex(t)
	ref := map[string][]storage.OID{}
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 10000; step++ {
		key := fmt.Sprintf("k%d", rng.Intn(300))
		if rng.Intn(3) != 0 || len(ref[key]) == 0 {
			oid := storage.OID(rng.Uint64() | 1)
			if err := ix.Insert([]byte(key), oid); err != nil {
				t.Fatal(err)
			}
			ref[key] = append(ref[key], oid)
		} else {
			victim := ref[key][rng.Intn(len(ref[key]))]
			if err := ix.Delete([]byte(key), victim); err != nil {
				t.Fatalf("delete: %v", err)
			}
			for i, o := range ref[key] {
				if o == victim {
					ref[key] = append(ref[key][:i], ref[key][i+1:]...)
					break
				}
			}
		}
	}
	for key, want := range ref {
		got, err := ix.Search([]byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("key %s: %d oids, want %d", key, len(got), len(want))
		}
	}
}

func BenchmarkHashInsert(b *testing.B) {
	ix := newIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert([]byte(fmt.Sprintf("bench-%d", i)), oidFor(i))
	}
}

func BenchmarkHashSearch(b *testing.B) {
	ix := newIndex(b)
	for i := 0; i < 100000; i++ {
		ix.Insert([]byte(fmt.Sprintf("bench-%d", i)), oidFor(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search([]byte(fmt.Sprintf("bench-%d", i%100000)))
	}
}
