package vehicledb

import (
	"testing"

	"mood/internal/object"
	"mood/internal/storage"
)

// smallConfig keeps unit-test runtime negligible while preserving the
// generator's structural ratios (|V| = 2|DT|, |DT| = |E|, companies >=
// vehicles so the hit-probability span is exercised).
func smallConfig() Config {
	return Config{
		Vehicles:    80,
		DriveTrains: 40,
		Engines:     40,
		Companies:   200,
		Employees:   10,
		Seed:        7,
	}
}

func TestBuildCardinalitiesMatchConfig(t *testing.T) {
	cfg := smallConfig()
	db, _, err := Build(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{
		"Vehicles":    len(db.Vehicles),
		"DriveTrains": len(db.DriveTrains),
		"Engines":     len(db.Engines),
		"Companies":   len(db.Companies),
		"Employees":   len(db.Employees),
	}
	want := map[string]int{
		"Vehicles":    cfg.Vehicles,
		"DriveTrains": cfg.DriveTrains,
		"Engines":     cfg.Engines,
		"Companies":   cfg.Companies,
		"Employees":   cfg.Employees,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %d, want %d", k, got[k], w)
		}
	}
	for _, class := range []string{"Vehicle", "VehicleDriveTrain", "VehicleEngine", "Company", "Employee"} {
		if _, err := db.Cat.Class(class); err != nil {
			t.Errorf("class %s not defined: %v", class, err)
		}
	}
}

func TestSchemaShape(t *testing.T) {
	cat, _, err := NewEnvironment(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := DefineSchema(cat); err != nil {
		t.Fatal(err)
	}
	refs := map[string][2]string{
		"VehicleDriveTrain": {"engine", "VehicleEngine"},
		"Company":           {"president", "Employee"},
		"Vehicle":           {"drivetrain", "VehicleDriveTrain"},
	}
	for class, ra := range refs {
		ty, err := cat.AttributeType(class, ra[0])
		if err != nil {
			t.Fatalf("%s.%s: %v", class, ra[0], err)
		}
		if ty.Kind != object.KindReference || ty.Target != ra[1] {
			t.Errorf("%s.%s = %+v, want REFERENCE(%s)", class, ra[0], ty, ra[1])
		}
	}
	// The IS-A chain of Section 3.1, including inherited attributes.
	if !cat.IsA("JapaneseAuto", "Vehicle") || !cat.IsA("Automobile", "Vehicle") {
		t.Error("Automobile/JapaneseAuto IS-A chain not built")
	}
	ty, err := cat.AttributeType("JapaneseAuto", "manufacturer")
	if err != nil || ty.Kind != object.KindReference || ty.Target != "Company" {
		t.Errorf("inherited JapaneseAuto.manufacturer = %+v, %v", ty, err)
	}
}

// TestPopulateReferenceStatistics verifies the Table 13–15 structure the
// generator promises: cylinder domain, fan-1 engine chains, pairwise
// drivetrain sharing, and manufacturers confined to the first |V| companies.
func TestPopulateReferenceStatistics(t *testing.T) {
	cfg := smallConfig()
	db, _, err := Build(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}

	// Cylinders: 16 distinct even values in [2,32].
	cyl := map[int64]bool{}
	for _, oid := range db.Engines {
		v, _, err := db.Cat.GetObject(oid)
		if err != nil {
			t.Fatal(err)
		}
		c, _ := v.Field("cylinders")
		if c.Int < 2 || c.Int > 32 || c.Int%2 != 0 {
			t.Fatalf("cylinders = %d, want even in [2,32]", c.Int)
		}
		cyl[c.Int] = true
	}
	if len(cyl) != 16 {
		t.Errorf("distinct cylinder values = %d, want 16", len(cyl))
	}

	// Every drivetrain references the engine at its own index (fan = 1).
	engineSet := map[storage.OID]bool{}
	for _, e := range db.Engines {
		engineSet[e] = true
	}
	for i, oid := range db.DriveTrains {
		v, _, err := db.Cat.GetObject(oid)
		if err != nil {
			t.Fatal(err)
		}
		eng, _ := v.Field("engine")
		if !engineSet[eng.Ref] {
			t.Fatalf("drivetrain %d references unknown engine %v", i, eng.Ref)
		}
		if eng.Ref != db.Engines[i%cfg.Engines] {
			t.Fatalf("drivetrain %d engine = %v, want the i mod |E| chain", i, eng.Ref)
		}
		tr, _ := v.Field("transmission")
		if tr.Str != Transmissions[i%len(Transmissions)] {
			t.Fatalf("drivetrain %d transmission = %q", i, tr.Str)
		}
	}

	// With |V| = 2|DT| every drivetrain is shared by exactly two vehicles,
	// and manufacturers stay within the first min(|V|, |Companies|)
	// companies (the hit-probability span). Company index 0 is "BMW".
	firstSpan := map[storage.OID]bool{}
	span := cfg.Vehicles
	if span > cfg.Companies {
		span = cfg.Companies
	}
	for _, c := range db.Companies[:span] {
		firstSpan[c] = true
	}
	dtUse := map[storage.OID]int{}
	for _, oid := range db.Vehicles {
		v, _, err := db.Cat.GetObject(oid)
		if err != nil {
			t.Fatal(err)
		}
		dt, _ := v.Field("drivetrain")
		dtUse[dt.Ref]++
		mf, _ := v.Field("manufacturer")
		if !firstSpan[mf.Ref] {
			t.Fatalf("vehicle references company outside the first %d", span)
		}
		w, _ := v.Field("weight")
		if w.Int < 800 || w.Int >= 3000 {
			t.Fatalf("weight = %d, want in [800,3000)", w.Int)
		}
	}
	for dt, n := range dtUse {
		if n != cfg.Vehicles/cfg.DriveTrains {
			t.Errorf("drivetrain %v shared by %d vehicles, want %d", dt, n, cfg.Vehicles/cfg.DriveTrains)
		}
	}
	bmw, _, err := db.Cat.GetObject(db.Companies[0])
	if err != nil {
		t.Fatal(err)
	}
	if name, _ := bmw.Field("name"); name.Str != "BMW" {
		t.Errorf("company 0 = %q, want BMW (the paper's query constant)", name.Str)
	}
}

func TestSubclassesSplitTheExtent(t *testing.T) {
	cfg := smallConfig()
	cfg.Subclasses = true
	db, _, err := Build(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[string]int{}
	for _, oid := range db.Vehicles {
		_, class, err := db.Cat.GetObject(oid)
		if err != nil {
			t.Fatal(err)
		}
		byClass[class]++
	}
	for _, class := range []string{"Vehicle", "Automobile", "JapaneseAuto"} {
		if byClass[class] == 0 {
			t.Errorf("Subclasses=true produced no %s instances (got %v)", class, byClass)
		}
	}
	total := 0
	for _, n := range byClass {
		total += n
	}
	if total != cfg.Vehicles {
		t.Errorf("subclass split sums to %d, want %d", total, cfg.Vehicles)
	}
}

// TestRoundTripThroughEncoder pulls objects back out of the catalog and
// re-encodes them: Marshal → Unmarshal must reproduce a value Equal to the
// stored one for every class in the schema, references included.
func TestRoundTripThroughEncoder(t *testing.T) {
	db, _, err := Build(smallConfig(), 64)
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string][]storage.OID{
		"VehicleEngine":     db.Engines,
		"VehicleDriveTrain": db.DriveTrains,
		"Employee":          db.Employees,
		"Company":           db.Companies,
		"Vehicle":           db.Vehicles,
	}
	for class, oids := range groups {
		for _, oid := range oids {
			v, gotClass, err := db.Cat.GetObject(oid)
			if err != nil {
				t.Fatalf("%s %v: %v", class, oid, err)
			}
			if class == "Vehicle" {
				// Subclasses=false: every vehicle is a plain Vehicle.
				if gotClass != "Vehicle" {
					t.Fatalf("vehicle %v stored under class %q", oid, gotClass)
				}
			}
			back, err := object.Unmarshal(object.Marshal(v))
			if err != nil {
				t.Fatalf("%s %v: round trip: %v", class, oid, err)
			}
			if !object.Equal(v, back) {
				t.Fatalf("%s %v: round trip changed the value:\n  %v\n  %v", class, oid, v, back)
			}
		}
	}
}

// TestPopulateIsDeterministic: the same seed must generate byte-identical
// object graphs (moodbench baselines depend on this).
func TestPopulateIsDeterministic(t *testing.T) {
	build := func() []object.Value {
		db, _, err := Build(smallConfig(), 64)
		if err != nil {
			t.Fatal(err)
		}
		var out []object.Value
		for _, oid := range db.Vehicles {
			v, _, err := db.Cat.GetObject(oid)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v)
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if !object.Equal(a[i], b[i]) {
			t.Fatalf("vehicle %d differs across identically-seeded builds:\n  %v\n  %v", i, a[i], b[i])
		}
	}
}
