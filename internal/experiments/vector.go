package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"mood/internal/algebra"
	"mood/internal/exec"
	"mood/internal/expr"
	"mood/internal/objcache"
	"mood/internal/object"
	"mood/internal/optimizer"
)

// The vector sweep measures the batch-at-a-time executor with compiled
// predicates against the row-at-a-time interpreter on selection-heavy
// Company scans. Both predicates fully lower to self-mode closures, so the
// vector modes skip row construction and env binding entirely for rejected
// objects — which is most of them, and where the speedup comes from.

// vectorPasses is the number of measured scan passes per configuration. The
// throughput columns come from the best (fastest) pass: per-pass work is
// identical by construction, so the minimum is the measurement least
// disturbed by scheduler and GC interference — summing passes would fold
// machine noise into the mode-to-mode comparison instead.
const vectorPasses = 7

// vectorFrames holds every Company page at the artifact scale, so within a
// pass each page is read exactly once no matter how the exchange workers
// interleave — a smaller pool would let one worker's read save or not save
// another's depending on scheduling, making the Reads column racy. The pool
// is evicted once before the measured loop, so the first measured pass
// performs exactly one first-touch read per page (Reads = extent pages, a
// nonzero constant the sweep compares across modes) and the remaining
// passes run hot — which is where the best pass comes from, so the
// throughput columns compare executors, not the shared page I/O.
const vectorFrames = 8192

// vectorCacheBytes holds every decoded Company at the artifact scale. The
// cache is warmed before measuring, so all three modes scan decoded objects
// and the sweep isolates execution cost from decode cost (DecodesPerRow
// pins that the decode skip actually engaged).
const vectorCacheBytes = 64 << 20

// vectorWorkers is the exchange fan-out of the vector-parallel mode.
const vectorWorkers = 4

// VectorModes are the three execution modes every predicate runs under.
var VectorModes = []string{"row", "vector", "vector-parallel"}

// VectorEntry is one measured (predicate, mode) configuration. Rows, Reads,
// DecodesPerRow and Compiled are deterministic and must agree with the row
// mode of the same predicate (Compiled excepted); the wall-clock and
// allocation columns are machine-local measurements.
type VectorEntry struct {
	Name           string  `json:"name"`
	Mode           string  `json:"mode"`
	Rows           int     `json:"rows"`
	Reads          int64   `json:"reads"`
	SimulatedMs    float64 `json:"simulated_ms"`
	WallMs         float64 `json:"best_pass_wall_ms"`
	RowsPerWallSec float64 `json:"rows_per_wall_sec"`
	Speedup        float64 `json:"speedup_vs_row"`
	Compiled       bool    `json:"compiled"`
	AllocsPerRow   float64 `json:"allocs_per_row"`
	DecodesPerRow  float64 `json:"decodes_per_row"`
}

// BenchVector is the JSON artifact written by moodbench -vector-json.
type BenchVector struct {
	Scale     float64       `json:"scale"`
	Companies int           `json:"companies"`
	Passes    int           `json:"passes"`
	Workers   int           `json:"workers"`
	Entries   []VectorEntry `json:"entries"`
}

// vectorPred names one benchmark predicate over the Company extent.
type vectorPred struct {
	name string
	pred expr.Expr
}

func vectorPreds() []vectorPred {
	field := func(attr string) expr.Expr {
		return &expr.Field{Base: &expr.Var{Name: "c"}, Name: attr}
	}
	return []vectorPred{
		// location cycles through five cities, so ='Tokyo' keeps 20% — the
		// moderately selective scan regime.
		{"scan-select-location", &expr.Cmp{
			Op: expr.OpEq, L: field("location"), R: &expr.Const{Val: object.NewString("Tokyo")},
		}},
		// name is unique; ='BMW' keeps one row — the needle-in-haystack
		// regime where nearly every object is rejected.
		{"scan-select-name", &expr.Cmp{
			Op: expr.OpEq, L: field("name"), R: &expr.Const{Val: object.NewString("BMW")},
		}},
	}
}

// vectorFingerprint folds a result collection into an order-sensitive hash
// over the bound Company objects (OID, name, location).
func vectorFingerprint(out *algebra.Collection) (uint64, error) {
	var fp uint64 = 14695981039346656037
	for _, row := range out.Rows {
		b, ok := row.Get("c")
		if !ok {
			return 0, fmt.Errorf("vector sweep: row without c binding")
		}
		fp = fpMix(fp, uint64(b.OID))
		for _, attr := range []string{"name", "location"} {
			f, ok := b.Val.Field(attr)
			if !ok {
				return 0, fmt.Errorf("vector sweep: company without %s", attr)
			}
			for i := 0; i < len(f.Str); i++ {
				fp = fpMix(fp, uint64(f.Str[i]))
			}
		}
	}
	return fp, nil
}

// MeasureVector measures every predicate under every mode. Per
// configuration: a cold catalog over a small page pool, a warmed object
// cache holding the decoded Company extent, one unmeasured pass, then
// vectorPasses measured passes. The function enforces the differential
// contract inline: every mode must produce the row count, fingerprint and
// per-pass read total of the row mode — vectorization and compilation may
// only change CPU time, never results or I/O.
func MeasureVector(env *Env) (*BenchVector, error) {
	out := &BenchVector{
		Scale:     float64(env.Scale),
		Companies: env.Cfg.Companies,
		Passes:    vectorPasses,
		Workers:   vectorWorkers,
	}
	for _, p := range vectorPreds() {
		var base float64  // rows/sec in row mode
		var baseFP uint64 // fingerprint in row mode
		var baseRows int
		var baseReads int64
		for i, mode := range VectorModes {
			e, fp, err := measureVectorEntry(env, p, mode)
			if err != nil {
				return nil, fmt.Errorf("%s mode=%s: %w", p.name, mode, err)
			}
			if i == 0 {
				base, baseFP, baseRows, baseReads = e.RowsPerWallSec, fp, e.Rows, e.Reads
			} else if fp != baseFP || e.Rows != baseRows {
				return nil, fmt.Errorf("%s mode=%s: results diverge from row mode (rows %d vs %d)",
					p.name, mode, e.Rows, baseRows)
			} else if e.Reads != baseReads {
				return nil, fmt.Errorf("%s mode=%s: read pattern diverges from row mode (%d vs %d reads)",
					p.name, mode, e.Reads, baseReads)
			}
			if base > 0 {
				e.Speedup = round3(e.RowsPerWallSec / base)
			}
			out.Entries = append(out.Entries, e)
		}
	}
	return out, nil
}

// measureVectorEntry runs one predicate under one mode over a cold isolated
// catalog with a pre-warmed object cache, returning the entry and the
// result fingerprint.
func measureVectorEntry(env *Env, p vectorPred, mode string) (VectorEntry, uint64, error) {
	var e VectorEntry
	cat, d, err := coldCatalog(env, vectorFrames)
	if err != nil {
		return e, 0, err
	}
	defer d.SetESMLayout(false)

	// Warm the decoded-object cache with the whole Company extent so scan
	// passes skip decoding in every mode and the sweep measures execution,
	// not unmarshalling.
	oc := objcache.New(vectorCacheBytes)
	cat.SetObjectCache(oc)
	cat.Store().SetInvalidator(oc)
	if _, _, err := cat.GetObjects(env.DB.Companies); err != nil {
		return e, 0, err
	}

	sel := &optimizer.SelectPlan{
		Input: &optimizer.BindPlan{Class: "Company", Var: "c"},
		Pred:  p.pred,
	}
	var plan optimizer.Plan = sel
	if mode == "vector-parallel" {
		plan = &optimizer.ExchangePlan{Input: sel, Workers: vectorWorkers}
	}
	ex := exec.New(algebra.New(cat))
	if mode == "row" {
		ex.RowMode = true
	}

	pass := func() (*algebra.Collection, error) { return ex.Execute(plan) }

	// Unmeasured pass: establishes the expected result and absorbs the
	// one-time predicate compilation.
	warm, err := pass()
	if err != nil {
		return e, 0, err
	}
	fp, err := vectorFingerprint(warm)
	if err != nil {
		return e, 0, err
	}
	warmRows := warm.Len()

	// Evict once so the first measured pass re-reads every extent page
	// (pinning the deterministic Reads column), then settle the heap so
	// setup garbage is not swept inside the timed passes. Later passes run
	// hot and one of them will be the best pass.
	if err := cat.Store().Pool().EvictAll(); err != nil {
		return e, 0, err
	}
	runtime.GC()
	d.ResetStats()
	um0 := object.Unmarshals()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs

	rows := 0
	var best time.Duration
	for i := 0; i < vectorPasses; i++ {
		start := time.Now()
		out, err := pass()
		wall := time.Since(start)
		if err != nil {
			return e, 0, err
		}
		if best == 0 || wall < best {
			best = wall
		}
		f, err := vectorFingerprint(out)
		if err != nil {
			return e, 0, err
		}
		if out.Len() != warmRows || f != fp {
			return e, 0, fmt.Errorf("pass %d diverged from warm-up (%d rows)", i, out.Len())
		}
		rows += out.Len()
	}

	runtime.ReadMemStats(&ms)
	um := object.Unmarshals() - um0
	s := d.Stats()
	e = VectorEntry{
		Name:        p.name,
		Mode:        mode,
		Rows:        rows,
		Reads:       s.Reads(),
		SimulatedMs: round3(s.TimeMs),
		WallMs:      round3(float64(best) / float64(time.Millisecond)),
	}
	if best > 0 {
		e.RowsPerWallSec = round3(float64(warmRows) / best.Seconds())
	}
	if rows > 0 {
		e.AllocsPerRow = round3(float64(ms.Mallocs-mallocs0) / float64(rows))
		e.DecodesPerRow = round3(float64(um) / float64(rows))
	}
	if mode != "row" {
		_, e.Compiled = ex.Funcs.Predicate("c", p.pred)
	}
	return e, fp, nil
}

// VectorSweep prints the MeasureVector sweep as a table.
func VectorSweep(w io.Writer, env *Env) error {
	section(w, "Vectorized execution. Batch-at-a-time with compiled predicates vs row-at-a-time")
	res, err := MeasureVector(env)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d Companies scanned, %d measured passes, exchange workers=%d\n\n",
		res.Companies, res.Passes, res.Workers)
	fmt.Fprintf(w, "%-22s %-16s %7s %7s %9s %13s %8s %9s %8s %7s\n",
		"benchmark", "mode", "rows", "reads", "wall ms", "rows/wall-s", "speedup", "compiled", "alloc/r", "dec/r")
	for _, e := range res.Entries {
		fmt.Fprintf(w, "%-22s %-16s %7d %7d %9.2f %13.0f %7.2fx %9t %8.1f %7.2f\n",
			e.Name, e.Mode, e.Rows, e.Reads, e.WallMs,
			e.RowsPerWallSec, e.Speedup, e.Compiled, e.AllocsPerRow, e.DecodesPerRow)
	}
	return nil
}
