package crashtest

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// Environment knobs:
//
//	CRASHTEST_SEED=<n>   replay exactly one iteration with seed n (the seed
//	                     printed by a failing run), trying every crash point.
//	CRASHTEST_ITERS=<n>  override the iteration count (default 120).
//
// Every failure message from Run embeds the seed and crash point, so
//
//	CRASHTEST_SEED=<seed> go test ./internal/crashtest -run TestTorture -v
//
// reproduces it deterministically.
const defaultIterations = 120

func envInt64(name string, def int64) (int64, bool) {
	s := os.Getenv(name)
	if s == "" {
		return def, false
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return def, false
	}
	return v, true
}

// TestTortureCrashRecovery runs >= 100 seeded crash/recovery iterations,
// cycling through every crash scenario, and verifies the recovery
// invariants on each. It additionally asserts coverage: every scenario must
// actually have fired its fault at least once across the run.
func TestTortureCrashRecovery(t *testing.T) {
	if seed, ok := envInt64("CRASHTEST_SEED", 0); ok {
		for _, point := range Points {
			res, err := Run(Config{Seed: seed, Point: point})
			if err != nil {
				t.Errorf("%v", err)
			}
			t.Logf("seed %d %s: fired=%v crashed=%q committed=%d retries=%d torn=%d recovery=%+v",
				seed, point, res.Fired, res.CrashedAt, res.Committed, res.Retries, res.TornFixed, res.Recovery)
		}
		return
	}

	iters, _ := envInt64("CRASHTEST_ITERS", defaultIterations)
	if iters < int64(len(Points)) {
		iters = int64(len(Points))
	}
	const baseSeed = 1000
	fired := map[Point]int{}
	stopped := map[Point]int{} // iterations whose workload actually died mid-flight
	committedTotal, redone, undone, tornFixed := 0, 0, 0, 0
	for i := int64(0); i < iters; i++ {
		point := Points[i%int64(len(Points))]
		seed := baseSeed + i
		res, err := Run(Config{Seed: seed, Point: point})
		if err != nil {
			t.Fatalf("%v\nreplay: CRASHTEST_SEED=%d go test ./internal/crashtest -run TestTorture -v", err, seed)
		}
		if res.Fired {
			fired[point]++
		}
		if res.CrashedAt != "" {
			stopped[point]++
		}
		committedTotal += res.Committed
		redone += res.Recovery.Redone
		undone += res.Recovery.Undone
		tornFixed += res.TornFixed
		if point == PointTransientWrite && res.Fired {
			if res.CrashedAt != "" {
				t.Errorf("seed %d: transient fault killed the workload: %s", seed, res.CrashedAt)
			}
			if res.Retries == 0 {
				t.Errorf("seed %d: transient fault fired but nothing was retried", seed)
			}
		}
	}
	// Coverage: each injected-fault scenario fired at least once, and the
	// hard-crash scenarios actually interrupted workloads.
	for _, point := range Points {
		if point == PointPostCommit {
			continue // arms no fault by design; every iteration still recovers
		}
		if fired[point] == 0 {
			t.Errorf("scenario %s never fired its fault in %d iterations", point, iters)
		}
	}
	for _, point := range []Point{PointLogFlushCrash, PointPageWriteCrash, PointTornWrite, PointLogAppendCrash} {
		if stopped[point] == 0 {
			t.Errorf("scenario %s never interrupted a workload", point)
		}
	}
	// The run as a whole must have exercised both recovery directions and
	// at least one genuinely corrupted (checksum-failing) torn page.
	if committedTotal == 0 || redone == 0 || undone == 0 {
		t.Errorf("weak coverage: committed=%d redone=%d undone=%d", committedTotal, redone, undone)
	}
	if tornFixed == 0 {
		t.Errorf("no torn page ever failed verification and was repaired in %d iterations", iters)
	}
	t.Logf("%d iterations: committed=%d redone=%d undone=%d tornFixed=%d fired=%v",
		iters, committedTotal, redone, undone, tornFixed, fired)
}

// TestRunIsDeterministic re-runs the same seed and demands identical results
// — the property that makes every failure replayable.
func TestRunIsDeterministic(t *testing.T) {
	for _, point := range Points {
		a, errA := Run(Config{Seed: 4242, Point: point})
		b, errB := Run(Config{Seed: 4242, Point: point})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", point, errA, errB)
		}
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Errorf("%s: same seed, different results:\n%+v\n%+v", point, a, b)
		}
	}
}

// TestTornWriteDetectedAndRepaired scans seeds until a torn write produces a
// genuine checksum failure (the lost tail carried modified bytes), proving
// the detect-repair-redo path end to end. Deterministic: the qualifying
// seeds never change.
func TestTornWriteDetectedAndRepaired(t *testing.T) {
	found := false
	for seed := int64(1); seed < 256 && !found; seed++ {
		res, err := Run(Config{Seed: seed, Point: PointTornWrite})
		if err != nil {
			t.Fatal(err)
		}
		if res.Fired && res.TornFixed > 0 {
			found = true
			t.Logf("seed %d tore a page detectably: %+v", seed, res)
		}
	}
	if !found {
		t.Error("no seed in [1,256) produced a checksum-failing torn page")
	}
}
