// Package stats collects the cost-model parameters of Table 8 from a live
// database: |C|, nbpages(C), size(C), notnull(A,C), fan(A,C,D),
// totref(A,C,D) (totlinks and hitprb derive from these), and dist/max/min
// for atomic attributes. The optimizer reads the result through the cost
// package; the moodbench tool prints it back as the paper's Tables 13–15.
package stats

import (
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/object"
	"mood/internal/storage"
)

// Collect scans every class extent once and assembles the statistics base.
// Attributes are attributed to the class that declares them; inherited
// attributes therefore resolve through the declaring superclass, and
// instances of subclasses contribute to the superclass's statistics (IS-A
// semantics: an Automobile is a Vehicle).
func Collect(cat *catalog.Catalog, disk cost.Disk) (*cost.Stats, error) {
	s := cost.NewStats(disk)

	type attrAgg struct {
		class, attr string
		target      string // reference target class ("" for atomic)
		nonNull     int
		totalRefs   int
		distinctRef map[storage.OID]bool
		distinctVal map[string]bool
		max, min    float64
		haveNum     bool
		rows        int
	}
	aggs := map[string]*attrAgg{}
	aggKey := func(c, a string) string { return c + "." + a }

	for _, cl := range cat.Classes() {
		if !cl.IsClass {
			continue
		}
		// Class-level parameters come from the class's own extent.
		card, err := cat.ExtentCount(cl.Name)
		if err != nil {
			return nil, err
		}
		pages, err := cat.ExtentPages(cl.Name)
		if err != nil {
			return nil, err
		}
		var bytes int
		if err := cat.ScanExtent(cl.Name, func(_ storage.OID, v object.Value) bool {
			bytes += len(object.Marshal(v))
			return true
		}); err != nil {
			return nil, err
		}
		size := 0
		if card > 0 {
			size = bytes / card
		}
		cs := cost.ClassStats{Name: cl.Name, Card: card, NbPages: pages, Size: size}
		// On a sharded store each extent part is a separate file; the
		// per-part split feeds the cost model's per-shard scan and Cardenas
		// estimates.
		if sp, err := cat.ExtentShardPages(cl.Name); err == nil && len(sp) > 1 {
			cs.ShardPages = sp
		}
		s.SetClass(cs)

		// Prepare aggregators for the attributes this class declares.
		for _, f := range cl.Tuple.Fields {
			a := &attrAgg{
				class: cl.Name, attr: f.Name,
				distinctRef: map[storage.OID]bool{},
				distinctVal: map[string]bool{},
			}
			switch f.Type.Kind {
			case object.KindReference:
				a.target = f.Type.Target
			case object.KindSet, object.KindList:
				if f.Type.Elem != nil && f.Type.Elem.Kind == object.KindReference {
					a.target = f.Type.Elem.Target
				}
			}
			aggs[aggKey(cl.Name, f.Name)] = a
		}
	}

	// One pass per class closure: each object contributes to the
	// aggregators of every class on its IS-A chain that declares the
	// attribute.
	for _, cl := range cat.Classes() {
		if !cl.IsClass || len(cl.Tuple.Fields) == 0 {
			continue
		}
		cl := cl
		if err := cat.ScanClosure(cl.Name, nil, func(_ storage.OID, v object.Value) bool {
			for _, f := range cl.Tuple.Fields {
				a := aggs[aggKey(cl.Name, f.Name)]
				a.rows++
				av, ok := v.Field(f.Name)
				if !ok || av.IsNull() {
					continue
				}
				// A nil reference is a null attribute for notnull(A,C).
				if av.Kind == object.KindReference && av.Ref.IsNil() {
					continue
				}
				a.nonNull++
				switch av.Kind {
				case object.KindReference:
					if !av.Ref.IsNil() {
						a.totalRefs++
						a.distinctRef[av.Ref] = true
					}
				case object.KindSet, object.KindList:
					for _, e := range av.Elems {
						if e.Kind == object.KindReference && !e.Ref.IsNil() {
							a.totalRefs++
							a.distinctRef[e.Ref] = true
						}
					}
				default:
					a.distinctVal[av.String()] = true
					if n, ok := av.AsFloat(); ok {
						if !a.haveNum || n > a.max {
							a.max = n
						}
						if !a.haveNum || n < a.min {
							a.min = n
						}
						a.haveNum = true
					}
				}
			}
			return true
		}); err != nil {
			return nil, err
		}
	}

	for _, a := range aggs {
		notNull := 0.0
		if a.rows > 0 {
			notNull = float64(a.nonNull) / float64(a.rows)
		}
		if a.target != "" {
			fan := 0.0
			if a.rows > 0 {
				fan = float64(a.totalRefs) / float64(a.rows)
			}
			targetCard := 0
			if n, err := cat.ExtentCount(a.target); err == nil {
				targetCard = n
			}
			// |D| counts the closure (an attribute typed REFERENCE(D) may
			// reference any subclass instance).
			if closure, err := cat.Closure(a.target); err == nil {
				targetCard = 0
				for _, t := range closure {
					if n, err := cat.ExtentCount(t); err == nil {
						targetCard += n
					}
				}
			}
			s.SetLink(cost.LinkStats{
				Class:      a.class,
				Attribute:  a.attr,
				Target:     a.target,
				Fan:        fan,
				TotRef:     float64(len(a.distinctRef)),
				NotNull:    notNull,
				TargetCard: float64(targetCard),
			})
		} else {
			s.SetAttr(cost.AttrStats{
				Class:     a.class,
				Attribute: a.attr,
				Dist:      len(a.distinctVal),
				Max:       a.max,
				Min:       a.min,
				NotNull:   notNull,
			})
		}
	}
	return s, nil
}

// IndexStats extracts Table 9 parameters for every B+-tree index in the
// catalog, keyed "class.attribute".
func IndexStats(cat *catalog.Catalog) map[string]cost.BTreeStats {
	out := map[string]cost.BTreeStats{}
	for _, ix := range cat.Indexes() {
		if tr := ix.BTree(); tr != nil {
			st := tr.Stats()
			out[ix.Class+"."+ix.Attribute] = cost.BTreeStats{
				Order:   st.Order,
				Levels:  st.Levels,
				Leaves:  st.Leaves,
				KeySize: st.KeySize,
				Unique:  st.Unique,
			}
		}
	}
	return out
}
