package exec

import (
	"strings"
	"testing"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/sql"
	"mood/internal/stats"
	"mood/internal/vehicledb"
)

// planFor parses and optimizes a query without executing it.
func (f *fixture) planFor(t testing.TB, query string) optimizer.Plan {
	t.Helper()
	st, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := f.opt.Optimize(st.(*sql.Select))
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return plan
}

// assertCollectionsEqual compares two result collections exactly: header,
// row count and order, and every row's bound variables (by OID). Values are
// compared through the extracted Result rendering, which is what clients of
// the kernel observe.
func assertCollectionsEqual(t *testing.T, label string, stream, eager *algebra.Collection) {
	t.Helper()
	if stream.Kind != eager.Kind || stream.Name != eager.Name || stream.Class != eager.Class {
		t.Fatalf("%s: header mismatch: streaming (%v,%q,%q) vs materialized (%v,%q,%q)",
			label, stream.Kind, stream.Name, stream.Class, eager.Kind, eager.Name, eager.Class)
	}
	if len(stream.Rows) != len(eager.Rows) {
		t.Fatalf("%s: row count %d vs %d", label, len(stream.Rows), len(eager.Rows))
	}
	for i := range stream.Rows {
		sv, ev := stream.Rows[i].Vars, eager.Rows[i].Vars
		if len(sv) != len(ev) {
			t.Fatalf("%s: row %d has %d vars streaming, %d materialized", label, i, len(sv), len(ev))
		}
		for name, sb := range sv {
			eb, ok := ev[name]
			if !ok {
				t.Fatalf("%s: row %d: var %q only in streaming result", label, i, name)
			}
			if sb.OID != eb.OID {
				t.Fatalf("%s: row %d var %q: OID %v vs %v", label, i, name, sb.OID, eb.OID)
			}
		}
	}
	sres, eres := renderedResult(stream), renderedResult(eager)
	if sres != eres {
		t.Fatalf("%s: extracted results differ:\n--- streaming ---\n%s--- materialized ---\n%s", label, sres, eres)
	}
}

func renderedResult(coll *algebra.Collection) string {
	res := Extract(coll)
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, " | "))
	sb.WriteString("\n")
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		sb.WriteString(strings.Join(cells, " | "))
		sb.WriteString("\n")
	}
	return sb.String()
}

// differentialQueries covers every plan-node shape the compiler handles:
// bind scans, index selections, intersections, unions, path joins of all
// strategies, cross products, EVERY/minus closures, projection, global and
// grouped aggregation, DISTINCT and ORDER BY.
var differentialQueries = []string{
	`SELECT v FROM Vehicle v WHERE v.id = 42`,
	`SELECT v FROM Vehicle v`,
	`SELECT v.id, v.weight FROM Vehicle v WHERE v.weight BETWEEN 1000 AND 2000 ORDER BY v.weight DESC, v.id ASC`,
	`SELECT DISTINCT v.drivetrain.transmission FROM Vehicle v`,
	`SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`,
	`SELECT v FROM Vehicle v WHERE v.manufacturer.name = 'BMW' AND v.drivetrain.engine.cylinders = 2`,
	`SELECT v FROM Vehicle v WHERE v.weight > 3000 OR v.drivetrain.transmission = 'MANUAL'`,
	`SELECT v FROM Vehicle v WHERE NOT (v.weight BETWEEN 1000 AND 3000)`,
	`SELECT c FROM EVERY Automobile - JapaneseAuto c WHERE c.weight > 2500`,
	`SELECT c FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v
		WHERE c.drivetrain.transmission = 'AUTOMATIC' AND c.drivetrain.engine = v AND v.cylinders > 4`,
	`SELECT e.name, c.name AS company FROM Employee e, Company c WHERE e.age > 20 AND c.name = 'BMW'`,
	`SELECT AVG(v.weight) AS aw, MIN(v.id) AS mi, COUNT(*) AS n FROM Vehicle v`,
	`SELECT v.drivetrain.transmission AS trans, COUNT(*) AS n, MAX(v.weight) AS mx
		FROM Vehicle v GROUP BY v.drivetrain.transmission HAVING n > 10 ORDER BY trans`,
	`SELECT v.id FROM Vehicle v, Company c WHERE v.manufacturer = c AND c.name = 'BMW' ORDER BY v.id`,
}

// TestStreamingMatchesMaterialized runs the full query battery through both
// the streaming pipeline (Execute) and the retained eager executor
// (ExecuteMaterialized), demanding identical collections.
func TestStreamingMatchesMaterialized(t *testing.T) {
	f := setup(t, vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5, Subclasses: true,
	})
	for _, q := range differentialQueries {
		plan := f.planFor(t, q)
		stream, err := f.ex.Execute(plan)
		if err != nil {
			t.Fatalf("streaming execute %s: %v\nplan:\n%s", q, err, optimizer.Render(plan))
		}
		eager, err := f.ex.ExecuteMaterialized(plan)
		if err != nil {
			t.Fatalf("materialized execute %s: %v", q, err)
		}
		assertCollectionsEqual(t, q, stream, eager)
	}
}

// indexedFixture builds the vehicle database with B-tree indexes on
// Vehicle.weight and Vehicle.id so the optimizer produces IndSel and
// Intersect plans.
func indexedFixture(t testing.TB) *fixture {
	t.Helper()
	f := setup(t, vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5,
	})
	if _, err := f.db.Cat.CreateIndex("vehicle_weight", "Vehicle", "weight", catalog.BTreeIndex, false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.db.Cat.CreateIndex("vehicle_id", "Vehicle", "id", catalog.BTreeIndex, true); err != nil {
		t.Fatal(err)
	}
	// Recollect statistics so the optimizer sees the new indexes.
	st, err := stats.Collect(f.db.Cat, cost.DefaultDisk())
	if err != nil {
		t.Fatal(err)
	}
	f.opt = optimizer.New(f.db.Cat, st)
	return f
}

// TestStreamingMatchesMaterializedIndexed repeats the differential check on
// queries whose plans use index selections and intersections.
func TestStreamingMatchesMaterializedIndexed(t *testing.T) {
	f := indexedFixture(t)
	queries := []string{
		`SELECT v FROM Vehicle v WHERE v.id = 42`,
		`SELECT v FROM Vehicle v WHERE v.weight BETWEEN 1200 AND 1600`,
		`SELECT v FROM Vehicle v WHERE v.weight BETWEEN 1200 AND 1600 AND v.id < 200`,
		`SELECT v FROM Vehicle v WHERE v.weight >= 3000 AND v.id >= 100 AND v.drivetrain.transmission = 'CVT'`,
		`SELECT v FROM Vehicle v WHERE v.weight = 1500 OR v.id = 10`,
	}
	for _, q := range queries {
		plan := f.planFor(t, q)
		stream, err := f.ex.Execute(plan)
		if err != nil {
			t.Fatalf("streaming execute %s: %v\nplan:\n%s", q, err, optimizer.Render(plan))
		}
		eager, err := f.ex.ExecuteMaterialized(plan)
		if err != nil {
			t.Fatalf("materialized execute %s: %v", q, err)
		}
		assertCollectionsEqual(t, q, stream, eager)
	}
}

// TestAnalyzeTotalsMatchDiskDelta checks the EXPLAIN ANALYZE acceptance
// criterion at the executor level: the analysis' TotalPages equals the
// DiskSim read-counter delta measured across the same execution, and the
// root operator's rows-out equals the result cardinality.
func TestAnalyzeTotalsMatchDiskDelta(t *testing.T) {
	f := setup(t, vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5,
	})
	disk := f.pool.Disk()
	f.ex.Pages = func() int64 { return disk.Stats().Reads() }
	for _, q := range []string{
		`SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`,
		`SELECT v FROM Vehicle v WHERE v.manufacturer.name = 'BMW' AND v.drivetrain.engine.cylinders = 2`,
	} {
		plan := f.planFor(t, q)
		if err := f.pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
		scope := disk.Scope()
		coll, an, err := f.ex.ExecuteAnalyzed(plan)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		delta := scope.Delta()
		if an.TotalPages != delta.Reads() {
			t.Errorf("%s: analysis reports %d pages, DiskSim delta is %d", q, an.TotalPages, delta.Reads())
		}
		if an.TotalPages == 0 {
			t.Errorf("%s: expected nonzero page reads on a cold buffer pool", q)
		}
		if an.Root.RowsOut != int64(len(coll.Rows)) {
			t.Errorf("%s: root rows out %d, collection has %d", q, an.Root.RowsOut, len(coll.Rows))
		}
		rendered := an.Render()
		if !strings.Contains(rendered, "rows") || !strings.Contains(rendered, "pages=") {
			t.Errorf("%s: render lacks per-operator annotations:\n%s", q, rendered)
		}
	}
}

// TestEmptyIntersectShortCircuit demonstrates the streaming win the issue
// calls for: when an intersection of index selections is empty, the
// pipeline discovers that from the indexes alone and never fetches a
// candidate object, while the eager executor materializes the first
// selection's objects before intersecting. Fewer simulated pages are read.
func TestEmptyIntersectShortCircuit(t *testing.T) {
	f := setup(t, vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5,
	})
	if _, err := f.db.Cat.CreateIndex("vehicle_weight", "Vehicle", "weight", catalog.BTreeIndex, false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.db.Cat.CreateIndex("vehicle_id", "Vehicle", "id", catalog.BTreeIndex, true); err != nil {
		t.Fatal(err)
	}
	// id < 400 matches every vehicle; weight = -1 matches none. The
	// intersection is empty, so a lazy pipeline need not fetch any of the
	// 400 candidate objects the first input yields.
	plan := &optimizer.IntersectPlan{Inputs: []optimizer.Plan{
		&optimizer.IndSelPlan{
			Class: "Vehicle", Var: "v", Index: f.db.Cat.IndexOn("Vehicle", "id"),
			Pred: algebra.SimplePredicate{Attribute: "id", Op: expr.OpLt, Constant: object.NewInt(400)},
		},
		&optimizer.IndSelPlan{
			Class: "Vehicle", Var: "v", Index: f.db.Cat.IndexOn("Vehicle", "weight"),
			Pred: algebra.SimplePredicate{Attribute: "weight", Op: expr.OpEq, Constant: object.NewInt(-1)},
		},
	}}
	disk := f.pool.Disk()

	measure := func(run func() (*algebra.Collection, error)) int64 {
		t.Helper()
		if err := f.pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
		scope := disk.Scope()
		coll, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if len(coll.Rows) != 0 {
			t.Fatalf("intersection should be empty, got %d rows", len(coll.Rows))
		}
		return scope.Delta().Reads()
	}

	eagerPages := measure(func() (*algebra.Collection, error) { return f.ex.ExecuteMaterialized(plan) })
	streamPages := measure(func() (*algebra.Collection, error) { return f.ex.Execute(plan) })
	if streamPages >= eagerPages {
		t.Errorf("streaming read %d pages, materialized %d; expected the lazy pipeline to read fewer",
			streamPages, eagerPages)
	}
	t.Logf("empty intersect: streaming %d pages vs materialized %d", streamPages, eagerPages)
}

// benchPlan optimizes the Example 8.2 path query once for the executor
// benchmarks.
func benchPlan(b *testing.B) (*fixture, optimizer.Plan) {
	b.Helper()
	f := setup(b, vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5,
	})
	st, err := sql.Parse(`SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`)
	if err != nil {
		b.Fatal(err)
	}
	plan, _, err := f.opt.Optimize(st.(*sql.Select))
	if err != nil {
		b.Fatal(err)
	}
	return f, plan
}

func BenchmarkExecuteStreaming(b *testing.B) {
	f, plan := benchPlan(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ex.Execute(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteMaterialized(b *testing.B) {
	f, plan := benchPlan(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ex.ExecuteMaterialized(plan); err != nil {
			b.Fatal(err)
		}
	}
}
