// Spatial indexing: MoodView's "graphical indexing tool for the spatial
// data, i.e., R Trees" exercised as a library — dealership locations stored
// as MOOD objects, indexed in an R-tree keyed by their OIDs, with window,
// containment and nearest-neighbour queries resolving back to objects
// through the catalog.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mood/internal/kernel"
	"mood/internal/object"
	"mood/internal/rtree"
)

func main() {
	db, err := kernel.Open(kernel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.ExecuteScript(`
		CREATE CLASS Dealership TUPLE (
			name String(64),
			x Float, y Float,
			stock Integer);
	`); err != nil {
		log.Fatal(err)
	}

	// 500 dealerships on a 1000x1000 map.
	rng := rand.New(rand.NewSource(94))
	tree := rtree.New(16)
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		oid, err := db.Cat.CreateObject("Dealership", object.NewTuple(
			[]string{"name", "x", "y", "stock"},
			[]object.Value{
				object.NewString(fmt.Sprintf("dealer-%03d", i)),
				object.NewFloat(x), object.NewFloat(y),
				object.NewInt(int32(rng.Intn(50))),
			}))
		if err != nil {
			log.Fatal(err)
		}
		tree.Insert(rtree.Point(x, y), oid)
	}
	fmt.Printf("indexed %d dealerships, R-tree height %d\n\n", tree.Len(), tree.Height())

	// Window query: everything in the city center, resolved to objects.
	center := rtree.NewRect(400, 400, 600, 600)
	fmt.Printf("dealerships in window %v:\n", center)
	count := 0
	tree.Search(center, func(e rtree.Entry) bool {
		count++
		if count <= 5 {
			v, _, err := db.Cat.GetObject(e.OID)
			if err != nil {
				log.Fatal(err)
			}
			name, _ := v.Field("name")
			stock, _ := v.Field("stock")
			fmt.Printf("  %s at %v, stock %d\n", name.Str, e.Rect, stock.Int)
		}
		return true
	})
	fmt.Printf("  ... %d total\n\n", count)

	// Nearest neighbours to a customer.
	cx, cy := 123.4, 567.8
	fmt.Printf("3 dealerships nearest to (%.1f, %.1f):\n", cx, cy)
	for _, e := range tree.Nearest(cx, cy, 3) {
		v, _, err := db.Cat.GetObject(e.OID)
		if err != nil {
			log.Fatal(err)
		}
		name, _ := v.Field("name")
		fmt.Printf("  %s at %v\n", name.Str, e.Rect)
	}

	// The spatial index composes with MOODSQL: prefilter by region, then
	// query attributes of just those objects by OID set.
	fmt.Println("\nwell-stocked dealerships in the window (index + predicate):")
	hits := 0
	tree.Search(center, func(e rtree.Entry) bool {
		v, _, err := db.Cat.GetObject(e.OID)
		if err != nil {
			log.Fatal(err)
		}
		if stock, _ := v.Field("stock"); stock.Int >= 40 {
			name, _ := v.Field("name")
			fmt.Printf("  %s (stock %d)\n", name.Str, stock.Int)
			hits++
		}
		return true
	})
	if hits == 0 {
		fmt.Println("  (none this seed)")
	}

	// Deletion keeps the tree consistent.
	removed := 0
	tree.Search(center, func(e rtree.Entry) bool {
		if err := tree.Delete(e.Rect, e.OID); err == nil {
			removed++
		}
		return false // delete one and stop; repeat search for the next
	})
	fmt.Printf("\nafter closing %d dealership, window count: ", removed)
	count = 0
	tree.Search(center, func(rtree.Entry) bool { count++; return true })
	fmt.Println(count)
}
