package stats

import (
	"math"
	"testing"

	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/vehicledb"
)

func TestCollectTable8Parameters(t *testing.T) {
	cfg := vehicledb.Config{
		Vehicles: 2000, DriveTrains: 1000, Engines: 1000,
		Companies: 20000, Employees: 50, Seed: 7,
	}
	db, _, err := vehicledb.Build(cfg, 512)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Collect(db.Cat, cost.DefaultDisk())
	if err != nil {
		t.Fatal(err)
	}

	// |C| and nbpages for every class.
	for _, c := range []struct {
		name string
		card int
	}{
		{"Vehicle", 2000}, {"VehicleDriveTrain", 1000},
		{"VehicleEngine", 1000}, {"Company", 20000},
	} {
		cs, err := s.Class(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Card != c.card {
			t.Errorf("|%s| = %d, want %d", c.name, cs.Card, c.card)
		}
		if cs.NbPages <= 0 {
			t.Errorf("nbpages(%s) = %d", c.name, cs.NbPages)
		}
		if cs.Size <= 0 {
			t.Errorf("size(%s) = %d", c.name, cs.Size)
		}
	}

	// Atomic attribute: cylinders has dist=16, min=2, max=32 (Table 14).
	cyl, err := s.Attr("VehicleEngine", "cylinders")
	if err != nil {
		t.Fatal(err)
	}
	if cyl.Dist != 16 || cyl.Min != 2 || cyl.Max != 32 {
		t.Errorf("cylinders stats = %+v, want dist=16 min=2 max=32", cyl)
	}
	if cyl.NotNull != 1 {
		t.Errorf("notnull(cylinders) = %v", cyl.NotNull)
	}
	// Company.name: one distinct name per company.
	name, err := s.Attr("Company", "name")
	if err != nil {
		t.Fatal(err)
	}
	if name.Dist != 20000 {
		t.Errorf("dist(Company.name) = %d", name.Dist)
	}

	// Link statistics reproduce the Table 15 structure at 1/10 scale.
	dt, err := s.Link("Vehicle", "drivetrain")
	if err != nil {
		t.Fatal(err)
	}
	if dt.Fan != 1 {
		t.Errorf("fan(drivetrain) = %v, want 1", dt.Fan)
	}
	if dt.TotRef != 1000 { // every drivetrain referenced (shared pairwise)
		t.Errorf("totref(drivetrain) = %v, want 1000", dt.TotRef)
	}
	vcs, _ := s.Class("Vehicle")
	if got := dt.TotLinks(vcs.Card); got != 2000 {
		t.Errorf("totlinks(drivetrain) = %v, want 2000", got)
	}
	if got := dt.HitPrb(); math.Abs(got-1) > 1e-12 {
		t.Errorf("hitprb(drivetrain) = %v, want 1", got)
	}

	mf, err := s.Link("Vehicle", "manufacturer")
	if err != nil {
		t.Fatal(err)
	}
	if mf.Fan != 1 || mf.TotRef != 2000 {
		t.Errorf("manufacturer fan/totref = %v/%v, want 1/2000", mf.Fan, mf.TotRef)
	}
	if got := mf.HitPrb(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("hitprb(manufacturer) = %v, want 0.1 (Table 15)", got)
	}

	eng, err := s.Link("VehicleDriveTrain", "engine")
	if err != nil {
		t.Fatal(err)
	}
	if eng.Fan != 1 || eng.TotRef != 1000 || math.Abs(eng.HitPrb()-1) > 1e-12 {
		t.Errorf("engine link = %+v", eng)
	}
}

func TestCollectedStatsDriveExample81(t *testing.T) {
	// At 1/10 scale the collected statistics must reproduce the paper's
	// selectivity *values* for Example 8.1 (they are scale-free: 1/dist and
	// o(t,1,t/20000·...)).
	db, _, err := vehicledb.Build(vehicledb.Config{
		Vehicles: 2000, DriveTrains: 1000, Engines: 1000,
		Companies: 20000, Employees: 10, Seed: 3,
	}, 512)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Collect(db.Cat, cost.DefaultDisk())
	if err != nil {
		t.Fatal(err)
	}
	p1 := cost.Path{
		Hops: []cost.PathHop{
			{Class: "Vehicle", Attribute: "drivetrain"},
			{Class: "VehicleDriveTrain", Attribute: "engine"},
		},
		FinalClass: "VehicleEngine", FinalAttr: "cylinders",
	}
	sel1, err := s.PathSelectivity(p1, cost.CmpEq, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At 1/10 scale k_m = 1000/16 = 62.5, which o() rounds up to 63
	// objects: f_s = 63/1000 (the paper-scale value is exactly 625/10000).
	if math.Abs(sel1-0.063) > 1e-12 {
		t.Errorf("f_s(P1) from measured stats = %v, want 0.063", sel1)
	}
	p2 := cost.Path{
		Hops:       []cost.PathHop{{Class: "Vehicle", Attribute: "manufacturer"}},
		FinalClass: "Company", FinalAttr: "name",
	}
	sel2, err := s.PathSelectivity(p2, cost.CmpEq, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// k_m = 20000·(1/20000) = 1, hitprb = 0.1, fref = 1, totref = 2000:
	// o(2000, 1, ⌈0.1⌉) = 1/2000 = 5e-4 (the paper's 5e-5 at 10× scale).
	if math.Abs(sel2-5e-4) > 1e-12 {
		t.Errorf("f_s(P2) from measured stats = %v, want 5e-4", sel2)
	}
}

func TestNullAndSubclassHandling(t *testing.T) {
	db, _, err := vehicledb.Build(vehicledb.Config{
		Vehicles: 100, DriveTrains: 50, Engines: 50,
		Companies: 100, Employees: 0, // presidents all nil
		Seed: 1, Subclasses: true,
	}, 256)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Collect(db.Cat, cost.DefaultDisk())
	if err != nil {
		t.Fatal(err)
	}
	pres, err := s.Link("Company", "president")
	if err != nil {
		t.Fatal(err)
	}
	if pres.NotNull != 0 || pres.Fan != 0 || pres.TotRef != 0 {
		t.Errorf("all-null link stats = %+v", pres)
	}
	// Subclass instances contribute to Vehicle's attribute statistics.
	wt, err := s.Attr("Vehicle", "weight")
	if err != nil {
		t.Fatal(err)
	}
	if wt.NotNull != 1 {
		t.Errorf("weight notnull = %v (subclass rows missing?)", wt.NotNull)
	}
	dt, _ := s.Link("Vehicle", "drivetrain")
	if dt.TotRef != 50 {
		t.Errorf("totref over closure = %v, want 50", dt.TotRef)
	}
}

func TestIndexStats(t *testing.T) {
	db, _, err := vehicledb.Build(vehicledb.DefaultConfig(), 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Cat.CreateIndex("cyl", "VehicleEngine", "cylinders", catalog.BTreeIndex, false); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Cat.CreateIndex("cname", "Company", "name", catalog.HashIndex, false); err != nil {
		t.Fatal(err)
	}
	m := IndexStats(db.Cat)
	bs, ok := m["VehicleEngine.cylinders"]
	if !ok {
		t.Fatal("btree index missing from IndexStats")
	}
	if bs.Levels < 1 || bs.Leaves < 1 || bs.Order <= 0 {
		t.Errorf("bad Table 9 stats: %+v", bs)
	}
	if _, ok := m["Company.name"]; ok {
		t.Error("hash index reported B+-tree stats")
	}
}
