// Package btree implements a page-based B+ tree index over the buffer pool,
// the "B+-tree indexing ... supported through the Exodus Storage Manager"
// that MOOD's IndSel algebra operator and the INDCOST/RNGXCOST cost formulas
// rely on. Keys are fixed-size byte strings (the paper's keysize(I)
// parameter); values are object identifiers. Duplicate keys are supported
// unless the index is created unique. The tree exposes exactly the Table 9
// statistics: order v(I), level(I), leaves(I), keysize(I), unique(I).
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mood/internal/storage"
)

// Node layout within one page (after the common 16-byte page header):
//
//	16      isLeaf   (u8)
//	17      pad
//	18..20  nkeys    (u16)
//	20..24  rightmost child page (u32, internal nodes only)
//	24..    entries: key[keySize] ++ value (u64)
//
// For internal nodes, entry i's value is the child whose keys are < key i
// (rightmost holds keys >= the last key). Leaf pages use the page header's
// NextPage field as the right-sibling link for range scans.
const (
	nodeHeaderSize = 8 // after the 16-byte page header
	offIsLeaf      = 16
	offNKeys       = 18
	offRightmost   = 20
	entriesStart   = 24
)

// Errors returned by the tree.
var (
	ErrDuplicateKey = errors.New("btree: duplicate key in unique index")
	ErrKeyTooLarge  = errors.New("btree: key exceeds index key size")
	ErrNotFound     = errors.New("btree: key not found")
)

// Tree is a B+ tree index.
type Tree struct {
	bp      *storage.BufferPool
	root    storage.PageID
	keySize int
	unique  bool
	height  int // number of levels, leaves included
	leaves  int
	entries int
	logger  storage.PageLogger
}

// SetLogger attaches a WAL page logger: from then on every page the tree
// mutates (inserts, deletes, splits, node initialization) is logged as a
// whole-page before/after image and stamped with the returned LSN before its
// dirty unpin, so tree maintenance participates in ARIES recovery exactly
// like the storage layer's migrations. A failed log append restores the
// frame to its before-image, so an unlogged mutation can never reach disk;
// the in-memory tree should then be re-Opened from its last committed root.
// nil detaches.
func (t *Tree) SetLogger(l storage.PageLogger) { t.logger = l }

// snap captures a page's before-image; nil when no logger is attached.
func (t *Tree) snap(pg *storage.Page) []byte {
	if t.logger == nil {
		return nil
	}
	b := pg.Bytes()
	img := make([]byte, len(b))
	copy(img, b)
	return img
}

// unpinLogged logs the page's whole-image update (before → current frame)
// through the attached logger, stamps the LSN, and unpins dirty. With no
// logger it is a plain dirty unpin.
func (t *Tree) unpinLogged(pg *storage.Page, before []byte) error {
	if t.logger == nil {
		return t.bp.Unpin(pg.ID, true)
	}
	b := pg.Bytes()
	after := make([]byte, len(b))
	copy(after, b)
	lsn, err := t.logger(pg.ID, 0, before, after)
	if err != nil {
		copy(b, before)
		t.bp.Unpin(pg.ID, false)
		return err
	}
	pg.SetLSN(lsn)
	return t.bp.Unpin(pg.ID, true)
}

// New creates an empty B+ tree with fixed key size. unique rejects
// duplicate keys on insert.
func New(bp *storage.BufferPool, keySize int, unique bool) (*Tree, error) {
	if keySize <= 0 || keySize > 512 {
		return nil, fmt.Errorf("btree: invalid key size %d", keySize)
	}
	t := &Tree{bp: bp, keySize: keySize, unique: unique, height: 1, leaves: 1}
	pg, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	t.initNode(pg, true)
	t.root = pg.ID
	if err := bp.Unpin(pg.ID, true); err != nil {
		return nil, err
	}
	return t, nil
}

// Root returns the root page (for persistence in a catalog record).
func (t *Tree) Root() storage.PageID { return t.root }

// Open re-attaches to an existing tree. Statistics (height/leaves/entries)
// are recomputed by walking the leftmost spine and leaf chain.
func Open(bp *storage.BufferPool, root storage.PageID, keySize int, unique bool) (*Tree, error) {
	t := &Tree{bp: bp, root: root, keySize: keySize, unique: unique}
	// Walk down the leftmost spine to find height.
	pid := root
	for {
		pg, err := bp.Fetch(pid)
		if err != nil {
			return nil, err
		}
		t.height++
		leaf := pg.Bytes()[offIsLeaf] == 1
		var next storage.PageID
		if !leaf {
			if t.nkeys(pg) > 0 {
				next = storage.PageID(binary.LittleEndian.Uint64(t.entry(pg, 0)[t.keySize:]))
			} else {
				next = t.rightmost(pg)
			}
		}
		if err := bp.Unpin(pid, false); err != nil {
			return nil, err
		}
		if leaf {
			break
		}
		pid = next
	}
	// Walk the leaf chain for leaves/entries.
	for pid != 0 {
		pg, err := bp.Fetch(pid)
		if err != nil {
			return nil, err
		}
		t.leaves++
		t.entries += t.nkeys(pg)
		next := pg.NextPage()
		if err := bp.Unpin(pid, false); err != nil {
			return nil, err
		}
		pid = next
	}
	return t, nil
}

// Stats is the Table 9 parameter block for an index, plus entry count.
type Stats struct {
	Order   int  // v(I): minimum fan-out (half the node capacity)
	Levels  int  // level(I)
	Leaves  int  // leaves(I)
	KeySize int  // keysize(I)
	Unique  bool // unique(I)
	Entries int
}

// Stats returns the current Table 9 statistics of the index.
func (t *Tree) Stats() Stats {
	return Stats{
		Order:   t.capacity() / 2,
		Levels:  t.height,
		Leaves:  t.leaves,
		KeySize: t.keySize,
		Unique:  t.unique,
		Entries: t.entries,
	}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.entries }

func (t *Tree) entrySize() int { return t.keySize + 8 }

// capacity returns the number of entries a node may hold steady-state; one
// extra entry of slack remains in the page so a node can briefly overfill
// before it is split.
func (t *Tree) capacity() int {
	return (t.bp.Disk().PageSize()-entriesStart)/t.entrySize() - 1
}

func (t *Tree) initNode(pg *storage.Page, leaf bool) {
	b := pg.Bytes()
	for i := range b {
		b[i] = 0
	}
	b[offIsLeaf] = 0
	if leaf {
		b[offIsLeaf] = 1
	}
	binary.LittleEndian.PutUint16(b[offNKeys:], 0)
}

func (t *Tree) isLeaf(pg *storage.Page) bool { return pg.Bytes()[offIsLeaf] == 1 }
func (t *Tree) nkeys(pg *storage.Page) int {
	return int(binary.LittleEndian.Uint16(pg.Bytes()[offNKeys:]))
}
func (t *Tree) setNKeys(pg *storage.Page, n int) {
	binary.LittleEndian.PutUint16(pg.Bytes()[offNKeys:], uint16(n))
}
func (t *Tree) rightmost(pg *storage.Page) storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(pg.Bytes()[offRightmost:]))
}
func (t *Tree) setRightmost(pg *storage.Page, id storage.PageID) {
	binary.LittleEndian.PutUint32(pg.Bytes()[offRightmost:], uint32(id))
}

// entry returns the i-th entry slice (key ++ value) aliasing the page.
func (t *Tree) entry(pg *storage.Page, i int) []byte {
	off := entriesStart + i*t.entrySize()
	return pg.Bytes()[off : off+t.entrySize()]
}

func (t *Tree) key(pg *storage.Page, i int) []byte { return t.entry(pg, i)[:t.keySize] }
func (t *Tree) value(pg *storage.Page, i int) uint64 {
	return binary.LittleEndian.Uint64(t.entry(pg, i)[t.keySize:])
}

// insertAt shifts entries right and writes (key,value) at position i.
func (t *Tree) insertAt(pg *storage.Page, i int, key []byte, value uint64) {
	n := t.nkeys(pg)
	es := t.entrySize()
	b := pg.Bytes()
	start := entriesStart + i*es
	copy(b[start+es:entriesStart+(n+1)*es], b[start:entriesStart+n*es])
	copy(b[start:], key)
	binary.LittleEndian.PutUint64(b[start+t.keySize:], value)
	t.setNKeys(pg, n+1)
}

// removeAt deletes entry i.
func (t *Tree) removeAt(pg *storage.Page, i int) {
	n := t.nkeys(pg)
	es := t.entrySize()
	b := pg.Bytes()
	start := entriesStart + i*es
	copy(b[start:], b[start+es:entriesStart+n*es])
	t.setNKeys(pg, n-1)
}

// padKey normalizes a key to the fixed key size.
func (t *Tree) padKey(key []byte) ([]byte, error) {
	if len(key) > t.keySize {
		return nil, fmt.Errorf("%w: %d > %d", ErrKeyTooLarge, len(key), t.keySize)
	}
	if len(key) == t.keySize {
		return key, nil
	}
	out := make([]byte, t.keySize)
	copy(out, key)
	return out, nil
}

// search returns the index of the first entry with key >= target.
func (t *Tree) search(pg *storage.Page, target []byte) int {
	lo, hi := 0, t.nkeys(pg)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.key(pg, mid), target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the separator position whose child should receive
// target. Equal keys route right (duplicate runs grow on the right), so the
// index advances past separators equal to target.
func (t *Tree) childIndex(pg *storage.Page, target []byte) int {
	i := t.search(pg, target)
	for i < t.nkeys(pg) && bytes.Equal(t.key(pg, i), target) {
		i++
	}
	return i
}

// childAt returns the child pointer at separator position i (the rightmost
// child when i equals the key count).
func (t *Tree) childAt(pg *storage.Page, i int) storage.PageID {
	if i == t.nkeys(pg) {
		return t.rightmost(pg)
	}
	return storage.PageID(t.value(pg, i))
}

// childFor returns the child page to descend into for target.
func (t *Tree) childFor(pg *storage.Page, target []byte) storage.PageID {
	return t.childAt(pg, t.childIndex(pg, target))
}

// Insert adds (key, oid). Keys shorter than the index key size are
// zero-padded (order-preserving for the Encode* helpers).
func (t *Tree) Insert(key []byte, oid storage.OID) error {
	k, err := t.padKey(key)
	if err != nil {
		return err
	}
	if t.unique {
		if _, found, err := t.first(k); err != nil {
			return err
		} else if found {
			return fmt.Errorf("%w: %x", ErrDuplicateKey, k)
		}
	}
	promoted, newChild, err := t.insertRec(t.root, k, uint64(oid))
	if err != nil {
		return err
	}
	if newChild != 0 {
		// Root split: grow the tree by one level.
		pg, err := t.bp.NewPage()
		if err != nil {
			return err
		}
		before := t.snap(pg)
		t.initNode(pg, false)
		t.insertAt(pg, 0, promoted, uint64(t.root))
		t.setRightmost(pg, newChild)
		t.root = pg.ID
		t.height++
		if err := t.unpinLogged(pg, before); err != nil {
			return err
		}
	}
	t.entries++
	return nil
}

// insertRec descends to the leaf, inserts, and propagates splits upward.
// It returns a promoted separator key and the new right sibling page if the
// node split, else (nil, 0).
func (t *Tree) insertRec(pid storage.PageID, key []byte, value uint64) ([]byte, storage.PageID, error) {
	pg, err := t.bp.Fetch(pid)
	if err != nil {
		return nil, 0, err
	}
	if t.isLeaf(pg) {
		before := t.snap(pg)
		i := t.search(pg, key)
		t.insertAt(pg, i, key, value)
		if t.nkeys(pg) <= t.capacity() {
			return nil, 0, t.unpinLogged(pg, before)
		}
		sep, sib, serr := t.splitLeaf(pg)
		if uerr := t.unpinLogged(pg, before); uerr != nil && serr == nil {
			serr = uerr
		}
		return sep, sib, serr
	}
	child := t.childFor(pg, key)
	if err := t.bp.Unpin(pid, false); err != nil {
		return nil, 0, err
	}
	promoted, newChild, err := t.insertRec(child, key, value)
	if err != nil || newChild == 0 {
		return nil, 0, err
	}
	// Insert the promoted separator into this node at the exact position of
	// the child that split (recomputed with the same routing rule used for
	// the descent, so duplicate separators cannot misplace it). The split
	// child keeps the low keys, the new sibling the high ones; so at slot i
	// we store (promoted, child) and the following pointer becomes sibling.
	pg, err = t.bp.Fetch(pid)
	if err != nil {
		return nil, 0, err
	}
	before := t.snap(pg)
	i := t.childIndex(pg, key)
	if i == t.nkeys(pg) {
		t.insertAt(pg, i, promoted, uint64(child))
		t.setRightmost(pg, newChild)
	} else {
		t.insertAt(pg, i, promoted, uint64(child))
		binary.LittleEndian.PutUint64(t.entry(pg, i+1)[t.keySize:], uint64(newChild))
	}
	if t.nkeys(pg) <= t.capacity() {
		return nil, 0, t.unpinLogged(pg, before)
	}
	sep, sib, serr := t.splitInternal(pg)
	if uerr := t.unpinLogged(pg, before); uerr != nil && serr == nil {
		serr = uerr
	}
	return sep, sib, serr
}

// splitLeaf moves the upper half of an over-full leaf into a new right
// sibling and returns the separator (first key of the sibling).
func (t *Tree) splitLeaf(pg *storage.Page) ([]byte, storage.PageID, error) {
	n := t.nkeys(pg)
	mid := n / 2
	sib, err := t.bp.NewPage()
	if err != nil {
		return nil, 0, err
	}
	sibBefore := t.snap(sib)
	t.initNode(sib, true)
	es := t.entrySize()
	copy(sib.Bytes()[entriesStart:], pg.Bytes()[entriesStart+mid*es:entriesStart+n*es])
	t.setNKeys(sib, n-mid)
	t.setNKeys(pg, mid)
	sib.SetNextPage(pg.NextPage())
	pg.SetNextPage(sib.ID)
	sep := make([]byte, t.keySize)
	copy(sep, t.key(sib, 0))
	t.leaves++
	if err := t.unpinLogged(sib, sibBefore); err != nil {
		return nil, 0, err
	}
	return sep, sib.ID, nil
}

// splitInternal splits an over-full internal node; the middle key is
// promoted (not kept in either half).
func (t *Tree) splitInternal(pg *storage.Page) ([]byte, storage.PageID, error) {
	n := t.nkeys(pg)
	mid := n / 2
	sep := make([]byte, t.keySize)
	copy(sep, t.key(pg, mid))
	midChild := storage.PageID(t.value(pg, mid))

	sib, err := t.bp.NewPage()
	if err != nil {
		return nil, 0, err
	}
	sibBefore := t.snap(sib)
	t.initNode(sib, false)
	es := t.entrySize()
	copy(sib.Bytes()[entriesStart:], pg.Bytes()[entriesStart+(mid+1)*es:entriesStart+n*es])
	t.setNKeys(sib, n-mid-1)
	t.setRightmost(sib, t.rightmost(pg))
	t.setNKeys(pg, mid)
	t.setRightmost(pg, midChild)
	if err := t.unpinLogged(sib, sibBefore); err != nil {
		return nil, 0, err
	}
	return sep, sib.ID, nil
}

// first locates the leftmost occurrence of key; returns its leaf position.
func (t *Tree) first(key []byte) (pos struct {
	page storage.PageID
	idx  int
}, found bool, err error) {
	pid := t.root
	for {
		pg, ferr := t.bp.Fetch(pid)
		if ferr != nil {
			return pos, false, ferr
		}
		if !t.isLeaf(pg) {
			// Descend left of equal separators to find the first dup.
			i := t.search(pg, key)
			var next storage.PageID
			if i == t.nkeys(pg) {
				next = t.rightmost(pg)
			} else {
				next = storage.PageID(t.value(pg, i))
			}
			if err := t.bp.Unpin(pid, false); err != nil {
				return pos, false, err
			}
			pid = next
			continue
		}
		i := t.search(pg, key)
		if i < t.nkeys(pg) && bytes.Equal(t.key(pg, i), key) {
			pos.page, pos.idx = pid, i
			found = true
		} else if i == t.nkeys(pg) && pg.NextPage() != 0 {
			// Key may start on the right sibling (separator equals key).
			next := pg.NextPage()
			if err := t.bp.Unpin(pid, false); err != nil {
				return pos, false, err
			}
			sib, ferr := t.bp.Fetch(next)
			if ferr != nil {
				return pos, false, ferr
			}
			if t.nkeys(sib) > 0 && bytes.Equal(t.key(sib, 0), key) {
				pos.page, pos.idx = next, 0
				found = true
			}
			err = t.bp.Unpin(next, false)
			return pos, found, err
		}
		err = t.bp.Unpin(pid, false)
		return pos, found, err
	}
}

// Search returns every OID stored under key (at most one for unique
// indexes). The returned slice is empty if the key is absent.
func (t *Tree) Search(key []byte) ([]storage.OID, error) {
	k, err := t.padKey(key)
	if err != nil {
		return nil, err
	}
	var out []storage.OID
	err = t.Range(k, k, func(_ []byte, oid storage.OID) bool {
		out = append(out, oid)
		return true
	})
	return out, err
}

// Range calls fn for every entry with lo <= key <= hi in key order.
// Returning false stops the scan. lo or hi may be nil for open ends.
func (t *Tree) Range(lo, hi []byte, fn func(key []byte, oid storage.OID) bool) error {
	var start []byte
	if lo != nil {
		k, err := t.padKey(lo)
		if err != nil {
			return err
		}
		start = k
	} else {
		start = make([]byte, t.keySize)
	}
	var end []byte
	if hi != nil {
		k, err := t.padKey(hi)
		if err != nil {
			return err
		}
		end = k
	}
	// Descend to the leaf containing start.
	pid := t.root
	for {
		pg, err := t.bp.Fetch(pid)
		if err != nil {
			return err
		}
		if t.isLeaf(pg) {
			if err := t.bp.Unpin(pid, false); err != nil {
				return err
			}
			break
		}
		i := t.search(pg, start)
		var next storage.PageID
		if i == t.nkeys(pg) {
			next = t.rightmost(pg)
		} else {
			next = storage.PageID(t.value(pg, i))
		}
		if err := t.bp.Unpin(pid, false); err != nil {
			return err
		}
		pid = next
	}
	// Scan the leaf chain.
	for pid != 0 {
		pg, err := t.bp.Fetch(pid)
		if err != nil {
			return err
		}
		n := t.nkeys(pg)
		type ent struct {
			key []byte
			oid storage.OID
		}
		var batch []ent
		stop := false
		for i := t.search(pg, start); i < n; i++ {
			k := t.key(pg, i)
			if end != nil && bytes.Compare(k, end) > 0 {
				stop = true
				break
			}
			kc := make([]byte, len(k))
			copy(kc, k)
			batch = append(batch, ent{kc, storage.OID(t.value(pg, i))})
		}
		next := pg.NextPage()
		if err := t.bp.Unpin(pid, false); err != nil {
			return err
		}
		for _, e := range batch {
			if !fn(e.key, e.oid) {
				return nil
			}
		}
		if stop {
			return nil
		}
		pid = next
		start = make([]byte, t.keySize) // from-the-beginning on later leaves
	}
	return nil
}

// Delete removes one (key, oid) pair. Underflowed nodes are not merged
// (lazy deletion, as in many production systems); the Table 9 statistics
// remain upper bounds.
func (t *Tree) Delete(key []byte, oid storage.OID) error {
	k, err := t.padKey(key)
	if err != nil {
		return err
	}
	pos, found, err := t.first(k)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	// Walk the duplicate run for the matching oid.
	pid, idx := pos.page, pos.idx
	for pid != 0 {
		pg, err := t.bp.Fetch(pid)
		if err != nil {
			return err
		}
		n := t.nkeys(pg)
		for i := idx; i < n; i++ {
			if !bytes.Equal(t.key(pg, i), k) {
				t.bp.Unpin(pid, false)
				return ErrNotFound
			}
			if storage.OID(t.value(pg, i)) == oid {
				before := t.snap(pg)
				t.removeAt(pg, i)
				t.entries--
				return t.unpinLogged(pg, before)
			}
		}
		next := pg.NextPage()
		if err := t.bp.Unpin(pid, false); err != nil {
			return err
		}
		pid, idx = next, 0
	}
	return ErrNotFound
}

// --- order-preserving key encodings ---

// EncodeIntKey encodes a signed integer so byte order equals numeric order.
func EncodeIntKey(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v)^(1<<63))
	return b[:]
}

// DecodeIntKey reverses EncodeIntKey.
func DecodeIntKey(b []byte) int64 {
	return int64(binary.BigEndian.Uint64(b) ^ (1 << 63))
}

// EncodeFloatKey encodes a float64 so byte order equals numeric order.
func EncodeFloatKey(v float64) []byte {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], bits)
	return b[:]
}

// EncodeStringKey returns the raw bytes of s (zero-padded by the tree).
func EncodeStringKey(s string) []byte { return []byte(s) }
