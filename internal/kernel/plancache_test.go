package kernel

import (
	"fmt"
	"strings"
	"testing"

	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/sql"
)

// openCached opens a plan-cache-enabled database with a small Employee
// population.
func openCached(t testing.TB, n int) *DB {
	t.Helper()
	opts := DefaultOptions()
	opts.PlanCache = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute("CREATE CLASS Employee TUPLE (ssno Integer, name String(32), age Integer)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		stmt := fmt.Sprintf("NEW Employee <%d, 'emp%d', %d>", i, i, 20+i%40)
		if _, err := db.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func oneInt(t *testing.T, res *Result) int64 {
	t.Helper()
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("want one cell, got %d rows", len(res.Rows))
	}
	v, _ := res.Rows[0][0].AsInt()
	return v
}

// TestPlanCacheWarmPathSkipsParse pins the tentpole guarantee: after the
// first execution of a statement shape, re-executions with different
// constants perform zero parses and return the values bound at execution
// time, not the first binding's.
func TestPlanCacheWarmPathSkipsParse(t *testing.T) {
	db := openCached(t, 50)
	q := func(age int) string {
		return fmt.Sprintf("SELECT COUNT(*) FROM Employee e WHERE e.age < %d", age)
	}
	// Cold: miss, parse, optimize, cache.
	cold, err := db.Execute(q(30))
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := db.PlanCacheStats()
	if misses0 == 0 {
		t.Fatal("cold execution did not register a plan-cache miss")
	}

	parse0 := sql.ParseCount.Load()
	for age := 21; age <= 60; age++ {
		res, err := db.Execute(q(age))
		if err != nil {
			t.Fatal(err)
		}
		// Differential oracle: count the same predicate by hand.
		want := 0
		for i := 0; i < 50; i++ {
			if 20+i%40 < age {
				want++
			}
		}
		if got := oneInt(t, res); got != int64(want) {
			t.Fatalf("age<%d: got %d, want %d (stale constant re-bound?)", age, got, want)
		}
	}
	if d := sql.ParseCount.Load() - parse0; d != 0 {
		t.Errorf("warm path parsed %d times, want 0", d)
	}
	hits1, misses1 := db.PlanCacheStats()
	if hits1-hits0 != 40 {
		t.Errorf("want 40 cache hits, got %d", hits1-hits0)
	}
	if misses1 != misses0 {
		t.Errorf("warm path registered %d misses", misses1-misses0)
	}
	_ = cold
}

// TestPlanCacheRebindsIndexedPlan drives the IndSelPlan.ConstParam path: with
// an index on the predicate attribute the cached plan is an index selection,
// and re-binding must substitute the fresh key into the simple predicate.
func TestPlanCacheRebindsIndexedPlan(t *testing.T) {
	db := openCached(t, 200)
	if _, err := db.Execute("CREATE INDEX emp_ssno ON Employee (ssno)"); err != nil {
		t.Fatal(err)
	}
	if err := db.RefreshStats(); err != nil {
		t.Fatal(err)
	}
	for _, ssno := range []int{5, 42, 199, 13} {
		res, err := db.Execute(fmt.Sprintf("SELECT e.name FROM Employee e WHERE e.ssno = %d", ssno))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Str != fmt.Sprintf("emp%d", ssno) {
			t.Fatalf("ssno=%d: got %v", ssno, res.Rows)
		}
	}
	hits, _ := db.PlanCacheStats()
	if hits < 3 {
		t.Errorf("indexed shape not reused: hits=%d", hits)
	}
}

// TestPlanCacheInvalidation: DDL and RefreshStats must drop cached plans, so
// a shape optimized against the old catalog is re-planned.
func TestPlanCacheInvalidation(t *testing.T) {
	db := openCached(t, 10)
	q := "SELECT e.name FROM Employee e WHERE e.age > 25"
	if _, err := db.Execute(q); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(q); err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := db.PlanCacheStats()
	if hits0 != 1 || misses0 != 1 {
		t.Fatalf("warmup: hits=%d misses=%d, want 1/1", hits0, misses0)
	}
	// DDL bumps the epoch: the next execution is a miss again.
	if _, err := db.Execute("CREATE CLASS Dept TUPLE (name String(16))"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(q); err != nil {
		t.Fatal(err)
	}
	_, misses1 := db.PlanCacheStats()
	if misses1 != misses0+1 {
		t.Errorf("DDL did not invalidate: misses=%d, want %d", misses1, misses0+1)
	}
	// An index on the queried attribute must actually change future plans.
	if _, err := db.Execute("CREATE INDEX emp_age ON Employee (age)"); err != nil {
		t.Fatal(err)
	}
	if err := db.RefreshStats(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(q); err != nil {
		t.Fatal(err)
	}
	// Not asserting INDSEL here (cost model decides); only that re-planning
	// happened against the new catalog.
	_, misses2 := db.PlanCacheStats()
	if misses2 <= misses1 {
		t.Errorf("index DDL + RefreshStats did not invalidate: misses=%d", misses2)
	}
}

// TestPreparedQuery exercises the explicit prepared-statement API: Query
// re-binds without lexing, and survives invalidation by re-preparing.
func TestPreparedQuery(t *testing.T) {
	db := openCached(t, 50)
	p, err := db.Prepare("SELECT COUNT(*) FROM Employee e WHERE e.age < 30")
	if err != nil {
		t.Fatal(err)
	}
	parse0 := sql.ParseCount.Load()
	for age := int32(25); age <= 35; age++ {
		res, err := p.Query(object.NewInt(age))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 0; i < 50; i++ {
			if 20+i%40 < int(age) {
				want++
			}
		}
		if got := oneInt(t, res); got != int64(want) {
			t.Fatalf("age<%d: got %d, want %d", age, got, want)
		}
	}
	if d := sql.ParseCount.Load() - parse0; d != 0 {
		t.Errorf("prepared warm path parsed %d times, want 0", d)
	}
	// Wrong arity is rejected.
	if _, err := p.Query(); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Invalidation: Query transparently re-prepares (one parse, then warm).
	if _, err := db.Execute("CREATE CLASS Dept TUPLE (name String(16))"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Query(object.NewInt(30)); err != nil {
		t.Fatal(err)
	}
	parse1 := sql.ParseCount.Load()
	if _, err := p.Query(object.NewInt(31)); err != nil {
		t.Fatal(err)
	}
	if d := sql.ParseCount.Load() - parse1; d != 0 {
		t.Errorf("re-prepared statement not warm: %d parses", d)
	}
}

// TestPlanCacheFallbacks: statements whose literals are consumed outside
// expressions (type arities) and DML keep working through the plain path.
func TestPlanCacheFallbacks(t *testing.T) {
	db := openCached(t, 5)
	// DDL with an arity literal: shape-mismatch fallback.
	if _, err := db.Execute("CREATE CLASS Team TUPLE (name String(16), size Integer)"); err != nil {
		t.Fatal(err)
	}
	// DML through the shaped path (parsed once, not cached).
	if _, err := db.Execute("UPDATE Employee e SET age = 99 WHERE e.ssno = 0"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute("SELECT e.age FROM Employee e WHERE e.ssno = 0")
	if err != nil {
		t.Fatal(err)
	}
	if got := oneInt(t, res); got != 99 {
		t.Fatalf("update through cache-enabled path lost: age=%d", got)
	}
	// Parse errors still surface with the ordinary parser's message.
	if _, err := db.Execute("SELEC nonsense"); err == nil {
		t.Error("garbage accepted")
	}
}

// TestExplainAnalyzeShowsPlanCache: the counters render in the totals line.
func TestExplainAnalyzeShowsPlanCache(t *testing.T) {
	db := openCached(t, 10)
	if _, err := db.Execute("SELECT e.name FROM Employee e WHERE e.age > 25"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute("SELECT e.name FROM Employee e WHERE e.age > 30"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute("EXPLAIN ANALYZE SELECT e.name FROM Employee e WHERE e.age > 35")
	if err != nil {
		t.Fatal(err)
	}
	out := res.Rows[0][0].String()
	if !strings.Contains(out, "plancache=1/1") {
		t.Errorf("EXPLAIN ANALYZE missing plancache counters:\n%s", out)
	}
	db2 := openAndDefine(t) // no plan cache
	res2, err := db2.Execute("EXPLAIN ANALYZE SELECT v.id FROM Vehicle v")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res2.Rows[0][0].String(), "plancache=") {
		t.Error("plancache rendered with the cache off")
	}
}

// BenchmarkPreparedQueryWarm pins the warm path's allocation profile: the
// loop body performs zero parse/optimize work (asserted via ParseCount), so
// allocs/op is the bind + execute cost alone.
func BenchmarkPreparedQueryWarm(b *testing.B) {
	db := openCached(b, 100)
	p, err := db.Prepare("SELECT COUNT(*) FROM Employee e WHERE e.age < 30")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Query(object.NewInt(30)); err != nil {
		b.Fatal(err)
	}
	parse0 := sql.ParseCount.Load()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Query(object.NewInt(30)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d := sql.ParseCount.Load() - parse0; d != 0 {
		b.Fatalf("warm benchmark parsed %d times", d)
	}
}

// TestWarmPlanAcquisitionAllocs pins the zero-parse/zero-optimize claim at
// the allocation level: acquiring an executable plan from the warm cache
// (lookup + bind) must allocate an order of magnitude less than the cold
// parse + optimize path it replaces.
func TestWarmPlanAcquisitionAllocs(t *testing.T) {
	db := openCached(t, 100)
	src := "SELECT e.name FROM Employee e WHERE e.age < 30"
	if _, err := db.Execute(src); err != nil { // populate the cache
		t.Fatal(err)
	}
	shape, params, err := sql.Shape(src)
	if err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(200, func() {
		ent, _ := db.plans.lookup(shape, len(params))
		if ent == nil {
			t.Fatal("cache entry lost")
		}
		_ = optimizer.Bind(ent.plan, params)
	})
	cold := testing.AllocsPerRun(200, func() {
		st, err := sql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.optimize(st.(*sql.Select)); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("plan acquisition allocs/op: warm=%.0f cold=%.0f", warm, cold)
	if warm > 40 {
		t.Errorf("warm plan acquisition allocates %.0f/op, want <= 40", warm)
	}
	if warm*5 > cold {
		t.Errorf("warm path (%.0f allocs) not clearly cheaper than parse+optimize (%.0f)", warm, cold)
	}
}

// BenchmarkExecuteCold is the comparison point: full parse + optimize every
// execution (plan cache off).
func BenchmarkExecuteCold(b *testing.B) {
	opts := DefaultOptions()
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Execute("CREATE CLASS Employee TUPLE (ssno Integer, name String(32), age Integer)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Execute(fmt.Sprintf("NEW Employee <%d, 'emp%d', %d>", i, i, 20+i%40)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.RefreshStats(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute("SELECT COUNT(*) FROM Employee e WHERE e.age < 30"); err != nil {
			b.Fatal(err)
		}
	}
}
