// Package cost implements the MOOD query optimizer's cost model: the
// parameters of Tables 8–10, the Yao-style color approximation c(n,m,r) of
// [Cer 85], the set-overlap probability o(t,x,y), the selectivity formulas
// for atomic attributes and path expressions (Section 4.1), the costs of
// basic file operations (Section 5: SEQCOST, RNDCOST, INDCOST, RNGXCOST),
// and the costs of realizing an implicit join by forward traversal,
// backward traversal, binary join index, or pointer-based hash-partition
// join (Section 6).
package cost

import (
	"fmt"
	"math"
)

// Disk holds the physical parameters of Table 10. Times are in
// milliseconds, the block size in bytes.
type Disk struct {
	B   int     // block size
	BTT float64 // block transfer time
	EBT float64 // effective block transfer time
	R   float64 // average rotational latency
	S   float64 // average seek time
}

// DefaultDisk returns the same Salzberg-style parameterisation the storage
// simulator uses, keeping predicted and measured costs directly comparable.
func DefaultDisk() Disk {
	return Disk{B: 4096, BTT: 0.84, EBT: 0.84, R: 8.3, S: 16.0}
}

// SEQCOST is the cost of sequential access to b pages:
// SEQCOST(b) = s + r + b*ebt. (The paper notes that on ESM a file is stored
// as a B+ tree of pages, so a file scan may in fact cost RNDCOST; callers
// choose the formula that matches their layout.)
func (d Disk) SEQCOST(b float64) float64 {
	if b <= 0 {
		return 0
	}
	return d.S + d.R + b*d.EBT
}

// RNDCOST is the cost of random access to b pages:
// RNDCOST(b) = b * (s + r + btt).
func (d Disk) RNDCOST(b float64) float64 {
	if b <= 0 {
		return 0
	}
	return b * (d.S + d.R + d.BTT)
}

// CPUCost is the per-comparison CPU cost used by the backward-traversal
// formula. Disk arms of the era dwarf CPU time; the default is one
// microsecond.
const CPUCost = 0.001 // ms

// C is the paper's c(n,m,r): an approximation to the number of different
// colors selected when r objects are chosen out of n objects uniformly
// distributed over m colors [Cer 85]:
//
//	c(n,m,r) = r            if r < m/2
//	         = (r+m)/3      if m/2 <= r < 2m
//	         = m            if r >= 2m
func C(n, m, r float64) float64 {
	_ = n // n does not appear in the approximation; kept for the paper's signature
	switch {
	case m <= 0 || r <= 0:
		return 0
	case r < m/2:
		return r
	case r < 2*m:
		return (r + m) / 3
	default:
		return m
	}
}

// O is the paper's o(t,x,y): the probability that two sets with
// cardinalities x and y drawn from t distinct objects share at least one
// object,
//
//	o(t,x,y) = 1 - C(t-x, y)/C(t, y)
//
// with C the combination function. The quotient is computed as the product
// Π_{i=0..y-1} (t-x-i)/(t-i). Fractional cardinalities (which arise when
// k_m·hitprb < 1) are rounded up to one object — the rounding that
// reproduces the paper's printed 5.00e-5 for Example 8.1's P2.
func O(t, x, y float64) float64 {
	if t <= 0 || x <= 0 || y <= 0 {
		return 0
	}
	xi := math.Ceil(x)
	yi := math.Ceil(y)
	if xi+yi >= t {
		return 1
	}
	p := 1.0
	for i := 0.0; i < yi; i++ {
		p *= (t - xi - i) / (t - i)
	}
	return 1 - p
}

// --- Table 8 statistics -------------------------------------------------

// ClassStats holds the per-class parameters of Table 8.
type ClassStats struct {
	Name    string
	Card    int // |C|
	NbPages int // nbpages(C)
	Size    int // size(C), bytes per instance
	// ShardPages holds nbpages per extent part on a sharded store (nil or
	// single-entry on a single store, where NbPages alone applies). NbPages
	// is always the sum, so formulas that only need the total keep working
	// unchanged; ExtentScanCost and ShardNbPg consult the split.
	ShardPages []int
	// ClusterFactor is the measured page co-residency of batched reference
	// fetches into this class: observed distinct pages divided by the
	// Cardenas prediction, learned from the clustering tracer. Values below
	// 1 mean the class is physically clustered better than the uniform-
	// placement assumption (after reorganization, traversed objects share
	// pages), so batch-fetch estimates scale down by it. Zero — the default
	// whenever tracing is off — keeps every formula byte-exact to the paper.
	ClusterFactor float64
}

// LinkStats holds the per-reference-attribute parameters of Table 8 for an
// attribute A of class C referencing class D.
type LinkStats struct {
	Class      string  // C
	Attribute  string  // A
	Target     string  // D
	Fan        float64 // fan(A,C,D)
	TotRef     float64 // totref(A,C,D)
	NotNull    float64 // notnull(A,C)
	TargetCard float64 // |D|
}

// TotLinks returns totlinks(A,C,D) = fan(A,C,D) * |C|.
func (l LinkStats) TotLinks(cardC int) float64 { return l.Fan * float64(cardC) }

// HitPrb returns hitprb(A,C,D) = totref(A,C,D) / |D|.
func (l LinkStats) HitPrb() float64 {
	if l.TargetCard <= 0 {
		return 0
	}
	return l.TotRef / l.TargetCard
}

// AttrStats holds the atomic-attribute parameters of Table 8.
type AttrStats struct {
	Class     string
	Attribute string
	Dist      int     // dist(A,C)
	Max       float64 // max(A,C)
	Min       float64 // min(A,C)
	NotNull   float64 // notnull(A,C)
}

// BTreeStats holds the Table 9 parameters of a B+-tree index.
type BTreeStats struct {
	Order   int  // v(I)
	Levels  int  // level(I)
	Leaves  int  // leaves(I)
	KeySize int  // keysize(I)
	Unique  bool // unique(I)
}

// Stats is the statistics base the optimizer consults: one entry per class,
// per reference link, and per atomic attribute.
type Stats struct {
	Disk    Disk
	Classes map[string]ClassStats
	Links   map[string]LinkStats // key "C.A"
	Attrs   map[string]AttrStats // key "C.A"
	// ESMFiles reflects Section 5's observation: "in ESM, a file is stored
	// as a B+ tree and therefore the sequential access cost of a file is
	// equal to its random access cost." When set (the default), extent
	// scans are charged RNDCOST; the hash-partition join's passes over its
	// own temporary partition files remain sequential. This asymmetry is
	// what makes HASH_PARTITION the winning strategy against base extents
	// in the paper's Examples 8.1 and 8.2.
	ESMFiles bool
	// CacheHitRate is the observed object-cache hit rate in [0,1]; random
	// dereference costs scale by the miss fraction, since a cache hit skips
	// the page fetch entirely. Zero (the default, and the value when the
	// cache is off) reproduces the paper's formulas unchanged.
	CacheHitRate float64
	// BatchFetch marks the executor's page-ordered batch dereference: k
	// random fetches into a target class collapse onto its distinct pages
	// (the Cardenas estimate) instead of costing RNDCOST(k). False keeps
	// the original one-seek-per-reference model.
	BatchFetch bool
	// Fusion enables pricing the executor's collection-fused join (the Odra
	// fusion algorithm): the whole left input's references are deduplicated
	// globally and fetched in one page-ordered sweep, so the probe side pays
	// the random cost of the *distinct* targets rather than one dereference
	// per occurrence. False (the default) keeps BestJoin's choice set — and
	// therefore every paper example — byte-exact to the four strategies of
	// Sections 3.2 and 8.3.
	Fusion bool
}

// NewStats creates an empty statistics base over the disk parameters with
// ESM file semantics enabled.
func NewStats(d Disk) *Stats {
	return &Stats{
		Disk:     d,
		Classes:  make(map[string]ClassStats),
		Links:    make(map[string]LinkStats),
		Attrs:    make(map[string]AttrStats),
		ESMFiles: true,
	}
}

// ScanCost is the cost of scanning b extent pages: SEQCOST on contiguous
// files, RNDCOST under ESM file semantics.
func (s *Stats) ScanCost(b float64) float64 {
	if s.ESMFiles {
		return s.Disk.RNDCOST(b)
	}
	return s.Disk.SEQCOST(b)
}

// ExtentScanCost is the cost of scanning a class's full extent. On a single
// store it is exactly ScanCost(nbpages(C)); on a sharded store each part is
// its own ESM file, so the scan pays per-part: Σ_i ScanCost(p_i).
func (s *Stats) ExtentScanCost(cs ClassStats) float64 {
	if len(cs.ShardPages) <= 1 {
		return s.ScanCost(float64(cs.NbPages))
	}
	total := 0.0
	for _, p := range cs.ShardPages {
		total += s.ScanCost(float64(p))
	}
	return total
}

// ShardNbPg is the Cardenas estimate over a possibly sharded extent: k
// objects spread across the parts in proportion to their pages, each part
// contributing nbpg(p_i, k_i) distinct pages. On a single store it reduces
// byte-exactly to NbPg(nbpages(C), k). A measured ClusterFactor scales the
// estimate — Cardenas assumes uniform placement, which a reorganized extent
// deliberately violates — clamped so at least one page is always charged.
func (s *Stats) ShardNbPg(cs ClassStats, k float64) float64 {
	var total float64
	if len(cs.ShardPages) <= 1 {
		total = NbPg(cs.NbPages, k)
	} else {
		for _, p := range cs.ShardPages {
			if cs.NbPages > 0 {
				total += NbPg(p, k*float64(p)/float64(cs.NbPages))
			}
		}
	}
	if cs.ClusterFactor > 0 && total > 0 {
		total *= cs.ClusterFactor
		if total < 1 {
			total = 1
		}
	}
	return total
}

// missFactor is the fraction of dereferences that actually reach the disk.
func (s *Stats) missFactor() float64 { return 1 - clamp01(s.CacheHitRate) }

// refFetchCost prices dereferencing k references through link ls: the miss
// fraction of RNDCOST(k), or — under the executor's batched fetch — of the
// random cost of the target's distinct pages those k references land on.
func (s *Stats) refFetchCost(ls LinkStats, k float64) float64 {
	if s.BatchFetch {
		if ds, err := s.Class(ls.Target); err == nil && ds.NbPages > 0 {
			return s.missFactor() * s.Disk.RNDCOST(s.ShardNbPg(ds, k))
		}
	}
	return s.missFactor() * s.Disk.RNDCOST(k)
}

func key(class, attr string) string { return class + "." + attr }

// SetClass records class statistics.
func (s *Stats) SetClass(cs ClassStats) { s.Classes[cs.Name] = cs }

// SetLink records link statistics for a reference attribute.
func (s *Stats) SetLink(ls LinkStats) { s.Links[key(ls.Class, ls.Attribute)] = ls }

// SetAttr records atomic attribute statistics.
func (s *Stats) SetAttr(as AttrStats) { s.Attrs[key(as.Class, as.Attribute)] = as }

// Class returns the statistics of a class.
func (s *Stats) Class(name string) (ClassStats, error) {
	cs, ok := s.Classes[name]
	if !ok {
		return ClassStats{}, fmt.Errorf("cost: no statistics for class %s", name)
	}
	return cs, nil
}

// Link returns the statistics of a reference attribute. Inherited
// attributes resolve if recorded under a superclass by the collector.
func (s *Stats) Link(class, attr string) (LinkStats, error) {
	ls, ok := s.Links[key(class, attr)]
	if !ok {
		return LinkStats{}, fmt.Errorf("cost: no link statistics for %s.%s", class, attr)
	}
	return ls, nil
}

// Attr returns the statistics of an atomic attribute.
func (s *Stats) Attr(class, attr string) (AttrStats, error) {
	as, ok := s.Attrs[key(class, attr)]
	if !ok {
		return AttrStats{}, fmt.Errorf("cost: no attribute statistics for %s.%s", class, attr)
	}
	return as, nil
}

// --- Section 4.1: selectivity of atomic attributes ----------------------

// CmpKind classifies a simple predicate's comparison for selectivity
// purposes.
type CmpKind uint8

// Comparison classes used by the selectivity formulas.
const (
	CmpEq CmpKind = iota
	CmpNe
	CmpGt // also >=
	CmpLt // also <=
	CmpBetween
)

// SelEq is f_s(s.A = constant) = 1 / dist(A,C).
func (a AttrStats) SelEq() float64 {
	if a.Dist <= 0 {
		return 1
	}
	return 1 / float64(a.Dist)
}

// SelGt is f_s(s.A > constant) = (max - c) / (max - min).
func (a AttrStats) SelGt(c float64) float64 {
	return clamp01(safeDiv(a.Max-c, a.Max-a.Min))
}

// SelLt is the mirror image for s.A < constant.
func (a AttrStats) SelLt(c float64) float64 {
	return clamp01(safeDiv(c-a.Min, a.Max-a.Min))
}

// SelBetween is f_s(s.A BETWEEN c1 AND c2) = (c2 - c1) / (max - min).
func (a AttrStats) SelBetween(c1, c2 float64) float64 {
	return clamp01(safeDiv(c2-c1, a.Max-a.Min))
}

// Selectivity dispatches on the comparison kind; constant2 is used only for
// BETWEEN.
func (a AttrStats) Selectivity(kind CmpKind, constant, constant2 float64) float64 {
	switch kind {
	case CmpEq:
		return a.SelEq()
	case CmpNe:
		return clamp01(1 - a.SelEq())
	case CmpGt:
		return a.SelGt(constant)
	case CmpLt:
		return a.SelLt(constant)
	case CmpBetween:
		return a.SelBetween(constant, constant2)
	}
	return 1
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// --- Section 4.1: selectivity of path expressions -----------------------

// PathHop describes one reference attribute A_i of class C_i along a path.
type PathHop struct {
	Class     string // C_i
	Attribute string // A_i
}

// Path describes a path-expression predicate p.A1.A2...Am θ c where A1..
// Am-1 are reference hops out of successive classes and Am is an atomic
// attribute of the final class.
type Path struct {
	Hops       []PathHop // reference hops C_1.A_1 ... C_{m-1}.A_{m-1}
	FinalClass string    // C_m
	FinalAttr  string    // A_m
}

// FRef computes fref(p.A1...Ai, k): the expected number of objects of class
// C_{i+1} reached by forward-traversing the first hops hops of the path
// starting from k objects of C_1:
//
//	fref(·, k) = k                                        for i = 0
//	fref(·, k) = c(totlinks_i, totref_i, fref_{i-1} * fan_i)  for i > 0
func (s *Stats) FRef(p Path, hops int, k float64) (float64, error) {
	cur := k
	for i := 0; i < hops; i++ {
		h := p.Hops[i]
		ls, err := s.Link(h.Class, h.Attribute)
		if err != nil {
			return 0, err
		}
		cs, err := s.Class(h.Class)
		if err != nil {
			return 0, err
		}
		cur = C(ls.TotLinks(cs.Card), ls.TotRef, cur*ls.Fan)
	}
	return cur, nil
}

// PathSelectivity computes f_s(p.A1.A2...Am θ c) per Section 4.1:
//
//	k_m = |C_m| * f_s(A_m θ c)
//	f_s = o(totref_{m-1}, fref(p.A1..A_{m-1}, 1), k_m * hitprb(A_{m-1}, C_{m-1}, C_m))
//
// kind/constant/constant2 describe the final atomic comparison.
func (s *Stats) PathSelectivity(p Path, kind CmpKind, constant, constant2 float64) (float64, error) {
	if len(p.Hops) == 0 {
		// Degenerate: plain atomic predicate.
		as, err := s.Attr(p.FinalClass, p.FinalAttr)
		if err != nil {
			return 0, err
		}
		return as.Selectivity(kind, constant, constant2), nil
	}
	as, err := s.Attr(p.FinalClass, p.FinalAttr)
	if err != nil {
		return 0, err
	}
	fs := as.Selectivity(kind, constant, constant2)
	cm, err := s.Class(p.FinalClass)
	if err != nil {
		return 0, err
	}
	km := float64(cm.Card) * fs

	last := p.Hops[len(p.Hops)-1]
	ls, err := s.Link(last.Class, last.Attribute)
	if err != nil {
		return 0, err
	}
	fref, err := s.FRef(p, len(p.Hops), 1)
	if err != nil {
		return 0, err
	}
	return O(ls.TotRef, fref, km*ls.HitPrb()), nil
}

// --- Section 5: cost of basic file operations ---------------------------

// INDCOST is the cost of accessing object identifiers for k random keys
// through a secondary B+-tree index I:
//
//	INDCOST(k) = ( Σ_{i=1..level} ⌈c(n_i, m_i, r_i)⌉ ) * RNDCOST(1)
//
// where n_i = leaves / (2v·ln2)^(i-2), m_i = leaves / (2v·ln2)^(i-1), and
// r_1 = k, r_i = c(n_{i-1}, m_{i-1}, r_{i-1}).
func (s *Stats) INDCOST(idx BTreeStats, k float64) float64 {
	if k <= 0 {
		return 0
	}
	fan := 2 * float64(idx.Order) * math.Ln2
	if fan < 2 {
		fan = 2
	}
	total := 0.0
	r := k
	leaves := float64(idx.Leaves)
	for i := 1; i <= idx.Levels; i++ {
		n := leaves / math.Pow(fan, float64(i-2))
		m := leaves / math.Pow(fan, float64(i-1))
		c := C(n, m, r)
		if c < 1 {
			c = 1 // at least the root page
		}
		total += math.Ceil(c)
		r = c
	}
	return total * s.Disk.RNDCOST(1)
}

// RNGXCOST is the cost of a range query through a B+-tree index:
//
//	RNGXCOST(fract) = fract * leaves(I) * (s + r + btt)
func (s *Stats) RNGXCOST(idx BTreeStats, fract float64) float64 {
	return clamp01(fract) * float64(idx.Leaves) * (s.Disk.S + s.Disk.R + s.Disk.BTT)
}

// NbPg is the Cardenas page estimate used throughout Section 6: the number
// of distinct pages among nbpages touched when k objects are picked:
//
//	nbpg = nbpages * (1 - (1 - 1/nbpages)^k)
func NbPg(nbpages int, k float64) float64 {
	if nbpages <= 0 || k <= 0 {
		return 0
	}
	np := float64(nbpages)
	return np * (1 - math.Pow(1-1/np, k))
}

// --- Section 6: cost of the implicit join C.A = D.self ------------------

// JoinMethod enumerates the four implicit-join strategies of Sections 3.2
// and 8.3, plus the collection-fused navigation join (FusionJoin) added on
// top of the paper's set.
type JoinMethod uint8

// Join strategies.
const (
	ForwardTraversal JoinMethod = iota
	BackwardTraversal
	BinaryJoinIndex
	HashPartition
	FusionJoin
)

func (m JoinMethod) String() string {
	switch m {
	case ForwardTraversal:
		return "FORWARD_TRAVERSAL"
	case BackwardTraversal:
		return "BACKWARD_TRAVERSAL"
	case BinaryJoinIndex:
		return "BINARY_JOIN_INDEX"
	case HashPartition:
		return "HASH_PARTITION"
	case FusionJoin:
		return "FUSION_JOIN"
	}
	return "?"
}

// JoinInput describes the implicit join of k_c objects of class C through
// reference attribute A with k_d objects of class D.
type JoinInput struct {
	Class     string // C
	Attribute string // A
	Kc        float64
	Kd        float64
	// CAccessed marks the k_c source objects as already in memory — a
	// temporary collection produced by an earlier selection or join. The
	// forward-traversal formula then drops its RNDCOST(nbpg_c) term. This
	// is what makes the optimizer chain FORWARD_TRAVERSAL joins off T1 in
	// the paper's Example 8.1 while using HASH_PARTITION against base
	// extents.
	CAccessed bool
	DAccessed bool        // D's pages already resident (backward traversal)
	BJIdx     *BTreeStats // binary join index, when one exists
	// FusionOK marks the join as shaped for the fusion operator: the probe
	// side must be a bare class bind (optionally under a selection), since
	// fusion never scans the target extent — it synthesizes the probe rows
	// from the fetched references directly.
	FusionOK bool
}

// ForwardCost is Section 6.1:
//
//	ftc = RNDCOST(nbpg_c) + RNDCOST(k_c * fan)
//	nbpg_c = nbpages(C) * (1 - (1 - 1/nbpages(C))^k_c)
//
// the worst case with no buffer hits on D.
func (s *Stats) ForwardCost(in JoinInput) (float64, error) {
	cs, err := s.Class(in.Class)
	if err != nil {
		return 0, err
	}
	ls, err := s.Link(in.Class, in.Attribute)
	if err != nil {
		return 0, err
	}
	srcCost := 0.0
	if !in.CAccessed {
		srcCost = s.Disk.RNDCOST(s.ShardNbPg(cs, in.Kc))
	}
	return srcCost + s.refFetchCost(ls, in.Kc*ls.Fan), nil
}

// BackwardCost is Section 6.2:
//
//	btc = SEQCOST(nbpages(C)) + k_c*fan*k_d*CPUCOST
//	      + SEQCOST(nbpages(D)) unless D was accessed previously
func (s *Stats) BackwardCost(in JoinInput) (float64, error) {
	cs, err := s.Class(in.Class)
	if err != nil {
		return 0, err
	}
	ls, err := s.Link(in.Class, in.Attribute)
	if err != nil {
		return 0, err
	}
	ds, err := s.Class(ls.Target)
	if err != nil {
		return 0, err
	}
	total := s.ExtentScanCost(cs) + in.Kc*ls.Fan*in.Kd*CPUCost
	if !in.DAccessed {
		total += s.ExtentScanCost(ds)
	}
	return total, nil
}

// BJICost is Section 6.3: bjc = INDCOST(k) through the binary join index.
func (s *Stats) BJICost(in JoinInput, k float64) (float64, error) {
	if in.BJIdx == nil {
		return math.Inf(1), nil
	}
	return s.INDCOST(*in.BJIdx, k), nil
}

// HashPartitionCost is Section 6.4's pointer-based hybrid hash join:
//
//	hhc = 3 * k_c/|C| * SEQCOST(nbpages(C)) + RNDCOST(nbpg)
//	nbpg = nbpages(D) * (1 - (1 - 1/nbpages(D))^α)
//	α   = c(|C|*fan, totref, k_c*fan)
func (s *Stats) HashPartitionCost(in JoinInput) (float64, error) {
	cs, err := s.Class(in.Class)
	if err != nil {
		return 0, err
	}
	ls, err := s.Link(in.Class, in.Attribute)
	if err != nil {
		return 0, err
	}
	ds, err := s.Class(ls.Target)
	if err != nil {
		return 0, err
	}
	alpha := C(float64(cs.Card)*ls.Fan, ls.TotRef, in.Kc*ls.Fan)
	nbpg := s.ShardNbPg(ds, alpha)
	frac := 1.0
	if cs.Card > 0 {
		frac = in.Kc / float64(cs.Card)
	}
	return 3*frac*s.Disk.SEQCOST(float64(cs.NbPages)) + s.missFactor()*s.Disk.RNDCOST(nbpg), nil
}

// FusionCost prices the collection-fused join: the left input's references
// are deduplicated globally (the same color estimate α the hash join uses
// for its probe side) and fetched in one page-ordered sweep over D's
// distinct pages, with no scan of D and no partition passes:
//
//	fc = RNDCOST(nbpg_c) + RNDCOST(nbpg(D, α)) + k_c*fan*CPUCOST
//	α  = c(|C|*fan, totref, k_c*fan)
//
// The first term drops when C was already accessed (exactly as in the
// forward formula); the CPU term charges the per-occurrence partition and
// dedup work, so fusion only beats forward traversal when reference sharing
// genuinely collapses the probe's page count.
func (s *Stats) FusionCost(in JoinInput) (float64, error) {
	cs, err := s.Class(in.Class)
	if err != nil {
		return 0, err
	}
	ls, err := s.Link(in.Class, in.Attribute)
	if err != nil {
		return 0, err
	}
	ds, err := s.Class(ls.Target)
	if err != nil {
		return 0, err
	}
	srcCost := 0.0
	if !in.CAccessed {
		srcCost = s.Disk.RNDCOST(s.ShardNbPg(cs, in.Kc))
	}
	alpha := C(float64(cs.Card)*ls.Fan, ls.TotRef, in.Kc*ls.Fan)
	return srcCost + s.missFactor()*s.Disk.RNDCOST(s.ShardNbPg(ds, alpha)) + in.Kc*ls.Fan*CPUCost, nil
}

// BestJoin evaluates all applicable strategies and returns the cheapest
// with its cost — the "minimum cost join technique among the four join
// algorithms" used by Algorithm 8.2. When the Fusion knob is on and the
// join is fusion-shaped, the fused navigation join competes as a fifth
// strategy; it is priced last with a strict comparison, so ties preserve
// the paper's choices.
func (s *Stats) BestJoin(in JoinInput) (JoinMethod, float64, error) {
	best := ForwardTraversal
	bestCost, err := s.ForwardCost(in)
	if err != nil {
		return 0, 0, err
	}
	if c, err := s.BackwardCost(in); err == nil && c < bestCost {
		best, bestCost = BackwardTraversal, c
	}
	if in.BJIdx != nil {
		k := in.Kc
		if in.Kd < k {
			k = in.Kd
		}
		if c, err := s.BJICost(in, k); err == nil && c < bestCost {
			best, bestCost = BinaryJoinIndex, c
		}
	}
	if c, err := s.HashPartitionCost(in); err == nil && c < bestCost {
		best, bestCost = HashPartition, c
	}
	if s.Fusion && in.FusionOK {
		if c, err := s.FusionCost(in); err == nil && c < bestCost {
			best, bestCost = FusionJoin, c
		}
	}
	return best, bestCost, nil
}

// PathTraversalCost is the forward-traversal cost F of evaluating a whole
// path expression starting from k objects of its first class: the Section
// 6.1 formula chained hop by hop — read the distinct pages of C_1 holding
// the k starting objects, then for each hop fetch the referenced objects of
// the next class at random:
//
//	F = RNDCOST(nbpg(C_1, k)) + Σ_i RNDCOST(fref_i * fan_i)
func (s *Stats) PathTraversalCost(p Path, k float64) (float64, error) {
	if len(p.Hops) == 0 {
		cs, err := s.Class(p.FinalClass)
		if err != nil {
			return 0, err
		}
		return s.Disk.SEQCOST(float64(cs.NbPages)), nil
	}
	first, err := s.Class(p.Hops[0].Class)
	if err != nil {
		return 0, err
	}
	total := s.Disk.RNDCOST(s.ShardNbPg(first, k))
	cur := k
	for i, h := range p.Hops {
		ls, err := s.Link(h.Class, h.Attribute)
		if err != nil {
			return 0, err
		}
		total += s.refFetchCost(ls, cur*ls.Fan)
		if cur, err = s.FRef(p, i+1, k); err != nil {
			return 0, err
		}
	}
	return total, nil
}
