package catalog

import (
	"fmt"

	"mood/internal/object"
	"mood/internal/storage"
)

// MorselPages is the canonical page-run length of extent scans: morsels
// carry at most this many consecutive chain-order pages of one shard's
// part, and the serial ExtentCursor visits parts in the same
// MorselPages-page round-robin rotation. Using one constant in both places
// is what makes the serial row order equal to the Seq-merged parallel row
// order at any fixed shard count.
const MorselPages = 4

// ExtentCursor is a pull-based scan over a class extent (optionally the
// whole IS-A closure, honoring the FROM clause's minus operator). Unlike
// ScanExtent/ScanClosure, which push every object through a callback, the
// cursor reads extent pages one at a time as the consumer asks for rows — a
// consumer that stops early stops paying for page reads, which is what makes
// the streaming executor's early termination observable on the simulated
// disk.
//
// On a sharded store the cursor rotates across the extent's parts in
// MorselPages-page runs (part 0 pages 0..3, part 1 pages 0..3, …, part 0
// pages 4..7, …), chasing each part's page chain lazily; on a single store
// this degenerates to plain chain order.
type ExtentCursor struct {
	cat     *Catalog
	classes []string // extents still to visit, in closure order
	ci      int
	opened  bool
	done    bool
	closed  bool
	filter  func(oid storage.OID, v *object.Value) (bool, error)
	scratch pageScanScratch

	// Per-class rotation state: the extent being scanned, each part's next
	// chain page (0 = exhausted), the part currently being read and the
	// pages left in its run.
	ext       *storage.Extent
	partPids  []storage.PageID
	live      int // parts not yet exhausted
	part      int
	runLeft   int
	buf       []scanned
	bi        int
}

type scanned struct {
	oid storage.OID
	val object.Value
}

// pageScanScratch holds the reusable per-page buffers of a batched extent
// scan. The zero value is ready to use; the slices grow to one page's
// record count and are reused for every subsequent page.
type pageScanScratch struct {
	recs []storage.ScanRecord // zero-copy record batch (aliases the frame)
	oids []storage.OID
	vals []*object.Value // cache-hit pointers; nil marks a decode
	dec  []object.Value  // decoded cache misses, in record order
}

// scanPageBatched reads one page of one part of the extent and emits its
// surviving objects: inside the store lock it probes the object cache for
// the whole page in one batched lookup (one shard lock per page, not per
// object) and decodes only the misses; the filter and emit callbacks then
// run OUTSIDE the store lock on cache- or scratch-owned values, so a filter
// that resolves references may safely re-enter the store. Cache hits save
// only the decode, never the page read — read patterns are identical with
// and without the cache — and the promotion-free batch probe keeps one scan
// pass from churning the replacement lists. The object pointers handed to
// filter and emit are read-only and valid only until the next call with the
// same scratch. Returns the next page in the part's chain (0 at the end).
func (c *Catalog) scanPageBatched(e *storage.Extent, part int, pid storage.PageID, readahead bool, sc *pageScanScratch,
	filter func(oid storage.OID, v *object.Value) (bool, error),
	emit func(oid storage.OID, v *object.Value)) (storage.PageID, error) {
	sc.oids, sc.vals, sc.dec = sc.oids[:0], sc.vals[:0], sc.dec[:0]
	next, recs, err := c.store.ScanPartRecs(e, part, pid, readahead, sc.recs, func(batch []storage.ScanRecord) error {
		n0 := len(sc.oids)
		for i := range batch {
			sc.oids = append(sc.oids, batch[i].OID)
			sc.vals = append(sc.vals, nil)
		}
		if c.ocache != nil {
			c.ocache.GetScanBatch(sc.oids[n0:], sc.vals[n0:])
		}
		for i := range batch {
			if sc.vals[n0+i] != nil {
				continue
			}
			_, v, err := decodeObject(batch[i].Data)
			if err != nil {
				return err
			}
			sc.dec = append(sc.dec, v)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	sc.recs = recs
	di := 0
	for i, v := range sc.vals {
		if v == nil {
			v = &sc.dec[di]
			di++
		}
		if filter != nil {
			keep, err := filter(sc.oids[i], v)
			if err != nil {
				return 0, err
			}
			if !keep {
				continue
			}
		}
		emit(sc.oids[i], v)
	}
	return next, nil
}

// ErrCursorClosed is returned by Next on a cursor whose Close has run.
var ErrCursorClosed = fmt.Errorf("catalog: extent cursor is closed")

// extentClasses resolves the class list a scan of class covers: just the
// class itself, or its IS-A closure minus the excluded subtrees. Every
// extent is validated up front so iteration never reports a schema error
// halfway through a drained pipeline.
func (c *Catalog) extentClasses(class string, minus []string, closure bool) ([]string, error) {
	var classes []string
	if closure {
		all, err := c.Closure(class)
		if err != nil {
			return nil, err
		}
		excluded := map[string]bool{}
		for _, m := range minus {
			sub, err := c.Closure(m)
			if err != nil {
				return nil, err
			}
			for _, s := range sub {
				excluded[s] = true
			}
		}
		for _, name := range all {
			if !excluded[name] {
				classes = append(classes, name)
			}
		}
	} else {
		classes = []string{class}
	}
	for _, name := range classes {
		cl, err := c.Class(name)
		if err != nil {
			return nil, err
		}
		if cl.extent == nil {
			return nil, fmt.Errorf("catalog: %s has no extent", name)
		}
	}
	return classes, nil
}

// OpenExtentScan opens a cursor over the direct extent of class (closure
// false) or over its IS-A closure minus the excluded subtrees (closure
// true), mirroring ScanExtent and ScanClosure respectively.
func (c *Catalog) OpenExtentScan(class string, minus []string, closure bool) (*ExtentCursor, error) {
	classes, err := c.extentClasses(class, minus, closure)
	if err != nil {
		return nil, err
	}
	return &ExtentCursor{cat: c, classes: classes}, nil
}

// ScannedObject is one decoded object surfaced by a morsel read: the
// object's OID and its decoded value.
type ScannedObject struct {
	OID storage.OID
	Val object.Value
}

// ExtentMorsel is one unit of parallel scan work: a run of consecutive
// chain-order pages of one part (one shard) of a class extent. Morsels of a
// scan are numbered in the exact order a serial ExtentCursor would visit
// their pages, so a dispatcher that merges worker output by Seq reproduces
// the serial row order byte for byte.
type ExtentMorsel struct {
	Class string
	Seq   int
	// Part is the shard whose page chain the morsel's pages belong to.
	Part  int
	Pages []storage.PageID
	ext   *storage.Extent
}

// ExtentMorsels splits the extent scan of class (with the same minus/closure
// semantics as OpenExtentScan) into page-range morsels of at most pagesPer
// pages each. Page order within a part comes from the shard's chain-order
// page list; morsels rotate round-robin across the extent's parts (run 0 of
// every part, then run 1, …), so exchange workers get cross-shard
// parallelism for free and the Seq order matches the serial cursor's
// rotation when pagesPer == MorselPages.
func (c *Catalog) ExtentMorsels(class string, minus []string, closure bool, pagesPer int) ([]ExtentMorsel, error) {
	if pagesPer < 1 {
		pagesPer = 1
	}
	classes, err := c.extentClasses(class, minus, closure)
	if err != nil {
		return nil, err
	}
	var morsels []ExtentMorsel
	for _, name := range classes {
		cl, err := c.Class(name)
		if err != nil {
			return nil, err
		}
		parts := cl.extent.Parts()
		perPart := make([][]storage.PageID, parts)
		for p := 0; p < parts; p++ {
			pages, err := c.store.PartPageList(cl.extent, p)
			if err != nil {
				return nil, err
			}
			perPart[p] = pages
		}
		for run := 0; ; run++ {
			emitted := false
			for p := 0; p < parts; p++ {
				off := run * pagesPer
				if off >= len(perPart[p]) {
					continue
				}
				end := off + pagesPer
				if end > len(perPart[p]) {
					end = len(perPart[p])
				}
				morsels = append(morsels, ExtentMorsel{
					Class: name,
					Seq:   len(morsels),
					Part:  p,
					Pages: perPart[p][off:end],
					ext:   cl.extent,
				})
				emitted = true
			}
			if !emitted {
				break
			}
		}
	}
	return morsels, nil
}

// ReadMorsel reads and decodes the objects of one morsel. It is safe to
// call from concurrent worker goroutines: page reads go through the owning
// shard's store lock and buffer pool.
func (c *Catalog) ReadMorsel(m *ExtentMorsel) ([]ScannedObject, error) {
	return c.ReadMorselFiltered(m, nil)
}

// ReadMorselFiltered is ReadMorsel with a predicate pushed into the
// page-decode loop, mirroring ExtentCursor.SetFilter: the filter sees each
// object in place (v is read-only and may alias the object cache or the
// decode buffer) and rejected objects are never copied into the result.
// A nil filter keeps everything. Page reads are identical either way.
func (c *Catalog) ReadMorselFiltered(m *ExtentMorsel, filter func(oid storage.OID, v *object.Value) (bool, error)) ([]ScannedObject, error) {
	var out []ScannedObject
	// Readahead: request the whole morsel's page set up front, so loading
	// page i+1 overlaps decoding page i (no-op without a prefetcher).
	if len(m.Pages) > 1 {
		c.store.PrefetchPart(m.Part, m.Pages[1:]...)
	}
	var sc pageScanScratch
	for _, pid := range m.Pages {
		// Batched zero-copy page scan, as in ExtentCursor.fill; readahead is
		// off because the whole morsel was requested above. Cache inserts are
		// skipped on purpose: they would need a BeginFetch token predating
		// the page read.
		_, err := c.scanPageBatched(m.ext, m.Part, pid, false, &sc, filter,
			func(oid storage.OID, v *object.Value) {
				out = append(out, ScannedObject{OID: oid, Val: *v})
			})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Next returns the next object of the scan; ok is false when the scan is
// exhausted. Calling Next on a closed cursor is an error (exhaustion and
// abandonment are different states, and the morsel dispatcher relies on the
// distinction to catch use-after-close bugs).
func (it *ExtentCursor) Next() (storage.OID, object.Value, bool, error) {
	for {
		if it.closed {
			return storage.NilOID, object.Null, false, ErrCursorClosed
		}
		if it.done {
			return storage.NilOID, object.Null, false, nil
		}
		if it.bi < len(it.buf) {
			h := it.buf[it.bi]
			it.bi++
			return h.oid, h.val, true, nil
		}
		if err := it.fill(); err != nil {
			it.done = true
			return storage.NilOID, object.Null, false, err
		}
	}
}

// SetFilter pushes a predicate into the page-decode loop: it is evaluated
// against each scanned object in place (v aliases the decode buffer and is
// read-only), and rejected objects are never buffered or surfaced by
// Next/NextRef. Page reads are unchanged — the filter only decides what
// survives the page, which is how the fused scan-selection avoids a copy
// per rejected object. An error from the filter aborts the scan.
func (it *ExtentCursor) SetFilter(f func(oid storage.OID, v *object.Value) (bool, error)) {
	it.filter = f
}

// NextRef is Next without the 120-byte value copy: the returned pointer
// aliases the cursor's internal page buffer and is valid only until the
// next Next/NextRef call (a refill reuses the buffer's backing array). The
// vectorized scan operators use it to evaluate predicates in place,
// copying the value out only for rows that survive.
func (it *ExtentCursor) NextRef() (storage.OID, *object.Value, bool, error) {
	for {
		if it.closed {
			return storage.NilOID, nil, false, ErrCursorClosed
		}
		if it.done {
			return storage.NilOID, nil, false, nil
		}
		if it.bi < len(it.buf) {
			h := &it.buf[it.bi]
			it.bi++
			return h.oid, &h.val, true, nil
		}
		if err := it.fill(); err != nil {
			it.done = true
			return storage.NilOID, nil, false, err
		}
	}
}

// nextPage advances the rotation to the next page to read, returning false
// when the current class's extent is exhausted. Parts are visited cyclically
// in MorselPages-page runs, skipping exhausted parts — the exact (part, run)
// sequence ExtentMorsels emits.
func (it *ExtentCursor) nextPage() (part int, pid storage.PageID, ok bool) {
	if it.live == 0 {
		return 0, 0, false
	}
	if it.runLeft > 0 && it.partPids[it.part] != 0 {
		it.runLeft--
		return it.part, it.partPids[it.part], true
	}
	// Run finished (or the part ran dry): rotate to the next live part.
	start := it.part
	for i := 1; i <= len(it.partPids); i++ {
		p := (start + i) % len(it.partPids)
		if it.partPids[p] != 0 {
			it.part = p
			it.runLeft = MorselPages - 1
			return p, it.partPids[p], true
		}
	}
	return 0, 0, false
}

// fill buffers the next non-empty page's objects, advancing through the
// class list and each extent's part rotation; it sets done when every
// extent is exhausted. The buffer's backing array is reused across fills —
// Next hands out value copies, so nothing observes the overwrite.
func (it *ExtentCursor) fill() error {
	it.buf, it.bi = it.buf[:0], 0
	for {
		if it.ext == nil {
			// Advance to the next class's extent.
			if it.opened {
				it.ci++
			}
			if it.ci >= len(it.classes) {
				it.done = true
				return nil
			}
			cl, err := it.cat.Class(it.classes[it.ci])
			if err != nil {
				return err
			}
			it.ext = cl.extent
			parts := cl.extent.Parts()
			it.partPids = make([]storage.PageID, parts)
			it.live = 0
			for p := 0; p < parts; p++ {
				pid := it.cat.store.PartFirstPage(cl.extent, p)
				it.partPids[p] = pid
				if pid != 0 {
					it.live++
				}
			}
			// Start the rotation so nextPage's first advance lands on the
			// first live part in part order.
			it.part = parts - 1
			it.runLeft = 0
			it.opened = true
		}
		part, pid, ok := it.nextPage()
		if !ok { // extent exhausted
			it.ext = nil
			continue
		}
		// Batched zero-copy page scan: one cache probe and one decode batch
		// per page, the filter running outside the store lock, and the next
		// page's load requested before decoding starts (a no-op without a
		// prefetcher). A rejected object is never copied — only survivors
		// land in the buffer.
		next, err := it.cat.scanPageBatched(it.ext, part, pid, true, &it.scratch, it.filter,
			func(oid storage.OID, v *object.Value) {
				it.buf = append(it.buf, scanned{oid: oid, val: *v})
			})
		if err != nil {
			return err
		}
		it.partPids[part] = next
		if next == 0 {
			it.live--
		}
		if len(it.buf) > 0 {
			return nil
		}
	}
}

// Close releases the cursor. Closing early is how a pipeline abandons the
// remaining pages without reading them. Close is idempotent.
func (it *ExtentCursor) Close() {
	it.done, it.closed = true, true
	it.buf, it.ext, it.partPids = nil, nil, nil
}
