package rtree

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"mood/internal/storage"
)

func oidFor(i int) storage.OID {
	return storage.MakeOID(1, storage.PageID(i+1), storage.SlotID(i%1000))
}

func TestRectOps(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)
	c := NewRect(20, 20, 30, 30)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects do not intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects intersect")
	}
	if !a.Contains(NewRect(1, 1, 2, 2)) {
		t.Error("containment failed")
	}
	if a.Contains(b) {
		t.Error("partial overlap reported as contained")
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 15, 15}) {
		t.Errorf("Union = %v", u)
	}
	if got := a.Area(); got != 100 {
		t.Errorf("Area = %v", got)
	}
	if got := a.Enlargement(b); got != 125 {
		t.Errorf("Enlargement = %v", got)
	}
	// Normalization.
	n := NewRect(10, 10, 0, 0)
	if n != (Rect{0, 0, 10, 10}) {
		t.Errorf("NewRect did not normalize: %v", n)
	}
	// Boundary touch counts as intersection.
	if !a.Intersects(NewRect(10, 0, 20, 10)) {
		t.Error("edge-touching rects do not intersect")
	}
}

func TestInsertSearchWindow(t *testing.T) {
	tr := New(8)
	// 10x10 grid of unit squares.
	id := 0
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			tr.Insert(NewRect(float64(x), float64(y), float64(x)+0.9, float64(y)+0.9), oidFor(id))
			id++
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var hits []Entry
	tr.Search(NewRect(2.5, 2.5, 4.5, 4.5), func(e Entry) bool {
		hits = append(hits, e)
		return true
	})
	// Window [2.5,4.5]² intersects cells with x,y in {2,3,4} → 9 cells.
	if len(hits) != 9 {
		t.Errorf("window search returned %d, want 9", len(hits))
	}
	// Containment search: only cells fully within.
	var contained []Entry
	tr.SearchContained(NewRect(2, 2, 5, 5), func(e Entry) bool {
		contained = append(contained, e)
		return true
	})
	if len(contained) != 9 {
		t.Errorf("containment search returned %d, want 9", len(contained))
	}
	// Early stop.
	n := 0
	tr.Search(NewRect(0, 0, 10, 10), func(Entry) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestSplitGrowsHeight(t *testing.T) {
	tr := New(4)
	for i := 0; i < 1000; i++ {
		x := float64(i % 100)
		y := float64(i / 100)
		tr.Insert(Point(x, y), oidFor(i))
	}
	if tr.Height() < 3 {
		t.Errorf("Height = %d after 1000 inserts at max=4", tr.Height())
	}
	// Everything still findable.
	count := 0
	tr.Search(NewRect(-1, -1, 101, 101), func(Entry) bool { count++; return true })
	if count != 1000 {
		t.Errorf("full window found %d, want 1000", count)
	}
}

func TestNearest(t *testing.T) {
	tr := New(8)
	for i := 0; i < 100; i++ {
		tr.Insert(Point(float64(i), 0), oidFor(i))
	}
	got := tr.Nearest(42.4, 0, 3)
	if len(got) != 3 {
		t.Fatalf("Nearest returned %d", len(got))
	}
	if got[0].OID != oidFor(42) {
		t.Errorf("nearest = %v, want point 42", got[0])
	}
	wantSet := map[storage.OID]bool{oidFor(42): true, oidFor(43): true, oidFor(41): true}
	for _, e := range got {
		if !wantSet[e.OID] {
			t.Errorf("unexpected neighbour %v", e.OID)
		}
	}
	// k larger than the tree.
	all := tr.Nearest(0, 0, 1000)
	if len(all) != 100 {
		t.Errorf("Nearest(k>n) returned %d", len(all))
	}
	if tr.Nearest(0, 0, 0) != nil {
		t.Error("Nearest(k=0) != nil")
	}
}

func TestDeleteAndCondense(t *testing.T) {
	tr := New(4)
	type item struct {
		r   Rect
		oid storage.OID
	}
	var items []item
	for i := 0; i < 300; i++ {
		it := item{Point(float64(i%30), float64(i/30)), oidFor(i)}
		items = append(items, it)
		tr.Insert(it.r, it.oid)
	}
	for i := 0; i < 300; i += 2 {
		if err := tr.Delete(items[i].r, items[i].oid); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if tr.Len() != 150 {
		t.Errorf("Len = %d", tr.Len())
	}
	count := 0
	tr.Search(NewRect(-1, -1, 31, 31), func(e Entry) bool {
		count++
		// Only odd items should remain.
		found := false
		for i := 1; i < 300; i += 2 {
			if items[i].oid == e.OID {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("deleted entry %v still present", e.OID)
		}
		return true
	})
	if count != 150 {
		t.Errorf("survivors = %d", count)
	}
	if err := tr.Delete(items[0].r, items[0].oid); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
}

func TestRandomizedAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New(6)
	var entries []Entry
	for i := 0; i < 2000; i++ {
		r := NewRect(rng.Float64()*1000, rng.Float64()*1000,
			rng.Float64()*1000, rng.Float64()*1000)
		e := Entry{r, oidFor(i)}
		entries = append(entries, e)
		tr.Insert(r, e.OID)
	}
	// Delete a random 25%.
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	cut := len(entries) / 4
	for _, e := range entries[:cut] {
		if err := tr.Delete(e.Rect, e.OID); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	entries = entries[cut:]

	for q := 0; q < 50; q++ {
		w := NewRect(rng.Float64()*1000, rng.Float64()*1000,
			rng.Float64()*1000, rng.Float64()*1000)
		want := map[storage.OID]bool{}
		for _, e := range entries {
			if e.Rect.Intersects(w) {
				want[e.OID] = true
			}
		}
		got := map[storage.OID]bool{}
		tr.Search(w, func(e Entry) bool { got[e.OID] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d hits, want %d", q, len(got), len(want))
		}
		for oid := range want {
			if !got[oid] {
				t.Fatalf("query %d: missing %v", q, oid)
			}
		}
	}

	// Nearest-neighbour agrees with linear scan.
	for q := 0; q < 20; q++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		type dd struct {
			oid storage.OID
			d   float64
		}
		var lin []dd
		for _, e := range entries {
			lin = append(lin, dd{e.OID, e.Rect.distSq(x, y)})
		}
		sort.Slice(lin, func(i, j int) bool { return lin[i].d < lin[j].d })
		got := tr.Nearest(x, y, 5)
		if len(got) != 5 {
			t.Fatalf("Nearest returned %d", len(got))
		}
		for i, e := range got {
			gd := e.Rect.distSq(x, y)
			if math.Abs(gd-lin[i].d) > 1e-9 {
				t.Fatalf("NN rank %d: dist %g, linear scan %g", i, gd, lin[i].d)
			}
		}
	}
}

func BenchmarkRTreeInsert(b *testing.B) {
	tr := New(16)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(Point(rng.Float64()*1e6, rng.Float64()*1e6), oidFor(i))
	}
}

func BenchmarkRTreeSearch(b *testing.B) {
	tr := New(16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		tr.Insert(Point(rng.Float64()*1e6, rng.Float64()*1e6), oidFor(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*1e6, rng.Float64()*1e6
		tr.Search(NewRect(x, y, x+1000, y+1000), func(Entry) bool { return true })
	}
}
