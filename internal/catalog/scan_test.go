package catalog

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mood/internal/storage"
)

// fillClosure populates Vehicle and its subclasses with enough objects to
// span several extent pages each, returning the per-class counts.
func fillClosure(t *testing.T, c *Catalog) map[string]int {
	t.Helper()
	counts := map[string]int{"Vehicle": 150, "Automobile": 90, "JapaneseAuto": 60}
	id := int32(0)
	for _, class := range []string{"Vehicle", "Automobile", "JapaneseAuto"} {
		for i := 0; i < counts[class]; i++ {
			id++
			if _, err := c.CreateObject(class, vehicleValue(id, 1000+id, storage.NilOID, storage.NilOID)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return counts
}

// TestExtentCursorCloseSemantics: double Close is idempotent and Next after
// Close reports ErrCursorClosed rather than quietly claiming exhaustion.
func TestExtentCursorCloseSemantics(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	fillClosure(t, c)

	cur, err := c.OpenExtentScan("Vehicle", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := cur.Next(); err != nil || !ok {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	cur.Close()
	cur.Close() // must be idempotent
	if _, _, ok, err := cur.Next(); ok || !errors.Is(err, ErrCursorClosed) {
		t.Errorf("Next after Close: ok=%v err=%v, want ErrCursorClosed", ok, err)
	}

	// An exhausted-but-unclosed cursor still reports plain exhaustion.
	cur2, err := c.OpenExtentScan("JapaneseAuto", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, ok, err := cur2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if _, _, ok, err := cur2.Next(); ok || err != nil {
		t.Errorf("Next after exhaustion: ok=%v err=%v, want clean false", ok, err)
	}
}

// TestExtentCursorHalfDrainedReleasesPages: abandoning a cursor mid-extent
// leaves no page pinned and stops paying for page reads.
func TestExtentCursorHalfDrainedReleasesPages(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	fillClosure(t, c)
	pool := c.Store().Pool()

	cur, err := c.OpenExtentScan("Vehicle", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, ok, err := cur.Next(); err != nil || !ok {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
	}
	cur.Close()
	if n := pool.PinnedPages(); n != 0 {
		t.Errorf("half-drained cursor left %d pages pinned", n)
	}
	reads := pool.Disk().Stats().Reads()
	if _, _, _, err := cur.Next(); !errors.Is(err, ErrCursorClosed) {
		t.Errorf("Next on abandoned cursor: %v", err)
	}
	if got := pool.Disk().Stats().Reads(); got != reads {
		t.Errorf("abandoned cursor still read %d pages", got-reads)
	}
}

// TestParallelExtentMorselsCoverSerialScan: the page-range morsels of a
// closure scan, read concurrently and concatenated in Seq order, surface
// exactly the objects of a serial cursor in exactly its order.
func TestParallelExtentMorselsCoverSerialScan(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	fillClosure(t, c)

	for _, tc := range []struct {
		name    string
		minus   []string
		closure bool
	}{
		{"closure", nil, true},
		{"direct", nil, false},
		{"minus", []string{"JapaneseAuto"}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cur, err := c.OpenExtentScan("Vehicle", tc.minus, tc.closure)
			if err != nil {
				t.Fatal(err)
			}
			var want []storage.OID
			for {
				oid, _, ok, err := cur.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				want = append(want, oid)
			}
			cur.Close()

			morsels, err := c.ExtentMorsels("Vehicle", tc.minus, tc.closure, 2)
			if err != nil {
				t.Fatal(err)
			}
			results := make([][]ScannedObject, len(morsels))
			var wg sync.WaitGroup
			errs := make(chan error, len(morsels))
			for i := range morsels {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					objs, err := c.ReadMorsel(&morsels[i])
					if err != nil {
						errs <- err
						return
					}
					results[morsels[i].Seq] = objs
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			var got []storage.OID
			for _, objs := range results {
				for _, o := range objs {
					got = append(got, o.OID)
				}
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("morsel order diverged from serial scan:\nserial %d oids\nmorsel %d oids", len(want), len(got))
			}
			if n := c.Store().Pool().PinnedPages(); n != 0 {
				t.Errorf("morsel readers left %d pages pinned", n)
			}
		})
	}
}
