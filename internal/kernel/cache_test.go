package kernel

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mood/internal/exec"
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/sql"
	"mood/internal/storage"
	"mood/internal/testutil"
	"mood/internal/vehicledb"
)

// cacheOptions opens the kernel with the decoded-object cache and buffer-
// pool readahead on — the configuration the cache tests exercise against a
// default (cache-off) kernel.
func cacheOptions() Options {
	opts := DefaultOptions()
	opts.ObjectCacheBytes = 1 << 20
	opts.PrefetchWorkers = 2
	return opts
}

// renderSortedResult renders a Result with its row lines sorted: the cached
// kernel's cost knobs may legitimately pick a different plan (and thus a
// different row order on ORDER-BY-free queries), so the cached/uncached
// differentials compare row multisets, not orderings.
func renderSortedResult(res *Result) string {
	lines := strings.Split(strings.TrimRight(renderResult(res), "\n"), "\n")
	if len(lines) > 2 {
		sort.Strings(lines[2:]) // keep header + separator in place
	}
	return strings.Join(lines, "\n") + "\n"
}

// populateVehicles loads the standard vehicle fixture and refreshes stats.
func populateVehicles(t *testing.T, db *DB, seed int64) {
	t.Helper()
	if err := vehicledb.DefineSchema(db.Cat); err != nil {
		t.Fatal(err)
	}
	cfg := vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: seed,
	}
	if _, err := vehicledb.Populate(db.Cat, cfg); err != nil {
		t.Fatal(err)
	}
	if err := db.RefreshStats(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheGoldenSuiteDifferential replays the full MOODSQL golden script
// against two kernels — one default, one with the object cache and
// readahead on — and demands byte-identical rendered results for every
// SELECT. DDL/DML advance both databases identically, so each query pair
// sees the same state; the cached kernel's Update/Delete invalidation runs
// on the live script's mutations.
func TestCacheGoldenSuiteDifferential(t *testing.T) {
	script, err := os.ReadFile(filepath.Join("testdata", "basic.moodsql"))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Open(cacheOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()

	selects := 0
	for _, stmt := range splitScript(string(script)) {
		parsed, err := sql.Parse(stmt)
		if err != nil {
			continue
		}
		sel, isSelect := parsed.(*sql.Select)
		if !isSelect {
			plain.ExecuteStmt(parsed)
			cached.ExecuteStmt(parsed)
			continue
		}
		pplan, err := plain.optimize(sel)
		if err != nil {
			continue
		}
		cplan, err := cached.optimize(sel)
		if err != nil {
			t.Fatalf("%s: cached optimize failed where plain succeeded: %v", stmt, err)
		}
		pres, err := plain.Exec.Execute(pplan)
		if err != nil {
			t.Fatalf("%s: plain execute: %v", stmt, err)
		}
		cres, err := cached.Exec.Execute(cplan)
		if err != nil {
			t.Fatalf("%s: cached execute: %v", stmt, err)
		}
		got, want := renderSortedResult(exec.Extract(cres)), renderSortedResult(exec.Extract(pres))
		if got != want {
			t.Errorf("%s: cached result diverged:\n--- cached ---\n%s--- plain ---\n%s", stmt, got, want)
		}
		selects++
	}
	if selects == 0 {
		t.Fatal("golden script produced no successfully planned SELECTs")
	}
	if cached.ObjectCache().Hits() == 0 {
		t.Error("golden replay produced no cache hits; the cached path was never exercised")
	}
}

// TestCacheRandomQueriesDifferential runs randomized single-variable
// predicates (path expressions included, so the batched join strategies
// fire) against a cached and an uncached kernel over identically populated
// databases, demanding row-identical results.
func TestCacheRandomQueriesDifferential(t *testing.T) {
	plain, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Open(cacheOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	populateVehicles(t, plain, 11)
	populateVehicles(t, cached, 11)

	rng := rand.New(rand.NewSource(testutil.Seed(t, 20260806)))
	leaves := []func() expr.Expr{
		func() expr.Expr {
			ops := []expr.CmpOp{expr.OpEq, expr.OpNe, expr.OpGt, expr.OpLt, expr.OpGe, expr.OpLe}
			return &expr.Cmp{Op: ops[rng.Intn(len(ops))],
				L: expr.Path("v", "weight"),
				R: &expr.Const{Val: object.NewInt(int32(800 + rng.Intn(2200)))}}
		},
		func() expr.Expr {
			return &expr.Cmp{Op: expr.OpEq,
				L: expr.Path("v", "drivetrain", "transmission"),
				R: &expr.Const{Val: object.NewString([]string{"AUTOMATIC", "MANUAL", "CVT", "DCT"}[rng.Intn(4)])}}
		},
		func() expr.Expr {
			ops := []expr.CmpOp{expr.OpEq, expr.OpGt, expr.OpLe}
			return &expr.Cmp{Op: ops[rng.Intn(len(ops))],
				L: expr.Path("v", "drivetrain", "engine", "cylinders"),
				R: &expr.Const{Val: object.NewInt(int32(2 + 2*rng.Intn(16)))}}
		},
	}
	var build func(depth int) expr.Expr
	build = func(depth int) expr.Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			return leaves[rng.Intn(len(leaves))]()
		}
		switch rng.Intn(4) {
		case 0:
			return &expr.Not{E: build(depth - 1)}
		case 1, 2:
			return &expr.Logic{Op: expr.OpAnd, L: build(depth - 1), R: build(depth - 1)}
		default:
			return &expr.Logic{Op: expr.OpOr, L: build(depth - 1), R: build(depth - 1)}
		}
	}

	for trial := 0; trial < 60; trial++ {
		q := &sql.Select{
			Projs: []sql.ProjItem{{Expr: &expr.Var{Name: "v"}}},
			From:  []sql.FromItem{{Class: "Vehicle", Var: "v"}},
			Where: build(3),
		}
		pplan, err := plain.optimize(q)
		if err != nil {
			t.Fatalf("trial %d: plain optimize: %v", trial, err)
		}
		cplan, err := cached.optimize(q)
		if err != nil {
			t.Fatalf("trial %d: cached optimize: %v", trial, err)
		}
		pres, err := plain.Exec.Execute(pplan)
		if err != nil {
			t.Fatalf("trial %d: plain execute: %v", trial, err)
		}
		cres, err := cached.Exec.Execute(cplan)
		if err != nil {
			t.Fatalf("trial %d: cached execute: %v", trial, err)
		}
		got, want := renderSortedResult(exec.Extract(cres)), renderSortedResult(exec.Extract(pres))
		if got != want {
			t.Fatalf("trial %d: cached result diverged (where=%v):\n--- cached ---\n%s--- plain ---\n%s",
				trial, q.Where, got, want)
		}
	}
	if cached.ObjectCache().Hits() == 0 {
		t.Error("randomized suite produced no cache hits")
	}
}

// TestExplainAnalyzeCacheCounters checks the EXPLAIN ANALYZE contract with
// the cache and prefetcher on: the reported page total still equals the
// DiskSim read delta (cache hits are not reads; readahead loads are), and
// the rendered tree carries the cache and prefetched annotations.
func TestExplainAnalyzeCacheCounters(t *testing.T) {
	db, err := Open(cacheOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	populateVehicles(t, db, 7)

	const query = `SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`
	// Warm pass: populates the object cache.
	if _, err := db.Execute(query); err != nil {
		t.Fatal(err)
	}

	scope := db.Disk.Scope()
	res, err := db.Execute(`EXPLAIN ANALYZE ` + query)
	if err != nil {
		t.Fatal(err)
	}
	an := db.LastAnalyze
	if an == nil {
		t.Fatal("EXPLAIN ANALYZE did not populate LastAnalyze")
	}
	if !an.CacheEnabled || !an.PrefetchEnabled {
		t.Fatalf("analysis flags: cache=%v prefetch=%v, want both true", an.CacheEnabled, an.PrefetchEnabled)
	}
	if an.TotalPages != scope.Delta().Reads() {
		t.Errorf("analysis reports %d pages, DiskSim delta is %d", an.TotalPages, scope.Delta().Reads())
	}
	if an.CacheHits == 0 {
		t.Error("warm EXPLAIN ANALYZE observed no cache hits")
	}
	out := res.Rows[0][0].Str
	if !strings.Contains(out, "cache=") || !strings.Contains(out, "prefetched=") {
		t.Errorf("EXPLAIN ANALYZE output lacks cache annotations:\n%s", out)
	}

	// Cold pool, cold cache: the invariant must hold when readahead does
	// real loads between operator calls.
	db.ObjectCache().Reset()
	if err := db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	scope = db.Disk.Scope()
	if _, err := db.Execute(`EXPLAIN ANALYZE ` + query); err != nil {
		t.Fatal(err)
	}
	an = db.LastAnalyze
	if an.TotalPages != scope.Delta().Reads() {
		t.Errorf("cold analysis reports %d pages, DiskSim delta is %d", an.TotalPages, scope.Delta().Reads())
	}
	if an.TotalPages == 0 {
		t.Error("expected nonzero page reads on a cold buffer pool")
	}
}

// TestCacheWarmRunReadsFewerPages is the perf acceptance smoke check: a
// repeated path-traversal query against a warm object cache must issue
// strictly fewer simulated disk reads than its first (cold) run.
func TestCacheWarmRunReadsFewerPages(t *testing.T) {
	db, err := Open(cacheOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	populateVehicles(t, db, 3)

	// A projection-path dereference: Company's extent is never scanned, so
	// its pages are fetched at random per row — the access pattern the
	// object cache absorbs. (Join queries against small extents save
	// nothing here: their builds scan the whole target extent, leaving the
	// dereferenced pages pool-resident anyway.)
	const query = `SELECT v.manufacturer.name FROM Vehicle v WHERE v.weight < 900`
	if err := db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	cold := db.Disk.Scope()
	if _, err := db.Execute(query); err != nil {
		t.Fatal(err)
	}
	coldReads := cold.Delta().Reads()

	// Evict the buffer pool but keep the object cache: the warm run's
	// savings must come from cached decoded objects, not pool residency.
	if err := db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	warm := db.Disk.Scope()
	if _, err := db.Execute(query); err != nil {
		t.Fatal(err)
	}
	warmReads := warm.Delta().Reads()
	if warmReads >= coldReads {
		t.Errorf("warm run read %d pages, cold read %d; want strictly fewer", warmReads, coldReads)
	}
}

// TestCacheInvalidationTorture hammers the cache's epoch protocol: writer
// transactions update and delete objects while reader goroutines stream
// single and batched dereferences and extent scans through the cache. Run
// under -race. The closing coherence check demands that, after the storm,
// the cached view of every surviving object is byte-identical to a fresh
// decode from storage.
func TestCacheInvalidationTorture(t *testing.T) {
	opts := cacheOptions()
	// A tight budget forces evictions during the storm, exercising the
	// probation/protected shuffle concurrently with invalidation.
	opts.ObjectCacheBytes = 64 << 10
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.ExecuteScript(vehicleDDL); err != nil {
		t.Fatal(err)
	}

	const stable = 120
	const disposable = 60
	setup := db.Begin()
	var stableOIDs [stable]storage.OID
	for i := range stableOIDs {
		oid, err := setup.Create("Employee", employee(fmt.Sprintf("emp-%03d", i), int32(i)))
		if err != nil {
			t.Fatal(err)
		}
		stableOIDs[i] = oid
	}
	var doomed [disposable]storage.OID
	for i := range doomed {
		oid, err := setup.Create("Employee", employee("doomed", int32(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		doomed[i] = oid
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	// Writers: update the stable set (contended), delete the doomed set.
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for op := 0; op < 60; op++ {
				tx := db.Begin()
				i := rng.Intn(stable)
				v := employee(fmt.Sprintf("emp-%03d", i), int32(i))
				v.SetField("age", object.NewInt(int32(30+op)))
				if err := tx.Update(stableOIDs[i], v); err != nil {
					tx.Abort()
					continue // deadlock victim: retry-free is fine here
				}
				if op%4 == 0 {
					d := doomed[(w*20+op)%disposable]
					tx.Delete(d) // already-deleted is fine
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers: single Gets, batched Gets, and extent scans racing the storm.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for !stop.Load() {
				switch rng.Intn(3) {
				case 0:
					oid := stableOIDs[rng.Intn(stable)]
					if _, _, err := db.Cat.GetObject(oid); err != nil {
						t.Errorf("reader %d: GetObject(%s): %v", r, oid, err)
						return
					}
				case 1:
					batch := make([]storage.OID, 0, 16)
					for len(batch) < 16 {
						batch = append(batch, stableOIDs[rng.Intn(stable)])
					}
					if _, _, err := db.Cat.GetObjects(batch); err != nil {
						t.Errorf("reader %d: GetObjects: %v", r, err)
						return
					}
				default:
					db.Cat.ScanExtent("Employee", func(storage.OID, object.Value) bool { return true })
				}
			}
		}(r)
	}

	writers.Wait()
	stop.Store(true)
	readers.Wait()

	// Coherence: the (possibly cached) view of every stable object must be
	// byte-identical to a fresh decode from storage.
	for i, oid := range stableOIDs {
		cached, _, err := db.Cat.GetObject(oid)
		if err != nil {
			t.Fatalf("GetObject(%s): %v", oid, err)
		}
		db.ObjectCache().Invalidate(oid)
		fresh, _, err := db.Cat.GetObject(oid)
		if err != nil {
			t.Fatalf("fresh GetObject(%s): %v", oid, err)
		}
		if string(object.Marshal(cached)) != string(object.Marshal(fresh)) {
			t.Errorf("object %d (%s): cached view diverged from storage:\ncached: %s\nfresh:  %s",
				i, oid, cached, fresh)
		}
	}
}
