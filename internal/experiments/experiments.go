// Package experiments regenerates every table and figure of the paper's
// evaluation-relevant content: the algebra return-type tables (1–7), the
// cost-model parameter tables (8–10), the example-database statistics
// (13–15), the optimizer dictionaries (11, 12, 16, 17), the worked access
// plans of Examples 8.1 and 8.2, the execution-order figures (7.1, 7.2),
// and the ablation sweeps (join-method crossover, path-ordering benefit,
// index-selection rule, selectivity estimation accuracy). The moodbench
// command and the repository's benchmarks both drive this package.
package experiments

import (
	"fmt"
	"io"

	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/kernel"
	"mood/internal/stats"
	"mood/internal/storage"
	"mood/internal/vehicledb"
)

// Scale configures the synthetic database relative to the paper's Table 13
// cardinalities (20000/10000/10000/200000). Scale 1.0 is the paper's size;
// the default 0.1 runs in seconds.
type Scale float64

// Config converts the scale into generator cardinalities.
func (s Scale) Config() vehicledb.Config {
	f := float64(s)
	if f <= 0 {
		f = 0.1
	}
	scaled := func(n int) int {
		v := int(float64(n) * f)
		if v < 16 {
			v = 16
		}
		return v
	}
	return vehicledb.Config{
		Vehicles:    scaled(20000),
		DriveTrains: scaled(10000),
		Engines:     scaled(10000),
		Companies:   scaled(200000),
		Employees:   scaled(1000),
		Seed:        1,
	}
}

// Env is a built experiment environment: the populated database with
// collected statistics.
type Env struct {
	Scale Scale
	Cfg   vehicledb.Config
	DB    *vehicledb.DB
	Pool  *storage.BufferPool
	Stats *cost.Stats
}

// BuildEnv generates the example database at the given scale and collects
// its Table 8 statistics.
func BuildEnv(scale Scale) (*Env, error) {
	cfg := scale.Config()
	db, pool, err := vehicledb.Build(cfg, 1<<15)
	if err != nil {
		return nil, err
	}
	st, err := stats.Collect(db.Cat, cost.DefaultDisk())
	if err != nil {
		return nil, err
	}
	return &Env{Scale: scale, Cfg: cfg, DB: db, Pool: pool, Stats: st}, nil
}

// BuildKernelEnv opens a kernel database with the example schema and data
// at the given scale.
func BuildKernelEnv(scale Scale) (*kernel.DB, *vehicledb.DB, error) {
	db, err := kernel.Open(kernel.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	if err := vehicledb.DefineSchema(db.Cat); err != nil {
		return nil, nil, err
	}
	vdb, err := vehicledb.Populate(db.Cat, scale.Config())
	if err != nil {
		return nil, nil, err
	}
	if err := db.RefreshStats(); err != nil {
		return nil, nil, err
	}
	return db, vdb, nil
}

// PaperPathP1 is Example 8.1's P1: v.drivetrain.engine.cylinders = 2.
func PaperPathP1() cost.Path {
	return cost.Path{
		Hops: []cost.PathHop{
			{Class: "Vehicle", Attribute: "drivetrain"},
			{Class: "VehicleDriveTrain", Attribute: "engine"},
		},
		FinalClass: "VehicleEngine",
		FinalAttr:  "cylinders",
	}
}

// PaperPathP2 is Example 8.1's P2: v.manufacturer.name = 'BMW'.
func PaperPathP2() cost.Path {
	return cost.Path{
		Hops:       []cost.PathHop{{Class: "Vehicle", Attribute: "manufacturer"}},
		FinalClass: "Company",
		FinalAttr:  "name",
	}
}

// PaperStats is the statistics base exactly as printed in Tables 13–15.
func PaperStats() *cost.Stats {
	s := cost.NewStats(cost.DefaultDisk())
	s.SetClass(cost.ClassStats{Name: "Vehicle", Card: 20000, NbPages: 2000, Size: 400})
	s.SetClass(cost.ClassStats{Name: "VehicleDriveTrain", Card: 10000, NbPages: 750, Size: 300})
	s.SetClass(cost.ClassStats{Name: "VehicleEngine", Card: 10000, NbPages: 5000, Size: 2000})
	s.SetClass(cost.ClassStats{Name: "Company", Card: 200000, NbPages: 2500, Size: 500})
	s.SetAttr(cost.AttrStats{Class: "VehicleEngine", Attribute: "cylinders", Dist: 16, Max: 32, Min: 2, NotNull: 1})
	s.SetAttr(cost.AttrStats{Class: "Company", Attribute: "name", Dist: 200000, NotNull: 1})
	s.SetLink(cost.LinkStats{Class: "Vehicle", Attribute: "drivetrain", Target: "VehicleDriveTrain",
		Fan: 1, TotRef: 10000, TargetCard: 10000, NotNull: 1})
	s.SetLink(cost.LinkStats{Class: "Vehicle", Attribute: "manufacturer", Target: "Company",
		Fan: 1, TotRef: 20000, TargetCard: 200000, NotNull: 1})
	s.SetLink(cost.LinkStats{Class: "VehicleDriveTrain", Attribute: "engine", Target: "VehicleEngine",
		Fan: 1, TotRef: 10000, TargetCard: 10000, NotNull: 1})
	return s
}

// section prints a header.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, dashes(len(title)))
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// ensureIndex creates a B+-tree index if absent (idempotent helper).
func ensureIndex(cat *catalog.Catalog, name, class, attr string) error {
	for _, ix := range cat.Indexes() {
		if ix.Name == name {
			return nil
		}
	}
	_, err := cat.CreateIndex(name, class, attr, catalog.BTreeIndex, false)
	return err
}
