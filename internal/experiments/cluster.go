package experiments

import (
	"fmt"
	"io"
	"time"

	"mood/internal/catalog"
	"mood/internal/kernel"
	"mood/internal/storage"
)

// The clustering benchmark follows the OO1/OCB protocol for physical object
// clustering: populate a database whose reference graph is DELIBERATELY at
// odds with the insertion layout, measure a cold traversal of the hot
// working set, let the tracer observe the traversal, reorganize, and
// measure the same traversal cold again. The rows and their fingerprint
// must not change; the simulated disk reads must collapse, because the hot
// objects — scattered over nearly every page of their extents at insert
// time — now co-reside on a handful of pages.

const (
	// clusterItems/clusterOwners size the two extents. Items reference
	// owner i%clusterOwners, so consecutive hot items (stride apart) land
	// on owners spread across the whole owner extent.
	clusterItems  = 6000
	clusterOwners = 3000
	// clusterHotItems is the traversed working set; clusterHotStride
	// scatters it uniformly over the item extent's pages.
	clusterHotItems  = 240
	clusterHotStride = 25
	// clusterTracePasses is how many observed passes feed the tracer
	// before reorganization (the cold measured pass also counts).
	clusterTracePasses = 2
	// clusterFrames sizes the page pool: big enough to build the database,
	// irrelevant to the cold measurements (which evict it first).
	clusterFrames = 2048
)

// ClusterEntry is one measured cold traversal of the hot working set.
type ClusterEntry struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Reads       int64   `json:"reads"`
	SimulatedMs float64 `json:"simulated_ms"`
	WallMs      float64 `json:"wall_ms"`
}

// BenchCluster is the JSON artifact written by moodbench -cluster-json.
// Rows, Reads, SimulatedMs, Moved, PagesCompacted and ReadReduction are
// deterministic (seeded data, simulated disk); WallMs varies run to run.
type BenchCluster struct {
	Items             int     `json:"items"`
	Owners            int     `json:"owners"`
	HotItems          int     `json:"hot_items"`
	TracePasses       int     `json:"trace_passes"`
	LatencyUsPerSimMs float64 `json:"latency_us_per_sim_ms"`
	// Scattered is the cold traversal before reorganization, Clustered the
	// same traversal (same rows, same fingerprint) after it.
	Scattered ClusterEntry `json:"scattered"`
	Clustered ClusterEntry `json:"clustered"`
	// Moved is the records the reorganizer migrated; PagesCompacted the
	// vacated source pages the trailing compaction freed or parked out of
	// the scan chains.
	Moved          int `json:"moved"`
	PagesCompacted int `json:"pages_compacted"`
	// ReadReduction is the acceptance number: scattered reads over
	// clustered reads for the identical traversal.
	ReadReduction float64 `json:"read_reduction"`
}

// clusterTraversalPass dereferences item.owner for every hot item through
// the catalog's batched path (the tracer's observation point) and returns
// the row count plus an order-sensitive fingerprint over both ends of every
// edge.
func clusterTraversalPass(cat *catalog.Catalog, sample []storage.OID) (int, uint64, error) {
	items, _, err := cat.GetObjects(sample)
	if err != nil {
		return 0, 0, err
	}
	refs, err := refField(items, "owner")
	if err != nil {
		return 0, 0, err
	}
	owners, _, err := cat.GetObjects(refs)
	if err != nil {
		return 0, 0, err
	}
	var fp uint64 = 14695981039346656037
	for i, it := range items {
		k, ok := it.Field("k")
		if !ok {
			return 0, 0, fmt.Errorf("cluster bench: item without k")
		}
		fp = fpMix(fp, uint64(k.Int))
		tag, ok := owners[i].Field("tag")
		if !ok {
			return 0, 0, fmt.Errorf("cluster bench: owner without tag")
		}
		fp = fpMix(fp, uint64(tag.Int))
	}
	return len(owners), fp, nil
}

// measureClusterCold evicts every page pool and runs one traversal pass
// with latency replay, returning the entry and the fingerprint.
func measureClusterCold(db *kernel.DB, name string, sample []storage.OID, latency time.Duration) (ClusterEntry, uint64, error) {
	var e ClusterEntry
	for _, sh := range db.Shards {
		if err := sh.Pool.EvictAll(); err != nil {
			return e, 0, err
		}
	}
	if oc := db.ObjectCache(); oc != nil {
		oc.Reset()
	}
	var reads0 int64
	var sim0 float64
	for _, sh := range db.Shards {
		s := sh.Disk.Stats()
		reads0 += s.Reads()
		sim0 += s.TimeMs
		sh.Disk.SetLatency(latency)
	}
	start := time.Now()
	rows, fp, err := clusterTraversalPass(db.Cat, sample)
	wall := time.Since(start)
	var reads int64
	var sim float64
	for _, sh := range db.Shards {
		sh.Disk.SetLatency(0)
		s := sh.Disk.Stats()
		reads += s.Reads()
		sim += s.TimeMs
	}
	if err != nil {
		return e, 0, err
	}
	e = ClusterEntry{
		Name:        name,
		Rows:        rows,
		Reads:       reads - reads0,
		SimulatedMs: round3(sim - sim0),
		WallMs:      round3(float64(wall) / float64(time.Millisecond)),
	}
	return e, fp, nil
}

// MeasureCluster runs the clustering protocol: scattered cold traversal,
// traced warm passes, online reorganization, clustered cold traversal. The
// function enforces the acceptance contract itself — identical rows and
// fingerprint across the two cold measurements, and at least a 2x drop in
// simulated reads — so a clustering regression surfaces as a measurement
// error rather than a silently degraded artifact. Pass latency <= 0 for
// DefaultParallelLatency.
func MeasureCluster(latency time.Duration) (*BenchCluster, error) {
	if latency <= 0 {
		latency = DefaultParallelLatency
	}
	opts := kernel.DefaultOptions()
	opts.BufferFrames = clusterFrames
	opts.ClusterSampleEvery = 1
	db, err := kernel.Open(opts)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := defineShardBenchSchema(db.Cat); err != nil {
		return nil, err
	}

	// Owners first, then items referencing owner i%owners: the traversed
	// hot items (every clusterHotStride-th) reference owners spread across
	// the whole owner extent, so the scattered cold traversal touches
	// nearly every page of both extents.
	ownerOIDs := make([]storage.OID, clusterOwners)
	for i := range ownerOIDs {
		if ownerOIDs[i], err = db.Cat.CreateObject("BenchOwner", shardOwnerTuple(i)); err != nil {
			return nil, err
		}
	}
	itemOIDs := make([]storage.OID, clusterItems)
	for i := range itemOIDs {
		if itemOIDs[i], err = db.Cat.CreateObject("BenchItem", shardItemTuple(i, ownerOIDs[i%clusterOwners])); err != nil {
			return nil, err
		}
	}
	sample := make([]storage.OID, clusterHotItems)
	for j := range sample {
		sample[j] = itemOIDs[(j*clusterHotStride)%clusterItems]
	}

	out := &BenchCluster{
		Items:             clusterItems,
		Owners:            clusterOwners,
		HotItems:          clusterHotItems,
		TracePasses:       1 + clusterTracePasses,
		LatencyUsPerSimMs: float64(latency) / float64(time.Microsecond),
	}

	scattered, fp0, err := measureClusterCold(db, "scattered", sample, latency)
	if err != nil {
		return nil, fmt.Errorf("scattered traversal: %w", err)
	}
	out.Scattered = scattered

	// Feed the tracer a few more observed passes, then reorganize online.
	for p := 0; p < clusterTracePasses; p++ {
		if _, _, err := clusterTraversalPass(db.Cat, sample); err != nil {
			return nil, fmt.Errorf("trace pass %d: %w", p, err)
		}
	}
	rs, err := db.Reorganize()
	if err != nil {
		return nil, fmt.Errorf("reorganize: %w", err)
	}
	if rs.Moved == 0 {
		return nil, fmt.Errorf("reorganize moved nothing: the tracer observed no traversal")
	}
	out.Moved = rs.Moved
	out.PagesCompacted = rs.PagesFreed

	clustered, fp1, err := measureClusterCold(db, "clustered", sample, latency)
	if err != nil {
		return nil, fmt.Errorf("clustered traversal: %w", err)
	}
	out.Clustered = clustered

	if clustered.Rows != scattered.Rows || fp1 != fp0 {
		return nil, fmt.Errorf("reorganization changed the traversal result: %d rows (fp %x) vs %d rows (fp %x)",
			clustered.Rows, fp1, scattered.Rows, fp0)
	}
	if clustered.Reads <= 0 {
		return nil, fmt.Errorf("clustered traversal reported %d reads", clustered.Reads)
	}
	out.ReadReduction = round3(float64(scattered.Reads) / float64(clustered.Reads))
	if out.ReadReduction < 2 {
		return nil, fmt.Errorf("clustering read reduction %.2fx below the 2x acceptance floor (%d -> %d reads)",
			out.ReadReduction, scattered.Reads, clustered.Reads)
	}
	return out, nil
}

// ClusterSweep prints the MeasureCluster protocol as a table.
func ClusterSweep(w io.Writer, _ *Env) error {
	section(w, "Reference clustering. Cold hot-set traversal, scattered vs reorganized")
	res, err := MeasureCluster(0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "extents: %d items, %d owners; hot set %d items; %d traced passes; latency replay %.0f us/sim-ms\n\n",
		res.Items, res.Owners, res.HotItems, res.TracePasses, res.LatencyUsPerSimMs)
	fmt.Fprintf(w, "%-12s %6s %7s %10s %10s\n", "layout", "rows", "reads", "sim ms", "wall ms")
	for _, e := range []ClusterEntry{res.Scattered, res.Clustered} {
		fmt.Fprintf(w, "%-12s %6d %7d %10.2f %10.2f\n", e.Name, e.Rows, e.Reads, e.SimulatedMs, e.WallMs)
	}
	fmt.Fprintf(w, "\nreorganizer moved %d records, compacted %d source pages; read reduction %.2fx\n",
		res.Moved, res.PagesCompacted, res.ReadReduction)
	return nil
}
