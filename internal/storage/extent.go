package storage

import "sync/atomic"

// Extent is a named record collection spread over the parts of a Store: one
// heap file per shard, all carrying the extent's name in their own shard's
// file directory. A single-store extent has exactly one part; a ShardedStore
// extent has one part per shard and spreads inserts round-robin across them.
// The catalog holds one Extent per class (and per system table) and never
// touches the underlying files directly.
type Extent struct {
	// Name is the extent's directory name, identical in every shard.
	Name string
	// parts holds the per-shard heap files, indexed by shard id.
	parts []*File
	// rr is the round-robin insert cursor. Placement is rotation, not
	// hashing: it keeps the parts within one record of each other in
	// cardinality, which is what makes per-shard page counts (and therefore
	// simulated read counts) independent of the shard count for
	// fixed-size-record workloads.
	rr atomic.Uint32
}

// Parts returns the number of per-shard parts backing the extent.
func (e *Extent) Parts() int { return len(e.parts) }

// NumRecords returns the record count across all parts.
func (e *Extent) NumRecords() int {
	n := 0
	for _, f := range e.parts {
		n += f.NumRecords()
	}
	return n
}

// NumPages returns the data-page count across all parts.
func (e *Extent) NumPages() int {
	n := 0
	for _, f := range e.parts {
		n += f.NumPages()
	}
	return n
}

// PartPages returns the per-part data-page counts, indexed by shard. The
// cost model prices partitioned scans and reference fetches per shard from
// this vector.
func (e *Extent) PartPages() []int {
	out := make([]int, len(e.parts))
	for i, f := range e.parts {
		out[i] = f.NumPages()
	}
	return out
}

// PartFileID returns the file id backing one part. The kernel's reorganizer
// maps the clustering tracer's per-file observations back to class extents
// through this.
func (e *Extent) PartFileID(part int) FileID { return e.parts[part].ID }

// nextPart returns the part the next insert is routed to.
func (e *Extent) nextPart() int {
	if len(e.parts) == 1 {
		return 0
	}
	return int(e.rr.Add(1)-1) % len(e.parts)
}

// Store is the record-storage contract the catalog (and everything above
// it) programs against: OID-addressed reads and writes plus extent-granular
// creation, scanning and morsel primitives. Two implementations exist —
// the concrete *ObjectStore (one part per extent, the paper's monolithic
// ESM) and *ShardedStore (N independent ObjectStores, each with its own
// buffer pool, simulated disk and WAL; extents get one part per shard and
// OIDs route reads by their shard field).
//
// The part-indexed methods (PartFirstPage, PartPageList, ScanPartRecs,
// PrefetchPart) exist so scans address one shard's page chain at a time:
// page ids are only meaningful within their own shard's disk.
type Store interface {
	// CreateExtent creates the named extent: one heap file per shard.
	CreateExtent(name string) (*Extent, error)
	// OpenExtent opens an existing extent by directory name.
	OpenExtent(name string) (*Extent, error)
	// DropExtent removes the extent's file (and data pages) in every shard.
	DropExtent(name string) error

	// InsertExtent stores data as a new record of the extent and returns
	// its OID, tagged with the shard that holds it.
	InsertExtent(e *Extent, data []byte) (OID, error)
	// Get returns a copy of the record addressed by oid.
	Get(oid OID) ([]byte, error)
	// Update replaces the record addressed by oid; the OID is stable.
	Update(oid OID, data []byte) error
	// Delete removes the record addressed by oid.
	Delete(oid OID) error
	// FetchBatch returns the records of a batch of OIDs, one result slot
	// per input OID in input order.
	FetchBatch(oids []OID) ([][]byte, error)
	// ScanExtent iterates every record of the extent, part by part, each
	// part in page-chain order; returning false stops the scan.
	ScanExtent(e *Extent, fn func(OID, []byte) bool) error

	// Shards returns the number of independent stores behind the interface.
	Shards() int
	// PartFirstPage returns the first data page of one part's chain (0 when
	// the part is empty).
	PartFirstPage(e *Extent, part int) PageID
	// PartPageList returns one part's data pages in chain order.
	PartPageList(e *Extent, part int) ([]PageID, error)
	// ScanPartRecs reads one page of one part, batch-delivering its records
	// to fn exactly as ObjectStore.ScanPageRecs does, and returns the next
	// page of that part's chain.
	ScanPartRecs(e *Extent, part int, pid PageID, readahead bool, scratch []ScanRecord, fn func(recs []ScanRecord) error) (PageID, []ScanRecord, error)
	// PrefetchPart requests background loads of one part's pages (no-op
	// without a prefetcher on that shard).
	PrefetchPart(part int, ids ...PageID)

	// SetInvalidator installs the object-cache invalidation hook on every
	// shard. Install once at open time, before the store is shared.
	SetInvalidator(inv CacheInvalidator)
	// SetBatchObserver installs the clustering observation hook on every
	// shard. Install once at open time, before the store is shared.
	SetBatchObserver(obs BatchObserver)

	// MigrateRecords relocates the given records (all owned by the named
	// part's shard) onto fresh pages of that part, in the order given,
	// leaving forward stubs so every OID stays valid. logPage, when
	// non-nil, receives a whole-page before/after image for every page the
	// migration mutates (see PageLogger). cont continues packing the tail
	// page (the previous batch's destination) instead of opening a fresh
	// one. Returns the records moved.
	MigrateRecords(e *Extent, part int, oids []OID, logPage PageLogger, cont bool) (int, error)
	// CompactExtent removes pages without record content from the extent's
	// scan chains: all-tombstone pages are freed, stub-only migration source
	// pages are parked (unlinked but kept allocated — Get still resolves the
	// stubs by direct page id). Returns the pages removed from the chains.
	CompactExtent(e *Extent) (int, error)

	// Pool returns shard 0's buffer pool. Index structures (B+-trees, hash
	// and join indexes) and the system directory live on shard 0; sharding
	// covers class extents, not index pages.
	Pool() *BufferPool
	// Files returns shard 0's file manager — the directory the catalog's
	// persistent root (DirPage) lives in.
	Files() *FileManager

	// ReadCount returns the cumulative simulated page reads summed across
	// every shard's disk. EXPLAIN ANALYZE totals are deltas of this sum.
	ReadCount() int64
	// ShardReads returns the cumulative simulated page reads per shard.
	ShardReads() []int64
}
