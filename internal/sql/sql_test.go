package sql

import (
	"math/rand"
	"strings"
	"testing"

	"mood/internal/expr"
	"mood/internal/object"
)

func parse(t *testing.T, in string) Statement {
	t.Helper()
	st, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	return st
}

func TestLexer(t *testing.T) {
	toks, err := Lex("SELECT c FROM EVERY Automobile - JapaneseAuto c WHERE c.x >= 4.5 AND c.name = 'O''Hara'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		kinds = append(kinds, tk.String())
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"SELECT", "EVERY", "-", ">=", "4.5", "'O'Hara'"} {
		if !strings.Contains(joined, want) {
			t.Errorf("lexer output missing %q: %s", want, joined)
		}
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("bad character accepted")
	}
	// Comments.
	toks, err = Lex("SELECT -- a comment\n c FROM C c")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 6 { // SELECT c FROM C c EOF
		t.Errorf("comment not skipped: %v", toks)
	}
}

func TestParsePaperDDL(t *testing.T) {
	// The paper's Section 3.1 CREATE CLASS Vehicle, verbatim structure.
	st := parse(t, `
		CREATE CLASS Vehicle
		TUPLE (
			id Integer,
			weight Integer,
			drivetrain REFERENCE (VehicleDriveTrain),
			manufacturer REFERENCE (Company)
		)
		METHODS:
			lbweight () Integer,
			weight () Integer`)
	cc, ok := st.(*CreateClass)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if cc.Name != "Vehicle" || cc.IsType {
		t.Errorf("name/type: %+v", cc)
	}
	if len(cc.Fields) != 4 {
		t.Fatalf("fields = %d", len(cc.Fields))
	}
	if cc.Fields[2].Type.Kind != object.KindReference || cc.Fields[2].Type.Target != "VehicleDriveTrain" {
		t.Errorf("drivetrain type = %s", cc.Fields[2].Type)
	}
	if len(cc.Methods) != 2 || cc.Methods[0].Name != "lbweight" {
		t.Errorf("methods = %+v", cc.Methods)
	}
	if cc.Methods[0].Return.Kind != object.KindInteger {
		t.Errorf("lbweight return = %s", cc.Methods[0].Return)
	}

	st = parse(t, "CREATE CLASS JapaneseAuto INHERITS FROM Automobile")
	cc = st.(*CreateClass)
	if len(cc.Supers) != 1 || cc.Supers[0] != "Automobile" {
		t.Errorf("supers = %v", cc.Supers)
	}

	// String(32) and nested constructors.
	st = parse(t, `CREATE CLASS VehicleDriveTrain TUPLE (
		engine REFERENCE (VehicleEngine),
		transmission String(32),
		tags SET (String),
		history LIST (TUPLE (year Integer, note String)) )`)
	cc = st.(*CreateClass)
	if cc.Fields[1].Type.StrLen != 32 {
		t.Errorf("String(32) = %s", cc.Fields[1].Type)
	}
	if cc.Fields[2].Type.Kind != object.KindSet || cc.Fields[2].Type.Elem.Kind != object.KindString {
		t.Errorf("SET(String) = %s", cc.Fields[2].Type)
	}
	if cc.Fields[3].Type.Kind != object.KindList || cc.Fields[3].Type.Elem.Kind != object.KindTuple {
		t.Errorf("LIST(TUPLE) = %s", cc.Fields[3].Type)
	}
}

func TestParseCreateType(t *testing.T) {
	st := parse(t, "CREATE TYPE Address TUPLE (street String, city String)")
	cc := st.(*CreateClass)
	if !cc.IsType {
		t.Error("CREATE TYPE not marked as type")
	}
}

func TestParseCreateDropIndex(t *testing.T) {
	st := parse(t, "CREATE INDEX cyl ON VehicleEngine(cylinders) USING BTREE")
	ci := st.(*CreateIndex)
	if ci.Name != "cyl" || ci.Class != "VehicleEngine" || ci.Attr != "cylinders" || ci.Hash || ci.Unique {
		t.Errorf("%+v", ci)
	}
	st = parse(t, "CREATE UNIQUE INDEX n ON Company(name) USING HASH")
	ci = st.(*CreateIndex)
	if !ci.Hash || !ci.Unique {
		t.Errorf("%+v", ci)
	}
	if _, ok := parse(t, "DROP INDEX n").(*DropIndex); !ok {
		t.Error("DROP INDEX")
	}
	if _, ok := parse(t, "DROP CLASS Vehicle").(*DropClass); !ok {
		t.Error("DROP CLASS")
	}
}

func TestParseNewObject(t *testing.T) {
	// MoodView's statement from Section 9.4.
	st := parse(t, `new Employee < "Budak Arpinar", "Computer Engineer", 1969 >`)
	no := st.(*NewObject)
	if no.Class != "Employee" || len(no.Values) != 3 {
		t.Fatalf("%+v", no)
	}
	c0 := no.Values[0].(*expr.Const)
	if c0.Val.Str != "Budak Arpinar" {
		t.Errorf("first value = %s", c0.Val)
	}
	c2 := no.Values[2].(*expr.Const)
	if c2.Val.Int != 1969 {
		t.Errorf("third value = %s", c2.Val)
	}
}

func TestParsePaperQuery(t *testing.T) {
	// Section 3.1's example query, verbatim.
	st := parse(t, `
		SELECT c
		FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v
		WHERE c.drivetrain.transmission = 'AUTOMATIC'
		AND c.drivetrain.engine = v
		AND v.cylinders > 4`)
	q := st.(*Select)
	if len(q.Projs) != 1 || q.Projs[0].Agg != AggNone {
		t.Fatalf("projs: %+v", q.Projs)
	}
	if ref, ok := PathOf(q.Projs[0].Expr); !ok || ref.Var != "c" || len(ref.Path) != 0 {
		t.Errorf("projection: %+v", q.Projs[0])
	}
	if len(q.From) != 2 {
		t.Fatalf("from: %+v", q.From)
	}
	f0 := q.From[0]
	if !f0.Every || f0.Class != "Automobile" || len(f0.Minus) != 1 || f0.Minus[0] != "JapaneseAuto" || f0.Var != "c" {
		t.Errorf("from[0] = %+v", f0)
	}
	if q.From[1].Class != "VehicleEngine" || q.From[1].Var != "v" {
		t.Errorf("from[1] = %+v", q.From[1])
	}
	// WHERE is a conjunction of three predicates.
	and1, ok := q.Where.(*expr.Logic)
	if !ok || and1.Op != expr.OpAnd {
		t.Fatalf("where: %T", q.Where)
	}
	// The middle predicate is the implicit join c.drivetrain.engine = v.
	want := "c.drivetrain.engine = v"
	if !strings.Contains(q.Where.(*expr.Logic).String(), want) {
		t.Errorf("where rendering misses %q: %s", want, q.Where)
	}
}

func TestParseExample81Query(t *testing.T) {
	st := parse(t, `
		Select v
		From Vehicle v
		where v.company.name = 'BMW' and v.drivetrain.engine.cylinders = 2`)
	q := st.(*Select)
	if q.From[0].Every || q.From[0].Class != "Vehicle" {
		t.Errorf("from = %+v", q.From[0])
	}
	and, ok := q.Where.(*expr.Logic)
	if !ok {
		t.Fatalf("where %T", q.Where)
	}
	l, ok := and.L.(*expr.Cmp)
	if !ok {
		t.Fatalf("left %T", and.L)
	}
	ref, ok := PathOf(l.L)
	if !ok || ref.Var != "v" || len(ref.Path) != 2 || ref.Path[1] != "name" {
		t.Errorf("P2 path = %+v", ref)
	}
}

func TestParseGroupByHavingOrderBy(t *testing.T) {
	st := parse(t, `
		SELECT e.cylinders, COUNT(*) AS n, AVG(e.size) AS avgsize
		FROM VehicleEngine e
		WHERE e.size > 1000
		GROUP BY e.cylinders
		HAVING n > 2
		ORDER BY e.cylinders DESC, e.size`)
	q := st.(*Select)
	if len(q.Projs) != 3 {
		t.Fatalf("projs = %d", len(q.Projs))
	}
	if q.Projs[1].Agg != AggCount || !q.Projs[1].Star || q.Projs[1].As != "n" {
		t.Errorf("count proj = %+v", q.Projs[1])
	}
	if q.Projs[2].Agg != AggAvg {
		t.Errorf("avg proj = %+v", q.Projs[2])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].String() != "e.cylinders" {
		t.Errorf("group by = %+v", q.GroupBy)
	}
	if q.Having == nil {
		t.Error("having lost")
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("order by = %+v", q.OrderBy)
	}
}

func TestParseGroupByBeforeWhere(t *testing.T) {
	// The paper's grammar places GROUP BY before WHERE; both orders parse.
	st := parse(t, `SELECT e.cylinders FROM VehicleEngine e GROUP BY e.cylinders WHERE e.size > 0`)
	q := st.(*Select)
	if q.Where == nil || len(q.GroupBy) != 1 {
		t.Errorf("%+v", q)
	}
}

func TestParseMethodCallAndArithmetic(t *testing.T) {
	st := parse(t, `SELECT v FROM Vehicle v WHERE v.lbweight() > v.weight * 2 + 100`)
	q := st.(*Select)
	cmp := q.Where.(*expr.Cmp)
	if _, ok := cmp.L.(*expr.Call); !ok {
		t.Errorf("lhs = %T", cmp.L)
	}
	// Precedence: * binds tighter than +.
	add := cmp.R.(*expr.Arith)
	if add.Op != expr.OpAdd {
		t.Fatalf("rhs = %s", add)
	}
	if mul, ok := add.L.(*expr.Arith); !ok || mul.Op != expr.OpMul {
		t.Errorf("precedence broken: %s", add)
	}
}

func TestParseBetweenNotParens(t *testing.T) {
	st := parse(t, `SELECT v FROM Vehicle v WHERE NOT (v.weight BETWEEN 100 AND 200 OR v.id = 1)`)
	q := st.(*Select)
	not, ok := q.Where.(*expr.Not)
	if !ok {
		t.Fatalf("%T", q.Where)
	}
	or, ok := not.E.(*expr.Logic)
	if !ok || or.Op != expr.OpOr {
		t.Fatalf("%T", not.E)
	}
	if _, ok := or.L.(*expr.Between); !ok {
		t.Errorf("between = %T", or.L)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st := parse(t, `UPDATE Vehicle v SET weight = v.weight + 10 WHERE v.id = 3`)
	u := st.(*Update)
	if u.From.Var != "v" || len(u.Sets) != 1 || u.Sets[0].Attr != "weight" || u.Where == nil {
		t.Errorf("%+v", u)
	}
	st = parse(t, `DELETE FROM EVERY Vehicle v WHERE v.weight < 0`)
	d := st.(*Delete)
	if !d.From.Every || d.Where == nil {
		t.Errorf("%+v", d)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE CLASS A TUPLE (x Integer);
		CREATE CLASS B INHERITS FROM A;
		SELECT a FROM A a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT c",
		"SELECT c FROM",
		"SELECT c FROM Vehicle",                  // missing range variable
		"SELECT c FROM Vehicle c WHERE",          // dangling where
		"CREATE CLASS",                           // missing name
		"CREATE CLASS X TUPLE (a Wrong)",         // unknown type
		"CREATE INDEX i ON C(a) USING QUADTREE",  // unknown method
		"new Employee < 'x', ",                   // unterminated
		"SELECT c FROM Vehicle c WHERE c.x = ) ", // stray paren
		"SELECT c FROM Vehicle c extra",          // trailing garbage
		"SELECT c FROM Vehicle c WHERE c.x BETWEEN 1", // incomplete between
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestPathOf(t *testing.T) {
	e := expr.Path("v", "a", "b")
	ref, ok := PathOf(e)
	if !ok || ref.Var != "v" || len(ref.Path) != 2 || ref.Path[0] != "a" || ref.Path[1] != "b" {
		t.Errorf("PathOf = %+v %v", ref, ok)
	}
	if _, ok := PathOf(&expr.Const{Val: object.NewInt(1)}); ok {
		t.Error("PathOf(const) = true")
	}
	if _, ok := PathOf(&expr.Call{Base: &expr.Var{Name: "v"}, Method: "m"}); ok {
		t.Error("PathOf(call) = true")
	}
}

// TestParserNeverPanics feeds random garbage and random token
// recombinations to the parser: errors are fine, panics are not.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	vocab := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "EVERY",
		"AND", "OR", "NOT", "BETWEEN", "CREATE", "CLASS", "TUPLE", "METHODS",
		"INHERITS", "new", "Vehicle", "v", "c", ".", ",", "(", ")", "<", ">",
		"=", "<>", "-", "+", "*", "/", "%", ";", ":", "'str'", "42", "3.14",
		"Integer", "REFERENCE", "SET", "LIST", "String", "COUNT", "AS",
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for trial := 0; trial < 5000; trial++ {
		var sb strings.Builder
		n := 1 + rng.Intn(25)
		for i := 0; i < n; i++ {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		Parse(sb.String()) // error or not — must not panic
	}
	// Raw random bytes through the lexer and parser.
	for trial := 0; trial < 2000; trial++ {
		b := make([]byte, rng.Intn(60))
		for i := range b {
			b[i] = byte(rng.Intn(128))
		}
		Parse(string(b))
	}
}
