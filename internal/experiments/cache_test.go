package experiments

import (
	"encoding/json"
	"testing"
	"time"

	"mood/internal/objcache"
	"mood/internal/object"
)

// TestMeasureCacheContract checks the object-cache sweep's deterministic
// half on every machine and its wall-clock half outside -race: the warm
// 1 MiB configuration must read strictly fewer simulated pages than cache
// off, decode zero objects per row, and (without race instrumentation)
// clear the >=2x repeated-traversal speedup the artifact advertises.
func TestMeasureCacheContract(t *testing.T) {
	// The artifact scale, not smallEnv: at 0.02 the whole database fits in
	// the sweep's 16-frame pool and the uncached runs have nothing to
	// re-read, which voids the contract under test.
	env, err := BuildEnv(0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureCache(env, 40*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2*len(CacheBudgets) {
		t.Fatalf("expected %d entries, got %d", 2*len(CacheBudgets), len(res.Entries))
	}

	byName := map[string][]CacheEntry{}
	for _, e := range res.Entries {
		byName[e.Name] = append(byName[e.Name], e)
	}
	wantDecodes := map[string]float64{
		// Objects decoded per emitted row with the cache off: vehicle,
		// drivetrain and engine on the path workload; vehicle and company
		// on the probe. A change here means the fetch path regressed.
		"path-traversal":  3,
		"hash-join-probe": 2,
	}
	for name, entries := range byName {
		off, warm := entries[0], entries[len(entries)-1]
		if off.CacheBytes != 0 || warm.CacheBytes != CacheBudgets[len(CacheBudgets)-1] {
			t.Fatalf("%s: entries out of budget order: %+v", name, entries)
		}
		if off.Rows == 0 || off.Rows != warm.Rows {
			t.Fatalf("%s: row counts diverge: off=%d warm=%d", name, off.Rows, warm.Rows)
		}
		// The sweep only measures something if the uncached warm passes
		// actually re-read pages — the pool must be smaller than the
		// workload's page working set.
		if off.Reads == 0 {
			t.Errorf("%s: cache-off warm passes read 0 pages; pool too large for the working set", name)
		}
		if warm.Reads >= off.Reads {
			t.Errorf("%s: warm 1MiB reads %d, want strictly below cache-off %d", name, warm.Reads, off.Reads)
		}
		if warm.HitRate < 0.9 {
			t.Errorf("%s: warm 1MiB hit rate %.3f, want >= 0.9", name, warm.HitRate)
		}
		if warm.UnmarshalsPerRow != 0 {
			t.Errorf("%s: warm 1MiB decodes %.2f objects per row, want 0", name, warm.UnmarshalsPerRow)
		}
		if d := off.UnmarshalsPerRow; d != wantDecodes[name] {
			t.Errorf("%s: cache-off decodes %.2f objects per row, want %.0f", name, d, wantDecodes[name])
		}
		// Latency replay makes the uncached phase read-dominated while the
		// warm cache skips the reads entirely; the committed artifact shows
		// two orders of magnitude, 2x guards the floor with slack for
		// loaded machines. Race instrumentation buries the sleep fraction,
		// so under -race only the deterministic half is asserted.
		if raceEnabled {
			continue
		}
		if warm.Speedup < 2 {
			t.Errorf("%s: warm 1MiB speedup %.2fx, want >= 2x (wall %vms vs %vms)",
				name, warm.Speedup, warm.WallMs, off.WallMs)
		}
	}

	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("artifact not JSON-serializable: %v", err)
	}
}

// benchTraversal measures the warm repeated path traversal, reporting
// allocations (testing's own counters) and object.Unmarshal calls per
// traversed row — 3 with the cache off (vehicle, drivetrain, engine), 0
// with a warm cache. `make bench-cache` prints both configurations.
func benchTraversal(b *testing.B, budget int64) {
	env, err := BuildEnv(0.02)
	if err != nil {
		b.Fatal(err)
	}
	cat, d, err := coldCatalog(env, 1024)
	if err != nil {
		b.Fatal(err)
	}
	defer d.SetESMLayout(false)
	if budget > 0 {
		oc := objcache.New(budget)
		cat.SetObjectCache(oc)
		cat.Store().SetInvalidator(oc)
	}
	sample := env.DB.Vehicles[:200]
	if _, _, err := pathTraversalPass(cat, sample); err != nil { // warm-up
		b.Fatal(err)
	}
	um0 := object.Unmarshals()
	rows := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _, err := pathTraversalPass(cat, sample)
		if err != nil {
			b.Fatal(err)
		}
		rows += r
	}
	b.StopTimer()
	if rows > 0 {
		b.ReportMetric(float64(object.Unmarshals()-um0)/float64(rows), "decodes/row")
	}
}

func BenchmarkPathTraversalUncached(b *testing.B)   { benchTraversal(b, 0) }
func BenchmarkPathTraversalCached1MiB(b *testing.B) { benchTraversal(b, 1<<20) }
