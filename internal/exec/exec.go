// Package exec executes the access plans the optimizer produces, walking
// them bottom-up through the MOOD algebra. The clause order of Figure 7.1
// (FROM → WHERE → GROUP BY → HAVING → SELECT → ORDER BY) and the WHERE-
// clause operator order of Figure 7.2 (Select → Join → Project → Union) are
// realized by the plan shapes themselves; the executor simply evaluates
// each node.
package exec

import (
	"fmt"
	"sort"
	"strings"

	"mood/internal/algebra"
	"mood/internal/expr"
	"mood/internal/funcmgr"
	"mood/internal/joinindex"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/sql"
	"mood/internal/storage"
)

// ResultVar is the reserved binding under which projected/aggregated tuples
// travel; later plan stages (ORDER BY on an alias) resolve names against it.
const ResultVar = "$result"

// Executor evaluates plans over one algebra instance.
type Executor struct {
	Alg *algebra.Algebra
	// BJIs resolves binary-join-index names referenced by plans.
	BJIs map[string]*joinindex.BinaryJoinIndex
	// Pages reports the cumulative simulated page-read counter of the
	// underlying store — on a sharded store, the SUM of every shard's
	// DiskSim reads, so the total==disk-delta invariant holds whichever
	// shard served a page. The kernel wires it; nil leaves page counts at
	// zero.
	Pages func() int64
	// ShardPages reports the per-shard cumulative read counters (one entry
	// on a single store). EXPLAIN ANALYZE snapshots it around the run to
	// annotate the total with each shard's contribution; nil (or a single
	// entry) omits the annotation.
	ShardPages func() []int64
	// CacheHits/CacheMisses report the object cache's cumulative counters
	// and Prefetched the pages loaded by the readahead workers. The kernel
	// wires them when the features are on; nil makes EXPLAIN ANALYZE omit
	// the corresponding annotations.
	CacheHits   func() int64
	CacheMisses func() int64
	Prefetched  func() int64
	// ClusterRefs/ClusterPages report the clustering tracer's cumulative
	// batched-fetch counters: references resolved and distinct
	// (post-forwarding) pages they landed on. EXPLAIN ANALYZE deltas them
	// per operator and renders clustered=refs/pages — the measured locality
	// the reorganizer is trying to improve. The kernel wires them when
	// tracing is on; nil omits the annotation.
	ClusterRefs  func() int64
	ClusterPages func() int64
	// Quiesce blocks until in-flight readahead loads land. ExecuteAnalyzed
	// calls it before the final page snapshot so TotalPages still equals
	// the simulated-disk read delta with async prefetch running.
	Quiesce func()
	// Funcs resolves compiled predicate/projection closures by expression
	// signature — the Function Manager's query-fragment registry. The kernel
	// shares its funcmgr.Manager registry here; a standalone executor gets a
	// private one from New.
	Funcs *funcmgr.QueryRegistry
	// RowMode disables batch-at-a-time execution and predicate compilation:
	// every operator is driven strictly through Next with interpreted
	// expressions — the pre-vectorization pipeline, retained as a
	// differential baseline (and selectable for benches).
	RowMode bool
}

// New creates an executor.
func New(alg *algebra.Algebra) *Executor {
	return &Executor{
		Alg:   alg,
		BJIs:  map[string]*joinindex.BinaryJoinIndex{},
		Funcs: funcmgr.NewQueryRegistry(),
	}
}

// queryFuncs returns the fragment registry, creating one on first use for
// executors constructed without New.
func (e *Executor) queryFuncs() *funcmgr.QueryRegistry {
	if e.Funcs == nil {
		e.Funcs = funcmgr.NewQueryRegistry()
	}
	return e.Funcs
}

// ExecuteMaterialized runs a plan bottom-up, fully materializing every
// operator's output collection before its parent runs — the paper's original
// Figure 7.1/7.2 evaluation strategy. It is retained as the reference
// implementation the streaming pipeline (stream.go) is differential-tested
// against.
func (e *Executor) ExecuteMaterialized(p optimizer.Plan) (*algebra.Collection, error) {
	switch n := p.(type) {
	case *optimizer.BindPlan:
		if n.Every || len(n.Minus) > 0 {
			return e.Alg.Bind(n.Class, n.Var, n.Minus...)
		}
		return e.Alg.BindDirect(n.Class, n.Var)

	case *optimizer.IndSelPlan:
		return e.Alg.IndSel(n.Class, n.Var, n.Index.Kind, n.Pred)

	case *optimizer.IntersectPlan:
		cur, err := e.ExecuteMaterialized(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		for _, in := range n.Inputs[1:] {
			next, err := e.ExecuteMaterialized(in)
			if err != nil {
				return nil, err
			}
			if cur, err = e.Alg.Intersection(cur, next); err != nil {
				return nil, err
			}
		}
		return cur, nil

	case *optimizer.SelectPlan:
		in, err := e.ExecuteMaterialized(n.Input)
		if err != nil {
			return nil, err
		}
		return e.Alg.Select(in, n.Pred, false)

	case *optimizer.JoinPlan:
		left, err := e.ExecuteMaterialized(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.ExecuteMaterialized(n.Right)
		if err != nil {
			return nil, err
		}
		spec := algebra.JoinSpec{
			Method: n.Method, LeftVar: n.LeftVar,
			Attribute: n.Attribute, RightVar: n.RightVar,
		}
		if n.Index != "" {
			spec.Index = e.BJIs[n.Index]
		}
		return e.Alg.Join(left, right, spec)

	case *optimizer.CrossPlan:
		left, err := e.ExecuteMaterialized(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.ExecuteMaterialized(n.Right)
		if err != nil {
			return nil, err
		}
		return crossProduct(left, right), nil

	case *optimizer.UnionPlan:
		// UNION of the AND-term sub-plans, deduplicated on the query's
		// FROM-clause variables (intermediate path variables differ
		// between terms and must not defeat the dedup).
		var out *algebra.Collection
		seen := map[string]bool{}
		for _, in := range n.Inputs {
			c, err := e.ExecuteMaterialized(in)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = &algebra.Collection{Kind: c.Kind, Name: c.Name, Class: c.Class}
			}
			for _, row := range c.Rows {
				key := ""
				for _, v := range n.Vars {
					key += fmt.Sprintf("%s=%d;", v, row.Vars[v].OID)
				}
				if seen[key] {
					continue
				}
				seen[key] = true
				out.Rows = append(out.Rows, row)
			}
		}
		return out, nil

	case *optimizer.ProjectPlan:
		in, err := e.ExecuteMaterialized(n.Input)
		if err != nil {
			return nil, err
		}
		return e.project(in, n.Items)

	case *optimizer.GroupPlan:
		in, err := e.ExecuteMaterialized(n.Input)
		if err != nil {
			return nil, err
		}
		return e.group(in, n.By, n.Having, n.Projs)

	case *optimizer.SortPlan:
		in, err := e.ExecuteMaterialized(n.Input)
		if err != nil {
			return nil, err
		}
		return e.sortRows(in, n.Keys)

	case *optimizer.DupElimPlan:
		in, err := e.ExecuteMaterialized(n.Input)
		if err != nil {
			return nil, err
		}
		return dedupByResult(in), nil

	case *optimizer.ExchangePlan:
		// Exchange only changes scheduling, never results; the materializing
		// reference path runs its input serially.
		return e.ExecuteMaterialized(n.Input)
	}
	return nil, fmt.Errorf("exec: unknown plan node %T", p)
}

// env builds the expression environment for one row.
func (e *Executor) rowEnv(row algebra.Row) (*expr.Env, error) {
	env := &expr.Env{
		Vars:    map[string]object.Value{},
		OIDs:    map[string]storage.OID{},
		Resolve: e.Alg.Cat.Resolver(),
		Invoke:  e.Alg.Invoke,
	}
	for name, b := range row.Vars {
		if b.Val.IsNull() && !b.OID.IsNil() {
			v, _, err := e.Alg.Cat.GetObject(b.OID)
			if err != nil {
				return nil, err
			}
			b.Val = v
		}
		env.Vars[name] = b.Val
		env.OIDs[name] = b.OID
	}
	return env, nil
}

// outName derives the output column name of a projection item.
func outName(it sql.ProjItem, idx int) string {
	if it.As != "" {
		return it.As
	}
	if it.Agg != sql.AggNone {
		if it.Star || it.Expr == nil {
			return strings.ToLower(it.Agg.String())
		}
		return strings.ToLower(it.Agg.String()) + "_" + lastNameOf(it.Expr)
	}
	if it.Expr != nil {
		return lastNameOf(it.Expr)
	}
	return fmt.Sprintf("col%d", idx)
}

func lastNameOf(e expr.Expr) string {
	if ref, ok := sql.PathOf(e); ok {
		if len(ref.Path) > 0 {
			return ref.Path[len(ref.Path)-1]
		}
		return ref.Var
	}
	return strings.ReplaceAll(e.String(), " ", "")
}

// project evaluates a non-aggregate projection list, attaching the result
// tuple to each row under ResultVar (the PROJECT operator's "extent of the
// tuple type values").
func (e *Executor) project(in *algebra.Collection, items []sql.ProjItem) (*algebra.Collection, error) {
	out := &algebra.Collection{Kind: algebra.ExtentKind, Name: in.Name, Class: in.Class}
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = outName(it, i)
	}
	for _, row := range in.Rows {
		env, err := e.rowEnv(row)
		if err != nil {
			return nil, err
		}
		fields := make([]object.Value, len(items))
		for i, it := range items {
			v, err := it.Expr.Eval(env)
			if err != nil {
				return nil, err
			}
			fields[i] = v
		}
		nr := algebra.Row{Vars: map[string]algebra.Bound{}}
		for k, v := range row.Vars {
			nr.Vars[k] = v
		}
		nr.Vars[ResultVar] = algebra.Bound{Val: object.NewTuple(names, fields)}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// aggState accumulates one aggregate.
type aggState struct {
	kind  sql.AggKind
	count int64
	sum   float64
	min   object.Value
	max   object.Value
	isInt bool
	any   bool
}

func (a *aggState) add(v object.Value) {
	if v.IsNull() {
		return
	}
	a.count++
	if f, ok := v.AsFloat(); ok {
		a.sum += f
		if v.Kind == object.KindInteger || v.Kind == object.KindLongInteger {
			a.isInt = true
		}
	}
	if !a.any {
		a.min, a.max, a.any = v, v, true
		return
	}
	if cmp, ok := object.Compare(v, a.min); ok && cmp < 0 {
		a.min = v
	}
	if cmp, ok := object.Compare(v, a.max); ok && cmp > 0 {
		a.max = v
	}
}

func (a *aggState) result() object.Value {
	switch a.kind {
	case sql.AggCount:
		return object.NewLong(a.count)
	case sql.AggSum:
		if a.isInt {
			return object.NewLong(int64(a.sum))
		}
		return object.NewFloat(a.sum)
	case sql.AggAvg:
		if a.count == 0 {
			return object.Null
		}
		return object.NewFloat(a.sum / float64(a.count))
	case sql.AggMin:
		if !a.any {
			return object.Null
		}
		return a.min
	case sql.AggMax:
		if !a.any {
			return object.Null
		}
		return a.max
	}
	return object.Null
}

// group implements GROUP BY + HAVING + the aggregate projection. Each
// output row carries the aggregated tuple under ResultVar plus a
// representative input row's bindings (so later ORDER BY on group keys
// still resolves).
func (e *Executor) group(in *algebra.Collection, by []sql.PathRef, having expr.Expr, projs []sql.ProjItem) (*algebra.Collection, error) {
	names := make([]string, len(projs))
	for i, it := range projs {
		names[i] = outName(it, i)
	}
	type bucket struct {
		rep  algebra.Row
		aggs []*aggState
		keys []object.Value
		rows []algebra.Row
	}
	order := []string{}
	buckets := map[string]*bucket{}
	for _, row := range in.Rows {
		env, err := e.rowEnv(row)
		if err != nil {
			return nil, err
		}
		keyVals := make([]object.Value, len(by))
		keyParts := make([]string, len(by))
		for i, ref := range by {
			v, err := refExpr(ref).Eval(env)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			keyParts[i] = v.String()
		}
		key := strings.Join(keyParts, "\x00")
		b, ok := buckets[key]
		if !ok {
			b = &bucket{rep: row, keys: keyVals, aggs: make([]*aggState, len(projs))}
			for i, it := range projs {
				b.aggs[i] = &aggState{kind: it.Agg}
			}
			buckets[key] = b
			order = append(order, key)
		}
		b.rows = append(b.rows, row)
		for i, it := range projs {
			if it.Agg == sql.AggNone {
				continue
			}
			if it.Star {
				b.aggs[i].count++
				continue
			}
			v, err := it.Expr.Eval(env)
			if err != nil {
				return nil, err
			}
			b.aggs[i].add(v)
		}
	}

	out := &algebra.Collection{Kind: algebra.ExtentKind, Name: in.Name, Class: in.Class}
	for _, key := range order {
		b := buckets[key]
		env, err := e.rowEnv(b.rep)
		if err != nil {
			return nil, err
		}
		fields := make([]object.Value, len(projs))
		for i, it := range projs {
			if it.Agg == sql.AggNone {
				v, err := it.Expr.Eval(env)
				if err != nil {
					return nil, err
				}
				fields[i] = v
			} else {
				fields[i] = b.aggs[i].result()
			}
		}
		tuple := object.NewTuple(names, fields)
		if having != nil {
			henv := &expr.Env{
				Vars:    map[string]object.Value{},
				Resolve: e.Alg.Cat.Resolver(),
				Invoke:  e.Alg.Invoke,
			}
			for k, v := range env.Vars {
				henv.Vars[k] = v
			}
			// Aggregate aliases are visible to HAVING as variables.
			for i, n := range names {
				henv.Vars[n] = fields[i]
			}
			ok, err := expr.EvalBool(having, henv)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		nr := algebra.Row{Vars: map[string]algebra.Bound{}}
		for k, v := range b.rep.Vars {
			nr.Vars[k] = v
		}
		nr.Vars[ResultVar] = algebra.Bound{Val: tuple}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

func refExpr(ref sql.PathRef) expr.Expr {
	return expr.Path(ref.Var, ref.Path...)
}

// sortRows orders rows by the ORDER BY keys: a key resolves against the
// row's range-variable bindings first, then against the projected tuple's
// fields (aliases).
func (e *Executor) sortRows(in *algebra.Collection, keys []sql.OrderItem) (*algebra.Collection, error) {
	out := &algebra.Collection{Kind: in.Kind, Name: in.Name, Class: in.Class}
	out.Rows = append([]algebra.Row(nil), in.Rows...)
	keyVals := make([][]object.Value, len(out.Rows))
	for i, row := range out.Rows {
		env, err := e.rowEnv(row)
		if err != nil {
			return nil, err
		}
		vals := make([]object.Value, len(keys))
		for j, k := range keys {
			if _, bound := row.Vars[k.Ref.Var]; bound {
				v, err := refExpr(k.Ref).Eval(env)
				if err != nil {
					return nil, err
				}
				vals[j] = v
				continue
			}
			// Alias into the projected tuple.
			if res, ok := row.Vars[ResultVar]; ok {
				if f, found := res.Val.Field(k.Ref.Var); found {
					cur := f
					for _, attr := range k.Ref.Path {
						if cur.Kind == object.KindTuple {
							cur, _ = cur.Field(attr)
						}
					}
					vals[j] = cur
					continue
				}
			}
			vals[j] = object.Null
		}
		keyVals[i] = vals
	}
	idx := make([]int, len(out.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		for j, k := range keys {
			cmp, ok := object.Compare(keyVals[idx[x]][j], keyVals[idx[y]][j])
			if !ok {
				sx, sy := keyVals[idx[x]][j].String(), keyVals[idx[y]][j].String()
				if sx == sy {
					continue
				}
				cmp = strings.Compare(sx, sy)
			}
			if cmp == 0 {
				continue
			}
			if k.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	sorted := make([]algebra.Row, len(out.Rows))
	for i, j := range idx {
		sorted[i] = out.Rows[j]
	}
	out.Rows = sorted
	return out, nil
}

// crossProduct merges every row pair.
func crossProduct(a, b *algebra.Collection) *algebra.Collection {
	out := &algebra.Collection{Kind: algebra.ExtentKind, Name: b.Name, Class: b.Class}
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			nr := algebra.Row{Vars: map[string]algebra.Bound{}}
			for k, v := range ra.Vars {
				nr.Vars[k] = v
			}
			for k, v := range rb.Vars {
				nr.Vars[k] = v
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// dedupByResult removes rows whose projected tuples are byte-identical.
func dedupByResult(in *algebra.Collection) *algebra.Collection {
	out := &algebra.Collection{Kind: in.Kind, Name: in.Name, Class: in.Class}
	seen := map[string]bool{}
	for _, row := range in.Rows {
		key := ""
		if b, ok := row.Vars[ResultVar]; ok {
			key = string(object.Marshal(b.Val))
		} else {
			key = fmt.Sprintf("%v", row.Vars)
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Result is a tabular view of an executed query.
type Result struct {
	Columns []string
	Rows    [][]object.Value
	// OIDs carries, when the projection was a bare range variable, the
	// object identifier of each row's object (for cursor updates).
	OIDs []storage.OID
}

// Extract converts the final collection into a Result: projected tuples if
// present, otherwise the distinguished variable's objects.
func Extract(c *algebra.Collection) *Result {
	res := &Result{}
	for _, row := range c.Rows {
		if b, ok := row.Vars[ResultVar]; ok {
			if len(res.Columns) == 0 {
				res.Columns = append(res.Columns, b.Val.Names...)
			}
			res.Rows = append(res.Rows, append([]object.Value(nil), b.Val.Fields...))
			// A single-column projection of a bare variable keeps its OID.
			if len(b.Val.Fields) == 1 {
				if pb, ok := row.Vars[c.Name]; ok && b.Val.Fields[0].Kind == object.KindTuple {
					res.OIDs = append(res.OIDs, pb.OID)
				} else {
					res.OIDs = append(res.OIDs, storage.NilOID)
				}
			} else {
				res.OIDs = append(res.OIDs, storage.NilOID)
			}
			continue
		}
		b := row.Vars[c.Name]
		if len(res.Columns) == 0 {
			res.Columns = []string{c.Name}
		}
		res.Rows = append(res.Rows, []object.Value{b.Val})
		res.OIDs = append(res.OIDs, b.OID)
	}
	return res
}

// String renders the result as a simple table.
func (r *Result) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns, " | "))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		sb.WriteString(strings.Join(parts, " | "))
		sb.WriteByte('\n')
	}
	return sb.String()
}
