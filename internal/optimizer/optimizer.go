package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/expr"
	"mood/internal/sql"
)

// Optimizer builds access plans for MOODSQL queries over one catalog and
// statistics base.
type Optimizer struct {
	Cat   *catalog.Catalog
	Stats *cost.Stats
	// Parallelism is the degree-of-parallelism knob: when > 1, Optimize
	// wraps exchangeable operators in ExchangePlan nodes for that many
	// workers. Zero (the default) keeps every plan serial, so existing
	// single-threaded plans are byte-identical to the unparallelized ones.
	Parallelism int
	// ParallelMinPages gates parallelization on the cost model: only
	// operators whose estimated page footprint reaches this many pages are
	// exchanged. Zero means DefaultParallelMinPages; negative means no
	// threshold.
	ParallelMinPages float64
	// bjis registers available binary join indices by "Class.Attr" so the
	// join-method choice can consider bjc = INDCOST(k).
	bjis map[string]bjiEntry
	// ForceJoinMethod, when non-nil, overrides the cost-based join-method
	// choice with the given strategy wherever it is applicable (a forced
	// BINARY_JOIN_INDEX still needs a registered index, a forced
	// FUSION_JOIN a bind-shaped right side; inapplicable joins keep the
	// cost-based choice). Differential test harnesses use it to drive the
	// same query down every access path.
	ForceJoinMethod *cost.JoinMethod
}

type bjiEntry struct {
	name string
	st   cost.BTreeStats
}

// New creates an optimizer.
func New(cat *catalog.Catalog, st *cost.Stats) *Optimizer {
	return &Optimizer{Cat: cat, Stats: st, bjis: map[string]bjiEntry{}}
}

// RegisterBJI announces a binary join index on class.attr to the optimizer.
func (o *Optimizer) RegisterBJI(class, attr, name string, st cost.BTreeStats) {
	o.bjis[class+"."+attr] = bjiEntry{name: name, st: st}
}

// Explain records what the optimizer decided, mirroring the paper's
// dictionaries so Tables 11, 12 and 16 can be regenerated.
type Explain struct {
	Terms []TermExplain
}

// TermExplain is the per-AND-term record.
type TermExplain struct {
	Imm   map[string][]ImmSelInfo
	Paths []PathSelInfo // in Algorithm 8.1 execution order
	Joins []JoinPredInfo
}

// Optimize builds the access plan for a query: DNF of the WHERE clause, one
// sub-plan per AND-term (Section 7's processing order), UNION of the
// sub-plans, then GROUP BY/HAVING, projection and ORDER BY per Figure 7.1.
func (o *Optimizer) Optimize(q *sql.Select) (Plan, *Explain, error) {
	cls := &classifier{cat: o.Cat, stats: o.Stats, varClass: map[string]string{}}
	for _, fi := range q.From {
		if _, err := o.Cat.Class(fi.Class); err != nil {
			return nil, nil, err
		}
		if _, dup := cls.varClass[fi.Var]; dup {
			return nil, nil, fmt.Errorf("optimizer: duplicate range variable %s", fi.Var)
		}
		cls.varClass[fi.Var] = fi.Class
	}

	ex := &Explain{}
	var termPlans []Plan
	if q.Where == nil {
		plan, te, err := o.planTerm(q, cls, AndTerm{})
		if err != nil {
			return nil, nil, err
		}
		ex.Terms = append(ex.Terms, te)
		termPlans = append(termPlans, plan)
	} else {
		terms := ToDNF(q.Where)
		if len(terms) == 0 {
			// WHERE folds to FALSE: empty result, planned as an impossible
			// selection over the first FROM class.
			terms = []AndTerm{{falseConst()}}
		}
		for _, term := range terms {
			plan, te, err := o.planTerm(q, cls, term)
			if err != nil {
				return nil, nil, err
			}
			ex.Terms = append(ex.Terms, te)
			termPlans = append(termPlans, plan)
		}
	}

	var plan Plan
	if len(termPlans) == 1 {
		plan = termPlans[0]
	} else {
		card := 0.0
		for _, p := range termPlans {
			card += p.Card()
		}
		fromVars := make([]string, len(q.From))
		for i, fi := range q.From {
			fromVars[i] = fi.Var
		}
		plan = &UnionPlan{Inputs: termPlans, Vars: fromVars, card: card}
	}

	// Figure 7.1: ... -> GROUP BY -> HAVING -> SELECT (projection) ->
	// ORDER BY.
	hasAgg := false
	for _, p := range q.Projs {
		if p.Agg != sql.AggNone {
			hasAgg = true
		}
	}
	if len(q.GroupBy) > 0 || hasAgg {
		plan = &GroupPlan{Input: plan, By: q.GroupBy, Having: Simplify(orTrue(q.Having)), Projs: q.Projs, card: plan.Card() / 2}
		if q.Having == nil {
			plan.(*GroupPlan).Having = nil
		}
	} else {
		plan = &ProjectPlan{Input: plan, Items: q.Projs, card: plan.Card()}
		if q.Distinct {
			plan = &DupElimPlan{Input: plan, card: plan.Card()}
		}
	}
	if len(q.OrderBy) > 0 {
		plan = &SortPlan{Input: plan, Keys: q.OrderBy, card: plan.Card()}
	}
	if o.Parallelism > 1 {
		mp := o.ParallelMinPages
		if mp == 0 {
			mp = DefaultParallelMinPages
		}
		plan = Parallelize(plan, o.Parallelism, mp, o.Stats)
	}
	return plan, ex, nil
}

func orTrue(e expr.Expr) expr.Expr {
	if e == nil {
		return trueConst()
	}
	return e
}

// group is a set of range variables already joined into one plan.
type group struct {
	plan Plan
	vars map[string]bool
}

// planTerm builds the sub-access plan of one AND-term.
func (o *Optimizer) planTerm(q *sql.Select, cls *classifier, term AndTerm) (Plan, TermExplain, error) {
	te := TermExplain{}
	classified, err := cls.Classify(term)
	if err != nil {
		return nil, te, err
	}
	te.Imm = classified.Imm
	te.Joins = classified.Joins

	groups := map[string]*group{}
	for _, fi := range q.From {
		base, err := o.basePlan(fi, classified.Imm[fi.Var], classified.Other[fi.Var])
		if err != nil {
			return nil, te, err
		}
		groups[fi.Var] = &group{plan: base, vars: map[string]bool{fi.Var: true}}
	}

	// Algorithm 8.1: order ALL path selections of the term by F/(1-s).
	var paths []PathSelInfo
	for _, ps := range classified.Paths {
		paths = append(paths, ps...)
	}
	sort.SliceStable(paths, func(i, j int) bool { return paths[i].Rank < paths[j].Rank })
	te.Paths = paths

	nameGen := newVarNamer(cls.varClass)
	for _, ps := range paths {
		g := groups[ps.RangeVar]
		plan, err := o.expandPath(g, ps, nameGen, groups)
		if err != nil {
			return nil, te, err
		}
		g.plan = plan
	}

	// Explicit join predicates (path = var) connect variable groups.
	for _, jp := range classified.Joins {
		if err := o.applyJoinPred(cls, jp, groups, nameGen); err != nil {
			return nil, te, err
		}
	}

	// Merge remaining disjoint groups as Cartesian products (visible in the
	// plan as CROSS).
	ordered := make([]*group, 0, len(q.From))
	seen := map[*group]bool{}
	for _, fi := range q.From {
		g := groups[fi.Var]
		if !seen[g] {
			seen[g] = true
			ordered = append(ordered, g)
		}
	}
	plan := ordered[0].plan
	merged := ordered[0]
	for _, g := range ordered[1:] {
		plan = &CrossPlan{Left: plan, Right: g.plan, card: plan.Card() * g.plan.Card()}
		for v := range g.vars {
			merged.vars[v] = true
		}
		merged.plan = plan
	}

	// Residual predicates last.
	if len(classified.Residual) > 0 {
		pred := AndTerm(classified.Residual).Expr()
		plan = &SelectPlan{Input: plan, Pred: pred, card: plan.Card() / 2}
	}
	return plan, te, nil
}

// basePlan builds the access plan of one FROM range variable: §8.1's choice
// of indexes and ordering of atomic selections.
func (o *Optimizer) basePlan(fi sql.FromItem, imms []ImmSelInfo, others []OtherSelInfo) (Plan, error) {
	card := 1.0
	var nbpages float64
	var classStats cost.ClassStats
	if cs, err := o.Stats.Class(fi.Class); err == nil {
		classStats = cs
		card = float64(cs.Card)
		nbpages = float64(cs.NbPages)
	}

	// Index candidates, sorted ascending by cost_i (§8.1). Indexes cannot
	// serve a FROM clause with subclass exclusion (they cover the closure).
	var indexed []ImmSelInfo
	var rest []ImmSelInfo
	for _, im := range imms {
		if im.Index != nil && len(fi.Minus) == 0 && !math.IsInf(im.IndexedCost, 1) && im.IndexedCost < inf() {
			indexed = append(indexed, im)
		} else {
			rest = append(rest, im)
		}
	}
	sort.SliceStable(indexed, func(i, j int) bool { return indexed[i].IndexedCost < indexed[j].IndexedCost })

	// k = max number of indexes with Σ cost_i + RNDCOST(|C|·Π f_i) <
	// SCANCOST(nbpages(C)).
	k := 0
	sum := 0.0
	prod := 1.0
	// The full-scan alternative pays the sharded extent's per-part cost;
	// on a single store this is exactly ScanCost(nbpages(C)).
	scan := o.Stats.ExtentScanCost(classStats)
	if classStats.Name == "" {
		scan = o.Stats.ScanCost(nbpages)
	}
	for i := 0; i < len(indexed); i++ {
		sum += indexed[i].IndexedCost
		prod *= indexed[i].Selectivity
		if sum+o.Stats.Disk.RNDCOST(card*prod) < scan {
			k = i + 1
		}
	}

	var plan Plan
	selCard := card
	if k > 0 {
		var inputs []Plan
		for i := 0; i < k; i++ {
			im := indexed[i]
			selCard *= im.Selectivity
			inputs = append(inputs, &IndSelPlan{
				Class: fi.Class, Var: fi.Var, Index: im.Index,
				Pred: algebra.SimplePredicate{
					Attribute: im.Simple.Path[0], Op: im.Op,
					Constant: im.Constant, Constant2: im.Constant2, Between: im.Between,
				},
				ConstParam: im.ConstParam, Const2Param: im.Const2Param,
				card: card * im.Selectivity,
			})
		}
		if len(inputs) == 1 {
			plan = inputs[0]
		} else {
			plan = &IntersectPlan{Inputs: inputs, card: selCard}
		}
		rest = append(rest, indexed[k:]...)
	} else {
		plan = &BindPlan{Class: fi.Class, Var: fi.Var, Minus: fi.Minus, Every: fi.Every, card: card}
		rest = append(rest, indexed...)
	}

	// Remaining predicates "sorted in increasing order of their estimated
	// selectivities and applied in this order" — the most selective first,
	// so short-circuit evaluation touches the fewest predicates per object.
	sort.SliceStable(rest, func(i, j int) bool { return rest[i].Selectivity < rest[j].Selectivity })
	var preds []expr.Expr
	for _, im := range rest {
		preds = append(preds, im.Predicate)
		selCard *= im.Selectivity
	}
	for _, ot := range others {
		preds = append(preds, ot.Predicate)
		selCard *= defaultMethodSelectivity
	}
	if len(preds) > 0 {
		plan = &SelectPlan{Input: plan, Pred: AndTerm(preds).Expr(), card: selCard}
	}
	return plan, nil
}

// varNamer invents range-variable names for the intermediate classes of a
// path (the paper uses d, e, ... in its examples).
type varNamer struct {
	used map[string]bool
	n    int
}

func newVarNamer(existing map[string]string) *varNamer {
	used := map[string]bool{}
	for v := range existing {
		used[v] = true
	}
	return &varNamer{used: used}
}

func (vn *varNamer) fresh(class string) string {
	base := strings.ToLower(class[:1])
	name := base
	for vn.used[name] {
		vn.n++
		name = fmt.Sprintf("%s%d", base, vn.n)
	}
	vn.used[name] = true
	return name
}

// segment is one element of Algorithm 8.2's Δ list: a plan spanning a
// contiguous run of the path's classes, addressable at both ends.
type segment struct {
	plan       Plan
	leftVar    string
	leftClass  string
	rightVar   string
	rightClass string
	card       float64
	accessed   bool // objects materialized in memory (temporary collection)
}

// pairCost computes jc (the minimum-cost join technique) and js (the
// fraction of left objects surviving) for joining adjacent segments via
// attr.
func (o *Optimizer) pairCost(left, right *segment, attr string) (method cost.JoinMethod, jc, js float64, bji string, err error) {
	in := cost.JoinInput{
		Class:     left.rightClass,
		Attribute: attr,
		Kc:        left.card,
		Kd:        right.card,
		CAccessed: left.accessed,
	}
	if e, ok := o.bjis[left.rightClass+"."+attr]; ok {
		in.BJIdx = &e.st
		bji = e.name
	}
	in.FusionOK = fusionApplicable(right.plan)
	method, jc, err = o.Stats.BestJoin(in)
	if err != nil {
		return 0, 0, 0, "", err
	}
	if f := o.ForceJoinMethod; f != nil && forceApplicable(*f, in) {
		if c, cerr := o.methodCost(in, *f); cerr == nil && !math.IsInf(c, 1) {
			method, jc = *f, c
		}
	}
	js = o.joinSelectivity(left, right, attr)
	return method, jc, js, bji, nil
}

// fusionApplicable reports whether a plan is shaped for the fusion join's
// absorbed probe side: a bare class bind, optionally under a selection. The
// fusion operator synthesizes the right rows from the fetched references,
// so anything that would contribute rows of its own disqualifies.
func fusionApplicable(p Plan) bool {
	switch n := p.(type) {
	case *BindPlan:
		return true
	case *SelectPlan:
		_, overBind := n.Input.(*BindPlan)
		return overBind
	}
	return false
}

// forceApplicable reports whether the forced strategy can run at all for
// this join input.
func forceApplicable(m cost.JoinMethod, in cost.JoinInput) bool {
	switch m {
	case cost.BinaryJoinIndex:
		return in.BJIdx != nil
	case cost.FusionJoin:
		return in.FusionOK
	}
	return true
}

// methodCost prices one specific join strategy, keeping the greedy ordering
// rank consistent when a method is forced.
func (o *Optimizer) methodCost(in cost.JoinInput, m cost.JoinMethod) (float64, error) {
	switch m {
	case cost.ForwardTraversal:
		return o.Stats.ForwardCost(in)
	case cost.BackwardTraversal:
		return o.Stats.BackwardCost(in)
	case cost.BinaryJoinIndex:
		return o.Stats.BJICost(in, math.Min(in.Kc, in.Kd))
	case cost.HashPartition:
		return o.Stats.HashPartitionCost(in)
	case cost.FusionJoin:
		return o.Stats.FusionCost(in)
	}
	return math.Inf(1), nil
}

// joinSelectivity estimates the surviving fraction of the left segment's
// objects: fan · k_d/|D|, clamped below 1 so the rank jc/(1-js) is finite.
func (o *Optimizer) joinSelectivity(left, right *segment, attr string) float64 {
	ls, err := o.Stats.Link(left.rightClass, attr)
	if err != nil {
		return 0.5
	}
	dCard := ls.TargetCard
	if dCard <= 0 {
		return 0.5
	}
	js := ls.Fan * right.card / dCard
	if js > 0.999 {
		js = 0.999
	}
	if js < 0 {
		js = 0
	}
	return js
}

// joinCard estimates the join result's cardinality.
func (o *Optimizer) joinCard(left, right *segment, attr string) float64 {
	ls, err := o.Stats.Link(left.rightClass, attr)
	if err != nil {
		return math.Min(left.card, right.card)
	}
	if ls.TargetCard <= 0 {
		return 0
	}
	rc := left.card * ls.Fan * (right.card / ls.TargetCard)
	if rc < 0 {
		rc = 0
	}
	return rc
}

// expandPath realizes one path-selection predicate p.A1...Am θ c as a tree
// of implicit joins ordered by Algorithm 8.2, starting from the range
// variable's current plan. finalGroup, when non-nil, supplies the last
// segment (used for explicit join predicates whose path lands on another
// range variable); otherwise the final segment selects the atomic predicate
// over the path's last class.
func (o *Optimizer) expandPath(g *group, ps PathSelInfo, vn *varNamer, groups map[string]*group) (Plan, error) {
	// Build Δ: the segments of the chain C0 .. C_{m}.
	segs := []*segment{{
		plan: g.plan, leftVar: ps.RangeVar, leftClass: hopClass(ps, 0),
		rightVar: ps.RangeVar, rightClass: hopClass(ps, 0),
		card: g.plan.Card(), accessed: isAccessed(g.plan),
	}}
	attrs := make([]string, 0, len(ps.Path.Hops))
	for i, hop := range ps.Path.Hops {
		attrs = append(attrs, hop.Attribute)
		targetClass := hopTarget(ps, i)
		v := vn.fresh(hop.Attribute)
		var seg *segment
		if i == len(ps.Path.Hops)-1 && ps.Path.FinalAttr != "" {
			// Last class carries the atomic selection.
			sel := atomicPredExpr(v, ps)
			base := &BindPlan{Class: targetClass, Var: v, card: classCard(o.Stats, targetClass)}
			fs := atomicSelectivity(o.Stats, targetClass, ps)
			seg = &segment{
				plan:    &SelectPlan{Input: base, Pred: sel, card: base.card * fs},
				leftVar: v, leftClass: targetClass,
				rightVar: v, rightClass: targetClass,
				card: base.card * fs,
			}
		} else {
			base := &BindPlan{Class: targetClass, Var: v, card: classCard(o.Stats, targetClass)}
			seg = &segment{
				plan:    base,
				leftVar: v, leftClass: targetClass,
				rightVar: v, rightClass: targetClass,
				card: base.card,
			}
		}
		segs = append(segs, seg)
	}
	merged, err := o.greedyJoin(segs, attrs)
	if err != nil {
		return nil, err
	}
	// Every intermediate variable now belongs to the group.
	collectVars(merged.plan, g.vars)
	_ = groups
	return merged.plan, nil
}

// applyJoinPred realizes an explicit join predicate (path = var): the path
// is expanded hop by hop from the left variable's group, with the final hop
// joining into the right variable's group. If both variables are already in
// the same group the predicate degenerates to a residual selection.
func (o *Optimizer) applyJoinPred(cls *classifier, jp JoinPredInfo, groups map[string]*group, vn *varNamer) error {
	lg := groups[jp.LeftVar]
	rg := groups[jp.RightVar]
	if lg == nil || rg == nil {
		return fmt.Errorf("optimizer: join predicate references unknown variable: %s", jp.Pred)
	}
	if lg == rg {
		lg.plan = &SelectPlan{Input: lg.plan, Pred: jp.Pred, card: lg.plan.Card() / 2}
		return nil
	}
	path, err := cls.typedPath(cls.varClass[jp.LeftVar], jp.Path)
	if err != nil {
		return err
	}
	// Segments: left group, intermediates, right group.
	segs := []*segment{{
		plan: lg.plan, leftVar: jp.LeftVar, leftClass: path.Hops[0].Class,
		rightVar: jp.LeftVar, rightClass: path.Hops[0].Class,
		card: lg.plan.Card(), accessed: isAccessed(lg.plan),
	}}
	attrs := make([]string, 0, len(path.Hops))
	for i, hop := range path.Hops {
		attrs = append(attrs, hop.Attribute)
		if i == len(path.Hops)-1 {
			// Final hop lands on the right variable's group.
			segs = append(segs, &segment{
				plan: rg.plan, leftVar: jp.RightVar, leftClass: path.FinalClass,
				rightVar: jp.RightVar, rightClass: path.FinalClass,
				card: rg.plan.Card(), accessed: isAccessed(rg.plan),
			})
		} else {
			target := path.Hops[i+1].Class
			v := vn.fresh(path.Hops[i+1].Attribute)
			base := &BindPlan{Class: target, Var: v, card: classCard(o.Stats, target)}
			segs = append(segs, &segment{
				plan: base, leftVar: v, leftClass: target,
				rightVar: v, rightClass: target, card: base.card,
			})
		}
	}
	merged, err := o.greedyJoin(segs, attrs)
	if err != nil {
		return err
	}
	// Unify the two groups.
	for v := range rg.vars {
		lg.vars[v] = true
	}
	collectVars(merged.plan, lg.vars)
	lg.plan = merged.plan
	for v := range lg.vars {
		if g, ok := groups[v]; ok && (g == rg || g == lg) {
			groups[v] = lg
		}
	}
	return nil
}

// greedyJoin is Algorithm 8.2: repeatedly join the adjacent pair with the
// lowest jc/(1-js) until one segment remains.
func (o *Optimizer) greedyJoin(segs []*segment, attrs []string) (*segment, error) {
	for len(segs) > 1 {
		bestIdx := -1
		bestRank := math.Inf(1)
		var bestMethod cost.JoinMethod
		var bestBJI string
		for i := 0; i+1 < len(segs); i++ {
			method, jc, js, bji, err := o.pairCost(segs[i], segs[i+1], attrs[i])
			if err != nil {
				return nil, err
			}
			rank := jc / (1 - js)
			if rank < bestRank {
				bestRank, bestIdx, bestMethod, bestBJI = rank, i, method, bji
			}
		}
		l, r := segs[bestIdx], segs[bestIdx+1]
		card := o.joinCard(l, r, attrs[bestIdx])
		join := &JoinPlan{
			Left: l.plan, Right: r.plan, Method: bestMethod,
			LeftVar: l.rightVar, Attribute: attrs[bestIdx], RightVar: r.leftVar,
			Index: bestBJI, card: card,
		}
		merged := &segment{
			plan:    join,
			leftVar: l.leftVar, leftClass: l.leftClass,
			rightVar: r.rightVar, rightClass: r.rightClass,
			card: card, accessed: true,
		}
		segs[bestIdx] = merged
		segs = append(segs[:bestIdx+1], segs[bestIdx+2:]...)
		attrs = append(attrs[:bestIdx], attrs[bestIdx+1:]...)
	}
	return segs[0], nil
}

// --- helpers --------------------------------------------------------------

func hopClass(ps PathSelInfo, i int) string {
	if i < len(ps.Path.Hops) {
		return ps.Path.Hops[i].Class
	}
	return ps.Path.FinalClass
}

func hopTarget(ps PathSelInfo, i int) string {
	if i+1 < len(ps.Path.Hops) {
		return ps.Path.Hops[i+1].Class
	}
	return ps.Path.FinalClass
}

func classCard(st *cost.Stats, class string) float64 {
	if cs, err := st.Class(class); err == nil {
		return float64(cs.Card)
	}
	return 1
}

func atomicPredExpr(v string, ps PathSelInfo) expr.Expr {
	attr := expr.Path(v, ps.Path.FinalAttr)
	if ps.Between {
		return &expr.Between{E: attr,
			Lo: &expr.Const{Val: ps.Constant, Param: ps.ConstParam},
			Hi: &expr.Const{Val: ps.Constant2, Param: ps.Const2Param}}
	}
	return &expr.Cmp{Op: ps.Op, L: attr, R: &expr.Const{Val: ps.Constant, Param: ps.ConstParam}}
}

func atomicSelectivity(st *cost.Stats, class string, ps PathSelInfo) float64 {
	as, err := st.Attr(class, ps.Path.FinalAttr)
	if err != nil {
		return defaultMethodSelectivity
	}
	c1, _ := ps.Constant.AsFloat()
	c2, _ := ps.Constant2.AsFloat()
	kind := cost.CmpEq
	switch {
	case ps.Between:
		kind = cost.CmpBetween
	case ps.Op == expr.OpNe:
		kind = cost.CmpNe
	case ps.Op == expr.OpGt || ps.Op == expr.OpGe:
		kind = cost.CmpGt
	case ps.Op == expr.OpLt || ps.Op == expr.OpLe:
		kind = cost.CmpLt
	}
	return as.Selectivity(kind, c1, c2)
}

// isAccessed reports whether the plan materializes its objects in memory
// (anything but a bare extent scan).
func isAccessed(p Plan) bool {
	_, bare := p.(*BindPlan)
	return !bare
}

// collectVars gathers every range variable a plan binds.
func collectVars(p Plan, into map[string]bool) {
	switch n := p.(type) {
	case *BindPlan:
		into[n.Var] = true
	case *IndSelPlan:
		into[n.Var] = true
	case *SelectPlan:
		collectVars(n.Input, into)
	case *IntersectPlan:
		for _, in := range n.Inputs {
			collectVars(in, into)
		}
	case *JoinPlan:
		collectVars(n.Left, into)
		collectVars(n.Right, into)
	case *CrossPlan:
		collectVars(n.Left, into)
		collectVars(n.Right, into)
	case *ProjectPlan:
		collectVars(n.Input, into)
	case *GroupPlan:
		collectVars(n.Input, into)
	case *SortPlan:
		collectVars(n.Input, into)
	case *UnionPlan:
		for _, in := range n.Inputs {
			collectVars(in, into)
		}
	case *DupElimPlan:
		collectVars(n.Input, into)
	case *ExchangePlan:
		collectVars(n.Input, into)
	}
}
