package view

import (
	"fmt"
	"sort"
	"strings"

	"mood/internal/kernel"
	"mood/internal/object"
	"mood/internal/storage"
)

// ClassPresentation renders the Figure 9.2(b) class panel: type name and
// id, superclasses, subclasses, methods and attributes — all read from the
// persistent catalog.
func ClassPresentation(db *kernel.DB, class string) (string, error) {
	cl, err := db.Cat.Class(class)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Type Name    %s\n", cl.Name)
	fmt.Fprintf(&sb, "Type Id      %d\n", cl.ID)
	kind := "User Class"
	if !cl.IsClass {
		kind = "User Type"
	}
	fmt.Fprintf(&sb, "Class Type   %s\n", kind)
	fmt.Fprintf(&sb, "Superclasses: %s\n", strings.Join(cl.Supers, ", "))
	fmt.Fprintf(&sb, "Subclasses:   %s\n", strings.Join(db.Cat.Subclasses(class), ", "))
	sb.WriteString("Methods:\n")
	for _, m := range db.Cat.AllMethods(class) {
		fmt.Fprintf(&sb, "  %s\n", m)
	}
	sb.WriteString("Attributes:\n")
	attrs, err := db.Cat.AllAttributes(class)
	if err != nil {
		return "", err
	}
	for _, f := range attrs {
		fmt.Fprintf(&sb, "  %-16s %s\n", f.Name, f.Type)
	}
	if cl.Extent() != nil {
		fmt.Fprintf(&sb, "Extent: %d objects on %d pages\n",
			cl.Extent().NumRecords(), cl.Extent().NumPages())
	}
	return sb.String(), nil
}

// SchemaOverview renders the whole schema: the placed DAG plus one line per
// class.
func SchemaOverview(db *kernel.DB) string {
	var sb strings.Builder
	sb.WriteString("MOOD schema\n===========\n")
	layout := PlaceDAG(db.Cat)
	sb.WriteString(layout.Render())
	sb.WriteString("\nclasses:\n")
	for _, cl := range db.Cat.Classes() {
		marker := "class"
		if !cl.IsClass {
			marker = "type "
		}
		n := 0
		if cl.Extent() != nil {
			n = cl.Extent().NumRecords()
		}
		fmt.Fprintf(&sb, "  [%2d] %s %-20s %d objects\n", cl.ID, marker, cl.Name, n)
	}
	return sb.String()
}

// GenerateDDL converts a class definition back into MOODSQL DDL (MoodView
// "can convert graphically designed class hierarchy graph into C++ code";
// the textual target here is the DDL the kernel itself accepts).
func GenerateDDL(db *kernel.DB, class string) (string, error) {
	cl, err := db.Cat.Class(class)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	if cl.IsClass {
		fmt.Fprintf(&sb, "CREATE CLASS %s", cl.Name)
	} else {
		fmt.Fprintf(&sb, "CREATE TYPE %s", cl.Name)
	}
	if len(cl.Supers) > 0 {
		fmt.Fprintf(&sb, "\nINHERITS FROM %s", strings.Join(cl.Supers, ", "))
	}
	if len(cl.Tuple.Fields) > 0 {
		sb.WriteString("\nTUPLE (")
		for i, f := range cl.Tuple.Fields {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "\n    %s %s", f.Name, f.Type)
		}
		sb.WriteString("\n)")
	}
	if len(cl.Methods) > 0 {
		sb.WriteString("\nMETHODS:")
		for i, m := range cl.Methods {
			if i > 0 {
				sb.WriteString(",")
			}
			params := make([]string, len(m.ParamNames))
			for j := range m.ParamNames {
				params[j] = m.ParamNames[j] + " " + m.ParamTypes[j].String()
			}
			fmt.Fprintf(&sb, "\n    %s (%s) %s", m.Name, strings.Join(params, ", "), m.ReturnType)
		}
	}
	return sb.String(), nil
}

// ObjectGraph renders the Figure 9.3 generic presentation: the object's
// attributes with referenced objects expanded recursively up to maxDepth,
// cycles cut with a back-reference marker. "MOOD objects constitute graphs
// connecting atoms and constructors. MoodView has a generic display
// algorithm for displaying these object graphs and walking through the
// referenced objects."
func ObjectGraph(db *kernel.DB, oid storage.OID, maxDepth int) (string, error) {
	var sb strings.Builder
	seen := map[storage.OID]bool{}
	var walk func(oid storage.OID, indent string, depth int) error
	walk = func(oid storage.OID, indent string, depth int) error {
		ov, err := db.Describe(oid)
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "%s%s %s\n", indent, ov.Class, ov.OID)
		seen[oid] = true
		for _, a := range ov.Attrs {
			fmt.Fprintf(&sb, "%s  %-14s %-24s = ", indent, a.Name, a.Type)
			if a.Value.Kind == object.KindReference && !a.Value.Ref.IsNil() {
				switch {
				case seen[a.Value.Ref]:
					fmt.Fprintf(&sb, "%s (back-reference)\n", a.Value.Ref)
				case depth >= maxDepth:
					fmt.Fprintf(&sb, "%s (...)\n", a.Value.Ref)
				default:
					sb.WriteString("\n")
					if err := walk(a.Value.Ref, indent+"    ", depth+1); err != nil {
						return err
					}
				}
			} else {
				fmt.Fprintf(&sb, "%s\n", a.Value)
			}
		}
		return nil
	}
	if err := walk(oid, "", 0); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// QueryManager is the Section 9.3 query formulation tool: it runs MOODSQL
// through the kernel and keeps the session's query history ("a query editor
// with facilities for accessing previous queries in a session").
type QueryManager struct {
	db      *kernel.DB
	history []string
}

// NewQueryManager creates a query manager over the database.
func NewQueryManager(db *kernel.DB) *QueryManager {
	return &QueryManager{db: db}
}

// Run executes a statement, recording it in the history.
func (qm *QueryManager) Run(statement string) (*kernel.Result, error) {
	qm.history = append(qm.history, statement)
	return qm.db.Execute(statement)
}

// History returns the session's statements, oldest first.
func (qm *QueryManager) History() []string {
	return append([]string(nil), qm.history...)
}

// Recall returns the n-th most recent statement (1 = last).
func (qm *QueryManager) Recall(n int) (string, bool) {
	if n < 1 || n > len(qm.history) {
		return "", false
	}
	return qm.history[len(qm.history)-n], true
}

// CatalogDump lists the catalog's system files content summary — the
// Figure 2.2 view of MoodsType entries as MoodView's administration tool
// shows it.
func CatalogDump(db *kernel.DB) string {
	var sb strings.Builder
	sb.WriteString("CATALOG (MoodsType entries)\n")
	classes := db.Cat.Classes()
	sort.Slice(classes, func(i, j int) bool { return classes[i].ID < classes[j].ID })
	for _, cl := range classes {
		fmt.Fprintf(&sb, "MoodsType{id:%d name:%s class:%v}\n", cl.ID, cl.Name, cl.IsClass)
		for _, f := range cl.Tuple.Fields {
			fmt.Fprintf(&sb, "  MoodsAttribute{name:%s type:%s}\n", f.Name, f.Type)
		}
		for _, m := range cl.Methods {
			fmt.Fprintf(&sb, "  MoodsFunction{%s}\n", m)
		}
	}
	for _, ix := range db.Cat.Indexes() {
		fmt.Fprintf(&sb, "MoodsIndex{name:%s on:%s.%s kind:%s unique:%v}\n",
			ix.Name, ix.Class, ix.Attribute, ix.Kind, ix.Unique)
	}
	return sb.String()
}
