package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"mood/internal/kernel"
	"mood/internal/object"
	"mood/internal/storage"
)

// CommitSessionCounts is the session sweep measured by MeasureCommit.
var CommitSessionCounts = []int{1, 8, 32}

const (
	// commitTxnsPerSession bounds the sweep's wall time: the ungrouped
	// 32-session point serializes all its forces through one 1ms fsync.
	commitTxnsPerSession = 12
	// commitGroupFloor is the acceptance threshold: group commit must buy at
	// least this factor in commits/sec at the widest session count.
	commitGroupFloor = 3.0
)

// CommitEntry is one measured (sessions, group-commit) configuration of the
// mixed read/write workload. Txns and Reads are fixed by construction; the
// wall-clock columns vary run to run.
type CommitEntry struct {
	Sessions      int     `json:"sessions"`
	Group         bool    `json:"group_commit"`
	Txns          int     `json:"txns"`
	Reads         int     `json:"reads"`
	Forces        int64   `json:"log_forces"`
	WallMs        float64 `json:"wall_ms"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	P50Ms         float64 `json:"commit_p50_ms"`
	P99Ms         float64 `json:"commit_p99_ms"`
	// Speedup compares against the ungrouped entry at the same session
	// count (1.0 for the ungrouped entries themselves).
	Speedup float64 `json:"speedup_vs_ungrouped"`
}

// CommitSnapshotPhase records the lock-freedom check: snapshot readers scan
// while a writer streams committed updates through the group-commit log.
type CommitSnapshotPhase struct {
	WriterCommits int   `json:"writer_commits"`
	ReaderScans   int   `json:"reader_scans"`
	LockWaits     int64 `json:"lock_waits"`
	Stable        bool  `json:"fingerprint_stable"`
}

// CommitPlanCachePhase records the prepared-plan check: one statement shape
// executed with varying constants must miss once and hit thereafter.
type CommitPlanCachePhase struct {
	Statements int     `json:"statements"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	HitRate    float64 `json:"hit_rate"`
}

// BenchCommit is the JSON artifact written by moodbench -commit-json.
type BenchCommit struct {
	SyncDelayMs     float64              `json:"sync_delay_ms"`
	TxnsPerSession  int                  `json:"txns_per_session"`
	Entries         []CommitEntry        `json:"entries"`
	GroupSpeedupN32 float64              `json:"group_speedup_sessions_32"`
	Snapshot        CommitSnapshotPhase  `json:"snapshot"`
	PlanCache       CommitPlanCachePhase `json:"plan_cache"`
}

func commitBenchOptions(group bool) kernel.Options {
	opts := kernel.DefaultOptions()
	// Single store on purpose: the sweep isolates what group commit buys on
	// ONE fsync stream (the sharded sweep measures what N streams buy).
	opts.ShardCount = 1
	opts.BufferFrames = 2048
	opts.GroupCommit = group
	return opts
}

func percentileMs(samples []time.Duration, p int) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return round3(float64(sorted[idx]) / float64(time.Millisecond))
}

// measureCommitSessions drives the mixed workload at one configuration:
// `sessions` goroutines each run commitTxnsPerSession read-modify-write
// transactions (create, read back, update, commit) and, between them,
// lock-free snapshot reads of a shared hot object. Commit latency is the
// wall time of tx.Commit — the force wait — sampled per transaction.
func measureCommitSessions(sessions int, group bool, syncDelay time.Duration) (CommitEntry, error) {
	db, err := kernel.Open(commitBenchOptions(group))
	if err != nil {
		return CommitEntry{}, err
	}
	defer db.Close()
	if err := defineShardBenchSchema(db.Cat); err != nil {
		return CommitEntry{}, err
	}
	setup := db.Begin()
	hot, err := setup.Create("BenchOwner", shardOwnerTuple(0))
	if err != nil {
		return CommitEntry{}, err
	}
	if err := setup.Commit(); err != nil {
		return CommitEntry{}, err
	}
	for _, sh := range db.Shards {
		sh.Log.SetSyncDelay(syncDelay)
	}
	forces0 := db.Shards[0].Log.FlushCount()

	latencies := make([][]time.Duration, sessions)
	reads := make([]int, sessions)
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	start := time.Now()
	for s := 0; s < sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			latencies[s] = make([]time.Duration, 0, commitTxnsPerSession)
			for i := 0; i < commitTxnsPerSession; i++ {
				// The read half of the mix: a snapshot get of the hot object,
				// lock-free against every concurrent writer.
				snap := db.BeginSnapshot()
				if _, _, err := snap.Get(hot); err != nil {
					snap.Close()
					errs <- err
					return
				}
				snap.Close()
				reads[s]++
				// The write half: create, read back, update, commit.
				tx := db.Begin()
				oid, err := tx.Create("BenchOwner", shardOwnerTuple(s*commitTxnsPerSession+i+1))
				if err != nil {
					errs <- err
					return
				}
				v, _, err := tx.Get(oid)
				if err != nil {
					errs <- err
					return
				}
				v = v.Clone()
				v.SetField("tag", object.NewInt(int32(shardIntBase+i)))
				if err := tx.Update(oid, v); err != nil {
					errs <- err
					return
				}
				t0 := time.Now()
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				latencies[s] = append(latencies[s], time.Since(t0))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return CommitEntry{}, err
	}

	var all []time.Duration
	totalReads := 0
	for s := range latencies {
		all = append(all, latencies[s]...)
		totalReads += reads[s]
	}
	e := CommitEntry{
		Sessions: sessions,
		Group:    group,
		Txns:     sessions * commitTxnsPerSession,
		Reads:    totalReads,
		Forces:   db.Shards[0].Log.FlushCount() - forces0,
		WallMs:   round3(float64(wall) / float64(time.Millisecond)),
		P50Ms:    percentileMs(all, 50),
		P99Ms:    percentileMs(all, 99),
	}
	if wall > 0 {
		e.CommitsPerSec = round3(float64(e.Txns) / wall.Seconds())
	}
	return e, nil
}

// commitSnapshotPhase streams committed updates through a group-commit
// kernel while snapshot readers scan: every scan must fingerprint identical
// to the snapshot-begin state and the lock manager's wait counter must stay
// exactly flat, then a fresh snapshot must agree with a plain 2PL read.
func commitSnapshotPhase() (CommitSnapshotPhase, error) {
	var ph CommitSnapshotPhase
	db, err := kernel.Open(commitBenchOptions(true))
	if err != nil {
		return ph, err
	}
	defer db.Close()
	if err := defineShardBenchSchema(db.Cat); err != nil {
		return ph, err
	}
	const n = 50
	oids := make([]storage.OID, n)
	setup := db.Begin()
	for i := range oids {
		if oids[i], err = setup.Create("BenchOwner", shardOwnerTuple(i)); err != nil {
			return ph, err
		}
	}
	if err := setup.Commit(); err != nil {
		return ph, err
	}

	const q = "SELECT o.name, o.tag FROM BenchOwner o"
	snap := db.BeginSnapshot()
	defer snap.Close()
	baseline, err := snap.Query(q)
	if err != nil {
		return ph, err
	}
	want := commitFingerprint(baseline)
	_, waits0, _ := db.Locks.Stats()

	var wg sync.WaitGroup
	writerErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 6; round++ {
			tx := db.Begin()
			for i := round; i < n; i += 5 {
				v, _, err := tx.Get(oids[i])
				if err != nil {
					writerErr <- err
					return
				}
				v = v.Clone()
				v.SetField("tag", object.NewInt(int32(shardIntBase+100*round)))
				if err := tx.Update(oids[i], v); err != nil {
					writerErr <- err
					return
				}
			}
			if err := tx.Commit(); err != nil {
				writerErr <- err
				return
			}
			ph.WriterCommits++
		}
	}()

	ph.Stable = true
	for scan := 0; scan < 20; scan++ {
		res, err := snap.Query(q)
		if err != nil {
			return ph, err
		}
		ph.ReaderScans++
		if commitFingerprint(res) != want {
			ph.Stable = false
		}
	}
	wg.Wait()
	close(writerErr)
	for err := range writerErr {
		return ph, err
	}
	_, waits1, _ := db.Locks.Stats()
	ph.LockWaits = waits1 - waits0

	// Differential oracle: after the writer, a fresh snapshot and a 2PL
	// read must agree on the final state.
	fresh := db.BeginSnapshot()
	defer fresh.Close()
	freshRes, err := fresh.Query(q)
	if err != nil {
		return ph, err
	}
	res2pl, err := db.Execute(q)
	if err != nil {
		return ph, err
	}
	if commitFingerprint(freshRes) != commitFingerprint(res2pl) {
		ph.Stable = false
	}
	return ph, nil
}

func commitFingerprint(res *kernel.Result) string {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		s := ""
		for _, v := range row {
			s += v.String() + "|"
		}
		lines[i] = s
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// commitPlanCachePhase executes one statement shape with varying constants
// through a plan-cache kernel: the shape must be optimized exactly once.
func commitPlanCachePhase() (CommitPlanCachePhase, error) {
	var ph CommitPlanCachePhase
	opts := commitBenchOptions(true)
	opts.PlanCache = true
	db, err := kernel.Open(opts)
	if err != nil {
		return ph, err
	}
	defer db.Close()
	if err := defineShardBenchSchema(db.Cat); err != nil {
		return ph, err
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Cat.CreateObject("BenchOwner", shardOwnerTuple(i)); err != nil {
			return ph, err
		}
	}
	if err := db.RefreshStats(); err != nil {
		return ph, err
	}

	const statements = 60
	for i := 0; i < statements; i++ {
		q := fmt.Sprintf("SELECT o.name FROM BenchOwner o WHERE o.tag = %d", shardIntBase+i%50)
		if _, err := db.Execute(q); err != nil {
			return ph, err
		}
	}
	ph.Statements = statements
	ph.Hits, ph.Misses = db.PlanCacheStats()
	if total := ph.Hits + ph.Misses; total > 0 {
		ph.HitRate = round3(float64(ph.Hits) / float64(total))
	}
	return ph, nil
}

// MeasureCommit runs the commit-pipeline sweep: the mixed read/write
// workload at 1/8/32 sessions with group commit off and on over a simulated
// per-force fsync delay, then the snapshot lock-freedom phase and the
// plan-cache hit-rate phase. It enforces the acceptance floors in-harness:
// group commit must deliver >= 3x commits/sec at 32 sessions, snapshot
// readers must be fingerprint-stable with zero lock waits, and the repeated
// statement shape must miss the plan cache exactly once. Pass syncDelay <= 0
// for the 1ms default.
func MeasureCommit(syncDelay time.Duration) (*BenchCommit, error) {
	if syncDelay <= 0 {
		syncDelay = DefaultShardSyncDelay
	}
	out := &BenchCommit{
		SyncDelayMs:    float64(syncDelay) / float64(time.Millisecond),
		TxnsPerSession: commitTxnsPerSession,
	}
	for _, sessions := range CommitSessionCounts {
		var base CommitEntry
		for _, group := range []bool{false, true} {
			e, err := measureCommitSessions(sessions, group, syncDelay)
			if err != nil {
				return nil, fmt.Errorf("commit sessions=%d group=%v: %w", sessions, group, err)
			}
			if !group {
				base = e
				e.Speedup = 1.0
			} else if base.CommitsPerSec > 0 {
				e.Speedup = round3(e.CommitsPerSec / base.CommitsPerSec)
			}
			if group && sessions == 32 {
				out.GroupSpeedupN32 = e.Speedup
			}
			out.Entries = append(out.Entries, e)
		}
	}
	if out.GroupSpeedupN32 < commitGroupFloor {
		return nil, fmt.Errorf("group commit at 32 sessions bought only %.2fx commits/sec (floor %.1fx)",
			out.GroupSpeedupN32, commitGroupFloor)
	}

	snap, err := commitSnapshotPhase()
	if err != nil {
		return nil, fmt.Errorf("snapshot phase: %w", err)
	}
	out.Snapshot = snap
	if !snap.Stable {
		return nil, fmt.Errorf("snapshot phase: reader fingerprints diverged from snapshot-begin state")
	}
	if snap.LockWaits != 0 {
		return nil, fmt.Errorf("snapshot phase: %d lock waits; snapshot readers must never wait", snap.LockWaits)
	}

	pc, err := commitPlanCachePhase()
	if err != nil {
		return nil, fmt.Errorf("plan-cache phase: %w", err)
	}
	out.PlanCache = pc
	if pc.Misses != 1 || pc.Hits != int64(pc.Statements-1) {
		return nil, fmt.Errorf("plan-cache phase: %d hits / %d misses for %d same-shape statements, want %d/1",
			pc.Hits, pc.Misses, pc.Statements, pc.Statements-1)
	}
	return out, nil
}

// CommitThroughput prints the MeasureCommit sweep as tables. The env
// parameter is unused (the sweep builds its own kernels) but kept for the
// artifact signature.
func CommitThroughput(w io.Writer, _ *Env) error {
	section(w, "Group commit. Mixed read/write sessions, one fsync stream, 1ms force")
	res, err := MeasureCommit(0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fsync delay %.1f ms; %d txns/session; every txn also performs a lock-free snapshot read\n\n",
		res.SyncDelayMs, res.TxnsPerSession)
	fmt.Fprintf(w, "%8s %6s %6s %7s %9s %11s %8s %8s %8s\n",
		"sessions", "group", "txns", "forces", "wall ms", "commits/s", "p50 ms", "p99 ms", "speedup")
	for _, e := range res.Entries {
		fmt.Fprintf(w, "%8d %6v %6d %7d %9.1f %11.0f %8.2f %8.2f %7.2fx\n",
			e.Sessions, e.Group, e.Txns, e.Forces, e.WallMs, e.CommitsPerSec, e.P50Ms, e.P99Ms, e.Speedup)
	}
	fmt.Fprintf(w, "\nsnapshot phase: %d writer commits, %d reader scans, %d lock waits, stable=%v\n",
		res.Snapshot.WriterCommits, res.Snapshot.ReaderScans, res.Snapshot.LockWaits, res.Snapshot.Stable)
	fmt.Fprintf(w, "plan cache:     %d statements, %d hits / %d misses (%.1f%% hit rate)\n",
		res.PlanCache.Statements, res.PlanCache.Hits, res.PlanCache.Misses, 100*res.PlanCache.HitRate)
	return nil
}
