package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		held, req Mode
		want      bool
	}{
		{ModeS, ModeS, true},
		{ModeS, ModeX, false},
		{ModeX, ModeS, false},
		{ModeX, ModeX, false},
		{ModeIS, ModeIX, true},
		{ModeIX, ModeIX, true},
		{ModeIX, ModeS, false},
		{ModeSIX, ModeIS, true},
		{ModeSIX, ModeIX, false},
		{ModeNone, ModeX, true},
	}
	for _, c := range cases {
		if got := Compatible(c.held, c.req); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.held, c.req, got, c.want)
		}
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager(time.Second)
	res := FileResource("extent")
	if err := m.Acquire(1, res, ModeS); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, res, ModeS); err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(1, res) != ModeS || m.HeldMode(2, res) != ModeS {
		t.Error("shared holders not recorded")
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
}

func TestExclusiveBlocksAndHandsOver(t *testing.T) {
	m := NewManager(0)
	res := FileResource("extent")
	if err := m.Acquire(1, res, ModeX); err != nil {
		t.Fatal(err)
	}
	var got atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Acquire(2, res, ModeX); err != nil {
			t.Errorf("tx2 acquire: %v", err)
			return
		}
		got.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if got.Load() {
		t.Fatal("X lock granted while conflicting X held")
	}
	m.ReleaseAll(1)
	wg.Wait()
	if !got.Load() {
		t.Fatal("waiter never granted after release")
	}
	m.ReleaseAll(2)
}

func TestUpgradeSToX(t *testing.T) {
	m := NewManager(time.Second)
	res := ObjectResourceString("obj1")
	if err := m.Acquire(1, res, ModeS); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, res, ModeX); err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(1, res) != ModeX {
		t.Errorf("mode after upgrade = %v, want X", m.HeldMode(1, res))
	}
	// Re-acquire weaker is a no-op.
	if err := m.Acquire(1, res, ModeS); err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(1, res) != ModeX {
		t.Error("weaker re-acquire downgraded the lock")
	}
	m.ReleaseAll(1)
}

// ObjectResourceString helps tests name object resources without an OID.
func ObjectResourceString(s string) Resource { return Resource("obj:" + s) }

func TestUpgradeBlocksOnOtherReader(t *testing.T) {
	m := NewManager(50 * time.Millisecond)
	res := FileResource("f")
	m.Acquire(1, res, ModeS)
	m.Acquire(2, res, ModeS)
	err := m.Acquire(1, res, ModeX)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("upgrade with concurrent reader: %v, want timeout", err)
	}
	m.ReleaseAll(2)
	if err := m.Acquire(1, res, ModeX); err != nil {
		t.Fatalf("upgrade after reader left: %v", err)
	}
	m.ReleaseAll(1)
}

func TestDeadlockDetection(t *testing.T) {
	m := NewManager(0)
	a, b := FileResource("a"), FileResource("b")
	m.Acquire(1, a, ModeX)
	m.Acquire(2, b, ModeX)

	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(1, b, ModeX) }()
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- m.Acquire(2, a, ModeX) }()

	var deadlocked, granted int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				deadlocked++
				// Victim rolls back, releasing its locks.
				if err == nil {
					t.Fatal("unreachable")
				}
			} else if err == nil {
				granted++
			} else {
				t.Fatalf("unexpected error: %v", err)
			}
			// Whichever tx finished (victim or not), release to let the
			// other proceed.
			if deadlocked == 1 && granted == 0 {
				// victim releases everything
				m.ReleaseAll(1)
				m.ReleaseAll(2)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("deadlock not broken within 2s")
		}
	}
	if deadlocked != 1 {
		t.Errorf("deadlocks = %d, want exactly 1 victim", deadlocked)
	}
	_, _, dl := m.Stats()
	if dl != 1 {
		t.Errorf("Stats deadlocks = %d", dl)
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := NewManager(0)
	r1, r2 := FileResource("r1"), FileResource("r2")
	m.Acquire(1, r1, ModeX)
	m.Acquire(1, r2, ModeX)
	var wg sync.WaitGroup
	for i, res := range []Resource{r1, r2} {
		wg.Add(1)
		go func(tx TxID, res Resource) {
			defer wg.Done()
			if err := m.Acquire(tx, res, ModeS); err != nil {
				t.Errorf("tx %d: %v", tx, err)
			}
		}(TxID(10+i), res)
	}
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	m.ReleaseAll(10)
	m.ReleaseAll(11)
}

func TestFunctionManagerSharedObjectLocking(t *testing.T) {
	// The paper's Section 2 scenario: while one session rewrites a member
	// function (X on the class's shared object), invocations (S) wait.
	m := NewManager(0)
	so := ClassSharedObject("Vehicle")
	if err := m.Acquire(1, so, ModeX); err != nil {
		t.Fatal(err)
	}
	invoked := make(chan error, 1)
	go func() { invoked <- m.Acquire(2, so, ModeS) }()
	select {
	case <-invoked:
		t.Fatal("invocation proceeded during function rewrite")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1) // rewrite done
	if err := <-invoked; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager(2 * time.Second)
	resources := []Resource{"a", "b", "c", "d"}
	var counter [4]int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(tx TxID) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ri := int(tx+TxID(i)) % len(resources)
				// Always lock in a globally consistent order (single
				// resource here) so only timeouts, not deadlocks, can occur.
				if err := m.Acquire(tx, resources[ri], ModeX); err != nil {
					t.Errorf("tx %d: %v", tx, err)
					return
				}
				counter[ri]++
				m.ReleaseAll(tx)
			}
		}(TxID(100 + g))
	}
	wg.Wait()
	var total int64
	for _, c := range counter {
		total += c
	}
	if total != 16*50 {
		t.Errorf("critical sections executed %d times, want %d (mutual exclusion broken)", total, 16*50)
	}
}
