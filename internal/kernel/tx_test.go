package kernel

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mood/internal/lock"
	"mood/internal/object"
	"mood/internal/storage"
)

func employee(name string, ssno int32) object.Value {
	return object.NewTuple(
		[]string{"ssno", "name", "age"},
		[]object.Value{object.NewInt(ssno), object.NewString(name), object.NewInt(30)})
}

func countEmployees(t *testing.T, db *DB) int {
	t.Helper()
	n := 0
	if err := db.Cat.ScanExtent("Employee", func(storage.OID, object.Value) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTxCommit(t *testing.T) {
	db := openAndDefine(t)
	tx := db.Begin()
	oid, err := tx.Create("Employee", employee("alice", 1))
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := tx.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	v.SetField("age", object.NewInt(31))
	if err := tx.Update(oid, v); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _, err := db.Cat.GetObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	if age, _ := got.Field("age"); age.Int != 31 {
		t.Errorf("age = %d", age.Int)
	}
	// Commit forced the log.
	if db.Log.FlushedLSN() == 0 {
		t.Error("commit did not force the log")
	}
	// Finished transactions reject reuse.
	if _, err := tx.Create("Employee", employee("x", 2)); !errors.Is(err, ErrTxDone) {
		t.Errorf("reuse after commit = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit = %v", err)
	}
}

func TestTxAbortUndoesEverything(t *testing.T) {
	db := openAndDefine(t)
	// Pre-existing committed state.
	setup := db.Begin()
	keep, err := setup.Create("Employee", employee("keep", 1))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := setup.Create("Employee", employee("victim", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	if _, err := tx.Create("Employee", employee("ghost", 3)); err != nil {
		t.Fatal(err)
	}
	v, _, _ := tx.Get(keep)
	v.SetField("name", object.NewString("mangled"))
	if err := tx.Update(keep, v); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	// Created object gone, update reverted, deleted object's value back.
	if n := countEmployees(t, db); n != 2 {
		t.Errorf("employees after abort = %d, want 2", n)
	}
	kv, _, err := db.Cat.GetObject(keep)
	if err != nil {
		t.Fatal(err)
	}
	if name, _ := kv.Field("name"); name.Str != "keep" {
		t.Errorf("update not undone: %s", name.Str)
	}
	found := false
	db.Cat.ScanExtent("Employee", func(_ storage.OID, v object.Value) bool {
		if name, _ := v.Field("name"); name.Str == "victim" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("deleted object not reinserted on abort")
	}
}

func TestTxIsolationWriteWrite(t *testing.T) {
	db := openAndDefine(t)
	setup := db.Begin()
	oid, err := setup.Create("Employee", employee("shared", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	t1 := db.Begin()
	v, _, err := t1.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	v.SetField("age", object.NewInt(40))
	if err := t1.Update(oid, v); err != nil {
		t.Fatal(err)
	}

	// A second writer blocks until t1 finishes (strict 2PL).
	var wg sync.WaitGroup
	wg.Add(1)
	committed := make(chan struct{})
	go func() {
		defer wg.Done()
		t2 := db.Begin()
		v2, _, err := t2.Get(oid) // S lock blocks on t1's X
		if err != nil {
			t.Error(err)
			return
		}
		select {
		case <-committed:
		default:
			t.Error("t2 read before t1 committed")
		}
		if age, _ := v2.Field("age"); age.Int != 40 {
			t.Errorf("t2 saw age %d, want t1's committed 40", age.Int)
		}
		t2.Commit()
	}()
	time.Sleep(30 * time.Millisecond)
	close(committed)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestTxDeadlockVictim(t *testing.T) {
	db := openAndDefine(t)
	setup := db.Begin()
	a, _ := setup.Create("Employee", employee("a", 1))
	bOid, _ := setup.Create("Employee", employee("b", 2))
	setup.Commit()

	t1 := db.Begin()
	t2 := db.Begin()
	v1, _, _ := t1.Get(a)
	if err := t1.Update(a, v1); err != nil {
		t.Fatal(err)
	}
	v2, _, _ := t2.Get(bOid)
	if err := t2.Update(bOid, v2); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() {
		_, _, err := t1.Get(bOid)
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	go func() {
		_, _, err := t2.Get(a)
		errs <- err
	}()
	var deadlocks int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, lock.ErrDeadlock) {
				deadlocks++
				// Victim aborts, releasing locks and unblocking the peer.
				if deadlocks == 1 {
					if i == 0 {
						// Whichever tx hit the deadlock must abort; we
						// cannot tell which from here, so abort both
						// defensively after the loop.
					}
				}
			}
			if deadlocks == 1 {
				t1.Abort()
				t2.Abort()
			}
		case <-time.After(3 * time.Second):
			t.Fatal("deadlock not detected")
		}
	}
	if deadlocks != 1 {
		t.Errorf("deadlock victims = %d, want 1", deadlocks)
	}
	_, _, dl := db.Locks.Stats()
	if dl != 1 {
		t.Errorf("lock manager deadlocks = %d", dl)
	}
}

func TestTxWALRecords(t *testing.T) {
	db := openAndDefine(t)
	before := db.Log.Len()
	tx := db.Begin()
	if _, err := tx.Create("Employee", employee("logged", 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.Log.Len() < before+3 { // begin + update marker + commit
		t.Errorf("log grew by %d records, want >= 3", db.Log.Len()-before)
	}
	if got := db.Log.ActiveTransactions(); len(got) != 0 {
		t.Errorf("active transactions after commit: %v", got)
	}
}
