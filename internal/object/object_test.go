package object

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mood/internal/storage"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if NewInt(42).Int != 42 || NewInt(42).Kind != KindInteger {
		t.Error("NewInt broken")
	}
	if bt, bf := NewBool(true), NewBool(false); !bt.Bool() || bf.Bool() {
		t.Error("NewBool broken")
	}
	tp := NewTuple([]string{"a", "b"}, []Value{NewInt(1), NewString("x")})
	if f, ok := tp.Field("b"); !ok || f.Str != "x" {
		t.Error("Field lookup broken")
	}
	if _, ok := tp.Field("missing"); ok {
		t.Error("missing field found")
	}
	tp.SetField("a", NewInt(9))
	if f, _ := tp.Field("a"); f.Int != 9 {
		t.Error("SetField replace broken")
	}
	tp.SetField("c", NewBool(true))
	if f, ok := tp.Field("c"); !ok || !f.Bool() {
		t.Error("SetField add broken")
	}
	s := NewSet(NewInt(1), NewInt(2), NewInt(1))
	if s.Len() != 2 {
		t.Errorf("set collapsed to %d, want 2", s.Len())
	}
	if !s.SetContains(NewInt(2)) || s.SetContains(NewInt(3)) {
		t.Error("SetContains broken")
	}
	l := NewList(NewInt(1), NewInt(1))
	if l.Len() != 2 {
		t.Error("list deduplicated")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{NewInt(1), NewInt(2), -1, true},
		{NewInt(2), NewInt(2), 0, true},
		{NewLong(5), NewInt(3), 1, true},
		{NewFloat(1.5), NewInt(2), -1, true},
		{NewInt(2), NewFloat(2.0), 0, true},
		{NewString("abc"), NewString("abd"), -1, true},
		{NewChar('a'), NewChar('b'), -1, true},
		{NewChar('A'), NewInt(65), 0, true},
		{NewBool(false), NewBool(true), -1, true},
		{NewString("a"), NewInt(1), 0, false},
		{NewSet(), NewSet(), 0, false},
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%s,%s) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestShallowEqual(t *testing.T) {
	oid1 := storage.MakeOID(1, 1, 1)
	oid2 := storage.MakeOID(1, 1, 2)
	if !Equal(NewRef(oid1), NewRef(oid1)) || Equal(NewRef(oid1), NewRef(oid2)) {
		t.Error("reference equality broken")
	}
	// Sets compare order-insensitively.
	a := Value{Kind: KindSet, Elems: []Value{NewInt(1), NewInt(2)}}
	b := Value{Kind: KindSet, Elems: []Value{NewInt(2), NewInt(1)}}
	if !Equal(a, b) {
		t.Error("set order sensitivity")
	}
	// Lists are order-sensitive.
	la := NewList(NewInt(1), NewInt(2))
	lb := NewList(NewInt(2), NewInt(1))
	if Equal(la, lb) {
		t.Error("list order ignored")
	}
	// Tuples compare by field name, not position.
	ta := NewTuple([]string{"x", "y"}, []Value{NewInt(1), NewInt(2)})
	tb := NewTuple([]string{"y", "x"}, []Value{NewInt(2), NewInt(1)})
	if !Equal(ta, tb) {
		t.Error("tuple field-name equality broken")
	}
	if Equal(ta, NewTuple([]string{"x", "y"}, []Value{NewInt(1), NewInt(3)})) {
		t.Error("unequal tuples equal")
	}
	if !Equal(Null, Null) || Equal(Null, NewInt(0)) {
		t.Error("null equality broken")
	}
}

func TestDeepEqualDereferences(t *testing.T) {
	// Two distinct OIDs holding structurally equal objects.
	store := map[storage.OID]Value{
		storage.MakeOID(1, 1, 1): NewTuple([]string{"n"}, []Value{NewInt(7)}),
		storage.MakeOID(1, 1, 2): NewTuple([]string{"n"}, []Value{NewInt(7)}),
		storage.MakeOID(1, 1, 3): NewTuple([]string{"n"}, []Value{NewInt(8)}),
	}
	resolve := func(oid storage.OID) (Value, error) { return store[oid], nil }
	eq, err := DeepEqual(NewRef(storage.MakeOID(1, 1, 1)), NewRef(storage.MakeOID(1, 1, 2)), resolve)
	if err != nil || !eq {
		t.Errorf("deep equal distinct oids: %v %v", eq, err)
	}
	eq, _ = DeepEqual(NewRef(storage.MakeOID(1, 1, 1)), NewRef(storage.MakeOID(1, 1, 3)), resolve)
	if eq {
		t.Error("structurally different objects deep-equal")
	}
}

func TestDeepEqualCycles(t *testing.T) {
	a := storage.MakeOID(1, 1, 1)
	b := storage.MakeOID(1, 1, 2)
	// a -> b -> a and b -> a -> b: equivalent 2-cycles.
	store := map[storage.OID]Value{
		a: NewTuple([]string{"next"}, []Value{NewRef(b)}),
		b: NewTuple([]string{"next"}, []Value{NewRef(a)}),
	}
	resolve := func(oid storage.OID) (Value, error) { return store[oid], nil }
	eq, err := DeepEqual(NewRef(a), NewRef(b), resolve)
	if err != nil {
		t.Fatalf("cycle comparison errored: %v", err)
	}
	if !eq {
		t.Error("equivalent cycles compare unequal")
	}
}

func TestClone(t *testing.T) {
	orig := NewTuple([]string{"s"}, []Value{NewSet(NewInt(1))})
	cp := orig.Clone()
	cp.Fields[0].SetAdd(NewInt(2))
	if orig.Fields[0].Len() != 1 {
		t.Error("Clone shares element storage")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	vals := []Value{
		Null,
		NewInt(0), NewInt(-1), NewInt(math.MaxInt32), NewInt(math.MinInt32),
		NewLong(math.MaxInt64), NewLong(math.MinInt64),
		NewFloat(0), NewFloat(-3.14), NewFloat(math.Inf(1)),
		NewString(""), NewString("hello world"), NewString("ünïcödé"),
		NewChar('x'), NewChar('語'),
		NewBool(true), NewBool(false),
		NewRef(storage.MakeOID(3, 7, 11)), NewRef(storage.NilOID),
		NewSet(NewInt(1), NewString("a")),
		NewList(),
		NewList(NewList(NewInt(1)), NewSet()),
		NewTuple([]string{"id", "refs"}, []Value{
			NewInt(5),
			NewSet(NewRef(storage.MakeOID(1, 2, 3))),
		}),
	}
	for _, v := range vals {
		got, err := Unmarshal(Marshal(v))
		if err != nil {
			t.Fatalf("roundtrip %s: %v", v, err)
		}
		if !Equal(got, v) && !(got.IsNull() && v.IsNull()) {
			t.Errorf("roundtrip %s -> %s", v, got)
		}
	}
	// NaN needs special handling since NaN != NaN via Compare.
	nan, err := Unmarshal(Marshal(NewFloat(math.NaN())))
	if err != nil || !math.IsNaN(nan.Flt) {
		t.Errorf("NaN roundtrip: %v %v", nan, err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{},
		{byte(KindFloat), 1, 2},        // truncated float
		{byte(KindString), 200},        // length beyond input
		{byte(KindReference), 1, 2, 3}, // truncated oid
		{255},                          // unknown kind
	}
	for _, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("Unmarshal(%v) succeeded", c)
		}
	}
	// Trailing garbage.
	if _, err := Unmarshal(append(Marshal(NewInt(1)), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func randomValue(rng *rand.Rand, depth int) Value {
	k := rng.Intn(10)
	if depth <= 0 && k > 6 {
		k = rng.Intn(7)
	}
	switch k {
	case 0:
		return Null
	case 1:
		return NewInt(int32(rng.Int63()))
	case 2:
		return NewLong(rng.Int63() - rng.Int63())
	case 3:
		return NewFloat(rng.NormFloat64() * 1e6)
	case 4:
		b := make([]byte, rng.Intn(20))
		rng.Read(b)
		return NewString(string(b))
	case 5:
		return NewChar(rune('a' + rng.Intn(26)))
	case 6:
		return NewBool(rng.Intn(2) == 0)
	case 7:
		return NewRef(storage.OID(rng.Uint64()))
	case 8:
		n := rng.Intn(4)
		out := Value{Kind: KindList}
		for i := 0; i < n; i++ {
			out.Append(randomValue(rng, depth-1))
		}
		return out
	default:
		n := rng.Intn(4)
		names := make([]string, n)
		fields := make([]Value, n)
		for i := 0; i < n; i++ {
			names[i] = string(rune('a' + i))
			fields[i] = randomValue(rng, depth-1)
		}
		return NewTuple(names, fields)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		v := randomValue(rng, 3)
		got, err := Unmarshal(Marshal(v))
		if err != nil {
			t.Fatalf("iter %d: %v (value %s)", i, err, v)
		}
		// Compare via re-encoding (handles NaN and null fields uniformly).
		if string(Marshal(got)) != string(Marshal(v)) {
			t.Fatalf("iter %d: roundtrip changed encoding of %s", i, v)
		}
	}
}

func TestTypeCheckAndZero(t *testing.T) {
	vehicle := TupleOf(
		Field{"id", TInteger},
		Field{"weight", TInteger},
		Field{"drivetrain", RefTo("VehicleDriveTrain")},
		Field{"manufacturer", RefTo("Company")},
	)
	z := vehicle.Zero()
	if err := vehicle.Check(z); err != nil {
		t.Errorf("zero value fails check: %v", err)
	}
	good := NewTuple(
		[]string{"id", "weight", "drivetrain"},
		[]Value{NewInt(1), NewInt(2000), NewRef(storage.MakeOID(2, 1, 1))},
	)
	if err := vehicle.Check(good); err != nil {
		t.Errorf("valid object rejected: %v", err)
	}
	bad := NewTuple([]string{"id"}, []Value{NewString("nope")})
	if err := vehicle.Check(bad); err == nil {
		t.Error("mistyped field accepted")
	}
	unknown := NewTuple([]string{"bogus"}, []Value{NewInt(1)})
	if err := vehicle.Check(unknown); err == nil {
		t.Error("unknown field accepted")
	}
	// Bounded strings.
	s32 := StringN(32)
	if err := s32.Check(NewString("ok")); err != nil {
		t.Errorf("short string rejected: %v", err)
	}
	long := make([]byte, 33)
	if err := s32.Check(NewString(string(long))); err == nil {
		t.Error("oversized string accepted")
	}
	// Numeric widening.
	if err := TFloat.Check(NewInt(3)); err != nil {
		t.Errorf("int into float rejected: %v", err)
	}
	if err := TInteger.Check(NewFloat(3)); err == nil {
		t.Error("float into int accepted")
	}
	// Collections check element types.
	st := SetOf(TInteger)
	if err := st.Check(NewSet(NewInt(1), NewInt(2))); err != nil {
		t.Errorf("int set rejected: %v", err)
	}
	if err := st.Check(NewSet(NewString("x"))); err == nil {
		t.Error("string in int set accepted")
	}
}

func TestTypeString(t *testing.T) {
	ty := TupleOf(
		Field{"engine", RefTo("VehicleEngine")},
		Field{"transmission", StringN(32)},
		Field{"tags", SetOf(TString)},
	)
	want := "TUPLE (engine REFERENCE (VehicleEngine), transmission String(32), tags SET (String))"
	if got := ty.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{NewInt(3), NewInt(1), NewFloat(2.5), NewInt(2)}
	SortValues(vs)
	want := []float64{1, 2, 2.5, 3}
	for i, v := range vs {
		f, _ := v.AsFloat()
		if f != want[i] {
			t.Errorf("pos %d = %v, want %v", i, f, want[i])
		}
	}
}

func TestEqualSymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewLong(a), NewLong(b)
		return Equal(va, vb) == Equal(vb, va) && Equal(va, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
