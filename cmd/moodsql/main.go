// Command moodsql is an interactive MOODSQL shell over a fresh MOOD
// database. Statements end with ';'. Run with -parallelism N to plan
// queries with intra-query parallelism (EXCHANGE nodes), -objcache BYTES
// to enable the decoded-object cache, -prefetch N to enable buffer-pool
// readahead, -shards N to partition class extents across N independent
// object stores (each with its own disk, pool and WAL), and -cluster N to
// enable the clustering tracer at sampling rate N (1 = record every
// traversal; EXPLAIN ANALYZE then shows clustered= locality counters and
// \reorganize applies the learned placements online).
// Run with -plancache to cache optimized SELECT plans per statement shape
// (repeats skip parse+optimize; EXPLAIN ANALYZE shows plancache= counters)
// and -groupcommit to batch concurrent WAL commit forces.
// Shell commands:
//
//	\schema            show the class hierarchy and extents
//	\class <name>      show one class (Figure 9.2 presentation)
//	\plan              show the last SELECT's access plan
//	\demo              load the paper's vehicle schema with sample data
//	\stats             show simulated-disk statistics
//	\reorganize        cluster traced traversals physically (-cluster N)
//	\begin [readonly]  start a transaction (readonly = lock-free snapshot)
//	\commit            commit the open transaction (or close the snapshot)
//	\abort             roll the open transaction back
//	\history           list this session's statements
//	\quit              exit
//
// Inside \begin, NEW/UPDATE/DELETE are transactional (undone by \abort,
// durable at \commit) and DDL is rejected. Inside \begin readonly, only
// SELECT is allowed; every query sees the database exactly as of the
// \begin, acquires no locks, and never blocks a concurrent writer.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"mood/internal/experiments"
	"mood/internal/funcmgr"
	"mood/internal/kernel"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/vehicledb"
	"mood/internal/view"
)

func main() {
	parallelism := flag.Int("parallelism", 0, "degree of intra-query parallelism (0 or 1 = serial plans)")
	objcacheBytes := flag.Int64("objcache", 0, "decoded-object cache budget in bytes (0 = disabled); try 1048576")
	prefetch := flag.Int("prefetch", 0, "buffer-pool readahead workers (0 = disabled)")
	shards := flag.Int("shards", 0, "partition class extents across N independent object stores (0 or 1 = single store)")
	clusterEvery := flag.Int("cluster", 0, "clustering tracer sampling rate: record every N-th traversal (0 = off, 1 = all); enables \\reorganize")
	planCache := flag.Bool("plancache", false, "cache optimized SELECT plans per statement shape (repeats skip parse+optimize)")
	groupCommit := flag.Bool("groupcommit", false, "batch concurrent WAL commit forces behind one leader fsync per window")
	flag.Parse()
	opts := kernel.DefaultOptions()
	opts.Parallelism = *parallelism
	opts.ObjectCacheBytes = *objcacheBytes
	opts.PrefetchWorkers = *prefetch
	opts.ShardCount = *shards
	opts.ClusterSampleEvery = *clusterEvery
	opts.PlanCache = *planCache
	opts.GroupCommit = *groupCommit
	db, err := kernel.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	qm := view.NewQueryManager(db)
	sess := &session{db: db, qm: qm}
	fmt.Println("MOOD - METU Object-Oriented DBMS (Go reproduction)")
	fmt.Println(`type MOODSQL ending with ';', or \demo, \schema, \quit`)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("mood> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !shellCommand(sess, trimmed) {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.Contains(line, ";") {
			stmt := pending.String()
			pending.Reset()
			res, err := sess.run(stmt)
			if err != nil {
				fmt.Println("error:", err)
			} else if res != nil {
				if msg, ok := multilineMessage(res); ok {
					fmt.Println(msg)
				} else {
					fmt.Print(res.String())
					fmt.Printf("(%d rows)\n", len(res.Rows))
				}
			}
		}
		prompt()
	}
}

// multilineMessage detects a single-cell message whose string spans lines
// (EXPLAIN / EXPLAIN ANALYZE plan trees); those read better raw than as a
// quoted table cell.
func multilineMessage(res *kernel.Result) (string, bool) {
	if len(res.Rows) == 1 && len(res.Rows[0]) == 1 {
		v := res.Rows[0][0]
		if v.Kind == object.KindString && strings.Contains(v.Str, "\n") {
			return v.Str, true
		}
	}
	return "", false
}

// session is one shell session's transaction state: at most one of tx
// (read-write, strict 2PL) or snap (read-only, lock-free snapshot) is open.
type session struct {
	db   *kernel.DB
	qm   *view.QueryManager
	tx   *kernel.Tx
	snap *kernel.Snapshot
}

// run routes a statement through the session's open transaction, if any.
func (s *session) run(stmt string) (*kernel.Result, error) {
	switch {
	case s.snap != nil:
		return s.snap.Query(stmt)
	case s.tx != nil:
		return s.db.ExecuteInTx(s.tx, stmt)
	default:
		return s.qm.Run(stmt)
	}
}

// shellCommand handles backslash commands; returns false to quit.
func shellCommand(s *session, cmd string) bool {
	db, qm := s.db, s.qm
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\quit`, `\q`:
		return false
	case `\begin`:
		if s.tx != nil || s.snap != nil {
			fmt.Println("a transaction is already open; \\commit or \\abort it first")
			break
		}
		if len(fields) > 1 && strings.EqualFold(fields[1], "readonly") {
			s.snap = db.BeginSnapshot()
			fmt.Println("snapshot transaction begun (read-only, lock-free)")
		} else {
			s.tx = db.Begin()
			fmt.Println("transaction begun")
		}
	case `\commit`:
		switch {
		case s.snap != nil:
			s.snap.Close()
			s.snap = nil
			fmt.Println("snapshot closed")
		case s.tx != nil:
			err := s.tx.Commit()
			s.tx = nil
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Println("committed")
		default:
			fmt.Println("no open transaction")
		}
	case `\abort`:
		switch {
		case s.snap != nil:
			s.snap.Close()
			s.snap = nil
			fmt.Println("snapshot closed")
		case s.tx != nil:
			err := s.tx.Abort()
			s.tx = nil
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Println("aborted")
		default:
			fmt.Println("no open transaction")
		}
	case `\schema`:
		fmt.Print(view.SchemaOverview(db))
	case `\catalog`:
		fmt.Print(view.CatalogDump(db))
	case `\class`:
		if len(fields) < 2 {
			fmt.Println(`usage: \class <name>`)
			break
		}
		out, err := view.ClassPresentation(db, fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(out)
	case `\plan`:
		if db.LastPlan == nil {
			fmt.Println("no SELECT has run yet")
			break
		}
		fmt.Println(optimizer.Render(db.LastPlan))
	case `\stats`:
		fmt.Println(db.Disk.Stats().String())
	case `\reorganize`:
		if db.Tracer() == nil {
			fmt.Println("clustering is off (run moodsql -cluster 1)")
			break
		}
		rs, err := db.Reorganize()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if rs.Moved == 0 {
			fmt.Println("nothing to reorganize: no traversals traced yet")
			break
		}
		fmt.Printf("reorganized %d extent parts: %d records clustered, %d vacated pages compacted\n",
			rs.Placements, rs.Moved, rs.PagesFreed)
	case `\history`:
		for i, h := range qm.History() {
			fmt.Printf("%3d: %s\n", i+1, strings.TrimSpace(h))
		}
	case `\demo`:
		if err := loadDemo(db); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("demo schema and data loaded (vehicle database, 1/100 paper scale)")
		fmt.Println(`try: SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2;`)
	default:
		fmt.Println("unknown command", fields[0])
	}
	return true
}

func loadDemo(db *kernel.DB) error {
	if err := vehicledb.DefineSchema(db.Cat); err != nil {
		return err
	}
	if _, err := vehicledb.Populate(db.Cat, experiments.Scale(0.01).Config()); err != nil {
		return err
	}
	// The paper's lbweight method.
	if err := db.RegisterMethod("Vehicle", "lbweight", func(inv *funcmgr.Invocation) (object.Value, error) {
		w, _ := inv.Self.Field("weight")
		return object.NewInt(int32(float64(w.Int) * 2.2075)), nil
	}); err != nil {
		return err
	}
	return db.RefreshStats()
}
