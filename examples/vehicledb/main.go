// The paper's running example, end to end: the Section 3.1 vehicle schema
// at a configurable fraction of the Table 13 cardinalities, the Section 3.1
// query (IS-A ranges with the minus operator, a path selection, an explicit
// join), and the two optimizer examples (8.1 and 8.2) with their access
// plans and results.
package main

import (
	"flag"
	"fmt"
	"log"

	"mood/internal/experiments"
	"mood/internal/funcmgr"
	"mood/internal/kernel"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/vehicledb"
)

func main() {
	scale := flag.Float64("scale", 0.02, "fraction of the paper's Table 13 cardinalities")
	flag.Parse()

	db, err := kernel.Open(kernel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := vehicledb.DefineSchema(db.Cat); err != nil {
		log.Fatal(err)
	}
	cfg := experiments.Scale(*scale).Config()
	cfg.Subclasses = true
	if _, err := vehicledb.Populate(db.Cat, cfg); err != nil {
		log.Fatal(err)
	}
	if err := db.RegisterMethod("Vehicle", "lbweight", func(inv *funcmgr.Invocation) (object.Value, error) {
		w, _ := inv.Self.Field("weight")
		return object.NewInt(int32(float64(w.Int) * 2.2075)), nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.RefreshStats(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vehicle database: %d vehicles, %d drivetrains, %d engines, %d companies\n\n",
		cfg.Vehicles, cfg.DriveTrains, cfg.Engines, cfg.Companies)

	run := func(title, query string) {
		fmt.Println("==", title)
		fmt.Println(query)
		res, err := db.Execute(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-> %d rows\n", len(res.Rows))
		if len(res.Rows) > 0 && len(res.Rows) <= 5 {
			fmt.Print(res.String())
		}
		fmt.Println("\naccess plan:")
		fmt.Println(optimizer.Render(db.LastPlan))
		fmt.Println()
	}

	// The Section 3.1 example query, verbatim structure.
	run("Section 3.1: non-Japanese automatic automobiles with > 4 cylinders", `
		SELECT c
		FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v
		WHERE c.drivetrain.transmission = 'AUTOMATIC'
		AND c.drivetrain.engine = v
		AND v.cylinders > 4`)

	// Example 8.1 (the query text writes v.company; Table 15 names the
	// attribute manufacturer).
	run("Example 8.1: BMW vehicles with 2-cylinder engines", `
		SELECT v FROM EVERY Vehicle v
		WHERE v.manufacturer.name = 'BMW'
		AND v.drivetrain.engine.cylinders = 2`)

	// Example 8.2.
	run("Example 8.2: vehicles with 2-cylinder engines", `
		SELECT v FROM EVERY Vehicle v
		WHERE v.drivetrain.engine.cylinders = 2`)

	// Aggregation over the whole fleet (GROUP BY / HAVING / ORDER BY).
	run("fleet statistics by cylinder count", `
		SELECT e.cylinders, COUNT(*) AS engines, AVG(e.size) AS avgsize
		FROM VehicleEngine e
		GROUP BY e.cylinders
		HAVING engines > 1
		ORDER BY e.cylinders`)

	// A late-bound method in a predicate.
	run("heavy vehicles by the lbweight() method", `
		SELECT COUNT(*) AS heavy FROM EVERY Vehicle v WHERE v.lbweight() > 6000`)

	fmt.Println("simulated disk totals:", db.Disk.Stats())
}
