package catalog

import (
	"errors"
	"fmt"
	"testing"

	"mood/internal/object"
	"mood/internal/storage"
)

func newCatalog(t testing.TB) *Catalog {
	t.Helper()
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 256)
	fm, err := storage.NewFileManager(bp)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(storage.NewObjectStore(bp, fm))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// defineVehicleSchema builds the paper's Section 3.1 example schema.
func defineVehicleSchema(t testing.TB, c *Catalog) {
	t.Helper()
	mustDefine := func(name string, tuple *object.Type, supers []string, methods []*MethodSig) {
		t.Helper()
		if _, err := c.DefineClass(name, tuple, supers, methods); err != nil {
			t.Fatalf("define %s: %v", name, err)
		}
	}
	mustDefine("VehicleEngine", object.TupleOf(
		object.Field{Name: "size", Type: object.TInteger},
		object.Field{Name: "cylinders", Type: object.TInteger},
	), nil, nil)
	mustDefine("VehicleDriveTrain", object.TupleOf(
		object.Field{Name: "engine", Type: object.RefTo("VehicleEngine")},
		object.Field{Name: "transmission", Type: object.StringN(32)},
	), nil, nil)
	mustDefine("Employee", object.TupleOf(
		object.Field{Name: "ssno", Type: object.TInteger},
		object.Field{Name: "name", Type: object.StringN(32)},
		object.Field{Name: "age", Type: object.TInteger},
	), nil, nil)
	mustDefine("Company", object.TupleOf(
		object.Field{Name: "name", Type: object.StringN(32)},
		object.Field{Name: "location", Type: object.StringN(32)},
		object.Field{Name: "president", Type: object.RefTo("Employee")},
	), nil, nil)
	mustDefine("Vehicle", object.TupleOf(
		object.Field{Name: "id", Type: object.TInteger},
		object.Field{Name: "weight", Type: object.TInteger},
		object.Field{Name: "drivetrain", Type: object.RefTo("VehicleDriveTrain")},
		object.Field{Name: "manufacturer", Type: object.RefTo("Company")},
	), nil, []*MethodSig{
		{Name: "lbweight", ReturnType: object.TInteger},
		{Name: "weight", ReturnType: object.TInteger},
	})
	mustDefine("Automobile", object.TupleOf(), []string{"Vehicle"}, nil)
	mustDefine("JapaneseAuto", object.TupleOf(), []string{"Automobile"}, nil)
}

func TestDefineAndLookup(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	cl, err := c.Class("Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	if !cl.IsClass || cl.Extent() == nil {
		t.Error("Vehicle should be a class with an extent")
	}
	id, err := c.TypeID("Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	name, err := c.TypeName(id)
	if err != nil || name != "Vehicle" {
		t.Errorf("TypeName(TypeID) roundtrip: %q %v", name, err)
	}
	if _, err := c.Class("Spaceship"); !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("missing class: %v", err)
	}
	if _, err := c.DefineClass("Vehicle", object.TupleOf(), nil, nil); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate define: %v", err)
	}
	if _, err := c.DefineClass("Bad", object.TupleOf(), []string{"Nope"}, nil); !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("unknown superclass: %v", err)
	}
}

func TestTypesVsClasses(t *testing.T) {
	c := newCatalog(t)
	ty, err := c.DefineType("Address", object.TupleOf(
		object.Field{Name: "street", Type: object.TString},
	))
	if err != nil {
		t.Fatal(err)
	}
	if ty.IsClass || ty.Extent() != nil {
		t.Error("type must have no extent")
	}
	if _, err := c.CreateObject("Address", object.NewTuple([]string{"street"}, []object.Value{object.NewString("x")})); err == nil {
		t.Error("CreateObject on a type succeeded")
	}
	if _, err := c.DefineClass("Sub", object.TupleOf(), []string{"Address"}, nil); err == nil {
		t.Error("inheriting from a type succeeded")
	}
}

func TestInheritance(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	if !c.IsA("JapaneseAuto", "Vehicle") || !c.IsA("Automobile", "Vehicle") {
		t.Error("IsA transitive failed")
	}
	if c.IsA("Vehicle", "Automobile") {
		t.Error("IsA inverted")
	}
	if !c.IsA("Vehicle", "Vehicle") {
		t.Error("IsA not reflexive")
	}
	closure, err := c.Closure("Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Vehicle", "Automobile", "JapaneseAuto"}
	if len(closure) != 3 || closure[0] != want[0] {
		t.Errorf("Closure = %v", closure)
	}
	subs := c.Subclasses("Vehicle")
	if len(subs) != 1 || subs[0] != "Automobile" {
		t.Errorf("Subclasses = %v", subs)
	}
	// Inherited attributes visible on the subclass.
	ty, err := c.AttributeType("JapaneseAuto", "weight")
	if err != nil || ty.Kind != object.KindInteger {
		t.Errorf("inherited attribute: %v %v", ty, err)
	}
	attrs, err := c.AllAttributes("JapaneseAuto")
	if err != nil || len(attrs) != 4 {
		t.Errorf("AllAttributes = %v (%v)", attrs, err)
	}
	// Inherited methods.
	m, err := c.Method("JapaneseAuto", "lbweight")
	if err != nil || m.Class != "Vehicle" {
		t.Errorf("inherited method: %+v %v", m, err)
	}
}

func TestMultipleInheritance(t *testing.T) {
	c := newCatalog(t)
	c.DefineClass("A", object.TupleOf(object.Field{Name: "x", Type: object.TInteger}), nil, nil)
	c.DefineClass("B", object.TupleOf(
		object.Field{Name: "x", Type: object.TString}, // conflicts with A.x
		object.Field{Name: "y", Type: object.TFloat},
	), nil, nil)
	c.DefineClass("C", object.TupleOf(object.Field{Name: "z", Type: object.TBoolean}), []string{"A", "B"}, nil)
	attrs, err := c.AllAttributes("C")
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 3 { // x (from A, first path wins), y, z
		t.Fatalf("AllAttributes(C) = %v", attrs)
	}
	ty, _ := c.AttributeType("C", "x")
	if ty.Kind != object.KindInteger {
		t.Errorf("diamond conflict resolution: x is %s, want Integer (leftmost path)", ty)
	}
	if !c.IsA("C", "A") || !c.IsA("C", "B") {
		t.Error("multiple IsA broken")
	}
}

func vehicleValue(id, weight int32, dt, mf storage.OID) object.Value {
	return object.NewTuple(
		[]string{"id", "weight", "drivetrain", "manufacturer"},
		[]object.Value{object.NewInt(id), object.NewInt(weight), object.NewRef(dt), object.NewRef(mf)},
	)
}

func TestObjectCRUDAndExtent(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	oid, err := c.CreateObject("Vehicle", vehicleValue(1, 2000, storage.NilOID, storage.NilOID))
	if err != nil {
		t.Fatal(err)
	}
	v, class, err := c.GetObject(oid)
	if err != nil || class != "Vehicle" {
		t.Fatalf("GetObject: %v %q", err, class)
	}
	if f, _ := v.Field("weight"); f.Int != 2000 {
		t.Errorf("weight = %v", f)
	}
	// Type checking on create.
	bad := object.NewTuple([]string{"weight"}, []object.Value{object.NewString("heavy")})
	if _, err := c.CreateObject("Vehicle", bad); err == nil {
		t.Error("mistyped object accepted")
	}
	// Update.
	v.SetField("weight", object.NewInt(2500))
	if err := c.UpdateObject(oid, v); err != nil {
		t.Fatal(err)
	}
	v2, _, _ := c.GetObject(oid)
	if f, _ := v2.Field("weight"); f.Int != 2500 {
		t.Error("update lost")
	}
	// Extent counting.
	n, _ := c.ExtentCount("Vehicle")
	if n != 1 {
		t.Errorf("ExtentCount = %d", n)
	}
	// Delete.
	if err := c.DeleteObject(oid); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetObject(oid); err == nil {
		t.Error("deleted object readable")
	}
}

func TestScanClosureWithMinus(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	mk := func(class string, id int32) storage.OID {
		oid, err := c.CreateObject(class, vehicleValue(id, 1000+id, storage.NilOID, storage.NilOID))
		if err != nil {
			t.Fatal(err)
		}
		return oid
	}
	mk("Vehicle", 1)
	mk("Automobile", 2)
	mk("Automobile", 3)
	mk("JapaneseAuto", 4)

	count := func(class string, minus []string) int {
		n := 0
		if err := c.ScanClosure(class, minus, func(storage.OID, object.Value) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := count("Vehicle", nil); got != 4 {
		t.Errorf("EVERY Vehicle = %d, want 4", got)
	}
	// The paper's query: EVERY Automobile - JapaneseAuto.
	if got := count("Automobile", []string{"JapaneseAuto"}); got != 2 {
		t.Errorf("EVERY Automobile - JapaneseAuto = %d, want 2", got)
	}
	if got := count("JapaneseAuto", nil); got != 1 {
		t.Errorf("EVERY JapaneseAuto = %d, want 1", got)
	}
	if got := count("Vehicle", []string{"Automobile"}); got != 1 {
		t.Errorf("EVERY Vehicle - Automobile = %d, want 1 (exclusion must remove the subtree)", got)
	}
}

func TestIndexesMaintained(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	var oids []storage.OID
	for i := int32(0); i < 100; i++ {
		oid, err := c.CreateObject("Vehicle", vehicleValue(i, 1000+i%10, storage.NilOID, storage.NilOID))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	// Backfill on creation.
	ix, err := c.CreateIndex("vehicle_weight", "Vehicle", "weight", BTreeIndex, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Lookup(object.NewInt(1003))
	if err != nil || len(got) != 10 {
		t.Fatalf("Lookup(1003) = %d oids (%v), want 10", len(got), err)
	}
	// Range lookup.
	rng, err := ix.RangeLookup(object.NewInt(1000), object.NewInt(1002))
	if err != nil || len(rng) != 30 {
		t.Fatalf("RangeLookup = %d (%v), want 30", len(rng), err)
	}
	// Maintenance on insert.
	c.CreateObject("Vehicle", vehicleValue(200, 1003, storage.NilOID, storage.NilOID))
	got, _ = ix.Lookup(object.NewInt(1003))
	if len(got) != 11 {
		t.Errorf("after insert: %d", len(got))
	}
	// Maintenance on update.
	v, _, _ := c.GetObject(oids[3]) // weight 1003
	v.SetField("weight", object.NewInt(9999))
	if err := c.UpdateObject(oids[3], v); err != nil {
		t.Fatal(err)
	}
	got, _ = ix.Lookup(object.NewInt(1003))
	if len(got) != 10 {
		t.Errorf("after update: %d", len(got))
	}
	if got, _ = ix.Lookup(object.NewInt(9999)); len(got) != 1 {
		t.Errorf("updated key missing: %d", len(got))
	}
	// Maintenance on delete.
	if err := c.DeleteObject(oids[3]); err != nil {
		t.Fatal(err)
	}
	if got, _ = ix.Lookup(object.NewInt(9999)); len(got) != 0 {
		t.Errorf("after delete: %d", len(got))
	}
	// Hash index coexists; IndexOn prefers the B+ tree.
	if _, err := c.CreateIndex("vehicle_weight_h", "Vehicle", "weight", HashIndex, false); err != nil {
		t.Fatal(err)
	}
	if best := c.IndexOn("Vehicle", "weight"); best == nil || best.Kind != BTreeIndex {
		t.Errorf("IndexOn preference: %+v", best)
	}
}

func TestIndexOnInheritedAttribute(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	// Index declared on Vehicle.weight serves Automobile instances too.
	c.CreateObject("Automobile", vehicleValue(1, 1234, storage.NilOID, storage.NilOID))
	ix, err := c.CreateIndex("w", "Vehicle", "weight", BTreeIndex, false)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ix.Lookup(object.NewInt(1234))
	if len(got) != 1 {
		t.Fatalf("subclass instance not in superclass index: %d", len(got))
	}
	// New subclass instance maintained.
	c.CreateObject("JapaneseAuto", vehicleValue(2, 1234, storage.NilOID, storage.NilOID))
	got, _ = ix.Lookup(object.NewInt(1234))
	if len(got) != 2 {
		t.Errorf("subclass insert not indexed: %d", len(got))
	}
	if c.IndexOn("JapaneseAuto", "weight") == nil {
		t.Error("IndexOn does not see superclass index from subclass")
	}
}

func TestPersistReopen(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 256)
	fm, _ := storage.NewFileManager(bp)
	store := storage.NewObjectStore(bp, fm)
	c, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	defineVehicleSchema(t, c)
	oid, err := c.CreateObject("Vehicle", vehicleValue(7, 1500, storage.NilOID, storage.NilOID))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("w", "Vehicle", "weight", BTreeIndex, false); err != nil {
		t.Fatal(err)
	}
	bp.FlushAll()

	// Reopen over the same disk.
	bp2 := storage.NewBufferPool(disk, 256)
	fm2, err := storage.OpenFileManager(bp2, fm.DirPage())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Open(storage.NewObjectStore(bp2, fm2))
	if err != nil {
		t.Fatal(err)
	}
	if !c2.IsA("JapaneseAuto", "Vehicle") {
		t.Error("hierarchy lost on reopen")
	}
	m, err := c2.Method("Automobile", "lbweight")
	if err != nil || m.Class != "Vehicle" {
		t.Errorf("methods lost: %v %v", m, err)
	}
	v, class, err := c2.GetObject(oid)
	if err != nil || class != "Vehicle" {
		t.Fatalf("object lost: %v %q", err, class)
	}
	if f, _ := v.Field("id"); f.Int != 7 {
		t.Error("object content lost")
	}
	ix := c2.IndexOn("Vehicle", "weight")
	if ix == nil {
		t.Fatal("index metadata lost")
	}
	got, err := ix.Lookup(object.NewInt(1500))
	if err != nil || len(got) != 1 || got[0] != oid {
		t.Errorf("rebuilt index broken: %v %v", got, err)
	}
}

func TestDropClass(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	if err := c.DropClass("Vehicle"); err == nil {
		t.Error("dropping class with subclasses succeeded")
	}
	if err := c.DropClass("JapaneseAuto"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Class("JapaneseAuto"); err == nil {
		t.Error("dropped class still visible")
	}
	if err := c.DropClass("JapaneseAuto"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestIsAPath(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	// isA(Vehicle.drivetrain.engine) = VehicleEngine
	got, err := c.IsAPath("Vehicle", []string{"drivetrain", "engine"})
	if err != nil || got != "VehicleEngine" {
		t.Errorf("IsAPath = %q %v", got, err)
	}
	// Terminating at an atomic attribute returns its type.
	got, err = c.IsAPath("Vehicle", []string{"drivetrain", "engine", "cylinders"})
	if err != nil || got != "Integer" {
		t.Errorf("IsAPath atomic tail = %q %v", got, err)
	}
	// Atomic mid-path is an error.
	if _, err := c.IsAPath("Vehicle", []string{"weight", "engine"}); err == nil {
		t.Error("atomic mid-path accepted")
	}
	if _, err := c.IsAPath("Vehicle", []string{"nope"}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestMethodSignature(t *testing.T) {
	m := &MethodSig{
		Class:      "Car",
		Name:       "CalculatePrice",
		ParamNames: []string{"Price", "ExchangeRate"},
		ParamTypes: []*object.Type{object.TInteger, object.TInteger},
		ReturnType: object.TInteger,
	}
	want := "Car::CalculatePrice(Integer,Integer)"
	if got := m.Signature(); got != want {
		t.Errorf("Signature = %q, want %q", got, want)
	}
}

func TestLargeExtent(t *testing.T) {
	c := newCatalog(t)
	defineVehicleSchema(t, c)
	const n = 5000
	for i := 0; i < n; i++ {
		if _, err := c.CreateObject("Vehicle", vehicleValue(int32(i), int32(i%50), storage.NilOID, storage.NilOID)); err != nil {
			t.Fatal(err)
		}
	}
	cnt, _ := c.ExtentCount("Vehicle")
	if cnt != n {
		t.Errorf("ExtentCount = %d", cnt)
	}
	pages, _ := c.ExtentPages("Vehicle")
	if pages < 10 {
		t.Errorf("ExtentPages = %d, suspiciously small", pages)
	}
	seen := 0
	c.ScanExtent("Vehicle", func(storage.OID, object.Value) bool { seen++; return true })
	if seen != n {
		t.Errorf("scan saw %d", seen)
	}
}

func ExampleCatalog_IsAPath() {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 64)
	fm, _ := storage.NewFileManager(bp)
	c, _ := New(storage.NewObjectStore(bp, fm))
	c.DefineClass("VehicleEngine", object.TupleOf(object.Field{Name: "cylinders", Type: object.TInteger}), nil, nil)
	c.DefineClass("Vehicle", object.TupleOf(object.Field{Name: "engine", Type: object.RefTo("VehicleEngine")}), nil, nil)
	cls, _ := c.IsAPath("Vehicle", []string{"engine"})
	fmt.Println(cls)
	// Output: VehicleEngine
}
