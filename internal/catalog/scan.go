package catalog

import (
	"fmt"

	"mood/internal/object"
	"mood/internal/storage"
)

// ExtentCursor is a pull-based scan over a class extent (optionally the
// whole IS-A closure, honoring the FROM clause's minus operator). Unlike
// ScanExtent/ScanClosure, which push every object through a callback, the
// cursor reads extent pages one at a time as the consumer asks for rows — a
// consumer that stops early stops paying for page reads, which is what makes
// the streaming executor's early termination observable on the simulated
// disk.
type ExtentCursor struct {
	cat     *Catalog
	classes []string // extents still to visit, in closure order
	ci      int
	file    *storage.File
	pid     storage.PageID
	buf     []scanned
	bi      int
	opened  bool
	done    bool
}

type scanned struct {
	oid storage.OID
	val object.Value
}

// OpenExtentScan opens a cursor over the direct extent of class (closure
// false) or over its IS-A closure minus the excluded subtrees (closure
// true), mirroring ScanExtent and ScanClosure respectively.
func (c *Catalog) OpenExtentScan(class string, minus []string, closure bool) (*ExtentCursor, error) {
	var classes []string
	if closure {
		all, err := c.Closure(class)
		if err != nil {
			return nil, err
		}
		excluded := map[string]bool{}
		for _, m := range minus {
			sub, err := c.Closure(m)
			if err != nil {
				return nil, err
			}
			for _, s := range sub {
				excluded[s] = true
			}
		}
		for _, name := range all {
			if !excluded[name] {
				classes = append(classes, name)
			}
		}
	} else {
		classes = []string{class}
	}
	// Validate every extent up front so Next never reports a schema error
	// halfway through a drained pipeline.
	for _, name := range classes {
		cl, err := c.Class(name)
		if err != nil {
			return nil, err
		}
		if cl.extent == nil {
			return nil, fmt.Errorf("catalog: %s has no extent", name)
		}
	}
	return &ExtentCursor{cat: c, classes: classes}, nil
}

// Next returns the next object of the scan; ok is false when the scan is
// exhausted.
func (it *ExtentCursor) Next() (storage.OID, object.Value, bool, error) {
	for {
		if it.done {
			return storage.NilOID, object.Null, false, nil
		}
		if it.bi < len(it.buf) {
			h := it.buf[it.bi]
			it.bi++
			return h.oid, h.val, true, nil
		}
		if err := it.fill(); err != nil {
			it.done = true
			return storage.NilOID, object.Null, false, err
		}
	}
}

// fill buffers the next non-empty page's objects, advancing through the
// class list; it sets done when every extent is exhausted.
func (it *ExtentCursor) fill() error {
	it.buf, it.bi = nil, 0
	for {
		if it.file == nil {
			// Advance to the next class's extent.
			if it.opened {
				it.ci++
			}
			if it.ci >= len(it.classes) {
				it.done = true
				return nil
			}
			cl, err := it.cat.Class(it.classes[it.ci])
			if err != nil {
				return err
			}
			it.file = cl.extent
			it.pid = it.cat.store.FirstScanPage(cl.extent)
			it.opened = true
		}
		if it.pid == 0 { // extent exhausted
			it.file = nil
			continue
		}
		recs, next, err := it.cat.store.ScanPage(it.file, it.pid)
		if err != nil {
			return err
		}
		it.pid = next
		for _, r := range recs {
			_, v, err := decodeObject(r.Data)
			if err != nil {
				return err
			}
			it.buf = append(it.buf, scanned{oid: r.OID, val: v})
		}
		if len(it.buf) > 0 {
			return nil
		}
	}
}

// Close releases the cursor. Closing early is how a pipeline abandons the
// remaining pages without reading them.
func (it *ExtentCursor) Close() {
	it.done = true
	it.buf, it.file = nil, nil
}
