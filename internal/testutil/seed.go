// Package testutil holds helpers shared by the repository's tests.
package testutil

import (
	"os"
	"strconv"
	"testing"
)

// SeedEnv is the environment variable consulted by Seed.
const SeedEnv = "MOOD_TEST_SEED"

// Seed returns the random seed a property-style test should use: the value
// of MOOD_TEST_SEED if set, else the given default. The chosen seed is
// logged (visible under -v and, crucially, in every failure report), so any
// failing run can be replayed exactly:
//
//	MOOD_TEST_SEED=<seed> go test -run <TestName> ./<pkg> -v
func Seed(t testing.TB, def int64) int64 {
	t.Helper()
	if s := os.Getenv(SeedEnv); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("testutil: %s=%q is not an integer: %v", SeedEnv, s, err)
		}
		t.Logf("seed %d (from %s)", v, SeedEnv)
		return v
	}
	t.Logf("seed %d (replay with %s=%d)", def, SeedEnv, def)
	return def
}
