package sql

import (
	"strings"

	"mood/internal/expr"
	"mood/internal/object"
)

// Statement is any parsed MOODSQL statement.
type Statement interface{ stmt() }

// CreateClass is CREATE CLASS / CREATE TYPE.
type CreateClass struct {
	Name    string
	IsType  bool // CREATE TYPE: copy semantics, no extent
	Supers  []string
	Fields  []FieldDef
	Methods []MethodDef
}

func (*CreateClass) stmt() {}

// FieldDef is one attribute declaration.
type FieldDef struct {
	Name string
	Type *object.Type
}

// MethodDef is one method declaration of a METHODS: block; only the
// signature is recorded (bodies are compiled separately and registered with
// the Function Manager).
type MethodDef struct {
	Name       string
	ParamNames []string
	ParamTypes []*object.Type
	Return     *object.Type
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON class(attr) [USING BTREE|HASH].
type CreateIndex struct {
	Name   string
	Class  string
	Attr   string
	Hash   bool
	Unique bool
}

func (*CreateIndex) stmt() {}

// CreateJoinIndex is CREATE JOIN INDEX name ON class(attr): it materializes
// the binary join index on the reference attribute class.attr, maintained
// under the WAL from then on.
type CreateJoinIndex struct {
	Name  string
	Class string
	Attr  string
}

func (*CreateJoinIndex) stmt() {}

// DropClass is DROP CLASS name.
type DropClass struct{ Name string }

func (*DropClass) stmt() {}

// DropIndex is DROP INDEX name.
type DropIndex struct{ Name string }

func (*DropIndex) stmt() {}

// NewObject is the paper's object-creation statement:
//
//	new Employee <"Budak Arpinar", "Computer Engineer", 1969>
//
// Values are positional against the class's full attribute list.
type NewObject struct {
	Class  string
	Values []expr.Expr
}

func (*NewObject) stmt() {}

// FromItem is one range-variable declaration of a FROM clause:
// [EVERY] Class [- Sub]* var. EVERY (and any minus term) ranges over the
// IS-A closure; a bare class name ranges over the direct extent only.
type FromItem struct {
	Class string
	Minus []string
	Every bool
	Var   string
}

func (f FromItem) String() string {
	s := ""
	if f.Every || len(f.Minus) > 0 {
		s = "EVERY "
	}
	s += f.Class
	for _, m := range f.Minus {
		s += " - " + m
	}
	return s + " " + f.Var
}

// AggKind classifies an aggregate in a projection.
type AggKind uint8

// Aggregates.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (a AggKind) String() string {
	return [...]string{"", "COUNT", "SUM", "AVG", "MIN", "MAX"}[a]
}

// ProjItem is one projection-list entry: a path expression (or *) possibly
// wrapped in an aggregate.
type ProjItem struct {
	Agg  AggKind
	Star bool // COUNT(*)
	Expr expr.Expr
	As   string
}

// PathRef is a syntactic path rooted at a range variable, used by GROUP BY
// and ORDER BY.
type PathRef struct {
	Var  string
	Path []string
}

func (p PathRef) String() string {
	if len(p.Path) == 0 {
		return p.Var
	}
	return p.Var + "." + strings.Join(p.Path, ".")
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Ref  PathRef
	Desc bool
}

// Select is a MOODSQL query.
type Select struct {
	Distinct bool
	Projs    []ProjItem
	From     []FromItem
	Where    expr.Expr
	GroupBy  []PathRef
	Having   expr.Expr
	OrderBy  []OrderItem
}

func (*Select) stmt() {}

// Explain is EXPLAIN [ANALYZE] <select>: render the access plan, and with
// ANALYZE also run it through the streaming pipeline collecting per-operator
// rows, simulated page reads, and wall time.
type Explain struct {
	Analyze bool
	Query   *Select
}

func (*Explain) stmt() {}

// SetClause is one assignment of an UPDATE.
type SetClause struct {
	Attr  string
	Value expr.Expr
}

// Update is UPDATE Class var SET a = e, ... [WHERE ...].
type Update struct {
	From  FromItem
	Sets  []SetClause
	Where expr.Expr
}

func (*Update) stmt() {}

// Delete is DELETE FROM Class var [WHERE ...].
type Delete struct {
	From  FromItem
	Where expr.Expr
}

func (*Delete) stmt() {}

// PathOf decomposes an expression into a PathRef if it is a pure
// variable-rooted attribute path (v.a.b...); ok is false otherwise.
func PathOf(e expr.Expr) (PathRef, bool) {
	var path []string
	for {
		switch n := e.(type) {
		case *expr.Var:
			// reverse accumulated path
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return PathRef{Var: n.Name, Path: path}, true
		case *expr.Field:
			path = append(path, n.Name)
			e = n.Base
		default:
			return PathRef{}, false
		}
	}
}
