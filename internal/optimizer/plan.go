package optimizer

import (
	"fmt"
	"strings"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/expr"
	"mood/internal/sql"
)

// Plan is a physical access plan node. Rendering follows the paper's
// notation, e.g. Example 8.1's
//
//	JOIN( BIND(Vehicle, v),
//	      SELECT(BIND(Company, c), c.name = 'BMW'),
//	      HASH_PARTITION, v.company = c.self )
type Plan interface {
	// Card is the optimizer's cardinality estimate for the node's output.
	Card() float64
	render(sb *strings.Builder, indent string)
}

// Render pretty-prints a plan.
func Render(p Plan) string {
	var sb strings.Builder
	p.render(&sb, "")
	return sb.String()
}

// BindPlan scans a class extent: BIND(Class, var). Minus lists excluded
// subclasses; Every includes the IS-A closure.
type BindPlan struct {
	Class string
	Var   string
	Minus []string
	Every bool
	card  float64
}

// Card returns the estimated output cardinality.
func (p *BindPlan) Card() float64 { return p.card }

func (p *BindPlan) render(sb *strings.Builder, indent string) {
	name := p.Class
	for _, m := range p.Minus {
		name += " - " + m
	}
	fmt.Fprintf(sb, "%sBIND(%s, %s)", indent, name, p.Var)
}

// SelectPlan filters its input: SELECT(input, predicate).
type SelectPlan struct {
	Input Plan
	Pred  expr.Expr
	card  float64
}

// Card returns the estimated output cardinality.
func (p *SelectPlan) Card() float64 { return p.card }

func (p *SelectPlan) render(sb *strings.Builder, indent string) {
	fmt.Fprintf(sb, "%sSELECT(\n", indent)
	p.Input.render(sb, indent+"  ")
	fmt.Fprintf(sb, ",\n%s  %s)", indent, p.Pred)
}

// IndSelPlan is an index selection: INDSEL(Class, var, index, predicate).
// It yields a set of object identifiers (Section 3.2's IndSel).
type IndSelPlan struct {
	Class string
	Var   string
	Index *catalog.Index
	Pred  algebra.SimplePredicate
	// ConstParam/Const2Param are the plan-cache parameter indices of
	// Pred.Constant/Pred.Constant2 (0 = plain literal). Bind substitutes
	// fresh values through them when a cached plan is reused.
	ConstParam  int
	Const2Param int
	card        float64
}

// Card returns the estimated output cardinality.
func (p *IndSelPlan) Card() float64 { return p.card }

func (p *IndSelPlan) render(sb *strings.Builder, indent string) {
	fmt.Fprintf(sb, "%sINDSEL(%s, %s, %s[%s], %s)", indent, p.Class, p.Var,
		p.Index.Name, p.Index.Kind, renderSimple(p.Var, p.Pred))
}

func renderSimple(v string, p algebra.SimplePredicate) string {
	if p.Between {
		return fmt.Sprintf("%s.%s BETWEEN %s AND %s", v, p.Attribute, p.Constant, p.Constant2)
	}
	return fmt.Sprintf("%s.%s %s %s", v, p.Attribute, p.Op, p.Constant)
}

// IntersectPlan intersects OID sets from several index selections (§8.1's
// multi-index case) and fetches the surviving objects.
type IntersectPlan struct {
	Inputs []Plan
	card   float64
}

// Card returns the estimated output cardinality.
func (p *IntersectPlan) Card() float64 { return p.card }

func (p *IntersectPlan) render(sb *strings.Builder, indent string) {
	fmt.Fprintf(sb, "%sINTERSECT(\n", indent)
	for i, in := range p.Inputs {
		in.render(sb, indent+"  ")
		if i < len(p.Inputs)-1 {
			sb.WriteString(",\n")
		}
	}
	sb.WriteString(")")
}

// JoinPlan is an implicit join: JOIN(left, right, METHOD, l.attr = r.self).
type JoinPlan struct {
	Left, Right Plan
	Method      cost.JoinMethod
	LeftVar     string
	Attribute   string
	RightVar    string
	Index       string // binary join index name, when Method is BJI
	card        float64
}

// Card returns the estimated output cardinality.
func (p *JoinPlan) Card() float64 { return p.card }

func (p *JoinPlan) render(sb *strings.Builder, indent string) {
	fmt.Fprintf(sb, "%sJOIN(\n", indent)
	p.Left.render(sb, indent+"  ")
	sb.WriteString(",\n")
	p.Right.render(sb, indent+"  ")
	fmt.Fprintf(sb, ",\n%s  %s, %s.%s = %s.self)", indent, p.Method, p.LeftVar, p.Attribute, p.RightVar)
}

// ProjectPlan projects attributes: PROJECT(input, items).
type ProjectPlan struct {
	Input Plan
	Items []sql.ProjItem
	card  float64
}

// Card returns the estimated output cardinality.
func (p *ProjectPlan) Card() float64 { return p.card }

func (p *ProjectPlan) render(sb *strings.Builder, indent string) {
	parts := make([]string, len(p.Items))
	for i, it := range p.Items {
		s := ""
		if it.Agg != sql.AggNone {
			inner := "*"
			if !it.Star && it.Expr != nil {
				inner = it.Expr.String()
			}
			s = fmt.Sprintf("%s(%s)", it.Agg, inner)
		} else if it.Expr != nil {
			s = it.Expr.String()
		}
		if it.As != "" {
			s += " AS " + it.As
		}
		parts[i] = s
	}
	fmt.Fprintf(sb, "%sPROJECT(\n", indent)
	p.Input.render(sb, indent+"  ")
	fmt.Fprintf(sb, ",\n%s  [%s])", indent, strings.Join(parts, ", "))
}

// GroupPlan groups and aggregates: GROUP(input, by, having, projs).
type GroupPlan struct {
	Input  Plan
	By     []sql.PathRef
	Having expr.Expr
	Projs  []sql.ProjItem
	card   float64
}

// Card returns the estimated output cardinality.
func (p *GroupPlan) Card() float64 { return p.card }

func (p *GroupPlan) render(sb *strings.Builder, indent string) {
	keys := make([]string, len(p.By))
	for i, b := range p.By {
		keys[i] = b.String()
	}
	fmt.Fprintf(sb, "%sGROUP(\n", indent)
	p.Input.render(sb, indent+"  ")
	fmt.Fprintf(sb, ",\n%s  BY [%s]", indent, strings.Join(keys, ", "))
	if p.Having != nil {
		fmt.Fprintf(sb, " HAVING %s", p.Having)
	}
	sb.WriteString(")")
}

// SortPlan orders rows: SORT(input, keys).
type SortPlan struct {
	Input Plan
	Keys  []sql.OrderItem
	card  float64
}

// Card returns the estimated output cardinality.
func (p *SortPlan) Card() float64 { return p.card }

func (p *SortPlan) render(sb *strings.Builder, indent string) {
	keys := make([]string, len(p.Keys))
	for i, k := range p.Keys {
		keys[i] = k.Ref.String()
		if k.Desc {
			keys[i] += " DESC"
		}
	}
	fmt.Fprintf(sb, "%sSORT(\n", indent)
	p.Input.render(sb, indent+"  ")
	fmt.Fprintf(sb, ",\n%s  [%s])", indent, strings.Join(keys, ", "))
}

// UnionPlan unions the sub-access plans of the DNF's AND-terms (Section 7:
// "all the subaccess plans generated are combined using the UNION
// operation"). Duplicate elimination keys on Vars — the query's FROM-clause
// range variables — because different AND-terms introduce different
// intermediate variables for their path expansions.
type UnionPlan struct {
	Inputs []Plan
	Vars   []string
	card   float64
}

// Card returns the estimated output cardinality.
func (p *UnionPlan) Card() float64 { return p.card }

func (p *UnionPlan) render(sb *strings.Builder, indent string) {
	fmt.Fprintf(sb, "%sUNION(\n", indent)
	for i, in := range p.Inputs {
		in.render(sb, indent+"  ")
		if i < len(p.Inputs)-1 {
			sb.WriteString(",\n")
		}
	}
	sb.WriteString(")")
}

// DupElimPlan eliminates duplicates (SELECT DISTINCT).
type DupElimPlan struct {
	Input Plan
	card  float64
}

// Card returns the estimated output cardinality.
func (p *DupElimPlan) Card() float64 { return p.card }

func (p *DupElimPlan) render(sb *strings.Builder, indent string) {
	fmt.Fprintf(sb, "%sDUPELIM(\n", indent)
	p.Input.render(sb, indent+"  ")
	sb.WriteString(")")
}

// CrossPlan is the unconstrained product of two variable groups (no join
// predicate connects them). It is rendered explicitly so surprising
// Cartesian products are visible in plans.
type CrossPlan struct {
	Left, Right Plan
	card        float64
}

// Card returns the estimated output cardinality.
func (p *CrossPlan) Card() float64 { return p.card }

func (p *CrossPlan) render(sb *strings.Builder, indent string) {
	fmt.Fprintf(sb, "%sCROSS(\n", indent)
	p.Left.render(sb, indent+"  ")
	sb.WriteString(",\n")
	p.Right.render(sb, indent+"  ")
	sb.WriteString(")")
}
