package kernel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mood/internal/lock"
	"mood/internal/object"
	"mood/internal/storage"
)

// TestConcurrentDeadlockVictimRetries drives two transactions into a
// guaranteed waits-for cycle — each X-locks its own Employee, then (only
// after both hold their first lock) asks for the other's — and checks that
// the lock manager kills exactly one of them, that the victim's retry
// succeeds, and that both updates are durable in the end. Run under -race
// this also validates the kernel's locking against the memory model.
func TestConcurrentDeadlockVictimRetries(t *testing.T) {
	db := openAndDefine(t)
	setup := db.Begin()
	var oids [2]storage.OID
	for i := range oids {
		oid, err := setup.Create("Employee", employee("worker", int32(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		oids[i] = oid
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	// Barrier: both workers must hold their first X lock before either asks
	// for its second, so the cycle is certain, not scheduler-dependent.
	var firstLockHeld sync.WaitGroup
	firstLockHeld.Add(2)
	var victims, commits atomic.Int32

	// setAge goes straight to Update (an X lock on first touch) rather than
	// Get-then-Update: an S→X upgrade race between the two workers would be
	// a livelock (the victim's retried S grant keeps starving the
	// survivor's upgrade), which is a different phenomenon than the
	// waits-for cycle this test pins down.
	setAge := func(tx *Tx, oid storage.OID, age int32) error {
		v := employee("worker", 1)
		v.SetField("age", object.NewInt(age))
		return tx.Update(oid, v)
	}

	worker := func(id int) error {
		first, second := oids[id], oids[1-id]
		for attempt := 0; attempt < 10; attempt++ {
			tx := db.Begin()
			err := setAge(tx, first, int32(100+id))
			if err == nil {
				if attempt == 0 {
					firstLockHeld.Done()
					firstLockHeld.Wait()
				}
				err = setAge(tx, second, int32(200+id))
			}
			if err == nil {
				if err = tx.Commit(); err != nil {
					return err
				}
				commits.Add(1)
				return nil
			}
			if !errors.Is(err, lock.ErrDeadlock) {
				tx.Abort()
				return err
			}
			victims.Add(1)
			if aerr := tx.Abort(); aerr != nil {
				return aerr
			}
			// Retry: the survivor still holds both locks, so the re-acquire
			// simply blocks until it commits — no second cycle is possible.
		}
		return errors.New("worker never committed")
	}

	errs := make(chan error, 2)
	for id := 0; id < 2; id++ {
		go func(id int) { errs <- worker(id) }(id)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	if got := victims.Load(); got != 1 {
		t.Errorf("deadlock victims = %d, want exactly 1", got)
	}
	if got := commits.Load(); got != 2 {
		t.Errorf("commits = %d, want 2", got)
	}
	_, _, deadlocks := db.Locks.Stats()
	if deadlocks < 1 {
		t.Errorf("lock manager counted %d deadlocks, want >= 1", deadlocks)
	}
	// The victim's retry blocks behind the survivor and so commits last,
	// overwriting both objects: the final state must be exactly one worker's
	// pair of writes (first=100+id, second=200+id), never a mix.
	var ages [2]int64
	for i, oid := range oids {
		v, _, err := db.Cat.GetObject(oid)
		if err != nil {
			t.Fatal(err)
		}
		age, _ := v.Field("age")
		ages[i] = age.Int
	}
	if !(ages == [2]int64{100, 200} || ages == [2]int64{201, 101}) {
		t.Errorf("final ages %v are not one worker's consistent pair", ages)
	}
	if got := db.Log.ActiveTransactions(); len(got) != 0 {
		t.Errorf("transactions still active after test: %v", got)
	}
}

// TestConcurrentMixedWorkload runs several goroutines that create, read,
// update, and commit or abort against a shared set of objects, retrying on
// deadlock. It asserts progress (every worker finishes) and consistency
// (no transaction left active, object count matches the committed creates).
func TestConcurrentMixedWorkload(t *testing.T) {
	db := openAndDefine(t)
	setup := db.Begin()
	var shared [4]storage.OID
	for i := range shared {
		oid, err := setup.Create("Employee", employee("shared", int32(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		shared[i] = oid
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	const workers = 6
	const opsPerWorker = 8
	var created atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsPerWorker; op++ {
				// Touch two shared objects in a consistent global order half
				// the time, reversed order the other half — deadlocks are
				// possible and must be survivable.
				a, b := (w+op)%len(shared), (w+op+1)%len(shared)
				if op%2 == 1 {
					a, b = b, a
				}
				for attempt := 0; ; attempt++ {
					tx := db.Begin()
					err := func() error {
						// Direct Update → X on first touch (no S→X upgrade,
						// which can livelock between retrying peers).
						v := employee("shared", int32(a+1))
						v.SetField("age", object.NewInt(int32(30+op)))
						if err := tx.Update(shared[a], v); err != nil {
							return err
						}
						if _, _, err := tx.Get(shared[b]); err != nil {
							return err
						}
						if op%3 == 0 {
							if _, err := tx.Create("Employee", employee("new", int32(100+w*10+op))); err != nil {
								return err
							}
						}
						return nil
					}()
					if err == nil && op%4 == 3 {
						if err := tx.Abort(); err != nil {
							t.Error(err)
						}
						break
					}
					if err == nil {
						if err := tx.Commit(); err != nil {
							t.Error(err)
						}
						if op%3 == 0 {
							created.Add(1)
						}
						break
					}
					tx.Abort()
					if !errors.Is(err, lock.ErrDeadlock) {
						t.Errorf("worker %d op %d: %v", w, op, err)
						break
					}
					if attempt > 50 {
						t.Errorf("worker %d op %d: still deadlocking after %d retries", w, op, attempt)
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := db.Log.ActiveTransactions(); len(got) != 0 {
		t.Errorf("transactions still active: %v", got)
	}
	n := 0
	if err := db.Cat.ScanExtent("Employee", func(storage.OID, object.Value) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := len(shared) + int(created.Load())
	if n != want {
		t.Errorf("employees = %d, want %d (%d shared + %d committed creates)", n, want, len(shared), created.Load())
	}
}
