package storage

import (
	"bytes"
	"fmt"
	"testing"
)

// payload builds a deterministic record body for index i.
func payload(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-%s", i, string(bytes.Repeat([]byte{'x'}, 40+i%17))))
}

// fillExtent inserts n deterministic records and returns their OIDs.
func fillExtent(t *testing.T, st Store, e *Extent, n int) []OID {
	t.Helper()
	oids := make([]OID, n)
	for i := 0; i < n; i++ {
		oid, err := st.InsertExtent(e, payload(i))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		oids[i] = oid
	}
	return oids
}

// checkAll verifies every record resolves to its payload through Get, that
// FetchBatch agrees, and that a scan surfaces each OID exactly once.
func checkAll(t *testing.T, st Store, e *Extent, oids []OID, deleted map[OID]bool) {
	t.Helper()
	for i, oid := range oids {
		if deleted[oid] {
			if _, err := st.Get(oid); err == nil {
				t.Fatalf("record %d (%s): deleted but Get succeeded", i, oid)
			}
			continue
		}
		got, err := st.Get(oid)
		if err != nil {
			t.Fatalf("record %d (%s): Get: %v", i, oid, err)
		}
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("record %d (%s): Get = %q, want %q", i, oid, got, payload(i))
		}
	}
	var live []OID
	want := make(map[OID]int)
	for i, oid := range oids {
		if !deleted[oid] {
			live = append(live, oid)
			want[oid] = i
		}
	}
	batch, err := st.FetchBatch(live)
	if err != nil {
		t.Fatalf("FetchBatch: %v", err)
	}
	for j, oid := range live {
		if !bytes.Equal(batch[j], payload(want[oid])) {
			t.Fatalf("FetchBatch[%d] (%s) = %q, want %q", j, oid, batch[j], payload(want[oid]))
		}
	}
	seen := make(map[OID]int)
	if err := st.ScanExtent(e, func(oid OID, data []byte) bool {
		seen[oid]++
		if i, ok := want[oid]; !ok {
			t.Fatalf("scan surfaced unexpected OID %s", oid)
		} else if !bytes.Equal(data, payload(i)) {
			t.Fatalf("scan %s = %q, want %q", oid, data, payload(i))
		}
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	for oid, n := range seen {
		if n != 1 {
			t.Fatalf("scan surfaced %s %d times", oid, n)
		}
	}
	if len(seen) != len(live) {
		t.Fatalf("scan surfaced %d records, want %d", len(seen), len(live))
	}
}

func TestMigrateRecordsPreservesOIDs(t *testing.T) {
	st, _, _ := newTestStore(t, 32)
	e, err := st.CreateExtent("things")
	if err != nil {
		t.Fatalf("CreateExtent: %v", err)
	}
	oids := fillExtent(t, st, e, 200)
	pagesBefore := e.NumPages()

	// Migrate every third record, in reverse order (an arbitrary clustering
	// placement), and verify nothing observable changed but the layout.
	var move []OID
	for i := len(oids) - 1; i >= 0; i -= 3 {
		move = append(move, oids[i])
	}
	moved, err := st.MigrateRecords(e, 0, move, nil, false)
	if err != nil {
		t.Fatalf("MigrateRecords: %v", err)
	}
	if moved != len(move) {
		t.Fatalf("moved %d records, want %d", moved, len(move))
	}
	if e.NumPages() <= pagesBefore {
		t.Fatalf("migration appended no pages (pages %d -> %d)", pagesBefore, e.NumPages())
	}
	if e.NumRecords() != len(oids) {
		t.Fatalf("NumRecords = %d after migration, want %d", e.NumRecords(), len(oids))
	}
	checkAll(t, st, e, oids, nil)

	// The moved records must sit densely in migration order: consecutive
	// destinations land on the same or the next destination page.
	var last OID
	for k, oid := range move {
		dst, ok := st.Forwarded(oid)
		if !ok {
			t.Fatalf("no forwarding entry for migrated %s", oid)
		}
		if dst.File() != oid.File() || dst.Shard() != oid.Shard() {
			t.Fatalf("migration changed file/shard: %s -> %s", oid, dst)
		}
		if k > 0 && dst.Page() != last.Page() && dst <= last {
			t.Fatalf("destination order broken: %s then %s", last, dst)
		}
		last = dst
	}
}

func TestMigrateForwardResolvedAcrossReopen(t *testing.T) {
	disk := NewDiskSim(DefaultDiskParams())
	bp := NewBufferPool(disk, 32)
	fm, err := NewFileManager(bp)
	if err != nil {
		t.Fatalf("NewFileManager: %v", err)
	}
	st := NewObjectStore(bp, fm)
	e, err := st.CreateExtent("things")
	if err != nil {
		t.Fatalf("CreateExtent: %v", err)
	}
	oids := fillExtent(t, st, e, 120)
	move := append([]OID(nil), oids[10:60]...)
	if _, err := st.MigrateRecords(e, 0, move, nil, false); err != nil {
		t.Fatalf("MigrateRecords: %v", err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}

	// Reopen: new pool, new file manager, new store — the in-memory
	// forwarding map is gone; reads must resolve through the on-disk stubs
	// and re-learn the map as they go.
	bp2 := NewBufferPool(disk, 32)
	fm2, err := OpenFileManager(bp2, fm.DirPage())
	if err != nil {
		t.Fatalf("OpenFileManager: %v", err)
	}
	st2 := NewObjectStore(bp2, fm2)
	e2, err := st2.OpenExtent("things")
	if err != nil {
		t.Fatalf("OpenExtent: %v", err)
	}
	if _, ok := st2.Forwarded(move[0]); ok {
		t.Fatalf("fresh store has a forwarding entry before any read")
	}
	checkAll(t, st2, e2, oids, nil)
	if dst, ok := st2.Forwarded(move[0]); !ok {
		t.Fatalf("stub resolution did not re-learn the forwarding entry")
	} else if got, err := st2.Get(dst); err != nil || got == nil {
		// The learned destination must itself resolve (relocation frame).
		t.Fatalf("learned destination %s unreadable: %v", dst, err)
	}
}

func TestMigrateOverflowRecordMovesHeadOnly(t *testing.T) {
	st, _, disk := newTestStore(t, 32)
	e, err := st.CreateExtent("blobs")
	if err != nil {
		t.Fatalf("CreateExtent: %v", err)
	}
	big := bytes.Repeat([]byte("abcdefgh"), 3*disk.PageSize()/8) // 3 pages of chain
	oidBig, err := st.InsertExtent(e, big)
	if err != nil {
		t.Fatalf("insert big: %v", err)
	}
	small, err := st.InsertExtent(e, []byte("small"))
	if err != nil {
		t.Fatalf("insert small: %v", err)
	}
	allocated := disk.NumPages()

	if _, err := st.MigrateRecords(e, 0, []OID{oidBig, small}, nil, false); err != nil {
		t.Fatalf("MigrateRecords: %v", err)
	}
	// Only the destination heap page is new: the overflow chain stayed put.
	if got := disk.NumPages(); got != allocated+1 {
		t.Fatalf("migration allocated %d pages, want 1 (overflow chain must not move)", got-allocated)
	}
	got, err := st.Get(oidBig)
	if err != nil {
		t.Fatalf("Get big after migration: %v", err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("big record corrupted by migration (%d bytes, want %d)", len(got), len(big))
	}

	// Update and delete still work through the relocation frame.
	big2 := bytes.Repeat([]byte("ZYXWVUTS"), 2*disk.PageSize()/8)
	if err := st.Update(oidBig, big2); err != nil {
		t.Fatalf("Update big after migration: %v", err)
	}
	if got, _ := st.Get(oidBig); !bytes.Equal(got, big2) {
		t.Fatalf("updated big record mismatch")
	}
	if err := st.Delete(oidBig); err != nil {
		t.Fatalf("Delete big after migration: %v", err)
	}
	if _, err := st.Get(oidBig); err == nil {
		t.Fatalf("Get after delete succeeded")
	}
	if got, _ := st.Get(small); !bytes.Equal(got, []byte("small")) {
		t.Fatalf("small record lost")
	}
}

func TestMigrateShardZeroBitCompatibility(t *testing.T) {
	st, _, _ := newTestStore(t, 32)
	e, err := st.CreateExtent("compat")
	if err != nil {
		t.Fatalf("CreateExtent: %v", err)
	}
	oids := fillExtent(t, st, e, 50)
	if _, err := st.MigrateRecords(e, 0, oids[:25], nil, false); err != nil {
		t.Fatalf("MigrateRecords: %v", err)
	}
	for _, oid := range oids[:25] {
		dst, ok := st.Forwarded(oid)
		if !ok {
			t.Fatalf("no forwarding entry for %s", oid)
		}
		// Shard-0 destinations must remain bit-identical to the unsharded
		// layout: reconstructing the OID from coordinates reproduces it.
		if dst.Shard() != 0 {
			t.Fatalf("shard-0 migration minted shard %d destination %s", dst.Shard(), dst)
		}
		if rebuilt := MakeOID(dst.File(), dst.Page(), dst.Slot()); rebuilt != dst {
			t.Fatalf("destination %s not bit-compatible: rebuilt %s", dst, rebuilt)
		}
	}
}

func TestShardedMigrateHonorsShardTags(t *testing.T) {
	st, _, _ := newTestShardedStore(t, 4, 32)
	e, err := st.CreateExtent("sharded")
	if err != nil {
		t.Fatalf("CreateExtent: %v", err)
	}
	oids := fillExtent(t, st, e, 120)

	// Migrate every shard's records on that shard, hottest-last order.
	byShard := make([][]OID, st.Shards())
	for _, oid := range oids {
		byShard[oid.Shard()] = append(byShard[oid.Shard()], oid)
	}
	for part, group := range byShard {
		if len(group) == 0 {
			continue
		}
		if _, err := st.MigrateRecords(e, part, group, nil, false); err != nil {
			t.Fatalf("shard %d: MigrateRecords: %v", part, err)
		}
		for _, oid := range group {
			dst, ok := st.Shard(part).Forwarded(oid)
			if !ok {
				t.Fatalf("shard %d: no forwarding entry for %s", part, oid)
			}
			if dst.Shard() != part {
				t.Fatalf("shard %d: destination %s lost its shard tag", part, dst)
			}
		}
	}
	checkAll(t, st, e, oids, nil)

	// Routing a migration to the wrong part must fail, not corrupt.
	if len(byShard[1]) > 0 {
		if _, err := st.MigrateRecords(e, 0, byShard[1][:1], nil, false); err == nil {
			t.Fatalf("migrating a shard-1 OID through part 0 succeeded")
		}
	}
}

func TestMigrateUpdateDeleteAndRemigrate(t *testing.T) {
	st, _, _ := newTestStore(t, 32)
	e, err := st.CreateExtent("mutate")
	if err != nil {
		t.Fatalf("CreateExtent: %v", err)
	}
	oids := fillExtent(t, st, e, 90)
	if _, err := st.MigrateRecords(e, 0, oids[:45], nil, false); err != nil {
		t.Fatalf("first migration: %v", err)
	}

	// Update through the forward pointer: the new value must surface under
	// the original OID in both Get and scans.
	if err := st.Update(oids[0], []byte("fresh-value")); err != nil {
		t.Fatalf("Update migrated record: %v", err)
	}
	if got, _ := st.Get(oids[0]); !bytes.Equal(got, []byte("fresh-value")) {
		t.Fatalf("updated migrated record reads %q", got)
	}
	found := 0
	if err := st.ScanExtent(e, func(oid OID, data []byte) bool {
		if oid == oids[0] {
			found++
			if !bytes.Equal(data, []byte("fresh-value")) {
				t.Fatalf("scan of updated migrated record = %q", data)
			}
		}
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if found != 1 {
		t.Fatalf("updated migrated record surfaced %d times in scan", found)
	}
	if err := st.Update(oids[0], payload(0)); err != nil {
		t.Fatalf("restore: %v", err)
	}

	// Re-migrate the same records: chains must stay depth one (the original
	// stub points directly at the newest home) and the intermediate copies
	// must be gone.
	firstDst := make(map[OID]OID)
	for _, oid := range oids[:45] {
		dst, _ := st.Forwarded(oid)
		firstDst[oid] = dst
	}
	if _, err := st.MigrateRecords(e, 0, oids[:45], nil, false); err != nil {
		t.Fatalf("second migration: %v", err)
	}
	for i, oid := range oids[:45] {
		dst, ok := st.Forwarded(oid)
		if !ok || dst == firstDst[oid] {
			t.Fatalf("re-migration did not move %s (dst %s)", oid, dst)
		}
		// The intermediate slot is tombstoned; it may be legitimately reused
		// by another record's copy (nothing references a destination OID),
		// but the old payload must never surface there again.
		if got, err := st.Get(firstDst[oid]); err == nil && bytes.Equal(got, payload(i)) {
			t.Fatalf("intermediate copy of %s still serves its old payload at %s", oid, firstDst[oid])
		}
	}
	checkAll(t, st, e, oids, nil)

	// Delete a migrated record: both slots die.
	dst0, _ := st.Forwarded(oids[0])
	if err := st.Delete(oids[0]); err != nil {
		t.Fatalf("Delete migrated: %v", err)
	}
	if _, err := st.Get(dst0); err == nil {
		t.Fatalf("relocated copy survived delete")
	}
	checkAll(t, st, e, oids, map[OID]bool{oids[0]: true})

	// The first migration's destination pages are now all tombstones;
	// compaction reclaims them without disturbing anything live.
	pages := e.NumPages()
	freed, err := st.CompactExtent(e)
	if err != nil {
		t.Fatalf("CompactExtent: %v", err)
	}
	if freed == 0 {
		t.Fatalf("compaction freed no pages (have %d)", pages)
	}
	if e.NumPages() != pages-freed {
		t.Fatalf("NumPages = %d after freeing %d of %d", e.NumPages(), freed, pages)
	}
	checkAll(t, st, e, oids, map[OID]bool{oids[0]: true})

	// Inserts keep working into the compacted chain.
	noid, err := st.InsertExtent(e, payload(0))
	if err != nil {
		t.Fatalf("insert after compaction: %v", err)
	}
	if got, _ := st.Get(noid); !bytes.Equal(got, payload(0)) {
		t.Fatalf("insert after compaction reads %q", got)
	}
}

func TestExtentNextPartRoundRobin(t *testing.T) {
	st, _, _ := newTestShardedStore(t, 3, 16)
	e, err := st.CreateExtent("rr")
	if err != nil {
		t.Fatalf("CreateExtent: %v", err)
	}
	// nextPart must rotate 0,1,2,0,1,2,... — placement is rotation, not
	// hashing, so part cardinalities stay within one record of each other.
	for i := 0; i < 9; i++ {
		if got, want := e.nextPart(), i%3; got != want {
			t.Fatalf("nextPart call %d = %d, want %d", i, got, want)
		}
	}

	e2, err := st.CreateExtent("rr2")
	if err != nil {
		t.Fatalf("CreateExtent: %v", err)
	}
	for i := 0; i < 100; i++ {
		if _, err := st.InsertExtent(e2, payload(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	min, max := 1<<30, 0
	counts := make([]int, e2.Parts())
	for part := range counts {
		f, err := st.Shard(part).Files().OpenFile("rr2")
		if err != nil {
			t.Fatalf("open part %d: %v", part, err)
		}
		counts[part] = f.NumRecords()
		if counts[part] < min {
			min = counts[part]
		}
		if counts[part] > max {
			max = counts[part]
		}
	}
	if max-min > 1 {
		t.Fatalf("round-robin imbalance: part cardinalities %v", counts)
	}

	// PartPages reports per-part page counts consistent with the files.
	pp := e2.PartPages()
	if len(pp) != e2.Parts() {
		t.Fatalf("PartPages returned %d entries, want %d", len(pp), e2.Parts())
	}
	total := 0
	for part, n := range pp {
		f, _ := st.Shard(part).Files().OpenFile("rr2")
		if n != f.NumPages() {
			t.Fatalf("PartPages[%d] = %d, file has %d", part, n, f.NumPages())
		}
		total += n
	}
	if total != e2.NumPages() {
		t.Fatalf("PartPages sum %d != NumPages %d", total, e2.NumPages())
	}

	// A single-part extent always routes to part 0.
	sst, _, _ := newTestStore(t, 8)
	se, err := sst.CreateExtent("solo")
	if err != nil {
		t.Fatalf("CreateExtent: %v", err)
	}
	for i := 0; i < 5; i++ {
		if got := se.nextPart(); got != 0 {
			t.Fatalf("single-part nextPart = %d", got)
		}
	}
}
