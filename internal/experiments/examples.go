package experiments

import (
	"fmt"
	"io"

	"mood/internal/cost"
	"mood/internal/optimizer"
	"mood/internal/sql"
)

// example81Query is the paper's Example 8.1 (the query writes v.company;
// Table 15 names the attribute manufacturer — we follow the statistics).
const example81Query = `
	Select v From Vehicle v
	where v.manufacturer.name = 'BMW' and v.drivetrain.engine.cylinders = 2`

// example82Query is the paper's Example 8.2.
const example82Query = `Select v From Vehicle v Where v.drivetrain.engine.cylinders = 2`

// optimizeWithPaperStats runs the optimizer against the exact Tables 13–15
// statistics base.
func optimizeWithPaperStats(env *Env, query string) (optimizer.Plan, *optimizer.Explain, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	opt := optimizer.New(env.DB.Cat, PaperStats())
	return opt.Optimize(st.(*sql.Select))
}

// Table16 prints Example 8.1's PathSelInfo dictionary in the paper's layout
// (Table 16), comparing the two parameter-free selectivities with the
// paper's printed values.
func Table16(w io.Writer, env *Env) error {
	_, ex, err := optimizeWithPaperStats(env, example81Query)
	if err != nil {
		return err
	}
	section(w, "Table 16. PathSelInfo dictionary contents for Example 8.1")
	fmt.Fprintf(w, "%-4s %-42s %-12s %-16s %-14s\n",
		"Var", "Predicate", "Selectivity", "Fwd Trav Cost", "cost/(1-fs)")
	for _, ps := range ex.Terms[0].Paths {
		fmt.Fprintf(w, "%-4s %-42s %-12.3e %-16.3f %-14.3f\n",
			ps.RangeVar, ps.Predicate.String(), ps.Selectivity, ps.ForwardCost, ps.Rank)
	}
	fmt.Fprintln(w, "\npaper prints: f_s(P1)=6.25e-02, f_s(P2)=5.00e-05; order P2 then P1.")
	fmt.Fprintln(w, "selectivities are parameter-free and must match exactly; traversal")
	fmt.Fprintln(w, "costs use this repo's Table 10 defaults (the paper omits its values),")
	fmt.Fprintln(w, "so only the F/(1-s) ORDER is comparable - and it matches.")
	p2 := ex.Terms[0].Paths[0]
	p1 := ex.Terms[0].Paths[1]
	okSel := abs(p2.Selectivity-5.00e-5) < 1e-12 && abs(p1.Selectivity-6.25e-2) < 1e-12
	okOrder := p2.Attrs[0] == "manufacturer" && p2.Rank < p1.Rank
	fmt.Fprintf(w, "REPRODUCED: selectivities=%v ordering=%v\n", okSel, okOrder)
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Example81Plan prints the access plan for Example 8.1 next to the paper's.
func Example81Plan(w io.Writer, env *Env) error {
	plan, _, err := optimizeWithPaperStats(env, example81Query)
	if err != nil {
		return err
	}
	section(w, "Example 8.1: generated access plan")
	fmt.Fprintln(w, optimizer.Render(plan))
	fmt.Fprintln(w, `
paper's plan:
  T1 : JOIN( BIND(Vehicle, v),
             SELECT(BIND(Company, c), c.name = 'BMW'),
             HASH_PARTITION, v.company = c.self )
  JOIN( JOIN( T1, BIND(VehicleDriveTrain,d),
              FORWARD_TRAVERSAL, v.drivetrain = d.self),
        SELECT(BIND(VehicleEngine, e), e.cylinder=2),
        FORWARD_TRAVERSAL, d.engine = e.self)`)
	return nil
}

// Table17 prints Example 8.2's initial cost and selectivity estimations
// (the paper's Table 17, whose body the source text does not reproduce):
// for each adjacent class pair of the path, the minimum-cost join
// technique, jc, js, and the greedy rank jc/(1-js).
func Table17(w io.Writer, env *Env) error {
	st := PaperStats()
	section(w, "Table 17. Initial cost and selectivity estimations for Example 8.2")
	fmt.Fprintf(w, "%-36s %-20s %14s %10s %14s\n", "Join pair", "Best method", "jc (ms)", "js", "jc/(1-js)")

	type pair struct {
		label string
		in    cost.JoinInput
		js    float64
	}
	// Pair (Vehicle, VehicleDriveTrain): unfiltered.
	// Pair (VehicleDriveTrain, σ cylinders=2 VehicleEngine): k_d = 625.
	kEng := 10000.0 / 16
	pairs := []pair{
		{
			label: "<Vehicle, VehicleDriveTrain>",
			in:    cost.JoinInput{Class: "Vehicle", Attribute: "drivetrain", Kc: 20000, Kd: 10000},
			js:    1 * 10000.0 / 10000.0,
		},
		{
			label: "<VehicleDriveTrain, sel(Engine)>",
			in:    cost.JoinInput{Class: "VehicleDriveTrain", Attribute: "engine", Kc: 10000, Kd: kEng},
			js:    1 * kEng / 10000.0,
		},
	}
	for _, p := range pairs {
		method, jc, err := st.BestJoin(p.in)
		if err != nil {
			return err
		}
		js := p.js
		if js > 0.999 {
			js = 0.999
		}
		fmt.Fprintf(w, "%-36s %-20s %14.2f %10.4f %14.2f\n",
			p.label, method.String(), jc, p.js, jc/(1-js))
	}
	fmt.Fprintln(w, "\nthe selective pair joins first (Algorithm 8.2), reproducing the")
	fmt.Fprintln(w, "paper's T1 = JOIN(VehicleDriveTrain, SELECT(VehicleEngine), HASH_PARTITION).")
	return nil
}

// Example82Plan prints the generated plan for Example 8.2 next to the
// paper's.
func Example82Plan(w io.Writer, env *Env) error {
	plan, _, err := optimizeWithPaperStats(env, example82Query)
	if err != nil {
		return err
	}
	section(w, "Example 8.2: generated access plan")
	fmt.Fprintln(w, optimizer.Render(plan))
	fmt.Fprintln(w, `
paper's plan:
  T1 = JOIN( BIND(VehicleDriveTrain, d),
             SELECT(BIND(VehicleEngine, e), e.cylinders=2),
             HASH_PARTITION, d.engine = e.self )
  JOIN( BIND(Vehicle, v), T1, HASH_PARTITION, v.drivetrain = d.self)`)
	return nil
}

// Tables11and12 prints the dictionary structures (paper Tables 11 and 12)
// populated from a query that has both immediate and path selections.
func Tables11and12(w io.Writer, env *Env) error {
	query := `Select v From Vehicle v
		where v.weight > 1500 and v.drivetrain.engine.cylinders = 2`
	st, err := sql.Parse(query)
	if err != nil {
		return err
	}
	opt := optimizer.New(env.DB.Cat, env.Stats)
	_, ex, err := opt.Optimize(st.(*sql.Select))
	if err != nil {
		return err
	}
	section(w, "Table 11. ImmSelInfo dictionary")
	fmt.Fprintf(w, "%-4s %-26s %-12s %-14s %-14s %-10s\n",
		"Var", "Predicate", "Selectivity", "IndexedCost", "SeqCost", "Access")
	for _, infos := range ex.Terms[0].Imm {
		for _, im := range infos {
			idxCost := "inf"
			if im.IndexedCost < 1e300 {
				idxCost = fmt.Sprintf("%.2f", im.IndexedCost)
			}
			fmt.Fprintf(w, "%-4s %-26s %-12.4f %-14s %-14.2f %-10s\n",
				im.RangeVar, im.Predicate.String(), im.Selectivity, idxCost, im.SeqCost, im.AccessType)
		}
	}
	section(w, "Table 12. PathSelInfo dictionary")
	fmt.Fprintf(w, "%-4s %-42s %-12s %-16s\n", "Var", "Predicate", "Selectivity", "FwdTravCost")
	for _, ps := range ex.Terms[0].Paths {
		fmt.Fprintf(w, "%-4s %-42s %-12.4e %-16.2f\n",
			ps.RangeVar, ps.Predicate.String(), ps.Selectivity, ps.ForwardCost)
	}
	return nil
}

// Figure71 demonstrates the clause execution order (paper Figure 7.1) via a
// query that exercises every clause; the plan's nesting shows the order.
func Figure71(w io.Writer, env *Env) error {
	query := `
		SELECT e.cylinders, COUNT(*) AS n
		FROM VehicleEngine e
		WHERE e.size > 0
		GROUP BY e.cylinders
		HAVING n > 1
		ORDER BY e.cylinders`
	st, err := sql.Parse(query)
	if err != nil {
		return err
	}
	opt := optimizer.New(env.DB.Cat, env.Stats)
	plan, _, err := opt.Optimize(st.(*sql.Select))
	if err != nil {
		return err
	}
	section(w, "Figure 7.1. Sequence of execution of a MOODSQL query")
	fmt.Fprintln(w, "FROM -> WHERE -> GROUP BY -> HAVING -> SELECT -> ORDER BY")
	fmt.Fprintln(w, "\nplan nesting (outermost executes last):")
	fmt.Fprintln(w, optimizer.Render(plan))
	return nil
}

// Figure72 demonstrates the operator order inside a WHERE clause (paper
// Figure 7.2): SELECT under JOIN under PROJECT under UNION.
func Figure72(w io.Writer, env *Env) error {
	query := `
		SELECT v.id
		FROM Vehicle v
		WHERE (v.drivetrain.engine.cylinders = 2 AND v.weight > 0)
		   OR v.id = 1`
	st, err := sql.Parse(query)
	if err != nil {
		return err
	}
	opt := optimizer.New(env.DB.Cat, env.Stats)
	plan, _, err := opt.Optimize(st.(*sql.Select))
	if err != nil {
		return err
	}
	section(w, "Figure 7.2. Order of execution of algebraic operators in a WHERE clause")
	fmt.Fprintln(w, "UNION <- PROJECT <- JOIN <- SELECT")
	fmt.Fprintln(w, "\nplan (AND-terms joined by UNION; selections innermost):")
	fmt.Fprintln(w, optimizer.Render(plan))
	return nil
}
