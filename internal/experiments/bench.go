package experiments

import (
	"fmt"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/exec"
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/sql"
	"mood/internal/storage"
)

// BenchEntry is one measured operation in a moodbench baseline. All numbers
// come from the deterministic DiskSim — seeded data, counted block
// accesses, simulated milliseconds — never from wall-clock time, so a
// baseline is byte-stable across machines and reruns. RowsPerSimSec is
// derived throughput: result rows per simulated second of disk time.
type BenchEntry struct {
	Name          string  `json:"name"`
	Rows          int     `json:"rows"`
	Reads         int64   `json:"reads"`
	Writes        int64   `json:"writes"`
	SimulatedMs   float64 `json:"simulated_ms"`
	RowsPerSimSec float64 `json:"rows_per_sim_sec,omitempty"`
}

// BenchBaseline is the artifact written by `moodbench -bench-json`.
type BenchBaseline struct {
	Scale     float64      `json:"scale"`
	Vehicles  int          `json:"vehicles"`
	Companies int          `json:"companies"`
	Entries   []BenchEntry `json:"entries"`
}

// MeasureBaseline runs a fixed set of representative storage and query
// operations cold (tiny buffer pool, ESM layout accounting) and records
// their simulated I/O. The set covers the regimes the paper's cost model
// distinguishes: bulk write-out, full extent scans of a small and a large
// class, and the three scan-free join strategies of Section 6.
func MeasureBaseline(env *Env) (*BenchBaseline, error) {
	base := &BenchBaseline{
		Scale:     float64(env.Scale),
		Vehicles:  env.Cfg.Vehicles,
		Companies: env.Cfg.Companies,
	}
	disk := env.Pool.Disk()

	// 1. Bulk write-out of the freshly generated database.
	disk.ResetStats()
	if err := env.Pool.FlushAll(); err != nil {
		return nil, err
	}
	s := disk.Stats()
	base.Entries = append(base.Entries, BenchEntry{
		Name: "flush-database", Reads: s.Reads(), Writes: s.Writes(), SimulatedMs: s.TimeMs,
	})

	// 2. Cold full-extent scans (the sequential-access regime of Table 8).
	for _, class := range []string{"Vehicle", "Company"} {
		cat, d, err := coldCatalog(env, 1)
		if err != nil {
			return nil, err
		}
		d.ResetStats()
		rows := 0
		if err := cat.ScanExtent(class, func(storage.OID, object.Value) bool {
			rows++
			return true
		}); err != nil {
			return nil, err
		}
		s := d.Stats()
		base.Entries = append(base.Entries, BenchEntry{
			Name: "scan-" + class, Rows: rows,
			Reads: s.Reads(), Writes: s.Writes(), SimulatedMs: s.TimeMs,
		})
		d.SetESMLayout(false)
	}

	// 3. The Section 6 join strategies at k_c = |V|/10.
	kc := len(env.DB.Vehicles) / 10
	if kc < 1 {
		kc = 1
	}
	for _, m := range []cost.JoinMethod{cost.ForwardTraversal, cost.BackwardTraversal, cost.HashPartition} {
		cat, d, err := coldCatalog(env, 1)
		if err != nil {
			return nil, err
		}
		a := algebra.New(cat)
		left := a.BindSet("v", "Vehicle", env.DB.Vehicles[:kc])
		if err := a.Materialize(left); err != nil {
			return nil, err
		}
		right, err := a.BindDirect("VehicleDriveTrain", "d")
		if err != nil {
			return nil, err
		}
		d.ResetStats()
		out, err := a.Join(left, right, algebra.JoinSpec{
			Method: m, LeftVar: "v", Attribute: "drivetrain", RightVar: "d",
		})
		if err != nil {
			return nil, err
		}
		s := d.Stats()
		base.Entries = append(base.Entries, BenchEntry{
			Name: fmt.Sprintf("join-%v", m), Rows: out.Len(),
			Reads: s.Reads(), Writes: s.Writes(), SimulatedMs: s.TimeMs,
		})
		d.SetESMLayout(false)
	}

	// 4. Streaming-executor throughput on the Section 8 example queries:
	// result rows per simulated second and simulated pages per query.
	queries := []struct{ name, q string }{
		{"query-example82", `SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`},
		{"query-example81", `SELECT v FROM Vehicle v WHERE v.manufacturer.name = 'BMW' AND v.drivetrain.engine.cylinders = 2`},
	}
	for _, qc := range queries {
		cat, d, err := coldCatalog(env, 64)
		if err != nil {
			return nil, err
		}
		stmt, err := sql.Parse(qc.q)
		if err != nil {
			return nil, err
		}
		plan, _, err := optimizer.New(cat, env.Stats).Optimize(stmt.(*sql.Select))
		if err != nil {
			return nil, err
		}
		ex := exec.New(algebra.New(cat))
		d.ResetStats()
		out, err := ex.Execute(plan)
		if err != nil {
			return nil, err
		}
		s := d.Stats()
		base.Entries = append(base.Entries, queryEntry(qc.name, out.Len(), s))
		d.SetESMLayout(false)
	}

	// 5. The lazy-pipeline short circuit: an intersection of two index
	// selections whose result is empty. The streaming executor discovers
	// the empty intersection from the indexes alone and fetches no
	// candidate objects; the eager reference executor materializes the
	// first selection's objects before intersecting, which shows up as
	// extra page reads.
	for _, variant := range []struct {
		name      string
		streaming bool
	}{
		{"intersect-empty-streaming", true},
		{"intersect-empty-materialized", false},
	} {
		cat, d, err := coldCatalog(env, 64)
		if err != nil {
			return nil, err
		}
		if _, err := cat.CreateIndex("bench_vehicle_id", "Vehicle", "id", catalog.BTreeIndex, true); err != nil {
			return nil, err
		}
		if _, err := cat.CreateIndex("bench_vehicle_weight", "Vehicle", "weight", catalog.BTreeIndex, false); err != nil {
			return nil, err
		}
		// Building the indexes scanned the extent through this pool; evict
		// so the query itself runs cold.
		if err := cat.Store().Pool().EvictAll(); err != nil {
			return nil, err
		}
		plan := &optimizer.IntersectPlan{Inputs: []optimizer.Plan{
			&optimizer.IndSelPlan{
				Class: "Vehicle", Var: "v", Index: cat.IndexOn("Vehicle", "id"),
				Pred: algebra.SimplePredicate{Attribute: "id", Op: expr.OpGe, Constant: object.NewInt(0)},
			},
			&optimizer.IndSelPlan{
				Class: "Vehicle", Var: "v", Index: cat.IndexOn("Vehicle", "weight"),
				Pred: algebra.SimplePredicate{Attribute: "weight", Op: expr.OpEq, Constant: object.NewInt(-1)},
			},
		}}
		ex := exec.New(algebra.New(cat))
		d.ResetStats()
		var out *algebra.Collection
		if variant.streaming {
			out, err = ex.Execute(plan)
		} else {
			out, err = ex.ExecuteMaterialized(plan)
		}
		if err != nil {
			return nil, err
		}
		s := d.Stats()
		base.Entries = append(base.Entries, queryEntry(variant.name, out.Len(), s))
		d.SetESMLayout(false)
	}
	return base, nil
}

// queryEntry derives the throughput figure from simulated time; a query
// that touched no disk reports zero throughput rather than dividing by
// zero.
func queryEntry(name string, rows int, s storage.DiskStats) BenchEntry {
	e := BenchEntry{
		Name: name, Rows: rows,
		Reads: s.Reads(), Writes: s.Writes(), SimulatedMs: s.TimeMs,
	}
	if s.TimeMs > 0 {
		e.RowsPerSimSec = float64(rows) / (s.TimeMs / 1000)
	}
	return e
}
