package expr

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mood/internal/object"
	"mood/internal/storage"
)

// testResolver is a tiny in-memory object graph: OID 1 resolves to a tuple,
// OID 2 to a non-tuple value (projecting through it is a type error), any
// other OID fails. Both the interpreter and the compiled closures receive
// the same resolver, so reference chasing exercises identical paths.
func testResolver() object.Resolver {
	return func(oid storage.OID) (object.Value, error) {
		switch oid {
		case 1:
			return object.NewTuple(
				[]string{"name", "weight"},
				[]Value{object.NewString("linked"), object.NewInt(7)},
			), nil
		case 2:
			return object.NewString("not a tuple"), nil
		}
		return object.Null, fmt.Errorf("resolver: unknown oid %d", oid)
	}
}

// Value aliases keep the test tables readable.
type Value = object.Value

func testSelf() Value {
	return object.NewTuple(
		[]string{"name", "weight", "ratio", "ref", "badref", "nilref", "nullattr"},
		[]Value{
			object.NewString("BMW"),
			object.NewInt(42),
			object.NewFloat(2.5),
			object.NewRef(1),
			object.NewRef(2),
			object.NewRef(storage.NilOID),
			object.Null,
		},
	)
}

func testEnv() *Env {
	return &Env{
		Vars:    map[string]Value{"v": testSelf()},
		OIDs:    map[string]storage.OID{"v": 5},
		Resolve: testResolver(),
	}
}

func field(base Expr, names ...string) Expr {
	for _, n := range names {
		base = &Field{Base: base, Name: n}
	}
	return base
}

// compileCases is the shared expression table: every shape the compiler
// lowers plus the fallback and error paths, evaluated against testEnv.
func compileCases() []struct {
	name string
	e    Expr
	full bool // expected "fully compiled" flag from Compile
	self bool // expected to lower to self mode over "v"
} {
	v := func() Expr { return &Var{Name: "v"} }
	return []struct {
		name string
		e    Expr
		full bool
		self bool
	}{
		{"const", &Const{Val: object.NewInt(3)}, true, true},
		{"var", v(), true, true},
		{"field", field(v(), "name"), true, true},
		{"missing-attr", field(v(), "nosuch"), true, true},
		{"null-attr-project", field(v(), "nullattr", "deeper"), true, true},
		{"ref-chase", field(v(), "ref", "name"), true, true},
		{"nil-ref", field(v(), "nilref", "name"), true, true},
		{"ref-to-non-tuple", field(v(), "badref", "name"), true, true},
		{"project-non-tuple", field(v(), "weight", "x"), true, true},
		{"cmp-eq", &Cmp{Op: OpEq, L: field(v(), "name"), R: &Const{Val: object.NewString("BMW")}}, true, true},
		{"cmp-null", &Cmp{Op: OpLt, L: field(v(), "nullattr"), R: &Const{Val: object.NewInt(1)}}, true, true},
		{"cmp-type-error", &Cmp{Op: OpLt, L: field(v(), "name"), R: &Const{Val: object.NewInt(1)}}, true, true},
		{"arith", &Arith{Op: OpAdd, L: field(v(), "weight"), R: &Const{Val: object.NewInt(8)}}, true, true},
		{"arith-widen", &Arith{Op: OpMul, L: field(v(), "weight"), R: &Const{Val: object.NewFloat(0.5)}}, true, true},
		{"arith-div-zero", &Arith{Op: OpDiv, L: field(v(), "weight"), R: &Const{Val: object.NewInt(0)}}, true, true},
		{"concat", &Arith{Op: OpAdd, L: field(v(), "name"), R: &Const{Val: object.NewString("!")}}, true, true},
		{"neg", &Neg{E: field(v(), "weight")}, true, true},
		{"neg-type-error", &Neg{E: field(v(), "name")}, true, true},
		{"not", &Not{E: &Cmp{Op: OpEq, L: field(v(), "weight"), R: &Const{Val: object.NewInt(42)}}}, true, true},
		{"between", &Between{E: field(v(), "weight"), Lo: &Const{Val: object.NewInt(40)}, Hi: &Const{Val: object.NewInt(50)}}, true, true},
		{"and-short-circuit", &Logic{
			Op: OpAnd,
			L:  &Cmp{Op: OpEq, L: field(v(), "name"), R: &Const{Val: object.NewString("nope")}},
			// The right side would error (ordering a string against an int);
			// short-circuiting must skip it in both paths.
			R: &Cmp{Op: OpLt, L: field(v(), "name"), R: &Const{Val: object.NewInt(1)}},
		}, true, true},
		{"or", &Logic{
			Op: OpOr,
			L:  &Cmp{Op: OpEq, L: field(v(), "weight"), R: &Const{Val: object.NewInt(42)}},
			R:  &Cmp{Op: OpLt, L: field(v(), "name"), R: &Const{Val: object.NewInt(1)}},
		}, true, true},
		{"unbound-var", &Var{Name: "w"}, true, false},
		{"call-falls-back", &Call{Base: v(), Method: "m"}, false, false},
		{"call-inside-cmp", &Cmp{Op: OpEq, L: &Call{Base: v(), Method: "m"}, R: &Const{Val: object.NewInt(1)}}, false, false},
	}
}

// TestCompileMatchesInterpreter holds Compile/CompileBool equal to the tree
// interpreter — values, bool coercion, and exact error strings — across the
// whole expression table.
func TestCompileMatchesInterpreter(t *testing.T) {
	for _, tc := range compileCases() {
		t.Run(tc.name, func(t *testing.T) {
			fn, full := Compile(tc.e)
			if full != tc.full {
				t.Fatalf("Compile full=%v, want %v", full, tc.full)
			}
			wantV, wantErr := tc.e.Eval(testEnv())
			gotV, gotErr := fn(testEnv())
			if !sameErr(wantErr, gotErr) {
				t.Fatalf("error mismatch: interpreter %v, compiled %v", wantErr, gotErr)
			}
			if wantErr == nil && !reflect.DeepEqual(wantV, gotV) {
				t.Fatalf("value mismatch: interpreter %v, compiled %v", wantV, gotV)
			}

			bf, _ := CompileBool(tc.e)
			wantB, wantErr := EvalBool(tc.e, testEnv())
			gotB, gotErr := bf(testEnv())
			if !sameErr(wantErr, gotErr) || wantB != gotB {
				t.Fatalf("bool mismatch: interpreter (%v,%v), compiled (%v,%v)", wantB, wantErr, gotB, gotErr)
			}
		})
	}
}

// TestCompilePredicateSelfMode holds the self-mode closure equal to
// interpreting with an environment binding only "v", and checks the
// all-or-nothing lowering rule.
func TestCompilePredicateSelfMode(t *testing.T) {
	for _, tc := range compileCases() {
		t.Run(tc.name, func(t *testing.T) {
			pf, ok := CompilePredicate(tc.e, "v")
			if ok != tc.self {
				t.Fatalf("CompilePredicate ok=%v, want %v", ok, tc.self)
			}
			if !ok {
				if pf != nil {
					t.Fatal("rejected predicate returned a non-nil PredFn")
				}
				return
			}
			wantB, wantErr := EvalBool(tc.e, testEnv())
			self := testSelf()
			gotB, gotErr := pf(&self, 5, testResolver())
			if !sameErr(wantErr, gotErr) || wantB != gotB {
				t.Fatalf("self mode mismatch: interpreter (%v,%v), compiled (%v,%v)", wantB, wantErr, gotB, gotErr)
			}
		})
	}
}

// TestCompilePredicateRejectsOtherVariables pins the multi-variable rule:
// a tree is self-mode only when every variable is the scan variable.
func TestCompilePredicateRejectsOtherVariables(t *testing.T) {
	joined := &Cmp{Op: OpEq, L: field(&Var{Name: "v"}, "name"), R: field(&Var{Name: "u"}, "name")}
	if _, ok := CompilePredicate(joined, "v"); ok {
		t.Fatal("two-variable predicate lowered to self mode")
	}
	if _, ok := CompilePredicate(field(&Var{Name: "v"}, "name"), "u"); ok {
		t.Fatal("predicate over v lowered against scan variable u")
	}
}

// TestSignatureDistinguishesConstKinds pins the registry-key rule: literals
// of different run-time kinds that render identically must not share a
// compiled fragment (Integer 1 widens differently from LongInteger 1).
func TestSignatureDistinguishesConstKinds(t *testing.T) {
	mk := func(c Value) Expr {
		return &Cmp{Op: OpEq, L: field(&Var{Name: "v"}, "weight"), R: &Const{Val: c}}
	}
	si := Signature(mk(object.NewInt(1)))
	sl := Signature(mk(object.NewLong(1)))
	if si == sl {
		t.Fatalf("Int and Long literals share signature %q", si)
	}
	if s2 := Signature(mk(object.NewInt(1))); s2 != si {
		t.Fatalf("signature not stable: %q vs %q", si, s2)
	}
}

// TestBetweenEvaluatesOperandTwice pins the desugaring contract: BETWEEN
// lowers to E >= Lo AND E <= Hi with E evaluated twice, in the interpreter
// and the compiled form alike.
func TestBetweenEvaluatesOperandTwice(t *testing.T) {
	count := 0
	e := &Between{
		E:  &countingExpr{inner: &Const{Val: object.NewInt(5)}, n: &count},
		Lo: &Const{Val: object.NewInt(1)},
		Hi: &Const{Val: object.NewInt(9)},
	}
	if _, err := e.Eval(testEnv()); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("interpreter evaluated BETWEEN operand %d times, want 2", count)
	}
	count = 0
	fn, full := Compile(e)
	if full {
		t.Fatal("countingExpr should force the fallback flag off")
	}
	if _, err := fn(testEnv()); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("compiled form evaluated BETWEEN operand %d times, want 2", count)
	}
}

// countingExpr counts evaluations; being outside the compilable subset it
// also exercises the interpreter-fallback path inside a compiled tree.
type countingExpr struct {
	inner Expr
	n     *int
}

func (c *countingExpr) Eval(env *Env) (Value, error) {
	*c.n++
	return c.inner.Eval(env)
}

func (c *countingExpr) String() string { return c.inner.String() }

func sameErr(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// TestCompiledErrorValuesUnwrap pins that compiled closures surface the
// package's sentinel errors (errors.Is-compatible), not copies.
func TestCompiledErrorValuesUnwrap(t *testing.T) {
	e := &Cmp{Op: OpLt, L: field(&Var{Name: "v"}, "name"), R: &Const{Val: object.NewInt(1)}}
	pf, ok := CompilePredicate(e, "v")
	if !ok {
		t.Fatal("predicate did not lower")
	}
	self := testSelf()
	_, err := pf(&self, 5, testResolver())
	if !errors.Is(err, ErrType) {
		t.Fatalf("compiled type error = %v, want errors.Is ErrType", err)
	}
}
