package optimizer

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/sql"
	"mood/internal/storage"
	"mood/internal/vehicledb"
)

// paperStats is the Tables 13–15 statistics base.
func paperStats() *cost.Stats {
	s := cost.NewStats(cost.DefaultDisk())
	s.SetClass(cost.ClassStats{Name: "Vehicle", Card: 20000, NbPages: 2000, Size: 400})
	s.SetClass(cost.ClassStats{Name: "VehicleDriveTrain", Card: 10000, NbPages: 750, Size: 300})
	s.SetClass(cost.ClassStats{Name: "VehicleEngine", Card: 10000, NbPages: 5000, Size: 2000})
	s.SetClass(cost.ClassStats{Name: "Company", Card: 200000, NbPages: 2500, Size: 500})
	s.SetClass(cost.ClassStats{Name: "Employee", Card: 1000, NbPages: 50, Size: 100})
	s.SetClass(cost.ClassStats{Name: "Automobile", Card: 0, NbPages: 0, Size: 400})
	s.SetClass(cost.ClassStats{Name: "JapaneseAuto", Card: 0, NbPages: 0, Size: 400})
	s.SetAttr(cost.AttrStats{Class: "VehicleEngine", Attribute: "cylinders", Dist: 16, Max: 32, Min: 2, NotNull: 1})
	s.SetAttr(cost.AttrStats{Class: "VehicleEngine", Attribute: "size", Dist: 100, Max: 5000, Min: 1000, NotNull: 1})
	s.SetAttr(cost.AttrStats{Class: "Company", Attribute: "name", Dist: 200000, NotNull: 1})
	s.SetAttr(cost.AttrStats{Class: "Vehicle", Attribute: "weight", Dist: 100, Max: 3000, Min: 800, NotNull: 1})
	s.SetAttr(cost.AttrStats{Class: "Vehicle", Attribute: "id", Dist: 20000, Max: 19999, Min: 0, NotNull: 1})
	s.SetAttr(cost.AttrStats{Class: "VehicleDriveTrain", Attribute: "transmission", Dist: 4, NotNull: 1})
	s.SetLink(cost.LinkStats{Class: "Vehicle", Attribute: "drivetrain", Target: "VehicleDriveTrain",
		Fan: 1, TotRef: 10000, TargetCard: 10000, NotNull: 1})
	s.SetLink(cost.LinkStats{Class: "Vehicle", Attribute: "manufacturer", Target: "Company",
		Fan: 1, TotRef: 20000, TargetCard: 200000, NotNull: 1})
	s.SetLink(cost.LinkStats{Class: "VehicleDriveTrain", Attribute: "engine", Target: "VehicleEngine",
		Fan: 1, TotRef: 10000, TargetCard: 10000, NotNull: 1})
	return s
}

// schemaCatalog builds the vehicle schema (no data: plans only need types).
func schemaCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat, _, err := vehicledb.NewEnvironment(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := vehicledb.DefineSchema(cat); err != nil {
		t.Fatal(err)
	}
	return cat
}

func mustParse(t testing.TB, q string) *sql.Select {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sql.Select)
}

func TestSimplify(t *testing.T) {
	i := func(v int32) expr.Expr { return &expr.Const{Val: object.NewInt(v)} }
	cases := []struct {
		in   expr.Expr
		want string
	}{
		{&expr.Not{E: &expr.Cmp{Op: expr.OpEq, L: i(1), R: &expr.Var{Name: "x"}}}, "1 <> x"},
		{&expr.Not{E: &expr.Not{E: &expr.Var{Name: "b"}}}, "b"},
		{&expr.Arith{Op: expr.OpAdd, L: i(2), R: i(3)}, "5"},
		{&expr.Cmp{Op: expr.OpGt, L: i(2), R: i(3)}, "false"},
		{&expr.Logic{Op: expr.OpAnd, L: trueConst(), R: &expr.Var{Name: "p"}}, "p"},
		{&expr.Logic{Op: expr.OpOr, L: falseConst(), R: &expr.Var{Name: "p"}}, "p"},
		{&expr.Logic{Op: expr.OpAnd, L: falseConst(), R: &expr.Var{Name: "p"}}, "false"},
	}
	for _, c := range cases {
		if got := Simplify(c.in).String(); got != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
	// De Morgan pushes NOT inward.
	dm := Simplify(&expr.Not{E: &expr.Logic{Op: expr.OpAnd,
		L: &expr.Cmp{Op: expr.OpEq, L: &expr.Var{Name: "a"}, R: i(1)},
		R: &expr.Cmp{Op: expr.OpEq, L: &expr.Var{Name: "b"}, R: i(2)},
	}})
	if got := dm.String(); got != "(a <> 1 OR b <> 2)" {
		t.Errorf("De Morgan = %s", got)
	}
}

func TestToDNF(t *testing.T) {
	v := func(n string) expr.Expr { return &expr.Cmp{Op: expr.OpEq, L: &expr.Var{Name: n}, R: trueConst()} }
	// (a OR b) AND c -> (a AND c) OR (b AND c)
	e := &expr.Logic{Op: expr.OpAnd,
		L: &expr.Logic{Op: expr.OpOr, L: v("a"), R: v("b")},
		R: v("c"),
	}
	terms := ToDNF(e)
	if len(terms) != 2 {
		t.Fatalf("DNF terms = %d, want 2", len(terms))
	}
	for _, term := range terms {
		if len(term) != 2 {
			t.Errorf("term size = %d, want 2", len(term))
		}
	}
	// Plain conjunction: one term, three conjuncts.
	e2 := &expr.Logic{Op: expr.OpAnd, L: &expr.Logic{Op: expr.OpAnd, L: v("a"), R: v("b")}, R: v("c")}
	terms = ToDNF(e2)
	if len(terms) != 1 || len(terms[0]) != 3 {
		t.Errorf("conjunction DNF = %d terms / %d conjuncts", len(terms), len(terms[0]))
	}
}

func TestExample81Table16(t *testing.T) {
	// Example 8.1: the PathSelInfo dictionary (Table 16) and the ordering
	// P2 before P1.
	cat := schemaCatalog(t)
	o := New(cat, paperStats())
	q := mustParse(t, `
		Select v From Vehicle v
		where v.manufacturer.name = 'BMW' and v.drivetrain.engine.cylinders = 2`)
	_, ex, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Terms) != 1 {
		t.Fatalf("terms = %d", len(ex.Terms))
	}
	paths := ex.Terms[0].Paths
	if len(paths) != 2 {
		t.Fatalf("path selections = %d, want 2", len(paths))
	}
	// Execution order: P2 (manufacturer.name) first.
	if paths[0].Attrs[0] != "manufacturer" {
		t.Errorf("first path = %v, want the manufacturer path (P2 before P1, Table 16)", paths[0].Attrs)
	}
	// Selectivities match Table 16 exactly.
	if math.Abs(paths[0].Selectivity-5.00e-5) > 1e-12 {
		t.Errorf("f_s(P2) = %v, want 5.00e-5", paths[0].Selectivity)
	}
	if math.Abs(paths[1].Selectivity-6.25e-2) > 1e-12 {
		t.Errorf("f_s(P1) = %v, want 6.25e-2", paths[1].Selectivity)
	}
	// Ranks F/(1-s) are finite, positive, and ordered.
	if !(paths[0].Rank < paths[1].Rank) {
		t.Errorf("rank order violated: %v !< %v", paths[0].Rank, paths[1].Rank)
	}
}

func TestExample81PlanShape(t *testing.T) {
	cat := schemaCatalog(t)
	o := New(cat, paperStats())
	q := mustParse(t, `
		Select v From Vehicle v
		where v.manufacturer.name = 'BMW' and v.drivetrain.engine.cylinders = 2`)
	plan, _, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	rendered := Render(plan)
	// The paper's plan: T1 joins Vehicle with the selected company by
	// HASH_PARTITION; the drivetrain and engine hops chain off T1 with
	// FORWARD_TRAVERSAL.
	for _, want := range []string{
		"HASH_PARTITION, v.manufacturer = ",
		"FORWARD_TRAVERSAL, v.drivetrain = ",
		"FORWARD_TRAVERSAL, ", // the engine hop
		"m.name = \"BMW\"",
		"cylinders = 2",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("plan missing %q:\n%s", want, rendered)
		}
	}
	if n := strings.Count(rendered, "FORWARD_TRAVERSAL"); n != 2 {
		t.Errorf("forward traversals = %d, want 2:\n%s", n, rendered)
	}
	if n := strings.Count(rendered, "HASH_PARTITION"); n != 1 {
		t.Errorf("hash partitions = %d, want 1:\n%s", n, rendered)
	}
}

func TestExample82PlanShape(t *testing.T) {
	// Example 8.2: Select v From Vehicle v Where
	// v.drivetrain.engine.cylinders = 2. The printed plan joins
	// VehicleDriveTrain with the selected engines first (T1,
	// HASH_PARTITION), then Vehicle with T1 (HASH_PARTITION).
	cat := schemaCatalog(t)
	o := New(cat, paperStats())
	q := mustParse(t, `Select v From Vehicle v Where v.drivetrain.engine.cylinders = 2`)
	plan, _, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	rendered := Render(plan)
	if n := strings.Count(rendered, "HASH_PARTITION"); n != 2 {
		t.Errorf("hash partitions = %d, want 2 (paper Example 8.2):\n%s", n, rendered)
	}
	// T1 shape: the inner join is VDT x selected engines; the outer joins
	// Vehicle to it. The inner must appear as the RIGHT child of the outer
	// join on v.drivetrain.
	outerIdx := strings.Index(rendered, "v.drivetrain")
	innerIdx := strings.Index(rendered, "SELECT(")
	if outerIdx < 0 || innerIdx < 0 || innerIdx > outerIdx {
		t.Errorf("plan shape unexpected (engine selection should be inside T1):\n%s", rendered)
	}
}

func TestIndexSelectionRule(t *testing.T) {
	// §8.1: with a selective predicate and an index, the inequality picks
	// the index; with a worthless predicate it scans.
	cat := schemaCatalog(t)
	st := paperStats()
	o := New(cat, st)

	// Build a real index so IndexOn finds it (metadata only matters).
	db, _, err := vehicledb.Build(vehicledb.Config{
		Vehicles: 200, DriveTrains: 100, Engines: 100, Companies: 200, Seed: 1,
	}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Cat.CreateIndex("vid", "Vehicle", "id", catalog.BTreeIndex, true); err != nil {
		t.Fatal(err)
	}
	o = New(db.Cat, st)

	q := mustParse(t, `SELECT v FROM Vehicle v WHERE v.id = 42`)
	plan, _, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Render(plan), "INDSEL") {
		t.Errorf("selective predicate did not use the index:\n%s", Render(plan))
	}

	// weight <> 0 has selectivity ~1: a full range scan through the index
	// costs more than the extent scan, so no index.
	q = mustParse(t, `SELECT v FROM Vehicle v WHERE v.weight <> 0`)
	plan, _, err = o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(Render(plan), "INDSEL") {
		t.Errorf("non-selective predicate used an index:\n%s", Render(plan))
	}
}

func TestRemainingPredicatesOrderedBySelectivity(t *testing.T) {
	cat := schemaCatalog(t)
	o := New(cat, paperStats())
	// id = 5 (sel 1/20000) is more selective than weight > 1000 (~0.9):
	// the SELECT conjunction must test id first for short-circuiting.
	q := mustParse(t, `SELECT v FROM Vehicle v WHERE v.weight > 1000 AND v.id = 5`)
	plan, _, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	rendered := Render(plan)
	idPos := strings.Index(rendered, "v.id = 5")
	wPos := strings.Index(rendered, "v.weight > 1000")
	if idPos < 0 || wPos < 0 || idPos > wPos {
		t.Errorf("predicate order wrong (want most selective first):\n%s", rendered)
	}
}

func TestDNFUnionPlan(t *testing.T) {
	cat := schemaCatalog(t)
	o := New(cat, paperStats())
	q := mustParse(t, `SELECT v FROM Vehicle v WHERE v.id = 1 OR v.weight = 2000`)
	plan, ex, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Terms) != 2 {
		t.Errorf("AND-terms = %d, want 2", len(ex.Terms))
	}
	if !strings.Contains(Render(plan), "UNION(") {
		t.Errorf("OR query did not produce a UNION plan:\n%s", Render(plan))
	}
}

func TestExplicitJoinPredicate(t *testing.T) {
	// The Section 3.1 query: c.drivetrain.engine = v joins the two FROM
	// variables through a two-hop path.
	cat := schemaCatalog(t)
	o := New(cat, paperStats())
	q := mustParse(t, `
		SELECT c
		FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v
		WHERE c.drivetrain.transmission = 'AUTOMATIC'
		AND c.drivetrain.engine = v
		AND v.cylinders > 4`)
	plan, ex, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Terms[0].Joins) != 1 {
		t.Fatalf("join predicates = %d, want 1", len(ex.Terms[0].Joins))
	}
	rendered := Render(plan)
	if strings.Contains(rendered, "CROSS(") {
		t.Errorf("join predicate left a Cartesian product:\n%s", rendered)
	}
	if !strings.Contains(rendered, "Automobile - JapaneseAuto") {
		t.Errorf("minus FROM item lost:\n%s", rendered)
	}
}

func TestCartesianFallback(t *testing.T) {
	cat := schemaCatalog(t)
	o := New(cat, paperStats())
	q := mustParse(t, `SELECT v FROM Vehicle v, Company c`)
	plan, _, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Render(plan), "CROSS(") {
		t.Errorf("unjoined FROM items should render CROSS:\n%s", Render(plan))
	}
}

func TestFigure71ClauseOrder(t *testing.T) {
	// The plan must nest SORT(GROUP(...(joins/selections)...)) per Figure
	// 7.1: FROM/WHERE innermost, then GROUP BY+HAVING, then projection
	// (inside GroupPlan here), then ORDER BY outermost.
	cat := schemaCatalog(t)
	o := New(cat, paperStats())
	q := mustParse(t, `
		SELECT e.cylinders, COUNT(*) AS n
		FROM VehicleEngine e
		WHERE e.size > 1000
		GROUP BY e.cylinders
		HAVING n > 1
		ORDER BY e.cylinders`)
	plan, _, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	rendered := Render(plan)
	sortIdx := strings.Index(rendered, "SORT(")
	groupIdx := strings.Index(rendered, "GROUP(")
	selIdx := strings.Index(rendered, "SELECT(")
	if !(sortIdx >= 0 && groupIdx > sortIdx && selIdx > groupIdx) {
		t.Errorf("clause nesting violates Figure 7.1:\n%s", rendered)
	}
}

// TestPathOrderOptimal verifies the Appendix lemma: sorting by F/(1-s)
// minimizes f = F1 + s1·F2 + s1·s2·F3 + ... over all permutations.
func TestPathOrderOptimal(t *testing.T) {
	objective := func(F, s []float64, perm []int) float64 {
		total := 0.0
		acc := 1.0
		for _, i := range perm {
			total += acc * F[i]
			acc *= s[i]
		}
		return total
	}
	permutations := func(n int) [][]int {
		var out [][]int
		var rec func(cur []int, rest []int)
		rec = func(cur, rest []int) {
			if len(rest) == 0 {
				out = append(out, append([]int(nil), cur...))
				return
			}
			for i := range rest {
				nr := append([]int(nil), rest[:i]...)
				nr = append(nr, rest[i+1:]...)
				rec(append(cur, rest[i]), nr)
			}
		}
		base := make([]int, n)
		for i := range base {
			base[i] = i
		}
		rec(nil, base)
		return out
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(5) // up to 6 paths: exhaustive check feasible
		F := make([]float64, m)
		s := make([]float64, m)
		idx := make([]int, m)
		for i := range F {
			F[i] = 1 + rng.Float64()*1000
			s[i] = rng.Float64() * 0.99
			idx[i] = i
		}
		// Algorithm 8.1's order.
		sortByRank := append([]int(nil), idx...)
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if F[sortByRank[j]]/(1-s[sortByRank[j]]) < F[sortByRank[i]]/(1-s[sortByRank[i]]) {
					sortByRank[i], sortByRank[j] = sortByRank[j], sortByRank[i]
				}
			}
		}
		got := objective(F, s, sortByRank)
		best := math.Inf(1)
		for _, p := range permutations(m) {
			if v := objective(F, s, p); v < best {
				best = v
			}
		}
		if got > best*(1+1e-9) {
			t.Fatalf("trial %d: F/(1-s) order cost %v > optimal %v (F=%v s=%v)", trial, got, best, F, s)
		}
	}
}

func TestOptimizeErrors(t *testing.T) {
	cat := schemaCatalog(t)
	o := New(cat, paperStats())
	if _, _, err := o.Optimize(mustParse(t, `SELECT x FROM Nope x`)); err == nil {
		t.Error("unknown class accepted")
	}
	if _, _, err := o.Optimize(mustParse(t, `SELECT v FROM Vehicle v, Company v`)); err == nil {
		t.Error("duplicate range variable accepted")
	}
	if _, _, err := o.Optimize(mustParse(t, `SELECT v FROM Vehicle v WHERE v.nosuch.name = 'x'`)); err == nil {
		t.Error("unknown attribute in path accepted")
	}
}

func TestBJIRegistration(t *testing.T) {
	cat := schemaCatalog(t)
	st := paperStats()
	o := New(cat, st)
	// A cheap binary join index on Vehicle.drivetrain should beat the
	// scan-based joins for a selective query.
	o.RegisterBJI("Vehicle", "drivetrain", "bji_vd", cost.BTreeStats{Order: 200, Levels: 2, Leaves: 100})
	in := cost.JoinInput{Class: "Vehicle", Attribute: "drivetrain", Kc: 5, Kd: 5, CAccessed: true}
	e := o.bjis["Vehicle.drivetrain"]
	in.BJIdx = &e.st
	m, _, err := st.BestJoin(in)
	if err != nil {
		t.Fatal(err)
	}
	_ = m // method choice depends on parameters; just ensure it evaluates
	if _, ok := o.bjis["Vehicle.drivetrain"]; !ok {
		t.Error("BJI not registered")
	}
	_ = storage.NilOID
}
