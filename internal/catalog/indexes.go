package catalog

import (
	"fmt"

	"mood/internal/btree"
	"mood/internal/hashidx"
	"mood/internal/object"
	"mood/internal/storage"
)

// IndexKind distinguishes the two ESM-provided indexing mechanisms the
// paper's IndSel operator can use: "B+-tree indexing and hash indexing
// supported through the Exodus Storage Manager".
type IndexKind uint8

// Index kinds.
const (
	BTreeIndex IndexKind = iota
	HashIndex
)

func (k IndexKind) String() string {
	if k == HashIndex {
		return "hash"
	}
	return "btree"
}

// Index is a secondary index over one atomic attribute of a class.
type Index struct {
	Name      string
	Class     string
	Attribute string
	Kind      IndexKind
	Unique    bool
	KeySize   int

	btree *btree.Tree
	hash  *hashidx.Index
	attrT *object.Type
}

// BTree returns the underlying B+ tree (nil for hash indexes); the cost
// model reads its Table 9 statistics from here.
func (ix *Index) BTree() *btree.Tree { return ix.btree }

// defaultKeySize picks the fixed key size for an attribute type.
func defaultKeySize(t *object.Type) int {
	switch t.Kind {
	case object.KindInteger, object.KindLongInteger, object.KindFloat, object.KindChar, object.KindBoolean:
		return 8
	case object.KindString:
		if t.StrLen > 0 && t.StrLen <= 64 {
			return t.StrLen
		}
		return 32
	case object.KindReference:
		return 8
	}
	return 16
}

// EncodeKey converts an attribute value into its order-preserving index key.
// Strings longer than the key size are truncated (range scans remain
// conservative; exact-match consumers re-verify against the base object).
func EncodeKey(t *object.Type, v object.Value, keySize int) ([]byte, error) {
	switch v.Kind {
	case object.KindInteger, object.KindLongInteger, object.KindChar, object.KindBoolean:
		return btree.EncodeIntKey(v.Int), nil
	case object.KindFloat:
		return btree.EncodeFloatKey(v.Flt), nil
	case object.KindString:
		b := []byte(v.Str)
		if len(b) > keySize {
			b = b[:keySize]
		}
		return b, nil
	case object.KindReference:
		return btree.EncodeIntKey(int64(v.Ref)), nil
	case object.KindNull:
		return nil, nil // nulls are not indexed
	}
	return nil, fmt.Errorf("catalog: cannot index %s value", v.Kind)
}

// CreateIndex builds a secondary index on class.attribute and backfills it
// from the extent. The attribute may be inherited.
func (c *Catalog) CreateIndex(name, class, attribute string, kind IndexKind, unique bool) (*Index, error) {
	c.mu.Lock()
	if _, dup := c.indexes[name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: index %s", ErrDuplicateName, name)
	}
	c.mu.Unlock()

	attrT, err := c.AttributeType(class, attribute)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		Name:      name,
		Class:     class,
		Attribute: attribute,
		Kind:      kind,
		Unique:    unique,
		KeySize:   defaultKeySize(attrT),
		attrT:     attrT,
	}
	switch kind {
	case BTreeIndex:
		tr, err := btree.New(c.store.Pool(), ix.KeySize, unique)
		if err != nil {
			return nil, err
		}
		ix.btree = tr
	case HashIndex:
		h, err := hashidx.New(c.store.Pool())
		if err != nil {
			return nil, err
		}
		ix.hash = h
	}

	// Backfill from the extent (and subclass extents: an index on C serves
	// every object reachable via C's IS-A closure).
	var ierr error
	err = c.ScanClosure(class, nil, func(oid storage.OID, v object.Value) bool {
		if ierr = ix.insert(v, oid); ierr != nil {
			return false
		}
		return true
	})
	if err == nil {
		err = ierr
	}
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	c.indexes[name] = ix
	c.mu.Unlock()
	if err := c.persistIndex(ix); err != nil {
		return nil, err
	}
	return ix, nil
}

// DropIndex removes an index.
func (c *Catalog) DropIndex(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[name]; !ok {
		return fmt.Errorf("catalog: no index %s", name)
	}
	delete(c.indexes, name)
	if oid, ok := c.idxOIDs[name]; ok {
		delete(c.idxOIDs, name)
		return c.store.Delete(oid)
	}
	return nil
}

// IndexOn returns an index on class.attribute (preferring B+ trees, which
// serve both equality and ranges) or nil. Inherited classes are consulted:
// an index on a superclass attribute serves the subclass.
func (c *Catalog) IndexOn(class, attribute string) *Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var hash *Index
	for _, ix := range c.indexes {
		if ix.Attribute != attribute {
			continue
		}
		if ix.Class == class || c.isALocked(class, ix.Class, map[string]bool{}) {
			if ix.Kind == BTreeIndex {
				return ix
			}
			hash = ix
		}
	}
	return hash
}

// Indexes returns every index, unordered.
func (c *Catalog) Indexes() []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Index, 0, len(c.indexes))
	for _, ix := range c.indexes {
		out = append(out, ix)
	}
	return out
}

// Lookup returns the OIDs whose indexed attribute equals v.
func (ix *Index) Lookup(v object.Value) ([]storage.OID, error) {
	key, err := EncodeKey(ix.attrT, v, ix.KeySize)
	if err != nil || key == nil {
		return nil, err
	}
	if ix.hash != nil {
		return ix.hash.Search(key)
	}
	return ix.btree.Search(key)
}

// RangeLookup returns the OIDs whose indexed attribute lies in [lo, hi]
// (nil for open ends). Only B+ tree indexes support ranges.
func (ix *Index) RangeLookup(lo, hi object.Value) ([]storage.OID, error) {
	if ix.btree == nil {
		return nil, fmt.Errorf("catalog: index %s is a hash index; range scans need a B+ tree", ix.Name)
	}
	var lk, hk []byte
	var err error
	if !lo.IsNull() {
		if lk, err = EncodeKey(ix.attrT, lo, ix.KeySize); err != nil {
			return nil, err
		}
	}
	if !hi.IsNull() {
		if hk, err = EncodeKey(ix.attrT, hi, ix.KeySize); err != nil {
			return nil, err
		}
	}
	var out []storage.OID
	err = ix.btree.Range(lk, hk, func(_ []byte, oid storage.OID) bool {
		out = append(out, oid)
		return true
	})
	return out, err
}

func (ix *Index) insert(v object.Value, oid storage.OID) error {
	av, ok := v.Field(ix.Attribute)
	if !ok || av.IsNull() {
		return nil
	}
	key, err := EncodeKey(ix.attrT, av, ix.KeySize)
	if err != nil || key == nil {
		return err
	}
	if ix.hash != nil {
		return ix.hash.Insert(key, oid)
	}
	return ix.btree.Insert(key, oid)
}

func (ix *Index) remove(v object.Value, oid storage.OID) error {
	av, ok := v.Field(ix.Attribute)
	if !ok || av.IsNull() {
		return nil
	}
	key, err := EncodeKey(ix.attrT, av, ix.KeySize)
	if err != nil || key == nil {
		return err
	}
	if ix.hash != nil {
		err = ix.hash.Delete(key, oid)
		if err == hashidx.ErrNotFound {
			return nil
		}
		return err
	}
	err = ix.btree.Delete(key, oid)
	if err == btree.ErrNotFound {
		return nil
	}
	return err
}

// indexInsert maintains every index applicable to an object of the class
// (indexes declared on the class or any of its superclasses).
func (c *Catalog) indexInsert(class string, v object.Value, oid storage.OID) error {
	for _, ix := range c.applicableIndexes(class) {
		if err := ix.insert(v, oid); err != nil {
			return err
		}
	}
	return nil
}

func (c *Catalog) indexDelete(class string, v object.Value, oid storage.OID) error {
	for _, ix := range c.applicableIndexes(class) {
		if err := ix.remove(v, oid); err != nil {
			return err
		}
	}
	return nil
}

func (c *Catalog) applicableIndexes(class string) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Index
	for _, ix := range c.indexes {
		if ix.Class == class || c.isALocked(class, ix.Class, map[string]bool{}) {
			out = append(out, ix)
		}
	}
	return out
}
