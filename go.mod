module mood

go 1.22
