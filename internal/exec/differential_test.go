package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mood/internal/algebra"
	"mood/internal/expr"
	"mood/internal/objcache"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/sql"
	"mood/internal/storage"
	"mood/internal/testutil"
)

// TestRandomQueriesDifferential generates random single-variable queries
// over the vehicle database and checks that the optimized, plan-executed
// result matches a brute-force evaluation of the same predicate over the
// extent. This exercises the full stack — parser-equivalent ASTs, DNF,
// dictionary classification, §8.1/8.1/8.2 ordering, all join strategies,
// and the executor — against an oracle that uses none of it.
//
// Four execution legs run per trial: the vectorized streaming pipeline
// (compiled predicates), the row-at-a-time interpreter (RowMode), the
// materializing reference executor, and the morsel-parallel rewrite.
// Halfway through, a decoded-object cache is switched on underneath all of
// them, so the second half of the trials covers the cached read path too.
func TestRandomQueriesDifferential(t *testing.T) {
	f := defaultFixture(t)
	rng := rand.New(rand.NewSource(testutil.Seed(t, 20240705)))

	// The row-at-a-time leg: same algebra, compilation disabled, rows pulled
	// one by one through the adapter-free interpreter path.
	rowEx := New(algebra.New(f.db.Cat))
	rowEx.RowMode = true

	// Predicate building blocks over Vehicle v.
	leaves := []func() expr.Expr{
		func() expr.Expr { // atomic on weight
			ops := []expr.CmpOp{expr.OpEq, expr.OpNe, expr.OpGt, expr.OpLt, expr.OpGe, expr.OpLe}
			return &expr.Cmp{Op: ops[rng.Intn(len(ops))],
				L: expr.Path("v", "weight"),
				R: &expr.Const{Val: object.NewInt(int32(800 + rng.Intn(2200)))}}
		},
		func() expr.Expr { // atomic on id
			return &expr.Cmp{Op: expr.OpLt,
				L: expr.Path("v", "id"),
				R: &expr.Const{Val: object.NewInt(int32(rng.Intn(400)))}}
		},
		func() expr.Expr { // one-hop path
			return &expr.Cmp{Op: expr.OpEq,
				L: expr.Path("v", "drivetrain", "transmission"),
				R: &expr.Const{Val: object.NewString([]string{"AUTOMATIC", "MANUAL", "CVT", "DCT"}[rng.Intn(4)])}}
		},
		func() expr.Expr { // two-hop path
			ops := []expr.CmpOp{expr.OpEq, expr.OpGt, expr.OpLe}
			return &expr.Cmp{Op: ops[rng.Intn(len(ops))],
				L: expr.Path("v", "drivetrain", "engine", "cylinders"),
				R: &expr.Const{Val: object.NewInt(int32(2 + 2*rng.Intn(16)))}}
		},
		func() expr.Expr { // BETWEEN on weight
			lo := int32(800 + rng.Intn(1500))
			return &expr.Between{E: expr.Path("v", "weight"),
				Lo: &expr.Const{Val: object.NewInt(lo)},
				Hi: &expr.Const{Val: object.NewInt(lo + int32(rng.Intn(800)))}}
		},
	}
	var build func(depth int) expr.Expr
	build = func(depth int) expr.Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			return leaves[rng.Intn(len(leaves))]()
		}
		switch rng.Intn(4) {
		case 0:
			return &expr.Not{E: build(depth - 1)}
		case 1, 2:
			return &expr.Logic{Op: expr.OpAnd, L: build(depth - 1), R: build(depth - 1)}
		default:
			return &expr.Logic{Op: expr.OpOr, L: build(depth - 1), R: build(depth - 1)}
		}
	}

	resolver := f.db.Cat.Resolver()
	for trial := 0; trial < 60; trial++ {
		if trial == 30 {
			// Second half: identical trials over the decoded-object cache.
			// The cache may change decode counts, never rows.
			oc := objcache.New(8 << 20)
			f.db.Cat.SetObjectCache(oc)
			f.db.Cat.Store().SetInvalidator(oc)
		}
		pred := build(3)
		q := &sql.Select{
			Projs: []sql.ProjItem{{Expr: &expr.Var{Name: "v"}}},
			From:  []sql.FromItem{{Class: "Vehicle", Var: "v"}},
			Where: pred,
		}
		plan, _, err := f.opt.Optimize(q)
		if err != nil {
			t.Fatalf("trial %d: optimize %s: %v", trial, pred, err)
		}
		coll, err := f.ex.Execute(plan)
		if err != nil {
			t.Fatalf("trial %d: execute %s: %v", trial, pred, err)
		}
		// The retained eager executor must agree with the streaming
		// pipeline row for row on the same plan.
		eager, err := f.ex.ExecuteMaterialized(plan)
		if err != nil {
			t.Fatalf("trial %d: materialized execute %s: %v", trial, pred, err)
		}
		assertCollectionsEqual(t, fmt.Sprintf("trial %d: %s", trial, pred), coll, eager)

		// The row-at-a-time interpreter must produce the identical stream:
		// this is the uncompiled, unbatched baseline the vectorized path is
		// differentially pinned against.
		rowColl, err := rowEx.Execute(plan)
		if err != nil {
			t.Fatalf("trial %d: row-mode execute %s: %v", trial, pred, err)
		}
		assertCollectionsEqual(t, fmt.Sprintf("trial %d (row mode): %s", trial, pred), rowColl, eager)

		// The morsel-driven parallel rewrite of the same plan must produce
		// the identical stream — values and order (run under -race, this is
		// also the executor's main concurrency check).
		pplan := optimizer.Parallelize(plan, 4, -1, f.opt.Stats)
		pcoll, err := f.ex.Execute(pplan)
		if err != nil {
			t.Fatalf("trial %d: parallel execute %s: %v", trial, pred, err)
		}
		assertCollectionsEqual(t, fmt.Sprintf("trial %d (parallel): %s", trial, pred), pcoll, eager)

		// Oracle: evaluate the raw predicate against every vehicle.
		var want []int64
		err = f.db.Cat.ScanExtent("Vehicle", func(oid storage.OID, v object.Value) bool {
			env := &expr.Env{
				Vars:    map[string]object.Value{"v": v},
				OIDs:    map[string]storage.OID{"v": oid},
				Resolve: resolver,
			}
			ok, err := expr.EvalBool(pred, env)
			if err != nil {
				t.Fatalf("trial %d: oracle eval: %v", trial, err)
			}
			if ok {
				id, _ := v.Field("id")
				want = append(want, id.Int)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}

		var got []int64
		for _, row := range coll.Rows {
			b := row.Vars["$result"]
			id, _ := b.Val.Fields[0].Field("id")
			got = append(got, id.Int)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: differential mismatch for\n  %s\nplan rows %d, oracle rows %d",
				trial, pred, len(got), len(want))
		}
	}
}
