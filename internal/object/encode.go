package object

import (
	"encoding/binary"
	"fmt"
	"math"

	"mood/internal/storage"
)

// Self-describing binary encoding of values: one kind byte followed by a
// kind-specific payload. This is the stored representation of objects; the
// kernel's cursor mechanism (Section 9.4) decodes it back into name/type/
// value triples for MoodView.
//
//	Null                 — nothing
//	Integer              — varint (zigzag)
//	LongInteger          — varint (zigzag)
//	Float                — 8 bytes IEEE-754
//	String               — uvarint length + bytes
//	Char                 — varint code point
//	Boolean              — 1 byte
//	Reference            — 8 bytes OID
//	Set, List            — uvarint count + encoded elements
//	Tuple                — uvarint count + (name + encoded value)*

// Encode appends the binary form of v to dst and returns the result.
func Encode(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindInteger, KindLongInteger, KindChar:
		dst = binary.AppendVarint(dst, v.Int)
	case KindBoolean:
		b := byte(0)
		if v.Int != 0 {
			b = 1
		}
		dst = append(dst, b)
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Flt))
		dst = append(dst, buf[:]...)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
		dst = append(dst, v.Str...)
	case KindReference:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.Ref))
		dst = append(dst, buf[:]...)
	case KindSet, KindList:
		dst = binary.AppendUvarint(dst, uint64(len(v.Elems)))
		for _, e := range v.Elems {
			dst = Encode(dst, e)
		}
	case KindTuple:
		dst = binary.AppendUvarint(dst, uint64(len(v.Fields)))
		for i, f := range v.Fields {
			dst = binary.AppendUvarint(dst, uint64(len(v.Names[i])))
			dst = append(dst, v.Names[i]...)
			dst = Encode(dst, f)
		}
	}
	return dst
}

// Marshal returns the binary form of v.
func Marshal(v Value) []byte { return Encode(nil, v) }

// Unmarshal decodes one value from data, which must contain exactly one
// encoded value.
func Unmarshal(data []byte) (Value, error) {
	unmarshals.Add(1)
	v, rest, err := Decode(data)
	if err != nil {
		return Null, err
	}
	if len(rest) != 0 {
		return Null, fmt.Errorf("object: %d trailing bytes after value", len(rest))
	}
	return v, nil
}

// Decode decodes one value from the front of data, returning the remainder.
func Decode(data []byte) (Value, []byte, error) {
	if len(data) == 0 {
		return Null, nil, fmt.Errorf("object: empty input")
	}
	kind := Kind(data[0])
	data = data[1:]
	switch kind {
	case KindNull:
		return Null, data, nil
	case KindInteger, KindLongInteger, KindChar:
		n, sz := binary.Varint(data)
		if sz <= 0 {
			return Null, nil, fmt.Errorf("object: bad varint for %s", kind)
		}
		return Value{Kind: kind, Int: n}, data[sz:], nil
	case KindBoolean:
		if len(data) < 1 {
			return Null, nil, fmt.Errorf("object: truncated boolean")
		}
		return Value{Kind: KindBoolean, Int: int64(data[0] & 1)}, data[1:], nil
	case KindFloat:
		if len(data) < 8 {
			return Null, nil, fmt.Errorf("object: truncated float")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(data))
		return Value{Kind: KindFloat, Flt: f}, data[8:], nil
	case KindString:
		n, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < n {
			return Null, nil, fmt.Errorf("object: truncated string")
		}
		return Value{Kind: KindString, Str: string(data[sz : sz+int(n)])}, data[sz+int(n):], nil
	case KindReference:
		if len(data) < 8 {
			return Null, nil, fmt.Errorf("object: truncated reference")
		}
		oid := storage.OID(binary.LittleEndian.Uint64(data))
		return Value{Kind: KindReference, Ref: oid}, data[8:], nil
	case KindSet, KindList:
		n, sz := binary.Uvarint(data)
		if sz <= 0 {
			return Null, nil, fmt.Errorf("object: bad collection count")
		}
		data = data[sz:]
		out := Value{Kind: kind}
		if n > 0 {
			out.Elems = make([]Value, 0, n)
		}
		for i := uint64(0); i < n; i++ {
			var e Value
			var err error
			e, data, err = Decode(data)
			if err != nil {
				return Null, nil, err
			}
			out.Elems = append(out.Elems, e)
		}
		return out, data, nil
	case KindTuple:
		n, sz := binary.Uvarint(data)
		if sz <= 0 {
			return Null, nil, fmt.Errorf("object: bad tuple count")
		}
		data = data[sz:]
		out := Value{Kind: KindTuple}
		for i := uint64(0); i < n; i++ {
			nl, nsz := binary.Uvarint(data)
			if nsz <= 0 || uint64(len(data)-nsz) < nl {
				return Null, nil, fmt.Errorf("object: truncated field name")
			}
			name := string(data[nsz : nsz+int(nl)])
			data = data[nsz+int(nl):]
			var f Value
			var err error
			f, data, err = Decode(data)
			if err != nil {
				return Null, nil, err
			}
			out.Names = append(out.Names, name)
			out.Fields = append(out.Fields, f)
		}
		return out, data, nil
	}
	return Null, nil, fmt.Errorf("object: unknown kind byte %d", kind)
}
