package exec

import (
	"fmt"
	"sort"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/expr"
	"mood/internal/funcmgr"
	"mood/internal/joinindex"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/sql"
	"mood/internal/storage"
)

// This file is the streaming (pull-based, Volcano-style) execution path.
// Compile lowers each Plan node into an optimizer.Operator; rows flow
// upward one at a time through Next, so non-blocking operators never copy or
// buffer intermediate collections and a consumer that stops early stops the
// leaves from reading further pages. Blocking operators — sort, group,
// dup-elim, and the build sides of the join strategies — drain their inputs
// inside Open and are the pipeline breakers documented in DESIGN.md.
//
// The streaming path produces exactly the rows (values and order) of
// ExecuteMaterialized; the differential tests in stream_test.go and the
// kernel golden suite hold the two paths equal.

// Execute runs a plan through the streaming pipeline and materializes the
// result, preserving the seed executor's *algebra.Collection API. The
// pipeline is driven batch-at-a-time (see batch.go) unless RowMode pins the
// executor to the row-at-a-time baseline.
func (e *Executor) Execute(p optimizer.Plan) (*algebra.Collection, error) {
	root, err := e.compileNode(p, nil)
	if err != nil {
		return nil, err
	}
	if e.RowMode {
		return drainRows(root.op, root.hdr)
	}
	return drainOp(root.op, root.hdr)
}

// Compile lowers a plan into a physical-operator pipeline without running
// it. The caller owns the lifecycle: Open, Next until exhausted, Close.
func (e *Executor) Compile(p optimizer.Plan) (optimizer.PhysicalOperator, error) {
	root, err := e.compileNode(p, nil)
	if err != nil {
		return nil, err
	}
	return &rootOp{op: root.op, hdr: root.hdr}, nil
}

type rootOp struct {
	op  optimizer.Operator
	hdr optimizer.Header
}

func (r *rootOp) Open() error                      { return r.op.Open() }
func (r *rootOp) Next() (algebra.Row, bool, error) { return r.op.Next() }
func (r *rootOp) NextBatch(b *RowBatch) (int, error) {
	return nextBatch(r.op, b)
}
func (r *rootOp) Close() error             { return r.op.Close() }
func (r *rootOp) Header() optimizer.Header { return r.hdr }

// drainOp materializes an operator's stream under the compile-time header,
// driving the pipeline batch-at-a-time (batch-native operators produce
// vectors; row-only ones go through the adapter).
func drainOp(op optimizer.Operator, hdr optimizer.Header) (*algebra.Collection, error) {
	out := &algebra.Collection{Kind: hdr.Kind, Name: hdr.Name, Class: hdr.Class}
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	b := &RowBatch{}
	for {
		n, err := nextBatch(op, b)
		if err != nil {
			op.Close()
			return nil, err
		}
		if n == 0 {
			break
		}
		out.Rows = append(out.Rows, b.Rows[:n]...)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// drainRows is drainOp's row-at-a-time twin, used in RowMode.
func drainRows(op optimizer.Operator, hdr optimizer.Header) (*algebra.Collection, error) {
	out := &algebra.Collection{Kind: hdr.Kind, Name: hdr.Name, Class: hdr.Class}
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	for {
		row, ok, err := op.Next()
		if err != nil {
			op.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out.Rows = append(out.Rows, row)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// compiled pairs a plan node with its operator, compile-time header, and
// compiled children (the analysis tree EXPLAIN ANALYZE walks). op is the
// operator to drive (possibly a stats wrapper); raw is always the bare
// operator underneath.
type compiled struct {
	plan  optimizer.Plan
	op    optimizer.Operator
	raw   optimizer.Operator
	hdr   optimizer.Header
	stats *opStats // non-nil when compiled for EXPLAIN ANALYZE
	kids  []*compiled
}

// compileNode lowers one plan node. When an is non-nil every operator is
// wrapped with per-operator instrumentation.
func (e *Executor) compileNode(p optimizer.Plan, an *analyzeCtx) (*compiled, error) {
	c := &compiled{plan: p}
	child := func(in optimizer.Plan) (*compiled, error) {
		k, err := e.compileNode(in, an)
		if err != nil {
			return nil, err
		}
		c.kids = append(c.kids, k)
		return k, nil
	}

	switch n := p.(type) {
	case *optimizer.BindPlan:
		c.hdr = optimizer.Header{Kind: algebra.ExtentKind, Name: n.Var, Class: n.Class}
		c.op = &bindOp{
			alg: e.Alg, class: n.Class, varName: n.Var,
			minus: n.Minus, closure: n.Every || len(n.Minus) > 0,
		}

	case *optimizer.IndSelPlan:
		c.hdr = optimizer.Header{Kind: algebra.SetKind, Name: n.Var, Class: n.Class}
		iop := &indSelOp{
			alg: e.Alg, class: n.Class, varName: n.Var,
			indexKind: n.Index.Kind, pred: n.Pred,
		}
		if !e.RowMode {
			iop.funcs = e.queryFuncs()
		}
		c.op = iop

	case *optimizer.IntersectPlan:
		// Every input is an IndSelPlan by construction (the optimizer only
		// intersects index selections). The children stream candidate OIDs
		// without fetching objects; the intersect fetches each surviving OID
		// once and re-checks every input's predicate against it. An empty
		// intersection therefore costs only the index probes.
		kids := make([]optimizer.Operator, 0, len(n.Inputs))
		rechecks := make([]expr.Expr, 0, len(n.Inputs))
		for _, in := range n.Inputs {
			isp, ok := in.(*optimizer.IndSelPlan)
			if !ok {
				return nil, fmt.Errorf("exec: INTERSECT input is %T, want INDSEL", in)
			}
			k, err := child(in)
			if err != nil {
				return nil, err
			}
			k.raw.(withCandidatesOnly).candidatesOnly()
			kids = append(kids, k.op)
			rechecks = append(rechecks, e.Alg.RecheckExpr(isp.Var, isp.Pred))
		}
		first := n.Inputs[0].(*optimizer.IndSelPlan)
		c.hdr = optimizer.Header{Kind: algebra.SetKind, Name: first.Var, Class: first.Class}
		c.op = &intersectOp{alg: e.Alg, kids: kids, varName: first.Var, rechecks: rechecks}

	case *optimizer.SelectPlan:
		if bp, ok := n.Input.(*optimizer.BindPlan); ok && !e.RowMode {
			// Fused scan-selection (the serial analogue of the exchange
			// path's fused morsel scan): the predicate runs against each
			// object straight off the extent cursor, through the self-mode
			// compiled form when it lowers. The BIND child disappears from
			// the operator tree; EXPLAIN ANALYZE annotates the fused node.
			c.hdr = optimizer.Header{Kind: algebra.ExtentKind, Name: bp.Var, Class: bp.Class}
			op := &scanSelectOp{
				alg: e.Alg, class: bp.Class, varName: bp.Var,
				minus: bp.Minus, closure: bp.Every || len(bp.Minus) > 0,
				pred: n.Pred, re: e.Alg.NewRowEvaluator(),
			}
			op.predFn, op.compiled = e.queryFuncs().Predicate(bp.Var, n.Pred)
			c.op = op
			break
		}
		in, err := child(n.Input)
		if err != nil {
			return nil, err
		}
		c.hdr = in.hdr
		sel := &selectOp{in: in.op, pred: n.Pred, re: e.Alg.NewRowEvaluator()}
		if !e.RowMode {
			sel.fn, sel.full = e.queryFuncs().BoolFn(n.Pred)
		}
		c.op = sel

	case *optimizer.JoinPlan:
		left, err := child(n.Left)
		if err != nil {
			return nil, err
		}
		if n.Method == cost.FusionJoin {
			// Fusion absorbs its bind-shaped right side into the operator
			// (the same disappearance as the fused scan-selection): the
			// bind's class membership and predicate run against the
			// batch-fetched referents, and the right extent is never
			// scanned. The optimizer only picks fusion for these shapes.
			bp, pred, ok := fusionRight(n.Right)
			if !ok {
				return nil, fmt.Errorf("exec: fusion join needs a bind-shaped right side, got %T", n.Right)
			}
			c.hdr = optimizer.Header{
				Kind:  algebra.JoinKind(left.hdr.Kind, algebra.ExtentKind),
				Name:  n.RightVar,
				Class: bp.Class,
			}
			op := &fusionJoinOp{
				joinBase: joinBase{
					alg: e.Alg, left: left,
					leftVar: n.LeftVar, attr: n.Attribute, rightVar: n.RightVar,
				},
				rightClass: bp.Class,
				minus:      bp.Minus,
				closure:    bp.Every || len(bp.Minus) > 0,
				pred:       pred,
				re:         e.Alg.NewRowEvaluator(),
			}
			if pred != nil && !e.RowMode {
				op.predFn, op.compiled = e.queryFuncs().Predicate(bp.Var, pred)
			}
			c.op = op
			break
		}
		right, err := child(n.Right)
		if err != nil {
			return nil, err
		}
		c.hdr = optimizer.Header{
			Kind:  algebra.JoinKind(left.hdr.Kind, right.hdr.Kind),
			Name:  n.RightVar,
			Class: right.hdr.Class,
		}
		var bji *joinindex.BinaryJoinIndex
		if n.Index != "" {
			bji = e.BJIs[n.Index]
		}
		j := joinBase{
			alg: e.Alg, left: left, right: right,
			leftVar: n.LeftVar, attr: n.Attribute, rightVar: n.RightVar,
		}
		switch n.Method {
		case cost.ForwardTraversal:
			c.op = &forwardJoinOp{joinBase: j}
		case cost.BackwardTraversal:
			c.op = &backwardJoinOp{joinBase: j}
		case cost.BinaryJoinIndex:
			c.op = &bjiJoinOp{joinBase: j, index: bji}
		case cost.HashPartition:
			c.op = &hashJoinOp{joinBase: j}
		default:
			return nil, fmt.Errorf("algebra: unknown join method %v", n.Method)
		}

	case *optimizer.CrossPlan:
		left, err := child(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := child(n.Right)
		if err != nil {
			return nil, err
		}
		c.hdr = optimizer.Header{Kind: algebra.ExtentKind, Name: right.hdr.Name, Class: right.hdr.Class}
		c.op = &crossOp{left: left, right: right}

	case *optimizer.UnionPlan:
		kids := make([]*compiled, 0, len(n.Inputs))
		for _, in := range n.Inputs {
			k, err := child(in)
			if err != nil {
				return nil, err
			}
			kids = append(kids, k)
		}
		if len(kids) == 0 {
			return nil, fmt.Errorf("exec: UNION with no inputs")
		}
		c.hdr = kids[0].hdr
		c.op = &unionOp{kids: kids, vars: n.Vars}

	case *optimizer.ProjectPlan:
		in, err := child(n.Input)
		if err != nil {
			return nil, err
		}
		c.hdr = optimizer.Header{Kind: algebra.ExtentKind, Name: in.hdr.Name, Class: in.hdr.Class}
		pop := &projectOp{in: in.op, items: n.Items, re: e.Alg.NewRowEvaluator()}
		if !e.RowMode {
			pop.fns = make([]expr.Fn, len(n.Items))
			pop.full = true
			for i, it := range n.Items {
				if it.Expr == nil { // star/aggregate items never reach Next
					pop.full = false
					continue
				}
				var ok bool
				pop.fns[i], ok = e.queryFuncs().Fn(it.Expr)
				pop.full = pop.full && ok
			}
		}
		c.op = pop

	case *optimizer.GroupPlan:
		in, err := child(n.Input)
		if err != nil {
			return nil, err
		}
		c.hdr = optimizer.Header{Kind: algebra.ExtentKind, Name: in.hdr.Name, Class: in.hdr.Class}
		c.op = &breakerOp{in: in, run: func(coll *algebra.Collection) (*algebra.Collection, error) {
			return e.group(coll, n.By, n.Having, n.Projs)
		}}

	case *optimizer.SortPlan:
		in, err := child(n.Input)
		if err != nil {
			return nil, err
		}
		c.hdr = in.hdr
		c.op = &breakerOp{in: in, run: func(coll *algebra.Collection) (*algebra.Collection, error) {
			return e.sortRows(coll, n.Keys)
		}}

	case *optimizer.DupElimPlan:
		in, err := child(n.Input)
		if err != nil {
			return nil, err
		}
		c.hdr = in.hdr
		c.op = &breakerOp{in: in, run: func(coll *algebra.Collection) (*algebra.Collection, error) {
			return dedupByResult(coll), nil
		}}

	case *optimizer.ExchangePlan:
		cc, err := e.compileExchange(c, n, an)
		if err != nil {
			return nil, err
		}
		if cc != c {
			// Non-exchangeable input shape: the fallback compiled the input
			// serially and already carries its own instrumentation.
			return cc, nil
		}

	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", p)
	}

	c.raw = c.op
	if an != nil {
		c.stats = &opStats{}
		c.op = &statsOp{inner: c.op, an: an, st: c.stats}
	}
	return c, nil
}

// --- leaf operators -------------------------------------------------------

// bindOp streams a class extent (closure or direct) through the catalog's
// page-at-a-time cursor: BIND(Class, var).
type bindOp struct {
	alg     *algebra.Algebra
	class   string
	varName string
	minus   []string
	closure bool
	cur     *catalog.ExtentCursor
}

func (o *bindOp) Open() error {
	cur, err := o.alg.Cat.OpenExtentScan(o.class, o.minus, o.closure)
	if err != nil {
		return err
	}
	o.cur = cur
	return nil
}

func (o *bindOp) Next() (algebra.Row, bool, error) {
	oid, v, ok, err := o.cur.Next()
	if err != nil || !ok {
		return algebra.Row{}, false, err
	}
	return algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid, Val: v}}}, true, nil
}

// NextBatch pulls straight from the extent cursor; the cursor reads pages
// on demand, so a partially consumed batch never over-reads.
func (o *bindOp) NextBatch(b *RowBatch) (int, error) {
	n := 0
	for n < BatchCapacity {
		oid, v, ok, err := o.cur.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		b.Rows[n] = algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid, Val: v}}}
		n++
	}
	return n, nil
}

func (o *bindOp) Close() error {
	if o.cur != nil {
		o.cur.Close()
	}
	return nil
}

// scanSelectOp fuses SELECT(BIND(...), P) into one operator: each object
// comes off the extent cursor and is filtered before a row is ever built,
// so non-matching objects cost neither a Vars map allocation nor an
// environment bind. When the predicate lowers to self mode (compiled
// through the Function Manager's query registry) the per-object check is a
// direct closure call; otherwise the row is built and the interpreter path
// of selectOp runs unchanged.
type scanSelectOp struct {
	alg      *algebra.Algebra
	class    string
	varName  string
	minus    []string
	closure  bool
	pred     expr.Expr
	predFn   expr.PredFn // self-mode compiled; nil → fallback through re
	compiled bool
	pushed   bool // predicate filtering happens inside the cursor
	re       *algebra.RowEvaluator
	resolve  object.Resolver
	cur      *catalog.ExtentCursor
}

func (o *scanSelectOp) Open() error {
	cur, err := o.alg.Cat.OpenExtentScan(o.class, o.minus, o.closure)
	if err != nil {
		return err
	}
	o.cur = cur
	o.resolve = o.alg.Cat.Resolver()
	if o.predFn != nil {
		// Push the compiled predicate into the cursor's page-decode loop:
		// rejected objects are filtered in place and never buffered, so the
		// fused operator pays nothing per non-matching object beyond the
		// predicate call itself. Page reads are unchanged.
		cur.SetFilter(func(oid storage.OID, v *object.Value) (bool, error) {
			return o.predFn(v, oid, o.resolve)
		})
		o.pushed = true
	}
	return nil
}

// keep evaluates the predicate against one scanned object in place; v is
// read-only and only valid for the duration of the call (it aliases the
// cursor's buffer).
func (o *scanSelectOp) keep(oid storage.OID, v *object.Value) (bool, error) {
	if o.predFn != nil {
		return o.predFn(v, oid, o.resolve)
	}
	row := algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid, Val: *v}}}
	return o.re.EvalBool(row, o.pred)
}

func (o *scanSelectOp) Next() (algebra.Row, bool, error) {
	for {
		oid, v, ok, err := o.cur.NextRef()
		if err != nil || !ok {
			return algebra.Row{}, false, err
		}
		keep := o.pushed // cursor-filtered objects already passed
		if !keep {
			if keep, err = o.keep(oid, v); err != nil {
				return algebra.Row{}, false, err
			}
		}
		if keep {
			return algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid, Val: *v}}}, true, nil
		}
	}
}

func (o *scanSelectOp) NextBatch(b *RowBatch) (int, error) {
	n := 0
	for n < BatchCapacity {
		oid, v, ok, err := o.cur.NextRef()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		keep := o.pushed // cursor-filtered objects already passed
		if !keep {
			if keep, err = o.keep(oid, v); err != nil {
				return 0, err
			}
		}
		if keep {
			b.Rows[n] = algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid, Val: *v}}}
			n++
		}
	}
	return n, nil
}

func (o *scanSelectOp) Close() error {
	if o.cur != nil {
		o.cur.Close()
	}
	return nil
}

func (o *scanSelectOp) compiledPredicate() (active, full bool) {
	return true, o.predFn != nil && o.compiled
}

// withCandidatesOnly is implemented by operators that can restrict
// themselves to the index probe (no object fetches); the streaming
// intersect switches its INDSEL children into this mode.
type withCandidatesOnly interface{ candidatesOnly() }

// indSelOp is INDSEL(Class, var, index, P): the index probe happens at
// Open, object fetches and the predicate re-check stream per Next. In
// candidates-only mode Next emits the probed OIDs without fetching.
type indSelOp struct {
	alg       *algebra.Algebra
	class     string
	varName   string
	indexKind catalog.IndexKind
	pred      algebra.SimplePredicate
	probeOnly bool
	funcs     *funcmgr.QueryRegistry // nil in row mode: interpret the recheck

	oids    []storage.OID
	i       int
	recheck expr.Expr
	predFn  expr.PredFn
	resolve object.Resolver
	re      *algebra.RowEvaluator
}

func (o *indSelOp) candidatesOnly() { o.probeOnly = true }

func (o *indSelOp) Open() error {
	oids, err := o.alg.IndSelCandidates(o.class, o.indexKind, o.pred)
	if err != nil {
		return err
	}
	o.oids = oids
	if !o.probeOnly {
		o.recheck = o.alg.RecheckExpr(o.varName, o.pred)
		o.re = o.alg.NewRowEvaluator()
		if o.funcs != nil {
			o.predFn, _ = o.funcs.Predicate(o.varName, o.recheck)
			o.resolve = o.alg.Cat.Resolver()
		}
	}
	return nil
}

// step emits the next surviving candidate. Object fetches stay one GetObject
// per candidate in both row and batch mode, so the index path's page access
// pattern (and the DiskSim counts tests pin) is identical across modes.
func (o *indSelOp) step() (algebra.Row, bool, error) {
	for o.i < len(o.oids) {
		oid := o.oids[o.i]
		o.i++
		if o.probeOnly {
			return algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid}}}, true, nil
		}
		v, _, err := o.alg.Cat.GetObject(oid)
		if err != nil {
			return algebra.Row{}, false, err
		}
		var ok bool
		if o.predFn != nil {
			ok, err = o.predFn(&v, oid, o.resolve)
		} else {
			row := algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid, Val: v}}}
			ok, err = o.re.EvalBool(row, o.recheck)
		}
		if err != nil {
			return algebra.Row{}, false, err
		}
		if ok {
			// Match IndSel: emitted rows carry the identifier only.
			return algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid}}}, true, nil
		}
	}
	return algebra.Row{}, false, nil
}

func (o *indSelOp) Next() (algebra.Row, bool, error) { return o.step() }

func (o *indSelOp) NextBatch(b *RowBatch) (int, error) {
	n := 0
	for n < BatchCapacity {
		row, ok, err := o.step()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		b.Rows[n] = row
		n++
	}
	return n, nil
}

func (o *indSelOp) Close() error { return nil }

func (o *indSelOp) compiledPredicate() (active, full bool) {
	return !o.probeOnly && o.funcs != nil, o.predFn != nil
}

// intersectOp intersects its children's candidate OID streams at Open (index
// probes only), then fetches each surviving object once per Next and
// re-checks every input's predicate. The materializing path fetches every
// candidate of every input; here an OID eliminated by the intersection is
// never fetched, and an empty intersection short-circuits to zero fetches.
type intersectOp struct {
	alg      *algebra.Algebra
	kids     []optimizer.Operator
	varName  string
	rechecks []expr.Expr

	oids []storage.OID
	i    int
	re   *algebra.RowEvaluator
}

func (o *intersectOp) Open() error {
	var first []storage.OID
	var rest []map[storage.OID]bool
	for ki, kid := range o.kids {
		if err := kid.Open(); err != nil {
			return err
		}
		var set map[storage.OID]bool
		if ki > 0 {
			set = map[storage.OID]bool{}
		}
		for {
			row, ok, err := kid.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			oid := row.Vars[o.varName].OID
			if ki == 0 {
				first = append(first, oid)
			} else {
				set[oid] = true
			}
		}
		if err := kid.Close(); err != nil {
			return err
		}
		if ki > 0 {
			rest = append(rest, set)
		}
	}
	// Surviving candidates keep the first input's probe order, matching the
	// materializing Intersection (which preserves its x argument's order).
	for _, oid := range first {
		inAll := true
		for _, set := range rest {
			if !set[oid] {
				inAll = false
				break
			}
		}
		if inAll {
			o.oids = append(o.oids, oid)
		}
	}
	o.re = o.alg.NewRowEvaluator()
	return nil
}

func (o *intersectOp) Next() (algebra.Row, bool, error) {
	for o.i < len(o.oids) {
		oid := o.oids[o.i]
		o.i++
		v, _, err := o.alg.Cat.GetObject(oid)
		if err != nil {
			return algebra.Row{}, false, err
		}
		row := algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid, Val: v}}}
		env, err := o.re.Env(row)
		if err != nil {
			return algebra.Row{}, false, err
		}
		pass := true
		for _, p := range o.rechecks {
			ok, err := expr.EvalBool(p, env)
			if err != nil {
				return algebra.Row{}, false, err
			}
			if !ok {
				pass = false
				break
			}
		}
		if pass {
			return algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid}}}, true, nil
		}
	}
	return algebra.Row{}, false, nil
}

func (o *intersectOp) Close() error {
	for _, kid := range o.kids {
		kid.Close()
	}
	return nil
}

// --- streaming filters ----------------------------------------------------

// selectOp is SELECT(input, P): a pure streaming filter. Outside row mode
// the predicate runs as a compiled closure against the evaluator's bound
// environment — identical semantics, no tree walk when it fully lowered.
type selectOp struct {
	in   optimizer.Operator
	pred expr.Expr
	re   *algebra.RowEvaluator
	fn   expr.BoolFn // nil in row mode: interpret
	full bool

	scratch *RowBatch // child-side buffer for NextBatch's filter pass
}

func (o *selectOp) Open() error { return o.in.Open() }

func (o *selectOp) keep(row algebra.Row) (bool, error) {
	if o.fn == nil {
		return o.re.EvalBool(row, o.pred)
	}
	return o.re.EvalPred(row, o.fn)
}

func (o *selectOp) Next() (algebra.Row, bool, error) {
	for {
		row, ok, err := o.in.Next()
		if err != nil || !ok {
			return algebra.Row{}, false, err
		}
		keep, err := o.keep(row)
		if err != nil {
			return algebra.Row{}, false, err
		}
		if keep {
			return row, true, nil
		}
	}
}

// NextBatch filters child batches into b, pulling more input until at least
// one row survives or the input ends (a 0 return means exhaustion).
func (o *selectOp) NextBatch(b *RowBatch) (int, error) {
	if o.scratch == nil {
		o.scratch = &RowBatch{}
	}
	for {
		n, err := nextBatch(o.in, o.scratch)
		if err != nil || n == 0 {
			return 0, err
		}
		w := 0
		for i := 0; i < n; i++ {
			keep, err := o.keep(o.scratch.Rows[i])
			if err != nil {
				return 0, err
			}
			if keep {
				b.Rows[w] = o.scratch.Rows[i]
				w++
			}
		}
		if w > 0 {
			return w, nil
		}
	}
}

func (o *selectOp) Close() error { return o.in.Close() }

func (o *selectOp) compiledPredicate() (active, full bool) {
	return o.fn != nil, o.fn != nil && o.full
}

// projectOp evaluates the projection list per row, attaching the tuple
// under ResultVar. Outside row mode the item expressions run as compiled
// closures.
type projectOp struct {
	in    optimizer.Operator
	items []sql.ProjItem
	re    *algebra.RowEvaluator
	names []string
	fns   []expr.Fn // nil in row mode; per-item compiled forms
	full  bool
}

func (o *projectOp) Open() error {
	o.names = make([]string, len(o.items))
	for i, it := range o.items {
		o.names[i] = outName(it, i)
	}
	return o.in.Open()
}

// apply projects one row into its output row.
func (o *projectOp) apply(row algebra.Row) (algebra.Row, error) {
	env, err := o.re.Env(row)
	if err != nil {
		return algebra.Row{}, err
	}
	fields := make([]object.Value, len(o.items))
	for i, it := range o.items {
		var v object.Value
		if o.fns != nil && o.fns[i] != nil {
			v, err = o.fns[i](env)
		} else {
			v, err = it.Expr.Eval(env)
		}
		if err != nil {
			return algebra.Row{}, err
		}
		fields[i] = v
	}
	nr := algebra.Row{Vars: map[string]algebra.Bound{}}
	for k, v := range row.Vars {
		nr.Vars[k] = v
	}
	nr.Vars[ResultVar] = algebra.Bound{Val: object.NewTuple(o.names, fields)}
	return nr, nil
}

func (o *projectOp) Next() (algebra.Row, bool, error) {
	row, ok, err := o.in.Next()
	if err != nil || !ok {
		return algebra.Row{}, false, err
	}
	nr, err := o.apply(row)
	if err != nil {
		return algebra.Row{}, false, err
	}
	return nr, true, nil
}

// NextBatch transforms the child's batch in place — projection is 1:1, so
// the child's count is the output count.
func (o *projectOp) NextBatch(b *RowBatch) (int, error) {
	n, err := nextBatch(o.in, b)
	if err != nil || n == 0 {
		return 0, err
	}
	for i := 0; i < n; i++ {
		nr, err := o.apply(b.Rows[i])
		if err != nil {
			return 0, err
		}
		b.Rows[i] = nr
	}
	return n, nil
}

func (o *projectOp) Close() error { return o.in.Close() }

func (o *projectOp) compiledPredicate() (active, full bool) {
	return o.fns != nil, o.fns != nil && o.full
}

// --- pipeline breakers ----------------------------------------------------

// breakerOp drains its input at Open and applies a whole-collection
// transform (sort, group, dup-elim) — the explicit pipeline breakers.
type breakerOp struct {
	in  *compiled
	run func(*algebra.Collection) (*algebra.Collection, error)
	out []algebra.Row
	i   int
}

func (o *breakerOp) Open() error {
	coll, err := drainOp(o.in.op, o.in.hdr)
	if err != nil {
		return err
	}
	res, err := o.run(coll)
	if err != nil {
		return err
	}
	o.out = res.Rows
	return nil
}

func (o *breakerOp) Next() (algebra.Row, bool, error) {
	if o.i >= len(o.out) {
		return algebra.Row{}, false, nil
	}
	row := o.out[o.i]
	o.i++
	return row, true, nil
}

// NextBatch copies a run of the materialized result — breakers consume
// batches at Open (via drainOp) and re-emit them here.
func (o *breakerOp) NextBatch(b *RowBatch) (int, error) {
	n := copy(b.Rows[:], o.out[o.i:])
	o.i += n
	return n, nil
}

func (o *breakerOp) Close() error { return o.in.op.Close() }

// --- joins ----------------------------------------------------------------

// joinBase carries the fields shared by the four join strategies. pending
// buffers the merged rows one driving-side row produced (a single left row
// can match several right rows).
type joinBase struct {
	alg         *algebra.Algebra
	left, right *compiled
	leftVar     string
	attr        string
	rightVar    string

	pending []algebra.Row
	pi      int
}

func (j *joinBase) take() (algebra.Row, bool) {
	if j.pi < len(j.pending) {
		row := j.pending[j.pi]
		j.pi++
		return row, true
	}
	return algebra.Row{}, false
}

func (j *joinBase) refill() {
	j.pending = j.pending[:0]
	j.pi = 0
}

func (j *joinBase) Close() error {
	err := j.left.op.Close()
	if err2 := j.right.op.Close(); err == nil {
		err = err2
	}
	return err
}

// joinBatchRows is how many driving-side rows (or probe OIDs) the batched
// join strategies gather before resolving references through the catalog's
// GetObjects: large enough that the page-ordered batch fetch amortizes page
// pins and overlaps readahead, small enough that an early-closing consumer
// still stops the driving side promptly.
const joinBatchRows = 64

// forwardJoinOp streams the left side and chases each reference (the
// paper's forward traversal); the right side is the build side, drained at
// Open into an OID-keyed hash. The left side is consumed in small batches:
// each batch's distinct references resolve through one page-ordered
// GetObjects call instead of a random dereference per occurrence.
type forwardJoinOp struct {
	joinBase
	rightBy map[storage.OID][]algebra.Row
	eof     bool
}

func (o *forwardJoinOp) Open() error {
	rc, err := drainOp(o.right.op, o.right.hdr)
	if err != nil {
		return err
	}
	o.rightBy = algebra.RowsByOID(rc, o.rightVar)
	return o.left.op.Open()
}

func (o *forwardJoinOp) Next() (algebra.Row, bool, error) {
	for {
		if row, ok := o.take(); ok {
			return row, true, nil
		}
		if o.eof {
			return algebra.Row{}, false, nil
		}
		batch := make([]algebra.Row, 0, joinBatchRows)
		batchRefs := make([][]storage.OID, 0, joinBatchRows)
		for len(batch) < joinBatchRows {
			lrow, ok, err := o.left.op.Next()
			if err != nil {
				return algebra.Row{}, false, err
			}
			if !ok {
				o.eof = true
				break
			}
			lb := lrow.Vars[o.leftVar]
			if err := o.alg.MaterializeBound(&lb); err != nil {
				return algebra.Row{}, false, err
			}
			lrow.Vars[o.leftVar] = lb
			batch = append(batch, lrow)
			batchRefs = append(batchRefs, algebra.RefsOf(lb.Val, o.attr))
		}
		// Chase the pointers: every distinct reference of the batch is
		// dereferenced even if the right side later rejects the object, as
		// in real forward traversal — but each only once per batch.
		var refs []storage.OID
		at := map[storage.OID]int{}
		for _, rs := range batchRefs {
			for _, ref := range rs {
				if _, ok := at[ref]; !ok {
					at[ref] = len(refs)
					refs = append(refs, ref)
				}
			}
		}
		o.refill()
		if len(refs) == 0 {
			continue
		}
		vals, _, err := o.alg.Cat.GetObjects(refs)
		if err != nil {
			return algebra.Row{}, false, err
		}
		for i, lrow := range batch {
			for _, ref := range batchRefs[i] {
				val := vals[at[ref]]
				for _, rrow := range o.rightBy[ref] {
					merged := lrow.Merged(rrow)
					rb := merged.Vars[o.rightVar]
					rb.Val = val
					merged.Vars[o.rightVar] = rb
					o.pending = append(o.pending, merged)
				}
			}
		}
	}
}

// backwardJoinOp scans the left class's extent closure sequentially,
// restricting to the left collection and matching references against the
// right collection. Both inputs are build sides; the extent scan is the
// streaming side, so an early-closing consumer stops the scan mid-extent.
type backwardJoinOp struct {
	joinBase
	leftBy  map[storage.OID][]algebra.Row
	rightBy map[storage.OID][]algebra.Row
	cur     *catalog.ExtentCursor
}

func (o *backwardJoinOp) Open() error {
	if o.left.hdr.Class == "" {
		return fmt.Errorf("algebra: backward traversal needs the left class")
	}
	lc, err := drainOp(o.left.op, o.left.hdr)
	if err != nil {
		return err
	}
	rc, err := drainOp(o.right.op, o.right.hdr)
	if err != nil {
		return err
	}
	o.leftBy = algebra.RowsByOID(lc, o.leftVar)
	o.rightBy = algebra.RowsByOID(rc, o.rightVar)
	o.cur, err = o.alg.Cat.OpenExtentScan(o.left.hdr.Class, nil, true)
	return err
}

func (o *backwardJoinOp) Next() (algebra.Row, bool, error) {
	for {
		if row, ok := o.take(); ok {
			return row, true, nil
		}
		oid, v, ok, err := o.cur.Next()
		if err != nil || !ok {
			return algebra.Row{}, false, err
		}
		lrows, inLeft := o.leftBy[oid]
		if !inLeft {
			continue
		}
		o.refill()
		for _, ref := range algebra.RefsOf(v, o.attr) {
			rrows, hit := o.rightBy[ref]
			if !hit {
				continue
			}
			for _, lrow := range lrows {
				lb := lrow.Vars[o.leftVar]
				lb.Val = v
				lrow.Vars[o.leftVar] = lb
				for _, rrow := range rrows {
					o.pending = append(o.pending, lrow.Merged(rrow))
				}
			}
		}
	}
}

func (o *backwardJoinOp) Close() error {
	if o.cur != nil {
		o.cur.Close()
	}
	return o.joinBase.Close()
}

// bjiJoinOp streams the right side, probing the binary join index backward
// from each right object; the left side is the build side.
type bjiJoinOp struct {
	joinBase
	index  *joinindex.BinaryJoinIndex
	leftBy map[storage.OID][]algebra.Row
}

func (o *bjiJoinOp) Open() error {
	if o.index == nil {
		return fmt.Errorf("%w: binary join index for %s.%s",
			algebra.ErrNoIndex, o.left.hdr.Class, o.attr)
	}
	lc, err := drainOp(o.left.op, o.left.hdr)
	if err != nil {
		return err
	}
	o.leftBy = algebra.RowsByOID(lc, o.leftVar)
	return o.right.op.Open()
}

// probe resolves one right row against the index into pending.
func (o *bjiJoinOp) probe(rrow algebra.Row) error {
	rb := rrow.Vars[o.rightVar]
	sources, err := o.index.Backward(rb.OID)
	if err != nil {
		return err
	}
	o.refill()
	for _, src := range sources {
		for _, lrow := range o.leftBy[src] {
			o.pending = append(o.pending, lrow.Merged(rrow))
		}
	}
	return nil
}

func (o *bjiJoinOp) Next() (algebra.Row, bool, error) {
	for {
		if row, ok := o.take(); ok {
			return row, true, nil
		}
		rrow, ok, err := o.right.op.Next()
		if err != nil || !ok {
			return algebra.Row{}, false, err
		}
		if err := o.probe(rrow); err != nil {
			return algebra.Row{}, false, err
		}
	}
}

// NextBatch keeps the right side streaming while filling a batch of merged
// rows; the per-right-row index probes (and so the read counts) are exactly
// Next's.
func (o *bjiJoinOp) NextBatch(b *RowBatch) (int, error) {
	n := 0
	for n < BatchCapacity {
		if row, ok := o.take(); ok {
			b.Rows[n] = row
			n++
			continue
		}
		rrow, ok, err := o.right.op.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		if err := o.probe(rrow); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// hashJoinOp partitions the left rows on the pointer field at Open (the
// build side), then streams the distinct referenced OIDs in sorted order,
// dereferencing each at most once and only when the right side holds it.
// The surviving (right-side-hit) refs resolve lazily in sorted chunks
// through GetObjects, so the probe's page accesses batch per chunk while an
// early-closing consumer still skips the tail chunks entirely.
type hashJoinOp struct {
	joinBase
	partitions map[storage.OID][]algebra.Row
	rightBy    map[storage.OID][]algebra.Row
	refs       []storage.OID // sorted, filtered to right-side hits
	ri         int
}

func (o *hashJoinOp) Open() error {
	lc, err := drainOp(o.left.op, o.left.hdr)
	if err != nil {
		return err
	}
	rc, err := drainOp(o.right.op, o.right.hdr)
	if err != nil {
		return err
	}
	o.rightBy = algebra.RowsByOID(rc, o.rightVar)
	o.partitions = make(map[storage.OID][]algebra.Row)
	for i := range lc.Rows {
		lrow := lc.Rows[i]
		lb := lrow.Vars[o.leftVar]
		if err := o.alg.MaterializeBound(&lb); err != nil {
			return err
		}
		lrow.Vars[o.leftVar] = lb
		for _, ref := range algebra.RefsOf(lb.Val, o.attr) {
			o.partitions[ref] = append(o.partitions[ref], lrow)
		}
	}
	o.refs = make([]storage.OID, 0, len(o.partitions))
	for ref := range o.partitions {
		if _, hit := o.rightBy[ref]; hit {
			o.refs = append(o.refs, ref)
		}
	}
	sort.Slice(o.refs, func(i, j int) bool { return o.refs[i] < o.refs[j] })
	return nil
}

// produce dereferences the next sorted ref chunk into pending; more is
// false when every chunk has been probed.
func (o *hashJoinOp) produce() (more bool, err error) {
	if o.ri >= len(o.refs) {
		return false, nil
	}
	end := o.ri + joinBatchRows
	if end > len(o.refs) {
		end = len(o.refs)
	}
	chunk := o.refs[o.ri:end]
	o.ri = end
	vals, _, err := o.alg.Cat.GetObjects(chunk)
	if err != nil {
		return false, err
	}
	o.refill()
	for i, ref := range chunk {
		val := vals[i]
		for _, lrow := range o.partitions[ref] {
			for _, rrow := range o.rightBy[ref] {
				merged := lrow.Merged(rrow)
				rb := merged.Vars[o.rightVar]
				rb.Val = val
				merged.Vars[o.rightVar] = rb
				o.pending = append(o.pending, merged)
			}
		}
	}
	return true, nil
}

func (o *hashJoinOp) Next() (algebra.Row, bool, error) {
	for {
		if row, ok := o.take(); ok {
			return row, true, nil
		}
		more, err := o.produce()
		if err != nil {
			return algebra.Row{}, false, err
		}
		if !more {
			return algebra.Row{}, false, nil
		}
	}
}

// NextBatch drains pending probe output into b, producing further chunks
// until the batch fills or the probe ends — the chunked page-ordered fetch
// pattern (and so the read counts) is exactly Next's.
func (o *hashJoinOp) NextBatch(b *RowBatch) (int, error) {
	n := 0
	for n < BatchCapacity {
		if row, ok := o.take(); ok {
			b.Rows[n] = row
			n++
			continue
		}
		more, err := o.produce()
		if err != nil {
			return 0, err
		}
		if !more {
			break
		}
	}
	return n, nil
}

// fusionRight recognizes the plan shapes a fusion join can absorb as its
// right side: a bare extent bind, or a selection directly over one.
func fusionRight(p optimizer.Plan) (*optimizer.BindPlan, expr.Expr, bool) {
	switch n := p.(type) {
	case *optimizer.BindPlan:
		return n, nil, true
	case *optimizer.SelectPlan:
		if bp, ok := n.Input.(*optimizer.BindPlan); ok {
			return bp, n.Pred, true
		}
	}
	return nil, nil, false
}

// fusionJoinOp is the collection-fused navigation join (the Odra fusion
// algorithm) as a streaming operator: the whole left input is drained and
// partitioned on the pointer field at Open, and the distinct referents then
// resolve lazily in sorted chunks through GetObjects — the right extent is
// never scanned. The absorbed right bind contributes only a
// class-membership filter (the IS-A closure when the bind had EVERY/minus
// semantics, the direct class otherwise) and an optional predicate, both
// applied to the fetched values; right rows are synthesized, never read.
// Every distinct referent is fetched — misses (wrong class, failed
// predicate) are discovered on the fetched value, matching the algebra's
// joinFusion so read counts agree between batch and collection modes.
type fusionJoinOp struct {
	joinBase // right is nil: the bind-shaped right side is absorbed

	rightClass string
	minus      []string
	closure    bool
	pred       expr.Expr   // nil → the right side was a bare bind
	predFn     expr.PredFn // self-mode compiled; nil → fallback through re
	compiled   bool
	re         *algebra.RowEvaluator
	resolve    object.Resolver

	allowed    map[string]bool // class names the right bind admits
	partitions map[storage.OID][]algebra.Row
	refs       []storage.OID // sorted, every distinct referent
	ri         int
}

func (o *fusionJoinOp) Open() error {
	o.resolve = o.alg.Cat.Resolver()
	allowed := map[string]bool{o.rightClass: true}
	if o.closure {
		closure, err := o.alg.Cat.Closure(o.rightClass)
		if err != nil {
			return err
		}
		allowed = make(map[string]bool, len(closure))
		for _, name := range closure {
			allowed[name] = true
		}
		for _, m := range o.minus {
			sub, err := o.alg.Cat.Closure(m)
			if err != nil {
				return err
			}
			for _, s := range sub {
				delete(allowed, s)
			}
		}
	}
	o.allowed = allowed
	lc, err := drainOp(o.left.op, o.left.hdr)
	if err != nil {
		return err
	}
	o.partitions = make(map[storage.OID][]algebra.Row)
	for i := range lc.Rows {
		lrow := lc.Rows[i]
		lb := lrow.Vars[o.leftVar]
		if err := o.alg.MaterializeBound(&lb); err != nil {
			return err
		}
		lrow.Vars[o.leftVar] = lb
		for _, ref := range algebra.RefsOf(lb.Val, o.attr) {
			o.partitions[ref] = append(o.partitions[ref], lrow)
		}
	}
	o.refs = make([]storage.OID, 0, len(o.partitions))
	for ref := range o.partitions {
		o.refs = append(o.refs, ref)
	}
	sort.Slice(o.refs, func(i, j int) bool { return o.refs[i] < o.refs[j] })
	return nil
}

// keep evaluates the right-side predicate against one fetched referent.
func (o *fusionJoinOp) keep(oid storage.OID, v *object.Value, rrow algebra.Row) (bool, error) {
	if o.predFn != nil {
		return o.predFn(v, oid, o.resolve)
	}
	return o.re.EvalBool(rrow, o.pred)
}

// produce dereferences the next sorted referent chunk into pending; more is
// false when every chunk has been fetched.
func (o *fusionJoinOp) produce() (more bool, err error) {
	if o.ri >= len(o.refs) {
		return false, nil
	}
	end := o.ri + joinBatchRows
	if end > len(o.refs) {
		end = len(o.refs)
	}
	chunk := o.refs[o.ri:end]
	o.ri = end
	vals, names, err := o.alg.Cat.GetObjects(chunk)
	if err != nil {
		return false, err
	}
	o.refill()
	for i, ref := range chunk {
		if !o.allowed[names[i]] {
			continue
		}
		rrow := algebra.Row{Vars: map[string]algebra.Bound{o.rightVar: {OID: ref, Val: vals[i]}}}
		if o.pred != nil {
			keep, err := o.keep(ref, &vals[i], rrow)
			if err != nil {
				return false, err
			}
			if !keep {
				continue
			}
		}
		for _, lrow := range o.partitions[ref] {
			o.pending = append(o.pending, lrow.Merged(rrow))
		}
	}
	return true, nil
}

func (o *fusionJoinOp) Next() (algebra.Row, bool, error) {
	for {
		if row, ok := o.take(); ok {
			return row, true, nil
		}
		more, err := o.produce()
		if err != nil {
			return algebra.Row{}, false, err
		}
		if !more {
			return algebra.Row{}, false, nil
		}
	}
}

// NextBatch mirrors hashJoinOp's: pending rows drain into b, further chunks
// fetch on demand, and the chunked page-ordered pattern keeps read counts
// identical to Next's.
func (o *fusionJoinOp) NextBatch(b *RowBatch) (int, error) {
	n := 0
	for n < BatchCapacity {
		if row, ok := o.take(); ok {
			b.Rows[n] = row
			n++
			continue
		}
		more, err := o.produce()
		if err != nil {
			return 0, err
		}
		if !more {
			break
		}
	}
	return n, nil
}

// Close closes only the left child; the right side was absorbed, never
// compiled.
func (o *fusionJoinOp) Close() error { return o.left.op.Close() }

func (o *fusionJoinOp) compiledPredicate() (active, full bool) {
	return o.pred != nil, o.compiled
}

// accessPath tags each join strategy for the EXPLAIN ANALYZE access=
// annotation.
func (o *forwardJoinOp) accessPath() string  { return "forward" }
func (o *backwardJoinOp) accessPath() string { return "backward" }
func (o *bjiJoinOp) accessPath() string      { return "joinindex" }
func (o *hashJoinOp) accessPath() string     { return "hash" }
func (o *fusionJoinOp) accessPath() string   { return "fusion" }

// --- products and unions --------------------------------------------------

// crossOp is the unconstrained product: the right side is drained at Open
// (inner side), the left streams as the outer side.
type crossOp struct {
	left, right *compiled
	rightRows   []algebra.Row
	lrow        algebra.Row
	haveL       bool
	ri          int
}

func (o *crossOp) Open() error {
	rc, err := drainOp(o.right.op, o.right.hdr)
	if err != nil {
		return err
	}
	o.rightRows = rc.Rows
	return o.left.op.Open()
}

func (o *crossOp) Next() (algebra.Row, bool, error) {
	for {
		if o.haveL && o.ri < len(o.rightRows) {
			row := o.lrow.Merged(o.rightRows[o.ri])
			o.ri++
			return row, true, nil
		}
		lrow, ok, err := o.left.op.Next()
		if err != nil || !ok {
			return algebra.Row{}, false, err
		}
		o.lrow, o.haveL, o.ri = lrow, true, 0
	}
}

func (o *crossOp) Close() error {
	err := o.left.op.Close()
	if err2 := o.right.op.Close(); err == nil {
		err = err2
	}
	return err
}

// unionOp concatenates its children's streams lazily (a child is opened
// only when the previous one is exhausted), deduplicating on the query's
// FROM-clause variables exactly as the materializing UNION does.
type unionOp struct {
	kids   []*compiled
	vars   []string
	ki     int
	opened bool
	seen   map[string]bool
}

func (o *unionOp) Open() error {
	o.seen = map[string]bool{}
	o.opened = true
	return o.kids[0].op.Open()
}

func (o *unionOp) Next() (algebra.Row, bool, error) {
	for {
		if o.ki >= len(o.kids) {
			return algebra.Row{}, false, nil
		}
		row, ok, err := o.kids[o.ki].op.Next()
		if err != nil {
			return algebra.Row{}, false, err
		}
		if !ok {
			if err := o.kids[o.ki].op.Close(); err != nil {
				return algebra.Row{}, false, err
			}
			o.ki++
			if o.ki < len(o.kids) {
				if err := o.kids[o.ki].op.Open(); err != nil {
					return algebra.Row{}, false, err
				}
			}
			continue
		}
		key := ""
		for _, v := range o.vars {
			key += fmt.Sprintf("%s=%d;", v, row.Vars[v].OID)
		}
		if o.seen[key] {
			continue
		}
		o.seen[key] = true
		return row, true, nil
	}
}

func (o *unionOp) Close() error {
	var err error
	for i := o.ki; i < len(o.kids) && o.opened; i++ {
		if e2 := o.kids[i].op.Close(); err == nil {
			err = e2
		}
	}
	return err
}
