// Package object implements the MOOD data model's values and types: the
// basic types Integer, Float, LongInteger, String, Char and Boolean, and the
// recursive type constructors Tuple, Set, List and Reference (Section 3.1 of
// the paper). Values are self-describing and serializable; deep equality —
// the comparison DupElim applies to extents — dereferences object
// identifiers through a caller-supplied resolver with cycle detection.
package object

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mood/internal/storage"
)

// Kind enumerates the MOOD value kinds.
type Kind uint8

// Basic kinds and constructor kinds.
const (
	KindNull Kind = iota
	KindInteger
	KindLongInteger
	KindFloat
	KindString
	KindChar
	KindBoolean
	KindTuple
	KindSet
	KindList
	KindReference
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "Null"
	case KindInteger:
		return "Integer"
	case KindLongInteger:
		return "LongInteger"
	case KindFloat:
		return "Float"
	case KindString:
		return "String"
	case KindChar:
		return "Char"
	case KindBoolean:
		return "Boolean"
	case KindTuple:
		return "Tuple"
	case KindSet:
		return "Set"
	case KindList:
		return "List"
	case KindReference:
		return "Reference"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsAtomic reports whether the kind is one of the basic types.
func (k Kind) IsAtomic() bool {
	switch k {
	case KindInteger, KindLongInteger, KindFloat, KindString, KindChar, KindBoolean:
		return true
	}
	return false
}

// Value is one MOOD value. The zero Value is Null.
//
// Representation: atomic values use Int/Flt/Str; Tuple uses Fields with
// Names in field order; Set and List use Elems; Reference uses Ref.
// Values have copy semantics (the paper: "values which are instances of
// types have copy semantic"); Clone produces an independent copy.
type Value struct {
	Kind   Kind
	Int    int64   // Integer, LongInteger, Boolean (0/1), Char (code point)
	Flt    float64 // Float
	Str    string  // String
	Ref    storage.OID
	Elems  []Value  // Set, List
	Fields []Value  // Tuple, parallel to Names
	Names  []string // Tuple field names
}

// Null is the null value.
var Null = Value{Kind: KindNull}

// NewInt makes an Integer.
func NewInt(v int32) Value { return Value{Kind: KindInteger, Int: int64(v)} }

// NewLong makes a LongInteger.
func NewLong(v int64) Value { return Value{Kind: KindLongInteger, Int: v} }

// NewFloat makes a Float.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, Flt: v} }

// NewString makes a String.
func NewString(v string) Value { return Value{Kind: KindString, Str: v} }

// NewChar makes a Char.
func NewChar(v rune) Value { return Value{Kind: KindChar, Int: int64(v)} }

// NewBool makes a Boolean.
func NewBool(v bool) Value {
	if v {
		return Value{Kind: KindBoolean, Int: 1}
	}
	return Value{Kind: KindBoolean}
}

// NewRef makes a Reference to the object with the given identifier.
func NewRef(oid storage.OID) Value { return Value{Kind: KindReference, Ref: oid} }

// NewSet makes a Set of the given elements (duplicates are collapsed using
// shallow equality).
func NewSet(elems ...Value) Value {
	out := Value{Kind: KindSet}
	for _, e := range elems {
		out.SetAdd(e)
	}
	return out
}

// NewList makes a List of the given elements.
func NewList(elems ...Value) Value {
	return Value{Kind: KindList, Elems: append([]Value(nil), elems...)}
}

// NewTuple makes a Tuple; names and fields must be parallel.
func NewTuple(names []string, fields []Value) Value {
	if len(names) != len(fields) {
		panic("object: NewTuple names/fields length mismatch")
	}
	return Value{
		Kind:   KindTuple,
		Names:  append([]string(nil), names...),
		Fields: append([]Value(nil), fields...),
	}
}

// The read-only accessors below take pointer receivers on purpose: Value is
// a 120-byte struct, and these run per object on the executor's hot paths —
// a value receiver would copy the whole struct per call. They never write
// through the receiver.

// IsNull reports whether the value is null.
func (v *Value) IsNull() bool { return v.Kind == KindNull }

// Bool returns the Boolean's truth value.
func (v *Value) Bool() bool { return v.Kind == KindBoolean && v.Int != 0 }

// Field returns the named tuple field and whether it exists.
func (v *Value) Field(name string) (Value, bool) {
	if v.Kind != KindTuple {
		return Null, false
	}
	for i, n := range v.Names {
		if n == name {
			return v.Fields[i], true
		}
	}
	return Null, false
}

// SetField replaces the named tuple field, adding it if absent.
func (v *Value) SetField(name string, val Value) {
	for i, n := range v.Names {
		if n == name {
			v.Fields[i] = val
			return
		}
	}
	v.Names = append(v.Names, name)
	v.Fields = append(v.Fields, val)
}

// SetAdd inserts an element into a Set if no shallow-equal element exists.
// It reports whether the element was added.
func (v *Value) SetAdd(e Value) bool {
	for _, x := range v.Elems {
		if Equal(x, e) {
			return false
		}
	}
	v.Elems = append(v.Elems, e)
	return true
}

// SetContains reports whether the Set holds a shallow-equal element.
func (v *Value) SetContains(e Value) bool {
	for _, x := range v.Elems {
		if Equal(x, e) {
			return true
		}
	}
	return false
}

// Append adds an element to the end of a List.
func (v *Value) Append(e Value) { v.Elems = append(v.Elems, e) }

// Len returns the element count of a Set or List, the field count of a
// Tuple, or the byte length of a String.
func (v *Value) Len() int {
	switch v.Kind {
	case KindSet, KindList:
		return len(v.Elems)
	case KindTuple:
		return len(v.Fields)
	case KindString:
		return len(v.Str)
	}
	return 0
}

// Clone returns a deep copy (copy semantics for type instances).
func (v Value) Clone() Value {
	out := v
	if v.Elems != nil {
		out.Elems = make([]Value, len(v.Elems))
		for i, e := range v.Elems {
			out.Elems[i] = e.Clone()
		}
	}
	if v.Fields != nil {
		out.Fields = make([]Value, len(v.Fields))
		for i, f := range v.Fields {
			out.Fields[i] = f.Clone()
		}
		out.Names = append([]string(nil), v.Names...)
	}
	return out
}

// AsFloat converts a numeric value to float64; ok is false otherwise.
func (v *Value) AsFloat() (f float64, ok bool) {
	switch v.Kind {
	case KindInteger, KindLongInteger, KindChar, KindBoolean:
		return float64(v.Int), true
	case KindFloat:
		return v.Flt, true
	}
	return 0, false
}

// AsInt converts an integral value to int64; ok is false otherwise.
func (v *Value) AsInt() (i int64, ok bool) {
	switch v.Kind {
	case KindInteger, KindLongInteger, KindChar, KindBoolean:
		return v.Int, true
	}
	return 0, false
}

// String renders the value in the notation used throughout the paper's
// examples: tuples as <...>, sets as {...}, lists as [...].
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindInteger, KindLongInteger:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Flt, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.Str)
	case KindChar:
		return "'" + string(rune(v.Int)) + "'"
	case KindBoolean:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case KindReference:
		return v.Ref.String()
	case KindSet:
		return "{" + joinValues(v.Elems) + "}"
	case KindList:
		return "[" + joinValues(v.Elems) + "]"
	case KindTuple:
		var b strings.Builder
		b.WriteByte('<')
		for i, f := range v.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.Names[i])
			b.WriteString(": ")
			b.WriteString(f.String())
		}
		b.WriteByte('>')
		return b.String()
	}
	return "?"
}

func joinValues(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

// Compare orders two atomic values: -1, 0, +1. Numeric kinds compare
// numerically across kinds; strings and chars lexically; booleans
// false < true. Comparing non-atomic or incompatible kinds returns ok=false.
func Compare(a, b Value) (cmp int, ok bool) {
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	if aNum && bNum && a.Kind != KindChar && b.Kind != KindChar {
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	}
	if a.Kind == KindString && b.Kind == KindString {
		return strings.Compare(a.Str, b.Str), true
	}
	if a.Kind == KindChar && b.Kind == KindChar {
		switch {
		case a.Int < b.Int:
			return -1, true
		case a.Int > b.Int:
			return 1, true
		}
		return 0, true
	}
	// Char vs numeric: compare by code point value.
	if (a.Kind == KindChar && bNum) || (b.Kind == KindChar && aNum) {
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// Equal is shallow equality: references compare by identifier, collections
// element-wise (sets order-insensitively), without dereferencing.
func Equal(a, b Value) bool {
	if a.Kind.IsAtomic() && b.Kind.IsAtomic() {
		cmp, ok := Compare(a, b)
		return ok && cmp == 0
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindNull:
		return true
	case KindReference:
		return a.Ref == b.Ref
	case KindList:
		if len(a.Elems) != len(b.Elems) {
			return false
		}
		for i := range a.Elems {
			if !Equal(a.Elems[i], b.Elems[i]) {
				return false
			}
		}
		return true
	case KindSet:
		return setEqual(a.Elems, b.Elems, Equal)
	case KindTuple:
		if len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			bf, ok := b.Field(a.Names[i])
			if !ok || !Equal(a.Fields[i], bf) {
				return false
			}
		}
		return true
	}
	return false
}

func setEqual(a, b []Value, eq func(Value, Value) bool) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, x := range a {
		for j, y := range b {
			if !used[j] && eq(x, y) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// Resolver dereferences an object identifier to the stored value.
type Resolver func(storage.OID) (Value, error)

// DeepEqual is the deep equality check used by DupElim on extents (Table 3):
// references are dereferenced through resolve and their targets compared
// structurally. Reference cycles are handled: two objects on equivalent
// cycles compare equal.
func DeepEqual(a, b Value, resolve Resolver) (bool, error) {
	return deepEqual(a, b, resolve, map[[2]storage.OID]bool{})
}

func deepEqual(a, b Value, resolve Resolver, inFlight map[[2]storage.OID]bool) (bool, error) {
	if a.Kind == KindReference && b.Kind == KindReference {
		if a.Ref == b.Ref {
			return true, nil
		}
		if a.Ref.IsNil() || b.Ref.IsNil() {
			return false, nil
		}
		key := [2]storage.OID{a.Ref, b.Ref}
		if inFlight[key] {
			return true, nil // assume equal on cycles; contradiction surfaces elsewhere
		}
		inFlight[key] = true
		defer delete(inFlight, key)
		av, err := resolve(a.Ref)
		if err != nil {
			return false, err
		}
		bv, err := resolve(b.Ref)
		if err != nil {
			return false, err
		}
		return deepEqual(av, bv, resolve, inFlight)
	}
	if a.Kind.IsAtomic() || b.Kind.IsAtomic() || a.Kind == KindNull || b.Kind == KindNull {
		return Equal(a, b), nil
	}
	if a.Kind != b.Kind {
		return false, nil
	}
	switch a.Kind {
	case KindList:
		if len(a.Elems) != len(b.Elems) {
			return false, nil
		}
		for i := range a.Elems {
			eq, err := deepEqual(a.Elems[i], b.Elems[i], resolve, inFlight)
			if err != nil || !eq {
				return eq, err
			}
		}
		return true, nil
	case KindSet:
		if len(a.Elems) != len(b.Elems) {
			return false, nil
		}
		used := make([]bool, len(b.Elems))
	outer:
		for _, x := range a.Elems {
			for j, y := range b.Elems {
				if used[j] {
					continue
				}
				eq, err := deepEqual(x, y, resolve, inFlight)
				if err != nil {
					return false, err
				}
				if eq {
					used[j] = true
					continue outer
				}
			}
			return false, nil
		}
		return true, nil
	case KindTuple:
		if len(a.Fields) != len(b.Fields) {
			return false, nil
		}
		for i := range a.Fields {
			bf, ok := b.Field(a.Names[i])
			if !ok {
				return false, nil
			}
			eq, err := deepEqual(a.Fields[i], bf, resolve, inFlight)
			if err != nil || !eq {
				return eq, err
			}
		}
		return true, nil
	}
	return false, nil
}

// SortValues sorts atomic values ascending (used by the Sort operator and
// by tests); non-comparable pairs keep their relative order.
func SortValues(vs []Value) {
	sort.SliceStable(vs, func(i, j int) bool {
		cmp, ok := Compare(vs[i], vs[j])
		return ok && cmp < 0
	})
}
