// Package funcmgr implements the MOOD Function Manager (Section 2): the
// component "responsible for adding, updating, deleting and invoking the
// member functions of the classes". In the paper, method bodies are C++
// source, pre-processed and compiled once into a per-class shared object and
// dynamically linked (dld) when first invoked; the signature — class name
// plus parameter list — locates the function in the catalog.
//
// Substitution: Go cannot compile and dlopen code at run time in an offline
// sandbox, so bodies are Go closures registered against the same signatures.
// Everything the design actually delivers is preserved:
//
//   - late binding — invocation resolves the method through the catalog's
//     class hierarchy at call time, not at compile time;
//   - run-time add/update/delete with no server restart — the registry
//     mutates while the kernel runs, with the class's shared object locked
//     exclusively during the rewrite (the paper: "we provide locking for
//     this operation");
//   - load-on-first-use — a function is "loaded into memory" on first
//     invocation and stays loaded until its scope is closed;
//   - Exception handling — panics in bodies surface as errors, "although
//     the functions are compiled, their error messages are handled as if
//     they are interpreted".
package funcmgr

import (
	"errors"
	"fmt"
	"sync"

	"mood/internal/catalog"
	"mood/internal/lock"
	"mood/internal/object"
	"mood/internal/storage"
)

// Errors returned by the manager.
var (
	ErrNoSuchFunction = errors.New("funcmgr: no function registered for signature")
	ErrBadArity       = errors.New("funcmgr: wrong number of arguments")
)

// Invocation is the context passed to a method body: the receiver, its OID,
// the actual arguments, and a resolver for chasing references from inside
// the body.
type Invocation struct {
	Self    object.Value
	SelfOID storage.OID
	Args    []object.Value
	Resolve object.Resolver
}

// Arg returns the i-th argument or null.
func (inv *Invocation) Arg(i int) object.Value {
	if i < 0 || i >= len(inv.Args) {
		return object.Null
	}
	return inv.Args[i]
}

// Body is a compiled member function.
type Body func(inv *Invocation) (object.Value, error)

type compiled struct {
	sig    *catalog.MethodSig
	body   Body
	loaded bool // "loaded into memory" on first call
}

// Manager is the Function Manager.
type Manager struct {
	cat   *catalog.Catalog
	locks *lock.Manager

	mu    sync.RWMutex
	funcs map[string]*compiled // by signature

	queries *QueryRegistry // compiled query fragments (predicates/projections)

	compilations int64 // Register/Update calls — the "compile once" cost
	loads        int64 // shared-object loads (first invocation)
	invocations  int64
}

// New creates a Function Manager over the catalog. locks may be nil, in
// which case shared-object locking is skipped (single-session use).
func New(cat *catalog.Catalog, locks *lock.Manager) *Manager {
	return &Manager{
		cat: cat, locks: locks,
		funcs:   make(map[string]*compiled),
		queries: NewQueryRegistry(),
	}
}

// Queries exposes the compiled-query-fragment registry; the kernel wires it
// into the executor so vectorized operators resolve predicates through the
// Function Manager.
func (m *Manager) Queries() *QueryRegistry { return m.queries }

// lockSharedObject takes the class's shared-object lock in the given mode
// for the duration of fn. Transaction identity is per-operation here; the
// kernel passes real transaction IDs through InvokeTx.
func (m *Manager) lockSharedObject(tx lock.TxID, class string, mode lock.Mode, fn func() error) error {
	if m.locks == nil {
		return fn()
	}
	res := lock.ClassSharedObject(class)
	if err := m.locks.Acquire(tx, res, mode); err != nil {
		return err
	}
	defer m.locks.Release(tx, res)
	return fn()
}

// Register adds a new member function. The signature must correspond to a
// method declared on the class (the declaration is extracted into the
// catalog; the body arrives separately, as in the paper's source
// processing). Registering is the one-time "preprocess and compile" step;
// the server keeps running, and the class's shared object is locked only
// while the new function is written.
func (m *Manager) Register(sig *catalog.MethodSig, body Body) error {
	if body == nil {
		return fmt.Errorf("funcmgr: nil body for %s", sig.Signature())
	}
	if _, err := m.cat.Method(sig.Class, sig.Name); err != nil {
		return fmt.Errorf("funcmgr: %s not declared in catalog: %w", sig.Signature(), err)
	}
	return m.lockSharedObject(0, sig.Class, lock.ModeX, func() error {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.funcs[sig.Signature()] = &compiled{sig: sig, body: body}
		m.compilations++
		return nil
	})
}

// Update replaces the body of an existing function.
func (m *Manager) Update(sig *catalog.MethodSig, body Body) error {
	return m.lockSharedObject(0, sig.Class, lock.ModeX, func() error {
		m.mu.Lock()
		defer m.mu.Unlock()
		key := sig.Signature()
		if _, ok := m.funcs[key]; !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchFunction, key)
		}
		m.funcs[key] = &compiled{sig: sig, body: body}
		m.compilations++
		return nil
	})
}

// Delete removes a function.
func (m *Manager) Delete(sig *catalog.MethodSig) error {
	return m.lockSharedObject(0, sig.Class, lock.ModeX, func() error {
		m.mu.Lock()
		defer m.mu.Unlock()
		key := sig.Signature()
		if _, ok := m.funcs[key]; !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchFunction, key)
		}
		delete(m.funcs, key)
		return nil
	})
}

// Invoke calls a method on an object of the given class with late binding:
// the method is resolved through the class hierarchy at call time, its
// signature locates the body, and the body runs under the paper's Exception
// discipline (panics become errors).
func (m *Manager) Invoke(class, method string, inv *Invocation) (object.Value, error) {
	return m.InvokeTx(0, class, method, inv)
}

// InvokeTx is Invoke under an explicit transaction, taking the class
// shared-object lock in shared mode so concurrent rewrites block.
func (m *Manager) InvokeTx(tx lock.TxID, class, method string, inv *Invocation) (object.Value, error) {
	sig, err := m.cat.Method(class, method)
	if err != nil {
		return object.Null, err
	}
	if inv == nil {
		inv = &Invocation{}
	}
	if len(inv.Args) != len(sig.ParamTypes) {
		return object.Null, fmt.Errorf("%w: %s takes %d, got %d",
			ErrBadArity, sig.Signature(), len(sig.ParamTypes), len(inv.Args))
	}
	for i, pt := range sig.ParamTypes {
		if err := pt.Check(inv.Args[i]); err != nil {
			return object.Null, fmt.Errorf("funcmgr: argument %d of %s: %w", i, sig.Signature(), err)
		}
	}

	var fn *compiled
	err = m.lockSharedObject(tx, sig.Class, lock.ModeS, func() error {
		m.mu.Lock()
		defer m.mu.Unlock()
		c, ok := m.funcs[sig.Signature()]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchFunction, sig.Signature())
		}
		if !c.loaded {
			c.loaded = true // open the shared object, load the symbol
			m.loads++
		}
		m.invocations++
		fn = c
		return nil
	})
	if err != nil {
		return object.Null, err
	}

	out, err := m.call(fn, inv)
	if err != nil {
		return object.Null, err
	}
	if sig.ReturnType != nil {
		if cerr := sig.ReturnType.Check(out); cerr != nil {
			return object.Null, fmt.Errorf("funcmgr: %s returned ill-typed value: %w", sig.Signature(), cerr)
		}
	}
	return out, nil
}

// call runs the body, converting panics (the paper's "system errors,
// including signals that terminate processes") into Exception errors.
func (m *Manager) call(fn *compiled, inv *Invocation) (out object.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("funcmgr: exception in %s: %v", fn.sig.Signature(), r)
		}
	}()
	return fn.body(inv)
}

// CloseScope unloads every loaded function ("function is kept in memory
// until the scope changes in the program").
func (m *Manager) CloseScope() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.funcs {
		c.loaded = false
	}
}

// Stats returns (compilations, loads, invocations).
func (m *Manager) Stats() (compilations, loads, invocations int64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.compilations, m.loads, m.invocations
}

// Registered reports whether a body exists for the signature.
func (m *Manager) Registered(sig *catalog.MethodSig) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.funcs[sig.Signature()]
	return ok
}
