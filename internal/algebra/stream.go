package algebra

import (
	"fmt"

	"mood/internal/catalog"
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/storage"
)

// This file holds the row-at-a-time forms of the algebra operators: the
// pieces the streaming executor composes into Volcano-style pipelines. The
// collection-at-a-time operators (select.go, join.go, project.go) remain the
// materializing reference implementations; both are kept behaviourally
// identical and differential-tested against each other.

// RowEvaluator evaluates predicates and projections against one row at a
// time, reusing a single expr.Env across rows. The seed executor allocated a
// fresh Env (two maps) per row inside Select's loop; hoisting it here is
// worth ~40% of Select's per-row cost on a vehicledb-sized extent (see
// BenchmarkSelectPredicate).
type RowEvaluator struct {
	a   *Algebra
	env *expr.Env
}

// NewRowEvaluator creates a reusable per-operator evaluator.
func (a *Algebra) NewRowEvaluator() *RowEvaluator {
	return &RowEvaluator{
		a: a,
		env: &expr.Env{
			Vars:    map[string]object.Value{},
			OIDs:    map[string]storage.OID{},
			Resolve: a.Cat.Resolver(),
			Invoke:  a.Invoke,
		},
	}
}

// bind loads the row's bindings into the reused env, materializing bound
// values lazily (Set/List rows carry OIDs only).
func (re *RowEvaluator) bind(row Row) error {
	for name := range re.env.Vars {
		delete(re.env.Vars, name)
	}
	for name := range re.env.OIDs {
		delete(re.env.OIDs, name)
	}
	for name, b := range row.Vars {
		if err := re.a.materialize(&b); err != nil {
			return err
		}
		re.env.Vars[name] = b.Val
		re.env.OIDs[name] = b.OID
	}
	return nil
}

// EvalBool evaluates a predicate with the row's bindings in scope.
func (re *RowEvaluator) EvalBool(row Row, p expr.Expr) (bool, error) {
	if err := re.bind(row); err != nil {
		return false, err
	}
	return expr.EvalBool(p, re.env)
}

// EvalPred evaluates a compiled predicate closure (expr.CompileBool) with
// the row's bindings in scope — the vectorized executor's counterpart of
// EvalBool for predicates that did not lower to self mode.
func (re *RowEvaluator) EvalPred(row Row, fn expr.BoolFn) (bool, error) {
	if err := re.bind(row); err != nil {
		return false, err
	}
	return fn(re.env)
}

// Eval evaluates an expression with the row's bindings in scope.
func (re *RowEvaluator) Eval(row Row, e expr.Expr) (object.Value, error) {
	if err := re.bind(row); err != nil {
		return object.Null, err
	}
	return e.Eval(re.env)
}

// Env exposes the evaluator's bound environment; valid until the next
// EvalBool/Eval/Bind call. Callers that evaluate several expressions against
// the same row bind once and evaluate through this.
func (re *RowEvaluator) Env(row Row) (*expr.Env, error) {
	if err := re.bind(row); err != nil {
		return nil, err
	}
	return re.env, nil
}

// IndSelCandidates runs just the index probe of IndSel: the OIDs the index
// reports for the simple predicate, deduplicated in lookup order, with no
// object fetches. Strict bounds and key truncation mean candidates may
// include false positives; callers must re-check RecheckExpr against the
// fetched object before accepting a candidate. Splitting the probe from the
// fetch lets the streaming executor intersect several indexes' candidate
// sets before touching a single object page.
func (a *Algebra) IndSelCandidates(class string, indexKind catalog.IndexKind, p SimplePredicate) ([]storage.OID, error) {
	ix := a.Cat.IndexOn(class, p.Attribute)
	if ix == nil || ix.Kind != indexKind {
		return nil, fmt.Errorf("%w: %s on %s.%s", ErrNoIndex, indexKind, class, p.Attribute)
	}
	var oids []storage.OID
	var err error
	switch {
	case p.Between:
		oids, err = ix.RangeLookup(p.Constant, p.Constant2)
	case p.Op == expr.OpEq:
		oids, err = ix.Lookup(p.Constant)
	case p.Op == expr.OpGe || p.Op == expr.OpGt:
		oids, err = ix.RangeLookup(p.Constant, object.Null)
	case p.Op == expr.OpLe || p.Op == expr.OpLt:
		oids, err = ix.RangeLookup(object.Null, p.Constant)
	default:
		return nil, fmt.Errorf("algebra: IndSel cannot use an index for %s", p.Op)
	}
	if err != nil {
		return nil, err
	}
	seen := make(map[storage.OID]bool, len(oids))
	out := oids[:0]
	for _, oid := range oids {
		if seen[oid] {
			continue
		}
		seen[oid] = true
		out = append(out, oid)
	}
	return out, nil
}

// RecheckExpr rebuilds the expression form of a simple predicate, for
// re-checking index candidates against the stored objects.
func (a *Algebra) RecheckExpr(bindName string, p SimplePredicate) expr.Expr {
	return a.predicateExpr(bindName, p)
}

// RowsByOID indexes a collection's rows by the OID of the given variable —
// the build side of the streaming join operators.
func RowsByOID(c *Collection, varName string) map[storage.OID][]Row {
	return rowsByOID(c, varName)
}

// RefsOf extracts the reference targets of a join attribute (one for a
// plain reference, several for set/list-valued attributes).
func RefsOf(v object.Value, attr string) []storage.OID {
	return refsOf(v, attr)
}

// Merged combines two rows with disjoint variable sets.
func (r Row) Merged(o Row) Row { return r.merged(o) }

// MaterializeBound ensures a binding carries its value, fetching the object
// when the binding is an OID-only Set/List element.
func (a *Algebra) MaterializeBound(b *Bound) error { return a.materialize(b) }

// JoinKind is Table 2's return-type matrix for joins: the higher-ranked of
// the two argument kinds.
func JoinKind(a, b Kind) Kind { return joinKind(a, b) }
