package experiments

import (
	"fmt"
	"io"
	"sort"

	"mood/internal/algebra"
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/stats"
	"mood/internal/storage"
)

// truePred is an always-true predicate over a range variable.
func truePred(v string) expr.Expr {
	return &expr.Cmp{Op: expr.OpGe, L: expr.Path(v, "id"), R: &expr.Const{Val: object.NewInt(-1 << 30)}}
}

// Table1 prints the Select operator's return types (paper Table 1),
// verified against the live algebra implementation.
func Table1(w io.Writer, env *Env) error {
	section(w, "Table 1. The return types of the Select operator")
	a := algebra.New(env.DB.Cat)
	oids := env.DB.Vehicles[:4]
	rows := []struct {
		name  string
		build func() (*algebra.Collection, error)
		asSet bool
	}{
		{"Extent", func() (*algebra.Collection, error) { return a.BindDirect("Vehicle", "v") }, false},
		{"Extent (as set)", func() (*algebra.Collection, error) { return a.BindDirect("Vehicle", "v") }, true},
		{"Set", func() (*algebra.Collection, error) { return a.BindSet("v", "Vehicle", oids), nil }, false},
		{"List", func() (*algebra.Collection, error) { return a.BindList("v", "Vehicle", oids), nil }, false},
		{"Named Obj.", func() (*algebra.Collection, error) { return a.BindNamed("v", "Vehicle", oids[0]) }, false},
	}
	fmt.Fprintf(w, "%-18s %s\n", "arg type", "return type")
	for _, r := range rows {
		coll, err := r.build()
		if err != nil {
			return err
		}
		out, err := a.Select(coll, truePred("v"), r.asSet)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %s\n", r.name, out.Kind)
	}
	return nil
}

// Table2 prints the Join return-type matrix (paper Table 2), probing all 16
// combinations through the algebra.
func Table2(w io.Writer, env *Env) error {
	section(w, "Table 2. The return types of the Join operator")
	a := algebra.New(env.DB.Cat)
	v, _, err := env.DB.Cat.GetObject(env.DB.Vehicles[0])
	if err != nil {
		return err
	}
	dtRef, _ := v.Field("drivetrain")
	kinds := []algebra.Kind{algebra.ExtentKind, algebra.SetKind, algebra.ListKind, algebra.NamedObjKind}
	names := map[algebra.Kind]string{
		algebra.ExtentKind: "Extent", algebra.SetKind: "Set",
		algebra.ListKind: "List", algebra.NamedObjKind: "Named Obj.",
	}
	build := func(kind algebra.Kind, name, class string, oid storage.OID) (*algebra.Collection, error) {
		switch kind {
		case algebra.ExtentKind:
			c := a.BindSet(name, class, []storage.OID{oid})
			ext, err := a.AsExtent(c)
			if err != nil {
				return nil, err
			}
			ext.Kind = algebra.ExtentKind
			return ext, nil
		case algebra.SetKind:
			return a.BindSet(name, class, []storage.OID{oid}), nil
		case algebra.ListKind:
			return a.BindList(name, class, []storage.OID{oid}), nil
		default:
			return a.BindNamed(name, class, oid)
		}
	}
	fmt.Fprintf(w, "%-12s", "arg2\\arg1")
	for _, k := range kinds {
		fmt.Fprintf(w, "%-12s", names[k])
	}
	fmt.Fprintln(w)
	for _, k2 := range kinds {
		fmt.Fprintf(w, "%-12s", names[k2])
		for _, k1 := range kinds {
			left, err := build(k1, "v", "Vehicle", env.DB.Vehicles[0])
			if err != nil {
				return err
			}
			right, err := build(k2, "d", "VehicleDriveTrain", dtRef.Ref)
			if err != nil {
				return err
			}
			out, err := a.Join(left, right, algebra.JoinSpec{
				Method: 0, LeftVar: "v", Attribute: "drivetrain", RightVar: "d",
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-12s", names[out.Kind])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Tables3to7 prints the remaining definitional tables (3–7) as the
// implementation realizes them.
func Tables3to7(w io.Writer) {
	section(w, "Table 3. The return types of DupElim operator")
	fmt.Fprintln(w, "Set    -> not applicable")
	fmt.Fprintln(w, "List   -> list of ordered distinct object identifiers")
	fmt.Fprintln(w, "Extent -> extent of distinct objects (deep equality check)")

	section(w, "Table 4. The return types of Union, Intersection, Difference")
	fmt.Fprintln(w, "Set  x Set  -> Set")
	fmt.Fprintln(w, "Set  x List -> Set")
	fmt.Fprintln(w, "List x Set  -> Set")
	fmt.Fprintln(w, "List x List -> List (union = array concatenation)")

	section(w, "Table 5. Return types for asSet and asList")
	fmt.Fprintln(w, "Extent       -> object identifiers of the objects in the extent")
	fmt.Fprintln(w, "Set          -> object identifiers of the set")
	fmt.Fprintln(w, "List         -> object identifiers of the list")
	fmt.Fprintln(w, "Named Object -> object identifier of the named object")

	section(w, "Table 6. Return types for asExtent")
	fmt.Fprintln(w, "Set  -> extent of dereferenced objects")
	fmt.Fprintln(w, "List -> extent of dereferenced objects")

	section(w, "Table 7. Argument types for Unnest")
	fmt.Fprintln(w, "Extent of tuple type objects")
	fmt.Fprintln(w, "Set(object identifiers of tuple type objects)")
	fmt.Fprintln(w, "List(object identifiers of tuple type objects)")
	fmt.Fprintln(w, "A tuple type object")
	fmt.Fprintln(w, "(return type is always an extent of tuples)")
}

// Table8 prints the cost-model parameters (paper Table 8) as measured from
// the generated database.
func Table8(w io.Writer, env *Env) {
	section(w, fmt.Sprintf("Table 8. Cost model parameters (measured, scale %g)", float64(env.Scale)))
	fmt.Fprintf(w, "%-22s %10s %10s %8s\n", "Class", "|C|", "nbpages(C)", "size(C)")
	var names []string
	for n := range env.Stats.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cs := env.Stats.Classes[n]
		if cs.Card == 0 {
			continue
		}
		fmt.Fprintf(w, "%-22s %10d %10d %8d\n", cs.Name, cs.Card, cs.NbPages, cs.Size)
	}
	fmt.Fprintf(w, "\n%-34s %8s %10s %10s %8s\n", "Reference attribute", "fan", "totref", "totlinks", "hitprb")
	var lkeys []string
	for k := range env.Stats.Links {
		lkeys = append(lkeys, k)
	}
	sort.Strings(lkeys)
	for _, k := range lkeys {
		ls := env.Stats.Links[k]
		cs := env.Stats.Classes[ls.Class]
		fmt.Fprintf(w, "%-34s %8.3f %10.0f %10.0f %8.3f\n",
			k, ls.Fan, ls.TotRef, ls.TotLinks(cs.Card), ls.HitPrb())
	}
	fmt.Fprintf(w, "\n%-34s %8s %10s %10s %8s\n", "Atomic attribute", "dist", "max", "min", "notnull")
	var akeys []string
	for k := range env.Stats.Attrs {
		akeys = append(akeys, k)
	}
	sort.Strings(akeys)
	for _, k := range akeys {
		as := env.Stats.Attrs[k]
		fmt.Fprintf(w, "%-34s %8d %10.0f %10.0f %8.3f\n", k, as.Dist, as.Max, as.Min, as.NotNull)
	}
}

// Table9 builds a B+-tree index on VehicleEngine.cylinders and prints its
// Table 9 parameters.
func Table9(w io.Writer, env *Env) error {
	if err := ensureIndex(env.DB.Cat, "t9_cyl", "VehicleEngine", "cylinders"); err != nil {
		return err
	}
	m := stats.IndexStats(env.DB.Cat)
	bs := m["VehicleEngine.cylinders"]
	section(w, "Table 9. Parameters for a B+-tree (index on VehicleEngine.cylinders)")
	fmt.Fprintf(w, "v(I)       order           %d\n", bs.Order)
	fmt.Fprintf(w, "level(I)   number of levels %d\n", bs.Levels)
	fmt.Fprintf(w, "leaves(I)  number of leaves %d\n", bs.Leaves)
	fmt.Fprintf(w, "keysize(I) key size         %d bytes\n", bs.KeySize)
	fmt.Fprintf(w, "unique(I)  unique flag      %v\n", bs.Unique)
	return nil
}

// Table10 prints the physical disk parameters (paper Table 10). The paper
// does not report the values it used; these are the repository's defaults,
// shared by the analytic cost model and the disk simulator.
func Table10(w io.Writer, env *Env) {
	d := env.Stats.Disk
	section(w, "Table 10. Physical parameters for hard disk")
	fmt.Fprintf(w, "B    block size                    %d bytes\n", d.B)
	fmt.Fprintf(w, "btt  block transfer time           %.2f ms\n", d.BTT)
	fmt.Fprintf(w, "ebt  effective block transfer time %.2f ms\n", d.EBT)
	fmt.Fprintf(w, "r    average rotational latency    %.2f ms\n", d.R)
	fmt.Fprintf(w, "s    average seek time             %.2f ms\n", d.S)
	fmt.Fprintln(w, "(values are Salzberg-style defaults; the paper omits its own)")
}

// Tables13to15 prints the example-database statistics in the paper's layout
// (Tables 13, 14 and 15), measured from the generated database.
func Tables13to15(w io.Writer, env *Env) {
	section(w, fmt.Sprintf("Table 13. Statistics on the example database (scale %g)", float64(env.Scale)))
	fmt.Fprintf(w, "%-20s %8s %12s %8s\n", "Class", "|C|", "nbpages(C)", "size(C)")
	for _, n := range []string{"Vehicle", "VehicleDriveTrain", "VehicleEngine", "Company"} {
		cs := env.Stats.Classes[n]
		fmt.Fprintf(w, "%-20s %8d %12d %8d\n", n, cs.Card, cs.NbPages, cs.Size)
	}

	section(w, "Table 14. Statistics on the example database")
	fmt.Fprintf(w, "%-20s %-12s %8s %8s %8s\n", "Class", "Attribute", "dist", "max", "min")
	cyl := env.Stats.Attrs["VehicleEngine.cylinders"]
	fmt.Fprintf(w, "%-20s %-12s %8d %8.0f %8.0f\n", "VehicleEngine", "cylinders", cyl.Dist, cyl.Max, cyl.Min)
	name := env.Stats.Attrs["Company.name"]
	fmt.Fprintf(w, "%-20s %-12s %8d %8s %8s\n", "Company", "name", name.Dist, "-", "-")

	section(w, "Table 15. Statistics on the example database")
	fmt.Fprintf(w, "%-20s %-14s %6s %8s %10s %8s\n", "Class", "Attribute", "fan", "totref", "totlinks", "hitprb")
	for _, k := range []string{"Vehicle.drivetrain", "Vehicle.manufacturer", "VehicleDriveTrain.engine"} {
		ls := env.Stats.Links[k]
		cs := env.Stats.Classes[ls.Class]
		fmt.Fprintf(w, "%-20s %-14s %6.0f %8.0f %10.0f %8.2f\n",
			ls.Class, ls.Attribute, ls.Fan, ls.TotRef, ls.TotLinks(cs.Card), ls.HitPrb())
	}
}
