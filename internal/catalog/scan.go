package catalog

import (
	"fmt"

	"mood/internal/object"
	"mood/internal/storage"
)

// ExtentCursor is a pull-based scan over a class extent (optionally the
// whole IS-A closure, honoring the FROM clause's minus operator). Unlike
// ScanExtent/ScanClosure, which push every object through a callback, the
// cursor reads extent pages one at a time as the consumer asks for rows — a
// consumer that stops early stops paying for page reads, which is what makes
// the streaming executor's early termination observable on the simulated
// disk.
type ExtentCursor struct {
	cat     *Catalog
	classes []string // extents still to visit, in closure order
	ci      int
	file    *storage.File
	pid     storage.PageID
	buf     []scanned
	bi      int
	opened  bool
	done    bool
	closed  bool
	filter  func(oid storage.OID, v *object.Value) (bool, error)
	scratch pageScanScratch
}

type scanned struct {
	oid storage.OID
	val object.Value
}

// pageScanScratch holds the reusable per-page buffers of a batched extent
// scan. The zero value is ready to use; the slices grow to one page's
// record count and are reused for every subsequent page.
type pageScanScratch struct {
	recs []storage.ScanRecord // zero-copy record batch (aliases the frame)
	oids []storage.OID
	vals []*object.Value // cache-hit pointers; nil marks a decode
	dec  []object.Value  // decoded cache misses, in record order
}

// scanPageBatched reads one extent page and emits its surviving objects:
// inside the store lock it probes the object cache for the whole page in
// one batched lookup (one shard lock per page, not per object) and decodes
// only the misses; the filter and emit callbacks then run OUTSIDE the store
// lock on cache- or scratch-owned values, so a filter that resolves
// references may safely re-enter the store. Cache hits save only the
// decode, never the page read — read patterns are identical with and
// without the cache — and the promotion-free batch probe keeps one scan
// pass from churning the replacement lists. The object pointers handed to
// filter and emit are read-only and valid only until the next call with the
// same scratch. Returns the next page in the chain (0 at the end).
func (c *Catalog) scanPageBatched(f *storage.File, pid storage.PageID, readahead bool, sc *pageScanScratch,
	filter func(oid storage.OID, v *object.Value) (bool, error),
	emit func(oid storage.OID, v *object.Value)) (storage.PageID, error) {
	sc.oids, sc.vals, sc.dec = sc.oids[:0], sc.vals[:0], sc.dec[:0]
	next, recs, err := c.store.ScanPageRecs(f, pid, readahead, sc.recs, func(batch []storage.ScanRecord) error {
		n0 := len(sc.oids)
		for i := range batch {
			sc.oids = append(sc.oids, batch[i].OID)
			sc.vals = append(sc.vals, nil)
		}
		if c.ocache != nil {
			c.ocache.GetScanBatch(sc.oids[n0:], sc.vals[n0:])
		}
		for i := range batch {
			if sc.vals[n0+i] != nil {
				continue
			}
			_, v, err := decodeObject(batch[i].Data)
			if err != nil {
				return err
			}
			sc.dec = append(sc.dec, v)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	sc.recs = recs
	di := 0
	for i, v := range sc.vals {
		if v == nil {
			v = &sc.dec[di]
			di++
		}
		if filter != nil {
			keep, err := filter(sc.oids[i], v)
			if err != nil {
				return 0, err
			}
			if !keep {
				continue
			}
		}
		emit(sc.oids[i], v)
	}
	return next, nil
}

// ErrCursorClosed is returned by Next on a cursor whose Close has run.
var ErrCursorClosed = fmt.Errorf("catalog: extent cursor is closed")

// extentClasses resolves the class list a scan of class covers: just the
// class itself, or its IS-A closure minus the excluded subtrees. Every
// extent is validated up front so iteration never reports a schema error
// halfway through a drained pipeline.
func (c *Catalog) extentClasses(class string, minus []string, closure bool) ([]string, error) {
	var classes []string
	if closure {
		all, err := c.Closure(class)
		if err != nil {
			return nil, err
		}
		excluded := map[string]bool{}
		for _, m := range minus {
			sub, err := c.Closure(m)
			if err != nil {
				return nil, err
			}
			for _, s := range sub {
				excluded[s] = true
			}
		}
		for _, name := range all {
			if !excluded[name] {
				classes = append(classes, name)
			}
		}
	} else {
		classes = []string{class}
	}
	for _, name := range classes {
		cl, err := c.Class(name)
		if err != nil {
			return nil, err
		}
		if cl.extent == nil {
			return nil, fmt.Errorf("catalog: %s has no extent", name)
		}
	}
	return classes, nil
}

// OpenExtentScan opens a cursor over the direct extent of class (closure
// false) or over its IS-A closure minus the excluded subtrees (closure
// true), mirroring ScanExtent and ScanClosure respectively.
func (c *Catalog) OpenExtentScan(class string, minus []string, closure bool) (*ExtentCursor, error) {
	classes, err := c.extentClasses(class, minus, closure)
	if err != nil {
		return nil, err
	}
	return &ExtentCursor{cat: c, classes: classes}, nil
}

// ScannedObject is one decoded object surfaced by a morsel read: the
// object's OID and its decoded value.
type ScannedObject struct {
	OID storage.OID
	Val object.Value
}

// ExtentMorsel is one unit of parallel scan work: a run of consecutive
// chain-order pages of one class extent. Morsels of a scan are numbered in
// the exact order a serial ExtentCursor would visit their pages, so a
// dispatcher that merges worker output by Seq reproduces the serial row
// order byte for byte.
type ExtentMorsel struct {
	Class string
	Seq   int
	Pages []storage.PageID
	file  *storage.File
}

// ExtentMorsels splits the extent scan of class (with the same minus/closure
// semantics as OpenExtentScan) into page-range morsels of at most pagesPer
// pages each. Page order comes from the store's chain-order page list, so
// concurrent workers can read disjoint pages directly instead of chasing
// NextPage links serially.
func (c *Catalog) ExtentMorsels(class string, minus []string, closure bool, pagesPer int) ([]ExtentMorsel, error) {
	if pagesPer < 1 {
		pagesPer = 1
	}
	classes, err := c.extentClasses(class, minus, closure)
	if err != nil {
		return nil, err
	}
	var morsels []ExtentMorsel
	for _, name := range classes {
		cl, err := c.Class(name)
		if err != nil {
			return nil, err
		}
		pages, err := c.store.PageList(cl.extent)
		if err != nil {
			return nil, err
		}
		for off := 0; off < len(pages); off += pagesPer {
			end := off + pagesPer
			if end > len(pages) {
				end = len(pages)
			}
			morsels = append(morsels, ExtentMorsel{
				Class: name,
				Seq:   len(morsels),
				Pages: pages[off:end],
				file:  cl.extent,
			})
		}
	}
	return morsels, nil
}

// ReadMorsel reads and decodes the objects of one morsel. It is safe to
// call from concurrent worker goroutines: page reads go through the store's
// shared lock and the sharded buffer pool.
func (c *Catalog) ReadMorsel(m *ExtentMorsel) ([]ScannedObject, error) {
	return c.ReadMorselFiltered(m, nil)
}

// ReadMorselFiltered is ReadMorsel with a predicate pushed into the
// page-decode loop, mirroring ExtentCursor.SetFilter: the filter sees each
// object in place (v is read-only and may alias the object cache or the
// decode buffer) and rejected objects are never copied into the result.
// A nil filter keeps everything. Page reads are identical either way.
func (c *Catalog) ReadMorselFiltered(m *ExtentMorsel, filter func(oid storage.OID, v *object.Value) (bool, error)) ([]ScannedObject, error) {
	var out []ScannedObject
	// Readahead: request the whole morsel's page set up front, so loading
	// page i+1 overlaps decoding page i (no-op without a prefetcher).
	if len(m.Pages) > 1 {
		c.store.Prefetch(m.Pages[1:]...)
	}
	var sc pageScanScratch
	for _, pid := range m.Pages {
		// Batched zero-copy page scan, as in ExtentCursor.fill; readahead is
		// off because the whole morsel was requested above. Cache inserts are
		// skipped on purpose: they would need a BeginFetch token predating
		// the page read.
		_, err := c.scanPageBatched(m.file, pid, false, &sc, filter,
			func(oid storage.OID, v *object.Value) {
				out = append(out, ScannedObject{OID: oid, Val: *v})
			})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Next returns the next object of the scan; ok is false when the scan is
// exhausted. Calling Next on a closed cursor is an error (exhaustion and
// abandonment are different states, and the morsel dispatcher relies on the
// distinction to catch use-after-close bugs).
func (it *ExtentCursor) Next() (storage.OID, object.Value, bool, error) {
	for {
		if it.closed {
			return storage.NilOID, object.Null, false, ErrCursorClosed
		}
		if it.done {
			return storage.NilOID, object.Null, false, nil
		}
		if it.bi < len(it.buf) {
			h := it.buf[it.bi]
			it.bi++
			return h.oid, h.val, true, nil
		}
		if err := it.fill(); err != nil {
			it.done = true
			return storage.NilOID, object.Null, false, err
		}
	}
}

// SetFilter pushes a predicate into the page-decode loop: it is evaluated
// against each scanned object in place (v aliases the decode buffer and is
// read-only), and rejected objects are never buffered or surfaced by
// Next/NextRef. Page reads are unchanged — the filter only decides what
// survives the page, which is how the fused scan-selection avoids a copy
// per rejected object. An error from the filter aborts the scan.
func (it *ExtentCursor) SetFilter(f func(oid storage.OID, v *object.Value) (bool, error)) {
	it.filter = f
}

// NextRef is Next without the 120-byte value copy: the returned pointer
// aliases the cursor's internal page buffer and is valid only until the
// next Next/NextRef call (a refill reuses the buffer's backing array). The
// vectorized scan operators use it to evaluate predicates in place,
// copying the value out only for rows that survive.
func (it *ExtentCursor) NextRef() (storage.OID, *object.Value, bool, error) {
	for {
		if it.closed {
			return storage.NilOID, nil, false, ErrCursorClosed
		}
		if it.done {
			return storage.NilOID, nil, false, nil
		}
		if it.bi < len(it.buf) {
			h := &it.buf[it.bi]
			it.bi++
			return h.oid, &h.val, true, nil
		}
		if err := it.fill(); err != nil {
			it.done = true
			return storage.NilOID, nil, false, err
		}
	}
}

// fill buffers the next non-empty page's objects, advancing through the
// class list; it sets done when every extent is exhausted. The buffer's
// backing array is reused across fills — Next hands out value copies, so
// nothing observes the overwrite.
func (it *ExtentCursor) fill() error {
	it.buf, it.bi = it.buf[:0], 0
	for {
		if it.file == nil {
			// Advance to the next class's extent.
			if it.opened {
				it.ci++
			}
			if it.ci >= len(it.classes) {
				it.done = true
				return nil
			}
			cl, err := it.cat.Class(it.classes[it.ci])
			if err != nil {
				return err
			}
			it.file = cl.extent
			it.pid = it.cat.store.FirstScanPage(cl.extent)
			it.opened = true
		}
		if it.pid == 0 { // extent exhausted
			it.file = nil
			continue
		}
		// Batched zero-copy page scan: one cache probe and one decode batch
		// per page, the filter running outside the store lock, and the next
		// page's load requested before decoding starts (a no-op without a
		// prefetcher). A rejected object is never copied — only survivors
		// land in the buffer.
		next, err := it.cat.scanPageBatched(it.file, it.pid, true, &it.scratch, it.filter,
			func(oid storage.OID, v *object.Value) {
				it.buf = append(it.buf, scanned{oid: oid, val: *v})
			})
		if err != nil {
			return err
		}
		it.pid = next
		if len(it.buf) > 0 {
			return nil
		}
	}
}

// Close releases the cursor. Closing early is how a pipeline abandons the
// remaining pages without reading them. Close is idempotent.
func (it *ExtentCursor) Close() {
	it.done, it.closed = true, true
	it.buf, it.file = nil, nil
}
