package view

import (
	"strings"
	"testing"

	"mood/internal/kernel"
	"mood/internal/object"
	"mood/internal/storage"
)

const ddl = `
CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer);
CREATE CLASS VehicleDriveTrain TUPLE (
	engine REFERENCE (VehicleEngine), transmission String(32));
CREATE CLASS Company TUPLE (name String(32));
CREATE CLASS Vehicle TUPLE (
	id Integer,
	drivetrain REFERENCE (VehicleDriveTrain),
	manufacturer REFERENCE (Company))
	METHODS: lbweight () Integer;
CREATE CLASS Automobile INHERITS FROM Vehicle;
CREATE CLASS Truck INHERITS FROM Vehicle;
CREATE CLASS JapaneseAuto INHERITS FROM Automobile;
`

func newDB(t testing.TB) *kernel.DB {
	t.Helper()
	db, err := kernel.Open(kernel.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecuteScript(ddl); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPlaceDAGLayers(t *testing.T) {
	db := newDB(t)
	layout := PlaceDAG(db.Cat)
	// Roots (no supers) on layer 0; Automobile/Truck on 1; JapaneseAuto 2.
	if layout.Pos["Vehicle"].Layer != 0 {
		t.Errorf("Vehicle layer = %d", layout.Pos["Vehicle"].Layer)
	}
	if layout.Pos["Automobile"].Layer != 1 || layout.Pos["Truck"].Layer != 1 {
		t.Errorf("subclass layers: %d %d",
			layout.Pos["Automobile"].Layer, layout.Pos["Truck"].Layer)
	}
	if layout.Pos["JapaneseAuto"].Layer != 2 {
		t.Errorf("JapaneseAuto layer = %d", layout.Pos["JapaneseAuto"].Layer)
	}
	// Every class placed exactly once.
	seen := map[string]bool{}
	for _, layer := range layout.Layers {
		for _, n := range layer {
			if seen[n] {
				t.Errorf("%s placed twice", n)
			}
			seen[n] = true
		}
	}
	if !seen["Company"] || !seen["VehicleEngine"] {
		t.Error("root classes missing from layout")
	}
	out := layout.Render()
	if !strings.Contains(out, "Vehicle --> Automobile") {
		t.Errorf("edges missing from render:\n%s", out)
	}
}

func TestCrossingReduction(t *testing.T) {
	// A diamond with crossing-prone ordering: the reducer should reach a
	// low-crossing placement.
	db, err := kernel.Open(kernel.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	script := `
		CREATE CLASS A TUPLE (x Integer);
		CREATE CLASS B TUPLE (y Integer);
		CREATE CLASS AB1 INHERITS FROM A;
		CREATE CLASS AB2 INHERITS FROM B;
		CREATE CLASS C1 INHERITS FROM AB1, AB2;
	`
	if _, err := db.ExecuteScript(script); err != nil {
		t.Fatal(err)
	}
	layout := PlaceDAG(db.Cat)
	if got := layout.Crossings(); got > 1 {
		t.Errorf("crossings after reduction = %d\n%s", got, layout.Render())
	}
}

func TestClassPresentation(t *testing.T) {
	db := newDB(t)
	out, err := ClassPresentation(db, "Automobile")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Type Name    Automobile",
		"Superclasses: Vehicle",
		"Subclasses:   JapaneseAuto",
		"lbweight",   // inherited method visible
		"drivetrain", // inherited attribute visible
		"REFERENCE (VehicleDriveTrain)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("presentation missing %q:\n%s", want, out)
		}
	}
	if _, err := ClassPresentation(db, "Nope"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestGenerateDDLRoundtrip(t *testing.T) {
	db := newDB(t)
	ddlOut, err := GenerateDDL(db, "Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	// The generated DDL must parse and rebuild an equivalent class in a
	// fresh database.
	db2, err := kernel.Open(kernel.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.ExecuteScript(`
		CREATE CLASS VehicleEngine TUPLE (size Integer);
		CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine));
		CREATE CLASS Company TUPLE (name String(32));
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Execute(ddlOut); err != nil {
		t.Fatalf("generated DDL does not parse: %v\n%s", err, ddlOut)
	}
	cl, err := db2.Cat.Class("Vehicle")
	if err != nil || len(cl.Tuple.Fields) != 3 || len(cl.Methods) != 1 {
		t.Errorf("roundtripped class: %+v %v", cl, err)
	}
}

func TestObjectGraph(t *testing.T) {
	db := newDB(t)
	eng, _ := db.Cat.CreateObject("VehicleEngine", object.NewTuple(
		[]string{"size", "cylinders"},
		[]object.Value{object.NewInt(2000), object.NewInt(8)}))
	dt, _ := db.Cat.CreateObject("VehicleDriveTrain", object.NewTuple(
		[]string{"engine", "transmission"},
		[]object.Value{object.NewRef(eng), object.NewString("AUTOMATIC")}))
	v, _ := db.Cat.CreateObject("Vehicle", object.NewTuple(
		[]string{"id", "drivetrain"},
		[]object.Value{object.NewInt(7), object.NewRef(dt)}))

	out, err := ObjectGraph(db, v, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Vehicle", "VehicleDriveTrain", "VehicleEngine", "AUTOMATIC", "cylinders"} {
		if !strings.Contains(out, want) {
			t.Errorf("graph missing %q:\n%s", want, out)
		}
	}
	// Depth limiting.
	shallow, _ := ObjectGraph(db, v, 0)
	if strings.Contains(shallow, "VehicleEngine") {
		t.Errorf("depth 0 expanded references:\n%s", shallow)
	}
	if !strings.Contains(shallow, "(...)") {
		t.Errorf("depth marker missing:\n%s", shallow)
	}
}

func TestObjectGraphCycle(t *testing.T) {
	db, err := kernel.Open(kernel.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecuteScript(`CREATE CLASS Node TUPLE (next REFERENCE (Node))`); err != nil {
		t.Fatal(err)
	}
	a, _ := db.Cat.CreateObject("Node", object.NewTuple(
		[]string{"next"}, []object.Value{object.NewRef(storage.NilOID)}))
	b, _ := db.Cat.CreateObject("Node", object.NewTuple(
		[]string{"next"}, []object.Value{object.NewRef(a)}))
	// Close the cycle a -> b.
	av, _, _ := db.Cat.GetObject(a)
	av.SetField("next", object.NewRef(b))
	if err := db.Cat.UpdateObject(a, av); err != nil {
		t.Fatal(err)
	}
	out, err := ObjectGraph(db, a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "back-reference") {
		t.Errorf("cycle not cut:\n%s", out)
	}
}

func TestQueryManagerHistory(t *testing.T) {
	db := newDB(t)
	qm := NewQueryManager(db)
	if _, err := qm.Run(`SELECT COUNT(*) AS n FROM Vehicle v`); err != nil {
		t.Fatal(err)
	}
	if _, err := qm.Run(`SELECT COUNT(*) AS n FROM Company c`); err != nil {
		t.Fatal(err)
	}
	h := qm.History()
	if len(h) != 2 || !strings.Contains(h[0], "Vehicle") {
		t.Errorf("history = %v", h)
	}
	last, ok := qm.Recall(1)
	if !ok || !strings.Contains(last, "Company") {
		t.Errorf("Recall(1) = %q %v", last, ok)
	}
	if _, ok := qm.Recall(3); ok {
		t.Error("Recall past history succeeded")
	}
}

func TestSchemaOverviewAndCatalogDump(t *testing.T) {
	db := newDB(t)
	out := SchemaOverview(db)
	if !strings.Contains(out, "Vehicle") || !strings.Contains(out, "layer 0") {
		t.Errorf("overview:\n%s", out)
	}
	dump := CatalogDump(db)
	for _, want := range []string{"MoodsType", "MoodsAttribute", "MoodsFunction"} {
		if !strings.Contains(dump, want) {
			t.Errorf("catalog dump missing %q", want)
		}
	}
}
