package cost

import (
	"math"
	"testing"
	"testing/quick"
)

// paperStats builds the statistics base of Tables 13–15 (Example 8.1).
func paperStats() *Stats {
	s := NewStats(DefaultDisk())
	s.SetClass(ClassStats{Name: "Vehicle", Card: 20000, NbPages: 2000, Size: 400})
	s.SetClass(ClassStats{Name: "VehicleDriveTrain", Card: 10000, NbPages: 750, Size: 300})
	s.SetClass(ClassStats{Name: "VehicleEngine", Card: 10000, NbPages: 5000, Size: 2000})
	s.SetClass(ClassStats{Name: "Company", Card: 200000, NbPages: 2500, Size: 500})

	s.SetAttr(AttrStats{Class: "VehicleEngine", Attribute: "cylinders", Dist: 16, Max: 32, Min: 2, NotNull: 1})
	s.SetAttr(AttrStats{Class: "Company", Attribute: "name", Dist: 200000, NotNull: 1})

	s.SetLink(LinkStats{Class: "Vehicle", Attribute: "drivetrain", Target: "VehicleDriveTrain",
		Fan: 1, TotRef: 10000, TargetCard: 10000, NotNull: 1})
	s.SetLink(LinkStats{Class: "Vehicle", Attribute: "manufacturer", Target: "Company",
		Fan: 1, TotRef: 20000, TargetCard: 200000, NotNull: 1})
	s.SetLink(LinkStats{Class: "VehicleDriveTrain", Attribute: "engine", Target: "VehicleEngine",
		Fan: 1, TotRef: 10000, TargetCard: 10000, NotNull: 1})
	return s
}

// pathP1 is Example 8.1's P1: v.drivetrain.engine.cylinders = 2.
func pathP1() Path {
	return Path{
		Hops: []PathHop{
			{Class: "Vehicle", Attribute: "drivetrain"},
			{Class: "VehicleDriveTrain", Attribute: "engine"},
		},
		FinalClass: "VehicleEngine",
		FinalAttr:  "cylinders",
	}
}

// pathP2 is Example 8.1's P2: v.manufacturer.name = 'BMW' (the paper's query
// writes v.company; Table 15 records the attribute as "manufacturer").
func pathP2() Path {
	return Path{
		Hops:       []PathHop{{Class: "Vehicle", Attribute: "manufacturer"}},
		FinalClass: "Company",
		FinalAttr:  "name",
	}
}

func TestTable15DerivedParameters(t *testing.T) {
	s := paperStats()
	// totlinks and hitprb as printed in Table 15.
	cases := []struct {
		class, attr      string
		totlinks, hitprb float64
	}{
		{"Vehicle", "drivetrain", 20000, 1},
		{"Vehicle", "manufacturer", 20000, 0.1},
		{"VehicleDriveTrain", "engine", 10000, 1},
	}
	for _, c := range cases {
		ls, err := s.Link(c.class, c.attr)
		if err != nil {
			t.Fatal(err)
		}
		cs, _ := s.Class(c.class)
		if got := ls.TotLinks(cs.Card); got != c.totlinks {
			t.Errorf("totlinks(%s.%s) = %v, want %v", c.class, c.attr, got, c.totlinks)
		}
		if got := ls.HitPrb(); math.Abs(got-c.hitprb) > 1e-12 {
			t.Errorf("hitprb(%s.%s) = %v, want %v", c.class, c.attr, got, c.hitprb)
		}
	}
}

func TestColorApproximation(t *testing.T) {
	// The three regimes of c(n,m,r).
	if got := C(1000, 100, 30); got != 30 { // r < m/2
		t.Errorf("c small r = %v", got)
	}
	if got := C(1000, 100, 110); got != (110+100)/3.0 { // m/2 <= r < 2m
		t.Errorf("c mid r = %v", got)
	}
	if got := C(1000, 100, 500); got != 100 { // r >= 2m
		t.Errorf("c large r = %v", got)
	}
	if C(10, 10, 0) != 0 || C(10, 0, 5) != 0 {
		t.Error("degenerate c not zero")
	}
	// Monotone non-decreasing in r; bounded by m.
	f := func(m, r uint16) bool {
		mm, rr := float64(m%1000)+1, float64(r%3000)
		v := C(mm*10, mm, rr)
		return v <= mm+1e-9 && v <= rr+mm // loose sanity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlapProbability(t *testing.T) {
	// o(t,x,y) = 1 - C(t-x,y)/C(t,y); with x = 1 it telescopes to y/t.
	if got, want := O(10000, 1, 625), 0.0625; math.Abs(got-want) > 1e-12 {
		t.Errorf("o(10000,1,625) = %v, want %v", got, want)
	}
	if got, want := O(20000, 1, 1), 5.0e-5; math.Abs(got-want) > 1e-12 {
		t.Errorf("o(20000,1,1) = %v, want %v", got, want)
	}
	// Fractional y rounds up to one object — the Example 8.1 anchor.
	if got, want := O(20000, 1, 0.1), 5.0e-5; math.Abs(got-want) > 1e-12 {
		t.Errorf("o(20000,1,0.1) = %v, want %v", got, want)
	}
	// Certain overlap when the sets cannot be disjoint.
	if got := O(10, 6, 6); got != 1 {
		t.Errorf("o certain = %v", got)
	}
	// Probabilities stay in [0,1].
	f := func(t8, x8, y8 uint8) bool {
		tt := float64(t8) + 2
		x := math.Mod(float64(x8), tt)
		y := math.Mod(float64(y8), tt)
		p := O(tt, x, y)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtomicSelectivity(t *testing.T) {
	a := AttrStats{Dist: 16, Max: 32, Min: 2}
	if got := a.SelEq(); got != 1.0/16 {
		t.Errorf("SelEq = %v", got)
	}
	if got := a.SelGt(17); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SelGt(17) = %v", got)
	}
	if got := a.SelLt(17); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SelLt(17) = %v", got)
	}
	if got := a.SelBetween(2, 17); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SelBetween = %v", got)
	}
	// Clamping outside the domain.
	if a.SelGt(100) != 0 || a.SelGt(-100) != 1 {
		t.Error("SelGt clamping broken")
	}
	if got := a.Selectivity(CmpNe, 5, 0); math.Abs(got-(1-1.0/16)) > 1e-12 {
		t.Errorf("CmpNe = %v", got)
	}
	// Degenerate dist.
	if (AttrStats{Dist: 0}).SelEq() != 1 {
		t.Error("dist=0 selectivity")
	}
}

func TestExample81Selectivities(t *testing.T) {
	s := paperStats()
	// Table 16 prints f_s(P1) = 6.25e-2 and f_s(P2) = 5.00e-5.
	p1, err := s.PathSelectivity(pathP1(), CmpEq, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-6.25e-2) > 1e-12 {
		t.Errorf("f_s(P1) = %v, want 6.25e-2 (paper Table 16)", p1)
	}
	p2, err := s.PathSelectivity(pathP2(), CmpEq, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2-5.00e-5) > 1e-12 {
		t.Errorf("f_s(P2) = %v, want 5.00e-5 (paper Table 16)", p2)
	}
}

func TestFRef(t *testing.T) {
	s := paperStats()
	// Starting from one vehicle, each hop reaches one object (fan 1).
	for hops := 0; hops <= 2; hops++ {
		got, err := s.FRef(pathP1(), hops, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Errorf("fref(%d hops, 1) = %v, want 1", hops, got)
		}
	}
	// Starting from the whole extent the chain saturates at totref.
	got, err := s.FRef(pathP1(), 1, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10000 { // c(20000, 10000, 20000): r >= 2m -> m
		t.Errorf("fref(1 hop, 20000) = %v, want 10000", got)
	}
}

func TestFileOperationCosts(t *testing.T) {
	d := DefaultDisk()
	if got, want := d.SEQCOST(100), d.S+d.R+100*d.EBT; got != want {
		t.Errorf("SEQCOST = %v want %v", got, want)
	}
	if got, want := d.RNDCOST(100), 100*(d.S+d.R+d.BTT); got != want {
		t.Errorf("RNDCOST = %v want %v", got, want)
	}
	if d.SEQCOST(0) != 0 || d.RNDCOST(0) != 0 {
		t.Error("zero-page costs nonzero")
	}
	// Sequential beats random for multi-page reads.
	if d.SEQCOST(50) >= d.RNDCOST(50) {
		t.Error("SEQCOST(50) >= RNDCOST(50)")
	}
}

func TestINDCOSTAndRNGXCOST(t *testing.T) {
	s := paperStats()
	idx := BTreeStats{Order: 100, Levels: 3, Leaves: 500, KeySize: 8, Unique: true}
	one := s.INDCOST(idx, 1)
	if want := 3 * s.Disk.RNDCOST(1); one != want {
		t.Errorf("INDCOST(1) = %v, want one page per level = %v", one, want)
	}
	many := s.INDCOST(idx, 100)
	if many <= one {
		t.Error("INDCOST not increasing in k")
	}
	// More keys than leaves: bounded by touching every page once per level sum.
	huge := s.INDCOST(idx, 1e9)
	if huge <= many {
		t.Error("INDCOST not monotone")
	}
	if s.INDCOST(idx, 0) != 0 {
		t.Error("INDCOST(0) != 0")
	}
	// Range scan cost is linear in the fraction.
	full := s.RNGXCOST(idx, 1)
	if want := 500 * (s.Disk.S + s.Disk.R + s.Disk.BTT); full != want {
		t.Errorf("RNGXCOST(1) = %v, want %v", full, want)
	}
	if got := s.RNGXCOST(idx, 0.5); math.Abs(got-full/2) > 1e-9 {
		t.Errorf("RNGXCOST(0.5) = %v", got)
	}
}

func TestNbPg(t *testing.T) {
	// k=1 touches exactly one page.
	if got := NbPg(2000, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("NbPg(2000,1) = %v", got)
	}
	// Many picks approach all pages.
	if got := NbPg(100, 100000); got < 99.9 {
		t.Errorf("NbPg saturation = %v", got)
	}
	// Monotone in k, bounded by nbpages.
	prev := 0.0
	for k := 1.0; k < 10000; k *= 2 {
		got := NbPg(500, k)
		if got < prev || got > 500 {
			t.Fatalf("NbPg not monotone/bounded at k=%v: %v", k, got)
		}
		prev = got
	}
}

func TestJoinCostFormulas(t *testing.T) {
	s := paperStats()
	// Check the paper's literal Section 6 formulas on contiguous files;
	// ESM file semantics are covered by TestESMFileSemantics.
	s.ESMFiles = false
	in := JoinInput{Class: "Vehicle", Attribute: "drivetrain", Kc: 20000, Kd: 10000}

	fc, err := s.ForwardCost(in)
	if err != nil {
		t.Fatal(err)
	}
	// ftc = RNDCOST(nbpg_c) + RNDCOST(k_c * fan): k_c covers all pages.
	wantF := s.Disk.RNDCOST(NbPg(2000, 20000)) + s.Disk.RNDCOST(20000)
	if math.Abs(fc-wantF) > 1e-6 {
		t.Errorf("ForwardCost = %v, want %v", fc, wantF)
	}

	bc, err := s.BackwardCost(in)
	if err != nil {
		t.Fatal(err)
	}
	wantB := s.Disk.SEQCOST(2000) + 20000*1*10000*CPUCost + s.Disk.SEQCOST(750)
	if math.Abs(bc-wantB) > 1e-6 {
		t.Errorf("BackwardCost = %v, want %v", bc, wantB)
	}
	// DAccessed removes the second scan.
	in2 := in
	in2.DAccessed = true
	bc2, _ := s.BackwardCost(in2)
	if math.Abs((bc-bc2)-s.Disk.SEQCOST(750)) > 1e-6 {
		t.Errorf("DAccessed delta = %v", bc-bc2)
	}

	hc, err := s.HashPartitionCost(in)
	if err != nil {
		t.Fatal(err)
	}
	alpha := C(20000, 10000, 20000) // = 10000
	wantH := 3*1.0*s.Disk.SEQCOST(2000) + s.Disk.RNDCOST(NbPg(750, alpha))
	if math.Abs(hc-wantH) > 1e-6 {
		t.Errorf("HashPartitionCost = %v, want %v", hc, wantH)
	}

	// Binary join index.
	idx := BTreeStats{Order: 100, Levels: 3, Leaves: 200}
	in3 := in
	in3.BJIdx = &idx
	jc, err := s.BJICost(in3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if want := s.INDCOST(idx, 50); jc != want {
		t.Errorf("BJICost = %v, want %v", jc, want)
	}
	if c, _ := s.BJICost(in, 50); !math.IsInf(c, 1) {
		t.Error("BJICost without index not infinite")
	}
}

func TestBestJoinCrossover(t *testing.T) {
	s := paperStats()
	// A handful of vehicles already sitting in a temporary collection (as
	// after a selection, like T1 in Example 8.1): forward traversal wins.
	small := JoinInput{Class: "Vehicle", Attribute: "drivetrain", Kc: 3, Kd: 10000, CAccessed: true}
	m, c, err := s.BestJoin(small)
	if err != nil {
		t.Fatal(err)
	}
	if m != ForwardTraversal {
		t.Errorf("small k_c best = %v (cost %v), want forward traversal", m, c)
	}
	// The same handful read from the base extent: the paper's hash-
	// partition formula amortizes the scan by k_c/|C| and wins.
	smallBase := small
	smallBase.CAccessed = false
	m, _, err = s.BestJoin(smallBase)
	if err != nil {
		t.Fatal(err)
	}
	if m != HashPartition {
		t.Errorf("small k_c from base extent best = %v, want hash partition", m)
	}
	// Joining the full extents: pointer chasing 20000 random pages loses to
	// the scan-based strategies.
	big := JoinInput{Class: "Vehicle", Attribute: "drivetrain", Kc: 20000, Kd: 10000}
	m, _, err = s.BestJoin(big)
	if err != nil {
		t.Fatal(err)
	}
	if m == ForwardTraversal {
		t.Error("full-extent join still picks forward traversal")
	}
	// With a binary join index and tiny k, the index can win over forward
	// traversal only if cheaper; just verify it is considered.
	idx := BTreeStats{Order: 200, Levels: 2, Leaves: 100}
	withIdx := JoinInput{Class: "Vehicle", Attribute: "drivetrain", Kc: 1, Kd: 1, BJIdx: &idx}
	if _, _, err := s.BestJoin(withIdx); err != nil {
		t.Fatal(err)
	}
}

func TestESMFileSemantics(t *testing.T) {
	s := paperStats()
	if !s.ESMFiles {
		t.Fatal("ESM file semantics off by default")
	}
	if got, want := s.ScanCost(2000), s.Disk.RNDCOST(2000); got != want {
		t.Errorf("ESM ScanCost = %v, want RNDCOST %v", got, want)
	}
	s.ESMFiles = false
	if got, want := s.ScanCost(2000), s.Disk.SEQCOST(2000); got != want {
		t.Errorf("contiguous ScanCost = %v, want SEQCOST %v", got, want)
	}
}

func TestPaperExamplesPickHashPartition(t *testing.T) {
	// Under ESM semantics the paper's printed plans come out of BestJoin:
	// Example 8.1's T1 (Vehicle joined to the selected Company) and
	// Example 8.2's T1 (VehicleDriveTrain joined to the selected engines)
	// both use HASH_PARTITION against base extents.
	s := paperStats()
	t1 := JoinInput{Class: "Vehicle", Attribute: "manufacturer", Kc: 20000, Kd: 1}
	m, _, err := s.BestJoin(t1)
	if err != nil {
		t.Fatal(err)
	}
	if m != HashPartition {
		t.Errorf("Example 8.1 T1 method = %v, want HASH_PARTITION", m)
	}
	t2 := JoinInput{Class: "VehicleDriveTrain", Attribute: "engine", Kc: 10000, Kd: 625}
	m, _, err = s.BestJoin(t2)
	if err != nil {
		t.Fatal(err)
	}
	if m != HashPartition {
		t.Errorf("Example 8.2 T1 method = %v, want HASH_PARTITION", m)
	}
	// The follow-up joins of Example 8.1 start from the materialized T1
	// (a couple of vehicles): FORWARD_TRAVERSAL.
	next := JoinInput{Class: "Vehicle", Attribute: "drivetrain", Kc: 2, Kd: 10000, CAccessed: true}
	m, _, err = s.BestJoin(next)
	if err != nil {
		t.Fatal(err)
	}
	if m != ForwardTraversal {
		t.Errorf("Example 8.1 chained join = %v, want FORWARD_TRAVERSAL", m)
	}
}

func TestPathTraversalCostOrdering(t *testing.T) {
	s := paperStats()
	// Example 8.1, Table 16: the optimizer must order P2 before P1 because
	// F(P2)/(1-s2) < F(P1)/(1-s1). The absolute costs depend on the disk
	// parameterisation (the paper omits its values); the ordering must not.
	f1, err := s.PathTraversalCost(pathP1(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.PathTraversalCost(pathP2(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := s.PathSelectivity(pathP1(), CmpEq, 2, 0)
	s2, _ := s.PathSelectivity(pathP2(), CmpEq, 0, 0)
	r1 := f1 / (1 - s1)
	r2 := f2 / (1 - s2)
	if !(r2 < r1) {
		t.Errorf("ordering violated: F2/(1-s2)=%v !< F1/(1-s1)=%v", r2, r1)
	}
	// P1 traverses one more hop than P2, so its raw cost is higher too.
	if !(f2 < f1) {
		t.Errorf("F(P2)=%v !< F(P1)=%v", f2, f1)
	}
}

// The cache/batch knobs default to off, so a fresh Stats must reproduce the
// paper's formulas exactly; turning them on can only discount the random
// dereference terms, monotonically in the hit rate.
func TestCacheDiscountDefaultsOff(t *testing.T) {
	base := paperStats()
	knobbed := paperStats()
	knobbed.CacheHitRate = 0
	knobbed.BatchFetch = false
	in := JoinInput{Class: "Vehicle", Attribute: "drivetrain", Kc: 1250, Kd: 10000}
	for name, f := range map[string]func(*Stats) (float64, error){
		"forward": func(s *Stats) (float64, error) { return s.ForwardCost(in) },
		"hash":    func(s *Stats) (float64, error) { return s.HashPartitionCost(in) },
		"path":    func(s *Stats) (float64, error) { return s.PathTraversalCost(pathP1(), 1250) },
	} {
		a, err := f(base)
		if err != nil {
			t.Fatalf("%s base: %v", name, err)
		}
		b, err := f(knobbed)
		if err != nil {
			t.Fatalf("%s knobbed: %v", name, err)
		}
		if a != b {
			t.Fatalf("%s: zero-valued knobs changed the cost: %v != %v", name, a, b)
		}
	}
}

func TestCacheDiscountMonotone(t *testing.T) {
	in := JoinInput{Class: "Vehicle", Attribute: "drivetrain", Kc: 1250, Kd: 10000}
	prevF, prevH, prevP := math.Inf(1), math.Inf(1), math.Inf(1)
	for _, hit := range []float64{0, 0.25, 0.5, 0.9, 1} {
		s := paperStats()
		s.CacheHitRate = hit
		f, err := s.ForwardCost(in)
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.HashPartitionCost(in)
		if err != nil {
			t.Fatal(err)
		}
		p, err := s.PathTraversalCost(pathP1(), 1250)
		if err != nil {
			t.Fatal(err)
		}
		if f > prevF || h > prevH || p > prevP {
			t.Fatalf("hit=%v: cost not monotone non-increasing (f=%v h=%v p=%v)", hit, f, h, p)
		}
		prevF, prevH, prevP = f, h, p
	}
	// A full cache leaves only the source-page and partition-pass terms.
	s := paperStats()
	s.CacheHitRate = 1
	f, _ := s.ForwardCost(in)
	src := s.Disk.RNDCOST(NbPg(2000, 1250))
	if f != src {
		t.Fatalf("hit=1 forward cost %v, want source term only %v", f, src)
	}
}

func TestBatchFetchCollapsesToDistinctPages(t *testing.T) {
	in := JoinInput{Class: "Vehicle", Attribute: "drivetrain", Kc: 5000, Kd: 10000, CAccessed: true}
	serial := paperStats()
	batched := paperStats()
	batched.BatchFetch = true
	a, err := serial.ForwardCost(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := batched.ForwardCost(in)
	if err != nil {
		t.Fatal(err)
	}
	// 5000 refs into VehicleDriveTrain's 750 pages: batching must charge at
	// most the distinct-page cost, strictly below one seek per reference.
	want := serial.Disk.RNDCOST(NbPg(750, 5000))
	if b != want {
		t.Fatalf("batched forward cost %v, want %v", b, want)
	}
	if b >= a {
		t.Fatalf("batched cost %v not below serial %v", b, a)
	}
}

func TestFusionCostFormula(t *testing.T) {
	s := paperStats()
	in := JoinInput{Class: "Vehicle", Attribute: "manufacturer", Kc: 20000, Kd: 1, FusionOK: true}
	fc, err := s.FusionCost(in)
	if err != nil {
		t.Fatal(err)
	}
	// fc = RNDCOST(nbpg_c) + RNDCOST(nbpg(D, α)) + k_c*fan*CPUCOST with
	// α = c(|C|*fan, totref, k_c*fan) — the hash join's dedup estimate on
	// forward traversal's access pattern.
	alpha := C(20000, 20000, 20000)
	want := s.Disk.RNDCOST(NbPg(2000, 20000)) + s.Disk.RNDCOST(NbPg(2500, alpha)) + 20000*CPUCost
	if math.Abs(fc-want) > 1e-6 {
		t.Fatalf("FusionCost = %v, want %v", fc, want)
	}
	// CAccessed drops the source term, exactly like ForwardCost.
	in2 := in
	in2.CAccessed = true
	fc2, err := s.FusionCost(in2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((fc-fc2)-s.Disk.RNDCOST(NbPg(2000, 20000))) > 1e-6 {
		t.Fatalf("CAccessed delta = %v", fc-fc2)
	}
}

// fusionStats builds a heavily reference-shared schema: 10000 sources all
// pointing into just 100 distinct targets, so the fused dedup collapses the
// probe side by two orders of magnitude.
func fusionStats() *Stats {
	s := NewStats(DefaultDisk())
	s.SetClass(ClassStats{Name: "Src", Card: 10000, NbPages: 500, Size: 200})
	s.SetClass(ClassStats{Name: "Tgt", Card: 100, NbPages: 10, Size: 400})
	s.SetLink(LinkStats{Class: "Src", Attribute: "ref", Target: "Tgt",
		Fan: 1, TotRef: 100, TargetCard: 100, NotNull: 1})
	return s
}

func TestBestJoinFusionGate(t *testing.T) {
	s := fusionStats()
	in := JoinInput{Class: "Src", Attribute: "ref", Kc: 1000, Kd: 100, CAccessed: true, FusionOK: true}

	// Knob off (the default): fusion is never chosen, even when shaped for
	// it — the choice set stays the paper's four strategies.
	m, _, err := s.BestJoin(in)
	if err != nil {
		t.Fatal(err)
	}
	if m == FusionJoin {
		t.Fatalf("fusion chosen with the knob off")
	}

	// Knob on, fusion-shaped, heavy sharing: 1000 occurrences dedup to 100
	// targets on 10 pages — fusion must now win.
	s.Fusion = true
	m, c, err := s.BestJoin(in)
	if err != nil {
		t.Fatal(err)
	}
	if m != FusionJoin {
		t.Fatalf("best = %v (cost %v), want FUSION_JOIN", m, c)
	}

	// Same join without the fusion shape: back to the paper's choice.
	in2 := in
	in2.FusionOK = false
	m, _, err = s.BestJoin(in2)
	if err != nil {
		t.Fatal(err)
	}
	if m == FusionJoin {
		t.Fatalf("fusion chosen without FusionOK")
	}
}

func TestFusionNeverWinsWithoutSharing(t *testing.T) {
	// A unique link (every source references a distinct target): the dedup
	// estimate α equals k_c, so fusion's probe term matches batched forward
	// traversal exactly and its CPU term makes it strictly worse. The tie
	// rule must keep FORWARD_TRAVERSAL.
	s := NewStats(DefaultDisk())
	s.SetClass(ClassStats{Name: "Src", Card: 10000, NbPages: 500, Size: 200})
	s.SetClass(ClassStats{Name: "Tgt", Card: 10000, NbPages: 500, Size: 200})
	s.SetLink(LinkStats{Class: "Src", Attribute: "ref", Target: "Tgt",
		Fan: 1, TotRef: 10000, TargetCard: 10000, NotNull: 1})
	s.Fusion = true
	s.BatchFetch = true
	in := JoinInput{Class: "Src", Attribute: "ref", Kc: 100, Kd: 10000, CAccessed: true, FusionOK: true}
	fwd, err := s.ForwardCost(in)
	if err != nil {
		t.Fatal(err)
	}
	fus, err := s.FusionCost(in)
	if err != nil {
		t.Fatal(err)
	}
	if fus <= fwd {
		t.Fatalf("fusion %v not strictly above forward %v on a unique link", fus, fwd)
	}
	m, _, err := s.BestJoin(in)
	if err != nil {
		t.Fatal(err)
	}
	if m != ForwardTraversal {
		t.Fatalf("best = %v, want FORWARD_TRAVERSAL", m)
	}
}
