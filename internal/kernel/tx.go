package kernel

import (
	"errors"
	"fmt"

	"mood/internal/expr"
	"mood/internal/lock"
	"mood/internal/object"
	"mood/internal/sql"
	"mood/internal/storage"
	"mood/internal/wal"
)

// Transactions. ESM gives MOOD "controlling data access and concurrency"
// and "backup and recovery of data"; the kernel surfaces both as
// transactions: strict two-phase locking on objects and class extents, a
// begin/commit/abort record stream in the WAL, and logical undo of every
// object mutation on abort. Page-level physical redo/undo (crash recovery)
// is exercised separately in internal/wal.
//
// On a sharded database every shard has its own WAL. A transaction begins
// on a shard's log lazily, at its first mutation routed there, and commits
// by forcing each touched log in turn — a transaction whose writes stay on
// one shard (the common case under OID routing) costs exactly one log
// force, which is why N shards sustain N times the commit throughput of one
// serialized fsync stream. Cross-shard transactions force their logs in
// begin order; there is no two-phase commit between shards, so a crash
// between forces can durably commit a prefix of the shards (the per-shard
// recovery contract in DESIGN.md spells this out). Group commit
// (Options.GroupCommit) does not change this contract: each per-shard force
// still blocks until that shard's leader has made the commit record
// durable, so the begin-order sequence of force *completions* — and with it
// the prefix-commit guarantee — is exactly as without batching. What
// changes is only that each force may be served by another session's
// leader, amortizing the fsync across the commit window; a multi-shard
// commit therefore waits on up to len(began) windows, one per touched
// shard, in order.

// ErrTxDone is returned when a finished transaction is reused.
var ErrTxDone = errors.New("kernel: transaction already committed or aborted")

// undoOp reverses one object mutation.
type undoOp struct {
	kind  byte // 'c' created, 'u' updated, 'd' deleted
	oid   storage.OID
	class string
	old   object.Value // prior value for 'u' and 'd'
}

// Tx is one kernel transaction.
type Tx struct {
	db     *DB
	id     wal.TxID // single-store WAL id (0 in sharded mode)
	lockID lock.TxID
	// ids maps shard -> that shard's WAL transaction id, populated lazily
	// at the first mutation routed to the shard; began records the shards
	// in begin order so commit forces deterministically. Both are nil on a
	// single-store database.
	ids   map[int]wal.TxID
	began []int
	undo  []undoOp
	ws    *writeSet // pre-images captured for snapshot readers
	done  bool
}

// Begin starts a transaction. On a single-store database the WAL id doubles
// as the lock-manager id, exactly as before sharding; on a sharded database
// no WAL owns the id space, so lock ids come from a kernel-wide counter and
// per-shard WAL transactions begin lazily at the first touch.
func (db *DB) Begin() *Tx {
	if len(db.Shards) == 1 {
		id := db.Log.Begin()
		return &Tx{db: db, id: id, lockID: lock.TxID(id), ws: newWriteSet()}
	}
	return &Tx{
		db:     db,
		lockID: lock.TxID(db.txSeq.Add(1)),
		ids:    make(map[int]wal.TxID),
		ws:     newWriteSet(),
	}
}

// ID returns the WAL transaction identifier (shared with the lock manager
// on a single-store database; zero on a sharded one, where each touched
// shard has its own WAL id).
func (tx *Tx) ID() wal.TxID { return tx.id }

func (tx *Tx) check() error {
	if tx.done {
		return ErrTxDone
	}
	return nil
}

// lockObject takes IX on the class extent and X on the object.
func (tx *Tx) lockObject(class string, oid storage.OID, mode lock.Mode) error {
	intention := lock.ModeIX
	if mode == lock.ModeS {
		intention = lock.ModeIS
	}
	if err := tx.db.Locks.Acquire(tx.lockID, lock.FileResource("extent."+class), intention); err != nil {
		return err
	}
	return tx.db.Locks.Acquire(tx.lockID, lock.ObjectResource(oid), mode)
}

// logMutation appends a marker update record so the transaction's activity
// is visible in the durable log (logical operations carry no page images;
// physical page logging lives below the store). The record goes to the WAL
// of the shard that owns the mutated object, beginning the transaction
// there on first touch.
func (tx *Tx) logMutation(oid storage.OID) error {
	if tx.ids == nil {
		_, err := tx.db.Log.Update(tx.id, oid.Page(), 0, nil, nil)
		return err
	}
	sh := oid.Shard()
	log := tx.db.Shards[sh].Log
	id, ok := tx.ids[sh]
	if !ok {
		id = log.Begin()
		tx.ids[sh] = id
		tx.began = append(tx.began, sh)
	}
	_, err := log.Update(id, oid.Page(), 0, nil, nil)
	return err
}

// Create inserts a new object of the class under this transaction.
func (tx *Tx) Create(class string, v object.Value) (storage.OID, error) {
	if err := tx.check(); err != nil {
		return storage.NilOID, err
	}
	if err := tx.db.Locks.Acquire(tx.lockID, lock.FileResource("extent."+class), lock.ModeIX); err != nil {
		return storage.NilOID, err
	}
	oid, err := tx.db.Cat.CreateObject(class, v)
	if err != nil {
		return storage.NilOID, err
	}
	// The pre-image of a create is "did not exist": snapshots begun before
	// this transaction commits must not see the object.
	tx.db.vs.capture(tx.ws, oid, class, object.Null, true)
	if err := tx.db.Locks.Acquire(tx.lockID, lock.ObjectResource(oid), lock.ModeX); err != nil {
		return storage.NilOID, err
	}
	if err := tx.logMutation(oid); err != nil {
		return storage.NilOID, err
	}
	tx.undo = append(tx.undo, undoOp{kind: 'c', oid: oid, class: class})
	return oid, nil
}

// Get reads an object under a shared lock.
func (tx *Tx) Get(oid storage.OID) (object.Value, string, error) {
	if err := tx.check(); err != nil {
		return object.Null, "", err
	}
	_, class, err := tx.db.Cat.GetObject(oid)
	if err != nil {
		return object.Null, "", err
	}
	if err := tx.lockObject(class, oid, lock.ModeS); err != nil {
		return object.Null, "", err
	}
	return tx.db.Cat.GetObject(oid)
}

// Update replaces an object's value under this transaction.
func (tx *Tx) Update(oid storage.OID, v object.Value) error {
	if err := tx.check(); err != nil {
		return err
	}
	old, class, err := tx.db.Cat.GetObject(oid)
	if err != nil {
		return err
	}
	if err := tx.lockObject(class, oid, lock.ModeX); err != nil {
		return err
	}
	tx.db.vs.capture(tx.ws, oid, class, old, false)
	if err := tx.db.Cat.UpdateObject(oid, v); err != nil {
		return err
	}
	if err := tx.logMutation(oid); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoOp{kind: 'u', oid: oid, class: class, old: old})
	return nil
}

// Delete removes an object under this transaction.
func (tx *Tx) Delete(oid storage.OID) error {
	if err := tx.check(); err != nil {
		return err
	}
	old, class, err := tx.db.Cat.GetObject(oid)
	if err != nil {
		return err
	}
	if err := tx.lockObject(class, oid, lock.ModeX); err != nil {
		return err
	}
	tx.db.vs.capture(tx.ws, oid, class, old, false)
	if err := tx.db.Cat.DeleteObject(oid); err != nil {
		return err
	}
	if err := tx.logMutation(oid); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoOp{kind: 'd', oid: oid, class: class, old: old})
	return nil
}

// Commit makes the transaction's effects durable (the commit record of
// every touched shard's WAL is forced, in begin order) and releases its
// locks. A read-only transaction on a sharded database touches no log and
// forces nothing.
func (tx *Tx) Commit() error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.done = true
	defer tx.db.Locks.ReleaseAll(tx.lockID)
	tx.db.invalidateStats()
	if tx.ids == nil {
		if err := tx.db.Log.Commit(tx.id); err != nil {
			return err
		}
	} else {
		for _, sh := range tx.began {
			if err := tx.db.Shards[sh].Log.Commit(tx.ids[sh]); err != nil {
				return err
			}
		}
	}
	// Only now may snapshot pre-images be stamped committed: an epoch
	// advance before the force would let a snapshot observe a commit that a
	// crash could still revoke.
	tx.db.vs.commit(tx.ws)
	return nil
}

// ExecuteInTx interprets one MOODSQL statement under an open transaction:
// NEW/UPDATE/DELETE route through the transaction's locking, logging and
// undo machinery (nothing is durable until Commit), SELECT and EXPLAIN run
// through the ordinary read path, and DDL is rejected — schema changes are
// autocommit-only. The moodsql shell's \begin mode drives sessions through
// this entry point.
func (db *DB) ExecuteInTx(tx *Tx, statement string) (*Result, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	st, err := sql.Parse(statement)
	if err != nil {
		return nil, err
	}
	switch n := st.(type) {
	case *sql.Select:
		return db.execSelect(n)
	case *sql.Explain:
		return db.execExplain(n)
	case *sql.NewObject:
		tuple, err := db.evalNewObject(n)
		if err != nil {
			return nil, err
		}
		oid, err := tx.Create(n.Class, tuple)
		if err != nil {
			return nil, err
		}
		res := message("created %s", oid)
		res.OIDs = []storage.OID{oid}
		return res, nil
	case *sql.Update:
		targets, err := db.matchTargets(n.From, n.Where)
		if err != nil {
			return nil, err
		}
		for _, oid := range targets {
			old, class, err := tx.Get(oid)
			if err != nil {
				return nil, err
			}
			v := old.Clone()
			env := &expr.Env{
				Vars:    map[string]object.Value{n.From.Var: v},
				OIDs:    map[string]storage.OID{n.From.Var: oid},
				Resolve: db.Cat.Resolver(),
				Invoke:  db.Alg.Invoke,
			}
			for _, set := range n.Sets {
				nv, err := set.Value.Eval(env)
				if err != nil {
					return nil, err
				}
				at, err := db.Cat.AttributeType(class, set.Attr)
				if err != nil {
					return nil, err
				}
				cast, err := expr.Cast(nv, at)
				if err != nil {
					return nil, err
				}
				v.SetField(set.Attr, cast)
			}
			if err := tx.Update(oid, v); err != nil {
				return nil, err
			}
		}
		return message("%d object(s) updated", len(targets)), nil
	case *sql.Delete:
		targets, err := db.matchTargets(n.From, n.Where)
		if err != nil {
			return nil, err
		}
		for _, oid := range targets {
			if err := tx.Delete(oid); err != nil {
				return nil, err
			}
		}
		return message("%d object(s) deleted", len(targets)), nil
	}
	return nil, fmt.Errorf("kernel: %T not allowed inside a transaction (DDL is autocommit-only)", st)
}

// Abort rolls back every mutation (logical undo, newest first), logs the
// abort on every touched shard, and releases the locks.
func (tx *Tx) Abort() error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.done = true
	defer tx.db.Locks.ReleaseAll(tx.lockID)
	resurrected := make(map[storage.OID]storage.OID)
	for i := len(tx.undo) - 1; i >= 0; i-- {
		op := tx.undo[i]
		var err error
		switch op.kind {
		case 'c':
			err = tx.db.Cat.DeleteObject(op.oid)
		case 'u':
			err = tx.db.Cat.UpdateObject(op.oid, op.old)
		case 'd':
			// The original OID cannot be resurrected (slots are reused);
			// reinsert the value as a new object of the same class.
			var noid storage.OID
			noid, err = tx.db.Cat.CreateObject(op.class, op.old)
			if err == nil {
				resurrected[op.oid] = noid
			}
		}
		if err != nil {
			return fmt.Errorf("kernel: undo failed (op %c on %s): %w", op.kind, op.oid, err)
		}
	}
	tx.db.vs.abort(tx.ws, resurrected)
	tx.db.invalidateStats()
	if tx.ids == nil {
		return tx.db.Log.Abort(tx.id, nil)
	}
	for _, sh := range tx.began {
		if err := tx.db.Shards[sh].Log.Abort(tx.ids[sh], nil); err != nil {
			return err
		}
	}
	return nil
}
