package algebra

import (
	"fmt"
	"sort"

	"mood/internal/storage"
)

// setOpKind implements Table 4: Set×Set→Set, Set×List→Set, List×Set→Set,
// List×List→List.
func setOpKind(a, b Kind) (Kind, error) {
	valid := func(k Kind) bool { return k == SetKind || k == ListKind }
	if !valid(a) || !valid(b) {
		return 0, fmt.Errorf("%w: set operation on %s and %s", ErrNotApplicable, a, b)
	}
	if a == ListKind && b == ListKind {
		return ListKind, nil
	}
	return SetKind, nil
}

// Union takes the union of two collections of object identifiers and
// returns the set of objects; "if both arguments are lists, union
// corresponds to array concatenation" (Table 4).
func (a *Algebra) Union(x, y *Collection) (*Collection, error) {
	kind, err := setOpKind(x.Kind, y.Kind)
	if err != nil {
		return nil, err
	}
	out := &Collection{Kind: kind, Name: x.Name, Class: x.Class}
	if kind == ListKind {
		// Array concatenation, duplicates preserved.
		out.Rows = append(out.Rows, x.Rows...)
		for _, r := range y.Rows {
			out.Rows = append(out.Rows, reboundRow(r, y.Name, x.Name))
		}
		return out, nil
	}
	seen := map[storage.OID]bool{}
	add := func(rows []Row, from string) {
		for _, r := range rows {
			b := r.Vars[from]
			if seen[b.OID] {
				continue
			}
			seen[b.OID] = true
			out.Rows = append(out.Rows, reboundRow(r, from, x.Name))
		}
	}
	add(x.Rows, x.Name)
	add(y.Rows, y.Name)
	return out, nil
}

// Intersection returns the objects common to both collections (Table 4).
func (a *Algebra) Intersection(x, y *Collection) (*Collection, error) {
	kind, err := setOpKind(x.Kind, y.Kind)
	if err != nil {
		return nil, err
	}
	out := &Collection{Kind: kind, Name: x.Name, Class: x.Class}
	inY := map[storage.OID]bool{}
	for _, r := range y.Rows {
		inY[r.Vars[y.Name].OID] = true
	}
	emitted := map[storage.OID]bool{}
	for _, r := range x.Rows {
		oid := r.Vars[x.Name].OID
		if !inY[oid] {
			continue
		}
		if kind == SetKind {
			if emitted[oid] {
				continue
			}
			emitted[oid] = true
		}
		out.Rows = append(out.Rows, r)
	}
	return out, nil
}

// Difference returns the objects in x but not in y (Table 4).
func (a *Algebra) Difference(x, y *Collection) (*Collection, error) {
	kind, err := setOpKind(x.Kind, y.Kind)
	if err != nil {
		return nil, err
	}
	out := &Collection{Kind: kind, Name: x.Name, Class: x.Class}
	inY := map[storage.OID]bool{}
	for _, r := range y.Rows {
		inY[r.Vars[y.Name].OID] = true
	}
	emitted := map[storage.OID]bool{}
	for _, r := range x.Rows {
		oid := r.Vars[x.Name].OID
		if inY[oid] {
			continue
		}
		if kind == SetKind {
			if emitted[oid] {
				continue
			}
			emitted[oid] = true
		}
		out.Rows = append(out.Rows, r)
	}
	return out, nil
}

// UnionRows merges two row sets over the same variable space without
// duplicate elimination by OID tuple — the UNION that combines the
// sub-access plans of the DNF AND-terms (Section 7). Duplicate rows
// (identical bindings) are collapsed.
func (a *Algebra) UnionRows(x, y *Collection) *Collection {
	out := &Collection{Kind: x.Kind, Name: x.Name, Class: x.Class}
	seen := map[string]bool{}
	keyOf := func(r Row) string {
		names := make([]string, 0, len(r.Vars))
		for name := range r.Vars {
			names = append(names, name)
		}
		sort.Strings(names)
		key := ""
		for _, name := range names {
			key += fmt.Sprintf("%s=%d;", name, r.Vars[name].OID)
		}
		return key
	}
	for _, src := range [][]Row{x.Rows, y.Rows} {
		for _, r := range src {
			k := keyOf(r)
			if seen[k] {
				continue
			}
			seen[k] = true
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// reboundRow renames the distinguished binding of a row.
func reboundRow(r Row, from, to string) Row {
	if from == to {
		return r
	}
	out := Row{Vars: make(map[string]Bound, len(r.Vars))}
	for k, v := range r.Vars {
		if k == from {
			out.Vars[to] = v
		} else {
			out.Vars[k] = v
		}
	}
	return out
}
