package algebra

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/expr"
	"mood/internal/joinindex"
	"mood/internal/object"
	"mood/internal/storage"
	"mood/internal/vehicledb"
)

func buildDB(t testing.TB) (*vehicledb.DB, *Algebra) {
	t.Helper()
	db, _, err := vehicledb.Build(vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5,
	}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return db, New(db.Cat)
}

func cmpConst(op expr.CmpOp, path expr.Expr, v object.Value) expr.Expr {
	return &expr.Cmp{Op: op, L: path, R: &expr.Const{Val: v}}
}

// collOfKind builds a collection of each Table 1/2 kind over the same OIDs.
func collOfKind(t *testing.T, a *Algebra, kind Kind, name, class string, oids []storage.OID) *Collection {
	t.Helper()
	switch kind {
	case ExtentKind:
		c := a.BindSet(name, class, oids)
		ext, err := a.AsExtent(c)
		if err != nil {
			t.Fatal(err)
		}
		ext.Kind = ExtentKind
		return ext
	case SetKind:
		return a.BindSet(name, class, oids)
	case ListKind:
		return a.BindList(name, class, oids)
	default:
		c, err := a.BindNamed(name, class, oids[0])
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
}

func TestSelectReturnTypes(t *testing.T) {
	// Table 1: Extent -> Extent or Set; Set -> Set; List -> List;
	// Named Obj -> Named Obj.
	db, a := buildDB(t)
	truePred := cmpConst(expr.OpGe, expr.Path("x", "id"), object.NewInt(0))
	oids := db.Vehicles[:10]
	cases := []struct {
		in, want Kind
		asSet    bool
	}{
		{ExtentKind, ExtentKind, false},
		{ExtentKind, SetKind, true},
		{SetKind, SetKind, false},
		{ListKind, ListKind, false},
		{NamedObjKind, NamedObjKind, false},
	}
	for _, c := range cases {
		in := collOfKind(t, a, c.in, "x", "Vehicle", oids)
		out, err := a.Select(in, truePred, c.asSet)
		if err != nil {
			t.Fatal(err)
		}
		if out.Kind != c.want {
			t.Errorf("Select(%s) returned %s, want %s (Table 1)", c.in, out.Kind, c.want)
		}
	}
}

func TestSelectSemantics(t *testing.T) {
	db, a := buildDB(t)
	vehicles, err := a.Bind("Vehicle", "v")
	if err != nil {
		t.Fatal(err)
	}
	if vehicles.Len() != 400 {
		t.Fatalf("Bind(Vehicle) = %d rows", vehicles.Len())
	}
	// The paper's path predicate: v.drivetrain.transmission = 'AUTOMATIC'.
	pred := cmpConst(expr.OpEq,
		expr.Path("v", "drivetrain", "transmission"),
		object.NewString("AUTOMATIC"))
	out, err := a.Select(vehicles, pred, false)
	if err != nil {
		t.Fatal(err)
	}
	// Transmissions cycle over 4 values; drivetrains are shared pairwise.
	if out.Len() != 100 {
		t.Errorf("AUTOMATIC vehicles = %d, want 100", out.Len())
	}
	// Verify each survivor.
	for i := range out.Rows {
		b := out.Primary(i)
		v, _, _ := db.Cat.GetObject(b.OID)
		dtRef, _ := v.Field("drivetrain")
		dt, _, _ := db.Cat.GetObject(dtRef.Ref)
		tr, _ := dt.Field("transmission")
		if tr.Str != "AUTOMATIC" {
			t.Fatalf("non-matching row: %s", tr.Str)
		}
	}
}

func TestSelectWithMethodPredicate(t *testing.T) {
	_, a := buildDB(t)
	a.Invoke = func(self object.Value, _ storage.OID, method string, _ []object.Value) (object.Value, error) {
		if method != "lbweight" {
			return object.Null, fmt.Errorf("unknown method %s", method)
		}
		w, _ := self.Field("weight")
		return object.NewInt(int32(float64(w.Int) * 2.2075)), nil
	}
	vehicles, _ := a.Bind("Vehicle", "v")
	pred := cmpConst(expr.OpGt,
		&expr.Call{Base: &expr.Var{Name: "v"}, Method: "lbweight"},
		object.NewInt(4000))
	out, err := a.Select(vehicles, pred, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 || out.Len() == vehicles.Len() {
		t.Errorf("method predicate selected %d of %d", out.Len(), vehicles.Len())
	}
}

func TestIndSel(t *testing.T) {
	db, a := buildDB(t)
	if _, err := db.Cat.CreateIndex("cyl", "VehicleEngine", "cylinders", catalog.BTreeIndex, false); err != nil {
		t.Fatal(err)
	}
	out, err := a.IndSel("VehicleEngine", "e", catalog.BTreeIndex, SimplePredicate{
		Attribute: "cylinders", Op: expr.OpEq, Constant: object.NewInt(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != SetKind {
		t.Errorf("IndSel returns %s, want Set (paper: a set of object identifiers)", out.Kind)
	}
	// 200 engines over 16 cylinder values 2..32; cylinders=4 hits i%16==1.
	if out.Len() != 13 {
		t.Errorf("IndSel(=4) = %d, want 13", out.Len())
	}
	// Strict > re-checks against base objects.
	gt, err := a.IndSel("VehicleEngine", "e", catalog.BTreeIndex, SimplePredicate{
		Attribute: "cylinders", Op: expr.OpGt, Constant: object.NewInt(30),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gt.Rows {
		v, _, _ := db.Cat.GetObject(gt.Primary(i).OID)
		c, _ := v.Field("cylinders")
		if c.Int <= 30 {
			t.Fatalf("IndSel(>30) returned cylinders=%d", c.Int)
		}
	}
	// BETWEEN uses a range scan.
	btw, err := a.IndSel("VehicleEngine", "e", catalog.BTreeIndex, SimplePredicate{
		Attribute: "cylinders", Between: true,
		Constant: object.NewInt(4), Constant2: object.NewInt(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if btw.Len() != 39 { // cylinders 4,6,8 -> i%16 in {1,2,3}: 13 each
		t.Errorf("IndSel(BETWEEN 4 AND 8) = %d, want 39", btw.Len())
	}
	// Missing index errors.
	if _, err := a.IndSel("VehicleEngine", "e", catalog.HashIndex, SimplePredicate{
		Attribute: "size", Op: expr.OpEq, Constant: object.NewInt(1),
	}); !errors.Is(err, ErrNoIndex) {
		t.Errorf("IndSel without index = %v", err)
	}
}

func TestJoinReturnTypeMatrix(t *testing.T) {
	// Table 2, all 16 combinations.
	db, a := buildDB(t)
	want := map[[2]Kind]Kind{}
	kinds := []Kind{ExtentKind, SetKind, ListKind, NamedObjKind}
	rank := map[Kind]int{ExtentKind: 3, SetKind: 2, ListKind: 1, NamedObjKind: 0}
	for _, k1 := range kinds {
		for _, k2 := range kinds {
			if rank[k1] >= rank[k2] {
				want[[2]Kind{k1, k2}] = k1
			} else {
				want[[2]Kind{k1, k2}] = k2
			}
		}
	}
	// Sanity anchors straight from the printed table.
	if want[[2]Kind{SetKind, ListKind}] != SetKind ||
		want[[2]Kind{NamedObjKind, NamedObjKind}] != NamedObjKind ||
		want[[2]Kind{ListKind, ExtentKind}] != ExtentKind {
		t.Fatal("test matrix disagrees with Table 2")
	}
	// One vehicle and its drivetrain so the named-object cases join.
	v, _, _ := db.Cat.GetObject(db.Vehicles[0])
	dtRef, _ := v.Field("drivetrain")
	for _, k1 := range kinds {
		for _, k2 := range kinds {
			left := collOfKind(t, a, k1, "v", "Vehicle", db.Vehicles[:1])
			right := collOfKind(t, a, k2, "d", "VehicleDriveTrain", []storage.OID{dtRef.Ref})
			out, err := a.Join(left, right, JoinSpec{
				Method: cost.ForwardTraversal, LeftVar: "v", Attribute: "drivetrain", RightVar: "d",
			})
			if err != nil {
				t.Fatalf("join %s×%s: %v", k1, k2, err)
			}
			if out.Kind != want[[2]Kind{k1, k2}] {
				t.Errorf("Join(%s,%s) kind = %s, want %s (Table 2)", k1, k2, out.Kind, want[[2]Kind{k1, k2}])
			}
			if out.Len() != 1 {
				t.Errorf("Join(%s,%s) rows = %d, want 1", k1, k2, out.Len())
			}
		}
	}
}

// rowKey canonicalizes a joined row for cross-method comparison.
func rowKey(r Row) string {
	names := make([]string, 0, len(r.Vars))
	for n := range r.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	k := ""
	for _, n := range names {
		k += fmt.Sprintf("%s=%v;", n, r.Vars[n].OID)
	}
	return k
}

func TestJoinMethodsAgree(t *testing.T) {
	db, a := buildDB(t)
	bji, err := joinindex.BuildBJI(db.Cat, "Vehicle", "drivetrain")
	if err != nil {
		t.Fatal(err)
	}
	vehicles, _ := a.Bind("Vehicle", "v")
	// Right side: drivetrains with AUTOMATIC transmission.
	dts, _ := a.Bind("VehicleDriveTrain", "d")
	pred := cmpConst(expr.OpEq, expr.Path("d", "transmission"), object.NewString("AUTOMATIC"))
	autodts, err := a.Select(dts, pred, false)
	if err != nil {
		t.Fatal(err)
	}

	var results [5]map[string]bool
	methods := []cost.JoinMethod{
		cost.ForwardTraversal, cost.BackwardTraversal, cost.BinaryJoinIndex,
		cost.HashPartition, cost.FusionJoin,
	}
	for i, m := range methods {
		out, err := a.Join(vehicles, autodts, JoinSpec{
			Method: m, LeftVar: "v", Attribute: "drivetrain", RightVar: "d", Index: bji,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		results[i] = map[string]bool{}
		for _, r := range out.Rows {
			results[i][rowKey(r)] = true
		}
		// Both variables bound in every result row.
		for _, r := range out.Rows {
			if _, ok := r.Vars["v"]; !ok {
				t.Fatalf("%v: row missing v", m)
			}
			if _, ok := r.Vars["d"]; !ok {
				t.Fatalf("%v: row missing d", m)
			}
		}
	}
	if len(results[0]) == 0 {
		t.Fatal("join produced no rows")
	}
	// 100 AUTOMATIC vehicles expected (50 AUTOMATIC drivetrains × 2).
	if len(results[0]) != 100 {
		t.Errorf("forward join rows = %d, want 100", len(results[0]))
	}
	for i := 1; i < len(methods); i++ {
		if len(results[i]) != len(results[0]) {
			t.Errorf("%v rows = %d, forward = %d", methods[i], len(results[i]), len(results[0]))
			continue
		}
		for k := range results[0] {
			if !results[i][k] {
				t.Errorf("%v missing row %s", methods[i], k)
				break
			}
		}
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	_, a := buildDB(t)
	vehicles, _ := a.Bind("Vehicle", "v")
	dts, _ := a.Bind("VehicleDriveTrain", "d")
	out, err := a.Join(vehicles, dts, JoinSpec{
		Method: cost.HashPartition, LeftVar: "v", Attribute: "drivetrain", RightVar: "d",
		Extra: cmpConst(expr.OpEq, expr.Path("d", "transmission"), object.NewString("MANUAL")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 100 {
		t.Errorf("residual-filtered join = %d, want 100", out.Len())
	}
}

func TestGeneralOperators(t *testing.T) {
	db, a := buildDB(t)
	oid := db.Vehicles[3]
	// Deref + TypeId + typeName composition.
	v, err := a.Deref(oid)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.Field("id"); f.Int != 3 {
		t.Errorf("Deref content: %v", f)
	}
	tid, err := a.TypeId(oid)
	if err != nil {
		t.Fatal(err)
	}
	name, err := db.Cat.TypeName(tid)
	if err != nil || name != "Vehicle" {
		t.Errorf("TypeId/typeName = %d/%q", tid, name)
	}
	// isA(path).
	cls, err := a.IsA("Vehicle", []string{"drivetrain", "engine"})
	if err != nil || cls != "VehicleEngine" {
		t.Errorf("IsA = %q %v", cls, err)
	}
	// ObjId is the identity on bindings.
	if a.ObjId(Bound{OID: oid}) != oid {
		t.Error("ObjId broken")
	}
}

func TestProject(t *testing.T) {
	_, a := buildDB(t)
	vehicles, _ := a.Bind("Vehicle", "v")
	out, err := a.Project(vehicles, []ProjItem{
		{Var: "v", Path: []string{"id"}},
		{Var: "v", Path: []string{"drivetrain", "transmission"}, As: "trans"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != ExtentKind {
		t.Errorf("Project kind = %s, want Extent", out.Kind)
	}
	if out.Len() != 400 {
		t.Fatalf("Project rows = %d", out.Len())
	}
	first := out.Rows[0].Vars["v"].Val
	if first.Kind != object.KindTuple || first.Len() != 2 {
		t.Fatalf("projected tuple = %s", first)
	}
	if _, ok := first.Field("trans"); !ok {
		t.Error("renamed projection field missing")
	}
	if _, err := a.Project(vehicles, nil); err == nil {
		t.Error("empty projection accepted")
	}
}

func TestPartition(t *testing.T) {
	_, a := buildDB(t)
	engines, _ := a.Bind("VehicleEngine", "e")
	groups, err := a.Partition(engines, []string{"cylinders"})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 16 {
		t.Fatalf("Partition produced %d groups, want 16", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += g.Len()
		// All members share the value.
		var want object.Value
		for i := range g.Rows {
			b := g.Rows[i].Vars["e"]
			cyl, _ := b.Val.Field("cylinders")
			if i == 0 {
				want = cyl
			} else if !object.Equal(cyl, want) {
				t.Fatal("mixed group")
			}
		}
	}
	if total != 200 {
		t.Errorf("groups cover %d rows", total)
	}
}

func TestSortHeapMerge(t *testing.T) {
	_, a := buildDB(t)
	vehicles, _ := a.Bind("Vehicle", "v")
	sorted, err := a.Sort(vehicles, []SortKey{{Var: "v", Path: []string{"weight"}}})
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Len() != 400 {
		t.Fatal("sort dropped rows")
	}
	prev := int64(-1 << 62)
	for i := range sorted.Rows {
		sv := sorted.Rows[i].Vars["v"].Val
		w, _ := sv.Field("weight")
		if w.Int < prev {
			t.Fatal("ascending sort violated")
		}
		prev = w.Int
	}
	// Descending, secondary key.
	sorted, err = a.Sort(vehicles, []SortKey{
		{Var: "v", Path: []string{"drivetrain", "transmission"}},
		{Var: "v", Path: []string{"weight"}, Desc: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	var prevTr string
	prevW := int64(1 << 62)
	for i := range sorted.Rows {
		v := sorted.Rows[i].Vars["v"].Val
		tr, _ := a.followPath(v, []string{"drivetrain", "transmission"})
		w, _ := v.Field("weight")
		if tr.Str != prevTr {
			if tr.Str < prevTr {
				t.Fatal("primary key order violated")
			}
			prevTr, prevW = tr.Str, int64(1<<62)
		}
		if w.Int > prevW {
			t.Fatal("descending secondary key violated")
		}
		prevW = w.Int
	}
}

func TestSortLargeTriggersMerge(t *testing.T) {
	// More rows than one heap-sort run (1024) to exercise the merge phase.
	cat, _, err := vehicledb.NewEnvironment(2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := vehicledb.DefineSchema(cat); err != nil {
		t.Fatal(err)
	}
	if _, err := vehicledb.Populate(cat, vehicledb.Config{
		Vehicles: 3000, DriveTrains: 10, Engines: 10, Companies: 10, Seed: 9,
	}); err != nil {
		t.Fatal(err)
	}
	a := New(cat)
	vehicles, _ := a.Bind("Vehicle", "v")
	sorted, err := a.Sort(vehicles, []SortKey{{Var: "v", Path: []string{"weight"}, Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(1 << 62)
	for i := range sorted.Rows {
		sv := sorted.Rows[i].Vars["v"].Val
		w, _ := sv.Field("weight")
		if w.Int > prev {
			t.Fatalf("merge phase broke descending order at row %d", i)
		}
		prev = w.Int
	}
}

func TestDupElimReturnTypes(t *testing.T) {
	db, a := buildDB(t)
	// Table 3: Set -> not applicable.
	set := a.BindSet("s", "Vehicle", db.Vehicles[:5])
	if _, err := a.DupElim(set); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("DupElim(Set) = %v, want ErrNotApplicable", err)
	}
	// List -> ordered distinct object identifiers.
	dup := []storage.OID{db.Vehicles[2], db.Vehicles[0], db.Vehicles[2], db.Vehicles[1], db.Vehicles[0]}
	list := a.BindList("l", "Vehicle", dup)
	out, err := a.DupElim(list)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != ListKind || out.Len() != 3 {
		t.Fatalf("DupElim(List) = %s/%d", out.Kind, out.Len())
	}
	oids := out.OIDs()
	if !sort.SliceIsSorted(oids, func(i, j int) bool { return oids[i] < oids[j] }) {
		t.Error("DupElim(List) not ordered")
	}
}

func TestDupElimExtentDeepEquality(t *testing.T) {
	// Two vehicles that are structurally identical through their references
	// but have different OIDs: deep equality must collapse them.
	cat, _, err := vehicledb.NewEnvironment(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := vehicledb.DefineSchema(cat); err != nil {
		t.Fatal(err)
	}
	a := New(cat)
	mkEngine := func() storage.OID {
		oid, err := cat.CreateObject("VehicleEngine", object.NewTuple(
			[]string{"size", "cylinders"},
			[]object.Value{object.NewInt(2000), object.NewInt(8)}))
		if err != nil {
			t.Fatal(err)
		}
		return oid
	}
	mkDT := func(engine storage.OID) storage.OID {
		oid, err := cat.CreateObject("VehicleDriveTrain", object.NewTuple(
			[]string{"engine", "transmission"},
			[]object.Value{object.NewRef(engine), object.NewString("AUTOMATIC")}))
		if err != nil {
			t.Fatal(err)
		}
		return oid
	}
	mkVehicle := func(dt storage.OID) storage.OID {
		oid, err := cat.CreateObject("Vehicle", object.NewTuple(
			[]string{"id", "weight", "drivetrain", "manufacturer"},
			[]object.Value{object.NewInt(1), object.NewInt(1000), object.NewRef(dt), object.NewRef(storage.NilOID)}))
		if err != nil {
			t.Fatal(err)
		}
		return oid
	}
	// v1 and v2 reference *different* but structurally equal drivetrains.
	mkVehicle(mkDT(mkEngine()))
	mkVehicle(mkDT(mkEngine()))
	// v3 differs in cylinder count.
	e3, _ := cat.CreateObject("VehicleEngine", object.NewTuple(
		[]string{"size", "cylinders"},
		[]object.Value{object.NewInt(2000), object.NewInt(12)}))
	mkVehicle(mkDT(e3))

	ext, err := a.Bind("Vehicle", "v")
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.DupElim(ext)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != ExtentKind {
		t.Errorf("DupElim(Extent) kind = %s", out.Kind)
	}
	if out.Len() != 2 {
		t.Errorf("DupElim(Extent) = %d objects, want 2 (deep equality)", out.Len())
	}
}

func TestSetOpReturnTypes(t *testing.T) {
	// Table 4: Set×Set->Set, Set×List->Set, List×List->List.
	db, a := buildDB(t)
	s1 := a.BindSet("x", "Vehicle", db.Vehicles[:4])
	s2 := a.BindSet("y", "Vehicle", db.Vehicles[2:6])
	l1 := a.BindList("x", "Vehicle", db.Vehicles[:4])
	l2 := a.BindList("y", "Vehicle", db.Vehicles[2:6])

	u, err := a.Union(s1, s2)
	if err != nil || u.Kind != SetKind || u.Len() != 6 {
		t.Errorf("Union(Set,Set) = %v/%d %v", u.Kind, u.Len(), err)
	}
	u, err = a.Union(s1, l2)
	if err != nil || u.Kind != SetKind {
		t.Errorf("Union(Set,List) = %v %v", u.Kind, err)
	}
	u, err = a.Union(l1, l2)
	if err != nil || u.Kind != ListKind || u.Len() != 8 {
		t.Errorf("Union(List,List) = %v/%d %v (lists concatenate)", u.Kind, u.Len(), err)
	}
	i, err := a.Intersection(s1, s2)
	if err != nil || i.Kind != SetKind || i.Len() != 2 {
		t.Errorf("Intersection = %v/%d %v", i.Kind, i.Len(), err)
	}
	d, err := a.Difference(s1, s2)
	if err != nil || d.Kind != SetKind || d.Len() != 2 {
		t.Errorf("Difference = %v/%d %v", d.Kind, d.Len(), err)
	}
	// Extents are not valid set-operation arguments.
	ext, _ := a.Bind("Vehicle", "v")
	if _, err := a.Union(ext, s1); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("Union(Extent, Set) = %v", err)
	}
}

func TestAsSetAsList(t *testing.T) {
	// Table 5.
	db, a := buildDB(t)
	ext := collOfKind(t, a, ExtentKind, "v", "Vehicle", db.Vehicles[:5])
	asSet := a.AsSet(ext)
	if asSet.Kind != SetKind || asSet.Len() != 5 {
		t.Errorf("asSet(Extent) = %s/%d", asSet.Kind, asSet.Len())
	}
	asList := a.AsList(ext)
	if asList.Kind != ListKind || asList.Len() != 5 {
		t.Errorf("asList(Extent) = %s/%d", asList.Kind, asList.Len())
	}
	// Duplicates collapse in sets, survive in lists.
	dup := a.BindList("v", "Vehicle", []storage.OID{db.Vehicles[0], db.Vehicles[0]})
	if got := a.AsSet(dup); got.Len() != 1 {
		t.Errorf("asSet dedup = %d", got.Len())
	}
	if got := a.AsList(dup); got.Len() != 2 {
		t.Errorf("asList preserved = %d", got.Len())
	}
	// Named object.
	named, _ := a.BindNamed("n", "Vehicle", db.Vehicles[0])
	if got := a.AsSet(named); got.Len() != 1 || got.Kind != SetKind {
		t.Error("asSet(NamedObj) broken")
	}
}

func TestAsExtent(t *testing.T) {
	// Table 6: set/list -> extent of dereferenced objects.
	db, a := buildDB(t)
	set := a.BindSet("v", "Vehicle", db.Vehicles[:3])
	ext, err := a.AsExtent(set)
	if err != nil || ext.Kind != ExtentKind {
		t.Fatalf("asExtent = %v %v", ext, err)
	}
	for i := range ext.Rows {
		if ev := ext.Rows[i].Vars["v"].Val; ev.IsNull() {
			t.Error("asExtent did not dereference")
		}
	}
	// Extents and named objects are invalid arguments.
	if _, err := a.AsExtent(ext); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("asExtent(Extent) = %v", err)
	}
}

func TestUnnestPaperExample(t *testing.T) {
	// e = {<o1,{o2,o3}>, <o4,{o5}>} => {<o1,o2>, <o1,o3>, <o4,o5>}
	_, a := buildDB(t)
	o := func(i int) object.Value { return object.NewRef(storage.MakeOID(9, 1, storage.SlotID(i))) }
	rows := []Row{
		{Vars: map[string]Bound{"e": {Val: object.NewTuple(
			[]string{"a", "b"},
			[]object.Value{o(1), object.NewSet(o(2), o(3))})}}},
		{Vars: map[string]Bound{"e": {Val: object.NewTuple(
			[]string{"a", "b"},
			[]object.Value{o(4), object.NewSet(o(5))})}}},
	}
	in := &Collection{Kind: ExtentKind, Name: "e", Rows: rows}
	out, err := a.Unnest(in, "b")
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != ExtentKind || out.Len() != 3 {
		t.Fatalf("Unnest = %s/%d, want Extent/3", out.Kind, out.Len())
	}
	// Every output tuple's b is a single reference now.
	for i := range out.Rows {
		ev := out.Rows[i].Vars["e"].Val
		b, _ := ev.Field("b")
		if b.Kind != object.KindReference {
			t.Errorf("unnested b = %s", b.Kind)
		}
	}
	// Nest inverts it.
	nested, err := a.Nest(out, "b")
	if err != nil {
		t.Fatal(err)
	}
	if nested.Len() != 2 {
		t.Fatalf("Nest = %d groups, want 2", nested.Len())
	}
	for i := range nested.Rows {
		ev := nested.Rows[i].Vars["e"].Val
		b, _ := ev.Field("b")
		if b.Kind != object.KindSet {
			t.Errorf("nested b = %s", b.Kind)
		}
	}
	// Errors on atomic attribute.
	if _, err := a.Unnest(in, "a"); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("Unnest(atomic) = %v", err)
	}
}

func TestFlatten(t *testing.T) {
	o := func(i int) object.Value { return object.NewRef(storage.MakeOID(9, 1, storage.SlotID(i))) }
	// Flatten({{oid1,oid2},{oid3}}) = {oid1,oid2,oid3}
	in := object.NewSet(object.NewSet(o(1), o(2)), object.NewSet(o(3)))
	out, err := Flatten(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != object.KindSet || out.Len() != 3 {
		t.Errorf("Flatten = %s/%d", out.Kind, out.Len())
	}
	// Result is always a set, even for list input, and dedups.
	inList := object.NewList(object.NewList(o(1)), object.NewList(o(1), o(2)))
	out, err = Flatten(inList)
	if err != nil || out.Kind != object.KindSet || out.Len() != 2 {
		t.Errorf("Flatten(list) = %s/%d %v", out.Kind, out.Len(), err)
	}
	if _, err := Flatten(object.NewInt(1)); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("Flatten(atomic) = %v", err)
	}
}

func TestBindWithMinus(t *testing.T) {
	// The paper's FROM clause: EVERY Automobile - JapaneseAuto.
	cat, _, err := vehicledb.NewEnvironment(512)
	if err != nil {
		t.Fatal(err)
	}
	if err := vehicledb.DefineSchema(cat); err != nil {
		t.Fatal(err)
	}
	if _, err := vehicledb.Populate(cat, vehicledb.Config{
		Vehicles: 100, DriveTrains: 50, Engines: 50, Companies: 100,
		Seed: 2, Subclasses: true,
	}); err != nil {
		t.Fatal(err)
	}
	a := New(cat)
	all, err := a.Bind("Automobile", "c")
	if err != nil {
		t.Fatal(err)
	}
	minus, err := a.Bind("Automobile", "c", "JapaneseAuto")
	if err != nil {
		t.Fatal(err)
	}
	japanese, _ := a.Bind("JapaneseAuto", "c")
	if minus.Len()+japanese.Len() != all.Len() {
		t.Errorf("minus: %d + %d != %d", minus.Len(), japanese.Len(), all.Len())
	}
	if japanese.Len() == 0 {
		t.Fatal("no JapaneseAuto instances generated")
	}
}

func TestUnionRows(t *testing.T) {
	db, a := buildDB(t)
	x := a.BindSet("v", "Vehicle", db.Vehicles[:3])
	y := a.BindSet("v", "Vehicle", db.Vehicles[1:5])
	out := a.UnionRows(x, y)
	if out.Len() != 5 {
		t.Errorf("UnionRows = %d rows, want 5 (identical bindings collapse)", out.Len())
	}
	// Rows with extra bindings are distinct from bare ones.
	z := &Collection{Kind: SetKind, Name: "v", Class: "Vehicle"}
	z.Rows = append(z.Rows, Row{Vars: map[string]Bound{
		"v": {OID: db.Vehicles[0]},
		"d": {OID: db.DriveTrains[0]},
	}})
	out = a.UnionRows(x, z)
	if out.Len() != 4 {
		t.Errorf("UnionRows with extra binding = %d rows, want 4", out.Len())
	}
}
