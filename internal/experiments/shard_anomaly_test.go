package experiments

import (
	"math"
	"testing"
	"time"

	"mood/internal/cost"
	"mood/internal/optimizer"
	"mood/internal/storage"
)

// TestShardProbeCostAnomalyIsPositioning pins down the BENCH_shard.json
// oddity: shard-hash-join-probe reads the same 24 pages at every shard
// count, yet its simulated time RISES with shards (44.46ms at 1 -> 117.36ms
// at 4). That is not an accounting bug — it is head positioning. Each shard
// is an independent disk with its own head; a probe batch sorted by page
// reads one shard's owner part as a single physically adjacent run, so a
// 1-shard probe pays ONE random positioning (s + r + btt) and rides the
// effective block transfer rate (ebt) for the rest, while an N-shard probe
// pays N positionings for the same total pages:
//
//	cost(N) = N*(s + r + btt) + (reads - N)*ebt
//
// The test computes that expectation from the DiskParams actually in force
// and requires the measured simulated time to match it exactly (integer-
// microsecond accounting) at shards=1/2/4, with the read total invariant.
// If layout or batching ever changes enough to break the adjacency
// assumption, this fails and BENCH_shard.json must be regenerated and
// re-explained.
func TestShardProbeCostAnomalyIsPositioning(t *testing.T) {
	itemsPerPage, ownersPerPage, err := shardRecordDensities()
	if err != nil {
		t.Fatal(err)
	}
	items := 6000 / (4 * itemsPerPage) * (4 * itemsPerPage)
	owners := 3000 / (4 * ownersPerPage) * (4 * ownersPerPage)
	probePlan := func() optimizer.Plan {
		return &optimizer.JoinPlan{
			Left:      &optimizer.BindPlan{Class: "BenchItem", Var: "b"},
			Right:     &optimizer.BindPlan{Class: "BenchOwner", Var: "o"},
			Method:    cost.HashPartition,
			LeftVar:   "b",
			Attribute: "owner",
			RightVar:  "o",
		}
	}

	p := storage.DefaultDiskParams()
	var baseReads int64
	var lastMs float64
	for _, n := range ShardCounts {
		e, err := measureShardQuery("shard-hash-join-probe", n, items, owners, time.Microsecond, probePlan)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if n == ShardCounts[0] {
			baseReads = e.Reads
		} else if e.Reads != baseReads {
			t.Fatalf("shards=%d read %d pages, shards=%d read %d — the probe is no longer layout-invariant",
				n, e.Reads, ShardCounts[0], baseReads)
		}
		want := float64(n)*p.RandomAccessTime() + float64(e.Reads-int64(n))*p.EBT
		if math.Abs(e.SimulatedMs-want) > 0.0005 {
			t.Errorf("shards=%d: simulated %.3fms, positioning model predicts %.3fms (%d reads, %d positionings)",
				n, e.SimulatedMs, want, e.Reads, n)
		}
		if lastMs > 0 && e.SimulatedMs <= lastMs {
			t.Errorf("shards=%d: simulated cost %.3fms did not rise over %.3fms — the documented anomaly vanished; update DESIGN.md and BENCH_shard.json together",
				n, e.SimulatedMs, lastMs)
		}
		lastMs = e.SimulatedMs
	}
}
