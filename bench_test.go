// Package mood_test holds the repository-level benchmark harness: one
// benchmark per paper table and figure (each regenerates its artifact
// through internal/experiments and reports the simulated-disk cost where
// one is defined), plus ablation benches for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute wall-clock numbers reflect this machine; the paper-comparable
// quantities are the simulated-disk milliseconds reported as "simms/op"
// custom metrics and the artifact outputs themselves (see cmd/moodbench).
package mood_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/exec"
	"mood/internal/experiments"
	"mood/internal/expr"
	"mood/internal/funcmgr"
	"mood/internal/joinindex"
	"mood/internal/kernel"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/sql"
	"mood/internal/storage"
)

// benchScale keeps the per-iteration cost low enough for -bench=. to finish
// everywhere; cmd/moodbench runs the same artifacts at any scale.
const benchScale = experiments.Scale(0.02)

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() { envVal, envErr = experiments.BuildEnv(benchScale) })
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

var (
	kernelOnce sync.Once
	kernelDB   *kernel.DB
	kernelErr  error
)

func benchKernel(b *testing.B) *kernel.DB {
	b.Helper()
	kernelOnce.Do(func() {
		kernelDB, _, kernelErr = experiments.BuildKernelEnv(benchScale)
		if kernelErr == nil {
			kernelErr = kernelDB.RegisterMethod("Vehicle", "lbweight",
				func(inv *funcmgr.Invocation) (object.Value, error) {
					w, _ := inv.Self.Field("weight")
					return object.NewInt(int32(float64(w.Int) * 2.2075)), nil
				})
		}
	})
	if kernelErr != nil {
		b.Fatal(kernelErr)
	}
	return kernelDB
}

// artifactBench runs one experiment artifact per iteration.
func artifactBench(b *testing.B, fn func(io.Writer, *experiments.Env) error) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper table / figure -------------------------------

func BenchmarkTable1SelectReturnTypes(b *testing.B) { artifactBench(b, experiments.Table1) }
func BenchmarkTable2JoinReturnTypes(b *testing.B)   { artifactBench(b, experiments.Table2) }
func BenchmarkTables3to7Conversions(b *testing.B) {
	artifactBench(b, func(w io.Writer, _ *experiments.Env) error {
		experiments.Tables3to7(w)
		return nil
	})
}
func BenchmarkTable8CostParameters(b *testing.B) {
	artifactBench(b, func(w io.Writer, e *experiments.Env) error {
		experiments.Table8(w, e)
		return nil
	})
}
func BenchmarkTable9BTreeParameters(b *testing.B) { artifactBench(b, experiments.Table9) }
func BenchmarkTable10DiskParameters(b *testing.B) {
	artifactBench(b, func(w io.Writer, e *experiments.Env) error {
		experiments.Table10(w, e)
		return nil
	})
}
func BenchmarkTables11and12Dictionaries(b *testing.B) { artifactBench(b, experiments.Tables11and12) }
func BenchmarkTables13to15ExampleStats(b *testing.B) {
	artifactBench(b, func(w io.Writer, e *experiments.Env) error {
		experiments.Tables13to15(w, e)
		return nil
	})
}
func BenchmarkTable16Example81Dictionary(b *testing.B)  { artifactBench(b, experiments.Table16) }
func BenchmarkTable17Example82Estimations(b *testing.B) { artifactBench(b, experiments.Table17) }
func BenchmarkExample81Plan(b *testing.B)               { artifactBench(b, experiments.Example81Plan) }
func BenchmarkExample82Plan(b *testing.B)               { artifactBench(b, experiments.Example82Plan) }
func BenchmarkFigure71ClauseOrder(b *testing.B)         { artifactBench(b, experiments.Figure71) }
func BenchmarkFigure72OperatorOrder(b *testing.B)       { artifactBench(b, experiments.Figure72) }

// --- end-to-end query benchmarks with simulated-disk metrics --------------

func benchQuery(b *testing.B, query string) {
	db := benchKernel(b)
	db.Disk.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(query); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(db.Disk.Stats().TimeMs/float64(b.N), "simms/op")
}

func BenchmarkQueryExample81(b *testing.B) {
	benchQuery(b, `SELECT v FROM Vehicle v
		WHERE v.manufacturer.name = 'BMW' AND v.drivetrain.engine.cylinders = 2`)
}

func BenchmarkQueryExample82(b *testing.B) {
	benchQuery(b, `SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`)
}

func BenchmarkQuerySection31(b *testing.B) {
	benchQuery(b, `SELECT c FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v
		WHERE c.drivetrain.transmission = 'AUTOMATIC'
		AND c.drivetrain.engine = v AND v.cylinders > 4`)
}

func BenchmarkQueryGroupBy(b *testing.B) {
	benchQuery(b, `SELECT e.cylinders, COUNT(*) AS n, AVG(e.size) AS s
		FROM VehicleEngine e GROUP BY e.cylinders ORDER BY e.cylinders`)
}

func BenchmarkQueryMethodPredicate(b *testing.B) {
	benchQuery(b, `SELECT COUNT(*) AS n FROM Vehicle v WHERE v.lbweight() > 6000`)
}

// --- ablation benches (DESIGN.md) ------------------------------------------

// BenchmarkJoinMethods compares the four implicit-join strategies on the
// same inputs (Section 6's subject).
func BenchmarkJoinMethods(b *testing.B) {
	env := benchEnv(b)
	bji, err := joinindex.BuildBJI(env.DB.Cat, "Vehicle", "drivetrain")
	if err != nil {
		b.Fatal(err)
	}
	a := algebra.New(env.DB.Cat)
	left := a.BindSet("v", "Vehicle", env.DB.Vehicles[:len(env.DB.Vehicles)/10])
	if err := a.Materialize(left); err != nil {
		b.Fatal(err)
	}
	right, err := a.BindDirect("VehicleDriveTrain", "d")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []cost.JoinMethod{
		cost.ForwardTraversal, cost.BackwardTraversal, cost.BinaryJoinIndex, cost.HashPartition,
	} {
		b.Run(m.String(), func(b *testing.B) {
			disk := env.Pool.Disk()
			disk.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Join(left, right, algebra.JoinSpec{
					Method: m, LeftVar: "v", Attribute: "drivetrain", RightVar: "d", Index: bji,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(disk.Stats().TimeMs/float64(b.N), "simms/op")
		})
	}
}

// BenchmarkPathOrdering compares Algorithm 8.1's order against the reverse
// (the Appendix lemma's objective, measured).
func BenchmarkPathOrdering(b *testing.B) {
	env := benchEnv(b)
	a := algebra.New(env.DB.Cat)
	vehicles, err := a.BindDirect("Vehicle", "v")
	if err != nil {
		b.Fatal(err)
	}
	p2 := &expr.Cmp{Op: expr.OpEq, L: expr.Path("v", "manufacturer", "name"),
		R: &expr.Const{Val: object.NewString("BMW")}}
	p1 := &expr.Cmp{Op: expr.OpEq, L: expr.Path("v", "drivetrain", "engine", "cylinders"),
		R: &expr.Const{Val: object.NewInt(2)}}
	run := func(b *testing.B, first, second expr.Expr) {
		pred := &expr.Logic{Op: expr.OpAnd, L: first, R: second}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Select(vehicles, pred, false); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Algorithm81Order", func(b *testing.B) { run(b, p2, p1) })
	b.Run("ReverseOrder", func(b *testing.B) { run(b, p1, p2) })
}

// BenchmarkIndexVsScan compares the two access paths §8.1 chooses between.
func BenchmarkIndexVsScan(b *testing.B) {
	env := benchEnv(b)
	if env.DB.Cat.IndexOn("Vehicle", "id") == nil {
		if _, err := env.DB.Cat.CreateIndex("bench_vid", "Vehicle", "id", catalog.BTreeIndex, true); err != nil {
			b.Fatal(err)
		}
	}
	a := algebra.New(env.DB.Cat)
	pred := &expr.Cmp{Op: expr.OpEq, L: expr.Path("v", "id"), R: &expr.Const{Val: object.NewInt(42)}}
	b.Run("Scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vehicles, err := a.BindDirect("Vehicle", "v")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := a.Select(vehicles, pred, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.IndSel("Vehicle", "v", catalog.BTreeIndex, algebra.SimplePredicate{
				Attribute: "id", Op: expr.OpEq, Constant: object.NewInt(42),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFunctionManager measures the late-binding overhead against a
// direct Go call — the cost the paper's compiled-function design removes
// from the interpreter.
func BenchmarkFunctionManager(b *testing.B) {
	db := benchKernel(b)
	self, _, err := db.Cat.GetObject(dbFirstVehicle(b, db))
	if err != nil {
		b.Fatal(err)
	}
	direct := func(v object.Value) object.Value {
		w, _ := v.Field("weight")
		return object.NewInt(int32(float64(w.Int) * 2.2075))
	}
	b.Run("DirectCall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			direct(self)
		}
	})
	b.Run("LateBound", func(b *testing.B) {
		inv := &funcmgr.Invocation{Self: self}
		for i := 0; i < b.N; i++ {
			if _, err := db.Funcs.Invoke("Vehicle", "lbweight", inv); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func dbFirstVehicle(b *testing.B, db *kernel.DB) storage.OID {
	b.Helper()
	var first storage.OID
	if err := db.Cat.ScanExtent("Vehicle", func(oid storage.OID, _ object.Value) bool {
		first = oid
		return false
	}); err != nil {
		b.Fatal(err)
	}
	return first
}

// BenchmarkOptimizeOnly isolates plan generation (parse + optimize, no
// execution).
func BenchmarkOptimizeOnly(b *testing.B) {
	env := benchEnv(b)
	opt := optimizer.New(env.DB.Cat, env.Stats)
	st, err := sql.Parse(`SELECT v FROM Vehicle v
		WHERE v.manufacturer.name = 'BMW' AND v.drivetrain.engine.cylinders = 2`)
	if err != nil {
		b.Fatal(err)
	}
	q := st.(*sql.Select)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := opt.Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorScan isolates the executor's scan + predicate pipeline.
func BenchmarkExecutorScan(b *testing.B) {
	env := benchEnv(b)
	opt := optimizer.New(env.DB.Cat, env.Stats)
	ex := exec.New(algebra.New(env.DB.Cat))
	st, _ := sql.Parse(`SELECT v FROM Vehicle v WHERE v.weight > 1500`)
	plan, _, err := opt.Optimize(st.(*sql.Select))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Execute(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweeps ties the measured-vs-predicted experiments into the bench
// harness (their tabular output goes to moodbench; here we time them).
func BenchmarkSweepJoinMethods(b *testing.B)    { artifactBench(b, experiments.JoinMethodSweep) }
func BenchmarkSweepPathOrdering(b *testing.B)   { artifactBench(b, experiments.PathOrderingSweep) }
func BenchmarkSweepSelectivity(b *testing.B)    { artifactBench(b, experiments.SelectivityAccuracy) }
func BenchmarkSweepIndexSelection(b *testing.B) { artifactBench(b, experiments.IndexSelectionSweep) }

var _ = fmt.Sprintf // reserved for debug output in ad-hoc runs
