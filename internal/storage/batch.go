package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// CacheInvalidator is the hook the object store drives to keep a decoded-
// object cache (internal/objcache) coherent: Invalidate fires under the
// store's exclusive lock on every Update/Delete, Reset on wholesale page
// rewrites (WAL recovery). The store depends only on this interface so the
// storage layer stays free of the cache's types.
type CacheInvalidator interface {
	Invalidate(OID)
	Reset()
}

// SetInvalidator installs the cache invalidation hook. Must be called
// before the store is shared across goroutines (kernel.Open does).
func (s *ObjectStore) SetInvalidator(inv CacheInvalidator) { s.inv = inv }

// SetPrefetcher attaches a page prefetcher consulted by FetchBatch and the
// extent scans. Must be called before the store is shared across
// goroutines; nil detaches.
func (s *ObjectStore) SetPrefetcher(pf *Prefetcher) { s.pf = pf }

// BatchObserver receives one observation per file-run of a FetchBatch call:
// the shard, the file, how many references the run resolved, and how many
// distinct pages (post-forwarding) they landed on. The clustering tracer
// learns measured page co-residency — the cost model's clustering factor —
// from this feed. Runs under the store's read lock; implementations must
// not call back into the store.
type BatchObserver func(shard int, file FileID, refs, pages int)

// SetBatchObserver installs the clustering observation hook. Must be called
// before the store is shared across goroutines (kernel.Open does); nil
// detaches.
func (s *ObjectStore) SetBatchObserver(obs BatchObserver) { s.batchObs = obs }

// Prefetch requests asynchronous pre-loading of pages into the buffer pool.
// A no-op without an attached prefetcher, so scan paths call it
// unconditionally.
func (s *ObjectStore) Prefetch(ids ...PageID) {
	if s.pf != nil {
		s.pf.Request(ids...)
	}
}

func (s *ObjectStore) invalidate(oid OID) {
	if s.inv != nil {
		s.inv.Invalidate(oid)
	}
}

// FetchBatch resolves many OIDs in one pass: the requests are sorted by
// (page, slot) — OIDs order that way numerically — and each distinct page is
// fetched exactly once, instead of once per record as a per-OID Get loop
// does. With a prefetcher attached the distinct page set is requested up
// front, so later page loads overlap the slot copies of earlier ones.
// Results are returned parallel to the input order; duplicates are allowed.
//
// This is the collection-at-a-time reference resolution the traversal joins
// use: the Section 6.1 worst case charges RNDCOST per referenced object,
// while the batch path pays one random access per distinct target page —
// the NbPg(nbpages, k) figure the cost model's batch mode predicts.
func (s *ObjectStore) FetchBatch(oids []OID) ([][]byte, error) {
	out := make([][]byte, len(oids))
	if len(oids) == 0 {
		return out, nil
	}
	// Translate migrated records through the forwarding map up front, so the
	// batch sorts, prefetches and pins by the records' CURRENT pages — the
	// whole point of clustering: a warm map never touches the stub pages.
	tr := make([]OID, len(oids))
	for i, oid := range oids {
		tr[i] = s.forwardOf(oid)
	}
	idx := make([]int, len(oids))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return tr[idx[a]] < tr[idx[b]] })

	s.mu.RLock()
	defer s.mu.RUnlock()

	if s.pf != nil {
		var pages []PageID
		for k, i := range idx {
			if p := tr[i].Page(); k == 0 || p != tr[idx[k-1]].Page() {
				pages = append(pages, p)
			}
		}
		s.pf.Request(pages...)
	}

	// Overflow heads are collected during the page pass and the chains
	// reassembled afterwards, so the primary pages are each pinned once.
	// Cold-map forward stubs (first access after a reopen) are resolved in a
	// trailing pass, after the map has learned their destinations.
	type ovf struct {
		i     int
		first PageID
		total int
	}
	var ovfs []ovf
	var stubs []int
	var obsFile FileID
	obsRefs, obsPages := 0, 0
	flushObs := func() {
		if s.batchObs != nil && obsRefs > 0 {
			s.batchObs(s.shard, obsFile, obsRefs, obsPages)
		}
		obsRefs, obsPages = 0, 0
	}
	for k := 0; k < len(idx); {
		pid := tr[idx[k]].Page()
		if s.batchObs != nil {
			if fid := tr[idx[k]].File(); obsRefs == 0 || fid != obsFile {
				flushObs()
				obsFile = fid
			}
			obsPages++
		}
		pg, err := s.bp.Fetch(pid)
		if err != nil {
			return nil, err
		}
		for ; k < len(idx) && tr[idx[k]].Page() == pid; k++ {
			i := idx[k]
			if s.batchObs != nil {
				obsRefs++
			}
			rec, gerr := pg.Get(tr[i].Slot())
			if gerr != nil {
				s.bp.Unpin(pid, false)
				return nil, gerr
			}
			if rec[0] == recForward {
				s.learnForward(oids[i], forwardDst(rec))
				stubs = append(stubs, i)
				continue
			}
			if rec[0] == recRelocated {
				rec = rec[relocHeadSize:]
			}
			switch rec[0] {
			case recPlain:
				cp := make([]byte, len(rec)-1)
				copy(cp, rec[1:])
				out[i] = cp
			case recOverflow:
				ovfs = append(ovfs, ovf{
					i:     i,
					total: int(binary.LittleEndian.Uint32(rec[1:])),
					first: PageID(binary.LittleEndian.Uint32(rec[5:])),
				})
			default:
				s.bp.Unpin(pid, false)
				return nil, fmt.Errorf("storage: corrupt record tag %d at %s", rec[0], oids[i])
			}
		}
		if err := s.bp.Unpin(pid, false); err != nil {
			return nil, err
		}
	}
	flushObs()
	for _, o := range ovfs {
		data, err := s.readOverflow(o.first, o.total)
		if err != nil {
			return nil, err
		}
		out[o.i] = data
	}
	for _, i := range stubs {
		data, err := s.getLocked(oids[i])
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}
