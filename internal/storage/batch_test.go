package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"mood/internal/fault"
)

func TestFetchBatchMatchesGet(t *testing.T) {
	store, _, _ := newTestStore(t, 64)
	f, err := store.Files().CreateFile("batch")
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	var oids []OID
	var want [][]byte
	for i := 0; i < 200; i++ {
		data := []byte(fmt.Sprintf("record-%04d", i))
		oid, err := store.Insert(f, data)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		oids = append(oids, oid)
		want = append(want, data)
	}
	// A record big enough to spill into an overflow chain.
	big := bytes.Repeat([]byte("B"), 3*store.Pool().Disk().PageSize())
	bigOID, err := store.Insert(f, big)
	if err != nil {
		t.Fatalf("Insert big: %v", err)
	}
	oids = append(oids, bigOID)
	want = append(want, big)

	// Reverse order plus duplicates: results must stay parallel to input.
	req := make([]OID, 0, len(oids)+3)
	exp := make([][]byte, 0, len(want)+3)
	for i := len(oids) - 1; i >= 0; i-- {
		req = append(req, oids[i])
		exp = append(exp, want[i])
	}
	req = append(req, oids[7], bigOID, oids[7])
	exp = append(exp, want[7], big, want[7])

	got, err := store.FetchBatch(req)
	if err != nil {
		t.Fatalf("FetchBatch: %v", err)
	}
	if len(got) != len(req) {
		t.Fatalf("FetchBatch returned %d results for %d oids", len(got), len(req))
	}
	for i := range got {
		if !bytes.Equal(got[i], exp[i]) {
			t.Fatalf("result %d: got %d bytes, want %d", i, len(got[i]), len(exp[i]))
		}
	}
}

func TestFetchBatchReadsEachPageOnce(t *testing.T) {
	store, bp, disk := newTestStore(t, 64)
	f, err := store.Files().CreateFile("pages")
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	var oids []OID
	for i := 0; i < 300; i++ {
		oid, err := store.Insert(f, []byte(fmt.Sprintf("r%05d", i)))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		oids = append(oids, oid)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := bp.EvictAll(); err != nil {
		t.Fatalf("EvictAll: %v", err)
	}
	distinct := map[PageID]bool{}
	for _, oid := range oids {
		distinct[oid.Page()] = true
	}
	scope := disk.Scope()
	if _, err := store.FetchBatch(oids); err != nil {
		t.Fatalf("FetchBatch: %v", err)
	}
	if got, want := scope.Delta().Reads(), int64(len(distinct)); got != want {
		t.Fatalf("cold FetchBatch read %d pages, want %d distinct", got, want)
	}
}

func TestInvalidatorHook(t *testing.T) {
	store, _, _ := newTestStore(t, 16)
	f, err := store.Files().CreateFile("inv")
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	rec := &recordingInvalidator{}
	store.SetInvalidator(rec)
	oid, err := store.Insert(f, []byte("v1"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := store.Update(oid, []byte("v2")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := store.Delete(oid); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if len(rec.oids) != 2 || rec.oids[0] != oid || rec.oids[1] != oid {
		t.Fatalf("invalidations = %v, want [%s %s]", rec.oids, oid, oid)
	}
}

type recordingInvalidator struct{ oids []OID }

func (r *recordingInvalidator) Invalidate(oid OID) { r.oids = append(r.oids, oid) }
func (r *recordingInvalidator) Reset()             {}

// tearOverflowPage flushes the store cold, then tears the first overflow
// page of the record at oid by writing a modified image through an armed
// torn-write fault. Returns the torn page.
func tearOverflowPage(t *testing.T, store *ObjectStore, bp *BufferPool, disk *DiskSim, oid OID) PageID {
	t.Helper()
	pg, err := bp.Fetch(oid.Page())
	if err != nil {
		t.Fatalf("Fetch head page: %v", err)
	}
	rec, err := pg.Get(oid.Slot())
	if err != nil {
		t.Fatalf("Get head record: %v", err)
	}
	if rec[0] != recOverflow {
		t.Fatalf("record at %s is not an overflow head", oid)
	}
	first := PageID(binary.LittleEndian.Uint32(rec[5:]))
	if err := bp.Unpin(oid.Page(), false); err != nil {
		t.Fatalf("Unpin: %v", err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := bp.EvictAll(); err != nil {
		t.Fatalf("EvictAll: %v", err)
	}

	buf := make([]byte, disk.PageSize())
	if err := disk.ReadPage(first, buf); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	for i := pageHeaderSize + 2; i < len(buf); i++ {
		buf[i] ^= 0xFF
	}
	fi := fault.New(1)
	fi.FailAt(fault.OpPageWrite, 1, fault.Torn)
	disk.SetFaultInjector(fi)
	if err := disk.WritePage(first, buf); err == nil {
		t.Fatal("torn WritePage reported success")
	}
	disk.SetFaultInjector(nil)
	if got := disk.CorruptPages(); len(got) != 1 || got[0] != first {
		t.Fatalf("CorruptPages = %v, want [%d]", got, first)
	}
	return first
}

func TestTornOverflowPageSurfacesThroughGet(t *testing.T) {
	store, bp, disk := newTestStore(t, 8)
	f, err := store.Files().CreateFile("torn")
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	big := bytes.Repeat([]byte("T"), 2*disk.PageSize())
	oid, err := store.Insert(f, big)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	tearOverflowPage(t, store, bp, disk, oid)

	// Without doublewrite the checksum mismatch must surface at the first
	// live fetch of the chain — not only during crash-recovery replay.
	if _, err := store.Get(oid); err == nil {
		t.Fatal("Get through a torn overflow page succeeded")
	}
}

func TestTornOverflowPageRepairedWithDoublewrite(t *testing.T) {
	store, bp, disk := newTestStore(t, 8)
	disk.SetDoublewrite(true)
	f, err := store.Files().CreateFile("torn-dw")
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	big := bytes.Repeat([]byte("D"), 2*disk.PageSize())
	oid, err := store.Insert(f, big)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	first := tearOverflowPage(t, store, bp, disk, oid)

	got, err := store.Get(oid)
	if err != nil {
		t.Fatalf("Get with doublewrite repair: %v", err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("repaired read returned wrong bytes")
	}
	if got := disk.CorruptPages(); len(got) != 0 {
		t.Fatalf("page %d still corrupt after repair-on-read: %v", first, got)
	}
}

func TestPrefetcherLoadsAndQuiesces(t *testing.T) {
	store, bp, disk := newTestStore(t, 64)
	f, err := store.Files().CreateFile("pf")
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	var oids []OID
	for i := 0; i < 300; i++ {
		oid, err := store.Insert(f, []byte(fmt.Sprintf("p%05d", i)))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		oids = append(oids, oid)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := bp.EvictAll(); err != nil {
		t.Fatalf("EvictAll: %v", err)
	}
	pf := NewPrefetcher(bp, 4)
	defer pf.Close()
	store.SetPrefetcher(pf)

	distinct := map[PageID]bool{}
	var pages []PageID
	for _, oid := range oids {
		if !distinct[oid.Page()] {
			distinct[oid.Page()] = true
			pages = append(pages, oid.Page())
		}
	}
	scope := disk.Scope()
	store.Prefetch(pages...)
	pf.Quiesce()
	if got, want := pf.Loaded(), int64(len(pages)); got != want {
		t.Fatalf("prefetcher loaded %d pages, want %d", got, want)
	}
	for _, pid := range pages {
		if !bp.Resident(pid) {
			t.Fatalf("page %d not resident after prefetch", pid)
		}
	}
	// The subsequent batch fetch must hit the pool: the page set was read
	// exactly once in total, by the prefetcher.
	if _, err := store.FetchBatch(oids); err != nil {
		t.Fatalf("FetchBatch: %v", err)
	}
	if got, want := scope.Delta().Reads(), int64(len(pages)); got != want {
		t.Fatalf("prefetch+batch read %d pages, want %d (no double reads)", got, want)
	}
	// Re-requesting resident pages is a no-op.
	store.Prefetch(pages...)
	pf.Quiesce()
	if got := pf.Loaded(); got != int64(len(pages)) {
		t.Fatalf("resident re-request loaded pages: %d", got)
	}
}
