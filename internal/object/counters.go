package object

import "sync/atomic"

// unmarshals counts Unmarshal calls process-wide. The object cache's whole
// point is removing decode work from hot dereference paths, so benchmarks
// and tests pin "Unmarshal calls per traversed row" with this counter
// rather than inferring it from allocation counts.
var unmarshals atomic.Int64

// Unmarshals returns the cumulative number of Unmarshal calls. Benchmarks
// snapshot it before and after a measured loop; the delta divided by rows
// is the decode cost the object cache is expected to eliminate on hits.
func Unmarshals() int64 { return unmarshals.Load() }
