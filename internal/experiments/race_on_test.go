//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. Its
// instrumentation multiplies the CPU share of the measured phases, which
// distorts wall-clock scaling assertions (the sleep-overlap effect is
// unchanged, but fixed CPU costs dominate it).
const raceEnabled = true
