// Package rtree implements a Guttman R-tree for spatial data — the index
// behind MoodView's "graphical indexing tool for the spatial data, i.e.,
// R Trees" (Section 1 and 9 of the paper). Rectangles are 2-D with float64
// coordinates; entries carry object identifiers. The tree uses the
// quadratic split heuristic and supports window (intersection) search,
// containment search, deletion with re-insertion, and nearest-neighbour
// queries.
package rtree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mood/internal/storage"
)

// Rect is an axis-aligned rectangle. Min must be <= Max in each dimension.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns a normalized rectangle covering both corner points.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2)}
}

// Point returns a degenerate rectangle at (x, y).
func Point(x, y float64) Rect { return Rect{x, y, x, y} }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// Intersects reports whether the rectangles overlap (boundaries included).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Contains reports whether o lies entirely within r.
func (r Rect) Contains(o Rect) bool {
	return r.MinX <= o.MinX && o.MaxX <= r.MaxX && r.MinY <= o.MinY && o.MaxY <= r.MaxY
}

// Union returns the smallest rectangle covering both.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		math.Min(r.MinX, o.MinX), math.Min(r.MinY, o.MinY),
		math.Max(r.MaxX, o.MaxX), math.Max(r.MaxY, o.MaxY),
	}
}

// Enlargement returns the area growth needed for r to cover o.
func (r Rect) Enlargement(o Rect) float64 { return r.Union(o).Area() - r.Area() }

// distSq returns the squared distance from the point to the rectangle
// (zero if inside).
func (r Rect) distSq(x, y float64) float64 {
	dx := math.Max(0, math.Max(r.MinX-x, x-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-y, y-r.MaxY))
	return dx*dx + dy*dy
}

func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g..%g,%g]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// Entry pairs a rectangle with the OID of the spatial object it bounds.
type Entry struct {
	Rect Rect
	OID  storage.OID
}

type node struct {
	leaf     bool
	rects    []Rect
	children []*node // internal nodes
	entries  []Entry // leaf nodes
}

func (n *node) size() int {
	if n.leaf {
		return len(n.entries)
	}
	return len(n.children)
}

func (n *node) mbr() Rect {
	var out Rect
	first := true
	for _, r := range n.rects {
		if first {
			out, first = r, false
		} else {
			out = out.Union(r)
		}
	}
	return out
}

// ErrNotFound is returned by Delete for an absent entry.
var ErrNotFound = errors.New("rtree: entry not found")

// Tree is an R-tree with configurable node capacity.
type Tree struct {
	root     *node
	min, max int
	count    int
	height   int
}

// New creates an R-tree whose nodes hold between max/2 and max entries.
func New(max int) *Tree {
	if max < 4 {
		max = 4
	}
	return &Tree{root: &node{leaf: true}, min: max / 2, max: max, height: 1}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.count }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Insert adds an entry.
func (t *Tree) Insert(r Rect, oid storage.OID) {
	t.insertEntry(Entry{r, oid}, 1)
	t.count++
}

func (t *Tree) insertEntry(e Entry, level int) {
	leafPath := t.chooseLeaf(e.Rect, level)
	n := leafPath[len(leafPath)-1]
	if n.leaf {
		n.entries = append(n.entries, e)
		n.rects = append(n.rects, e.Rect)
	}
	t.adjustTree(leafPath)
}

// insertSubtree reinserts an orphaned subtree at the given height from the
// leaves (1 == leaf level).
func (t *Tree) insertSubtree(sub *node, subHeight int) {
	path := t.chooseLeaf(sub.mbr(), subHeight+1)
	n := path[len(path)-1]
	n.children = append(n.children, sub)
	n.rects = append(n.rects, sub.mbr())
	t.adjustTree(path)
}

// chooseLeaf descends to the node at the given level (counted from the
// root = len(path)=1 ... leaves), picking children by least enlargement.
func (t *Tree) chooseLeaf(r Rect, stopHeight int) []*node {
	path := []*node{t.root}
	n := t.root
	height := t.height
	for !n.leaf && height > stopHeight {
		best, bestEnl, bestArea := -1, math.Inf(1), math.Inf(1)
		for i, cr := range n.rects {
			enl := cr.Enlargement(r)
			area := cr.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.children[best]
		path = append(path, n)
		height--
	}
	return path
}

// adjustTree fixes bounding rectangles bottom-up and splits overfull nodes.
func (t *Tree) adjustTree(path []*node) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		var split *node
		if n.size() > t.max {
			split = t.splitNode(n)
		}
		if i > 0 {
			parent := path[i-1]
			for j, c := range parent.children {
				if c == n {
					parent.rects[j] = n.mbr()
					break
				}
			}
			if split != nil {
				parent.children = append(parent.children, split)
				parent.rects = append(parent.rects, split.mbr())
			}
		} else if split != nil {
			// Root split: grow the tree.
			newRoot := &node{
				leaf:     false,
				children: []*node{n, split},
				rects:    []Rect{n.mbr(), split.mbr()},
			}
			t.root = newRoot
			t.height++
		}
	}
}

// splitNode performs Guttman's quadratic split, leaving one group in n and
// returning the other as a new node.
func (t *Tree) splitNode(n *node) *node {
	rects := n.rects
	// Pick seeds: the pair wasting the most area together.
	var s1, s2 int
	worst := math.Inf(-1)
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			d := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	groupA := []int{s1}
	groupB := []int{s2}
	mbrA, mbrB := rects[s1], rects[s2]
	assigned := make([]bool, len(rects))
	assigned[s1], assigned[s2] = true, true
	remaining := len(rects) - 2
	for remaining > 0 {
		// If one group must take everything left to reach the minimum, do so.
		if len(groupA)+remaining == t.min {
			for i := range rects {
				if !assigned[i] {
					groupA = append(groupA, i)
					mbrA = mbrA.Union(rects[i])
					assigned[i] = true
				}
			}
			break
		}
		if len(groupB)+remaining == t.min {
			for i := range rects {
				if !assigned[i] {
					groupB = append(groupB, i)
					mbrB = mbrB.Union(rects[i])
					assigned[i] = true
				}
			}
			break
		}
		// Pick the entry with the greatest preference for one group.
		pick, pickDiff := -1, math.Inf(-1)
		var toA bool
		for i := range rects {
			if assigned[i] {
				continue
			}
			dA := mbrA.Enlargement(rects[i])
			dB := mbrB.Enlargement(rects[i])
			diff := math.Abs(dA - dB)
			if diff > pickDiff {
				pick, pickDiff, toA = i, diff, dA < dB
			}
		}
		assigned[pick] = true
		if toA {
			groupA = append(groupA, pick)
			mbrA = mbrA.Union(rects[pick])
		} else {
			groupB = append(groupB, pick)
			mbrB = mbrB.Union(rects[pick])
		}
		remaining--
	}

	sib := &node{leaf: n.leaf}
	take := func(idxs []int, dst *node) {
		for _, i := range idxs {
			dst.rects = append(dst.rects, rects[i])
			if n.leaf {
				dst.entries = append(dst.entries, n.entries[i])
			} else {
				dst.children = append(dst.children, n.children[i])
			}
		}
	}
	var keep node
	keep.leaf = n.leaf
	take(groupA, &keep)
	take(groupB, sib)
	n.rects, n.entries, n.children = keep.rects, keep.entries, keep.children
	return sib
}

// Search calls fn for every entry whose rectangle intersects the window.
// Returning false stops the search.
func (t *Tree) Search(window Rect, fn func(Entry) bool) {
	t.searchNode(t.root, window, fn)
}

func (t *Tree) searchNode(n *node, window Rect, fn func(Entry) bool) bool {
	for i, r := range n.rects {
		if !r.Intersects(window) {
			continue
		}
		if n.leaf {
			if !fn(n.entries[i]) {
				return false
			}
		} else if !t.searchNode(n.children[i], window, fn) {
			return false
		}
	}
	return true
}

// SearchContained calls fn for entries entirely inside the window.
func (t *Tree) SearchContained(window Rect, fn func(Entry) bool) {
	t.Search(window, func(e Entry) bool {
		if window.Contains(e.Rect) {
			return fn(e)
		}
		return true
	})
}

// Nearest returns the k entries closest to (x, y) by rectangle distance,
// nearest first.
func (t *Tree) Nearest(x, y float64, k int) []Entry {
	if k <= 0 {
		return nil
	}
	type cand struct {
		e Entry
		d float64
	}
	var found []cand
	worstOf := func() float64 {
		if len(found) < k {
			return math.Inf(1)
		}
		return found[len(found)-1].d
	}
	var visit func(n *node)
	visit = func(n *node) {
		type branch struct {
			i int
			d float64
		}
		branches := make([]branch, 0, len(n.rects))
		for i, r := range n.rects {
			branches = append(branches, branch{i, r.distSq(x, y)})
		}
		sort.Slice(branches, func(a, b int) bool { return branches[a].d < branches[b].d })
		for _, br := range branches {
			if br.d > worstOf() {
				return
			}
			if n.leaf {
				found = append(found, cand{n.entries[br.i], br.d})
				sort.Slice(found, func(a, b int) bool { return found[a].d < found[b].d })
				if len(found) > k {
					found = found[:k]
				}
			} else {
				visit(n.children[br.i])
			}
		}
	}
	visit(t.root)
	out := make([]Entry, len(found))
	for i, c := range found {
		out[i] = c.e
	}
	return out
}

// Delete removes the entry with the exact rectangle and OID, condensing the
// tree (underflowed nodes are dissolved and their entries re-inserted).
func (t *Tree) Delete(r Rect, oid storage.OID) error {
	path, idx := t.findLeaf(t.root, nil, r, oid)
	if path == nil {
		return ErrNotFound
	}
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	leaf.rects = append(leaf.rects[:idx], leaf.rects[idx+1:]...)
	t.count--
	t.condense(path)
	// Shrink the root if it has a single child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	return nil
}

func (t *Tree) findLeaf(n *node, path []*node, r Rect, oid storage.OID) ([]*node, int) {
	path = append(path, n)
	if n.leaf {
		for i, e := range n.entries {
			if e.OID == oid && e.Rect == r {
				return path, i
			}
		}
		return nil, 0
	}
	for i, cr := range n.rects {
		if cr.Contains(r) || cr.Intersects(r) {
			if p, idx := t.findLeaf(n.children[i], path, r, oid); p != nil {
				return p, idx
			}
		}
	}
	return nil, 0
}

// condense removes underflowed nodes along the path and re-inserts their
// contents.
func (t *Tree) condense(path []*node) {
	type orphan struct {
		n      *node
		height int
	}
	var orphans []orphan
	for i := len(path) - 1; i > 0; i-- {
		n := path[i]
		parent := path[i-1]
		if n.size() < t.min {
			for j, c := range parent.children {
				if c == n {
					parent.children = append(parent.children[:j], parent.children[j+1:]...)
					parent.rects = append(parent.rects[:j], parent.rects[j+1:]...)
					break
				}
			}
			orphans = append(orphans, orphan{n, len(path) - i})
		} else {
			for j, c := range parent.children {
				if c == n {
					parent.rects[j] = n.mbr()
					break
				}
			}
		}
	}
	for _, o := range orphans {
		t.reinsert(o.n, o.height)
	}
}

func (t *Tree) reinsert(n *node, height int) {
	if n.leaf {
		for _, e := range n.entries {
			t.insertEntry(e, 1)
		}
		return
	}
	for _, c := range n.children {
		t.insertSubtree(c, height-1)
	}
}
