package exec

import (
	"fmt"
	"strings"
	"time"

	"mood/internal/algebra"
	"mood/internal/optimizer"
)

// EXPLAIN ANALYZE instrumentation: every operator is wrapped with a stats
// shim that accumulates, per Open/Next/Close call, the simulated page reads
// and wall time spent inside it — children included, since their calls nest
// within the parent's. The per-operator ("self") figures fall out at report
// time as a node's cumulative total minus its direct children's. The
// wrappers exist only on the analyzed pipeline; plain Execute pays no
// per-row instrumentation cost.
//
// With the object cache and prefetcher on, the same delta scheme attributes
// cache hits/misses and readahead page loads per operator. Cache hits do
// not touch the disk, so the pages figures still equal the simulated read
// delta; readahead loads that land between operator calls are settled by
// ExecuteAnalyzed's quiesce step, which charges them to the root.

// opStats accumulates one operator's cumulative counters.
type opStats struct {
	rowsOut    int64
	batches    int64
	pages      int64
	hits       int64
	misses     int64
	prefetched int64
	crefs      int64
	cpages     int64
	elapsed    time.Duration
}

// analyzeCtx supplies the counter sources to every stats wrapper of one
// analyzed execution. The cache/prefetch funcs are never nil (zero stubs
// stand in when the feature is off); the On flags gate rendering.
type analyzeCtx struct {
	pages      func() int64
	hits       func() int64
	misses     func() int64
	prefetched func() int64
	crefs      func() int64
	cpages     func() int64
	cacheOn    bool
	prefetchOn bool
	clusterOn  bool
}

// snap is one instant of every counter source.
type snap struct {
	p, h, m, f, cr, cp int64
}

func (an *analyzeCtx) snapshot() snap {
	return snap{an.pages(), an.hits(), an.misses(), an.prefetched(), an.crefs(), an.cpages()}
}

// statsOp wraps an operator, charging pages, cache activity, and wall time
// spent inside its calls (nested child calls included) to st.
type statsOp struct {
	inner optimizer.Operator
	an    *analyzeCtx
	st    *opStats
}

func (s *statsOp) settle(start time.Time, s0 snap) {
	s1 := s.an.snapshot()
	s.st.pages += s1.p - s0.p
	s.st.hits += s1.h - s0.h
	s.st.misses += s1.m - s0.m
	s.st.prefetched += s1.f - s0.f
	s.st.crefs += s1.cr - s0.cr
	s.st.cpages += s1.cp - s0.cp
	s.st.elapsed += time.Since(start)
}

func (s *statsOp) Open() error {
	start := time.Now()
	s0 := s.an.snapshot()
	err := s.inner.Open()
	s.settle(start, s0)
	return err
}

func (s *statsOp) Next() (algebra.Row, bool, error) {
	start := time.Now()
	s0 := s.an.snapshot()
	row, ok, err := s.inner.Next()
	s.settle(start, s0)
	if ok {
		s.st.rowsOut++
	}
	return row, ok, err
}

// NextBatch keeps the batch flow alive through the instrumentation layer:
// without it, the adapter in nextBatch would silently demote every analyzed
// pipeline to row-at-a-time, and EXPLAIN ANALYZE would measure a different
// execution than the one plain Execute runs.
func (s *statsOp) NextBatch(b *RowBatch) (int, error) {
	start := time.Now()
	s0 := s.an.snapshot()
	n, err := nextBatch(s.inner, b)
	s.settle(start, s0)
	s.st.rowsOut += int64(n)
	if n > 0 {
		s.st.batches++
	}
	return n, err
}

func (s *statsOp) Close() error {
	start := time.Now()
	s0 := s.an.snapshot()
	err := s.inner.Close()
	s.settle(start, s0)
	return err
}

// OpReport is one node of the EXPLAIN ANALYZE tree.
type OpReport struct {
	Plan    optimizer.Plan
	RowsIn  int64 // sum of the direct children's rows out
	RowsOut int64
	// Batches counts the non-empty NextBatch calls observed at this
	// operator; zero when the node was driven row-at-a-time.
	Batches int64
	// CompiledSet marks operators that participate in predicate/projection
	// compilation; Compiled then reports whether the expression fully
	// lowered to a fused closure (false = interpreter fallback).
	CompiledSet bool
	Compiled    bool
	// Access names the physical access path a join operator ran
	// (forward/backward/joinindex/hash/fusion); empty for non-joins.
	Access string
	// Self figures exclude the children's cumulative shares; Cum figures
	// include them.
	SelfPages int64
	CumPages  int64
	// Object-cache hits/misses and readahead loads observed inside this
	// operator's calls. A hit skips the page fetch entirely, so hits never
	// contribute to the pages figures.
	SelfHits       int64
	CumHits        int64
	SelfMisses     int64
	CumMisses      int64
	SelfPrefetched int64
	CumPrefetched  int64
	// Clustering-tracer activity inside this operator's calls: references
	// resolved through batched fetches and the distinct (post-forwarding)
	// pages they landed on — pages/refs is the operator's measured locality.
	SelfClusterRefs  int64
	CumClusterRefs   int64
	SelfClusterPages int64
	CumClusterPages  int64
	SelfTime         time.Duration
	CumTime          time.Duration
	// Workers holds per-worker rows/pages for parallel (exchange) operators;
	// nil for serial nodes. Pages counts the fetches a worker issued, buffer
	// hits included, so the sum can exceed the node's simulated read delta.
	Workers []WorkerStat
	Kids    []*OpReport
}

// Analysis is the instrumented execution report of one EXPLAIN ANALYZE.
type Analysis struct {
	Root *OpReport
	// TotalPages is the root's cumulative simulated page reads; it matches
	// the DiskSim read-counter delta across the execution (readahead
	// included — ExecuteAnalyzed quiesces the prefetcher before the final
	// snapshot).
	TotalPages int64
	TotalTime  time.Duration
	// Cache totals across the execution; rendered only when the
	// corresponding feature flags are set.
	CacheHits       int64
	CacheMisses     int64
	Prefetched      int64
	CacheEnabled    bool
	PrefetchEnabled bool
	// Clustering totals (rendered as clustered=refs/pages when tracing is
	// on): references resolved through batched fetches and distinct target
	// pages. After a successful reorganization the pages figure drops for
	// the same refs figure.
	ClusterRefs    int64
	ClusterPages   int64
	ClusterEnabled bool
	// ShardPages holds each shard's simulated read delta across the
	// execution (nil on a single-store database). Both it and TotalPages
	// are measured over the same post-quiesce window, so the invariant
	// TotalPages == Σ ShardPages holds exactly.
	ShardPages []int64
	// Plan-cache counters (lifetime totals of the session's cache, not
	// per-query): rendered as plancache=hits/misses when the cache is on.
	PlanCacheEnabled bool
	PlanCacheHits    int64
	PlanCacheMisses  int64
}

// ExecuteAnalyzed runs a plan through the streaming pipeline with
// per-operator instrumentation, returning both the result collection and
// the analysis tree. Page attribution requires the Executor's Pages hook;
// without it page counts report as zero.
func (e *Executor) ExecuteAnalyzed(p optimizer.Plan) (*algebra.Collection, *Analysis, error) {
	zero := func() int64 { return 0 }
	an := &analyzeCtx{
		pages: e.Pages, hits: e.CacheHits, misses: e.CacheMisses, prefetched: e.Prefetched,
		crefs: e.ClusterRefs, cpages: e.ClusterPages,
		cacheOn:    e.CacheHits != nil,
		prefetchOn: e.Prefetched != nil,
		clusterOn:  e.ClusterRefs != nil && e.ClusterPages != nil,
	}
	if an.pages == nil {
		an.pages = zero
	}
	if an.hits == nil {
		an.hits = zero
	}
	if an.misses == nil {
		an.misses = zero
	}
	if an.prefetched == nil {
		an.prefetched = zero
	}
	if an.crefs == nil {
		an.crefs = zero
	}
	if an.cpages == nil {
		an.cpages = zero
	}
	root, err := e.compileNode(p, an)
	if err != nil {
		return nil, nil, err
	}
	p0 := an.pages()
	var s0 []int64
	if e.ShardPages != nil {
		s0 = e.ShardPages()
	}
	var coll *algebra.Collection
	if e.RowMode {
		coll, err = drainRows(root.op, root.hdr)
	} else {
		coll, err = drainOp(root.op, root.hdr)
	}
	if err != nil {
		return nil, nil, err
	}
	if e.Quiesce != nil {
		// Readahead loads can land between operator calls, outside every
		// stats window. Wait for the in-flight ones, then charge the
		// shortfall to the root so TotalPages == disk read delta holds.
		e.Quiesce()
	}
	if delta := an.pages() - p0; delta > root.stats.pages {
		root.stats.pages = delta
	}
	var shardPages []int64
	if len(s0) > 1 {
		s1 := e.ShardPages()
		shardPages = make([]int64, len(s1))
		for i := range s1 {
			shardPages[i] = s1[i] - s0[i]
		}
	}
	rep := buildReport(root)
	return coll, &Analysis{
		Root: rep, TotalPages: rep.CumPages, TotalTime: rep.CumTime,
		CacheHits: rep.CumHits, CacheMisses: rep.CumMisses, Prefetched: rep.CumPrefetched,
		CacheEnabled: an.cacheOn, PrefetchEnabled: an.prefetchOn,
		ClusterRefs: rep.CumClusterRefs, ClusterPages: rep.CumClusterPages,
		ClusterEnabled: an.clusterOn,
		ShardPages:     shardPages,
	}, nil
}

// predicateCompiled is implemented by operators that take part in
// predicate/projection compilation; active says the operator looked the
// expression up in the query registry, full says the lookup produced a
// fused closure rather than the interpreter fallback.
type predicateCompiled interface {
	compiledPredicate() (active, full bool)
}

// accessPather is implemented by the join operators; the returned tag names
// the physical access path in the EXPLAIN ANALYZE report.
type accessPather interface {
	accessPath() string
}

func buildReport(c *compiled) *OpReport {
	r := &OpReport{
		Plan:            c.plan,
		RowsOut:         c.stats.rowsOut,
		Batches:         c.stats.batches,
		CumPages:        c.stats.pages,
		CumHits:         c.stats.hits,
		CumMisses:       c.stats.misses,
		CumPrefetched:   c.stats.prefetched,
		CumClusterRefs:  c.stats.crefs,
		CumClusterPages: c.stats.cpages,
		CumTime:         c.stats.elapsed,
	}
	if ws, ok := c.raw.(workerStatser); ok {
		r.Workers = ws.WorkerStats()
	}
	if pc, ok := c.raw.(predicateCompiled); ok {
		if active, full := pc.compiledPredicate(); active {
			r.CompiledSet = true
			r.Compiled = full
		}
	}
	if ap, ok := c.raw.(accessPather); ok {
		r.Access = ap.accessPath()
	}
	var kidPages, kidHits, kidMisses, kidPrefetched, kidCRefs, kidCPages int64
	var kidTime time.Duration
	for _, k := range c.kids {
		kr := buildReport(k)
		r.Kids = append(r.Kids, kr)
		r.RowsIn += kr.RowsOut
		kidPages += kr.CumPages
		kidHits += kr.CumHits
		kidMisses += kr.CumMisses
		kidPrefetched += kr.CumPrefetched
		kidCRefs += kr.CumClusterRefs
		kidCPages += kr.CumClusterPages
		kidTime += kr.CumTime
	}
	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		return v
	}
	r.SelfPages = clamp(r.CumPages - kidPages)
	r.SelfHits = clamp(r.CumHits - kidHits)
	r.SelfMisses = clamp(r.CumMisses - kidMisses)
	r.SelfPrefetched = clamp(r.CumPrefetched - kidPrefetched)
	r.SelfClusterRefs = clamp(r.CumClusterRefs - kidCRefs)
	r.SelfClusterPages = clamp(r.CumClusterPages - kidCPages)
	r.SelfTime = r.CumTime - kidTime
	if r.SelfTime < 0 {
		r.SelfTime = 0
	}
	return r
}

// Render formats the analysis as the plan tree annotated with per-operator
// rows, simulated page reads, cache activity (when the cache is on), and
// wall time.
func (a *Analysis) Render() string {
	var sb strings.Builder
	renderReport(&sb, a.Root, "", a.CacheEnabled, a.PrefetchEnabled, a.ClusterEnabled)
	sb.WriteString("total: pages=" + fmt.Sprint(a.TotalPages))
	if len(a.ShardPages) > 1 {
		sb.WriteString(" shards=[")
		for i, p := range a.ShardPages {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", p)
		}
		sb.WriteByte(']')
	}
	if a.CacheEnabled {
		fmt.Fprintf(&sb, " cache=%d/%d", a.CacheHits, a.CacheMisses)
	}
	if a.PrefetchEnabled {
		fmt.Fprintf(&sb, " prefetched=%d", a.Prefetched)
	}
	if a.ClusterEnabled {
		fmt.Fprintf(&sb, " clustered=%d/%d", a.ClusterRefs, a.ClusterPages)
	}
	if a.PlanCacheEnabled {
		fmt.Fprintf(&sb, " plancache=%d/%d", a.PlanCacheHits, a.PlanCacheMisses)
	}
	fmt.Fprintf(&sb, " time=%s\n", fmtDur(a.TotalTime))
	return sb.String()
}

func renderReport(sb *strings.Builder, r *OpReport, indent string, cacheOn, prefetchOn, clusterOn bool) {
	extra := ""
	if r.Access != "" {
		extra += " access=" + r.Access
	}
	if cacheOn {
		extra += fmt.Sprintf(" cache=%d/%d", r.SelfHits, r.SelfMisses)
	}
	if prefetchOn {
		extra += fmt.Sprintf(" prefetched=%d", r.SelfPrefetched)
	}
	if clusterOn && r.SelfClusterRefs > 0 {
		extra += fmt.Sprintf(" clustered=%d/%d", r.SelfClusterRefs, r.SelfClusterPages)
	}
	if r.Batches > 0 {
		extra += fmt.Sprintf(" batches=%d rows/batch=%.1f",
			r.Batches, float64(r.RowsOut)/float64(r.Batches))
	}
	if r.CompiledSet {
		extra += fmt.Sprintf(" compiled=%t", r.Compiled)
	}
	if len(r.Kids) == 0 {
		fmt.Fprintf(sb, "%s%s  (rows=%d pages=%d%s time=%s)\n",
			indent, optimizer.Describe(r.Plan), r.RowsOut, r.SelfPages, extra, fmtDur(r.SelfTime))
	} else {
		fmt.Fprintf(sb, "%s%s  (rows in=%d out=%d pages=%d%s time=%s)\n",
			indent, optimizer.Describe(r.Plan), r.RowsIn, r.RowsOut, r.SelfPages, extra, fmtDur(r.SelfTime))
	}
	for i, w := range r.Workers {
		fmt.Fprintf(sb, "%s  [worker %d] rows=%d pages=%d\n", indent, i, w.Rows, w.Pages)
	}
	for _, k := range r.Kids {
		renderReport(sb, k, indent+"  ", cacheOn, prefetchOn, clusterOn)
	}
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
