package kernel_test

import (
	"strings"
	"testing"

	"mood/internal/experiments"
	"mood/internal/kernel"
	"mood/internal/optimizer"
)

// The EXPLAIN tests live in an external test package so they can use
// experiments.BuildKernelEnv (which imports kernel) for the paper's example
// schema and data.

func buildEnv(t *testing.T) *kernel.DB {
	t.Helper()
	db, _, err := experiments.BuildKernelEnv(0.1)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExplainRendersPlan checks plain EXPLAIN: the statement returns the
// optimizer's rendered access plan without executing the query, and clears
// any previous analysis.
func TestExplainRendersPlan(t *testing.T) {
	db := buildEnv(t)

	res, err := db.Execute(`EXPLAIN SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("EXPLAIN result shape: %d rows", len(res.Rows))
	}
	got := res.Rows[0][0].Str
	if want := optimizer.Render(db.LastPlan); got != want {
		t.Errorf("EXPLAIN output differs from Render(LastPlan):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if db.LastAnalyze != nil {
		t.Error("plain EXPLAIN should leave LastAnalyze nil")
	}
	if strings.Contains(got, "pages=") {
		t.Errorf("plain EXPLAIN must not carry runtime annotations:\n%s", got)
	}
}

// TestExplainAnalyzePageTotalsMatchDisk is the kernel-level acceptance
// check: EXPLAIN ANALYZE on the paper's Example 8.1/8.2 path queries
// reports per-operator rows and page reads, and the reported page total
// equals the DiskSim read-counter delta across the statement.
func TestExplainAnalyzePageTotalsMatchDisk(t *testing.T) {
	db := buildEnv(t)

	for _, tc := range []struct {
		name, query string
	}{
		{"example82", `SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`},
		{"example81", `SELECT v FROM Vehicle v WHERE v.manufacturer.name = 'BMW' AND v.drivetrain.engine.cylinders = 2`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Row-count oracle: the plain SELECT.
			base, err := db.Execute(tc.query)
			if err != nil {
				t.Fatal(err)
			}

			if err := db.Pool.EvictAll(); err != nil {
				t.Fatal(err)
			}
			scope := db.Disk.Scope()
			res, err := db.Execute(`EXPLAIN ANALYZE ` + tc.query)
			if err != nil {
				t.Fatal(err)
			}
			delta := scope.Delta()

			an := db.LastAnalyze
			if an == nil {
				t.Fatal("EXPLAIN ANALYZE did not populate LastAnalyze")
			}
			if an.TotalPages != delta.Reads() {
				t.Errorf("analysis reports %d pages, DiskSim delta is %d", an.TotalPages, delta.Reads())
			}
			if an.TotalPages == 0 {
				t.Error("expected nonzero page reads on a cold buffer pool")
			}
			if an.Root.RowsOut != int64(len(base.Rows)) {
				t.Errorf("root rows out = %d, plain SELECT returned %d rows", an.Root.RowsOut, len(base.Rows))
			}

			out := res.Rows[0][0].Str
			for _, marker := range []string{"rows", "pages=", "time=", "total: pages="} {
				if !strings.Contains(out, marker) {
					t.Errorf("EXPLAIN ANALYZE output lacks %q:\n%s", marker, out)
				}
			}
			// The vectorized pipeline annotates batch counts and the
			// predicate-compilation outcome on the operators that carry them.
			for _, marker := range []string{"batches=", "rows/batch=", "compiled="} {
				if !strings.Contains(out, marker) {
					t.Errorf("EXPLAIN ANALYZE output lacks %q:\n%s", marker, out)
				}
			}
			// Every operator line in the plan render must appear annotated.
			planLines := strings.Count(optimizer.Render(db.LastPlan), "\n")
			annotated := 0
			for _, line := range strings.Split(out, "\n") {
				if strings.Contains(line, "pages=") && !strings.HasPrefix(line, "total:") {
					annotated++
				}
			}
			if annotated == 0 || annotated > planLines+1 {
				t.Errorf("per-operator annotation count %d implausible for plan:\n%s", annotated, out)
			}
		})
	}
}
