package storage

import "fmt"

// OID is a physical object identifier: shard, file, page and slot packed
// into a 64-bit word. MOOD objects carry their OID for the lifetime of the
// object; references between objects are stored as OIDs and chased by the
// Deref algebra operator and the traversal joins.
//
// Layout (most significant first): 4-bit shard, 12-bit file, 32-bit page,
// 16-bit slot. The shard field makes routing in a ShardedStore a pure
// function of the OID: every read goes straight to the store that minted the
// identifier, with no directory lookup. A single-store deployment always
// mints shard 0, so the layout is backward compatible with the original
// 16-bit file field for any file id below 4096.
type OID uint64

// NilOID is the null reference.
const NilOID OID = 0

// MaxShards is the number of independent stores the OID shard field can
// address.
const MaxShards = 16

// maxFileID is the largest file id the 12-bit file field can hold.
const maxFileID FileID = 1<<12 - 1

const (
	oidShardShift = 60
	oidFileMask   = OID(maxFileID) << 48
)

// MakeOID packs the coordinates of a record into an OID (shard 0).
func MakeOID(file FileID, page PageID, slot SlotID) OID {
	return OID(uint64(file)<<48 | uint64(page)<<16 | uint64(slot))
}

// ShardTag returns the bit pattern a store ORs into every OID it mints to
// claim the identifier for the given shard.
func ShardTag(shard int) OID { return OID(shard) << oidShardShift }

// Shard returns the shard component.
func (o OID) Shard() int { return int(o >> oidShardShift) }

// File returns the file component.
func (o OID) File() FileID { return FileID((o & oidFileMask) >> 48) }

// Page returns the page component.
func (o OID) Page() PageID { return PageID(o >> 16) }

// Slot returns the slot component.
func (o OID) Slot() SlotID { return SlotID(o) }

// IsNil reports whether the OID is the null reference.
func (o OID) IsNil() bool { return o == NilOID }

func (o OID) String() string {
	if o.IsNil() {
		return "oid(nil)"
	}
	if s := o.Shard(); s != 0 {
		return fmt.Sprintf("oid(s%d.%d.%d.%d)", s, o.File(), o.Page(), o.Slot())
	}
	return fmt.Sprintf("oid(%d.%d.%d)", o.File(), o.Page(), o.Slot())
}
