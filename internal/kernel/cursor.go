package kernel

import (
	"errors"
	"fmt"

	"mood/internal/object"
	"mood/internal/sql"
	"mood/internal/storage"
)

// Section 9.4: "A cursor like mechanism which exists commonly in RDBMSs is
// designed for displaying objects. ... The kernel gets the stored
// representation of the object from the database and returns a pointer to a
// buffer area each element of which specifies a name, a type and a value of
// the object's attributes. ... It is also possible to sequence back and
// forth through the returned objects using the cursor functions provided by
// the kernel."

// AttrView is one element of the cursor's buffer area: attribute name,
// type, and value.
type AttrView struct {
	Name  string
	Type  string
	Value object.Value
}

// ObjectView is the kernel's presentation of one object: its identifier,
// run-time class (resolved through the catalog), and attribute buffer.
type ObjectView struct {
	OID   storage.OID
	Class string
	Attrs []AttrView
}

func (ov *ObjectView) String() string {
	s := fmt.Sprintf("%s %s {", ov.Class, ov.OID)
	for i, a := range ov.Attrs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %s = %s", a.Name, a.Type, a.Value)
	}
	return s + "}"
}

// Describe builds the ObjectView for one object, identifying its type and
// value at run time using the MOOD catalog.
func (db *DB) Describe(oid storage.OID) (*ObjectView, error) {
	v, class, err := db.Cat.GetObject(oid)
	if err != nil {
		return nil, err
	}
	attrs, err := db.Cat.AllAttributes(class)
	if err != nil {
		return nil, err
	}
	ov := &ObjectView{OID: oid, Class: class}
	for _, f := range attrs {
		val, _ := v.Field(f.Name)
		ov.Attrs = append(ov.Attrs, AttrView{Name: f.Name, Type: f.Type.String(), Value: val})
	}
	return ov, nil
}

// ErrCursorExhausted is returned by Next/Prev at the ends of the result.
var ErrCursorExhausted = errors.New("kernel: cursor exhausted")

// Cursor sequences back and forth through the objects a query returned.
type Cursor struct {
	db   *DB
	oids []storage.OID
	pos  int // index of the element Next would return
}

// OpenCursor runs a SELECT whose projection is a bare range variable and
// returns a cursor over the resulting objects.
func (db *DB) OpenCursor(query string) (*Cursor, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("kernel: cursors require a SELECT, got %T", st)
	}
	res, err := db.execSelect(sel)
	if err != nil {
		return nil, err
	}
	cur := &Cursor{db: db}
	for _, oid := range res.OIDs {
		if !oid.IsNil() {
			cur.oids = append(cur.oids, oid)
		}
	}
	return cur, nil
}

// Len returns the number of objects in the cursor.
func (c *Cursor) Len() int { return len(c.oids) }

// Next returns the next object's view, advancing the cursor.
func (c *Cursor) Next() (*ObjectView, error) {
	if c.pos >= len(c.oids) {
		return nil, ErrCursorExhausted
	}
	ov, err := c.db.Describe(c.oids[c.pos])
	if err != nil {
		return nil, err
	}
	c.pos++
	return ov, nil
}

// Prev steps the cursor back and returns that object's view.
func (c *Cursor) Prev() (*ObjectView, error) {
	if c.pos <= 1 {
		return nil, ErrCursorExhausted
	}
	c.pos--
	return c.db.Describe(c.oids[c.pos-1])
}

// Rewind resets the cursor to the first object.
func (c *Cursor) Rewind() { c.pos = 0 }
