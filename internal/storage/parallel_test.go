package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelBufferPoolSmoke hammers the sharded pool from N goroutines
// fetching/unpinning overlapping page sets while another goroutine flips the
// flush hook and samples HitRate/Stats mid-run. Run under -race this is the
// concurrency smoke test the parallel executor relies on.
func TestParallelBufferPoolSmoke(t *testing.T) {
	bp, disk := newTestPool(t, 256)

	const npages = 512
	ids := make([]PageID, npages)
	buf := make([]byte, disk.PageSize())
	for i := range ids {
		ids[i] = disk.AllocPage()
		buf[0] = byte(i)
		if err := disk.WritePage(ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	var hooked atomic.Int64
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 800; i++ {
				k := rng.Intn(npages)
				pg, err := bp.Fetch(ids[k])
				if err != nil {
					errs <- fmt.Errorf("worker %d: fetch %d: %v", w, ids[k], err)
					return
				}
				if got := pg.Bytes()[0]; got != byte(k) {
					errs <- fmt.Errorf("worker %d: page %d holds %d, want %d", w, ids[k], got, byte(k))
					return
				}
				// Occasionally dirty a page so evictions exercise the hook.
				dirty := i%97 == 0
				if err := bp.Unpin(ids[k], dirty); err != nil {
					errs <- fmt.Errorf("worker %d: unpin: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Mid-run hook swaps and stats reads must be safe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			bp.SetFlushHook(func(uint32) error { hooked.Add(1); return nil })
			_ = bp.HitRate()
			_, _, _ = bp.Stats()
			bp.SetFlushHook(nil)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if n := bp.PinnedPages(); n != 0 {
		t.Errorf("after smoke run, %d pages still pinned", n)
	}
	hits, misses, _ := bp.Stats()
	if hits+misses != workers*800 {
		t.Errorf("hits+misses = %d, want %d", hits+misses, workers*800)
	}
	if hr := bp.HitRate(); hr < 0 || hr > 1 {
		t.Errorf("HitRate = %v out of range", hr)
	}
}

// TestParallelFetchSameMissingPage checks the per-frame loading latch: many
// goroutines fetching the same absent page must trigger exactly one disk
// read, and every caller must see the fully loaded content.
func TestParallelFetchSameMissingPage(t *testing.T) {
	bp, disk := newTestPool(t, 64)
	id := disk.AllocPage()
	buf := make([]byte, disk.PageSize())
	copy(buf, []byte("latched"))
	if err := disk.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}

	before := disk.Stats().Reads()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			pg, err := bp.Fetch(id)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.HasPrefix(pg.Bytes(), []byte("latched")) {
				errs <- fmt.Errorf("worker %d observed a partially loaded page", w)
				return
			}
			errs <- bp.Unpin(id, false)
		}(w)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := disk.Stats().Reads() - before; got != 1 {
		t.Errorf("concurrent fetch of one page cost %d disk reads, want 1", got)
	}
	if n := bp.PinnedPages(); n != 0 {
		t.Errorf("%d pages still pinned", n)
	}
}

// TestParallelStoreReaders runs concurrent Get and Scan callers over one
// file, including an overflow record, against the RWMutex-protected store.
func TestParallelStoreReaders(t *testing.T) {
	s, _, _ := newTestStore(t, 128)
	f, err := s.Files().CreateFile("conc")
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[OID][]byte)
	var oids []OID
	for i := 0; i < 200; i++ {
		data := []byte(fmt.Sprintf("record-%04d", i))
		if i == 117 { // spill one record into an overflow chain
			data = bytes.Repeat([]byte{byte(i)}, 6000)
		}
		oid, err := s.Insert(f, data)
		if err != nil {
			t.Fatal(err)
		}
		want[oid] = data
		oids = append(oids, oid)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				seen := 0
				err := s.Scan(f, func(oid OID, data []byte) bool {
					if !bytes.Equal(data, want[oid]) {
						errs <- fmt.Errorf("scan worker %d: %s mismatched", w, oid)
						return false
					}
					seen++
					return true
				})
				if err != nil {
					errs <- err
				} else if seen != len(want) {
					errs <- fmt.Errorf("scan worker %d saw %d records, want %d", w, seen, len(want))
				}
				return
			}
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				oid := oids[rng.Intn(len(oids))]
				data, err := s.Get(oid)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(data, want[oid]) {
					errs <- fmt.Errorf("get worker %d: %s mismatched", w, oid)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestParallelPageListMatchesChain checks PageList against the NextPage
// chain, through growth (warm cache) and a directory re-open (cold cache).
func TestParallelPageListMatchesChain(t *testing.T) {
	s, bp, _ := newTestStore(t, 64)
	f, err := s.Files().CreateFile("plist")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 300)
	for i := 0; i < 120; i++ { // enough to span several pages
		if _, err := s.Insert(f, payload); err != nil {
			t.Fatal(err)
		}
	}

	chain := func(f *File) []PageID {
		var out []PageID
		for pid := s.FirstScanPage(f); pid != 0; {
			_, next, err := s.ScanPage(f, pid)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, pid)
			pid = next
		}
		return out
	}

	got, err := s.PageList(f)
	if err != nil {
		t.Fatal(err)
	}
	if want := chain(f); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("warm PageList = %v, chain = %v", got, want)
	}
	if len(got) != f.NumPages() {
		t.Fatalf("PageList has %d pages, file reports %d", len(got), f.NumPages())
	}

	// A manager re-opened from the directory starts with a cold cache; the
	// list must be rebuilt from the chain and then stay correct as the file
	// grows further.
	fm2, err := OpenFileManager(bp, s.Files().DirPage())
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewObjectStore(bp, fm2)
	f2, err := fm2.OpenFile("plist")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s2.PageList(f2)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(cold) != fmt.Sprint(got) {
		t.Fatalf("cold PageList = %v, want %v", cold, got)
	}
	for i := 0; i < 40; i++ {
		if _, err := s2.Insert(f2, payload); err != nil {
			t.Fatal(err)
		}
	}
	grown, err := s2.PageList(f2)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cold) + (f2.NumPages() - len(cold)); len(grown) != want || len(grown) <= len(cold) {
		t.Fatalf("grown PageList has %d pages, file reports %d", len(grown), f2.NumPages())
	}
	if fmt.Sprint(grown[:len(cold)]) != fmt.Sprint(cold) {
		t.Fatalf("growth changed the existing prefix:\n%v\n%v", grown[:len(cold)], cold)
	}
}
