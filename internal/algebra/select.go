package algebra

import (
	"mood/internal/catalog"
	"mood/internal/expr"
	"mood/internal/object"
)

// Select selects the rows of arg satisfying predicate P, with the return
// types of Table 1:
//
//	arg     Extent          Set   List   Named Obj.
//	return  Extent or Set   Set   List   Named Obj.
//
// asSet controls the Extent case's choice between Extent and Set output.
func (a *Algebra) Select(arg *Collection, p expr.Expr, asSet bool) (*Collection, error) {
	outKind := arg.Kind
	if arg.Kind == ExtentKind && asSet {
		outKind = SetKind
	}
	out := &Collection{Kind: outKind, Name: arg.Name, Class: arg.Class}
	re := a.NewRowEvaluator()
	for i := range arg.Rows {
		row := arg.Rows[i]
		ok, err := re.EvalBool(row, p)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// SimplePredicate is the triplet <P1, θ, oprnd> of Section 4.1 restricted
// to an indexable form: an atomic attribute of the bound class compared
// with a constant.
type SimplePredicate struct {
	Attribute string
	Op        expr.CmpOp
	Constant  object.Value
	Constant2 object.Value // BETWEEN upper bound
	Between   bool
}

// IndSel selects the set of object identifiers satisfying the simple
// predicate from the extent of the named class (or group of extents: the
// IS-A closure) using an index of the requested kind — IndSel(arg,
// index_type, P). The return value is a Set of object identifiers, per the
// paper. ErrNoIndex is returned when no index of that kind exists on the
// attribute.
func (a *Algebra) IndSel(class, bindName string, indexKind catalog.IndexKind, p SimplePredicate) (*Collection, error) {
	oids, err := a.IndSelCandidates(class, indexKind, p)
	if err != nil {
		return nil, err
	}
	// Strict bounds and key truncation require re-checking the base
	// predicate against the stored objects.
	out := &Collection{Kind: SetKind, Name: bindName, Class: class}
	pred := a.predicateExpr(bindName, p)
	re := a.NewRowEvaluator()
	for _, oid := range oids {
		v, _, err := a.Cat.GetObject(oid)
		if err != nil {
			return nil, err
		}
		row := Row{Vars: map[string]Bound{bindName: {OID: oid, Val: v}}}
		ok, err := re.EvalBool(row, pred)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, Row{Vars: map[string]Bound{bindName: {OID: oid}}})
		}
	}
	return out, nil
}

// predicateExpr rebuilds the expression form of a simple predicate.
func (a *Algebra) predicateExpr(bindName string, p SimplePredicate) expr.Expr {
	attr := expr.Path(bindName, p.Attribute)
	if p.Between {
		return &expr.Between{E: attr, Lo: &expr.Const{Val: p.Constant}, Hi: &expr.Const{Val: p.Constant2}}
	}
	return &expr.Cmp{Op: p.Op, L: attr, R: &expr.Const{Val: p.Constant}}
}
