package storage

import (
	"sync"
	"sync/atomic"
)

// prefetchQueue bounds the number of outstanding prefetch requests; requests
// beyond it are dropped (readahead is best-effort, never backpressure).
const prefetchQueue = 256

// Prefetcher pre-loads pages into the buffer pool from a bounded pool of
// worker goroutines, overlapping simulated disk latency with the caller's
// decode work. The buffer pool's per-frame loading latch makes the overlap
// safe and single-read: when the real Fetch arrives while a prefetch load is
// in flight, it waits on the latch instead of issuing a second disk read, so
// prefetching never inflates the read counters — it only moves the waiting
// onto goroutines that have nothing better to do.
//
// Requests for already-resident pages are skipped, and the queue drops
// requests rather than block, so readahead degrades to a no-op under
// pressure instead of slowing the foreground down.
type Prefetcher struct {
	bp       *BufferPool
	ch       chan PageID
	wg       sync.WaitGroup // workers
	inflight sync.WaitGroup // accepted requests not yet completed
	loaded   atomic.Int64
	closed   atomic.Bool
}

// NewPrefetcher starts workers goroutines (min 1) over the pool. The caller
// owns the lifecycle and must Close it to stop the workers.
func NewPrefetcher(bp *BufferPool, workers int) *Prefetcher {
	if workers < 1 {
		workers = 1
	}
	p := &Prefetcher{bp: bp, ch: make(chan PageID, prefetchQueue)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for id := range p.ch {
				if !p.bp.Resident(id) {
					if _, err := p.bp.Fetch(id); err == nil {
						p.bp.Unpin(id, false)
						p.loaded.Add(1)
					}
				}
				p.inflight.Done()
			}
		}()
	}
	return p
}

// Request enqueues pages for background loading. Never blocks: resident
// pages are skipped and requests beyond the queue bound are dropped. Safe
// for concurrent callers.
func (p *Prefetcher) Request(ids ...PageID) {
	if p.closed.Load() {
		return
	}
	for _, id := range ids {
		if id == 0 || p.bp.Resident(id) {
			continue
		}
		p.inflight.Add(1)
		select {
		case p.ch <- id:
		default:
			p.inflight.Done()
		}
	}
}

// Loaded returns how many pages the prefetcher actually read into the pool
// (skipped-resident and dropped requests excluded).
func (p *Prefetcher) Loaded() int64 { return p.loaded.Load() }

// Quiesce blocks until every accepted request has completed. EXPLAIN
// ANALYZE calls it before taking its final counter snapshot so in-flight
// readahead cannot leak page reads past the measurement window.
func (p *Prefetcher) Quiesce() { p.inflight.Wait() }

// Close stops the workers after draining accepted requests. Request must
// not be called concurrently with or after Close.
func (p *Prefetcher) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.ch)
	p.wg.Wait()
}
