package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/storage"
)

// coldCatalog re-opens the environment's disk behind a small, cold buffer
// pool, so measured page accesses approximate the cost model's no-buffer
// assumption ("worst case formula where there are no page hits"). Secondary
// indexes are not rebuilt (OpenLite), so a single frame suffices; harnesses
// that need an index use coldCatalogIndexed.
func coldCatalog(env *Env, frames int) (*catalog.Catalog, *storage.DiskSim, error) {
	return coldOpen(env, frames, false)
}

// coldCatalogIndexed additionally rebuilds the secondary indexes (B+-tree
// splits pin several pages, so frames must be >= 8).
func coldCatalogIndexed(env *Env, frames int) (*catalog.Catalog, *storage.DiskSim, error) {
	if frames < 8 {
		frames = 8
	}
	return coldOpen(env, frames, true)
}

func coldOpen(env *Env, frames int, indexes bool) (*catalog.Catalog, *storage.DiskSim, error) {
	if err := env.Pool.FlushAll(); err != nil {
		return nil, nil, err
	}
	disk := env.Pool.Disk()
	// Measurements run under ESM layout accounting: extent pages are not
	// physically adjacent on ESM, so every access costs a random access —
	// the regime all the Section 5/6 formulas (and the optimizer) assume.
	disk.SetESMLayout(true)
	bp := storage.NewBufferPool(disk, frames)
	fm, err := storage.OpenFileManager(bp, env.DB.Cat.Store().Files().DirPage())
	if err != nil {
		return nil, nil, err
	}
	store := storage.NewObjectStore(bp, fm)
	var cat *catalog.Catalog
	if indexes {
		cat, err = catalog.Open(store)
	} else {
		cat, err = catalog.OpenLite(store)
	}
	if err != nil {
		return nil, nil, err
	}
	return cat, disk, nil
}

// JoinMethodSweep measures the three scan-free join strategies against
// their Section 6 cost predictions across a k_c sweep: k_c randomly
// selected vehicles are joined to their drivetrains by each method, the
// simulated disk time recorded, and the analytic prediction printed next to
// it. The paper's shape must hold: forward traversal wins at small k_c
// (objects in memory), the scan-based strategies at large k_c.
func JoinMethodSweep(w io.Writer, env *Env) error {
	section(w, "Join-method sweep: measured (simulated disk ms) vs predicted (Section 6)")
	fmt.Fprintf(w, "%-10s %-12s %14s %14s %16s\n", "k_c", "method", "predicted", "measured", "winner(pred/meas)")

	fractions := []float64{0.001, 0.01, 0.1, 0.5, 1.0}
	methods := []cost.JoinMethod{cost.ForwardTraversal, cost.BackwardTraversal, cost.HashPartition}
	totalV := len(env.DB.Vehicles)

	// The Section 6 formulas model k_c objects picked at random; a
	// deterministic shuffle removes the generator's sequential layout.
	shuffled := append([]storage.OID(nil), env.DB.Vehicles...)
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	for _, frac := range fractions {
		kc := int(frac * float64(totalV))
		if kc < 1 {
			kc = 1
		}
		// Predictions for a temporary collection of k_c vehicles.
		in := cost.JoinInput{
			Class: "Vehicle", Attribute: "drivetrain",
			Kc: float64(kc), Kd: float64(len(env.DB.DriveTrains)),
			CAccessed: true,
		}
		predicted := map[cost.JoinMethod]float64{}
		var err error
		if predicted[cost.ForwardTraversal], err = env.Stats.ForwardCost(in); err != nil {
			return err
		}
		if predicted[cost.BackwardTraversal], err = env.Stats.BackwardCost(in); err != nil {
			return err
		}
		if predicted[cost.HashPartition], err = env.Stats.HashPartitionCost(in); err != nil {
			return err
		}

		measured := map[cost.JoinMethod]float64{}
		for _, m := range methods {
			// A minimal pool forces the no-buffer-hit regime the Section 6
			// formulas assume.
			cat, disk, err := coldCatalog(env, 1)
			if err != nil {
				return err
			}
			a := algebra.New(cat)
			// Left side: k_c vehicles as an in-memory temporary (values
			// preloaded, as after a prior selection).
			left := a.BindSet("v", "Vehicle", shuffled[:kc])
			if err := a.Materialize(left); err != nil {
				return err
			}
			right, err := a.BindDirect("VehicleDriveTrain", "d")
			if err != nil {
				return err
			}
			disk.ResetStats()
			out, err := a.Join(left, right, algebra.JoinSpec{
				Method: m, LeftVar: "v", Attribute: "drivetrain", RightVar: "d",
			})
			if err != nil {
				return err
			}
			if out.Len() != kc {
				return fmt.Errorf("join sweep: %v produced %d rows, want %d", m, out.Len(), kc)
			}
			measured[m] = disk.Stats().TimeMs
		}

		bestPred, bestMeas := methods[0], methods[0]
		for _, m := range methods[1:] {
			if predicted[m] < predicted[bestPred] {
				bestPred = m
			}
			if measured[m] < measured[bestMeas] {
				bestMeas = m
			}
		}
		for _, m := range methods {
			fmt.Fprintf(w, "%-10d %-12s %14.1f %14.1f\n", kc, shortMethod(m), predicted[m], measured[m])
		}
		fmt.Fprintf(w, "%-10s -> predicted winner %s, measured winner %s\n\n",
			"", shortMethod(bestPred), shortMethod(bestMeas))
	}
	fmt.Fprintln(w, "note: the right side is materialized for the probe in all methods, so")
	fmt.Fprintln(w, "measured costs isolate the left-side access pattern the formulas model.")
	return nil
}

func shortMethod(m cost.JoinMethod) string {
	switch m {
	case cost.ForwardTraversal:
		return "forward"
	case cost.BackwardTraversal:
		return "backward"
	case cost.BinaryJoinIndex:
		return "bji"
	case cost.HashPartition:
		return "hash"
	}
	return "?"
}

// PathOrderingSweep measures Algorithm 8.1's benefit: Example 8.1's two
// path predicates evaluated over every vehicle with short-circuiting, in
// the F/(1-s) order versus the reverse order. Disk time is dominated by
// pointer dereferences, which the selective-first order mostly avoids.
func PathOrderingSweep(w io.Writer, env *Env) error {
	section(w, "Algorithm 8.1 ordering: P2-first (chosen) vs P1-first (reverse)")
	p2 := &expr.Cmp{Op: expr.OpEq,
		L: expr.Path("v", "manufacturer", "name"),
		R: &expr.Const{Val: object.NewString("BMW")}}
	p1 := &expr.Cmp{Op: expr.OpEq,
		L: expr.Path("v", "drivetrain", "engine", "cylinders"),
		R: &expr.Const{Val: object.NewInt(2)}}

	run := func(first, second expr.Expr) (float64, int, error) {
		cat, disk, err := coldCatalog(env, 64)
		if err != nil {
			return 0, 0, err
		}
		a := algebra.New(cat)
		vehicles, err := a.BindDirect("Vehicle", "v")
		if err != nil {
			return 0, 0, err
		}
		disk.ResetStats()
		pred := &expr.Logic{Op: expr.OpAnd, L: first, R: second}
		out, err := a.Select(vehicles, pred, false)
		if err != nil {
			return 0, 0, err
		}
		return disk.Stats().TimeMs, out.Len(), nil
	}
	chosenMs, n1, err := run(p2, p1)
	if err != nil {
		return err
	}
	reverseMs, n2, err := run(p1, p2)
	if err != nil {
		return err
	}
	if n1 != n2 {
		return fmt.Errorf("orderings disagree: %d vs %d rows", n1, n2)
	}
	fmt.Fprintf(w, "matching vehicles: %d\n", n1)
	fmt.Fprintf(w, "P2-first (Algorithm 8.1): %12.1f ms simulated I/O\n", chosenMs)
	fmt.Fprintf(w, "P1-first (reverse):       %12.1f ms simulated I/O\n", reverseMs)
	if reverseMs > 0 {
		fmt.Fprintf(w, "speedup: %.1fx\n", reverseMs/chosenMs)
	}
	fmt.Fprintln(w, "(the selective path first short-circuits almost every conjunction,")
	fmt.Fprintln(w, "skipping the second path's dereferences - the Appendix lemma's gain)")
	return nil
}

// SelectivityAccuracy compares estimated path selectivities (Section 4.1's
// formulas over c and o) with the exact fractions measured by brute force.
func SelectivityAccuracy(w io.Writer, env *Env) error {
	section(w, "Path-expression selectivity: estimated (Section 4.1) vs actual")
	fmt.Fprintf(w, "%-48s %14s %14s %10s\n", "predicate", "estimated", "actual", "ratio")

	a := algebra.New(env.DB.Cat)
	vehicles, err := a.BindDirect("Vehicle", "v")
	if err != nil {
		return err
	}
	total := float64(vehicles.Len())

	cases := []struct {
		label string
		path  cost.Path
		kind  cost.CmpKind
		c1    float64
		pred  expr.Expr
	}{
		{
			"v.drivetrain.engine.cylinders = 2",
			PaperPathP1(), cost.CmpEq, 2,
			&expr.Cmp{Op: expr.OpEq, L: expr.Path("v", "drivetrain", "engine", "cylinders"),
				R: &expr.Const{Val: object.NewInt(2)}},
		},
		{
			"v.drivetrain.engine.cylinders > 16",
			PaperPathP1(), cost.CmpGt, 16,
			&expr.Cmp{Op: expr.OpGt, L: expr.Path("v", "drivetrain", "engine", "cylinders"),
				R: &expr.Const{Val: object.NewInt(16)}},
		},
		{
			"v.manufacturer.name = 'BMW'",
			PaperPathP2(), cost.CmpEq, 0,
			&expr.Cmp{Op: expr.OpEq, L: expr.Path("v", "manufacturer", "name"),
				R: &expr.Const{Val: object.NewString("BMW")}},
		},
	}
	for _, c := range cases {
		est, err := env.Stats.PathSelectivity(c.path, c.kind, c.c1, 0)
		if err != nil {
			return err
		}
		out, err := a.Select(vehicles, c.pred, false)
		if err != nil {
			return err
		}
		actual := float64(out.Len()) / total
		ratio := 0.0
		if actual > 0 {
			ratio = est / actual
		}
		fmt.Fprintf(w, "%-48s %14.4e %14.4e %10.2f\n", c.label, est, actual, ratio)
	}
	fmt.Fprintln(w, "(ratio near 1 means the uniformity assumptions hold on this workload)")
	return nil
}

// IndexSelectionSweep demonstrates §8.1's inequality: for predicates of
// varying selectivity, the measured cost of the index path vs the scan
// path, and which one the rule picks.
func IndexSelectionSweep(w io.Writer, env *Env) error {
	if err := ensureIndex(env.DB.Cat, "sweep_weight", "Vehicle", "weight"); err != nil {
		return err
	}
	section(w, "Index-selection rule (8.1): scan vs index across predicate widths")
	fmt.Fprintf(w, "%-34s %10s %12s %12s %10s\n", "predicate", "f_s", "scan ms", "index ms", "rule picks")

	widths := []struct {
		lo, hi int32
	}{
		{800, 805}, {800, 850}, {800, 1200}, {800, 3000},
	}
	as, err := env.Stats.Attr("Vehicle", "weight")
	if err != nil {
		return err
	}
	cs, err := env.Stats.Class("Vehicle")
	if err != nil {
		return err
	}
	idxStats := indexCostStats(env, "Vehicle", "weight")
	for _, wd := range widths {
		fs := as.SelBetween(float64(wd.lo), float64(wd.hi))
		// Rule: cost_1 + RNDCOST(|C|·f_s) < SCANCOST(nbpages)?
		idxCost := env.Stats.RNGXCOST(idxStats, fs)
		useIndex := idxCost+env.Stats.Disk.RNDCOST(float64(cs.Card)*fs) < env.Stats.ScanCost(float64(cs.NbPages))

		// Measured: scan.
		cat, disk, err := coldCatalogIndexed(env, 64)
		if err != nil {
			return err
		}
		a := algebra.New(cat)
		pred := &expr.Between{
			E:  expr.Path("v", "weight"),
			Lo: &expr.Const{Val: object.NewInt(wd.lo)},
			Hi: &expr.Const{Val: object.NewInt(wd.hi)},
		}
		// The index rebuild warmed the pool; evict so the measured scan
		// really reads the extent.
		if err := cat.Store().Pool().EvictAll(); err != nil {
			return err
		}
		disk.ResetStats()
		vehicles, err := a.BindDirect("Vehicle", "v")
		if err != nil {
			return err
		}
		scanOut, err := a.Select(vehicles, pred, false)
		if err != nil {
			return err
		}
		scanMs := disk.Stats().TimeMs

		// Measured: index (cold again).
		cat2, disk2, err := coldCatalogIndexed(env, 64)
		if err != nil {
			return err
		}
		a2 := algebra.New(cat2)
		if err := cat2.Store().Pool().EvictAll(); err != nil {
			return err
		}
		disk2.ResetStats()
		idxOut, err := a2.IndSel("Vehicle", "v", catalog.BTreeIndex, algebra.SimplePredicate{
			Attribute: "weight", Between: true,
			Constant: object.NewInt(wd.lo), Constant2: object.NewInt(wd.hi),
		})
		if err != nil {
			return err
		}
		idxMs := disk2.Stats().TimeMs
		if idxOut.Len() != scanOut.Len() {
			return fmt.Errorf("index and scan disagree: %d vs %d", idxOut.Len(), scanOut.Len())
		}
		pick := "scan"
		if useIndex {
			pick = "index"
		}
		fmt.Fprintf(w, "weight BETWEEN %-5d AND %-11d %10.4f %12.1f %12.1f %10s\n",
			wd.lo, wd.hi, fs, scanMs, idxMs, pick)
	}
	fmt.Fprintln(w, "(the rule should pick whichever side measures cheaper; crossover shape)")
	return nil
}

func indexCostStats(env *Env, class, attr string) cost.BTreeStats {
	for _, ix := range env.DB.Cat.Indexes() {
		if ix.Class == class && ix.Attribute == attr && ix.BTree() != nil {
			st := ix.BTree().Stats()
			return cost.BTreeStats{Order: st.Order, Levels: st.Levels, Leaves: st.Leaves, KeySize: st.KeySize}
		}
	}
	return cost.BTreeStats{Order: 100, Levels: 2, Leaves: 10}
}
