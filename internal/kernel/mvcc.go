package kernel

import (
	"fmt"
	"sort"
	"sync"

	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/sql"
	"mood/internal/storage"
)

// MVCC snapshot reads. The kernel's concurrency story is strict 2PL, which
// makes every reader queue behind writers. Snapshots add a second, lock-free
// path for read-only work: a copy-on-write overlay of pre-images keyed by
// OID. Writers capture an object's pre-image into the overlay before the
// first store mutation of each transaction; commit stamps those pre-images
// with a fresh epoch (when a snapshot is live to care) or drops them. A
// snapshot fixes the epoch at begin time and resolves every read through
// the overlay first: the value of an object "as of" epoch E is the oldest
// retained pre-image superseded after E, or the store's current value when
// no such pre-image exists. Snapshot readers therefore touch the lock
// manager not at all — they can never block a writer and never wait.

// version is one retained pre-image: the state an object had before the
// write that superseded it.
type version struct {
	class string
	val   object.Value
	gone  bool   // the object did not exist in this version (pre-image of a create)
	super uint64 // commit epoch that superseded this version; 0 = writer still in flight
	owner *writeSet
}

// writeSet tracks the objects a writer (transaction or autocommit
// statement) has captured pre-images for, so commit/abort can stamp or
// discard exactly its own pending versions.
type writeSet struct {
	oids []storage.OID
	seen map[storage.OID]struct{}
}

func newWriteSet() *writeSet {
	return &writeSet{seen: make(map[storage.OID]struct{})}
}

// versionStore is the copy-on-write overlay shared by all snapshots.
type versionStore struct {
	mu     sync.Mutex
	epoch  uint64
	chains map[storage.OID][]version
	// byClass remembers every OID that ever had a version in a class, so
	// snapshot scans can resurrect objects the store has since deleted.
	byClass map[string]map[storage.OID]struct{}
	snaps   map[*Snapshot]uint64
}

func newVersionStore() *versionStore {
	return &versionStore{
		chains:  make(map[storage.OID][]version),
		byClass: make(map[string]map[storage.OID]struct{}),
		snaps:   make(map[*Snapshot]uint64),
	}
}

// capture retains oid's pre-image for ws. It must run BEFORE the store
// mutation: a snapshot that reads concurrently then finds either the old
// store value or the identical pending pre-image. Only the first write per
// object and write set captures — later writes supersede state the
// transaction itself created.
func (vs *versionStore) capture(ws *writeSet, oid storage.OID, class string, val object.Value, gone bool) {
	if _, ok := ws.seen[oid]; ok {
		return
	}
	ws.seen[oid] = struct{}{}
	ws.oids = append(ws.oids, oid)
	vs.mu.Lock()
	vs.chains[oid] = append(vs.chains[oid], version{class: class, val: val, gone: gone, owner: ws})
	m := vs.byClass[class]
	if m == nil {
		m = make(map[storage.OID]struct{})
		vs.byClass[class] = m
	}
	m[oid] = struct{}{}
	vs.mu.Unlock()
}

// commit stamps ws's pending pre-images at a fresh epoch. With no snapshot
// live the pre-images serve no reader and are dropped immediately.
func (vs *versionStore) commit(ws *writeSet) {
	if ws == nil || len(ws.oids) == 0 {
		return
	}
	vs.mu.Lock()
	defer vs.mu.Unlock()
	vs.epoch++
	keep := len(vs.snaps) > 0
	for _, oid := range ws.oids {
		vs.settleLocked(ws, oid, keep, vs.epoch)
	}
}

// abort discards ws's pending pre-images: the logical undo has already
// restored the store, so the overlay has nothing left to add — except for
// undone deletes, whose objects were resurrected under a NEW OID. For those
// the old OID's pre-image is stamped committed (snapshots keep resolving the
// object they saw) and the new OID gets a "did not exist" version (snapshots
// must not see the resurrected duplicate).
func (vs *versionStore) abort(ws *writeSet, resurrected map[storage.OID]storage.OID) {
	if ws == nil || len(ws.oids) == 0 {
		return
	}
	vs.mu.Lock()
	defer vs.mu.Unlock()
	keep := len(vs.snaps) > 0
	ep := vs.epoch
	if keep && len(resurrected) > 0 {
		vs.epoch++
		ep = vs.epoch
	}
	for _, oid := range ws.oids {
		newOID, moved := resurrected[oid]
		if keep && moved {
			vs.settleLocked(ws, oid, true, ep)
			// Hide the resurrected twin from snapshots begun before the abort.
			chain := vs.chains[oid]
			class := ""
			for i := range chain {
				if chain[i].super == ep {
					class = chain[i].class
				}
			}
			vs.chains[newOID] = append(vs.chains[newOID], version{class: class, gone: true, super: ep})
			if m := vs.byClass[class]; m != nil {
				m[newOID] = struct{}{}
			}
			continue
		}
		vs.settleLocked(ws, oid, false, 0)
	}
}

// settleLocked finalizes ws's pending version of oid: stamp it at epoch ep
// when keep is set, drop it otherwise. Caller holds vs.mu.
func (vs *versionStore) settleLocked(ws *writeSet, oid storage.OID, keep bool, ep uint64) {
	chain := vs.chains[oid]
	for i := range chain {
		if chain[i].super == 0 && chain[i].owner == ws {
			chain[i].owner = nil
			if keep {
				chain[i].super = ep
				return
			}
			vs.dropAtLocked(oid, i)
			return
		}
	}
}

// dropAtLocked removes chain element i of oid, cleaning the class index
// when the chain empties. Caller holds vs.mu.
func (vs *versionStore) dropAtLocked(oid storage.OID, i int) {
	chain := vs.chains[oid]
	class := chain[i].class
	chain = append(chain[:i], chain[i+1:]...)
	if len(chain) == 0 {
		delete(vs.chains, oid)
		if m := vs.byClass[class]; m != nil {
			delete(m, oid)
			if len(m) == 0 {
				delete(vs.byClass, class)
			}
		}
	} else {
		vs.chains[oid] = chain
	}
}

// visibleLocked returns oid's value at asOf from the overlay: the oldest
// retained pre-image superseded after asOf (a pending pre-image counts as
// superseded at +inf). ok is false when the store's current value IS the
// snapshot value. Caller holds vs.mu.
func (vs *versionStore) visibleLocked(oid storage.OID, asOf uint64) (version, bool) {
	for _, v := range vs.chains[oid] {
		if v.super == 0 || v.super > asOf {
			return v, true
		}
	}
	return version{}, false
}

// gc drops every version no snapshot can still see. Caller holds vs.mu.
func (vs *versionStore) gcLocked() {
	if len(vs.snaps) == 0 {
		for oid, chain := range vs.chains {
			for i := len(chain) - 1; i >= 0; i-- {
				if chain[i].super != 0 { // pendings belong to live writers
					vs.dropAtLocked(oid, i)
				}
				chain = vs.chains[oid]
			}
		}
		return
	}
	min := uint64(0)
	first := true
	for _, asOf := range vs.snaps {
		if first || asOf < min {
			min = asOf
			first = false
		}
	}
	for oid, chain := range vs.chains {
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].super != 0 && chain[i].super <= min {
				vs.dropAtLocked(oid, i)
			}
			chain = vs.chains[oid]
		}
	}
}

// Reset drops the whole overlay. Recovery rewrites store state underneath
// it, so retained pre-images (and any open snapshots) are meaningless after
// a crash.
func (vs *versionStore) Reset() {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	vs.chains = make(map[storage.OID][]version)
	vs.byClass = make(map[string]map[storage.OID]struct{})
	vs.snaps = make(map[*Snapshot]uint64)
	vs.epoch++
}

// Snapshot is a read-only view of the database fixed at begin time. Reads
// resolve through the version overlay and acquire no locks; Close releases
// the retained pre-images.
type Snapshot struct {
	db   *DB
	asOf uint64
}

// BeginSnapshot opens a snapshot at the current commit epoch.
func (db *DB) BeginSnapshot() *Snapshot {
	vs := db.vs
	vs.mu.Lock()
	defer vs.mu.Unlock()
	s := &Snapshot{db: db, asOf: vs.epoch}
	vs.snaps[s] = s.asOf
	return s
}

// Close releases the snapshot and garbage-collects versions only it needed.
func (s *Snapshot) Close() {
	vs := s.db.vs
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if _, ok := vs.snaps[s]; !ok {
		return
	}
	delete(vs.snaps, s)
	vs.gcLocked()
}

// Get reads one object as of the snapshot. The overlay is consulted before
// AND after the store read: a writer captures its pre-image before mutating,
// so whichever side of the mutation the store read lands on, the re-check
// returns the snapshot-consistent value.
func (s *Snapshot) Get(oid storage.OID) (object.Value, string, error) {
	vs := s.db.vs
	vs.mu.Lock()
	v, ok := vs.visibleLocked(oid, s.asOf)
	vs.mu.Unlock()
	if ok {
		return s.versionResult(oid, v)
	}
	val, class, err := s.db.Cat.GetObject(oid)
	vs.mu.Lock()
	v, ok = vs.visibleLocked(oid, s.asOf)
	vs.mu.Unlock()
	if ok {
		return s.versionResult(oid, v)
	}
	return val, class, err
}

func (s *Snapshot) versionResult(oid storage.OID, v version) (object.Value, string, error) {
	if v.gone {
		return object.Null, "", fmt.Errorf("kernel: object %s does not exist in this snapshot", oid)
	}
	return v.val, v.class, nil
}

// Resolver adapts the snapshot for path expression dereference.
func (s *Snapshot) Resolver() object.Resolver {
	return func(oid storage.OID) (object.Value, error) {
		v, _, err := s.Get(oid)
		return v, err
	}
}

// ScanExtent iterates the class extent as of the snapshot: live objects
// resolve through the overlay (skipping ones born after the snapshot), and
// objects deleted after the snapshot are resurrected from their retained
// pre-images. Objects a concurrent writer is mutating resolve to their
// pre-images — the scan never waits.
func (s *Snapshot) ScanExtent(class string, fn func(storage.OID, object.Value) bool) error {
	vs := s.db.vs
	seen := make(map[storage.OID]struct{})
	stopped := false
	err := s.db.Cat.ScanExtent(class, func(oid storage.OID, val object.Value) bool {
		seen[oid] = struct{}{}
		// Overlay check AFTER the store handed us the value: a concurrent
		// writer's capture happens before its mutation, so a stale read is
		// always shadowed by a visible pre-image here.
		vs.mu.Lock()
		v, ok := vs.visibleLocked(oid, s.asOf)
		vs.mu.Unlock()
		if ok {
			if v.gone {
				return true
			}
			val = v.val
		}
		if !fn(oid, val) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	// Resurrect objects the store no longer has (deleted, or moved by an
	// aborted delete) whose snapshot versions are still live.
	type resur struct {
		oid storage.OID
		val object.Value
	}
	var extra []resur
	vs.mu.Lock()
	for oid := range vs.byClass[class] {
		if _, ok := seen[oid]; ok {
			continue
		}
		if v, ok := vs.visibleLocked(oid, s.asOf); ok && !v.gone && v.class == class {
			extra = append(extra, resur{oid, v.val})
		}
	}
	vs.mu.Unlock()
	sort.Slice(extra, func(i, j int) bool { return extra[i].oid < extra[j].oid })
	for _, e := range extra {
		if !fn(e.oid, e.val) {
			return nil
		}
	}
	return nil
}

// Select evaluates a simple read-only query against the snapshot: a single
// plain FROM item, optional WHERE, and plain projections. Aggregates,
// grouping, ordering, joins and class-closure scans fall outside the
// snapshot evaluator and must run under 2PL.
func (s *Snapshot) Select(n *sql.Select) (*Result, error) {
	if len(n.From) != 1 {
		return nil, fmt.Errorf("kernel: snapshot queries support exactly one FROM item")
	}
	fi := n.From[0]
	if fi.Every || len(fi.Minus) > 0 {
		return nil, fmt.Errorf("kernel: snapshot queries do not support class-closure (EVERY/minus) scans")
	}
	if len(n.GroupBy) > 0 || n.Having != nil || len(n.OrderBy) > 0 || n.Distinct {
		return nil, fmt.Errorf("kernel: snapshot queries do not support GROUP BY/HAVING/ORDER BY/DISTINCT")
	}
	for _, p := range n.Projs {
		if p.Agg != sql.AggNone || p.Star {
			return nil, fmt.Errorf("kernel: snapshot queries do not support aggregates")
		}
	}
	res := &Result{}
	for _, p := range n.Projs {
		name := p.As
		if name == "" {
			if v, ok := p.Expr.(*expr.Var); ok {
				name = v.Name
			} else {
				name = p.Expr.String()
			}
		}
		res.Columns = append(res.Columns, name)
	}
	var scanErr error
	err := s.ScanExtent(fi.Class, func(oid storage.OID, val object.Value) bool {
		env := &expr.Env{
			Vars:    map[string]object.Value{fi.Var: val},
			OIDs:    map[string]storage.OID{fi.Var: oid},
			Resolve: s.Resolver(),
			Invoke:  s.db.Alg.Invoke,
		}
		if n.Where != nil {
			ok, err := expr.EvalBool(n.Where, env)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		row := make([]object.Value, len(n.Projs))
		for i, p := range n.Projs {
			v, err := p.Expr.Eval(env)
			if err != nil {
				scanErr = err
				return false
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
		res.OIDs = append(res.OIDs, oid)
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return res, nil
}

// Query parses and evaluates one statement against the snapshot; anything
// but a SELECT is rejected (snapshot transactions are read-only).
func (s *Snapshot) Query(statement string) (*Result, error) {
	st, err := sql.Parse(statement)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("kernel: snapshot transactions are read-only (%T rejected)", st)
	}
	return s.Select(sel)
}

// Versions reports the overlay size: retained versions and live snapshots
// (for tests and the bench harness).
func (db *DB) Versions() (versions, snapshots int) {
	vs := db.vs
	vs.mu.Lock()
	defer vs.mu.Unlock()
	for _, chain := range vs.chains {
		versions += len(chain)
	}
	return versions, len(vs.snaps)
}
