package experiments

import (
	"testing"
	"time"
)

// TestMeasureCommit runs the full commit-pipeline sweep at a reduced fsync
// delay (wall-time bound: the ungrouped 32-session point serializes every
// force). MeasureCommit enforces its own acceptance floors — >=3x grouped
// commits/sec at 32 sessions, fingerprint-stable lock-free snapshot reads,
// exactly one plan-cache miss for the repeated shape — so the test mostly
// checks shape and the fixed columns.
func TestMeasureCommit(t *testing.T) {
	res, err := MeasureCommit(500 * time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(CommitSessionCounts); len(res.Entries) != want {
		t.Fatalf("got %d entries, want %d", len(res.Entries), want)
	}
	for _, e := range res.Entries {
		if e.Txns != e.Sessions*res.TxnsPerSession || e.Reads != e.Txns {
			t.Errorf("sessions=%d group=%v: txns=%d reads=%d, want %d mixed 1:1",
				e.Sessions, e.Group, e.Txns, e.Reads, e.Sessions*res.TxnsPerSession)
		}
		if !e.Group && e.Forces < int64(e.Txns) {
			t.Errorf("sessions=%d ungrouped: %d forces for %d commits — every commit must force alone",
				e.Sessions, e.Forces, e.Txns)
		}
		if e.Group && e.Forces > int64(e.Txns) {
			t.Errorf("sessions=%d grouped: %d forces for %d commits", e.Sessions, e.Forces, e.Txns)
		}
	}
	// The widest grouped point must have genuinely batched: strictly fewer
	// forces than commits.
	last := res.Entries[len(res.Entries)-1]
	if !last.Group || last.Sessions != 32 {
		t.Fatalf("unexpected sweep order: last entry %+v", last)
	}
	if last.Forces >= int64(last.Txns) {
		t.Errorf("32 grouped sessions never shared a force: %d forces for %d commits", last.Forces, last.Txns)
	}
	t.Logf("group speedup at 32 sessions: %.2fx (%d commits in %d forces)",
		res.GroupSpeedupN32, last.Txns, last.Forces)
}
