package optimizer

import (
	"fmt"
	"strings"

	"mood/internal/algebra"
	"mood/internal/sql"
)

// Operator is the physical-operator contract of the streaming executor: a
// pull-based (Volcano-style) iterator compiled from a Plan node. The
// optimizer owns the contract so that any package can build execution
// engines against plans without importing the executor.
//
// Lifecycle:
//
//   - Open acquires resources and, for pipeline breakers (sort, dup-elim,
//     hash-join build sides), drains the blocking inputs. Open must be called
//     exactly once, before the first Next.
//   - Next returns the next row and ok=true, or ok=false once the stream is
//     exhausted. After exhaustion or an error, further Next calls must keep
//     returning ok=false; rows stream by reference, so callers must not
//     mutate a returned Row's Vars map.
//   - Close releases resources, recursively closing inputs. Close is
//     idempotent and must be safe after a failed Open or mid-stream — a
//     consumer that stops early (LIMIT-style, named-object lookup, empty
//     intersect) closes a half-drained pipeline and the remaining extent
//     pages are simply never read.
//
// Errors propagate up the Next chain unwrapped; the root consumer sees the
// leaf's error verbatim and is responsible for closing the tree.
//
// The executor refines this contract batch-at-a-time: operators that also
// implement exec.BatchOperator produce row vectors through NextBatch, and an
// adapter bridges the two shapes in either direction. The refinement lives in
// exec (not here) because batches are an execution concern — plans and
// external engines only ever depend on the row contract above.
type Operator interface {
	Open() error
	Next() (algebra.Row, bool, error)
	Close() error
}

// Header describes the collection shape an operator's row stream would have
// if materialized: the MOOD-algebra kind, distinguished variable, and class
// of the seed executor's Collection headers. It is computed at compile time
// from the plan alone so the streaming and materializing paths agree on
// result shape before any row is produced.
type Header struct {
	Kind  algebra.Kind
	Name  string
	Class string
}

// PhysicalOperator is an Operator that also reports its materialized shape.
type PhysicalOperator interface {
	Operator
	Header() Header
}

// Children returns a plan node's direct inputs in execution order, so
// external walkers (EXPLAIN ANALYZE's annotated renderer) need no knowledge
// of the node structs.
func Children(p Plan) []Plan {
	switch n := p.(type) {
	case *SelectPlan:
		return []Plan{n.Input}
	case *IntersectPlan:
		return n.Inputs
	case *JoinPlan:
		return []Plan{n.Left, n.Right}
	case *CrossPlan:
		return []Plan{n.Left, n.Right}
	case *UnionPlan:
		return n.Inputs
	case *ProjectPlan:
		return []Plan{n.Input}
	case *GroupPlan:
		return []Plan{n.Input}
	case *SortPlan:
		return []Plan{n.Input}
	case *DupElimPlan:
		return []Plan{n.Input}
	case *ExchangePlan:
		return []Plan{n.Input}
	}
	return nil
}

// Describe renders a plan node as a single line (no children), the per-node
// label of EXPLAIN ANALYZE's annotated tree.
func Describe(p Plan) string {
	switch n := p.(type) {
	case *BindPlan:
		name := n.Class
		for _, m := range n.Minus {
			name += " - " + m
		}
		return fmt.Sprintf("BIND(%s, %s)", name, n.Var)
	case *IndSelPlan:
		return fmt.Sprintf("INDSEL(%s, %s, %s[%s], %s)", n.Class, n.Var,
			n.Index.Name, n.Index.Kind, renderSimple(n.Var, n.Pred))
	case *IntersectPlan:
		return "INTERSECT"
	case *SelectPlan:
		return fmt.Sprintf("SELECT(%s)", n.Pred)
	case *JoinPlan:
		return fmt.Sprintf("JOIN(%s, %s.%s = %s.self)", n.Method, n.LeftVar, n.Attribute, n.RightVar)
	case *CrossPlan:
		return "CROSS"
	case *UnionPlan:
		return "UNION"
	case *ProjectPlan:
		parts := make([]string, len(n.Items))
		for i, it := range n.Items {
			s := ""
			if it.Agg != sql.AggNone {
				inner := "*"
				if !it.Star && it.Expr != nil {
					inner = it.Expr.String()
				}
				s = fmt.Sprintf("%s(%s)", it.Agg, inner)
			} else if it.Expr != nil {
				s = it.Expr.String()
			}
			if it.As != "" {
				s += " AS " + it.As
			}
			parts[i] = s
		}
		return fmt.Sprintf("PROJECT([%s])", strings.Join(parts, ", "))
	case *GroupPlan:
		keys := make([]string, len(n.By))
		for i, b := range n.By {
			keys[i] = b.String()
		}
		s := fmt.Sprintf("GROUP(BY [%s]", strings.Join(keys, ", "))
		if n.Having != nil {
			s += fmt.Sprintf(" HAVING %s", n.Having)
		}
		return s + ")"
	case *SortPlan:
		keys := make([]string, len(n.Keys))
		for i, k := range n.Keys {
			keys[i] = k.Ref.String()
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		return fmt.Sprintf("SORT([%s])", strings.Join(keys, ", "))
	case *DupElimPlan:
		return "DUPELIM"
	case *ExchangePlan:
		return fmt.Sprintf("EXCHANGE(workers=%d)", n.Workers)
	}
	return fmt.Sprintf("%T", p)
}
