// A second domain on the same kernel: a university database exercising the
// parts of the data model the vehicle example does not — SET- and
// LIST-valued reference attributes, the Unnest/Nest algebra operators, deep
// equality duplicate elimination, UPDATE/DELETE through MOODSQL, and the
// cursor protocol.
package main

import (
	"fmt"
	"log"

	"mood/internal/algebra"
	"mood/internal/kernel"
	"mood/internal/object"
	"mood/internal/storage"
)

func main() {
	db, err := kernel.Open(kernel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	_, err = db.ExecuteScript(`
		CREATE CLASS Department TUPLE (name String(64), budget Integer);
		CREATE CLASS Course TUPLE (
			code String(16),
			credits Integer,
			dept REFERENCE (Department));
		CREATE CLASS Student TUPLE (
			name String(64),
			year Integer,
			major REFERENCE (Department),
			enrolled SET (REFERENCE (Course)));
		CREATE CLASS GradStudent INHERITS FROM Student;
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Populate: three departments, courses, students with set-valued
	// enrollments.
	mk := func(class string, names []string, vals []object.Value) storage.OID {
		oid, err := db.Cat.CreateObject(class, object.NewTuple(names, vals))
		if err != nil {
			log.Fatal(err)
		}
		return oid
	}
	cs := mk("Department", []string{"name", "budget"},
		[]object.Value{object.NewString("Computer Engineering"), object.NewInt(900)})
	ee := mk("Department", []string{"name", "budget"},
		[]object.Value{object.NewString("Electrical Engineering"), object.NewInt(700)})
	math := mk("Department", []string{"name", "budget"},
		[]object.Value{object.NewString("Mathematics"), object.NewInt(400)})

	course := func(code string, credits int32, dept storage.OID) storage.OID {
		return mk("Course", []string{"code", "credits", "dept"},
			[]object.Value{object.NewString(code), object.NewInt(credits), object.NewRef(dept)})
	}
	db1 := course("CENG302", 4, cs) // databases, of course
	alg := course("CENG213", 3, cs)
	circ := course("EE201", 4, ee)
	calc := course("MATH119", 5, math)

	student := func(class, name string, year int32, major storage.OID, courses ...storage.OID) storage.OID {
		set := object.Value{Kind: object.KindSet}
		for _, c := range courses {
			set.SetAdd(object.NewRef(c))
		}
		return mk(class, []string{"name", "year", "major", "enrolled"},
			[]object.Value{object.NewString(name), object.NewInt(year), object.NewRef(major), set})
	}
	student("Student", "Asuman", 3, cs, db1, alg, calc)
	student("Student", "Cetin", 2, cs, alg, calc)
	student("Student", "Budak", 4, ee, circ, db1)
	student("GradStudent", "Tansel", 6, cs, db1)
	student("GradStudent", "Cem", 5, math, calc)

	if err := db.RefreshStats(); err != nil {
		log.Fatal(err)
	}

	// Path query through a reference: students majoring in a rich
	// department.
	res, err := db.Execute(`
		SELECT s.name, s.major.name AS dept
		FROM EVERY Student s
		WHERE s.major.budget > 600
		ORDER BY s.name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("students in departments with budget > 600:")
	fmt.Print(res.String())

	// Set-valued attributes through the algebra: Unnest the enrollment
	// sets into <student, course> pairs (the paper's 1NF unnest example),
	// then Nest them back.
	a := algebra.New(db.Cat)
	students, err := a.Bind("Student", "s")
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := a.Unnest(students, "enrolled")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUnnest(enrolled): %d <student, course> pairs from %d students\n",
		pairs.Len(), students.Len())
	nested, err := a.Nest(pairs, "enrolled")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Nest undoes it: %d students again\n", nested.Len())

	// Aggregation over the IS-A closure.
	res, err = db.Execute(`
		SELECT s.major.name AS dept, COUNT(*) AS students, AVG(s.year) AS avgyear
		FROM EVERY Student s
		GROUP BY s.major.name
		ORDER BY dept`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nenrollment by department (grads included):")
	fmt.Print(res.String())

	// UPDATE and DELETE through MOODSQL.
	if _, err := db.Execute(`UPDATE Department d SET budget = d.budget + 100 WHERE d.name = 'Mathematics'`); err != nil {
		log.Fatal(err)
	}
	res, _ = db.Execute(`SELECT d.budget FROM Department d WHERE d.name = 'Mathematics'`)
	fmt.Println("\nMathematics budget after raise:", res.Rows[0][0])

	// Cursor protocol over a query result (Section 9.4).
	cur, err := db.OpenCursor(`SELECT s FROM EVERY Student s WHERE s.year >= 4 ORDER BY s.year`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncursor over %d senior students:\n", cur.Len())
	for {
		ov, err := cur.Next()
		if err != nil {
			break
		}
		fmt.Println(" ", ov)
	}
}
