package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mood/internal/storage"
)

func newTree(t testing.TB, keySize int, unique bool) *Tree {
	t.Helper()
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 64)
	tr, err := New(bp, keySize, unique)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func oidFor(i int) storage.OID {
	return storage.MakeOID(1, storage.PageID(i/100+1), storage.SlotID(i%100))
}

func TestInsertSearchSmall(t *testing.T) {
	tr := newTree(t, 8, true)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(EncodeIntKey(int64(i)), oidFor(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := tr.Search(EncodeIntKey(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != oidFor(i) {
			t.Errorf("Search(%d) = %v", i, got)
		}
	}
	if got, _ := tr.Search(EncodeIntKey(1000)); len(got) != 0 {
		t.Errorf("Search(absent) = %v", got)
	}
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestUniqueRejectsDuplicates(t *testing.T) {
	tr := newTree(t, 8, true)
	if err := tr.Insert(EncodeIntKey(7), oidFor(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(EncodeIntKey(7), oidFor(2)); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate insert = %v, want ErrDuplicateKey", err)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := newTree(t, 8, false)
	const dups = 500 // force duplicates to span several leaves
	for i := 0; i < dups; i++ {
		if err := tr.Insert(EncodeIntKey(42), oidFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Neighbours so the scan must isolate the run.
	tr.Insert(EncodeIntKey(41), oidFor(9001))
	tr.Insert(EncodeIntKey(43), oidFor(9002))
	got, err := tr.Search(EncodeIntKey(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != dups {
		t.Fatalf("Search dup key returned %d oids, want %d", len(got), dups)
	}
	seen := map[storage.OID]bool{}
	for _, o := range got {
		seen[o] = true
	}
	if len(seen) != dups {
		t.Error("duplicate oids in result")
	}
}

func TestSplitsAndStats(t *testing.T) {
	tr := newTree(t, 16, true)
	n := 20000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(EncodeIntKey(int64(i)), oidFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.Levels < 2 {
		t.Errorf("Levels = %d after %d inserts", st.Levels, n)
	}
	if st.Leaves < 2 {
		t.Errorf("Leaves = %d", st.Leaves)
	}
	if st.Entries != n {
		t.Errorf("Entries = %d, want %d", st.Entries, n)
	}
	if st.KeySize != 16 || !st.Unique || st.Order <= 0 {
		t.Errorf("stats block wrong: %+v", st)
	}
	// Every key findable after heavy splitting.
	for i := 0; i < n; i += 97 {
		got, err := tr.Search(EncodeIntKey(int64(i)))
		if err != nil || len(got) != 1 || got[0] != oidFor(i) {
			t.Fatalf("Search(%d) after splits = %v, %v", i, got, err)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr := newTree(t, 8, true)
	for i := 0; i < 1000; i++ {
		tr.Insert(EncodeIntKey(int64(i*2)), oidFor(i)) // even keys only
	}
	var keys []int64
	err := tr.Range(EncodeIntKey(100), EncodeIntKey(200), func(k []byte, _ storage.OID) bool {
		keys = append(keys, DecodeIntKey(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 51 {
		t.Fatalf("range [100,200] returned %d keys, want 51", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Error("range result not sorted")
	}
	if keys[0] != 100 || keys[len(keys)-1] != 200 {
		t.Errorf("range bounds: %d..%d", keys[0], keys[len(keys)-1])
	}
	// Open-ended scans.
	count := 0
	tr.Range(nil, nil, func([]byte, storage.OID) bool { count++; return true })
	if count != 1000 {
		t.Errorf("full scan saw %d, want 1000", count)
	}
	// Early termination.
	count = 0
	tr.Range(nil, nil, func([]byte, storage.OID) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early stop saw %d", count)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 8, false)
	for i := 0; i < 2000; i++ {
		tr.Insert(EncodeIntKey(int64(i)), oidFor(i))
	}
	for i := 0; i < 2000; i += 2 {
		if err := tr.Delete(EncodeIntKey(int64(i)), oidFor(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if tr.Len() != 1000 {
		t.Errorf("Len after deletes = %d", tr.Len())
	}
	for i := 0; i < 2000; i++ {
		got, _ := tr.Search(EncodeIntKey(int64(i)))
		if i%2 == 0 && len(got) != 0 {
			t.Errorf("deleted key %d still found", i)
		}
		if i%2 == 1 && len(got) != 1 {
			t.Errorf("surviving key %d lost", i)
		}
	}
	if err := tr.Delete(EncodeIntKey(4), oidFor(4)); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
	// Delete a specific oid out of a duplicate run.
	tr2 := newTree(t, 8, false)
	for i := 0; i < 10; i++ {
		tr2.Insert(EncodeIntKey(5), oidFor(i))
	}
	if err := tr2.Delete(EncodeIntKey(5), oidFor(7)); err != nil {
		t.Fatal(err)
	}
	got, _ := tr2.Search(EncodeIntKey(5))
	if len(got) != 9 {
		t.Errorf("dup run has %d after targeted delete", len(got))
	}
	for _, o := range got {
		if o == oidFor(7) {
			t.Error("targeted oid still present")
		}
	}
}

func TestOpenRecomputesStats(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 64)
	tr, err := New(bp, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		tr.Insert(EncodeIntKey(int64(i)), oidFor(i))
	}
	want := tr.Stats()
	bp.FlushAll()

	tr2, err := Open(storage.NewBufferPool(disk, 64), tr.Root(), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	got := tr2.Stats()
	if got.Levels != want.Levels || got.Leaves != want.Leaves || got.Entries != want.Entries {
		t.Errorf("reopened stats %+v, want %+v", got, want)
	}
	// And the reopened tree still answers queries.
	res, err := tr2.Search(EncodeIntKey(4321))
	if err != nil || len(res) != 1 || res[0] != oidFor(4321) {
		t.Errorf("Search after reopen: %v %v", res, err)
	}
}

func TestKeyTooLarge(t *testing.T) {
	tr := newTree(t, 4, true)
	if err := tr.Insert(bytes.Repeat([]byte{1}, 5), oidFor(1)); !errors.Is(err, ErrKeyTooLarge) {
		t.Errorf("oversize key insert = %v", err)
	}
}

func TestIntKeyOrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := EncodeIntKey(a), EncodeIntKey(b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	g := func(a int64) bool { return DecodeIntKey(EncodeIntKey(a)) == a }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatKeyOrderPreserving(t *testing.T) {
	vals := []float64{-1e300, -42.5, -1, -0.001, 0, 0.001, 1, 3.14, 42.5, 1e300}
	for i := 0; i < len(vals)-1; i++ {
		a, b := EncodeFloatKey(vals[i]), EncodeFloatKey(vals[i+1])
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("EncodeFloatKey order broken between %v and %v", vals[i], vals[i+1])
		}
	}
}

func TestRandomizedAgainstReference(t *testing.T) {
	tr := newTree(t, 8, false)
	ref := map[int64][]storage.OID{}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 20000; step++ {
		k := int64(rng.Intn(500))
		if rng.Intn(3) != 0 || len(ref[k]) == 0 {
			oid := storage.OID(rng.Uint64() | 1)
			if err := tr.Insert(EncodeIntKey(k), oid); err != nil {
				t.Fatal(err)
			}
			ref[k] = append(ref[k], oid)
		} else {
			victim := ref[k][rng.Intn(len(ref[k]))]
			if err := tr.Delete(EncodeIntKey(k), victim); err != nil {
				t.Fatalf("delete: %v", err)
			}
			for i, o := range ref[k] {
				if o == victim {
					ref[k] = append(ref[k][:i], ref[k][i+1:]...)
					break
				}
			}
		}
	}
	for k, want := range ref {
		got, err := tr.Search(EncodeIntKey(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("key %d: %d oids, want %d", k, len(got), len(want))
			continue
		}
		w := map[storage.OID]int{}
		for _, o := range want {
			w[o]++
		}
		for _, o := range got {
			w[o]--
		}
		for o, c := range w {
			if c != 0 {
				t.Errorf("key %d: oid %v imbalance %d", k, o, c)
			}
		}
	}
	// Global order invariant via full scan.
	var prev []byte
	tr.Range(nil, nil, func(k []byte, _ storage.OID) bool {
		if prev != nil && bytes.Compare(prev, k) > 0 {
			t.Error("scan order violated")
			return false
		}
		prev = append(prev[:0], k...)
		return true
	})
}

func BenchmarkBTreeInsert(b *testing.B) {
	tr := newTree(b, 8, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(EncodeIntKey(int64(i)), oidFor(i))
	}
}

func BenchmarkBTreeSearch(b *testing.B) {
	tr := newTree(b, 8, true)
	for i := 0; i < 100000; i++ {
		tr.Insert(EncodeIntKey(int64(i)), oidFor(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(EncodeIntKey(int64(i % 100000)))
	}
}

func ExampleTree_Range() {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 16)
	tr, _ := New(bp, 8, true)
	for i := 1; i <= 5; i++ {
		tr.Insert(EncodeIntKey(int64(i*10)), storage.MakeOID(1, 1, storage.SlotID(i)))
	}
	tr.Range(EncodeIntKey(20), EncodeIntKey(40), func(k []byte, oid storage.OID) bool {
		fmt.Println(DecodeIntKey(k), oid)
		return true
	})
	// Output:
	// 20 oid(1.1.2)
	// 30 oid(1.1.3)
	// 40 oid(1.1.4)
}

// TestLoggedMutations verifies the WAL hook: every page the tree dirties is
// logged as a whole-page before/after image, replaying the log alone
// reproduces the final page states, and a failed log append restores the
// frame so the unlogged mutation never becomes visible.
func TestLoggedMutations(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 64)
	tr, err := New(bp, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	shadow := map[storage.PageID][]byte{} // log-replayed page images
	var lsn uint32
	tr.SetLogger(func(pid storage.PageID, off int, before, after []byte) (uint32, error) {
		if off != 0 {
			t.Fatalf("logged offset %d, want whole-page", off)
		}
		// Compare payloads outside the 16-byte page header: the LSN stamp
		// lands on the frame after the after-image is captured.
		if prev, ok := shadow[pid]; ok && !bytes.Equal(prev[16:], before[16:]) {
			t.Fatalf("page %d: before-image does not chain from previous after-image", pid)
		}
		img := make([]byte, len(after))
		copy(img, after)
		shadow[pid] = img
		lsn++
		return lsn, nil
	})

	rng := rand.New(rand.NewSource(11))
	type pair struct {
		k int64
		o storage.OID
	}
	var live []pair
	for i := 0; i < 2000; i++ {
		k, o := int64(rng.Intn(500)), oidFor(i)
		if err := tr.Insert(EncodeIntKey(k), o); err != nil {
			t.Fatal(err)
		}
		live = append(live, pair{k, o})
		if len(live) > 4 && rng.Intn(3) == 0 {
			j := rng.Intn(len(live))
			if err := tr.Delete(EncodeIntKey(live[j].k), live[j].o); err != nil {
				t.Fatal(err)
			}
			live = append(live[:j], live[j+1:]...)
		}
	}
	if len(shadow) == 0 {
		t.Fatal("no pages logged")
	}
	// The shadow built purely from logged after-images must byte-equal the
	// live frames (LSN stamps included, since logging precedes the stamp...
	// compare outside the 16-byte header to stay layout-agnostic).
	for pid, want := range shadow {
		pg, err := bp.Fetch(pid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pg.Bytes()[16:], want[16:]) {
			t.Errorf("page %d: frame diverges from logged after-image", pid)
		}
		if pg.LSN() == 0 {
			t.Errorf("page %d: LSN not stamped", pid)
		}
		bp.Unpin(pid, false)
	}

	// A failing logger must leave the frame untouched and surface the error.
	entries := tr.Len()
	var snap []byte
	{
		pg, err := bp.Fetch(tr.Root())
		if err != nil {
			t.Fatal(err)
		}
		snap = append([]byte(nil), pg.Bytes()...)
		bp.Unpin(tr.Root(), false)
	}
	boom := errors.New("log append failed")
	tr.SetLogger(func(storage.PageID, int, []byte, []byte) (uint32, error) { return 0, boom })
	// The tree is tall; the root is only dirtied on a split, so mutate a
	// leaf: any insert must fail at its leaf's log append.
	if err := tr.Insert(EncodeIntKey(77), oidFor(99999)); !errors.Is(err, boom) {
		t.Fatalf("insert with failing logger = %v, want %v", err, boom)
	}
	_ = entries
	pg, err := bp.Fetch(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pg.Bytes(), snap) {
		t.Error("root frame changed under a failing logger")
	}
	bp.Unpin(tr.Root(), false)
}
