package wal

import (
	"bytes"
	"math/rand"
	"testing"

	"mood/internal/storage"
)

func newPageWithData(t *testing.T, bp *storage.BufferPool, fill byte) storage.PageID {
	t.Helper()
	pg, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pg.Bytes() {
		pg.Bytes()[i] = fill
	}
	pg.SetLSN(0)
	if err := bp.Unpin(pg.ID, true); err != nil {
		t.Fatal(err)
	}
	return pg.ID
}

// loggedWrite performs a WAL-protected page update as the kernel would.
func loggedWrite(t *testing.T, l *Log, bp *storage.BufferPool, tx TxID, page storage.PageID, off int, data []byte) {
	t.Helper()
	pg, err := bp.Fetch(page)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]byte, len(data))
	copy(before, pg.Bytes()[off:off+len(data)])
	lsn, err := l.Update(tx, page, off, before, data)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Bytes()[off:], data)
	pg.SetLSN(uint32(lsn))
	if err := bp.Unpin(page, true); err != nil {
		t.Fatal(err)
	}
}

func TestCommitAbortBasics(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 8)
	l := NewLog()
	bp.SetFlushHook(l.FlushHook())
	page := newPageWithData(t, bp, 0)

	tx := l.Begin()
	loggedWrite(t, l, bp, tx, page, 100, []byte("committed"))
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tx); err == nil {
		t.Error("double commit succeeded")
	}

	tx2 := l.Begin()
	loggedWrite(t, l, bp, tx2, page, 200, []byte("rolled-back"))
	apply := func(p storage.PageID, off int, img []byte, lsn LSN) error {
		pg, err := bp.Fetch(p)
		if err != nil {
			return err
		}
		copy(pg.Bytes()[off:], img)
		pg.SetLSN(uint32(lsn))
		return bp.Unpin(p, true)
	}
	if err := l.Abort(tx2, apply); err != nil {
		t.Fatal(err)
	}
	pg, _ := bp.Fetch(page)
	if string(pg.Bytes()[100:109]) != "committed" {
		t.Error("committed data lost")
	}
	if !bytes.Equal(pg.Bytes()[200:211], make([]byte, 11)) {
		t.Errorf("aborted data visible: %q", pg.Bytes()[200:211])
	}
	bp.Unpin(page, false)
	if len(l.ActiveTransactions()) != 0 {
		t.Errorf("active transactions remain: %v", l.ActiveTransactions())
	}
}

func TestWALRuleEnforcedOnEviction(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 1) // single frame: every fetch evicts
	l := NewLog()
	bp.SetFlushHook(l.FlushHook())
	page := newPageWithData(t, bp, 0)

	tx := l.Begin()
	loggedWrite(t, l, bp, tx, page, 50, []byte("dirty"))
	if l.FlushedLSN() != 0 {
		t.Fatalf("log flushed prematurely: %d", l.FlushedLSN())
	}
	// Touching another page evicts the dirty one, which must flush the log
	// through the page LSN first.
	other := newPageWithData(t, bp, 9)
	_ = other
	if l.FlushedLSN() < 2 {
		t.Errorf("WAL rule violated: flushed=%d want >=2 after eviction", l.FlushedLSN())
	}
	l.Commit(tx)
}

// crash simulates a crash: all buffered pages are lost (a new pool is
// created over the same disk) and the volatile suffix of the log vanishes
// (only the durable prefix survives, which Recover enforces itself).
func crash(disk *storage.DiskSim) *storage.BufferPool {
	return storage.NewBufferPool(disk, 8)
}

func TestRecoveryRedoCommitted(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 8)
	l := NewLog()
	bp.SetFlushHook(l.FlushHook())
	page := newPageWithData(t, bp, 0)
	bp.FlushAll()

	tx := l.Begin()
	loggedWrite(t, l, bp, tx, page, 10, []byte("must-survive"))
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Crash WITHOUT flushing the dirty page: the update exists only in the
	// durable log.
	bp2 := crash(disk)
	bp2.SetFlushHook(l.FlushHook())
	st, err := l.Recover(bp2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Redone == 0 {
		t.Errorf("recovery redid nothing: %+v", st)
	}
	pg, _ := bp2.Fetch(page)
	if string(pg.Bytes()[10:22]) != "must-survive" {
		t.Errorf("committed update lost after recovery: %q", pg.Bytes()[10:22])
	}
	bp2.Unpin(page, false)
}

func TestRecoveryUndoLosers(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 8)
	l := NewLog()
	bp.SetFlushHook(l.FlushHook())
	page := newPageWithData(t, bp, 0)
	bp.FlushAll()

	tx := l.Begin()
	loggedWrite(t, l, bp, tx, page, 30, []byte("loser-data"))
	// Force the dirty page (and therefore, by the WAL rule, the log) to
	// disk, then crash before commit: recovery must undo it.
	bp.FlushAll()
	bp2 := crash(disk)
	bp2.SetFlushHook(l.FlushHook())
	st, err := l.Recover(bp2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Losers != 1 || st.Undone == 0 {
		t.Errorf("recovery stats %+v, want 1 loser with undos", st)
	}
	pg, _ := bp2.Fetch(page)
	if !bytes.Equal(pg.Bytes()[30:40], make([]byte, 10)) {
		t.Errorf("loser data survived: %q", pg.Bytes()[30:40])
	}
	bp2.Unpin(page, false)
	if len(l.ActiveTransactions()) != 0 {
		t.Error("losers still active after recovery")
	}
}

func TestRecoveryMixedWinnersAndLosers(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 8)
	l := NewLog()
	bp.SetFlushHook(l.FlushHook())
	pageA := newPageWithData(t, bp, 0)
	pageB := newPageWithData(t, bp, 0)
	bp.FlushAll()

	winner := l.Begin()
	loser := l.Begin()
	loggedWrite(t, l, bp, winner, pageA, 0+16, []byte("WIN"))
	loggedWrite(t, l, bp, loser, pageA, 64, []byte("LOSE"))
	loggedWrite(t, l, bp, loser, pageB, 64, []byte("LOSE"))
	loggedWrite(t, l, bp, winner, pageB, 0+16, []byte("WIN"))
	if err := l.Commit(winner); err != nil {
		t.Fatal(err)
	}
	l.Checkpoint()
	// Random subset of pages on disk: flush only pageB.
	bp.FlushPage(pageB)

	bp2 := crash(disk)
	bp2.SetFlushHook(l.FlushHook())
	st, err := l.Recover(bp2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Losers != 1 {
		t.Errorf("losers = %d, want 1", st.Losers)
	}
	for _, page := range []storage.PageID{pageA, pageB} {
		pg, _ := bp2.Fetch(page)
		if string(pg.Bytes()[16:19]) != "WIN" {
			t.Errorf("page %d: winner data lost: %q", page, pg.Bytes()[16:19])
		}
		if bytes.Contains(pg.Bytes(), []byte("LOSE")) {
			t.Errorf("page %d: loser data survived", page)
		}
		bp2.Unpin(page, false)
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 8)
	l := NewLog()
	bp.SetFlushHook(l.FlushHook())
	page := newPageWithData(t, bp, 0)
	bp.FlushAll()
	tx := l.Begin()
	loggedWrite(t, l, bp, tx, page, 10, []byte("abc"))
	l.Commit(tx)

	bp2 := crash(disk)
	if _, err := l.Recover(bp2); err != nil {
		t.Fatal(err)
	}
	snapshot := func() []byte {
		pg, _ := bp2.Fetch(page)
		cp := append([]byte(nil), pg.Bytes()...)
		bp2.Unpin(page, false)
		return cp
	}
	first := snapshot()
	// Crash again immediately and recover again: state must not change.
	bp2.FlushAll()
	bp3 := crash(disk)
	if _, err := l.Recover(bp3); err != nil {
		t.Fatal(err)
	}
	pg, _ := bp3.Fetch(page)
	if !bytes.Equal(pg.Bytes(), first) {
		t.Error("second recovery changed page state")
	}
	bp3.Unpin(page, false)
}

func TestRecoveryRandomizedCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		disk := storage.NewDiskSim(storage.DefaultDiskParams())
		bp := storage.NewBufferPool(disk, 4)
		l := NewLog()
		bp.SetFlushHook(l.FlushHook())
		var pages []storage.PageID
		for i := 0; i < 4; i++ {
			pages = append(pages, newPageWithData(t, &*bp, 0))
		}
		bp.FlushAll()

		// committed[page][offset] = expected byte for committed writes
		expected := map[storage.PageID]map[int]byte{}
		for _, p := range pages {
			expected[p] = map[int]byte{}
		}
		nTx := 2 + rng.Intn(4)
		for i := 0; i < nTx; i++ {
			tx := l.Begin()
			writes := map[storage.PageID]map[int]byte{}
			for j := 0; j < 1+rng.Intn(5); j++ {
				p := pages[rng.Intn(len(pages))]
				// Disjoint offset ranges per transaction: without locking,
				// overlapping writes between a loser and a later winner
				// would legitimately clobber each other at undo time.
				off := 32 + i*600 + rng.Intn(600)
				val := byte(1 + rng.Intn(255))
				loggedWrite(t, l, bp, tx, p, off, []byte{val})
				if writes[p] == nil {
					writes[p] = map[int]byte{}
				}
				writes[p][off] = val
			}
			if rng.Intn(2) == 0 {
				if err := l.Commit(tx); err != nil {
					t.Fatal(err)
				}
				for p, m := range writes {
					for off, v := range m {
						expected[p][off] = v
					}
				}
			} // else: leave active (loser)
			if rng.Intn(3) == 0 {
				bp.FlushPage(pages[rng.Intn(len(pages))])
			}
		}

		bp2 := crash(disk)
		bp2.SetFlushHook(l.FlushHook())
		if _, err := l.Recover(bp2); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, p := range pages {
			pg, _ := bp2.Fetch(p)
			for off, v := range expected[p] {
				if pg.Bytes()[off] != v {
					t.Errorf("round %d page %d off %d: got %d want %d (committed write lost)",
						round, p, off, pg.Bytes()[off], v)
				}
			}
			bp2.Unpin(p, false)
		}
	}
}
