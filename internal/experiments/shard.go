package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/exec"
	"mood/internal/kernel"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/storage"
)

// ShardCounts is the shard-count sweep measured by MeasureShard.
var ShardCounts = []int{1, 2, 4}

const (
	// shardBenchWorkers is the exchange degree used for every query entry,
	// so the only variable across a sweep is the shard count.
	shardBenchWorkers = 4
	// shardCommitWorkers/shardCommitTxs size the commit-throughput phase.
	shardCommitWorkers = 8
	shardCommitTxs     = 25
	// DefaultShardSyncDelay is the simulated fsync latency charged on every
	// log force during the commit phase. One stream of forces through one
	// WAL serializes on it; N independent WALs overlap N forces — which is
	// the effect the sharded store exists to exploit.
	DefaultShardSyncDelay = time.Millisecond
	// shardIntBase/shardIntSpan keep every generated integer inside one
	// zigzag-varint length band (2 bytes), part of the fixed-record-size
	// guarantee below.
	shardIntBase = 1000
	shardIntSpan = 7000
	// shardItemPad is the BenchItem filler; fixed length by construction.
	shardItemPad = "xxxxxxxxxxxxxxxxxxxxxxxx"
)

// ShardQueryEntry is one measured (benchmark, shard count) configuration.
// Rows and Reads are deterministic and must be identical across shard
// counts for the same benchmark name — MeasureShard fails if they are not.
// WallMs and the derived columns are wall-clock measurements.
type ShardQueryEntry struct {
	Name           string  `json:"name"`
	Shards         int     `json:"shards"`
	Rows           int     `json:"rows"`
	Reads          int64   `json:"reads"`
	SimulatedMs    float64 `json:"simulated_ms"`
	WallMs         float64 `json:"wall_ms"`
	RowsPerWallSec float64 `json:"rows_per_wall_sec"`
	Speedup        float64 `json:"speedup_vs_shards_1"`
}

// ShardCommitEntry is one measured commit-throughput configuration.
type ShardCommitEntry struct {
	Shards        int     `json:"shards"`
	Workers       int     `json:"workers"`
	Txns          int     `json:"txns"`
	WallMs        float64 `json:"wall_ms"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	Speedup       float64 `json:"speedup_vs_shards_1"`
}

// BenchShard is the JSON artifact written by moodbench -shard-json.
type BenchShard struct {
	Items             int                `json:"items"`
	Owners            int                `json:"owners"`
	ItemsPerPage      int                `json:"items_per_page"`
	OwnersPerPage     int                `json:"owners_per_page"`
	LatencyUsPerSimMs float64            `json:"latency_us_per_sim_ms"`
	SyncDelayMs       float64            `json:"sync_delay_ms"`
	Queries           []ShardQueryEntry  `json:"queries"`
	Commits           []ShardCommitEntry `json:"commits"`
	// CommitSpeedupN4 is the acceptance number: insert+update commits/sec
	// at four shards relative to the single store.
	CommitSpeedupN4 float64 `json:"commit_speedup_n4"`
}

// The bench schema uses records of one exact encoded size each:
// every integer falls in one varint length band, every string has a fixed
// length, and references encode as fixed eight-byte OIDs regardless of the
// shard tag. With fixed-size records and round-robin placement, every part
// of an extent packs records at the same density, so when the record count
// is a multiple of 4*recordsPerPage the extent occupies exactly the same
// number of data pages at shards=1, 2 and 4 — which is what lets the sweep
// demand identical read totals across shard counts.

func defineShardBenchSchema(cat *catalog.Catalog) error {
	if _, err := cat.DefineClass("BenchOwner", object.TupleOf(
		object.Field{Name: "name", Type: object.StringN(16)},
		object.Field{Name: "tag", Type: object.TInteger},
	), nil, nil); err != nil {
		return err
	}
	_, err := cat.DefineClass("BenchItem", object.TupleOf(
		object.Field{Name: "k", Type: object.TInteger},
		object.Field{Name: "pad", Type: object.StringN(24)},
		object.Field{Name: "owner", Type: object.RefTo("BenchOwner")},
	), nil, nil)
	return err
}

func shardOwnerTuple(i int) object.Value {
	return object.NewTuple(
		[]string{"name", "tag"},
		[]object.Value{
			object.NewString(fmt.Sprintf("owner-%05d", i%100000)),
			object.NewInt(int32(shardIntBase + i%shardIntSpan)),
		},
	)
}

func shardItemTuple(i int, owner storage.OID) object.Value {
	return object.NewTuple(
		[]string{"k", "pad", "owner"},
		[]object.Value{
			object.NewInt(int32(shardIntBase + i%shardIntSpan)),
			object.NewString(shardItemPad),
			object.NewRef(owner),
		},
	)
}

func shardBenchOptions(nshards int) kernel.Options {
	opts := kernel.DefaultOptions()
	// Per-shard frames sized to hold the whole working set even unsharded,
	// so every measured page read is a first touch and the read totals the
	// sweep compares are deterministic.
	opts.BufferFrames = 2048
	opts.ShardCount = nshards
	return opts
}

// probeRecordsPerPage inserts fixture records into a scratch class extent
// until it has grown to four data pages and returns the records-per-page
// density, verifying every page (the first included) packs the same count —
// the empirical check behind the fixed-record-size guarantee.
func probeRecordsPerPage(cat *catalog.Catalog, class string, mk func(i int) object.Value) (int, error) {
	// grewAt[k] is the insert count after which the extent first held k
	// pages: page 1 holds grewAt[2]-1 records, page 2 holds
	// grewAt[3]-grewAt[2], page 3 holds grewAt[4]-grewAt[3].
	grewAt := map[int]int{}
	for inserted := 1; inserted <= 8192; inserted++ {
		if _, err := cat.CreateObject(class, mk(inserted)); err != nil {
			return 0, err
		}
		pages, err := cat.ExtentPages(class)
		if err != nil {
			return 0, err
		}
		if _, seen := grewAt[pages]; !seen {
			grewAt[pages] = inserted
		}
		if pages >= 4 {
			break
		}
	}
	if grewAt[4] == 0 {
		return 0, fmt.Errorf("probe %s: extent never reached four pages", class)
	}
	first, second, third := grewAt[2]-1, grewAt[3]-grewAt[2], grewAt[4]-grewAt[3]
	if first != second || second != third {
		return 0, fmt.Errorf("probe %s: page densities vary (%d, %d, %d): records are not fixed-size",
			class, first, second, third)
	}
	return third, nil
}

// shardRecordDensities measures the bench classes' records-per-page on a
// throwaway single-shard kernel.
func shardRecordDensities() (itemsPerPage, ownersPerPage int, err error) {
	db, err := kernel.Open(shardBenchOptions(1))
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()
	if err := defineShardBenchSchema(db.Cat); err != nil {
		return 0, 0, err
	}
	// Probe owners on the fresh extent first, then mint one more owner to
	// anchor the item records' reference field.
	if ownersPerPage, err = probeRecordsPerPage(db.Cat, "BenchOwner", shardOwnerTuple); err != nil {
		return 0, 0, err
	}
	owner, err := db.Cat.CreateObject("BenchOwner", shardOwnerTuple(0))
	if err != nil {
		return 0, 0, err
	}
	if itemsPerPage, err = probeRecordsPerPage(db.Cat, "BenchItem", func(i int) object.Value {
		return shardItemTuple(i, owner)
	}); err != nil {
		return 0, 0, err
	}
	return itemsPerPage, ownersPerPage, nil
}

// buildShardBenchDB opens a kernel at the given shard count and loads the
// bench extents: owners first, then items referencing owner i%owners.
func buildShardBenchDB(nshards, items, owners int) (*kernel.DB, error) {
	db, err := kernel.Open(shardBenchOptions(nshards))
	if err != nil {
		return nil, err
	}
	if err := defineShardBenchSchema(db.Cat); err != nil {
		db.Close()
		return nil, err
	}
	ownerOIDs := make([]storage.OID, owners)
	for i := range ownerOIDs {
		if ownerOIDs[i], err = db.Cat.CreateObject("BenchOwner", shardOwnerTuple(i)); err != nil {
			db.Close()
			return nil, err
		}
	}
	for i := 0; i < items; i++ {
		if _, err := db.Cat.CreateObject("BenchItem", shardItemTuple(i, ownerOIDs[i%owners])); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// measureShardQuery executes one exchange-wrapped plan against a freshly
// built kernel at the given shard count. Open performs the serial setup
// (morsel discovery, join builds); every shard's pool is then evicted and
// its counters reset with latency enabled, so the measured Next loop covers
// exactly the parallel phase and its page reads are first touches.
func measureShardQuery(name string, nshards, items, owners int, latency time.Duration, plan func() optimizer.Plan) (ShardQueryEntry, error) {
	var e ShardQueryEntry
	db, err := buildShardBenchDB(nshards, items, owners)
	if err != nil {
		return e, err
	}
	defer db.Close()

	ex := exec.New(algebra.New(db.Cat))
	op, err := ex.Compile(&optimizer.ExchangePlan{Input: plan(), Workers: shardBenchWorkers})
	if err != nil {
		return e, err
	}
	if err := op.Open(); err != nil {
		return e, err
	}
	for _, sh := range db.Shards {
		if err := sh.Pool.EvictAll(); err != nil {
			op.Close()
			return e, err
		}
		sh.Disk.ResetStats()
		sh.Disk.SetLatency(latency)
	}
	defer func() {
		for _, sh := range db.Shards {
			sh.Disk.SetLatency(0)
		}
	}()

	rows := 0
	start := time.Now()
	for {
		_, ok, err := op.Next()
		if err != nil {
			op.Close()
			return e, err
		}
		if !ok {
			break
		}
		rows++
	}
	wall := time.Since(start)
	if err := op.Close(); err != nil {
		return e, err
	}

	var reads int64
	var simMs float64
	for _, sh := range db.Shards {
		s := sh.Disk.Stats()
		reads += s.Reads()
		simMs += s.TimeMs
	}
	e = ShardQueryEntry{
		Name:        name,
		Shards:      nshards,
		Rows:        rows,
		Reads:       reads,
		SimulatedMs: simMs,
		WallMs:      round3(float64(wall) / float64(time.Millisecond)),
	}
	if wall > 0 {
		e.RowsPerWallSec = round3(float64(rows) / wall.Seconds())
	}
	return e, nil
}

// measureShardCommits runs the insert+update commit workload at one shard
// count: shardCommitWorkers goroutines each commit shardCommitTxs
// transactions, every transaction creating one object and updating that
// same object — single-shard affinity, so each commit forces exactly one
// WAL. With a per-force sync delay, one log serializes every force in the
// machine; N logs overlap N of them.
func measureShardCommits(nshards int, syncDelay time.Duration) (ShardCommitEntry, error) {
	db, err := kernel.Open(shardBenchOptions(nshards))
	if err != nil {
		return ShardCommitEntry{}, err
	}
	defer db.Close()
	if err := defineShardBenchSchema(db.Cat); err != nil {
		return ShardCommitEntry{}, err
	}
	for _, sh := range db.Shards {
		sh.Log.SetSyncDelay(syncDelay)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, shardCommitWorkers)
	for w := 0; w < shardCommitWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < shardCommitTxs; i++ {
				tx := db.Begin()
				oid, err := tx.Create("BenchOwner", shardOwnerTuple(w*shardCommitTxs+i))
				if err != nil {
					errs <- err
					return
				}
				v := shardOwnerTuple(w * shardCommitTxs * 2)
				if err := tx.Update(oid, v); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return ShardCommitEntry{}, err
	}
	wall := time.Since(start)

	txns := shardCommitWorkers * shardCommitTxs
	e := ShardCommitEntry{
		Shards:  nshards,
		Workers: shardCommitWorkers,
		Txns:    txns,
		WallMs:  round3(float64(wall) / float64(time.Millisecond)),
	}
	if wall > 0 {
		e.CommitsPerSec = round3(float64(txns) / wall.Seconds())
	}
	return e, nil
}

// MeasureShard runs the sharded-store sweep: a full BenchItem extent scan
// and a hash-partition join probe at shards=1/2/4 (read totals must match
// across shard counts), then the insert+update commit-throughput workload
// at the same shard counts. Pass latency <= 0 for DefaultParallelLatency
// and syncDelay <= 0 for DefaultShardSyncDelay.
func MeasureShard(latency, syncDelay time.Duration) (*BenchShard, error) {
	if latency <= 0 {
		latency = DefaultParallelLatency
	}
	if syncDelay <= 0 {
		syncDelay = DefaultShardSyncDelay
	}
	itemsPerPage, ownersPerPage, err := shardRecordDensities()
	if err != nil {
		return nil, err
	}
	// Multiples of 4*recordsPerPage fill every part to exact page
	// boundaries at every measured shard count.
	items := 6000 / (4 * itemsPerPage) * (4 * itemsPerPage)
	if items == 0 {
		items = 4 * itemsPerPage
	}
	owners := 3000 / (4 * ownersPerPage) * (4 * ownersPerPage)
	if owners == 0 {
		owners = 4 * ownersPerPage
	}

	out := &BenchShard{
		Items:             items,
		Owners:            owners,
		ItemsPerPage:      itemsPerPage,
		OwnersPerPage:     ownersPerPage,
		LatencyUsPerSimMs: float64(latency) / float64(time.Microsecond),
		SyncDelayMs:       float64(syncDelay) / float64(time.Millisecond),
	}

	benches := []struct {
		name string
		plan func() optimizer.Plan
	}{
		// Full extent scan: page-range morsels interleaved across parts.
		{"shard-scan-BenchItem", func() optimizer.Plan {
			return &optimizer.BindPlan{Class: "BenchItem", Var: "b"}
		}},
		// Hash-partition join probe: the build drains run serially inside
		// Open and are excluded; the measured phase is the probe's object
		// fetches fanning out across the owner extent's shards.
		{"shard-hash-join-probe", func() optimizer.Plan {
			return &optimizer.JoinPlan{
				Left:      &optimizer.BindPlan{Class: "BenchItem", Var: "b"},
				Right:     &optimizer.BindPlan{Class: "BenchOwner", Var: "o"},
				Method:    cost.HashPartition,
				LeftVar:   "b",
				Attribute: "owner",
				RightVar:  "o",
			}
		}},
	}
	for _, b := range benches {
		var base ShardQueryEntry
		for _, n := range ShardCounts {
			e, err := measureShardQuery(b.name, n, items, owners, latency, b.plan)
			if err != nil {
				return nil, fmt.Errorf("%s shards=%d: %w", b.name, n, err)
			}
			if n == ShardCounts[0] {
				base = e
			} else {
				if e.Rows != base.Rows {
					return nil, fmt.Errorf("%s: shards=%d returned %d rows, shards=%d returned %d",
						b.name, n, e.Rows, base.Shards, base.Rows)
				}
				if e.Reads != base.Reads {
					return nil, fmt.Errorf("%s: shards=%d cost %d reads, shards=%d cost %d — sharding changed what is read",
						b.name, n, e.Reads, base.Shards, base.Reads)
				}
			}
			if base.RowsPerWallSec > 0 {
				e.Speedup = round3(e.RowsPerWallSec / base.RowsPerWallSec)
			}
			out.Queries = append(out.Queries, e)
		}
	}

	var commitBase float64
	for _, n := range ShardCounts {
		e, err := measureShardCommits(n, syncDelay)
		if err != nil {
			return nil, fmt.Errorf("commit shards=%d: %w", n, err)
		}
		if n == ShardCounts[0] {
			commitBase = e.CommitsPerSec
		}
		if commitBase > 0 {
			e.Speedup = round3(e.CommitsPerSec / commitBase)
		}
		if n == 4 {
			out.CommitSpeedupN4 = e.Speedup
		}
		out.Commits = append(out.Commits, e)
	}
	return out, nil
}

// ShardScaling prints the MeasureShard sweep as tables. The env parameter
// is unused (the sweep builds its own kernels at each shard count) but kept
// for the artifact signature.
func ShardScaling(w io.Writer, _ *Env) error {
	section(w, "Sharded-store scaling. Independent stores and WALs, shards=1/2/4")
	res, err := MeasureShard(0, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "extents: %d items (%d/page), %d owners (%d/page); latency replay %.0f us/sim-ms; fsync delay %.1f ms\n\n",
		res.Items, res.ItemsPerPage, res.Owners, res.OwnersPerPage, res.LatencyUsPerSimMs, res.SyncDelayMs)
	fmt.Fprintf(w, "%-24s %7s %7s %7s %10s %10s %14s %8s\n",
		"benchmark", "shards", "rows", "reads", "sim ms", "wall ms", "rows/wall-s", "speedup")
	for _, e := range res.Queries {
		fmt.Fprintf(w, "%-24s %7d %7d %7d %10.2f %10.2f %14.0f %7.2fx\n",
			e.Name, e.Shards, e.Rows, e.Reads, e.SimulatedMs, e.WallMs, e.RowsPerWallSec, e.Speedup)
	}
	fmt.Fprintf(w, "\n%-24s %7s %7s %10s %14s %8s\n",
		"commit workload", "shards", "txns", "wall ms", "commits/s", "speedup")
	for _, e := range res.Commits {
		fmt.Fprintf(w, "%-24s %7d %7d %10.2f %14.0f %7.2fx\n",
			"insert+update", e.Shards, e.Txns, e.WallMs, e.CommitsPerSec, e.Speedup)
	}
	return nil
}
