// Quickstart: open a MOOD database, define a schema through MOODSQL DDL,
// create objects, register a late-bound method, and query with a path
// expression — the smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"mood/internal/funcmgr"
	"mood/internal/kernel"
	"mood/internal/object"
	"mood/internal/optimizer"
)

func main() {
	// 1. Open an in-memory MOOD database (simulated disk + buffer pool +
	//    WAL + catalog + optimizer, assembled by the kernel).
	db, err := kernel.Open(kernel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Define a schema with the MOODSQL data definition language. The
	//    syntax follows the paper's Section 3.1: TUPLE attributes, type
	//    constructors, INHERITS FROM, METHODS signatures.
	_, err = db.ExecuteScript(`
		CREATE CLASS Engine TUPLE (cylinders Integer, kw Integer);
		CREATE CLASS Car TUPLE (
			plate String(16),
			weight Integer,
			engine REFERENCE (Engine))
			METHODS: lbweight () Integer;
		CREATE CLASS ElectricCar INHERITS FROM Car;
	`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Method bodies are registered with the Function Manager at run
	//    time — the paper compiles C++ into a per-class shared object and
	//    binds late; here the body is a Go closure bound by signature.
	err = db.RegisterMethod("Car", "lbweight", func(inv *funcmgr.Invocation) (object.Value, error) {
		w, _ := inv.Self.Field("weight")
		return object.NewInt(int32(float64(w.Int) * 2.2075)), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Create objects. Atomic values can arrive through MOODSQL's
	//    "new Class <...>"; references are wired through the catalog API.
	engine, err := db.Execute(`new Engine <6, 210>`)
	if err != nil {
		log.Fatal(err)
	}
	smallEngine, err := db.Execute(`new Engine <3, 70>`)
	if err != nil {
		log.Fatal(err)
	}
	mkCar := func(class, plate string, weight int32, engineOID object.Value) {
		_, err := db.Cat.CreateObject(class, object.NewTuple(
			[]string{"plate", "weight", "engine"},
			[]object.Value{object.NewString(plate), object.NewInt(weight), engineOID},
		))
		if err != nil {
			log.Fatal(err)
		}
	}
	mkCar("Car", "06 MOOD 94", 1950, object.NewRef(engine.OIDs[0]))
	mkCar("Car", "06 ESM 86", 1200, object.NewRef(smallEngine.OIDs[0]))
	mkCar("ElectricCar", "06 EV 23", 2100, object.NewRef(smallEngine.OIDs[0]))

	// 5. Query with a path expression (an implicit join the optimizer
	//    turns into one of the paper's four join strategies) and a
	//    late-bound method call. EVERY ranges over the IS-A closure.
	res, err := db.Execute(`
		SELECT c.plate, c.lbweight() AS lbs
		FROM EVERY Car c
		WHERE c.engine.cylinders < 4 AND c.weight > 1000
		ORDER BY c.plate`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cars with small engines over a ton:")
	fmt.Print(res.String())

	// 6. Inspect what the optimizer did.
	fmt.Println("\naccess plan:")
	fmt.Println(optimizer.Render(db.LastPlan))

	// 7. And what the simulated disk paid for it.
	fmt.Println("\ndisk:", db.Disk.Stats())
}
