// Package view is the MoodView substitute (Section 9): a text-mode
// rendering of everything the paper's X/Motif GUI showed. It implements the
// DAG placement algorithm for the class-hierarchy browser ("MoodView uses a
// DAG placement algorithm that minimizes crossovers"), the class
// presentation panels of Figure 9.2, the generic object-graph presentation
// of Figure 9.3 (walking referenced objects with the persistent type
// catalog deciding how each object displays), and a query manager with
// session history. All schema information flows through the MOOD catalog,
// and database operations go through SQL statements interpreted by the
// kernel — the same protocol the paper prescribes between MoodView and the
// kernel.
package view

import (
	"fmt"
	"sort"
	"strings"

	"mood/internal/catalog"
)

// DAGNode is one placed node of the class hierarchy.
type DAGNode struct {
	Name  string
	Layer int // 0 = roots
	Slot  int // position within the layer after crossing reduction
}

// DAGLayout is the placement of the inheritance DAG.
type DAGLayout struct {
	Layers [][]string         // node names per layer, in slot order
	Edges  [][2]string        // super -> sub
	Pos    map[string]DAGNode // by name
}

// PlaceDAG computes a layered drawing of the catalog's inheritance DAG:
// longest-path layering followed by iterated barycentric crossing
// reduction (the classic Sugiyama recipe).
func PlaceDAG(cat *catalog.Catalog) *DAGLayout {
	classes := cat.Classes()
	var names []string
	supers := map[string][]string{}
	for _, cl := range classes {
		if !cl.IsClass {
			continue
		}
		names = append(names, cl.Name)
		supers[cl.Name] = cl.Supers
	}
	sort.Strings(names)

	// Longest-path layering: a class sits one layer below its deepest
	// superclass.
	layerOf := map[string]int{}
	var depth func(string) int
	depth = func(n string) int {
		if l, ok := layerOf[n]; ok {
			return l
		}
		layerOf[n] = 0 // breaks cycles defensively; the catalog forbids them
		best := 0
		for _, s := range supers[n] {
			if d := depth(s) + 1; d > best {
				best = d
			}
		}
		layerOf[n] = best
		return best
	}
	maxLayer := 0
	for _, n := range names {
		if d := depth(n); d > maxLayer {
			maxLayer = d
		}
	}

	layout := &DAGLayout{Pos: map[string]DAGNode{}}
	layout.Layers = make([][]string, maxLayer+1)
	for _, n := range names {
		l := layerOf[n]
		layout.Layers[l] = append(layout.Layers[l], n)
	}
	for _, n := range names {
		for _, s := range supers[n] {
			layout.Edges = append(layout.Edges, [2]string{s, n})
		}
	}

	// Barycentric crossing reduction: order each layer by the mean slot of
	// its neighbours in the fixed adjacent layer, sweeping down then up.
	slot := map[string]int{}
	assign := func() {
		for li, layer := range layout.Layers {
			for si, n := range layer {
				slot[n] = si
				layout.Pos[n] = DAGNode{Name: n, Layer: li, Slot: si}
			}
		}
	}
	assign()
	parentsOf := map[string][]string{}
	childrenOf := map[string][]string{}
	for _, e := range layout.Edges {
		parentsOf[e[1]] = append(parentsOf[e[1]], e[0])
		childrenOf[e[0]] = append(childrenOf[e[0]], e[1])
	}
	bary := func(n string, neigh []string) float64 {
		if len(neigh) == 0 {
			return float64(slot[n])
		}
		sum := 0.0
		for _, m := range neigh {
			sum += float64(slot[m])
		}
		return sum / float64(len(neigh))
	}
	for sweep := 0; sweep < 4; sweep++ {
		// Downward: order layer i by parents in layer above.
		for li := 1; li < len(layout.Layers); li++ {
			layer := layout.Layers[li]
			sort.SliceStable(layer, func(a, b int) bool {
				return bary(layer[a], parentsOf[layer[a]]) < bary(layer[b], parentsOf[layer[b]])
			})
			for si, n := range layer {
				slot[n] = si
			}
		}
		// Upward: order layer i by children below.
		for li := len(layout.Layers) - 2; li >= 0; li-- {
			layer := layout.Layers[li]
			sort.SliceStable(layer, func(a, b int) bool {
				return bary(layer[a], childrenOf[layer[a]]) < bary(layer[b], childrenOf[layer[b]])
			})
			for si, n := range layer {
				slot[n] = si
			}
		}
	}
	assign()
	return layout
}

// Crossings counts edge crossings between adjacent layers in the current
// placement — the quantity the placement minimizes.
func (l *DAGLayout) Crossings() int {
	total := 0
	for li := 0; li+1 < len(l.Layers); li++ {
		// Edges from layer li to li+1 as (slot, slot) pairs.
		var pairs [][2]int
		for _, e := range l.Edges {
			p, c := l.Pos[e[0]], l.Pos[e[1]]
			if p.Layer == li && c.Layer == li+1 {
				pairs = append(pairs, [2]int{p.Slot, c.Slot})
			}
		}
		for i := 0; i < len(pairs); i++ {
			for j := i + 1; j < len(pairs); j++ {
				a, b := pairs[i], pairs[j]
				if (a[0]-b[0])*(a[1]-b[1]) < 0 {
					total++
				}
			}
		}
	}
	return total
}

// Render draws the layered DAG as text, layer per line, with the IS-A
// edges listed beneath.
func (l *DAGLayout) Render() string {
	var sb strings.Builder
	for li, layer := range l.Layers {
		fmt.Fprintf(&sb, "layer %d: %s\n", li, strings.Join(layer, "   "))
	}
	if len(l.Edges) > 0 {
		sb.WriteString("edges:\n")
		edges := append([][2]string(nil), l.Edges...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i][0] != edges[j][0] {
				return edges[i][0] < edges[j][0]
			}
			return edges[i][1] < edges[j][1]
		})
		for _, e := range edges {
			fmt.Fprintf(&sb, "  %s --> %s\n", e[0], e[1])
		}
	}
	return sb.String()
}
