package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// FileID identifies a storage file (the persistent home of one class extent,
// index, or system structure).
type FileID uint16

// A File is an ESM-style storage file: a chain of slotted pages linked
// through their headers. As in ESM, the pages of a file are not guaranteed
// to be physically contiguous, which is why the paper treats a file scan as
// random access on ESM; the DiskSim accounts adjacency faithfully.
type File struct {
	ID        FileID
	Name      string
	firstPage PageID
	lastPage  PageID
	numPages  uint32
	numRecs   uint32
	dirSlot   SlotID // slot of this file's directory record
	// pages caches the chain order of the file's data pages; it is valid
	// exactly when len(pages) == numPages (a file re-opened from its
	// directory record starts with a cold cache). Guarded by the owning
	// ObjectStore's lock; see ObjectStore.PageList.
	pages []PageID
}

// NumPages returns the number of data pages in the file — the paper's
// nbpages(C) when the file stores class C's extent.
func (f *File) NumPages() int { return int(f.numPages) }

// NumRecords returns the number of live records — the paper's |C|.
func (f *File) NumRecords() int { return int(f.numRecs) }

// FirstPage returns the first data page (0 if the file is empty).
func (f *File) FirstPage() PageID { return f.firstPage }

// FileManager maintains the directory of files on one disk. The directory
// lives in a dedicated meta page so that a manager re-opened over the same
// disk (crash simulation) recovers every file.
type FileManager struct {
	bp *BufferPool

	mu      sync.Mutex
	dirPage PageID
	files   map[FileID]*File
	byName  map[string]FileID
	nextID  FileID
}

const dirRecordFixed = 2 + 4 + 4 + 4 + 4 // id, first, last, npages, nrecs

// NewFileManager formats a fresh directory on the disk behind bp.
func NewFileManager(bp *BufferPool) (*FileManager, error) {
	pg, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	pg.InitHeap(PageKindMeta)
	id := pg.ID
	if err := bp.Unpin(id, true); err != nil {
		return nil, err
	}
	return &FileManager{
		bp:      bp,
		dirPage: id,
		files:   make(map[FileID]*File),
		byName:  make(map[string]FileID),
		nextID:  1,
	}, nil
}

// OpenFileManager reloads the directory previously created at dirPage.
func OpenFileManager(bp *BufferPool, dirPage PageID) (*FileManager, error) {
	fm := &FileManager{
		bp:      bp,
		dirPage: dirPage,
		files:   make(map[FileID]*File),
		byName:  make(map[string]FileID),
		nextID:  1,
	}
	pg, err := bp.Fetch(dirPage)
	if err != nil {
		return nil, err
	}
	pg.Slots(func(slot SlotID, rec []byte) bool {
		f := decodeDirRecord(rec)
		f.dirSlot = slot
		fm.files[f.ID] = f
		fm.byName[f.Name] = f.ID
		if f.ID >= fm.nextID {
			fm.nextID = f.ID + 1
		}
		return true
	})
	if err := bp.Unpin(dirPage, false); err != nil {
		return nil, err
	}
	return fm, nil
}

// DirPage returns the page holding the file directory; a database records it
// in its superblock so the manager can be re-opened.
func (fm *FileManager) DirPage() PageID { return fm.dirPage }

// CreateFile allocates a new, empty file with the given name.
func (fm *FileManager) CreateFile(name string) (*File, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if _, dup := fm.byName[name]; dup {
		return nil, fmt.Errorf("storage: file %q already exists", name)
	}
	// The OID file field is 12 bits; a wider id would alias the shard tag.
	if fm.nextID > maxFileID {
		return nil, fmt.Errorf("storage: file id space exhausted (max %d)", maxFileID)
	}
	f := &File{ID: fm.nextID, Name: name}
	fm.nextID++
	pg, err := fm.bp.Fetch(fm.dirPage)
	if err != nil {
		return nil, err
	}
	slot, err := pg.Insert(encodeDirRecord(f))
	if err != nil {
		fm.bp.Unpin(fm.dirPage, false)
		return nil, fmt.Errorf("storage: file directory full: %w", err)
	}
	f.dirSlot = slot
	if err := fm.bp.Unpin(fm.dirPage, true); err != nil {
		return nil, err
	}
	fm.files[f.ID] = f
	fm.byName[name] = f.ID
	return f, nil
}

// OpenFile returns the file with the given name.
func (fm *FileManager) OpenFile(name string) (*File, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	id, ok := fm.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchFile, name)
	}
	return fm.files[id], nil
}

// FileByID returns the file with the given id.
func (fm *FileManager) FileByID(id FileID) (*File, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	f, ok := fm.files[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchFile, id)
	}
	return f, nil
}

// DropFile frees every page of the file and removes it from the directory.
func (fm *FileManager) DropFile(name string) error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	id, ok := fm.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchFile, name)
	}
	f := fm.files[id]
	// Free the data pages (and any overflow chains they point into are the
	// store's responsibility to have freed already).
	for pid := f.firstPage; pid != 0; {
		pg, err := fm.bp.Fetch(pid)
		if err != nil {
			return err
		}
		next := pg.NextPage()
		if err := fm.bp.Unpin(pid, false); err != nil {
			return err
		}
		fm.bp.Drop(pid)
		if err := fm.bp.Disk().FreePage(pid); err != nil {
			return err
		}
		pid = next
	}
	pg, err := fm.bp.Fetch(fm.dirPage)
	if err != nil {
		return err
	}
	if err := pg.Delete(f.dirSlot); err != nil {
		fm.bp.Unpin(fm.dirPage, false)
		return err
	}
	if err := fm.bp.Unpin(fm.dirPage, true); err != nil {
		return err
	}
	delete(fm.files, id)
	delete(fm.byName, name)
	return nil
}

// ReloadFile re-reads the file's directory record into the same File
// object and drops its page-chain cache. The kernel's reorganizer calls it
// after a WAL abort restored the on-disk directory underneath the in-memory
// metadata (an aborted migration may have appended pages whose links were
// undone on disk only).
func (fm *FileManager) ReloadFile(f *File) error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	pg, err := fm.bp.Fetch(fm.dirPage)
	if err != nil {
		return err
	}
	rec, err := pg.Get(f.dirSlot)
	if err == nil {
		nf := decodeDirRecord(rec)
		f.firstPage, f.lastPage = nf.firstPage, nf.lastPage
		f.numPages, f.numRecs = nf.numPages, nf.numRecs
		f.pages = nil
	}
	if uerr := fm.bp.Unpin(fm.dirPage, false); uerr != nil && err == nil {
		err = uerr
	}
	return err
}

// Files returns a snapshot of all files sorted by id.
func (fm *FileManager) Files() []*File {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	out := make([]*File, 0, len(fm.files))
	for _, f := range fm.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// syncDir rewrites the file's directory record after a metadata change.
// Caller holds fm.mu or is otherwise single-threaded on f.
func (fm *FileManager) syncDir(f *File) error {
	pg, err := fm.bp.Fetch(fm.dirPage)
	if err != nil {
		return err
	}
	err = pg.Update(f.dirSlot, encodeDirRecord(f))
	if uerr := fm.bp.Unpin(fm.dirPage, err == nil); uerr != nil && err == nil {
		err = uerr
	}
	return err
}

func encodeDirRecord(f *File) []byte {
	rec := make([]byte, dirRecordFixed+len(f.Name))
	binary.LittleEndian.PutUint16(rec[0:], uint16(f.ID))
	binary.LittleEndian.PutUint32(rec[2:], uint32(f.firstPage))
	binary.LittleEndian.PutUint32(rec[6:], uint32(f.lastPage))
	binary.LittleEndian.PutUint32(rec[10:], f.numPages)
	binary.LittleEndian.PutUint32(rec[14:], f.numRecs)
	copy(rec[dirRecordFixed:], f.Name)
	return rec
}

func decodeDirRecord(rec []byte) *File {
	return &File{
		ID:        FileID(binary.LittleEndian.Uint16(rec[0:])),
		firstPage: PageID(binary.LittleEndian.Uint32(rec[2:])),
		lastPage:  PageID(binary.LittleEndian.Uint32(rec[6:])),
		numPages:  binary.LittleEndian.Uint32(rec[10:]),
		numRecs:   binary.LittleEndian.Uint32(rec[14:]),
		Name:      string(rec[dirRecordFixed:]),
	}
}
