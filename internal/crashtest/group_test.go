package crashtest

import "testing"

// TestGroupCommitCrashTorture runs seeded crash-during-group-commit
// iterations: 8 sessions commit concurrently through one group-commit log
// and the crash fires at a seeded leader force. Every iteration verifies
// acked⇒durable and unacked⇒rolled-back; across the run both outcomes must
// actually occur (some commits acked before the crash, some killed by it).
// A failing seed replays with CRASHTEST_SEED=<n>.
func TestGroupCommitCrashTorture(t *testing.T) {
	if seed, ok := envInt64("CRASHTEST_SEED", 0); ok {
		res, err := RunGroup(GroupConfig{Seed: seed})
		if err != nil {
			t.Errorf("%v", err)
		}
		t.Logf("seed %d: fired=%v acked=%d failed=%d forces=%d recovery=%+v",
			seed, res.Fired, res.Acked, res.Failed, res.Forces, res.Recovery)
		return
	}

	iters, _ := envInt64("CRASHTEST_ITERS", defaultIterations)
	iters /= 4 // concurrent iterations cost more wall time than Run's
	if iters < 8 {
		iters = 8
	}
	const baseSeed = 7000
	acked, failed, redone, undone := 0, 0, 0, 0
	for i := int64(0); i < iters; i++ {
		seed := baseSeed + i
		res, err := RunGroup(GroupConfig{Seed: seed})
		if err != nil {
			t.Fatalf("%v\nreplay: CRASHTEST_SEED=%d go test ./internal/crashtest -run TestGroupCommitCrash -v", err, seed)
		}
		if !res.Fired {
			t.Errorf("seed %d: force crash never fired", seed)
		}
		acked += res.Acked
		failed += res.Failed
		redone += res.Recovery.Redone
		undone += res.Recovery.Undone
	}
	if acked == 0 || failed == 0 {
		t.Errorf("weak coverage: acked=%d failed=%d — want both outcomes", acked, failed)
	}
	if redone == 0 || undone == 0 {
		t.Errorf("weak coverage: redone=%d undone=%d — want both recovery directions", redone, undone)
	}
	t.Logf("%d iterations: acked=%d failed=%d redone=%d undone=%d", iters, acked, failed, redone, undone)
}

// TestRunGroupFaultFree is the control: with no fault armed, every commit
// from every session must be acked and survive, and the force count must not
// exceed the commit count (each force is led by a commit it acknowledges).
func TestRunGroupFaultFree(t *testing.T) {
	res, err := RunGroup(GroupConfig{Seed: 99, CrashAtForce: -1})
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * 6; res.Acked != want {
		t.Errorf("acked %d of %d commits", res.Acked, want)
	}
	t.Logf("fault-free: %d commits in %d forces", res.Acked, res.Forces)
}

// TestRunGroupIsDeterministic: the workload is concurrent, so per-run
// Acked/Failed counts legitimately vary with scheduling — but the fault plan
// and the invariant verdict are functions of the seed alone. Same seed must
// give same Fired and same (pass/fail) outcome, which is exactly what makes
// CRASHTEST_SEED replay meaningful.
func TestRunGroupIsDeterministic(t *testing.T) {
	for seed := int64(300); seed < 306; seed++ {
		a, errA := RunGroup(GroupConfig{Seed: seed})
		b, errB := RunGroup(GroupConfig{Seed: seed})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d: verdict mismatch: %v vs %v", seed, errA, errB)
		}
		if a.Fired != b.Fired {
			t.Errorf("seed %d: fired %v vs %v", seed, a.Fired, b.Fired)
		}
	}
}
