package kernel

import (
	"errors"
	"strings"
	"testing"

	"mood/internal/funcmgr"
	"mood/internal/object"
	"mood/internal/optimizer"
)

// vehicleDDL is the paper's Section 3.1 schema, executed through MOODSQL.
const vehicleDDL = `
CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer);
CREATE CLASS VehicleDriveTrain TUPLE (
	engine REFERENCE (VehicleEngine),
	transmission String(32));
CREATE CLASS Employee TUPLE (ssno Integer, name String(32), age Integer);
CREATE CLASS Company TUPLE (
	name String(32),
	location String(32),
	president REFERENCE (Employee));
CREATE CLASS Vehicle TUPLE (
	id Integer,
	weight Integer,
	drivetrain REFERENCE (VehicleDriveTrain),
	manufacturer REFERENCE (Company))
	METHODS: lbweight () Integer, weight () Integer;
CREATE CLASS Automobile INHERITS FROM Vehicle;
CREATE CLASS JapaneseAuto INHERITS FROM Automobile;
`

func openAndDefine(t testing.TB) *DB {
	t.Helper()
	db, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecuteScript(vehicleDDL); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDDLAndCatalog(t *testing.T) {
	db := openAndDefine(t)
	if !db.Cat.IsA("JapaneseAuto", "Vehicle") {
		t.Error("hierarchy not built")
	}
	ty, err := db.Cat.AttributeType("Automobile", "drivetrain")
	if err != nil || ty.Kind != object.KindReference {
		t.Errorf("inherited attribute: %v %v", ty, err)
	}
	m, err := db.Cat.Method("Automobile", "lbweight")
	if err != nil || m.Class != "Vehicle" {
		t.Errorf("method: %+v %v", m, err)
	}
	// Duplicate class errors.
	if _, err := db.Execute("CREATE CLASS Vehicle TUPLE (x Integer)"); err == nil {
		t.Error("duplicate class accepted")
	}
}

func TestNewObjectAndQuery(t *testing.T) {
	db := openAndDefine(t)
	// The paper's MoodView statement.
	res, err := db.Execute(`new Employee <"Budak Arpinar", 1969>`)
	if err == nil {
		// ssno is Integer; "Budak Arpinar" cannot cast.
		t.Fatal("mistyped new accepted")
	}
	res, err = db.Execute(`new Employee <1969, "Budak Arpinar", 25>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OIDs) != 1 || res.OIDs[0].IsNil() {
		t.Fatal("new returned no OID")
	}
	out, err := db.Execute(`SELECT e.name, e.age FROM Employee e WHERE e.ssno = 1969`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0].Str != "Budak Arpinar" {
		t.Errorf("query result: %+v", out.Rows)
	}
}

func TestEndToEndPaperPipeline(t *testing.T) {
	db := openAndDefine(t)
	// Build a small database entirely through the kernel.
	eng, err := db.Execute(`new VehicleEngine <2000, 6>`)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := db.Execute(`new VehicleEngine <1500, 2>`)
	if err != nil {
		t.Fatal(err)
	}
	// References are created through the catalog (the C++ path).
	dtOID, err := db.Cat.CreateObject("VehicleDriveTrain", object.NewTuple(
		[]string{"engine", "transmission"},
		[]object.Value{object.NewRef(eng.OIDs[0]), object.NewString("AUTOMATIC")}))
	if err != nil {
		t.Fatal(err)
	}
	dt2OID, err := db.Cat.CreateObject("VehicleDriveTrain", object.NewTuple(
		[]string{"engine", "transmission"},
		[]object.Value{object.NewRef(eng2.OIDs[0]), object.NewString("MANUAL")}))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := db.Cat.CreateObject("Company", object.NewTuple(
		[]string{"name", "location"},
		[]object.Value{object.NewString("BMW"), object.NewString("Munich")}))
	if err != nil {
		t.Fatal(err)
	}
	mkVehicle := func(class string, id int32, dt, mf interface{}) {
		t.Helper()
		dtRef := object.NewRef(dtOID)
		if dt == nil {
			dtRef = object.NewRef(dt2OID)
		}
		_, err := db.Cat.CreateObject(class, object.NewTuple(
			[]string{"id", "weight", "drivetrain", "manufacturer"},
			[]object.Value{object.NewInt(id), object.NewInt(1000 + id), dtRef, object.NewRef(comp)}))
		if err != nil {
			t.Fatal(err)
		}
	}
	mkVehicle("Vehicle", 1, struct{}{}, nil)
	mkVehicle("Automobile", 2, struct{}{}, nil)
	mkVehicle("Automobile", 3, nil, nil)
	mkVehicle("JapaneseAuto", 4, struct{}{}, nil)

	// The paper's Section 3.1 query shape: automobiles that are not
	// Japanese, automatic, > 4 cylinders.
	res, err := db.Execute(`
		SELECT c FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v
		WHERE c.drivetrain.transmission = 'AUTOMATIC'
		AND c.drivetrain.engine = v
		AND v.cylinders > 4`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only Automobile id=2 qualifies)", len(res.Rows))
	}
	id, _ := res.Rows[0][0].Field("id")
	if id.Int != 2 {
		t.Errorf("qualifying automobile id = %d", id.Int)
	}
	// The optimizer left a plan behind for EXPLAIN.
	if db.LastPlan == nil || !strings.Contains(optimizer.Render(db.LastPlan), "Automobile - JapaneseAuto") {
		t.Error("LastPlan missing or wrong")
	}
}

func TestMethodsThroughKernel(t *testing.T) {
	db := openAndDefine(t)
	if err := db.RegisterMethod("Vehicle", "lbweight", func(inv *funcmgr.Invocation) (object.Value, error) {
		w, _ := inv.Self.Field("weight")
		return object.NewInt(int32(float64(w.Int) * 2.2075)), nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Cat.CreateObject("Vehicle", object.NewTuple(
		[]string{"id", "weight"},
		[]object.Value{object.NewInt(1), object.NewInt(2000)})); err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute(`SELECT v FROM Vehicle v WHERE v.lbweight() > 4000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("method query rows = %d", len(res.Rows))
	}
	// Projection of a method call.
	res, err = db.Execute(`SELECT v.lbweight() AS lbs FROM Vehicle v`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 4415 {
		t.Errorf("lbweight projection = %v", res.Rows[0][0])
	}
}

func TestUpdateDeleteThroughSQL(t *testing.T) {
	db := openAndDefine(t)
	for i := int32(0); i < 10; i++ {
		if _, err := db.Cat.CreateObject("Vehicle", object.NewTuple(
			[]string{"id", "weight"},
			[]object.Value{object.NewInt(i), object.NewInt(1000)})); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Execute(`UPDATE Vehicle v SET weight = v.weight + 500 WHERE v.id < 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Rows[0][0].Str, "5 object(s)") {
		t.Errorf("update result: %s", res.Rows[0][0].Str)
	}
	out, _ := db.Execute(`SELECT COUNT(*) AS n FROM Vehicle v WHERE v.weight = 1500`)
	if out.Rows[0][0].Int != 5 {
		t.Errorf("updated count = %d", out.Rows[0][0].Int)
	}
	res, err = db.Execute(`DELETE FROM Vehicle v WHERE v.weight = 1500`)
	if err != nil {
		t.Fatal(err)
	}
	out, _ = db.Execute(`SELECT COUNT(*) AS n FROM Vehicle v`)
	if out.Rows[0][0].Int != 5 {
		t.Errorf("after delete count = %d", out.Rows[0][0].Int)
	}
}

func TestIndexThroughSQL(t *testing.T) {
	db := openAndDefine(t)
	// Unique sizes: f_s = 1/2000, so §8.1's inequality favors the index
	// (an equality on the 16-value cylinders domain would correctly NOT
	// use one — fetching |C|/16 random objects loses to a scan).
	for i := int32(0); i < 2000; i++ {
		if _, err := db.Cat.CreateObject("VehicleEngine", object.NewTuple(
			[]string{"size", "cylinders"},
			[]object.Value{object.NewInt(1000 + i), object.NewInt(2 + 2*(i%16))})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Execute(`CREATE INDEX esize ON VehicleEngine(size) USING BTREE`); err != nil {
		t.Fatal(err)
	}
	db.stats = nil // re-collect so the optimizer sees the index
	res, err := db.Execute(`SELECT e FROM VehicleEngine e WHERE e.size = 1005`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("indexed query rows = %d", len(res.Rows))
	}
	if !strings.Contains(optimizer.Render(db.LastPlan), "INDSEL") {
		t.Errorf("plan did not use the index:\n%s", optimizer.Render(db.LastPlan))
	}
	// The unselective predicate keeps the scan.
	if _, err := db.Execute(`SELECT e FROM VehicleEngine e WHERE e.cylinders = 8`); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(optimizer.Render(db.LastPlan), "INDSEL") {
		t.Errorf("unselective predicate used an index:\n%s", optimizer.Render(db.LastPlan))
	}
}

func TestCursorProtocol(t *testing.T) {
	db := openAndDefine(t)
	for i := int32(0); i < 5; i++ {
		if _, err := db.Cat.CreateObject("Employee", object.NewTuple(
			[]string{"ssno", "name", "age"},
			[]object.Value{object.NewInt(i), object.NewString("emp"), object.NewInt(30 + i)})); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := db.OpenCursor(`SELECT e FROM Employee e ORDER BY e.ssno`)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Len() != 5 {
		t.Fatalf("cursor length = %d", cur.Len())
	}
	// Forward.
	first, err := cur.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.Class != "Employee" || len(first.Attrs) != 3 {
		t.Errorf("view = %+v", first)
	}
	if first.Attrs[0].Name != "ssno" || first.Attrs[0].Value.Int != 0 {
		t.Errorf("first attrs = %+v", first.Attrs)
	}
	second, _ := cur.Next()
	if second.Attrs[0].Value.Int != 1 {
		t.Error("cursor order broken")
	}
	// Backward ("sequence back and forth").
	back, err := cur.Prev()
	if err != nil {
		t.Fatal(err)
	}
	if back.Attrs[0].Value.Int != 0 {
		t.Errorf("Prev = %+v", back.Attrs[0])
	}
	if _, err := cur.Prev(); !errors.Is(err, ErrCursorExhausted) {
		t.Errorf("Prev at start = %v", err)
	}
	cur.Rewind()
	n := 0
	for {
		if _, err := cur.Next(); err != nil {
			break
		}
		n++
	}
	if n != 5 {
		t.Errorf("full iteration = %d", n)
	}
}

func TestGroupByThroughKernel(t *testing.T) {
	db := openAndDefine(t)
	for i := int32(0); i < 64; i++ {
		if _, err := db.Cat.CreateObject("VehicleEngine", object.NewTuple(
			[]string{"size", "cylinders"},
			[]object.Value{object.NewInt(1000), object.NewInt(2 + 2*(i%4))})); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Execute(`
		SELECT e.cylinders, COUNT(*) AS n FROM VehicleEngine e
		GROUP BY e.cylinders ORDER BY e.cylinders`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].Int != 16 {
			t.Errorf("group %v count = %d", row[0], row[1].Int)
		}
	}
}
