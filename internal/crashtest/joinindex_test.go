package crashtest

import (
	"fmt"
	"testing"
)

// TestTortureJoinIndexMaintenance is the mid-maintenance variant of the
// torture run: every iteration's workload is WAL-logged binary-join-index
// maintenance (the kernel's mutation-observer primitive), and the crash
// lands inside a micro-transaction. Replay a failure with CRASHTEST_SEED
// exactly as for TestTortureCrashRecovery.
func TestTortureJoinIndexMaintenance(t *testing.T) {
	if seed, ok := envInt64("CRASHTEST_SEED", 0); ok {
		for _, point := range Points {
			res, err := RunJoinIndex(Config{Seed: seed, Point: point})
			if err != nil {
				t.Errorf("%v", err)
			}
			t.Logf("seed %d %s: fired=%v crashed=%q committed=%d retries=%d torn=%d recovery=%+v",
				seed, point, res.Fired, res.CrashedAt, res.Committed, res.Retries, res.TornFixed, res.Recovery)
		}
		return
	}

	iters, _ := envInt64("CRASHTEST_ITERS", defaultIterations)
	if iters < int64(len(Points)) {
		iters = int64(len(Points))
	}
	const baseSeed = 11000
	fired := map[Point]int{}
	stopped := map[Point]int{}
	committedTotal, redone, undone, tornFixed := 0, 0, 0, 0
	for i := int64(0); i < iters; i++ {
		point := Points[i%int64(len(Points))]
		seed := baseSeed + i
		res, err := RunJoinIndex(Config{Seed: seed, Point: point})
		if err != nil {
			t.Fatalf("%v\nreplay: CRASHTEST_SEED=%d go test ./internal/crashtest -run TestTortureJoinIndex -v", err, seed)
		}
		if res.Fired {
			fired[point]++
		}
		if res.CrashedAt != "" {
			stopped[point]++
		}
		committedTotal += res.Committed
		redone += res.Recovery.Redone
		undone += res.Recovery.Undone
		tornFixed += res.TornFixed
	}
	for _, point := range Points {
		if point == PointPostCommit {
			continue // arms no fault by design; every iteration still recovers
		}
		if fired[point] == 0 {
			t.Errorf("scenario %s never fired its fault in %d iterations", point, iters)
		}
	}
	// Maintenance must have both survived commits (redo) and lost
	// micro-transactions (undo of half-applied tree mutations) across the run.
	if committedTotal == 0 || redone == 0 || undone == 0 {
		t.Errorf("weak coverage: committed=%d redone=%d undone=%d", committedTotal, redone, undone)
	}
	t.Logf("%d iterations: committed=%d redone=%d undone=%d tornFixed=%d fired=%v stopped=%v",
		iters, committedTotal, redone, undone, tornFixed, fired, stopped)
}

// TestRunJoinIndexIsDeterministic mirrors TestRunIsDeterministic for the
// maintenance workload: identical seeds must yield identical results.
func TestRunJoinIndexIsDeterministic(t *testing.T) {
	for _, point := range Points {
		a, errA := RunJoinIndex(Config{Seed: 5252, Point: point})
		b, errB := RunJoinIndex(Config{Seed: 5252, Point: point})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", point, errA, errB)
		}
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Errorf("%s: same seed, different results:\n%+v\n%+v", point, a, b)
		}
	}
}
